package kbtim

import (
	"math"
	"path/filepath"
	"testing"
)

// exampleDataset is the paper's Figure 1 running example through the public
// API.
func exampleDataset(t testing.TB) *Dataset {
	t.Helper()
	const (
		a, b, c, d, e, f, g = 0, 1, 2, 3, 4, 5, 6
		music, book         = 0, 1
		sport, car          = 2, 3
	)
	ds, err := NewDataset(7, 4,
		[]Edge{
			{From: e, To: a}, {From: e, To: b}, {From: g, To: b},
			{From: e, To: c}, {From: b, To: c},
			{From: b, To: d}, {From: f, To: d},
		},
		[][3]float64{
			{a, music, 0.6}, {a, book, 0.2}, {a, sport, 0.1}, {a, car, 0.1},
			{b, music, 0.5}, {b, book, 0.5},
			{c, music, 0.5}, {c, book, 0.3}, {c, car, 0.2},
			{d, sport, 0.2}, {d, book, 0.2},
			{e, music, 0.3}, {e, book, 0.3}, {e, sport, 0.4},
			{f, car, 1.0},
			{g, book, 1.0},
		})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func exampleOptions() Options {
	return Options{
		Epsilon:            0.3,
		K:                  5,
		PilotSets:          800,
		MaxThetaPerKeyword: 20000,
		Seed:               17,
		Workers:            2,
	}
}

func TestEndToEndAllStrategies(t *testing.T) {
	ds := exampleDataset(t)
	eng, err := NewEngine(ds, exampleOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	dir := t.TempDir()
	rrPath := filepath.Join(dir, "ads.rr")
	irrPath := filepath.Join(dir, "ads.irr")
	rrReport, err := eng.BuildRRIndex(rrPath)
	if err != nil {
		t.Fatal(err)
	}
	irrReport, err := eng.BuildIRRIndex(irrPath)
	if err != nil {
		t.Fatal(err)
	}
	if rrReport.Keywords != 4 || irrReport.Keywords != 4 {
		t.Fatalf("keyword counts %d / %d", rrReport.Keywords, irrReport.Keywords)
	}
	if rrReport.SumTheta != irrReport.SumTheta {
		t.Fatalf("Σθ differs across indexes: %d vs %d", rrReport.SumTheta, irrReport.SumTheta)
	}
	if err := eng.OpenRRIndex(rrPath); err != nil {
		t.Fatal(err)
	}
	if err := eng.OpenIRRIndex(irrPath); err != nil {
		t.Fatal(err)
	}

	q := Query{Topics: []int{0, 1}, K: 2}
	wrisRes, err := eng.QueryWRIS(q)
	if err != nil {
		t.Fatal(err)
	}
	rrRes, err := eng.QueryRR(q)
	if err != nil {
		t.Fatal(err)
	}
	irrRes, err := eng.QueryIRR(q)
	if err != nil {
		t.Fatal(err)
	}
	// All three carry the same guarantee; their MC-evaluated spreads must
	// agree closely (the Table 7 phenomenon).
	const rounds = 60000
	sw, err := eng.EvaluateSpread(wrisRes.Seeds, q, rounds)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := eng.EvaluateSpread(rrRes.Seeds, q, rounds)
	if err != nil {
		t.Fatal(err)
	}
	si, err := eng.EvaluateSpread(irrRes.Seeds, q, rounds)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]float64{{sw, sr}, {sr, si}} {
		if math.Abs(pair[0]-pair[1]) > 0.15*math.Max(pair[0], pair[1]) {
			t.Fatalf("spreads disagree: WRIS %v, RR %v, IRR %v", sw, sr, si)
		}
	}
	// RR reads sequentially, IRR randomly (partitions).
	if rrRes.IO.Total() == 0 || irrRes.IO.Total() == 0 {
		t.Fatal("index queries recorded no I/O")
	}
	if irrRes.PartitionsLoaded == 0 {
		t.Fatal("IRR loaded no partitions")
	}
}

func TestRISIgnoresKeywords(t *testing.T) {
	ds := exampleDataset(t)
	eng, err := NewEngine(ds, exampleOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.QueryRIS(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 2 {
		t.Fatalf("seeds %v", res.Seeds)
	}
	reach, err := eng.EvaluateReach(res.Seeds, 50000)
	if err != nil {
		t.Fatal(err)
	}
	// OPT_2 = 4.8125 (Example 2); the guarantee gives ≥ (1−1/e−ε)·OPT.
	if reach < (1-1/math.E-0.3)*4.8125 {
		t.Fatalf("RIS reach %v below guarantee", reach)
	}
}

func TestLTEngine(t *testing.T) {
	ds := exampleDataset(t)
	opts := exampleOptions()
	opts.Model = LT
	eng, err := NewEngine(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.QueryWRIS(Query{Topics: []int{0}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 2 {
		t.Fatalf("seeds %v", res.Seeds)
	}
}

func TestGenerateDatasetFamilies(t *testing.T) {
	tw, err := GenerateDataset(DatasetSpec{
		Kind: TwitterLike, NumUsers: 2000, AvgDegree: 8, NumTopics: 16, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	news, err := GenerateDataset(DatasetSpec{
		Kind: NewsLike, NumUsers: 2000, AvgDegree: 2.5, NumTopics: 16, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tw.AvgDegree() <= news.AvgDegree() {
		t.Fatalf("twitter-like (%v) not denser than news-like (%v)",
			tw.AvgDegree(), news.AvgDegree())
	}
	degs, counts := tw.InDegreeDistribution()
	if len(degs) == 0 || len(degs) != len(counts) {
		t.Fatal("degree distribution empty")
	}
	if _, err := GenerateDataset(DatasetSpec{Kind: "bogus", NumUsers: 10, NumTopics: 2}); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestSaveLoadDataset(t *testing.T) {
	ds := exampleDataset(t)
	dir := t.TempDir()
	gp, pp := filepath.Join(dir, "g.bin"), filepath.Join(dir, "p.bin")
	if err := SaveDataset(ds, gp, pp); err != nil {
		t.Fatal(err)
	}
	ds2, err := LoadDataset(gp, pp)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.NumUsers() != 7 || ds2.NumEdges() != 7 || ds2.NumTopics() != 4 {
		t.Fatalf("reloaded dataset %d/%d/%d", ds2.NumUsers(), ds2.NumEdges(), ds2.NumTopics())
	}
	q := Query{Topics: []int{0}, K: 1}
	if ds.Score(1, q) != ds2.Score(1, q) {
		t.Fatal("scores changed across save/load")
	}
}

func TestEngineValidation(t *testing.T) {
	ds := exampleDataset(t)
	if _, err := NewEngine(nil, Options{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := NewEngine(ds, Options{Model: "bogus"}); err == nil {
		t.Fatal("bogus model accepted")
	}
	if _, err := NewEngine(ds, Options{Epsilon: 3}); err == nil {
		t.Fatal("epsilon 3 accepted")
	}
	eng, err := NewEngine(ds, exampleOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.QueryRR(Query{Topics: []int{0}, K: 1}); err == nil {
		t.Fatal("QueryRR without open index accepted")
	}
	if _, err := eng.QueryIRR(Query{Topics: []int{0}, K: 1}); err == nil {
		t.Fatal("QueryIRR without open index accepted")
	}
	if _, err := eng.EvaluateSpread(nil, Query{Topics: []int{0}, K: 1}, 0); err == nil {
		t.Fatal("zero rounds accepted")
	}
	if err := eng.OpenRRIndex(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing index file accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	ds := exampleDataset(t)
	eng, err := NewEngine(ds, Options{MaxThetaPerKeyword: 500, PilotSets: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: ε=0.1, K=100, IC. Query under the cap (reported as capped
	// because θ for ε=0.1 on 7 nodes is enormous).
	res, err := eng.QueryWRIS(Query{Topics: []int{0}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ThetaCapped {
		t.Fatal("tight cap not reported")
	}
}

func TestLTIndexEndToEnd(t *testing.T) {
	ds := exampleDataset(t)
	opts := exampleOptions()
	opts.Model = LT
	eng, err := NewEngine(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	dir := t.TempDir()
	rrPath := filepath.Join(dir, "lt.rr")
	irrPath := filepath.Join(dir, "lt.irr")
	if _, err := eng.BuildRRIndex(rrPath); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.BuildIRRIndex(irrPath); err != nil {
		t.Fatal(err)
	}
	if err := eng.OpenRRIndex(rrPath); err != nil {
		t.Fatal(err)
	}
	if err := eng.OpenIRRIndex(irrPath); err != nil {
		t.Fatal(err)
	}
	q := Query{Topics: []int{0, 1}, K: 2}
	a, err := eng.QueryRR(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.QueryIRR(q)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 3 through the public API, under LT.
	if math.Abs(a.EstSpread-b.EstSpread) > 1e-9 {
		t.Fatalf("LT spreads differ: %v vs %v", a.EstSpread, b.EstSpread)
	}
	sa, err := eng.EvaluateSpread(a.Seeds, q, 40000)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := eng.EvaluateSpread(b.Seeds, q, 40000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sa-sb) > 0.1*math.Max(sa, sb)+0.05 {
		t.Fatalf("LT MC spreads diverge: %v vs %v", sa, sb)
	}
}

func TestRebuildOverwritesOpenIndex(t *testing.T) {
	ds := exampleDataset(t)
	eng, err := NewEngine(ds, exampleOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	dir := t.TempDir()
	path := filepath.Join(dir, "ads.rr")
	if _, err := eng.BuildRRIndex(path); err != nil {
		t.Fatal(err)
	}
	if err := eng.OpenRRIndex(path); err != nil {
		t.Fatal(err)
	}
	// Re-open over an already-open index: the old handle must be released
	// and queries must keep working.
	if err := eng.OpenRRIndex(path); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.QueryRR(Query{Topics: []int{0}, K: 1}); err != nil {
		t.Fatal(err)
	}
}
