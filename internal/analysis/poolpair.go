package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Poolpair checks the size-classed scratch pools in internal/pool:
// every get (Bools, Ints, Int32s, Int64s, Uint32s, Int32Lists) must be
// paired with the matching Put on every path out of the function —
// deferred, called before each return, or ownership-transferred by
// returning the slice (or the locally-built struct holding it) to the
// caller. It also flags pooled slices escaping into places that outlive
// the query: fields of //kbtim:cached artifact types and package-level
// variables. A dropped Put only costs a future allocation, but a
// steady-state query path that leaks scratch on error returns is how
// the allocation ceiling quietly comes back (see internal/pool's doc).
var Poolpair = &Analyzer{
	Name: "poolpair",
	Doc:  "check that pool gets are paired with matching Puts on all paths and never escape the query",
	Run:  runPoolpair,
}

// poolPairs maps each pool get to its put.
var poolPairs = map[string]string{
	"Bools":      "PutBools",
	"Ints":       "PutInts",
	"Int32s":     "PutInt32s",
	"Int64s":     "PutInt64s",
	"Uint32s":    "PutUint32s",
	"Int32Lists": "PutInt32Lists",
}

func runPoolpair(pass *Pass) error {
	for _, f := range pass.Files {
		for _, scope := range funcScopes(f) {
			runPoolpairScope(pass, scope)
		}
	}
	return nil
}

func runPoolpairScope(pass *Pass, scope funcScope) {
	info := pass.TypesInfo
	spools := indexSlicePoolVars(info, scope.body)
	inspectOwnStmts(scope.body, func(as *ast.AssignStmt) {
		if len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i, rhs := range as.Rhs {
			if lit := compositeLitOf(rhs); lit != nil {
				trackCompositeGets(pass, scope, as, as.Lhs[i], lit)
				continue
			}
			call, get := poolGetCall(info, rhs)
			if call != nil {
				tr := trackPoolGet(pass, scope, as.Lhs[i], call, get)
				if tr == nil {
					continue
				}
				addSettleSummary(pass, tr)
				checkEscapes(pass, scope, tr)
				checkSettled(pass, tr, scope.body, as)
				continue
			}
			call, recv := slicePoolGetCall(info, spools, rhs)
			if call == nil {
				continue
			}
			tr := trackSlicePoolGet(pass, as.Lhs[i], call, recv, spools)
			if tr == nil {
				continue
			}
			addSettleSummary(pass, tr)
			checkEscapes(pass, scope, tr)
			checkSettled(pass, tr, scope.body, as)
		}
	})
}

// addSettleSummary extends an ident-tracked resource's release matcher
// with the interprocedural summary: passing the slice to a helper whose
// summary proves it Puts the parameter settles it here too.
func addSettleSummary(pass *Pass, tr *tracked) {
	if pass.Prog != nil && tr.obj != nil {
		tr.isRelease = orMatchers(tr.isRelease, pass.Prog.settlesViaCall(pass.TypesInfo, tr.obj))
	}
}

// compositeLitOf unwraps rhs to a keyed composite literal (directly or
// under a unary &), the shape of batch-struct construction.
func compositeLitOf(rhs ast.Expr) *ast.CompositeLit {
	e := unparen(rhs)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = unparen(u.X)
	}
	lit, _ := e.(*ast.CompositeLit)
	return lit
}

// trackCompositeGets handles pool gets embedded in composite literals:
//
//	b := batch{flat: pool.Uint32s(n), off: pool.Ints(m)}
//
// Each keyed field holding a get is tracked exactly like an explicit
// field assignment (b.flat = pool.Uint32s(n)) would be.
func trackCompositeGets(pass *Pass, scope funcScope, as *ast.AssignStmt, lhs ast.Expr, lit *ast.CompositeLit) {
	info := pass.TypesInfo
	baseID, ok := lhs.(*ast.Ident)
	if !ok || baseID.Name == "_" {
		return
	}
	baseObj := identObj(info, baseID)
	if baseObj == nil || !declaredIn(baseObj, scope.body) {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		call, get := poolGetCall(info, kv.Value)
		if call == nil {
			continue
		}
		expr := baseID.Name + "." + key.Name
		tr := &tracked{
			pos:       call.Pos(),
			what:      fmt.Sprintf("pool.%s slice in %s", get, expr),
			baseObj:   baseObj,
			exprStr:   expr,
			isRelease: poolPutMatcher(info, poolPairs[get], expr, nil, baseObj),
		}
		checkEscapes(pass, scope, tr)
		checkSettled(pass, tr, scope.body, as)
	}
}

// poolGetCall unwraps rhs (through parens and re-slicings like
// pool.Uint32s(n)[:0]) to a call of one of the pool get functions,
// returning the call and the get name.
func poolGetCall(info *types.Info, rhs ast.Expr) (*ast.CallExpr, string) {
	for {
		switch e := rhs.(type) {
		case *ast.ParenExpr:
			rhs = e.X
		case *ast.SliceExpr:
			rhs = e.X
		default:
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				return nil, ""
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return nil, ""
			}
			if _, ok := poolPairs[sel.Sel.Name]; !ok {
				return nil, ""
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return nil, ""
			}
			pn, ok := info.Uses[pkgID].(*types.PkgName)
			if !ok || pn.Imported().Name() != "pool" {
				return nil, ""
			}
			return call, sel.Sel.Name
		}
	}
}

// trackPoolGet builds the tracked resource for one pool get, based on
// what the result is assigned to. Gets assigned to a plain local ident
// or to a field of a locally-constructed struct are tracked; anything
// else (a field of a parameter or receiver, an index expression) is
// outside what the checker can follow and stays silent.
func trackPoolGet(pass *Pass, scope funcScope, lhs ast.Expr, call *ast.CallExpr, get string) *tracked {
	info := pass.TypesInfo
	what := fmt.Sprintf("pool.%s slice", get)
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			pass.Reportf(l.Pos(), "%s is discarded; pool.%s must be called on it", what, poolPairs[get])
			return nil
		}
		obj := identObj(info, l)
		if obj == nil {
			return nil
		}
		return &tracked{
			pos:       call.Pos(),
			what:      what,
			obj:       obj,
			exprStr:   l.Name,
			isRelease: poolPutMatcher(info, poolPairs[get], l.Name, obj, nil),
		}
	case *ast.SelectorExpr:
		base, ok := l.X.(*ast.Ident)
		if !ok {
			return nil
		}
		baseObj := identObj(info, base)
		if baseObj == nil || !declaredIn(baseObj, scope.body) {
			return nil
		}
		expr := base.Name + "." + l.Sel.Name
		return &tracked{
			pos:       call.Pos(),
			what:      fmt.Sprintf("%s in %s", what, expr),
			baseObj:   baseObj,
			exprStr:   expr,
			isRelease: poolPutMatcher(info, poolPairs[get], expr, nil, baseObj),
		}
	}
	return nil
}

// declaredIn reports whether obj is declared inside body — i.e. a true
// local, not a parameter, receiver, or package-level variable.
func declaredIn(obj types.Object, body *ast.BlockStmt) bool {
	return obj.Pos() >= body.Pos() && obj.Pos() < body.End()
}

// poolPutMatcher matches pool.<put>(expr) for the tracked slice, and —
// for field-tracked slices — base.release()/base.Release(), the
// convention for a struct method that returns all its pooled fields.
func poolPutMatcher(info *types.Info, put, exprStr string, obj, baseObj types.Object) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		if baseObj != nil && (sel.Sel.Name == "release" || sel.Sel.Name == "Release") {
			if id, ok := sel.X.(*ast.Ident); ok && identObj(info, id) == baseObj {
				return true
			}
		}
		if sel.Sel.Name != put || len(call.Args) != 1 {
			return false
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return false
		}
		if pn, ok := info.Uses[pkgID].(*types.PkgName); !ok || pn.Imported().Name() != "pool" {
			return false
		}
		arg := call.Args[0]
		if id, ok := arg.(*ast.Ident); ok && obj != nil && identObj(info, id) == obj {
			return true
		}
		return types.ExprString(arg) == exprStr
	}
}

// checkEscapes flags stores of the tracked pooled slice into sinks that
// outlive the query: fields or elements of //kbtim:cached artifact
// types, and package-level variables.
func checkEscapes(pass *Pass, scope funcScope, tr *tracked) {
	info := pass.TypesInfo
	inspectOwnStmts(scope.body, func(as *ast.AssignStmt) {
		if len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i, rhs := range as.Rhs {
			if types.ExprString(unwrapSlices(rhs)) != tr.exprStr {
				continue
			}
			lhs := as.Lhs[i]
			root := rootExpr(lhs)
			if root != lhs {
				if name := markedTypeName(pass, root); name != "" {
					pass.Reportf(as.Pos(), "%s escapes into cached %s via %s", tr.what, name, types.ExprString(lhs))
					continue
				}
			}
			if id, ok := root.(*ast.Ident); ok {
				if obj := identObj(info, id); obj != nil {
					if _, isVar := obj.(*types.Var); isVar && obj.Parent() == pass.Pkg.Scope() {
						pass.Reportf(as.Pos(), "%s escapes into package-level %s", tr.what, id.Name)
					}
				}
			}
		}
	})
}

func unwrapSlices(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return e
		}
	}
}

// rootExpr peels selectors, indexes, derefs, and parens down to the
// leftmost operand of an lvalue.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return e
		}
	}
}

// markedTypeName returns the qualified name of e's type when it is (a
// pointer to) a //kbtim:cached marked named type, else "".
func markedTypeName(pass *Pass, e ast.Expr) string {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return ""
	}
	return markedName(pass, tv.Type)
}

// --- SlicePool method-value support ---

// A slicePoolIndex records, per scope, local bindings of SlicePool
// method values: g := p.Get and pu := p.Put. Gets made through such a
// binding (or directly as p.Get(n)) are tracked like package-level pool
// gets, with the matching Put being p.Put(s) or pu(s) on the same pool.
type slicePoolIndex struct {
	gets map[types.Object]string // bound Get method value -> receiver expr
	puts map[types.Object]string // bound Put method value -> receiver expr
}

// isSlicePoolType reports (a pointer to) pool.SlicePool[T].
func isSlicePoolType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "SlicePool" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/pool")
}

// indexSlicePoolVars pre-scans one scope for SlicePool method-value
// bindings.
func indexSlicePoolVars(info *types.Info, body *ast.BlockStmt) *slicePoolIndex {
	idx := &slicePoolIndex{
		gets: make(map[types.Object]string),
		puts: make(map[types.Object]string),
	}
	inspectOwnStmts(body, func(as *ast.AssignStmt) {
		if len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i, rhs := range as.Rhs {
			sel, ok := unparen(rhs).(*ast.SelectorExpr)
			if !ok || !isSlicePoolType(info.Types[sel.X].Type) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := identObj(info, id)
			if obj == nil {
				continue
			}
			switch sel.Sel.Name {
			case "Get":
				idx.gets[obj] = types.ExprString(sel.X)
			case "Put":
				idx.puts[obj] = types.ExprString(sel.X)
			}
		}
	})
	return idx
}

// slicePoolGetCall unwraps rhs (through parens and re-slicings) to a
// SlicePool get — p.Get(n) directly, or g(n) through a method value
// bound earlier in the scope — returning the call and the receiver's
// canonical expression.
func slicePoolGetCall(info *types.Info, idx *slicePoolIndex, rhs ast.Expr) (*ast.CallExpr, string) {
	e := unwrapSlices(rhs)
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Get" && isSlicePoolType(info.Types[fun.X].Type) {
			return call, types.ExprString(fun.X)
		}
	case *ast.Ident:
		if obj := identObj(info, fun); obj != nil {
			if recv, ok := idx.gets[obj]; ok {
				return call, recv
			}
		}
	}
	return nil, ""
}

// trackSlicePoolGet builds the tracked resource for one SlicePool get
// assigned to a plain local ident.
func trackSlicePoolGet(pass *Pass, lhs ast.Expr, call *ast.CallExpr, recv string, idx *slicePoolIndex) *tracked {
	info := pass.TypesInfo
	what := fmt.Sprintf("%s.Get slice", recv)
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return nil
	}
	if id.Name == "_" {
		pass.Reportf(id.Pos(), "%s is discarded; %s.Put must be called on it", what, recv)
		return nil
	}
	obj := identObj(info, id)
	if obj == nil {
		return nil
	}
	return &tracked{
		pos:       call.Pos(),
		what:      what,
		obj:       obj,
		exprStr:   id.Name,
		isRelease: slicePoolPutMatcher(info, recv, obj, idx),
	}
}

// slicePoolPutMatcher matches recv.Put(s) and pu(s) where pu is a Put
// method value bound to the same pool.
func slicePoolPutMatcher(info *types.Info, recv string, obj types.Object, idx *slicePoolIndex) func(*ast.CallExpr) bool {
	argMatches := func(call *ast.CallExpr) bool {
		if len(call.Args) != 1 {
			return false
		}
		id, ok := unparen(unwrapSlices(call.Args[0])).(*ast.Ident)
		return ok && identObj(info, id) == obj
	}
	return func(call *ast.CallExpr) bool {
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			return fun.Sel.Name == "Put" && isSlicePoolType(info.Types[fun.X].Type) &&
				types.ExprString(fun.X) == recv && argMatches(call)
		case *ast.Ident:
			if o := identObj(info, fun); o != nil {
				return idx.puts[o] == recv && argMatches(call)
			}
		}
		return false
	}
}

// markedName is markedTypeName on a types.Type.
func markedName(pass *Pass, t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	name := obj.Pkg().Path() + "." + obj.Name()
	if pass.Markers[name] {
		return name
	}
	return ""
}
