package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Cacheimmutable turns the "cached values are immutable" convention
// from the decoded-cache work into a checked property. Artifact types
// whose declarations carry a //kbtim:cached marker (rrset.Batch,
// rrindex's inverted table, irrindex's partition block — the things
// internal/objcache hands out to concurrent readers) may only be
// field- or element-written by (a) the function that constructed the
// value — detected as the value being assigned from a composite
// literal or new() in the same function — or (b) the type's own
// methods, which are its construction and recycling surface. Any other
// write is a data race waiting for a cache hit to expose it.
var Cacheimmutable = &Analyzer{
	Name: "cacheimmutable",
	Doc:  "flag post-construction writes to //kbtim:cached artifact types outside their constructors",
	Run:  runCacheimmutable,
}

func runCacheimmutable(pass *Pass) error {
	if len(pass.Markers) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || receiverIsMarked(pass, fd) {
				continue
			}
			checkWrites(pass, fd)
		}
	}
	return nil
}

// receiverIsMarked reports whether fd is a method of a marked type.
func receiverIsMarked(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
	return ok && markedName(pass, tv.Type) != ""
}

// constructedLocals collects objects bound to freshly-constructed
// marked-type values anywhere in fd (closures included — a worker
// closure building an artifact is still its constructor): x := &T{...},
// x := T{...}, x := new(T), and the var-declaration forms.
func constructedLocals(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	info := pass.TypesInfo
	locals := make(map[types.Object]bool)
	bind := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if !isFreshMarkedValue(pass, rhs) {
			return
		}
		if obj := identObj(info, id); obj != nil {
			locals[obj] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Rhs {
					bind(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Values {
					bind(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return locals
}

// isFreshMarkedValue reports whether e constructs a new marked-type
// value: &T{...}, T{...}, or new(T).
func isFreshMarkedValue(pass *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return isFreshMarkedValue(pass, e.X)
		}
	case *ast.CompositeLit:
		if tv, ok := pass.TypesInfo.Types[e]; ok {
			return markedName(pass, tv.Type) != ""
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" && len(e.Args) == 1 {
			if tv, ok := pass.TypesInfo.Types[e]; ok {
				return markedName(pass, tv.Type) != ""
			}
		}
	}
	return false
}

// checkWrites flags field/element writes through marked-type values
// that did not originate from a constructor in this function.
func checkWrites(pass *Pass, fd *ast.FuncDecl) {
	locals := constructedLocals(pass, fd)
	flag := func(lhs ast.Expr) {
		name, root := markedWriteTarget(pass, lhs)
		if name == "" {
			return
		}
		if id, ok := root.(*ast.Ident); ok {
			if obj := identObj(pass.TypesInfo, id); obj != nil && locals[obj] {
				return // writing to a value this function constructed
			}
		}
		pass.Reportf(lhs.Pos(), "write to %s (%s) outside its constructor: cached artifacts are immutable once published",
			name, types.ExprString(lhs))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				flag(l)
			}
		case *ast.IncDecStmt:
			flag(n.X)
		}
		return true
	})
}

// markedWriteTarget walks the lvalue chain of lhs (x.f, x.f[i], *p)
// looking for a base of marked type; it returns the marked type's
// qualified name and the root expression the value flowed from.
func markedWriteTarget(pass *Pass, lhs ast.Expr) (string, ast.Expr) {
	cur := lhs
	for {
		var base ast.Expr
		switch x := cur.(type) {
		case *ast.SelectorExpr:
			base = x.X
		case *ast.IndexExpr:
			base = x.X
		case *ast.StarExpr:
			base = x.X
		case *ast.ParenExpr:
			base = x.X
		default:
			return "", nil
		}
		if tv, ok := pass.TypesInfo.Types[base]; ok {
			if name := markedName(pass, tv.Type); name != "" {
				return name, rootExpr(base)
			}
		}
		cur = base
	}
}
