package analysis_test

import (
	"testing"

	"kbtim/internal/analysis"
	"kbtim/internal/analysis/analysistest"
)

// The golden tests prove each analyzer live: every testdata package
// seeds real violations (asserted by // want comments) alongside the
// sanctioned patterns and one //kbtim:allow-suppressed case.

func TestHandlepinGolden(t *testing.T) {
	analysistest.Run(t, "../..", "testdata/src/handlepin", analysis.Handlepin)
}

func TestPoolpairGolden(t *testing.T) {
	analysistest.Run(t, "../..", "testdata/src/poolpair", analysis.Poolpair)
}

func TestCtxflowGolden(t *testing.T) {
	path := "kbtim/lintdata/ctxflow"
	analysis.CtxflowScope[path] = true
	defer delete(analysis.CtxflowScope, path)
	analysistest.Run(t, "../..", "testdata/src/ctxflow", analysis.Ctxflow)
}

// TestCtxflowStreamRootGolden runs ctxflow WITHOUT scoping the testdata
// package in: every finding there fires purely because the function
// carries an emission sink (StreamOptions/SolveOptions parameter).
func TestCtxflowStreamRootGolden(t *testing.T) {
	analysistest.Run(t, "../..", "testdata/src/ctxflowstream", analysis.Ctxflow)
}

func TestCacheimmutableGolden(t *testing.T) {
	analysistest.Run(t, "../..", "testdata/src/cacheimmutable", analysis.Cacheimmutable)
}

func TestLockorderGolden(t *testing.T) {
	analysistest.Run(t, "../..", "testdata/src/lockorder", analysis.Lockorder)
}

func TestAtomicfieldGolden(t *testing.T) {
	analysistest.Run(t, "../..", "testdata/src/atomicfield", analysis.Atomicfield)
}

// TestTreeIsClean runs the full suite over the whole module, the same
// gate CI applies with cmd/kbtim-lint: the tree must lint clean.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module typecheck is a few seconds; skipped in -short")
	}
	prog, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags, err := analysis.Run(prog, analysis.All())
	if err != nil {
		t.Fatalf("run suite: %v", err)
	}
	for _, d := range analysis.Active(diags) {
		t.Errorf("unsuppressed finding: %s", d)
	}
}
