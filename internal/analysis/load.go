package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// A Package is one type-checked module package ready for analysis.
type Package struct {
	Path      string
	Dir       string
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// A Program is a loaded set of analysis targets plus everything shared
// across them: the file set, the //kbtim:cached type markers and
// //kbtim:lockrank field ranks harvested from every package parsed
// while resolving imports, and the caches backing the CFG engine and
// the interprocedural settle summaries.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	Markers  map[string]bool

	// LockRanks maps "pkgpath.TypeName.field" to the rank declared with
	// //kbtim:lockrank <n> on a mutex field. Lower ranks must be
	// acquired first; see the lockorder analyzer.
	LockRanks map[string]int

	// All holds every module package type-checked while loading
	// (analysis targets and their module dependencies), the universe
	// the interprocedural summaries walk.
	All []*Package

	cfgs    map[*ast.BlockStmt]*funcCFG
	decls   map[*types.Func]*funcDecl
	settled map[settleKey]settleAnswer
}

// cfgOf returns the memoized CFG for one function body.
func (prog *Program) cfgOf(body *ast.BlockStmt) *funcCFG {
	if prog.cfgs == nil {
		prog.cfgs = make(map[*ast.BlockStmt]*funcCFG)
	}
	if g, ok := prog.cfgs[body]; ok {
		return g
	}
	g := buildCFG(body)
	prog.cfgs[body] = g
	return g
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath   string
	Dir          string
	Name         string
	Standard     bool
	GoFiles      []string
	TestGoFiles  []string // _test.go files in the package itself
	XTestGoFiles []string // _test.go files in the external pkg_test package
}

// goList runs `go list <args>` in dir and decodes the JSON stream.
func goList(dir string, args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []*listPkg
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// loader type-checks module packages from source on demand. Standard
// library imports are delegated to the stdlib source importer; imports
// inside the module are parsed and checked recursively (the source
// importer cannot resolve main-module paths), with results memoized so
// every package is checked exactly once per Program.
type loader struct {
	fset      *token.FileSet
	std       types.Importer
	list      map[string]*listPkg // module (non-Standard) packages by import path
	pkgs      map[string]*Package // memoized results
	markers   map[string]bool
	lockRanks map[string]int
}

func newLoader(fset *token.FileSet, universe []*listPkg) *loader {
	l := &loader{
		fset:      fset,
		std:       importer.ForCompiler(fset, "source", nil),
		list:      make(map[string]*listPkg),
		pkgs:      make(map[string]*Package),
		markers:   make(map[string]bool),
		lockRanks: make(map[string]int),
	}
	for _, lp := range universe {
		if !lp.Standard {
			l.list[lp.ImportPath] = lp
		}
	}
	return l
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if lp, ok := l.list[path]; ok {
		p, err := l.check(lp)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// parseFiles parses the named files from dir.
func (l *loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check parses and type-checks one module package (memoized).
func (l *loader) check(lp *listPkg) (*Package, error) {
	if p, ok := l.pkgs[lp.ImportPath]; ok {
		return p, nil
	}
	files, err := l.parseFiles(lp.Dir, lp.GoFiles)
	if err != nil {
		return nil, err
	}
	return l.checkFiles(lp.ImportPath, lp.Dir, files)
}

// checkAugmented type-checks a package's GoFiles plus its in-package
// _test.go files. The result is deliberately NOT memoized under the
// import path: every other package must keep resolving the import to
// the plain (test-free) variant so type identities stay consistent
// across the program.
func (l *loader) checkAugmented(lp *listPkg) (*Package, error) {
	files, err := l.parseFiles(lp.Dir, append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...))
	if err != nil {
		return nil, err
	}
	saved, had := l.pkgs[lp.ImportPath]
	p, err := l.checkFiles(lp.ImportPath, lp.Dir, files)
	if had {
		l.pkgs[lp.ImportPath] = saved
	} else {
		delete(l.pkgs, lp.ImportPath)
	}
	return p, err
}

// checkXTest type-checks a package's external test package
// (pkg_test) under the import path <path>_test.
func (l *loader) checkXTest(lp *listPkg) (*Package, error) {
	files, err := l.parseFiles(lp.Dir, lp.XTestGoFiles)
	if err != nil {
		return nil, err
	}
	return l.checkFiles(lp.ImportPath+"_test", lp.Dir, files)
}

// checkFiles type-checks an already-parsed file list as package path.
func (l *loader) checkFiles(path, dir string, files []*ast.File) (*Package, error) {
	harvestMarkers(files, path, l.markers)
	harvestLockRanks(files, path, l.lockRanks)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, TypesInfo: info}
	l.pkgs[path] = p
	return p, nil
}

// harvestMarkers records type declarations carrying a //kbtim:cached
// comment (on the type spec or its enclosing decl) as "pkgpath.TypeName".
func harvestMarkers(files []*ast.File, pkgPath string, out map[string]bool) {
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasMarker(gd.Doc) || hasMarker(ts.Doc) || hasMarker(ts.Comment) {
					out[pkgPath+"."+ts.Name.Name] = true
				}
			}
		}
	}
}

func hasMarker(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "kbtim:cached") {
			return true
		}
	}
	return false
}

// harvestLockRanks records struct fields annotated //kbtim:lockrank <n>
// (doc comment above the field or line comment after it) as
// "pkgpath.TypeName.field" → rank.
func harvestLockRanks(files []*ast.File, pkgPath string, out map[string]int) {
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					rank, ok := lockRankOf(field.Doc)
					if !ok {
						rank, ok = lockRankOf(field.Comment)
					}
					if !ok {
						continue
					}
					for _, name := range field.Names {
						out[pkgPath+"."+ts.Name.Name+"."+name.Name] = rank
					}
				}
			}
		}
	}
}

func lockRankOf(cg *ast.CommentGroup) (int, bool) {
	if cg == nil {
		return 0, false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		rest, ok := strings.CutPrefix(text, "kbtim:lockrank")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		n, err := strconv.Atoi(fields[0])
		if err == nil {
			return n, true
		}
	}
	return 0, false
}

// Load enumerates patterns with the go tool (run in moduleDir) and
// type-checks every matched module package plus, lazily, every module
// package they import. Test files are analyzed too: a package with
// in-package _test.go files is analyzed as the augmented (GoFiles +
// TestGoFiles) variant, and an external pkg_test package is analyzed
// as a target of its own under the path "<pkg>_test". Imports always
// resolve to the plain variant so type identities stay consistent.
func Load(moduleDir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(moduleDir, append([]string{"-json"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	universe, err := goList(moduleDir, append([]string{"-deps", "-json"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := newLoader(fset, universe)
	prog := &Program{Fset: fset, Markers: l.markers, LockRanks: l.lockRanks}
	for _, lp := range targets {
		if lp.Standard {
			continue
		}
		p, err := l.check(lp)
		if err != nil {
			return nil, err
		}
		prog.All = append(prog.All, p)
		if len(lp.TestGoFiles) > 0 {
			if p, err = l.checkAugmented(lp); err != nil {
				return nil, err
			}
		}
		prog.Packages = append(prog.Packages, p)
		if len(lp.XTestGoFiles) > 0 {
			xp, err := l.checkXTest(lp)
			if err != nil {
				return nil, err
			}
			prog.Packages = append(prog.Packages, xp)
		}
	}
	// Module dependencies pulled in lazily while resolving imports also
	// belong to the summary universe.
	seen := make(map[*Package]bool)
	for _, p := range prog.All {
		seen[p] = true
	}
	for _, p := range l.pkgs {
		if !seen[p] {
			prog.All = append(prog.All, p)
		}
	}
	sort.Slice(prog.All, func(i, j int) bool { return prog.All[i].Path < prog.All[j].Path })
	sort.Slice(prog.Packages, func(i, j int) bool { return prog.Packages[i].Path < prog.Packages[j].Path })
	return prog, nil
}

// LoadDir type-checks the .go files of one directory as a standalone
// package named importPath, resolving module imports against moduleDir.
// This is how analyzer golden tests load testdata packages, which are
// invisible to go build (testdata is a reserved directory name) but can
// still import real module packages such as kbtim/internal/pool.
func LoadDir(moduleDir, dir, importPath string) (*Program, error) {
	universe, err := goList(moduleDir, "-deps", "-json", "./...")
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := newLoader(fset, universe)
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	var files []*ast.File
	for _, name := range matches {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	p, err := l.checkFiles(importPath, dir, files)
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: fset, Packages: []*Package{p}, Markers: l.markers, LockRanks: l.lockRanks}
	for _, dep := range l.pkgs {
		prog.All = append(prog.All, dep)
	}
	sort.Slice(prog.All, func(i, j int) bool { return prog.All[i].Path < prog.All[j].Path })
	return prog, nil
}
