package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomicfield checks that the serving-stats counters stay coherent: a
// struct field that is accessed atomically anywhere in a package must
// be accessed atomically everywhere.
//
// Two styles are covered:
//
//   - Function-style (sync/atomic.AddInt64(&s.n, 1) ...): once any
//     call passes &x.F to a sync/atomic function, every other plain
//     read or write of that field in the package is reported.
//   - Typed-style (atomic.Int64 / Uint64 / Bool / ... fields): the
//     field's value must never be copied — assigned, passed, returned,
//     or compared as a value. Method calls through the field and
//     taking its address are the only legitimate uses. (go vet's
//     copylocks catches whole-struct copies; this catches the
//     field-level reads that silently tear on 32-bit platforms or
//     race undetected.)
var Atomicfield = &Analyzer{
	Name: "atomicfield",
	Doc:  "check that fields accessed via sync/atomic are never read or written non-atomically",
	Run:  runAtomicfield,
}

func runAtomicfield(pass *Pass) error {
	info := pass.TypesInfo

	// Pass 1: collect fields used function-style, and remember the
	// exact selector nodes that appear as atomic-call operands so pass
	// 2 can exempt them.
	atomicFields := make(map[*types.Var]bool)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				sel, ok := unparen(u.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := fieldVarOf(info, sel); fv != nil {
					atomicFields[fv] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}

	// Pass 2: flag every other access to those fields, plus value
	// copies of typed-atomic fields.
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fv := fieldVarOf(info, sel)
			if fv == nil {
				return true
			}
			parent := ast.Node(nil)
			if len(stack) >= 2 {
				parent = stack[len(stack)-2]
			}
			if atomicFields[fv] && !sanctioned[sel] && !isAddressedBy(parent, sel) {
				pass.Reportf(sel.Pos(),
					"field %s is accessed with sync/atomic elsewhere in this package; this access must be atomic too",
					fv.Name())
				return true
			}
			if isAtomicValueType(fv.Type()) && isValueUse(parent, sel) {
				pass.Reportf(sel.Pos(),
					"atomic field %s must not be used as a plain value; call its methods (Load/Store/Add) instead",
					fv.Name())
			}
			return true
		})
	}
	return nil
}

// isSyncAtomicCall reports a call to a package-level function of
// sync/atomic (AddInt64, LoadUint32, CompareAndSwapPointer, ...).
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// fieldVarOf resolves sel to the struct field it selects, or nil.
func fieldVarOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return nil
	}
	return selection.Obj().(*types.Var)
}

// isAddressedBy reports whether parent is &sel — taking the address is
// how the field is handed to sync/atomic, so it is never a plain use.
func isAddressedBy(parent ast.Node, sel *ast.SelectorExpr) bool {
	u, ok := parent.(*ast.UnaryExpr)
	return ok && u.Op == token.AND && unparen(u.X) == sel
}

// isAtomicValueType reports the named value types of sync/atomic
// (atomic.Int64, atomic.Uint64, atomic.Bool, atomic.Pointer[T], ...).
func isAtomicValueType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isValueUse reports whether sel (a typed-atomic field) is being used
// as a value rather than through its methods or address. The parent
// node decides: selecting a method (x.F.Load), taking the address
// (&x.F), or indexing through it are fine; everything else — an
// assignment side, a call argument, a return value, a comparison — is
// a copy of atomic state.
func isValueUse(parent ast.Node, sel *ast.SelectorExpr) bool {
	switch p := parent.(type) {
	case nil:
		return false
	case *ast.SelectorExpr:
		// x.F.Load() — method or promoted access through the field.
		return p.X != sel && unparen(p.X) != sel
	case *ast.UnaryExpr:
		return p.Op != token.AND
	case *ast.ParenExpr:
		return false // the paren's own parent was already consulted
	case *ast.IndexExpr:
		// inflight[i] where the field is a slice/array of atomics.
		return unparen(p.X) != sel
	case *ast.KeyValueExpr:
		// T{F: ...}: the key is a name, not a read.
		return p.Key != sel
	}
	return true
}
