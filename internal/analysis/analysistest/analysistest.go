// Package analysistest runs one analyzer over a golden testdata package
// and compares its findings against // want "regexp" comments, the same
// contract as golang.org/x/tools/go/analysis/analysistest (which the
// module cannot depend on). Each line carrying a finding must have a
// matching want, and each want must be matched by a finding on its
// line; //kbtim:allow suppressions are applied before matching, so a
// seeded-but-suppressed violation is asserted by the absence of a want.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"kbtim/internal/analysis"
)

// wantRe matches one expectation inside a // want comment. Several may
// appear on one line: // want "first" "second".
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one // want entry pinned to a file line.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads dir as a standalone package (resolving kbtim imports
// against moduleDir), applies a, and diffs findings against the // want
// comments in dir's sources.
func Run(t *testing.T, moduleDir, dir string, a *analysis.Analyzer) {
	t.Helper()
	importPath := "kbtim/lintdata/" + filepath.Base(dir)
	prog, err := analysis.LoadDir(moduleDir, dir, importPath)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	diags, err := analysis.Run(prog, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}
	diags = analysis.Active(diags)

	wants, err := collectWants(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Position.Filename), d.Position.Line)
		matched := false
		for _, w := range wants[key] {
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no finding matched want %q", key, w.re)
			}
		}
	}
}

// collectWants scans every .go file in dir for // want comments.
func collectWants(dir string) (map[string][]*expectation, error) {
	wants := make(map[string][]*expectation)
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, comment, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			key := fmt.Sprintf("%s:%d", filepath.Base(name), i+1)
			for _, m := range wantRe.FindAllStringSubmatch(comment, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s: bad want pattern %q: %v", key, m[1], err)
				}
				wants[key] = append(wants[key], &expectation{re: re})
			}
		}
	}
	return wants, nil
}
