package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Ctxflow checks context discipline on the query path. Inside the
// scoped packages (the root engine package plus rrindex, irrindex, and
// coverage — the packages a request traverses) it bans
// context.Background() and context.TODO(): a fresh root context there
// detaches the work from the caller's deadline and cancellation, which
// is exactly the bug class PR 5's cross-node cancellation work existed
// to kill. Two exemptions apply: the non-Ctx compatibility wrappers
// (Engine.QueryRR and friends — recognized structurally, see
// isCompatWrapper) and _test.go files, where the test function is its
// own root caller and context.Background() is the correct root.
// Additionally, IN ANY PACKAGE, a function that takes the anytime
// emission plumbing — a parameter of a named type called StreamOptions
// or SolveOptions — is a query-path root by definition: an emission
// sink only exists because a live query is streaming through, so
// minting a fresh root context there detaches exactly the plumbing
// whose caller cares most about deadlines. The ban applies to such
// functions even outside the scoped packages (the serving layer's
// fanout/server code included). Independent of package scope and file
// kind, any function holding a context that calls a sibling when a
// ...Ctx variant of that sibling exists is flagged for dropping its
// ctx on the floor.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "ban context.Background/TODO on the query path; require ctx holders to use ...Ctx variants",
	Run:  runCtxflow,
}

// CtxflowScope lists the import paths the Background/TODO ban applies
// to. It is a variable so golden tests can scope their testdata
// packages in.
var CtxflowScope = map[string]bool{
	"kbtim":                   true,
	"kbtim/internal/rrindex":  true,
	"kbtim/internal/irrindex": true,
	"kbtim/internal/coverage": true,
}

func runCtxflow(pass *Pass) error {
	inScope := CtxflowScope[pass.Pkg.Path()]
	for _, f := range pass.Files {
		isTest := strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
		if !isTest {
			for _, decl := range f.Decls {
				fd, isFn := decl.(*ast.FuncDecl)
				banHere := inScope
				if isFn {
					if isCompatWrapper(pass.TypesInfo, fd) {
						continue
					}
					// An emission sink in hand puts the function on the
					// query path no matter where it lives.
					banHere = banHere || hasEmitOptsParam(pass.TypesInfo, fd)
				}
				if !banHere {
					continue
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if name := contextRootCall(pass.TypesInfo, call); name != "" {
						pass.Reportf(call.Pos(), "context.%s() on the query path; thread the caller's ctx instead", name)
					}
					return true
				})
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasCtxParam(pass.TypesInfo, fd) {
				continue
			}
			checkDroppedCtx(pass, fd)
		}
	}
	return nil
}

// isCompatWrapper reports the sanctioned non-Ctx compatibility wrapper
// shape: a function with no context parameter whose entire body is a
// single call to its own ...Ctx sibling seeded with a fresh root
// context:
//
//	func (e *Engine) QueryRR(q Query) (RRResult, error) {
//		return e.QueryRRCtx(context.Background(), q)
//	}
//
// The fresh root is the wrapper's whole point — it exists so callers
// without a context keep working — so the Background/TODO ban does not
// apply inside it. Anything beyond that one delegating call (extra
// statements, a different callee name, a stored context) falls back to
// the ban.
func isCompatWrapper(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Body == nil || len(fd.Body.List) != 1 || hasCtxParam(info, fd) {
		return false
	}
	var call *ast.CallExpr
	switch st := fd.Body.List[0].(type) {
	case *ast.ReturnStmt:
		if len(st.Results) != 1 {
			return false
		}
		call, _ = unparen(st.Results[0]).(*ast.CallExpr)
	case *ast.ExprStmt:
		call, _ = unparen(st.X).(*ast.CallExpr)
	}
	if call == nil || calleeName(call) != fd.Name.Name+"Ctx" || len(call.Args) == 0 {
		return false
	}
	root, ok := unparen(call.Args[0]).(*ast.CallExpr)
	return ok && contextRootCall(info, root) != ""
}

// contextRootCall returns "Background" or "TODO" when call is
// context.Background() or context.TODO(), else "".
func contextRootCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "context" {
		return ""
	}
	return sel.Sel.Name
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasEmitOptsParam reports whether fd takes a parameter of a named type
// called StreamOptions or SolveOptions (by value or pointer) — the
// anytime emission plumbing. Matching by type name rather than import
// path keeps every layer's flavor covered: kbtim.StreamOptions,
// wris.StreamOptions, and coverage.SolveOptions are distinct types that
// carry the same sink.
func hasEmitOptsParam(info *types.Info, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			continue
		}
		t := tv.Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			switch named.Obj().Name() {
			case "StreamOptions", "SolveOptions":
				return true
			}
		}
	}
	return false
}

func hasCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// checkDroppedCtx flags calls inside fd (a function holding a ctx,
// closures included — they capture it) to callees that take no context
// when a ...Ctx sibling taking one exists.
func checkDroppedCtx(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if name == "" || strings.HasSuffix(name, "Ctx") {
			return true
		}
		callee := calleeFunc(info, call)
		if callee == nil || takesContext(callee) {
			return true
		}
		if sibling := ctxSibling(pass, call, callee); sibling != nil {
			pass.Reportf(call.Pos(), "call to %s drops the ctx in scope; use %s", name, sibling.Name())
		}
		return true
	})
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func takesContext(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// ctxSibling finds a <name>Ctx variant of callee that takes a context:
// a method on the same receiver type for method calls, or a same-scope
// function otherwise.
func ctxSibling(pass *Pass, call *ast.CallExpr, callee *types.Func) *types.Func {
	want := callee.Name() + "Ctx"
	sig := callee.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, pass.Pkg, want)
		if f, ok := obj.(*types.Func); ok && takesContext(f) {
			return f
		}
		return nil
	}
	if callee.Pkg() == nil {
		return nil
	}
	if f, ok := callee.Pkg().Scope().Lookup(want).(*types.Func); ok && takesContext(f) {
		return f
	}
	return nil
}
