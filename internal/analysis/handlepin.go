package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Handlepin checks that every refcounted index acquisition —
// Engine.acquireRR/acquireIRR (returning a handle with a release
// method), Sharded.acquire (returning a cleanup func), and Sharded.pin
// (returning handles plus a cleanup func) — is settled on every path:
// released, deferred, or ownership-transferred (returned or stored into
// a container the caller owns). A leaked refcount keeps an index
// generation pinned and stalls Close/swap forever, which is why this is
// a CI gate and not a review note.
var Handlepin = &Analyzer{
	Name: "handlepin",
	Doc:  "check that acquireRR/acquireIRR/acquire/pin results are released on all paths",
	Run:  runHandlepin,
}

// acquireNames are the acquisition entry points, matched by callee name
// so the check covers both the concrete Engine/Sharded methods and
// acquire-shaped function values passed as parameters (Sharded.pin
// takes one).
var acquireNames = map[string]bool{
	"acquireRR":  true,
	"acquireIRR": true,
	"acquire":    true,
	"pin":        true,
}

func runHandlepin(pass *Pass) error {
	for _, f := range pass.Files {
		for _, scope := range funcScopes(f) {
			runHandlepinScope(pass, scope)
		}
	}
	return nil
}

func runHandlepinScope(pass *Pass, scope funcScope) {
	inspectOwnStmts(scope.body, func(as *ast.AssignStmt) {
		if len(as.Rhs) != 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !acquireNames[calleeName(call)] {
			return
		}
		tuple, ok := pass.TypesInfo.Types[call].Type.(*types.Tuple)
		if !ok || tuple.Len() != len(as.Lhs) || tuple.Len() < 2 {
			return
		}
		if !isErrorType(tuple.At(tuple.Len() - 1).Type()) {
			return
		}

		// Prefer the cleanup-func result when the tuple has one
		// (acquire/pin shape); otherwise the first result is a handle
		// with a release method (acquireRR/acquireIRR shape).
		trackIdx := -1
		for i := 0; i < tuple.Len()-1; i++ {
			if isCleanupFunc(tuple.At(i).Type()) {
				trackIdx = i
				break
			}
		}
		what := fmt.Sprintf("cleanup func from %s", calleeName(call))
		if trackIdx < 0 {
			if _, ok := tuple.At(0).Type().(*types.Pointer); !ok {
				return
			}
			trackIdx = 0
			what = fmt.Sprintf("handle from %s", calleeName(call))
		}

		id, ok := as.Lhs[trackIdx].(*ast.Ident)
		if !ok {
			return
		}
		if id.Name == "_" {
			pass.Reportf(id.Pos(), "%s is discarded; it must be called or stored", what)
			return
		}
		obj := identObj(pass.TypesInfo, id)
		if obj == nil {
			return
		}
		tr := &tracked{
			pos:     call.Pos(),
			what:    what,
			obj:     obj,
			exprStr: id.Name,
			errObj:  lhsObj(pass.TypesInfo, as.Lhs[tuple.Len()-1]),
		}
		if trackIdx == 0 && !isCleanupFunc(tuple.At(0).Type()) {
			tr.isRelease = releaseMethodMatcher(pass.TypesInfo, obj)
		} else {
			tr.isRelease = cleanupCallMatcher(pass.TypesInfo, obj)
		}
		// A release hidden behind a helper counts too: passing the
		// handle (or cleanup func) to a function whose interprocedural
		// summary settles that parameter settles it here.
		if pass.Prog != nil {
			tr.isRelease = orMatchers(tr.isRelease, pass.Prog.settlesViaCall(pass.TypesInfo, obj))
		}
		checkSettled(pass, tr, scope.body, as)
	})
}

// inspectOwnStmts visits every assignment directly owned by this scope,
// skipping nested function literals (each literal is its own scope).
func inspectOwnStmts(body *ast.BlockStmt, fn func(*ast.AssignStmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if as, ok := n.(*ast.AssignStmt); ok {
			fn(as)
		}
		return true
	})
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isCleanupFunc reports whether t is func() — the shape of a returned
// release/cancel closure.
func isCleanupFunc(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	return ok && sig.Params().Len() == 0 && sig.Results().Len() == 0
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

func lhsObj(info *types.Info, e ast.Expr) types.Object {
	if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
		return identObj(info, id)
	}
	return nil
}

// releaseMethodMatcher matches h.release() on the tracked handle.
func releaseMethodMatcher(info *types.Info, obj types.Object) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "release" {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		return ok && identObj(info, id) == obj
	}
}

// cleanupCallMatcher matches rel() on the tracked cleanup func.
func cleanupCallMatcher(info *types.Info, obj types.Object) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		id, ok := call.Fun.(*ast.Ident)
		return ok && identObj(info, id) == obj
	}
}
