// Package analysis implements kbtim-lint: a small, self-contained
// static-analysis framework plus the six repo-specific analyzers that
// machine-check the invariants the runtime depends on:
//
//   - handlepin: every acquireRR/acquireIRR/acquire/pin result has its
//     release (or returned cleanup func) called on all paths. A leaked
//     refcount stalls Engine.Close forever.
//   - poolpair: every internal/pool get (Bools, Ints, Int32s, Int64s,
//     Uint32s, Int32Lists, SlicePool.Get) is paired with the matching
//     Put on all paths, and tracked pooled slices never escape into
//     cached artifacts.
//   - ctxflow: no context.Background()/TODO() inside the query path
//     (root package, rrindex, irrindex, coverage), and functions holding
//     a ctx never call a non-Ctx sibling when a ...Ctx variant exists.
//   - cacheimmutable: types marked //kbtim:cached (the artifacts stored
//     in internal/objcache) are never field- or element-written outside
//     the function that constructed the value or the type's own methods.
//   - lockorder: Lock/Unlock pairing on all paths, ascending
//     //kbtim:lockrank order for annotated mutex fields, and ascending
//     shard order for indexed per-shard resources.
//   - atomicfield: a field accessed via sync/atomic anywhere in a
//     package is accessed atomically everywhere in it, and typed
//     atomics are never copied as values.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) so the analyzers can be ported to the real
// framework wholesale if the dependency is ever vendored. The driver here
// is stdlib-only: packages are enumerated with `go list -deps -json`
// (test files included) and type-checked from source with go/types (see
// load.go), because the module deliberately has zero third-party
// dependencies.
//
// The flow-sensitive analyzers share one engine: a per-function basic
// block CFG (cfg.go) that models goto, labeled break/continue, switch
// fallthrough, select, and short-circuit &&/|| as edges; a settle-state
// dataflow over it (flow.go) with branch refinement on err-guards and
// nil checks; and memoized interprocedural parameter summaries
// (summary.go) so a release hidden behind a helper counts at the call
// site.
//
// Intentional exceptions are suppressed in source with
//
//	//kbtim:allow <analyzer> <reason>
//
// placed on the offending line or the line directly above it. The reason
// is part of the syntax: an allow comment without one is ignored (and
// reported), so every suppression is self-documenting.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant check. It is run once per loaded
// package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //kbtim:allow comments.
	Name string

	// Doc is a one-line description shown by `kbtim-lint -help`.
	Doc string

	// Run applies the analyzer to one package, reporting findings
	// through pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with one type-checked package and a sink
// for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Markers holds the fully-qualified names ("pkgpath.TypeName") of
	// types whose declarations carry a //kbtim:cached comment anywhere
	// in the loaded dependency closure.
	Markers map[string]bool

	// Prog is the whole loaded program, giving analyzers access to
	// cross-package facts: lock ranks, interprocedural settle
	// summaries, and the shared CFG cache. May be nil in unit tests
	// that construct a Pass by hand.
	Prog *Program

	report func(Diagnostic)
}

// cfgOf returns the (cached) CFG for one function body.
func (p *Pass) cfgOf(body *ast.BlockStmt) *funcCFG {
	if p.Prog != nil {
		return p.Prog.cfgOf(body)
	}
	return buildCFG(body)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding from one analyzer. Suppressed findings
// (covered by a reasoned //kbtim:allow) are returned by Run with
// Suppressed set rather than dropped, so drivers can surface them
// mechanically (kbtim-lint -json) while exiting clean.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string

	Suppressed     bool
	SuppressReason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// Active filters diags down to the findings that should fail a build:
// everything not silenced by a reasoned //kbtim:allow.
func Active(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// All returns the full kbtim analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Handlepin, Poolpair, Ctxflow, Cacheimmutable, Lockorder, Atomicfield}
}
