package analysis

// Interprocedural settle summaries. The statement-level flow analyses
// ask one question across function boundaries: does passing the tracked
// resource to this call settle it? The answer is computed bottom-up and
// on demand over every package the loader type-checked — for a callee
// with a body in the module, the callee's idx-th parameter counts as
// settled when the same CFG dataflow that checks callers proves the
// parameter is released or ownership-transferred on every path of the
// callee. Helpers that release behind one more helper work because the
// summary matcher is itself part of the matcher used while summarizing;
// recursion is cut by memoizing an in-progress marker that answers
// "not settled" (the sound direction: a cyclic helper chain gets
// reported at the caller instead of silently trusted).

import (
	"go/ast"
	"go/types"
	"strings"
)

// funcDecl pairs a function declaration with the package variant it was
// type-checked in (the variant's Info maps its idents).
type funcDecl struct {
	decl *ast.FuncDecl
	pkg  *Package
}

type settleKey struct {
	fn  *types.Func
	idx int
}

type settleAnswer int

const (
	settleUnknown settleAnswer = iota
	settleInProgress
	settleYes
	settleNo
)

// declIndex maps every function with a body in the loaded program
// (module dependencies and analysis targets, including test-augmented
// variants) to its declaration.
func (prog *Program) declIndex() map[*types.Func]*funcDecl {
	if prog.decls != nil {
		return prog.decls
	}
	prog.decls = make(map[*types.Func]*funcDecl)
	index := func(p *Package) {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					prog.decls[fn] = &funcDecl{decl: fd, pkg: p}
				}
			}
		}
	}
	for _, p := range prog.All {
		index(p)
	}
	for _, p := range prog.Packages {
		index(p)
	}
	return prog.decls
}

// paramSettled reports whether fn settles (releases, invokes, or
// transfers ownership of) its idx-th parameter on every path.
func (prog *Program) paramSettled(fn *types.Func, idx int) bool {
	if prog == nil || fn == nil || idx < 0 {
		return false
	}
	key := settleKey{fn, idx}
	if prog.settled == nil {
		prog.settled = make(map[settleKey]settleAnswer)
	}
	switch prog.settled[key] {
	case settleYes:
		return true
	case settleNo, settleInProgress:
		return false
	}
	prog.settled[key] = settleInProgress
	ok := prog.computeParamSettled(fn, idx)
	if ok {
		prog.settled[key] = settleYes
	} else {
		prog.settled[key] = settleNo
	}
	return ok
}

func (prog *Program) computeParamSettled(fn *types.Func, idx int) bool {
	di := prog.declIndex()[fn]
	if di == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || idx >= sig.Params().Len() {
		return false
	}
	if sig.Variadic() && idx >= sig.Params().Len()-1 {
		return false // a bundled variadic slice is nobody's obligation
	}
	// Locate the idx-th parameter's defining ident in the declaration.
	var obj types.Object
	i := 0
	for _, field := range di.decl.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if i == idx {
				obj = di.pkg.TypesInfo.Defs[name]
			}
			i++
		}
	}
	if obj == nil || obj.Name() == "_" {
		return false
	}
	matcher := settleMatcher(prog, di.pkg.TypesInfo, obj)
	if matcher == nil {
		return false // not a resource-shaped parameter
	}
	tr := &tracked{
		pos:       obj.Pos(),
		what:      obj.Name(),
		obj:       obj,
		exprStr:   obj.Name(),
		entryLive: true,
		isRelease: matcher,
	}
	g := prog.cfgOf(di.decl.Body)
	return len(tr.settleViolations(di.pkg.TypesInfo, g)) == 0
}

// settleMatcher returns the release-call matcher for a resource-shaped
// parameter — a handle (*T with a release method), a cleanup func
// (func()), or a pooled slice — or nil for anything else. The summary
// matcher is included so releases hidden one more call down still count.
func settleMatcher(prog *Program, info *types.Info, obj types.Object) func(*ast.CallExpr) bool {
	t := obj.Type()
	switch {
	case isCleanupFunc(t):
		return orMatchers(cleanupCallMatcher(info, obj), prog.settlesViaCall(info, obj))
	case isHandleType(t):
		return orMatchers(releaseMethodMatcher(info, obj), prog.settlesViaCall(info, obj))
	case isPooledSlice(t):
		return orMatchers(poolPutArgMatcher(info, obj), prog.settlesViaCall(info, obj))
	}
	return nil
}

// settlesViaCall matches calls that pass the tracked object to a
// function whose summary settles that parameter.
func (prog *Program) settlesViaCall(info *types.Info, obj types.Object) func(*ast.CallExpr) bool {
	if prog == nil {
		return nil
	}
	return func(call *ast.CallExpr) bool {
		fn := calleeFunc(info, call)
		if fn == nil {
			return false
		}
		for i, arg := range call.Args {
			if id, ok := unparen(arg).(*ast.Ident); ok && identObj(info, id) == obj {
				if prog.paramSettled(fn, i) {
					return true
				}
			}
		}
		return false
	}
}

func orMatchers(ms ...func(*ast.CallExpr) bool) func(*ast.CallExpr) bool {
	return func(c *ast.CallExpr) bool {
		for _, m := range ms {
			if m != nil && m(c) {
				return true
			}
		}
		return false
	}
}

// isHandleType reports *T where T has a release method — the shape of
// the engine's refcounted index handles.
func isHandleType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "release" {
			return true
		}
	}
	return false
}

func isPooledSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// poolPutArgMatcher matches internal/pool Put calls (package-level
// PutBools/PutInts/... or the SlicePool.Put method) taking obj.
func poolPutArgMatcher(info *types.Info, obj types.Object) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/pool") {
			return false
		}
		if !strings.HasPrefix(fn.Name(), "Put") {
			return false
		}
		for _, arg := range call.Args {
			if id, ok := unparen(arg).(*ast.Ident); ok && identObj(info, id) == obj {
				return true
			}
		}
		return false
	}
}
