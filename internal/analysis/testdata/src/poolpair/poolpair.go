// Package poolpair is kbtim-lint golden testdata: get/put pairing and
// escape shapes over the real kbtim/internal/pool package. The // want
// comments are the expected findings; violations without a want carry a
// //kbtim:allow suppression instead.
package poolpair

import (
	"errors"

	"kbtim/internal/pool"
)

// artifact stands in for a decoded-cache value.
//
//kbtim:cached
type artifact struct{ flat []uint32 }

// batch mirrors the pooled decode target shape from rrindex.
type batch struct {
	flat []uint32
	off  []int64
}

// release returns the pooled fields, the convention the checker
// recognizes for struct-held scratch.
func (b *batch) release() {
	pool.PutUint32s(b.flat)
	pool.PutInt64s(b.off)
}

var errEarly = errors.New("early")

var global []int32

func cond() bool { return false }

func sum(s []int) int { return len(s) }

// leakOnError drops the slice on the early return.
func leakOnError(n int) error {
	s := pool.Ints(n) // want "pool.Ints slice is not released on every path"
	if cond() {
		return errEarly
	}
	pool.PutInts(s)
	return nil
}

// leakFields mirrors the decodeSets bug: pooled fields of a local
// struct leak when an error return skips the puts.
func leakFields(n int) (*batch, error) {
	b := &batch{}
	b.flat = pool.Uint32s(n)[:0] // want "pool.Uint32s slice in b.flat is not released on every path"
	b.off = pool.Int64s(n)[:0]   // want "pool.Int64s slice in b.off is not released on every path"
	if cond() {
		return nil, errEarly
	}
	return b, nil
}

// discard throws the pooled slice away unreleasably.
func discard(n int) {
	_ = pool.Bools(n) // want "pool.Bools slice is discarded"
}

// escapeCached parks pooled memory inside a cached artifact.
func escapeCached(a *artifact, n int) {
	s := pool.Uint32s(n)
	a.flat = s // want "escapes into cached"
}

// escapeGlobal parks pooled memory in a package-level variable.
func escapeGlobal(n int) {
	s := pool.Int32s(n)
	global = s // want "escapes into package-level global"
}

// okDefer is the canonical pattern.
func okDefer(n int) int {
	s := pool.Ints(n)
	defer pool.PutInts(s)
	return sum(s)
}

// okBranches puts explicitly on every path, including the error one.
func okBranches(n int) (int, error) {
	s := pool.Ints(n)
	if cond() {
		pool.PutInts(s)
		return 0, errEarly
	}
	total := sum(s)
	pool.PutInts(s)
	return total, nil
}

// okFieldsDeferredRelease mirrors the fixed decode shape: pooled fields
// of a local struct, returned on success, released via the struct's
// release method when the decode fails.
func okFieldsDeferredRelease(n int) (*batch, error) {
	b := &batch{}
	b.flat = pool.Uint32s(n)[:0]
	b.off = pool.Int64s(n)[:0]
	var err error
	defer func() {
		if err != nil {
			b.release()
		}
	}()
	if cond() {
		err = errEarly
		return nil, err
	}
	return b, nil
}

// okTransfer hands the pooled slice (and the Put obligation) to the
// caller, the decodeInvPairs contract.
func okTransfer(n int) []uint32 {
	s := pool.Uint32s(n)
	return s
}

// okAppendReassign keeps tracking across append-style self-assignment.
func okAppendReassign(n int) {
	s := pool.Int32s(n)[:0]
	for i := 0; i < n; i++ {
		s = append(s, int32(i))
	}
	pool.PutInt32s(s)
}

// retained intentionally keeps the slice alive past the return; the
// surrounding machinery puts it back later.
func retained(n int) []int {
	//kbtim:allow poolpair caller contract returns scratch via finishScratch
	s := pool.Ints(n)
	if cond() {
		return nil
	}
	return s
}
