// Gets hidden in composite literals and gets made through SlicePool
// method values — the two acquisition forms the old assignment-only
// scanner missed — plus helper-settled slices that need the
// interprocedural summary.
package poolpair

import "kbtim/internal/pool"

// scores is a package-level typed pool, the rrindex scratch idiom.
var scores pool.SlicePool[float64]

// finish is the helper hiding the Put; its summary settles the
// parameter.
func finish(s []int) int {
	n := sum(s)
	pool.PutInts(s)
	return n
}

// leakComposite builds the batch in one literal; the early return still
// leaks the pooled field.
func leakComposite(n int) (*batch, error) {
	b := &batch{
		flat: pool.Uint32s(n), // want "pool.Uint32s slice in b.flat is not released on every path"
	}
	if cond() {
		return nil, errEarly
	}
	return b, nil
}

// okComposite pairs the literal's get with the struct's release method.
func okComposite(n int) int {
	b := &batch{flat: pool.Uint32s(n)}
	defer b.release()
	return len(b.flat)
}

// leakSlicePoolMethodValue gets through a bound method value and drops
// the slice on the early return.
func leakSlicePoolMethodValue(n int) float64 {
	get := scores.Get
	s := get(n) // want "scores.Get slice is not released on every path"
	if cond() {
		return 0
	}
	scores.Put(s)
	return s[0]
}

// leakSlicePoolDirect gets directly and falls off the end still holding
// the slice.
func leakSlicePoolDirect(n int) {
	s := scores.Get(n) // want "scores.Get slice is not released before the function returns"
	sinkF(s)
}

// okSlicePoolMethodValues pairs a bound Get with a bound Put.
func okSlicePoolMethodValues(n int) float64 {
	get, put := scores.Get, scores.Put
	s := get(n)
	defer put(s)
	return s[0]
}

// okSlicePoolBranches puts explicitly on every path.
func okSlicePoolBranches(n int) (float64, error) {
	s := scores.Get(n)
	if cond() {
		scores.Put(s)
		return 0, errEarly
	}
	v := s[0]
	scores.Put(s)
	return v, nil
}

// okHelperPut settles through finish; only the interprocedural summary
// can prove this.
func okHelperPut(n int) int {
	s := pool.Ints(n)
	if cond() {
		pool.PutInts(s)
		return 0
	}
	return finish(s)
}

func sinkF(s []float64) {}

// retainedSlicePool intentionally keeps the warmup scratch live past
// the return; the surrounding machinery puts it back later.
func retainedSlicePool(n int) {
	//kbtim:allow poolpair warmup scratch; finishScores puts it back
	s := scores.Get(n)
	sinkF(s)
}
