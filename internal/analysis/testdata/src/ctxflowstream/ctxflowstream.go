// Package ctxflowstream is kbtim-lint golden testdata: the emission-sink
// root rule. Unlike the ctxflow package, this one is deliberately NOT
// scoped into CtxflowScope — the Background/TODO findings here fire
// purely because the function holds anytime emission plumbing (a
// StreamOptions or SolveOptions parameter), proving streaming code in
// any package is covered.
package ctxflowstream

import (
	"context"
	"time"
)

// StreamOptions mirrors the shape the real packages carry: an emission
// sink plus a deadline. The analyzer matches the type NAME, so this
// local flavor counts exactly like kbtim.StreamOptions.
type StreamOptions struct {
	Emit     func(seed uint32, marginal int, spreadLB float64)
	Deadline time.Time
}

// SolveOptions is the coverage-layer flavor.
type SolveOptions struct {
	Emit func(seed uint32, marginal int)
}

type store struct{}

func (s *store) queryCtx(ctx context.Context, q string) int {
	if ctx.Err() != nil {
		return 0
	}
	return len(q)
}

// streamRoot holds an emission sink and still mints a fresh root
// context: this is streaming plumbing detaching itself from the caller,
// banned in every package.
func streamRoot(s *store, so StreamOptions) int {
	return s.queryCtx(context.Background(), "q") // want "context.Background\(\) on the query path"
}

// solveRootPtr proves pointer parameters count too.
func solveRootPtr(s *store, so *SolveOptions) int {
	return s.queryCtx(context.TODO(), "q") // want "context.TODO\(\) on the query path"
}

// noSink has no emission plumbing and this package is not scoped in, so
// a fresh root is legal here.
func noSink(s *store) int {
	return s.queryCtx(context.Background(), "q")
}

// streamRootCtx threads the caller's ctx alongside the sink — the
// correct shape.
func streamRootCtx(ctx context.Context, s *store, so StreamOptions) int {
	return s.queryCtx(ctx, "q")
}

// streamQueryCtx is a Ctx variant for the wrapper below.
func streamQueryCtx(ctx context.Context, s *store, so StreamOptions) int {
	return s.queryCtx(ctx, "q")
}

// streamQuery is the sanctioned compatibility-wrapper shape — one
// delegating call to its own Ctx sibling seeded with a fresh root —
// which stays exempt even though it carries a sink.
func streamQuery(s *store, so StreamOptions) int {
	return streamQueryCtx(context.Background(), s, so)
}
