// Test files are exempt from the Background/TODO ban — a test function
// is its own root caller, so minting a root context is correct. The
// dropped-ctx check still applies: once a test holds a ctx, it must
// thread it.
package ctxflow

import "context"

func rootInTest(s *store) int {
	return s.queryCtx(context.Background(), "q")
}

func dropsInTest(ctx context.Context, s *store) int {
	return s.query("q") // want "call to query drops the ctx"
}
