// Package ctxflow is kbtim-lint golden testdata: context discipline on
// a query path. The test scopes this package into CtxflowScope before
// running. The // want comments are the expected findings; violations
// without a want carry a //kbtim:allow suppression instead.
package ctxflow

import "context"

type store struct{}

func (s *store) query(q string) int { return len(q) }

func (s *store) queryCtx(ctx context.Context, q string) int {
	select {
	case <-ctx.Done():
		return 0
	default:
	}
	return len(q)
}

func lookup(q string) int { return len(q) }

func lookupCtx(ctx context.Context, q string) int {
	if ctx.Err() != nil {
		return 0
	}
	return len(q)
}

// freshRoot mints a root context mid-path, detaching the work from the
// caller's deadline.
func freshRoot(s *store) int {
	return s.queryCtx(context.Background(), "q") // want "context.Background\(\) on the query path"
}

// freshTODO is the same bug wearing a different name.
func freshTODO(s *store) int {
	return s.queryCtx(context.TODO(), "q") // want "context.TODO\(\) on the query path"
}

// drops holds a ctx but calls the non-Ctx siblings.
func drops(ctx context.Context, s *store) int {
	return s.query("q") + lookup("q") // want "call to query drops the ctx" "call to lookup drops the ctx"
}

// dropsInClosure captures a ctx and still drops it.
func dropsInClosure(ctx context.Context, s *store) func() int {
	return func() int {
		return lookup("q") // want "call to lookup drops the ctx"
	}
}

// query is the sanctioned compatibility wrapper for ctx-less callers:
// one delegating call to its own Ctx sibling seeded with a fresh root.
// The analyzer recognizes the shape structurally; no allow needed.
func query(s *store) int {
	return s.queryCtx(context.Background(), "q")
}

// almostWrapper delegates to a Ctx sibling but does other work first —
// not the sanctioned shape, so the ban applies and an allow with a
// reason is the only way to keep it.
func almostWrapper(s *store) int {
	n := lookup("pre")
	//kbtim:allow ctxflow detached maintenance probe; no caller deadline exists
	return n + s.queryCtx(context.Background(), "q")
}

// threads does it right.
func threads(ctx context.Context, s *store) int {
	return s.queryCtx(ctx, "q") + lookupCtx(ctx, "q")
}
