// CFG-shaped cases: goto, labeled break/continue, select, short-circuit
// conditions, and releases hidden behind helpers that only the
// interprocedural parameter summary can prove. The ok cases in this
// file are exactly the shapes the old single-resource statement walker
// rejected.
package handlepin

// closeHandle is the helper hiding the release. Its summary proves the
// parameter is settled on every path — the nil guard is fine because a
// nil handle needs no release.
func closeHandle(h *handle) {
	if h == nil {
		return
	}
	h.release()
}

// maybeClose settles only on one branch, so its summary must not count
// as a release at call sites.
func maybeClose(h *handle, ok bool) {
	if ok {
		h.release()
	}
}

// relTrue releases and reports success, the shape used as a
// short-circuit operand.
func relTrue(h *handle) bool {
	h.release()
	return true
}

// leakGoto jumps straight to the return with the handle still live.
func leakGoto(e *engine, fail bool) error {
	h, err := e.acquireRR() // want "handle from acquireRR is not released on every path"
	if err != nil {
		return err
	}
	if fail {
		goto out
	}
	h.release()
out:
	return nil
}

// okGoto funnels every path through the cleanup label.
func okGoto(e *engine, fail bool) error {
	h, err := e.acquireRR()
	if err != nil {
		return err
	}
	if fail {
		goto cleanup
	}
	use(h)
cleanup:
	h.release()
	return nil
}

// okLabeledBreak releases before breaking out of both loops.
func okLabeledBreak(e *engine, xs []int) {
outer:
	for range xs {
		for _, x := range xs {
			h, err := e.acquireRR()
			if err != nil {
				return
			}
			if x > 0 {
				h.release()
				break outer
			}
			h.release()
		}
	}
}

// leakLabeledContinue re-enters the outer loop with the handle still
// live: the labeled continue skips the inner loop's release.
func leakLabeledContinue(e *engine, xs []int) {
outer:
	for range xs {
		for _, x := range xs {
			h, err := e.acquireRR() // want "handle from acquireRR is not released before the end of the loop iteration"
			if err != nil {
				return
			}
			if x == 0 {
				continue outer
			}
			h.release()
		}
	}
}

// okSelectEarly releases on the early-return arm and after the select.
func okSelectEarly(e *engine, done chan struct{}, work chan int) error {
	h, err := e.acquireRR()
	if err != nil {
		return err
	}
	select {
	case <-done:
		h.release()
		return errBoom
	case <-work:
		use(h)
	}
	h.release()
	return nil
}

// leakSelect drops the handle on the done arm's early return.
func leakSelect(e *engine, done chan struct{}, work chan int) error {
	h, err := e.acquireRR() // want "handle from acquireRR is not released on every path"
	if err != nil {
		return err
	}
	select {
	case <-done:
		return errBoom
	case <-work:
		h.release()
	}
	return nil
}

// okShortCircuit releases inside the right operand of &&: the CFG
// models the conditional evaluation, and relTrue's summary settles the
// handle on the path that evaluates it while the fallthrough path
// releases explicitly.
func okShortCircuit(e *engine) error {
	h, err := e.acquireRR()
	if err != nil {
		return err
	}
	if h.refs > 0 && relTrue(h) {
		return nil
	}
	h.release()
	return nil
}

// okHelperRelease settles through closeHandle; only the
// interprocedural summary can prove this.
func okHelperRelease(e *engine) error {
	h, err := e.acquireRR()
	if err != nil {
		return err
	}
	use(h)
	closeHandle(h)
	return nil
}

// okDeferHelper defers the helper instead of the release method.
func okDeferHelper(e *engine) error {
	h, err := e.acquireRR()
	if err != nil {
		return err
	}
	defer closeHandle(h)
	return errBoom
}

// leakHelperConditional passes the handle to a helper that releases
// only sometimes; the summary rejects it and the leak is real.
func leakHelperConditional(e *engine, ok bool) error {
	h, err := e.acquireRR() // want "handle from acquireRR is not released on every path"
	if err != nil {
		return err
	}
	maybeClose(h, ok)
	return nil
}
