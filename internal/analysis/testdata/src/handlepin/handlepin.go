// Package handlepin is kbtim-lint golden testdata: acquire/release
// shapes mirroring Engine.acquireRR/acquireIRR and Sharded.acquire/pin.
// The // want comments are the expected findings; violations without a
// want carry a //kbtim:allow suppression instead.
package handlepin

import "errors"

type handle struct{ refs int }

func (h *handle) release() { h.refs-- }

type engine struct{ h *handle }

func (e *engine) acquireRR() (*handle, error)  { return e.h, nil }
func (e *engine) acquireIRR() (*handle, error) { return e.h, nil }
func (e *engine) acquire() (func(), error)     { return func() {}, nil }
func (e *engine) pin() (map[int]*handle, func(), error) {
	return map[int]*handle{0: e.h}, func() {}, nil
}

var errBoom = errors.New("boom")

func use(h *handle) {}

// leakOnError drops the handle on the early non-error return.
func leakOnError(e *engine, fail bool) error {
	h, err := e.acquireRR() // want "handle from acquireRR is not released on every path"
	if err != nil {
		return err
	}
	if fail {
		return errBoom
	}
	h.release()
	return nil
}

// leakCleanup drops the acquire cleanup on a branch.
func leakCleanup(e *engine, fail bool) error {
	done, err := e.acquire() // want "cleanup func from acquire is not released on every path"
	if err != nil {
		return err
	}
	if fail {
		return errBoom
	}
	done()
	return nil
}

// discardPin throws the pin cleanup away entirely.
func discardPin(e *engine) error {
	_, _, err := e.pin() // want "cleanup func from pin is discarded"
	return err
}

// leakAtEnd falls off the function end with the handle live.
func leakAtEnd(e *engine) {
	h, err := e.acquireIRR() // want "handle from acquireIRR is not released before the function returns"
	if err != nil {
		return
	}
	use(h)
}

// okDefer is the canonical pattern: guard the error, defer the release.
func okDefer(e *engine) error {
	h, err := e.acquireRR()
	if err != nil {
		return err
	}
	defer h.release()
	if h.refs > 0 {
		return errBoom
	}
	return nil
}

// okBranches releases explicitly on every path.
func okBranches(e *engine, fail bool) error {
	done, err := e.acquire()
	if err != nil {
		return err
	}
	if fail {
		done()
		return errBoom
	}
	done()
	return nil
}

// okTransferReturn hands the handle (and the job of releasing it) to
// the caller.
func okTransferReturn(e *engine) (*handle, error) {
	h, err := e.acquireRR()
	if err != nil {
		return nil, err
	}
	return h, nil
}

// okTransferStore parks the handle in a container the caller owns,
// mirroring Sharded.pin collecting per-shard handles.
func okTransferStore(e *engine, m map[int]*handle) error {
	h, err := e.acquireRR()
	if err != nil {
		return err
	}
	m[0] = h
	return nil
}

// okDeferredClosure releases inside a deferred closure.
func okDeferredClosure(e *engine) error {
	done, err := e.acquire()
	if err != nil {
		return err
	}
	defer func() { done() }()
	return errBoom
}

// pinForever intentionally holds the refcount for the process lifetime,
// the one sanctioned exception.
func pinForever(e *engine) error {
	//kbtim:allow handlepin startup pin held for the process lifetime
	h, err := e.acquireRR()
	if err != nil {
		return err
	}
	use(h)
	return nil
}
