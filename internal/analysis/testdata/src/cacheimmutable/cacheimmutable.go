// Package cacheimmutable is kbtim-lint golden testdata: writes to a
// //kbtim:cached artifact type. The // want comments are the expected
// findings; violations without a want carry a //kbtim:allow suppression
// instead.
package cacheimmutable

// artifact stands in for a decoded-cache value (a parsed batch, an
// inverted table, a partition block).
//
//kbtim:cached
type artifact struct {
	flat []uint32
	n    int
}

// reset is a method of the type itself: the type's own methods are its
// construction and recycling surface, so writes here are fine.
func (a *artifact) reset() {
	a.n = 0
	a.flat = a.flat[:0]
}

// newArtifact constructs the value it writes to: fine.
func newArtifact(n int) *artifact {
	a := &artifact{}
	a.flat = make([]uint32, n)
	a.n = n
	return a
}

// buildInWorker constructs inside a closure of the same function: the
// function is still the constructor.
func buildInWorker(n int) *artifact {
	a := &artifact{}
	fill := func() {
		for i := 0; i < n; i++ {
			a.flat = append(a.flat, uint32(i))
			a.n++
		}
	}
	fill()
	return a
}

// mutate writes to an artifact somebody else constructed — the data
// race a cache hit will eventually expose.
func mutate(a *artifact) {
	a.n++         // want "write to kbtim/lintdata/cacheimmutable.artifact"
	a.flat[0] = 1 // want "write to kbtim/lintdata/cacheimmutable.artifact"
}

// mutateFetched writes to a value fetched from elsewhere.
func mutateFetched(get func() *artifact) {
	a := get()
	a.n = 7 // want "write to kbtim/lintdata/cacheimmutable.artifact"
}

// recycle writes to a received instance that is provably private to the
// caller; the suppression documents why it is safe.
func recycle(a *artifact) {
	//kbtim:allow cacheimmutable recycling a never-published scratch instance
	a.n = 0
}
