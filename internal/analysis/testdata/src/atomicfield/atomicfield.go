// Package atomicfield is kbtim-lint golden testdata: fields accessed
// via sync/atomic anywhere in the package must be accessed atomically
// everywhere, and typed atomic fields must never be copied as values.
// The // want comments are the expected findings; violations without a
// want carry a //kbtim:allow suppression instead.
package atomicfield

import "sync/atomic"

// stats mixes function-style atomic counters with an ordinary field.
type stats struct {
	hits   int64
	misses int64
	name   string
}

func (s *stats) hit()  { atomic.AddInt64(&s.hits, 1) }
func (s *stats) miss() { atomic.AddInt64(&s.misses, 1) }

// snapshot reads hits with a plain load, racing against hit().
func (s *stats) snapshot() int64 {
	return s.hits // want "field hits is accessed with sync/atomic elsewhere in this package; this access must be atomic too"
}

// reset writes misses with a plain store.
func (s *stats) reset() {
	s.misses = 0 // want "field misses is accessed with sync/atomic elsewhere in this package"
}

// okLoad reads atomically, and name — never touched atomically — stays
// a plain field.
func (s *stats) okLoad() int64 { return atomic.LoadInt64(&s.hits) }
func (s *stats) okName() string {
	return s.name
}

// newStats seeds the counters before the struct is published; nothing
// can race with construction.
func newStats(warm int64) *stats {
	s := &stats{name: "fresh"}
	//kbtim:allow atomicfield pre-publication init; no concurrent readers yet
	s.hits = warm
	return s
}

// gauge uses typed atomics.
type gauge struct {
	cur  atomic.Int64
	peak atomic.Int64
}

// okBump goes through the methods only.
func (g *gauge) okBump() {
	v := g.cur.Add(1)
	if v > g.peak.Load() {
		g.peak.Store(v)
	}
}

// copyTyped returns the atomic by value — a copy of atomic state that
// detaches from every future update.
func (g *gauge) copyTyped() atomic.Int64 {
	return g.cur // want "atomic field cur must not be used as a plain value; call its methods \(Load/Store/Add\) instead"
}

func observe(v atomic.Int64) int64 { return v.Load() }

// passTyped hands the atomic to a callee by value, same tear.
func (g *gauge) passTyped() int64 {
	return observe(g.peak) // want "atomic field peak must not be used as a plain value"
}
