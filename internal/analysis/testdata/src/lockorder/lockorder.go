// Package lockorder is kbtim-lint golden testdata: Lock/Unlock pairing
// on every path, //kbtim:lockrank ordering, and ascending shard
// acquisition. The // want comments are the expected findings;
// violations without a want carry a //kbtim:allow suppression instead.
package lockorder

import "sync"

// counter's mutex is unranked: it exercises the pure pairing check.
type counter struct {
	mu sync.RWMutex
	n  int
}

// cache mirrors objcache's two-level hierarchy: the rebalance lock
// ranks below the per-shard locks, so rebalMu → shard.mu nesting is
// legal and the inverse deadlocks.
type cache struct {
	rebalMu sync.Mutex //kbtim:lockrank 10
	shards  []*shard
}

type shard struct {
	mu sync.Mutex //kbtim:lockrank 20
	n  int
}

// eng mirrors Sharded: per-shard semaphore slots and per-shard locks
// acquired by index.
type eng struct {
	sems  []chan struct{}
	locks []sync.Mutex
}

// leakLock returns early with the lock still held.
func (c *counter) leakLock(fail bool) int {
	c.mu.Lock() // want "c.mu.Lock\(\) is not unlocked on every path"
	if fail {
		return 0
	}
	c.mu.Unlock()
	return c.n
}

// holdForever falls off the end still holding the read lock.
func (c *counter) holdForever() {
	c.mu.RLock() // want "c.mu.RLock\(\) is not unlocked before the function returns"
	sink(c.n)
}

func sink(int) {}

// relockLoop re-locks on the next iteration when the continue path
// skips the unlock.
func relockLoop(cs []*counter) {
	for _, c := range cs {
		c.mu.Lock() // want "c.mu.Lock\(\) is not unlocked before the next loop iteration locks it again"
		if c.n == 0 {
			continue
		}
		c.mu.Unlock()
	}
}

// okPairing covers the sanctioned shapes: deferred unlock, and an
// explicit unlock on every branch.
func (c *counter) okPairing(fail bool) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if fail {
		return 0
	}
	return c.n
}

func (c *counter) okBranches(fail bool) int {
	c.mu.Lock()
	if fail {
		c.mu.Unlock()
		return 0
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// okRebalance nests in ascending rank order: rebalMu (10) first, each
// shard lock (20) inside it.
func (c *cache) okRebalance() {
	c.rebalMu.Lock()
	defer c.rebalMu.Unlock()
	for _, s := range c.shards {
		s.mu.Lock()
		s.n = 0
		s.mu.Unlock()
	}
}

// inverted takes the low-rank rebalance lock while a shard lock is
// held — the deadlock mirror image of okRebalance.
func (c *cache) inverted(s *shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.rebalMu.Lock() // want "acquiring kbtim/lintdata/lockorder.cache.rebalMu \(lockrank 10\) while kbtim/lintdata/lockorder.shard.mu \(lockrank 20\) is held"
	c.rebalMu.Unlock()
}

// descendingLocks walks the per-shard locks downward, inverting the
// global acquisition order against a concurrent ascending walker.
func (e *eng) descendingLocks() {
	for i := len(e.locks) - 1; i >= 0; i-- {
		e.locks[i].Lock() // want "e.locks\[i\].Lock\(\) acquires shard resources in descending order"
		e.locks[i].Unlock()
	}
}

// descendingSems does the same with semaphore slots.
func (e *eng) descendingSems() {
	for i := len(e.sems) - 1; i >= 0; i-- {
		e.sems[i] <- struct{}{} // want "send to e.sems\[i\] acquires shard resources in descending order"
	}
}

// constOrder grabs slot 1 while still holding slot 2.
func (e *eng) constOrder() {
	e.sems[2] <- struct{}{}
	e.sems[1] <- struct{}{} // want "acquires shard 1 while shard 2 is held"
	<-e.sems[1]
	<-e.sems[2]
}

// okAscending is the Sharded.acquire shape: slots taken in index order.
func (e *eng) okAscending() {
	for i := 0; i < len(e.sems); i++ {
		e.sems[i] <- struct{}{}
	}
	for i := 0; i < len(e.sems); i++ {
		<-e.sems[i]
	}
}

// drainHold hands the locked counter to a drain goroutine that unlocks
// it, the one sanctioned cross-function unlock.
func (c *counter) drainHold() {
	//kbtim:allow lockorder handed to the drain goroutine which unlocks it
	c.mu.Lock()
	c.n = 0
}
