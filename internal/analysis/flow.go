package analysis

// This file implements the path-sensitive "settled on every path" check
// shared by handlepin and poolpair. It is a deliberately small CFG-lite:
// instead of building a control-flow graph it walks statement lists
// recursively, maintaining a single liveness flag for one tracked
// resource, and reports any function exit reachable while the resource
// is still live. The approximations all lean toward silence (an
// aliased, overwritten, or structurally-transferred resource simply
// stops being tracked) so the checker can gate CI without drowning the
// tree in false positives; the invariants it *does* enforce — release
// before every return, release before falling off the function, release
// before the next loop iteration — are exactly the ones whose violation
// leaks a refcount or a pooled slice.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A tracked resource is one acquisition (an index handle, a cleanup
// func, or a pooled slice) that must be settled — released, deferred,
// or ownership-transferred — on every path out of its function.
type tracked struct {
	pos     token.Pos    // acquisition site, where diagnostics anchor
	what    string       // diagnostic noun, e.g. "handle from acquireRR"
	obj     types.Object // object of the tracked ident (nil when field-tracked)
	baseObj types.Object // object of the base ident for field-tracked resources
	exprStr string       // canonical text of the tracked expr ("h", "rel", "blk.arena")
	errObj  types.Object // error result assigned alongside the acquisition, or nil

	// isRelease reports whether a call settles the resource.
	isRelease func(call *ast.CallExpr) bool
}

// mentions reports whether n references the tracked object (or, for
// field-tracked resources, the base object — returning or storing the
// whole struct transfers its pooled fields with it).
func (tr *tracked) mentions(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		o := info.Uses[id]
		if o == nil {
			o = info.Defs[id]
		}
		if o != nil && (o == tr.obj || (tr.baseObj != nil && o == tr.baseObj)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// releasedIn reports whether any call inside n (including calls in
// nested function literals, which covers deferred closures and
// goroutine hand-offs) settles the resource.
func (tr *tracked) releasedIn(n ast.Node) bool {
	rel := false
	ast.Inspect(n, func(x ast.Node) bool {
		if c, ok := x.(*ast.CallExpr); ok && tr.isRelease(c) {
			rel = true
			return false
		}
		return true
	})
	return rel
}

// errGuard classifies an if statement against the acquisition's error
// result. kind is guardNone for unrelated conditions, guardErr for
// `if err != nil` (the acquire failed, so no resource exists — the body
// is exempt), guardOK for `if err == nil` (the resource only exists
// inside the body).
type guardKind int

const (
	guardNone guardKind = iota
	guardErr
	guardOK
)

func (tr *tracked) errGuard(info *types.Info, s *ast.IfStmt) guardKind {
	if tr.errObj == nil || s.Init != nil {
		return guardNone
	}
	b, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || (b.Op != token.NEQ && b.Op != token.EQL) {
		return guardNone
	}
	matches := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && info.Uses[id] == tr.errObj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if (matches(b.X) && isNil(b.Y)) || (matches(b.Y) && isNil(b.X)) {
		if b.Op == token.NEQ {
			return guardErr
		}
		return guardOK
	}
	return guardNone
}

// scanResult summarizes one statement list entered with the resource
// live. violPos is the first function exit reachable with the resource
// still live (NoPos if none); live reports whether control can reach
// the end of the list with the resource still unsettled.
type scanResult struct {
	violPos token.Pos
	live    bool
}

// isTerminator reports calls that never return: panic, os.Exit,
// log.Fatal*, runtime.Goexit, testing fatals.
func isTerminator(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit", "Fatal", "Fatalf", "Fatalln", "Goexit":
			return true
		}
	}
	return false
}

// scanList walks one statement list with the resource live on entry.
func (tr *tracked) scanList(info *types.Info, list []ast.Stmt) scanResult {
	for _, s := range list {
		switch s := s.(type) {
		case *ast.DeferStmt:
			if tr.isRelease(s.Call) {
				return scanResult{}
			}
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok && tr.releasedIn(lit.Body) {
				return scanResult{}
			}

		case *ast.GoStmt:
			// A goroutine that releases the resource owns it from here;
			// the synchronization is the author's problem, not ours.
			if tr.releasedIn(s.Call) {
				return scanResult{}
			}

		case *ast.ExprStmt:
			if tr.releasedIn(s) {
				return scanResult{}
			}
			if c, ok := s.X.(*ast.CallExpr); ok && isTerminator(c) {
				return scanResult{}
			}

		case *ast.AssignStmt:
			if tr.releasedIn(s) {
				return scanResult{}
			}
			if done := tr.scanAssign(info, s); done {
				return scanResult{}
			}

		case *ast.ReturnStmt:
			if tr.mentions(info, s) {
				// Returning the resource (or its containing struct)
				// transfers ownership to the caller.
				return scanResult{}
			}
			return scanResult{violPos: s.Pos()}

		case *ast.BranchStmt:
			// break/continue/goto: leaves this list with the resource
			// live; the enclosing construct decides what that means.
			return scanResult{live: true}

		case *ast.IfStmt:
			switch tr.errGuard(info, s) {
			case guardErr:
				continue // acquire failed inside: no resource to settle
			case guardOK:
				res := tr.scanList(info, bodyList(s.Body))
				if res.violPos.IsValid() {
					return res
				}
				// On the implicit else path the acquire failed, so the
				// resource is live afterwards only if the success body
				// fell through with it live.
				if !res.live {
					return scanResult{}
				}
				continue
			}
			body := tr.scanList(info, bodyList(s.Body))
			if body.violPos.IsValid() {
				return body
			}
			elseLive := true // missing else falls through live
			if s.Else != nil {
				res := tr.scanList(info, []ast.Stmt{s.Else})
				if res.violPos.IsValid() {
					return res
				}
				elseLive = res.live
			}
			if !body.live && !elseLive {
				return scanResult{}
			}

		case *ast.BlockStmt:
			res := tr.scanList(info, s.List)
			if res.violPos.IsValid() || !res.live {
				return res
			}

		case *ast.LabeledStmt:
			res := tr.scanList(info, []ast.Stmt{s.Stmt})
			if res.violPos.IsValid() || !res.live {
				return res
			}

		case *ast.ForStmt:
			if res := tr.scanList(info, bodyList(s.Body)); res.violPos.IsValid() {
				return res
			}
			// The loop may run zero times, so the resource stays live.

		case *ast.RangeStmt:
			if res := tr.scanList(info, bodyList(s.Body)); res.violPos.IsValid() {
				return res
			}

		case *ast.SwitchStmt:
			if res := tr.scanClauses(info, s.Body, hasDefault(s.Body)); res.violPos.IsValid() || !res.live {
				return res
			}

		case *ast.TypeSwitchStmt:
			if res := tr.scanClauses(info, s.Body, hasDefault(s.Body)); res.violPos.IsValid() || !res.live {
				return res
			}

		case *ast.SelectStmt:
			// Exactly one case runs, so liveness is the OR of the cases.
			if res := tr.scanClauses(info, s.Body, true); res.violPos.IsValid() || !res.live {
				return res
			}
		}
	}
	return scanResult{live: true}
}

// scanAssign handles assignments that alias, overwrite, or structurally
// transfer the tracked resource. Returns true when the resource is
// settled (or tracking must stop) at this statement.
func (tr *tracked) scanAssign(info *types.Info, s *ast.AssignStmt) bool {
	// Only an exact rebinding of the tracked lvalue affects tracking; a
	// write to a sibling field of the same base (b.off = ... while
	// tracking b.flat) is an ordinary statement.
	lhsHasTracked := false
	for _, l := range s.Lhs {
		if types.ExprString(l) == tr.exprStr {
			lhsHasTracked = true
		} else if id, ok := l.(*ast.Ident); ok && tr.obj != nil && identObj(info, id) == tr.obj {
			lhsHasTracked = true
		}
	}
	rhsHasTracked := false
	for _, r := range s.Rhs {
		if tr.mentions(info, r) {
			rhsHasTracked = true
		}
	}
	if lhsHasTracked {
		// x = append(x, ...) keeps the same resource; x = other loses it
		// (stop tracking rather than guess).
		return !rhsHasTracked
	}
	if rhsHasTracked {
		for _, l := range s.Lhs {
			switch l.(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				// Stored into a struct, map, slice, or pointee: ownership
				// moved to the container. (poolpair separately flags
				// stores into cached artifacts — see checkEscapes.)
				return true
			}
		}
		// Aliased to another variable: stop tracking.
		return true
	}
	return false
}

// scanClauses scans each case body of a switch/select.
func (tr *tracked) scanClauses(info *types.Info, body *ast.BlockStmt, exhaustive bool) scanResult {
	anyLive := !exhaustive // a missing default falls through live
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			stmts = c.Body
		case *ast.CommClause:
			stmts = c.Body
		}
		res := tr.scanList(info, stmts)
		if res.violPos.IsValid() {
			return res
		}
		if res.live {
			anyLive = true
		}
	}
	return scanResult{live: anyLive}
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func bodyList(b *ast.BlockStmt) []ast.Stmt {
	if b == nil {
		return nil
	}
	return b.List
}

// A listFrame is one enclosing statement list of an acquisition, from
// the statement after it to the end of the list, plus the construct
// that owns the list (nil for the function body itself).
type listFrame struct {
	list   []ast.Stmt
	idx    int      // index of the acquisition (or of the enclosing stmt)
	parent ast.Stmt // loop/if/switch owning this list, nil at function body
}

// enclosingFrames locates target inside body and returns the chain of
// enclosing statement lists, innermost first. Function literals are not
// descended into: each literal is its own analysis scope.
func enclosingFrames(body *ast.BlockStmt, target ast.Stmt) []listFrame {
	var find func(list []ast.Stmt, parent ast.Stmt) []listFrame
	findIn := func(s ast.Stmt, parent ast.Stmt) []listFrame {
		var sub [][]ast.Stmt
		switch s := s.(type) {
		case *ast.BlockStmt:
			sub = append(sub, s.List)
		case *ast.IfStmt:
			sub = append(sub, bodyList(s.Body))
			if s.Else != nil {
				sub = append(sub, []ast.Stmt{s.Else})
			}
		case *ast.ForStmt:
			sub = append(sub, bodyList(s.Body))
		case *ast.RangeStmt:
			sub = append(sub, bodyList(s.Body))
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					sub = append(sub, cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					sub = append(sub, cc.Body)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					sub = append(sub, cc.Body)
				}
			}
		case *ast.LabeledStmt:
			sub = append(sub, []ast.Stmt{s.Stmt})
		}
		for _, list := range sub {
			if frames := find(list, parent); frames != nil {
				return frames
			}
		}
		return nil
	}
	find = func(list []ast.Stmt, parent ast.Stmt) []listFrame {
		for i, s := range list {
			if s == target {
				return []listFrame{{list: list, idx: i, parent: parent}}
			}
			if frames := findIn(s, s); frames != nil {
				return append(frames, listFrame{list: list, idx: i, parent: parent})
			}
		}
		return nil
	}
	return find(body.List, nil)
}

// checkSettled verifies the tracked resource is settled on every path
// out of the scope body and reports violations on pass. It scans the
// acquisition's own list first, then — if control can fall off the end
// with the resource live — each enclosing list in turn, since on every
// path that reaches those outer statements the resource exists.
func checkSettled(pass *Pass, tr *tracked, body *ast.BlockStmt, at ast.Stmt) {
	frames := enclosingFrames(body, at)
	if frames == nil {
		return // acquisition not found at statement level (defensive)
	}
	for _, fr := range frames {
		res := tr.scanList(pass.TypesInfo, fr.list[fr.idx+1:])
		if res.violPos.IsValid() {
			pass.Reportf(tr.pos, "%s is not released on every path (leaks at %s)",
				tr.what, pass.Fset.Position(res.violPos))
			return
		}
		if !res.live {
			return // settled before leaving this list
		}
		switch fr.parent.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			// Falling off the end of a loop iteration with the resource
			// live loses it: the next iteration re-acquires.
			pass.Reportf(tr.pos, "%s is not released before the end of the loop iteration", tr.what)
			return
		}
	}
	// Fell off the end of the function body with the resource live.
	pass.Reportf(tr.pos, "%s is not released before the function returns", tr.what)
}
