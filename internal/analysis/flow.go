package analysis

// This file implements the path-sensitive "settled on every path" check
// shared by handlepin, poolpair, and lockorder. It runs a forward
// dataflow over the basic-block CFG built in cfg.go, maintaining one
// liveness state per tracked resource:
//
//	dead  — not yet acquired, or already settled
//	armed — live, but a deferred release settles it at function exit
//	live  — live and unsettled
//
// The join is the maximum (any path arriving live keeps the obligation
// alive), so the fixpoint converges in at most two passes per back
// edge. Violations are function exits (return nodes or the synthetic
// exit block) reachable live, and the acquisition node re-reached live
// (the next loop iteration would overwrite the unsettled resource).
// Branch edges on `err != nil` / `err == nil` conditions tied to the
// acquisition's error result are refined to dead on the failure side,
// since no resource exists when the acquire failed.
//
// The approximations all lean toward silence (an aliased, overwritten,
// or structurally-transferred resource simply stops being tracked) so
// the checker can gate CI without drowning the tree in false positives;
// the invariants it *does* enforce — release before every return,
// release before falling off the function, release before the next loop
// iteration — are exactly the ones whose violation leaks a refcount, a
// pooled slice, or a held mutex.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A tracked resource is one acquisition (an index handle, a cleanup
// func, a pooled slice, or a held lock) that must be settled —
// released, deferred, or ownership-transferred — on every path out of
// its function.
type tracked struct {
	pos     token.Pos    // acquisition site, where diagnostics anchor
	what    string       // diagnostic noun, e.g. "handle from acquireRR"
	obj     types.Object // object of the tracked ident (nil when field-tracked)
	baseObj types.Object // object of the base ident for field-tracked resources
	exprStr string       // canonical text of the tracked expr ("h", "rel", "blk.arena")
	errObj  types.Object // error result assigned alongside the acquisition, or nil

	acquire   ast.Node // acquisition node in the CFG; nil when live on entry
	entryLive bool     // live at function entry (parameters, summaries)

	// isRelease reports whether a call settles the resource.
	isRelease func(call *ast.CallExpr) bool
}

type settleState uint8

const (
	stDead  settleState = iota // not yet acquired, or settled
	stArmed                    // live, but a deferred release settles at exit
	stLive                     // live and unsettled
)

type violKind int

const (
	violReturn violKind = iota // a return statement reached live
	violLoop                   // the acquisition re-reached live (loop)
	violExit                   // fell off the end of the function live
)

type flowViolation struct {
	kind violKind
	pos  token.Pos // the offending return (violReturn), else the acquisition
}

// mentions reports whether n references the tracked object (or, for
// field-tracked resources, the base object — returning or storing the
// whole struct transfers its pooled fields with it).
func (tr *tracked) mentions(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		o := info.Uses[id]
		if o == nil {
			o = info.Defs[id]
		}
		if o != nil && (o == tr.obj || (tr.baseObj != nil && o == tr.baseObj)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// releasedIn reports whether any call inside n (including calls in
// nested function literals, which covers deferred closures and
// goroutine hand-offs) settles the resource.
func (tr *tracked) releasedIn(n ast.Node) bool {
	rel := false
	ast.Inspect(n, func(x ast.Node) bool {
		if c, ok := x.(*ast.CallExpr); ok && tr.isRelease(c) {
			rel = true
			return false
		}
		return true
	})
	return rel
}

// releasedInShallow is releasedIn restricted to the parts of n the CFG
// attributes to this node: short-circuit operands are skipped (the
// builder emitted them as separate nodes on their own paths), but
// function-literal bodies are still descended in full, since closures
// are not decomposed.
func (tr *tracked) releasedInShallow(n ast.Node) bool {
	rel := false
	var walk func(n ast.Node, shallow bool)
	walk = func(n ast.Node, shallow bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			if rel {
				return false
			}
			switch x := x.(type) {
			case *ast.FuncLit:
				walk(x.Body, false)
				return false
			case *ast.BinaryExpr:
				if shallow && (x.Op == token.LAND || x.Op == token.LOR) {
					return false
				}
			case *ast.CallExpr:
				if tr.isRelease(x) {
					rel = true
					return false
				}
			}
			return true
		})
	}
	walk(n, true)
	return rel
}

// guardKind classifies a branch condition against the acquisition's
// error result: guardNone for unrelated conditions, guardErr for
// `err != nil` (true edge means the acquire failed — no resource),
// guardOK for `err == nil` (false edge means no resource).
type guardKind int

const (
	guardNone guardKind = iota
	guardErr
	guardOK
)

func (tr *tracked) condErrGuard(info *types.Info, cond ast.Expr) guardKind {
	if tr.errObj == nil {
		return guardNone
	}
	b, ok := unparen(cond).(*ast.BinaryExpr)
	if !ok || (b.Op != token.NEQ && b.Op != token.EQL) {
		return guardNone
	}
	matches := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == tr.errObj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if (matches(b.X) && isNil(b.Y)) || (matches(b.Y) && isNil(b.X)) {
		if b.Op == token.NEQ {
			return guardErr
		}
		return guardOK
	}
	return guardNone
}

// condNilGuard classifies a branch condition that nil-checks the
// tracked object itself: on the edge where it is nil there is nothing
// to release. guardErr maps to "true edge has no resource" (obj == nil)
// and guardOK to "false edge has no resource" (obj != nil), mirroring
// the error-guard meanings so refineEdge can treat both uniformly. This
// is what lets the idiomatic helper shape
//
//	func closeHandle(h *handle) {
//		if h == nil {
//			return
//		}
//		h.release()
//	}
//
// count as settling its parameter in the interprocedural summary.
func (tr *tracked) condNilGuard(info *types.Info, cond ast.Expr) guardKind {
	if tr.obj == nil {
		return guardNone
	}
	b, ok := unparen(cond).(*ast.BinaryExpr)
	if !ok || (b.Op != token.NEQ && b.Op != token.EQL) {
		return guardNone
	}
	matches := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		return ok && identObj(info, id) == tr.obj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if (matches(b.X) && isNil(b.Y)) || (matches(b.Y) && isNil(b.X)) {
		if b.Op == token.EQL {
			return guardErr
		}
		return guardOK
	}
	return guardNone
}

// refineEdge adjusts the state flowing along one branch edge: on the
// side of an error guard where the acquire failed — or of a nil check
// where the resource itself is nil — no resource exists.
func (tr *tracked) refineEdge(info *types.Info, cond ast.Expr, isTrue bool, st settleState) settleState {
	if st == stDead {
		return st
	}
	g := tr.condErrGuard(info, cond)
	if g == guardNone {
		g = tr.condNilGuard(info, cond)
	}
	switch g {
	case guardErr:
		if isTrue {
			return stDead
		}
	case guardOK:
		if !isTrue {
			return stDead
		}
	}
	return st
}

// isTerminator reports calls that never return: panic, os.Exit,
// log.Fatal*, runtime.Goexit, testing fatals. The CFG builder cuts
// outgoing edges after such calls.
func isTerminator(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit", "Fatal", "Fatalf", "Fatalln", "Goexit":
			return true
		}
	}
	return false
}

// transferNode applies one CFG node to the resource state. During the
// fixpoint report is nil; the final pass re-walks with the converged
// block-entry states and a non-nil report to collect violations.
func (tr *tracked) transferNode(info *types.Info, n ast.Node, st settleState, report func(violKind, token.Pos)) settleState {
	if tr.acquire != nil && n == tr.acquire {
		if st == stLive && report != nil {
			report(violLoop, n.Pos())
		}
		// A fresh resource is acquired here regardless of what happened
		// to the previous one.
		return stLive
	}
	if st == stDead {
		return stDead
	}
	switch n := n.(type) {
	case *ast.DeferStmt:
		if tr.isRelease(n.Call) {
			return stArmed
		}
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok && tr.releasedIn(lit.Body) {
			return stArmed
		}
		return st

	case *ast.GoStmt:
		// A goroutine that releases the resource owns it from here;
		// the synchronization is the author's problem, not ours.
		if tr.releasedIn(n.Call) {
			return stDead
		}
		return st

	case *ast.ReturnStmt:
		if tr.mentions(info, n) {
			// Returning the resource (or its containing struct)
			// transfers ownership to the caller.
			return stDead
		}
		if st == stLive && report != nil {
			report(violReturn, n.Pos())
		}
		return stDead

	case *ast.AssignStmt:
		if tr.releasedInShallow(n) {
			return stDead
		}
		if tr.scanAssign(info, n) {
			return stDead
		}
		return st

	default:
		if tr.releasedInShallow(n) {
			return stDead
		}
		return st
	}
}

// scanAssign handles assignments that alias, overwrite, or structurally
// transfer the tracked resource. Returns true when the resource is
// settled (or tracking must stop) at this statement.
func (tr *tracked) scanAssign(info *types.Info, s *ast.AssignStmt) bool {
	// Only an exact rebinding of the tracked lvalue affects tracking; a
	// write to a sibling field of the same base (b.off = ... while
	// tracking b.flat) is an ordinary statement.
	lhsHasTracked := false
	for _, l := range s.Lhs {
		if types.ExprString(l) == tr.exprStr {
			lhsHasTracked = true
		} else if id, ok := l.(*ast.Ident); ok && tr.obj != nil && identObj(info, id) == tr.obj {
			lhsHasTracked = true
		}
	}
	rhsHasTracked := false
	for _, r := range s.Rhs {
		if tr.mentions(info, r) {
			rhsHasTracked = true
		}
	}
	if lhsHasTracked {
		// x = append(x, ...) keeps the same resource; x = other loses it
		// (stop tracking rather than guess).
		return !rhsHasTracked
	}
	if rhsHasTracked {
		for _, l := range s.Lhs {
			switch l.(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				// Stored into a struct, map, slice, or pointee: ownership
				// moved to the container. (poolpair separately flags
				// stores into cached artifacts — see checkEscapes.)
				return true
			}
		}
		// Aliased to another variable: stop tracking. A blank _ lhs
		// discards the value and aliases nothing, so tracking holds.
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); !ok || id.Name != "_" {
				return true
			}
		}
		return false
	}
	return false
}

// settleViolations runs the dataflow for one tracked resource over one
// function CFG and returns every violation in block order: returns and
// loop re-acquisitions first (program order), then the synthetic exit.
func (tr *tracked) settleViolations(info *types.Info, g *funcCFG) []flowViolation {
	in := make([]settleState, len(g.blocks))
	if tr.entryLive {
		in[g.entry.idx] = stLive
	}

	// Worklist fixpoint, seeded with every block so acquisitions deep in
	// the graph are discovered even before any state reaches them.
	inWork := make([]bool, len(g.blocks))
	work := make([]*cfgBlock, 0, len(g.blocks))
	for i := len(g.blocks) - 1; i >= 0; i-- {
		work = append(work, g.blocks[i])
		inWork[i] = true
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b.idx] = false
		st := in[b.idx]
		for _, n := range b.nodes {
			st = tr.transferNode(info, n, st, nil)
		}
		for i, succ := range b.succs {
			out := st
			if b.cond != nil && i < 2 {
				out = tr.refineEdge(info, b.cond, i == 0, out)
			}
			if out > in[succ.idx] {
				in[succ.idx] = out
				if !inWork[succ.idx] {
					inWork[succ.idx] = true
					work = append(work, succ)
				}
			}
		}
	}

	var viols []flowViolation
	report := func(k violKind, pos token.Pos) {
		viols = append(viols, flowViolation{kind: k, pos: pos})
	}
	for _, b := range g.blocks {
		if b == g.exit {
			continue
		}
		st := in[b.idx]
		for _, n := range b.nodes {
			st = tr.transferNode(info, n, st, report)
		}
	}
	if in[g.exit.idx] == stLive {
		viols = append(viols, flowViolation{kind: violExit, pos: tr.pos})
	}
	return viols
}

// checkSettled verifies the tracked resource acquired at statement
// `at` is settled on every path out of the scope body, reporting the
// first violation on pass.
func checkSettled(pass *Pass, tr *tracked, body *ast.BlockStmt, at ast.Stmt) {
	tr.acquire = at
	g := pass.cfgOf(body)
	for _, v := range tr.settleViolations(pass.TypesInfo, g) {
		switch v.kind {
		case violReturn:
			pass.Reportf(tr.pos, "%s is not released on every path (leaks at %s)",
				tr.what, pass.Fset.Position(v.pos))
		case violLoop:
			pass.Reportf(tr.pos, "%s is not released before the end of the loop iteration", tr.what)
		case violExit:
			pass.Reportf(tr.pos, "%s is not released before the function returns", tr.what)
		}
		return // one report per acquisition
	}
}
