package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
)

// allowRe matches a suppression comment: //kbtim:allow <analyzer> <reason>.
// The reason is mandatory — an allow without a why is itself a finding.
var allowRe = regexp.MustCompile(`^//\s*kbtim:allow\s+([a-z][a-z0-9]*)\s*(.*)$`)

// allowSite is one parsed //kbtim:allow comment.
type allowSite struct {
	analyzer string
	reason   string
	file     string
	line     int
}

// collectAllows parses every //kbtim:allow comment in the program.
func collectAllows(prog *Program) []allowSite {
	var sites []allowSite
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := allowRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					sites = append(sites, allowSite{
						analyzer: m[1],
						reason:   m[2],
						file:     pos.Filename,
						line:     pos.Line,
					})
				}
			}
		}
	}
	return sites
}

// Run applies every analyzer to every package in prog, matches findings
// against //kbtim:allow suppressions, and returns everything sorted by
// position: suppressed findings are returned with Suppressed set (and
// the allow's reason) rather than dropped, so drivers can emit them
// mechanically while still exiting clean — filter with Active for the
// build-failing subset. A suppression covers diagnostics from the named
// analyzer on the comment's own line or the line directly below it
// (i.e. the comment sits on the offending line or immediately above
// it). Malformed or dead suppressions — a missing reason, a name not in
// the kbtim suite, or an allow that suppressed nothing from an analyzer
// that ran — surface as diagnostics themselves so they cannot rot
// silently.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range prog.Packages {
			pass := &Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Markers:   prog.Markers,
				Prog:      prog,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}

	// Allows are validated against the full suite, not just the
	// analyzers selected for this run: `-only handlepin` must not turn
	// every ctxflow allow into an "unknown analyzer" finding. Unused
	// detection, conversely, only applies to analyzers that ran.
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	ran := make(map[string]bool)
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	type key struct {
		analyzer string
		file     string
		line     int
	}
	sites := collectAllows(prog)
	byKey := make(map[key]*allowSite)
	var kept []Diagnostic
	for i := range sites {
		s := &sites[i]
		if s.reason == "" {
			kept = append(kept, Diagnostic{
				Analyzer: "allow",
				Position: token.Position{Filename: s.file, Line: s.line, Column: 1},
				Message:  fmt.Sprintf("//kbtim:allow %s needs a reason", s.analyzer),
			})
			continue
		}
		if !known[s.analyzer] {
			kept = append(kept, Diagnostic{
				Analyzer: "allow",
				Position: token.Position{Filename: s.file, Line: s.line, Column: 1},
				Message:  fmt.Sprintf("//kbtim:allow names unknown analyzer %q", s.analyzer),
			})
			continue
		}
		byKey[key{s.analyzer, s.file, s.line}] = s
		byKey[key{s.analyzer, s.file, s.line + 1}] = s
	}
	used := make(map[*allowSite]bool)
	for _, d := range diags {
		if s := byKey[key{d.Analyzer, d.Position.Filename, d.Position.Line}]; s != nil {
			used[s] = true
			d.Suppressed = true
			d.SuppressReason = s.reason
		}
		kept = append(kept, d)
	}
	for i := range sites {
		s := &sites[i]
		if s.reason == "" || !known[s.analyzer] || !ran[s.analyzer] || used[s] {
			continue
		}
		kept = append(kept, Diagnostic{
			Analyzer: "allow",
			Position: token.Position{Filename: s.file, Line: s.line, Column: 1},
			Message:  fmt.Sprintf("//kbtim:allow %s suppresses nothing; delete it", s.analyzer),
		})
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Position, kept[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return kept[i].Message < kept[j].Message
	})
	return kept, nil
}

// funcScopes yields every function body in f as an independent analysis
// scope: each FuncDecl body, and each FuncLit body nested anywhere
// (closures own their acquisitions — a resource acquired inside a
// closure must be settled inside it). decl is the enclosing FuncDecl,
// nil for file-scope literals; it lets analyzers exempt methods by
// receiver type.
type funcScope struct {
	decl *ast.FuncDecl // enclosing declaration (receiver info), may be nil
	node ast.Node      // the *ast.FuncDecl or *ast.FuncLit itself
	body *ast.BlockStmt
}

func funcScopes(f *ast.File) []funcScope {
	var scopes []funcScope
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		scopes = append(scopes, funcScope{decl: fd, node: fd, body: fd.Body})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				scopes = append(scopes, funcScope{decl: fd, node: lit, body: lit.Body})
			}
			return true
		})
	}
	return scopes
}
