package analysis

// This file builds the basic-block control-flow graph the flow analyses
// run on. One CFG is built per function body (function literals are
// separate scopes with their own CFGs). The builder models the full Go
// statement repertoire the old statement-structural walker could not:
// goto, labeled break/continue out of nested constructs, switch
// fallthrough, select, and short-circuit && / || — every `a && b`
// anywhere in an emitted expression is decomposed into its own diamond
// of blocks, so an effect buried in the right operand is only visible
// on the paths that actually evaluate it.
//
// Blocks hold ast.Nodes (statements and decomposed condition operands)
// in execution order. Composite statements are never stored wholesale:
// only their "header" parts (an if/for condition leaf, a range
// expression, a switch tag) become nodes, and their bodies become
// separate blocks — so an analysis visiting every node of every block
// sees each expression exactly once. Because short-circuit operands are
// emitted as their own nodes, analyses must walk block nodes with
// inspectShallow, which skips && / || operand subtrees.
//
// A block that ends in a boolean branch records the condition in cond:
// succs[0] is the true edge and succs[1] the false edge, which is what
// lets the flow analyses refine state along `if err != nil` guards.
// Return statements are terminal nodes (no successor); falling off the
// end of the body flows to the synthetic exit block.

import (
	"go/ast"
	"go/token"
)

// A cfgBlock is one basic block: nodes executed in order, then either a
// boolean branch (cond != nil, succs[0]=true / succs[1]=false), a
// multiway dispatch (cond == nil, len(succs) > 1, e.g. select or
// switch), a jump (one successor), or termination (no successors).
type cfgBlock struct {
	idx   int
	nodes []ast.Node
	cond  ast.Expr
	succs []*cfgBlock
}

// A funcCFG is one function body's control-flow graph.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock // reached by falling off the end of the body
	blocks []*cfgBlock
}

// cfgFrame is one open breakable construct during building: a loop
// (continueTo != nil), or a switch/select (break only).
type cfgFrame struct {
	label      string
	breakTo    *cfgBlock
	continueTo *cfgBlock
}

type cfgBuilder struct {
	cfg           *funcCFG
	cur           *cfgBlock
	frames        []cfgFrame
	labels        map[string]*cfgBlock // goto / labeled-statement targets
	pendingLabel  string
	fallthroughTo *cfgBlock
}

// buildCFG constructs the CFG for one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{cfg: &funcCFG{}, labels: make(map[string]*cfgBlock)}
	b.cfg.entry = b.newBlock()
	b.cfg.exit = b.newBlock()
	b.cur = b.cfg.entry
	b.emitList(body.List)
	b.edge(b.cur, b.cfg.exit)
	return b.cfg
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{idx: len(b.cfg.blocks)}
	b.cfg.blocks = append(b.cfg.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
}

// startUnreachable replaces cur with a fresh block no edge leads to,
// used after return/goto/terminators so trailing dead code parses into
// blocks the dataflow never reaches.
func (b *cfgBuilder) startUnreachable() {
	b.cur = b.newBlock()
}

// labelBlock returns (creating on demand) the block a label names, the
// join point for both goto and the labeled statement itself.
func (b *cfgBuilder) labelBlock(name string) *cfgBlock {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) emitList(list []ast.Stmt) {
	for _, s := range list {
		b.emitStmt(s)
	}
}

// addNode emits the short-circuit diamonds nested anywhere inside n,
// then appends n itself to the current block.
func (b *cfgBuilder) addNode(n ast.Node) {
	b.emitShortCircuits(n)
	b.cur.nodes = append(b.cur.nodes, n)
}

func (b *cfgBuilder) emitStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.emitList(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.emitStmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.emitStmt(s.Init)
		}
		thenB, afterB := b.newBlock(), b.newBlock()
		elseB := afterB
		if s.Else != nil {
			elseB = b.newBlock()
		}
		b.emitCond(s.Cond, thenB, elseB)
		b.cur = thenB
		b.emitStmt(s.Body)
		b.edge(b.cur, afterB)
		if s.Else != nil {
			b.cur = elseB
			b.emitStmt(s.Else)
			b.edge(b.cur, afterB)
		}
		b.cur = afterB

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.emitStmt(s.Init)
		}
		headB, bodyB, afterB := b.newBlock(), b.newBlock(), b.newBlock()
		postB := headB
		if s.Post != nil {
			postB = b.newBlock()
		}
		b.edge(b.cur, headB)
		b.cur = headB
		if s.Cond != nil {
			b.emitCond(s.Cond, bodyB, afterB)
		} else {
			b.edge(b.cur, bodyB)
		}
		b.frames = append(b.frames, cfgFrame{label: label, breakTo: afterB, continueTo: postB})
		b.cur = bodyB
		b.emitStmt(s.Body)
		b.edge(b.cur, postB)
		if s.Post != nil {
			b.cur = postB
			b.emitStmt(s.Post)
			b.edge(b.cur, headB)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = afterB

	case *ast.RangeStmt:
		label := b.takeLabel()
		headB, bodyB, afterB := b.newBlock(), b.newBlock(), b.newBlock()
		b.edge(b.cur, headB)
		b.cur = headB
		b.addNode(s.X)
		b.edge(b.cur, bodyB)
		b.edge(b.cur, afterB)
		b.frames = append(b.frames, cfgFrame{label: label, breakTo: afterB, continueTo: headB})
		b.cur = bodyB
		b.emitStmt(s.Body)
		b.edge(b.cur, headB)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = afterB

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.emitStmt(s.Init)
		}
		if s.Tag != nil {
			b.addNode(s.Tag)
		}
		b.emitClauses(label, s.Body, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.emitStmt(s.Init)
		}
		b.addNode(s.Assign)
		b.emitClauses(label, s.Body, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		headB, afterB := b.newBlock(), b.newBlock()
		b.edge(b.cur, headB)
		b.frames = append(b.frames, cfgFrame{label: label, breakTo: afterB})
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			clauseB := b.newBlock()
			b.edge(headB, clauseB)
			b.cur = clauseB
			if cc.Comm != nil {
				b.emitStmt(cc.Comm)
			}
			b.emitList(cc.Body)
			b.edge(b.cur, afterB)
		}
		// Exactly one case runs: a select with no cases blocks forever,
		// so only then does control never reach after.
		if len(s.Body.List) == 0 {
			b.edge(headB, afterB)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = afterB

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findFrame(s.Label, false); t != nil {
				b.edge(b.cur, t)
			}
		case token.CONTINUE:
			if t := b.findFrame(s.Label, true); t != nil {
				b.edge(b.cur, t)
			}
		case token.GOTO:
			b.edge(b.cur, b.labelBlock(s.Label.Name))
		case token.FALLTHROUGH:
			if b.fallthroughTo != nil {
				b.edge(b.cur, b.fallthroughTo)
			}
		}
		b.startUnreachable()

	case *ast.ReturnStmt:
		b.addNode(s)
		b.startUnreachable()

	case *ast.ExprStmt:
		b.addNode(s)
		if c, ok := s.X.(*ast.CallExpr); ok && isTerminator(c) {
			b.startUnreachable()
		}

	case nil:
		// tolerated (e.g. a missing else emitted defensively)

	default:
		// DeferStmt, GoStmt, AssignStmt, IncDecStmt, SendStmt, DeclStmt,
		// EmptyStmt: straight-line statements.
		b.addNode(s)
	}
}

// emitClauses emits switch / type-switch case bodies. Bodies are
// pre-allocated so fallthrough can edge into the next clause.
func (b *cfgBuilder) emitClauses(label string, body *ast.BlockStmt, allowFallthrough bool) {
	afterB := b.newBlock()
	headB := b.cur
	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	clauseB := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		clauseB[i] = b.newBlock()
		b.edge(headB, clauseB[i])
		if cc.List == nil {
			hasDefault = true
		}
		// Case expressions are evaluated while dispatching.
		for _, e := range cc.List {
			b.cur = headB
			b.addNode(e)
		}
	}
	if !hasDefault {
		b.edge(headB, afterB)
	}
	b.frames = append(b.frames, cfgFrame{label: label, breakTo: afterB})
	savedFT := b.fallthroughTo
	for i, cc := range clauses {
		b.fallthroughTo = nil
		if allowFallthrough && i+1 < len(clauses) {
			b.fallthroughTo = clauseB[i+1]
		}
		b.cur = clauseB[i]
		b.emitList(cc.Body)
		b.edge(b.cur, afterB)
	}
	b.fallthroughTo = savedFT
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = afterB
}

// findFrame resolves a break (continueOnly=false) or continue
// (continueOnly=true) target, honoring an optional label.
func (b *cfgBuilder) findFrame(label *ast.Ident, continueOnly bool) *cfgBlock {
	for i := len(b.frames) - 1; i >= 0; i-- {
		fr := b.frames[i]
		if continueOnly && fr.continueTo == nil {
			continue // break-only frame (switch/select) is transparent to continue
		}
		if label != nil && fr.label != label.Name {
			continue
		}
		if continueOnly {
			return fr.continueTo
		}
		return fr.breakTo
	}
	return nil
}

// emitCond emits the evaluation of a boolean condition, branching to t
// when it holds and f when it does not, decomposing short-circuit
// operators into separate blocks so each operand's effects stay on the
// paths that run it.
func (b *cfgBuilder) emitCond(e ast.Expr, t, f *cfgBlock) {
	switch x := unparen(e).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			mid := b.newBlock()
			b.emitCond(x.X, mid, f)
			b.cur = mid
			b.emitCond(x.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock()
			b.emitCond(x.X, t, mid)
			b.cur = mid
			b.emitCond(x.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.emitCond(x.X, f, t)
			return
		}
	}
	b.addNode(e)
	b.cur.cond = e
	b.edge(b.cur, t)
	b.edge(b.cur, f)
}

// emitShortCircuits finds the outermost && / || expressions anywhere
// inside n (function literals excluded — they are their own scopes) and
// emits each as a value diamond: both branches rejoin, but an effect in
// the right operand only exists on the paths that evaluate it.
func (b *cfgBuilder) emitShortCircuits(n ast.Node) {
	var outer []*ast.BinaryExpr
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			if x.Op == token.LAND || x.Op == token.LOR {
				outer = append(outer, x)
				return false
			}
		}
		return true
	})
	for _, sc := range outer {
		merge := b.newBlock()
		b.emitCond(sc, merge, merge)
		b.cur = merge
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// inspectShallow walks n like ast.Inspect but does not descend into the
// operands of && / || (the CFG builder emitted those as separate nodes)
// so analyses that sum effects over a block's nodes count each
// subexpression exactly once.
func inspectShallow(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if be, ok := x.(*ast.BinaryExpr); ok && (be.Op == token.LAND || be.Op == token.LOR) {
			return false
		}
		return visit(x)
	})
}
