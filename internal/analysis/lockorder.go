package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Lockorder machine-checks the locking discipline that today lives in
// comments (shard.go:68, objcache's rebalance doc):
//
//  1. Pairing: every sync.Mutex/RWMutex Lock (RLock) must be paired
//     with an Unlock (RUnlock) on every path out of the function —
//     deferred or called before each return — reusing the same CFG
//     dataflow as handlepin/poolpair.
//  2. Rank order: mutex fields annotated //kbtim:lockrank <n> form a
//     partial order; acquiring a lock while holding one of the same or
//     higher rank is a potential deadlock and is reported.
//  3. Shard order: per-shard resources (worker-pool slots `sems[i] <-`,
//     per-shard locks `xs[i].Lock()`) must be acquired in ascending
//     shard order; descending loops over them and out-of-order
//     constant-index sequences are reported.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc:  "check Lock/Unlock pairing on all paths, //kbtim:lockrank ordering, and ascending shard acquisition",
	Run:  runLockorder,
}

func runLockorder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, scope := range funcScopes(f) {
			lockPairScope(pass, scope)
			lockRankScope(pass, scope)
			shardOrderScope(pass, scope)
		}
	}
	return nil
}

// mutexLockCall matches a statement-level m.Lock() / m.RLock() on a
// sync.Mutex or sync.RWMutex and returns the receiver selector and the
// method name.
func mutexLockCall(info *types.Info, call *ast.CallExpr) (*ast.SelectorExpr, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return nil, ""
	}
	if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
		return nil, ""
	}
	if !isMutexType(info.Types[sel.X].Type) {
		return nil, ""
	}
	return sel, sel.Sel.Name
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// mutexUnlockMatcher matches <recvStr>.<unlock>() calls.
func mutexUnlockMatcher(info *types.Info, recvStr, unlock string) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != unlock || len(call.Args) != 0 {
			return false
		}
		return isMutexType(info.Types[sel.X].Type) && types.ExprString(sel.X) == recvStr
	}
}

// lockPairScope runs the settle dataflow for every statement-level lock
// acquisition owned by this scope (function literals are their own
// scopes: a lock taken in a deferred closure is paired there).
func lockPairScope(pass *Pass, scope funcScope) {
	info := pass.TypesInfo
	ast.Inspect(scope.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, lockName := mutexLockCall(info, call)
		if sel == nil {
			return true
		}
		recvStr := types.ExprString(sel.X)
		unlock := "Unlock"
		if lockName == "RLock" {
			unlock = "RUnlock"
		}
		tr := &tracked{
			pos:       call.Pos(),
			what:      fmt.Sprintf("%s.%s()", recvStr, lockName),
			exprStr:   recvStr + "." + lockName, // never an lvalue: assignment semantics stay inert
			isRelease: mutexUnlockMatcher(info, recvStr, unlock),
			acquire:   es,
		}
		g := pass.cfgOf(scope.body)
		for _, v := range tr.settleViolations(info, g) {
			switch v.kind {
			case violReturn:
				pass.Reportf(tr.pos, "%s is not unlocked on every path (still held at %s)",
					tr.what, pass.Fset.Position(v.pos))
			case violLoop:
				pass.Reportf(tr.pos, "%s is not unlocked before the next loop iteration locks it again", tr.what)
			case violExit:
				pass.Reportf(tr.pos, "%s is not unlocked before the function returns", tr.what)
			}
			break // one report per lock site
		}
		return true
	})
}

// --- rank ordering ---

// rankedFieldKey resolves e (the receiver of a Lock/Unlock call) to a
// //kbtim:lockrank-annotated struct field, returning its
// "pkgpath.Type.field" key and rank.
func rankedFieldKey(pass *Pass, e ast.Expr) (string, int, bool) {
	if pass.Prog == nil || len(pass.Prog.LockRanks) == 0 {
		return "", 0, false
	}
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return "", 0, false
	}
	t := selection.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", 0, false
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + selection.Obj().Name()
	rank, ok := pass.Prog.LockRanks[key]
	return key, rank, ok
}

// lockEvent is one ranked lock or unlock inside a CFG node.
type lockEvent struct {
	lock bool
	key  int // index into the scope's ranked-key table
	pos  token.Pos
}

// lockRankScope runs a held-set dataflow over the CFG: the state is the
// set of ranked locks held, joined by union; acquiring a lock while one
// of the same or higher rank is held is reported. A deferred Unlock
// intentionally does not clear the held bit — the lock stays held until
// function exit, and later acquisitions must still rank above it.
func lockRankScope(pass *Pass, scope funcScope) {
	if pass.Prog == nil || len(pass.Prog.LockRanks) == 0 {
		return
	}
	keyIdx := make(map[string]int)
	var keyName []string
	var keyRank []int
	intern := func(key string, rank int) int {
		if i, ok := keyIdx[key]; ok {
			return i
		}
		keyIdx[key] = len(keyName)
		keyName = append(keyName, key)
		keyRank = append(keyRank, rank)
		return len(keyName) - 1
	}
	nodeEvents := func(n ast.Node) []lockEvent {
		var evs []lockEvent
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false // its own scope
			case *ast.DeferStmt:
				return false // deferred unlocks keep the lock held here
			case *ast.BinaryExpr:
				if x.Op == token.LAND || x.Op == token.LOR {
					return false // decomposed into separate CFG nodes
				}
			case *ast.CallExpr:
				sel, ok := x.Fun.(*ast.SelectorExpr)
				if !ok || len(x.Args) != 0 {
					return true
				}
				var lock bool
				switch sel.Sel.Name {
				case "Lock", "RLock":
					lock = true
				case "Unlock", "RUnlock":
				default:
					return true
				}
				if !isMutexType(pass.TypesInfo.Types[sel.X].Type) {
					return true
				}
				if key, rank, ok := rankedFieldKey(pass, sel.X); ok {
					evs = append(evs, lockEvent{lock: lock, key: intern(key, rank), pos: x.Pos()})
				}
			}
			return true
		})
		return evs
	}

	g := pass.cfgOf(scope.body)
	events := make(map[ast.Node][]lockEvent)
	any := false
	for _, b := range g.blocks {
		for _, n := range b.nodes {
			evs := nodeEvents(n)
			if len(evs) > 0 {
				events[n] = evs
				any = true
			}
		}
	}
	if !any || len(keyName) > 64 {
		return
	}

	apply := func(held uint64, n ast.Node, report func(lockEvent, int)) uint64 {
		for _, ev := range events[n] {
			if ev.lock {
				if report != nil {
					for k := range keyName {
						if held&(1<<k) != 0 && keyRank[k] >= keyRank[ev.key] {
							report(ev, k)
						}
					}
				}
				held |= 1 << ev.key
			} else {
				held &^= 1 << ev.key
			}
		}
		return held
	}

	in := make([]uint64, len(g.blocks))
	for changed := true; changed; {
		changed = false
		for _, b := range g.blocks {
			held := in[b.idx]
			for _, n := range b.nodes {
				held = apply(held, n, nil)
			}
			for _, succ := range b.succs {
				if in[succ.idx]|held != in[succ.idx] {
					in[succ.idx] |= held
					changed = true
				}
			}
		}
	}
	reported := make(map[token.Pos]bool)
	for _, b := range g.blocks {
		held := in[b.idx]
		for _, n := range b.nodes {
			held = apply(held, n, func(ev lockEvent, heldKey int) {
				if reported[ev.pos] {
					return
				}
				reported[ev.pos] = true
				pass.Reportf(ev.pos,
					"acquiring %s (lockrank %d) while %s (lockrank %d) is held; locks must be acquired in ascending rank order",
					keyName[ev.key], keyRank[ev.key], keyName[heldKey], keyRank[heldKey])
			})
		}
	}
}

// --- ascending shard order ---

// indexedAcquisition matches a statement that takes a per-shard
// resource: a send into an indexed channel (`sems[i] <- x`) or a Lock
// on an indexed mutex (`xs[i].Lock()`). Returns the index expression
// and a printable description.
func indexedAcquisition(info *types.Info, s ast.Stmt) (ast.Expr, string) {
	switch s := s.(type) {
	case *ast.SendStmt:
		if ix, ok := unparen(s.Chan).(*ast.IndexExpr); ok {
			return ix.Index, "send to " + types.ExprString(s.Chan)
		}
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return nil, ""
		}
		sel, lockName := mutexLockCall(info, call)
		if sel == nil {
			return nil, ""
		}
		if ix, ok := unparen(sel.X).(*ast.IndexExpr); ok {
			return ix.Index, types.ExprString(sel.X) + "." + lockName + "()"
		}
	}
	return nil, ""
}

// indexedRelease matches the inverse: a receive from an indexed channel
// (`<-sems[i]`) or an Unlock on an indexed mutex.
func indexedRelease(info *types.Info, s ast.Stmt) *ast.IndexExpr {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	switch x := unparen(es.X).(type) {
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			if ix, ok := unparen(x.X).(*ast.IndexExpr); ok {
				return ix
			}
		}
	case *ast.CallExpr:
		sel, ok := x.Fun.(*ast.SelectorExpr)
		if !ok || len(x.Args) != 0 {
			return nil
		}
		if sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock" {
			return nil
		}
		if ix, ok := unparen(sel.X).(*ast.IndexExpr); ok && isMutexType(info.Types[sel.X].Type) {
			return ix
		}
	}
	return nil
}

// shardOrderScope applies the two syntactic ascending-order checks: a
// descending loop acquiring by its loop variable, and a straight-line
// sequence of constant-index acquisitions on the same base going down.
func shardOrderScope(pass *Pass, scope funcScope) {
	info := pass.TypesInfo
	ast.Inspect(scope.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			checkDescendingLoop(pass, n)
		case *ast.BlockStmt:
			checkConstIndexOrder(pass, info, n.List)
		case *ast.CaseClause:
			checkConstIndexOrder(pass, info, n.Body)
		case *ast.CommClause:
			checkConstIndexOrder(pass, info, n.Body)
		}
		return true
	})
}

// checkDescendingLoop flags `for ...; i-- { sems[i] <- x }` and friends:
// walking shard resources downward inverts the global acquisition order
// and can deadlock against a concurrent ascending walker.
func checkDescendingLoop(pass *Pass, loop *ast.ForStmt) {
	info := pass.TypesInfo
	dec, ok := loop.Post.(*ast.IncDecStmt)
	if !ok || dec.Tok != token.DEC {
		return
	}
	id, ok := dec.X.(*ast.Ident)
	if !ok {
		return
	}
	loopVar := identObj(info, id)
	if loopVar == nil {
		return
	}
	ast.Inspect(loop.Body, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		s, ok := m.(ast.Stmt)
		if !ok {
			return true
		}
		idx, what := indexedAcquisition(info, s)
		if idx == nil {
			return true
		}
		if iid, ok := unparen(idx).(*ast.Ident); ok && identObj(info, iid) == loopVar {
			pass.Reportf(s.Pos(), "%s acquires shard resources in descending order; acquire in ascending shard order (see Sharded.acquire)", what)
		}
		return true
	})
}

// checkConstIndexOrder walks one straight-line statement list tracking
// which constant shard indices are held per base expression; acquiring
// a lower index while a higher one is held inverts the order. Any
// control-flow statement resets the tracking (conservatively silent).
func checkConstIndexOrder(pass *Pass, info *types.Info, list []ast.Stmt) {
	held := make(map[string][]int64) // base expr -> held constant indices
	constIndex := func(e ast.Expr) (int64, bool) {
		tv, ok := info.Types[e]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			return 0, false
		}
		v, ok := constant.Int64Val(tv.Value)
		return v, ok
	}
	baseOf := func(s ast.Stmt, idx ast.Expr) (string, int64, bool) {
		v, ok := constIndex(idx)
		if !ok {
			return "", 0, false
		}
		var ix *ast.IndexExpr
		switch s := s.(type) {
		case *ast.SendStmt:
			ix, _ = unparen(s.Chan).(*ast.IndexExpr)
		case *ast.ExprStmt:
			if call, ok := unparen(s.X).(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					ix, _ = unparen(sel.X).(*ast.IndexExpr)
				}
			} else if u, ok := unparen(s.X).(*ast.UnaryExpr); ok {
				ix, _ = unparen(u.X).(*ast.IndexExpr)
			}
		}
		if ix == nil {
			return "", 0, false
		}
		return types.ExprString(ix.X), v, true
	}
	for _, s := range list {
		if idx, what := indexedAcquisition(info, s); idx != nil {
			if base, v, ok := baseOf(s, idx); ok {
				for _, h := range held[base] {
					if h >= v {
						pass.Reportf(s.Pos(), "%s acquires shard %d while shard %d is held; acquire in ascending shard order (see Sharded.acquire)", what, v, h)
						break
					}
				}
				held[base] = append(held[base], v)
			}
			continue
		}
		if ix := indexedRelease(info, s); ix != nil {
			if base, v, ok := baseOf(s, ix.Index); ok {
				kept := held[base][:0]
				for _, h := range held[base] {
					if h != v {
						kept = append(kept, h)
					}
				}
				held[base] = kept
			}
			continue
		}
		switch s.(type) {
		case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
			*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.ReturnStmt, *ast.BranchStmt:
			held = make(map[string][]int64)
		}
	}
}
