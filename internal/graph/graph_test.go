package graph

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"kbtim/internal/rng"
)

// figure1 reconstructs the running-example graph of the paper (Figure 1):
// vertices a..g = 0..6, edges e→a (1.0), e→b, g→b, e→c, b→c, b→d, f→d.
// (The IC probabilities are handled by internal/prop; here we only need the
// structure: in-degrees give a=1, b=2, c=2, d=2, e=0, f=0, g=0.)
func figure1(t testing.TB) *Graph {
	t.Helper()
	const (
		a, b, c, d, e, f, g = 0, 1, 2, 3, 4, 5, 6
	)
	gr, err := FromEdges(7, []Edge{
		{e, a}, {e, b}, {g, b}, {e, c}, {b, c}, {b, d}, {f, d},
	})
	if err != nil {
		t.Fatal(err)
	}
	return gr
}

func TestFigure1Structure(t *testing.T) {
	g := figure1(t)
	if g.NumVertices() != 7 || g.NumEdges() != 7 {
		t.Fatalf("got %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	wantIn := []int{1, 2, 2, 2, 0, 0, 0} // a,b,c,d,e,f,g
	for v, want := range wantIn {
		if got := g.InDegree(uint32(v)); got != want {
			t.Errorf("InDegree(%d) = %d, want %d", v, got, want)
		}
	}
	if got := g.OutDegree(4); got != 3 { // e → a,b,c
		t.Errorf("OutDegree(e) = %d, want 3", got)
	}
	if !g.HasEdge(4, 0) || g.HasEdge(0, 4) {
		t.Error("HasEdge direction wrong")
	}
	if p := g.ICProb(1); p != 0.5 { // b has in-degree 2
		t.Errorf("ICProb(b) = %v, want 0.5", p)
	}
	if p := g.ICProb(4); p != 0 { // e has no in-edges
		t.Errorf("ICProb(e) = %v, want 0", p)
	}
}

func TestSelfLoopsDropped(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 0}, {0, 1}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("self loops kept: %d edges", g.NumEdges())
	}
}

func TestParallelEdgesKept(t *testing.T) {
	g, err := FromEdges(2, []Edge{{0, 1}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("parallel edges collapsed: %d edges", g.NumEdges())
	}
	if g.InDegree(1) != 2 {
		t.Fatalf("InDegree = %d, want 2", g.InDegree(1))
	}
}

func TestOutOfRangeEdgeRejected(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 2); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestInOutConsistency(t *testing.T) {
	// Property: the multiset of edges seen through out-adjacency equals the
	// multiset seen through in-adjacency, on random graphs.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := src.Intn(50) + 2
		m := src.Intn(200)
		b := NewBuilder(n)
		for i := 0; i < m; i++ {
			_ = b.AddEdge(uint32(src.Intn(n)), uint32(src.Intn(n)))
		}
		g := b.Build()
		if err := g.Validate(); err != nil {
			return false
		}
		type key struct{ u, v uint32 }
		out := map[key]int{}
		for u := 0; u < n; u++ {
			for _, v := range g.OutNeighbors(uint32(u)) {
				out[key{uint32(u), v}]++
			}
		}
		in := map[key]int{}
		for v := 0; v < n; v++ {
			for _, u := range g.InNeighbors(uint32(v)) {
				in[key{u, uint32(v)}]++
			}
		}
		return reflect.DeepEqual(out, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeSumsEqualEdges(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := src.Intn(40) + 1
		b := NewBuilder(n)
		for i := 0; i < src.Intn(150); i++ {
			_ = b.AddEdge(uint32(src.Intn(n)), uint32(src.Intn(n)))
		}
		g := b.Build()
		sumIn, sumOut := 0, 0
		for v := 0; v < n; v++ {
			sumIn += g.InDegree(uint32(v))
			sumOut += g.OutDegree(uint32(v))
		}
		return sumIn == g.NumEdges() && sumOut == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := figure1(t)
	g2, err := FromEdges(g.NumVertices(), g.Edges())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
		t.Fatal("Edges() round trip mismatch")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := figure1(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
		t.Fatal("binary round trip mismatch")
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	g := figure1(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	cases := map[string][]byte{
		"empty":           {},
		"bad magic":       append([]byte("XXXX"), data[4:]...),
		"truncated":       data[:len(data)-3],
		"header only":     data[:24],
		"short of header": data[:10],
	}
	for name, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := figure1(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
		t.Fatal("edge list round trip mismatch")
	}
	if g2.NumVertices() != g.NumVertices() {
		t.Fatalf("vertex count %d, want %d", g2.NumVertices(), g.NumVertices())
	}
}

func TestEdgeListParsing(t *testing.T) {
	in := "# comment\n# Nodes: 10 Edges: 2\n0 1\n3\t4\n\n"
	g, err := ReadEdgeList(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 {
		t.Fatalf("Nodes hint ignored: %d", g.NumVertices())
	}
	if g.NumEdges() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(3, 4) {
		t.Fatal("edges not parsed")
	}
	if _, err := ReadEdgeList(bytes.NewReader([]byte("0\n"))); err == nil {
		t.Fatal("single-field line accepted")
	}
	if _, err := ReadEdgeList(bytes.NewReader([]byte("a b\n"))); err == nil {
		t.Fatal("non-numeric line accepted")
	}
}

func TestAvgDegree(t *testing.T) {
	g := figure1(t)
	if got := g.AvgDegree(); got != 1 {
		t.Fatalf("AvgDegree = %v, want 1", got)
	}
	empty := NewBuilder(0).Build()
	if empty.AvgDegree() != 0 {
		t.Fatal("empty graph AvgDegree not 0")
	}
}
