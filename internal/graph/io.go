package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Binary format:
//
//	magic "KBTG" | version uint32 | n uint64 | m uint64 |
//	m × (from uint32, to uint32) little-endian.
//
// The edge payload is the raw edge list (not CSR) so the format stays
// trivially portable; Build reconstructs CSR on load. Graphs at the scales
// this repo targets (≤ a few million edges) load in well under a second.
const (
	binaryMagic   = "KBTG"
	binaryVersion = 1
)

// ErrBadFormat reports a malformed or corrupt graph file.
var ErrBadFormat = errors.New("graph: bad file format")

// WriteBinary serializes g to w in the binary format above.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:4], binaryVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(g.NumEdges()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.OutNeighbors(uint32(u)) {
			binary.LittleEndian.PutUint32(buf[0:4], uint32(u))
			binary.LittleEndian.PutUint32(buf[4:8], v)
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses a graph from r, validating structure before returning.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic)
	}
	var hdr [20]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadFormat)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v != binaryVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	n := binary.LittleEndian.Uint64(hdr[4:12])
	m := binary.LittleEndian.Uint64(hdr[12:20])
	const maxReasonable = 1 << 33
	if n > maxReasonable || m > maxReasonable {
		return nil, fmt.Errorf("%w: implausible sizes n=%d m=%d", ErrBadFormat, n, m)
	}
	b := NewBuilder(int(n))
	var buf [8]byte
	for i := uint64(0); i < m; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated edge %d", ErrBadFormat, i)
		}
		from := binary.LittleEndian.Uint32(buf[0:4])
		to := binary.LittleEndian.Uint32(buf[4:8])
		if err := b.AddEdge(from, to); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
	}
	g := b.Build()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return g, nil
}

// WriteEdgeList writes g as SNAP-style text: one "from<TAB>to" line per edge,
// with a "# Nodes: n Edges: m" comment header.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# Nodes: %d Edges: %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.OutNeighbors(uint32(u)) {
			if _, err := fmt.Fprintf(bw, "%d\t%d\n", u, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses SNAP-style text. Lines beginning with '#' are comments;
// vertex IDs may be arbitrary non-negative integers and the vertex count is
// max(id)+1 (also honoring a "# Nodes:" hint if larger).
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var edges []Edge
	maxID := -1
	hintNodes := 0
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if i := strings.Index(line, "Nodes:"); i >= 0 {
				fields := strings.Fields(line[i+len("Nodes:"):])
				if len(fields) > 0 {
					if n, err := strconv.Atoi(fields[0]); err == nil {
						hintNodes = n
					}
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("%w: line %d: %q", ErrBadFormat, lineNo, line)
		}
		from, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadFormat, lineNo, err)
		}
		to, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadFormat, lineNo, err)
		}
		edges = append(edges, Edge{From: uint32(from), To: uint32(to)})
		if int(from) > maxID {
			maxID = int(from)
		}
		if int(to) > maxID {
			maxID = int(to)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	n := maxID + 1
	if hintNodes > n {
		n = hintNodes
	}
	return FromEdges(n, edges)
}
