package graph

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// DegreeHistogram is the frequency distribution of a degree sequence:
// Counts[d] = number of vertices whose degree is exactly Degrees[i].
// It backs Figure 4 of the paper (in-degree distributions of both datasets,
// plotted log-log).
type DegreeHistogram struct {
	Degrees []int // distinct degrees, ascending
	Counts  []int // Counts[i] vertices have degree Degrees[i]
}

// InDegreeHistogram computes the in-degree frequency distribution.
func InDegreeHistogram(g *Graph) DegreeHistogram {
	return histogram(g, g.InDegree)
}

// OutDegreeHistogram computes the out-degree frequency distribution.
func OutDegreeHistogram(g *Graph) DegreeHistogram {
	return histogram(g, g.OutDegree)
}

func histogram(g *Graph, deg func(uint32) int) DegreeHistogram {
	freq := map[int]int{}
	for v := 0; v < g.NumVertices(); v++ {
		freq[deg(uint32(v))]++
	}
	degrees := make([]int, 0, len(freq))
	for d := range freq {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	counts := make([]int, len(degrees))
	for i, d := range degrees {
		counts[i] = freq[d]
	}
	return DegreeHistogram{Degrees: degrees, Counts: counts}
}

// MaxDegree returns the largest degree in the histogram (0 when empty).
func (h DegreeHistogram) MaxDegree() int {
	if len(h.Degrees) == 0 {
		return 0
	}
	return h.Degrees[len(h.Degrees)-1]
}

// NumVertices returns the total vertex count covered by the histogram.
func (h DegreeHistogram) NumVertices() int {
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	return total
}

// Buckets groups the histogram into logarithmic (power-of-base) buckets,
// matching how Figure 4 is read off a log-log plot. Bucket i covers degrees
// [base^i, base^(i+1)).
func (h DegreeHistogram) Buckets(base int) []int {
	if base < 2 {
		base = 2
	}
	var buckets []int
	for i, d := range h.Degrees {
		if d == 0 {
			continue
		}
		b := 0
		for x := d; x >= base; x /= base {
			b++
		}
		for len(buckets) <= b {
			buckets = append(buckets, 0)
		}
		buckets[b] += h.Counts[i]
	}
	return buckets
}

// WriteTo renders the histogram as "degree<TAB>count" lines, the exact series
// behind the Figure 4 scatter plots.
func (h DegreeHistogram) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for i := range h.Degrees {
		n, err := fmt.Fprintf(w, "%d\t%d\n", h.Degrees[i], h.Counts[i])
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// PowerLawSlope estimates the exponent alpha of a power-law fit
// count(d) ∝ d^(-alpha) by least squares in log-log space, ignoring
// degree-0 vertices. It is a diagnostic for the twitter-like generator
// (heavy-tailed) versus the news-like generator (not heavy-tailed), and is
// exercised by tests, not by query processing.
func (h DegreeHistogram) PowerLawSlope() float64 {
	var xs, ys []float64
	for i, d := range h.Degrees {
		if d == 0 || h.Counts[i] == 0 {
			continue
		}
		xs = append(xs, math.Log(float64(d)))
		ys = append(ys, math.Log(float64(h.Counts[i])))
	}
	if len(xs) < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	n := float64(len(xs))
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0
	}
	slope := (n*sxy - sx*sy) / denom
	return -slope
}
