// Package graph provides the directed social-network substrate for KB-TIM:
// a compressed-sparse-row (CSR) representation with both out-adjacency (for
// forward influence propagation) and in-adjacency (for reverse-reachable set
// sampling), plus degree statistics and serialization.
//
// Vertices are dense uint32 IDs in [0, N). Under the paper's default
// independent-cascade weighting, edge (u,v) carries probability
// p(u,v) = 1/N_v where N_v is the in-degree of v (§2.1); the graph therefore
// does not store per-edge probabilities for that model, only the structure.
// Models needing per-edge weights (LT) derive them deterministically from
// the structure (see internal/prop).
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Edge is a directed edge from From to To ("From influences To").
type Edge struct {
	From, To uint32
}

// Graph is an immutable directed graph in CSR form.
type Graph struct {
	n int
	m int

	// Out-adjacency: outAdj[outOff[u]:outOff[u+1]] are u's out-neighbors.
	outOff []int64
	outAdj []uint32

	// In-adjacency: inAdj[inOff[v]:inOff[v+1]] are v's in-neighbors.
	inOff []int64
	inAdj []uint32
}

// Builder accumulates edges and produces a Graph. Duplicate edges are kept
// (parallel edges are legal and strengthen influence, matching multigraph
// traces); self-loops are dropped because a user cannot influence itself.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder creates a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// AddEdge records the directed edge (from, to). It returns an error if either
// endpoint is out of range. Self-loops are silently ignored.
func (b *Builder) AddEdge(from, to uint32) error {
	if int(from) >= b.n || int(to) >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range for %d vertices", from, to, b.n)
	}
	if from == to {
		return nil
	}
	b.edges = append(b.edges, Edge{From: from, To: to})
	return nil
}

// Grow ensures the builder can address at least n vertices.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// NumEdges reports the number of edges recorded so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build finalizes the CSR structure. The Builder may be reused afterwards.
func (b *Builder) Build() *Graph {
	g := &Graph{
		n:      b.n,
		m:      len(b.edges),
		outOff: make([]int64, b.n+1),
		outAdj: make([]uint32, len(b.edges)),
		inOff:  make([]int64, b.n+1),
		inAdj:  make([]uint32, len(b.edges)),
	}
	// Counting sort into CSR, twice (out by From, in by To).
	for _, e := range b.edges {
		g.outOff[e.From+1]++
		g.inOff[e.To+1]++
	}
	for i := 0; i < b.n; i++ {
		g.outOff[i+1] += g.outOff[i]
		g.inOff[i+1] += g.inOff[i]
	}
	outCur := make([]int64, b.n)
	inCur := make([]int64, b.n)
	for _, e := range b.edges {
		g.outAdj[g.outOff[e.From]+outCur[e.From]] = e.To
		outCur[e.From]++
		g.inAdj[g.inOff[e.To]+inCur[e.To]] = e.From
		inCur[e.To]++
	}
	// Sort adjacency lists for determinism and binary-search lookups.
	for v := 0; v < b.n; v++ {
		out := g.outAdj[g.outOff[v]:g.outOff[v+1]]
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		in := g.inAdj[g.inOff[v]:g.inOff[v+1]]
		sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	}
	return g
}

// FromEdges builds a graph directly from an edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.From, e.To); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns |E| (self-loops excluded at build time).
func (g *Graph) NumEdges() int { return g.m }

// OutNeighbors returns the out-neighbors of u. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) OutNeighbors(u uint32) []uint32 {
	return g.outAdj[g.outOff[u]:g.outOff[u+1]]
}

// InNeighbors returns the in-neighbors of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) InNeighbors(v uint32) []uint32 {
	return g.inAdj[g.inOff[v]:g.inOff[v+1]]
}

// OutDegree returns |OutNeighbors(u)|.
func (g *Graph) OutDegree(u uint32) int {
	return int(g.outOff[u+1] - g.outOff[u])
}

// InDegree returns |InNeighbors(v)|. Under the IC model every edge into v
// carries probability 1/InDegree(v).
func (g *Graph) InDegree(v uint32) int {
	return int(g.inOff[v+1] - g.inOff[v])
}

// ICProb returns the independent-cascade probability of any edge into v,
// p(e) = 1/N_v (§2.1). It returns 0 for vertices with no in-edges.
func (g *Graph) ICProb(v uint32) float64 {
	d := g.InDegree(v)
	if d == 0 {
		return 0
	}
	return 1 / float64(d)
}

// AvgDegree returns |E| / |V| (the "AveDegree" row of Table 2).
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.m) / float64(g.n)
}

// HasEdge reports whether the edge (u,v) exists, by binary search on the
// sorted out-adjacency of u.
func (g *Graph) HasEdge(u, v uint32) bool {
	adj := g.OutNeighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// Edges returns a fresh slice of all edges in (From, To) order sorted by
// From then To. Intended for tests and serialization, not hot paths.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.OutNeighbors(uint32(u)) {
			edges = append(edges, Edge{From: uint32(u), To: v})
		}
	}
	return edges
}

// Validate checks internal CSR invariants. It is used by tests and by the
// binary loader to reject corrupt files.
func (g *Graph) Validate() error {
	if g.n < 0 || g.m < 0 {
		return errors.New("graph: negative sizes")
	}
	if len(g.outOff) != g.n+1 || len(g.inOff) != g.n+1 {
		return errors.New("graph: offset array length mismatch")
	}
	if g.outOff[0] != 0 || g.inOff[0] != 0 {
		return errors.New("graph: offsets must start at 0")
	}
	if g.outOff[g.n] != int64(g.m) || g.inOff[g.n] != int64(g.m) {
		return errors.New("graph: offsets must end at |E|")
	}
	for i := 0; i < g.n; i++ {
		if g.outOff[i] > g.outOff[i+1] || g.inOff[i] > g.inOff[i+1] {
			return errors.New("graph: non-monotone offsets")
		}
	}
	for _, v := range g.outAdj {
		if int(v) >= g.n {
			return errors.New("graph: out-adjacency vertex out of range")
		}
	}
	for _, v := range g.inAdj {
		if int(v) >= g.n {
			return errors.New("graph: in-adjacency vertex out of range")
		}
	}
	return nil
}
