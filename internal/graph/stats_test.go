package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestInDegreeHistogram(t *testing.T) {
	g := figure1(t)
	h := InDegreeHistogram(g)
	// In-degrees: a=1, b=2, c=2, d=2, e=0, f=0, g=0 → {0:3, 1:1, 2:3}.
	wantDeg := []int{0, 1, 2}
	wantCnt := []int{3, 1, 3}
	if len(h.Degrees) != len(wantDeg) {
		t.Fatalf("got %v/%v", h.Degrees, h.Counts)
	}
	for i := range wantDeg {
		if h.Degrees[i] != wantDeg[i] || h.Counts[i] != wantCnt[i] {
			t.Fatalf("histogram %v/%v, want %v/%v", h.Degrees, h.Counts, wantDeg, wantCnt)
		}
	}
	if h.NumVertices() != 7 {
		t.Fatalf("NumVertices = %d", h.NumVertices())
	}
	if h.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d", h.MaxDegree())
	}
}

func TestOutDegreeHistogram(t *testing.T) {
	g := figure1(t)
	h := OutDegreeHistogram(g)
	// Out-degrees: a=0, b=2, c=0, d=0, e=3, f=1, g=1 → {0:3, 1:2, 2:1, 3:1}.
	if h.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d, want 3", h.MaxDegree())
	}
	if h.NumVertices() != 7 {
		t.Fatalf("NumVertices = %d", h.NumVertices())
	}
}

func TestHistogramWriteTo(t *testing.T) {
	g := figure1(t)
	var buf bytes.Buffer
	if _, err := InDegreeHistogram(g).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	if lines[0] != "0\t3" {
		t.Fatalf("first line %q", lines[0])
	}
}

func TestBuckets(t *testing.T) {
	h := DegreeHistogram{Degrees: []int{0, 1, 2, 3, 4, 9, 100}, Counts: []int{5, 1, 1, 1, 1, 1, 1}}
	b := h.Buckets(10)
	// degrees 1..9 in bucket 0, 100 in bucket 2; degree 0 skipped.
	if len(b) != 3 || b[0] != 5 || b[1] != 0 || b[2] != 1 {
		t.Fatalf("buckets = %v", b)
	}
}

func TestPowerLawSlopeOnSyntheticPowerLaw(t *testing.T) {
	// count(d) = 10000 * d^-2 exactly: slope estimate should be close to 2.
	var degrees, counts []int
	for d := 1; d <= 100; d++ {
		c := int(10000 / float64(d*d))
		if c == 0 {
			continue
		}
		degrees = append(degrees, d)
		counts = append(counts, c)
	}
	h := DegreeHistogram{Degrees: degrees, Counts: counts}
	slope := h.PowerLawSlope()
	if slope < 1.7 || slope > 2.3 {
		t.Fatalf("slope = %v, want ≈2", slope)
	}
}

func TestPowerLawSlopeDegenerate(t *testing.T) {
	if s := (DegreeHistogram{}).PowerLawSlope(); s != 0 {
		t.Fatalf("empty slope = %v", s)
	}
	h := DegreeHistogram{Degrees: []int{5}, Counts: []int{3}}
	if s := h.PowerLawSlope(); s != 0 {
		t.Fatalf("single-point slope = %v", s)
	}
}
