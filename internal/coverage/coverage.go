// Package coverage implements the greedy maximum-coverage solver used by
// every query-processing path in the paper (step 2 of RIS, lines 6–14 of
// Algorithm 2): given θ RR sets, pick k users covering the largest number of
// sets. Greedy gives the (1−1/e) factor that, combined with the sampling
// bound, yields the overall (1−1/e−ε) guarantee (proof sketch S3–S4).
//
// Two implementations are provided: Solve, the textbook scan-and-update
// greedy the paper uses for the RR index; and SolveLazy, a CELF-style lazily
// re-evaluated greedy (ablation — see DESIGN.md). Both use identical
// deterministic tie-breaking (larger count first, then smaller vertex ID),
// so they return identical seed sequences.
package coverage

import (
	"fmt"
	"time"

	"kbtim/internal/pool"
)

// Instance is a maximum-coverage instance: NumSets RR sets over vertices in
// [0, NumVertices), presented through the vertex → set-IDs inverted lists.
// Lists[v] must be sorted ascending and duplicate-free; vertices absent from
// every set may have nil lists.
type Instance struct {
	NumVertices int
	NumSets     int
	Lists       [][]int32
}

// Result is the outcome of a greedy run.
type Result struct {
	Seeds    []uint32 // selected vertices, in selection order
	Marginal []int    // Marginal[i] = newly covered sets when Seeds[i] was picked
	Covered  int      // total sets covered
	Partial  bool     // true when a deadline stopped the run before k picks
}

// SolveOptions carries the anytime-query hooks shared by Solve and
// SolveLazy. The zero value means "batch": no emission, no deadline, and
// SolveOpts(in, k, members, SolveOptions{}) is byte-identical to
// Solve(in, k, members).
type SolveOptions struct {
	// Emit, when non-nil, is called synchronously the moment a seed is
	// selected, before the next greedy iteration starts. Seeds arrive in
	// selection order; the concatenation of emitted (seed, marginal)
	// pairs always equals the returned Result prefix.
	Emit func(seed uint32, marginal int)
	// Deadline, when non-zero, bounds the run: the solver checks it
	// before each greedy pick and, once expired, returns the certified
	// prefix selected so far with Partial=true instead of an error.
	Deadline time.Time
}

// expired reports whether the deadline has passed. A zero deadline never
// expires.
func (so *SolveOptions) expired() bool {
	return !so.Deadline.IsZero() && time.Now().After(so.Deadline)
}

// emit appends a pick to res and forwards it to the sink, if any. Both
// solvers funnel every selection — including zero-marginal padding done by
// callers via the same contract — through this one ordering.
func (so *SolveOptions) emit(res *Result, seed uint32, marginal int) {
	res.Seeds = append(res.Seeds, seed)
	res.Marginal = append(res.Marginal, marginal)
	res.Covered += marginal
	if so.Emit != nil {
		so.Emit(seed, marginal)
	}
}

// Validate checks instance consistency.
func (in *Instance) Validate() error {
	if in.NumVertices < 0 || in.NumSets < 0 {
		return fmt.Errorf("coverage: negative dimensions")
	}
	if len(in.Lists) != in.NumVertices {
		return fmt.Errorf("coverage: %d lists for %d vertices", len(in.Lists), in.NumVertices)
	}
	for v, list := range in.Lists {
		for i, id := range list {
			if id < 0 || int(id) >= in.NumSets {
				return fmt.Errorf("coverage: vertex %d references set %d outside [0,%d)", v, id, in.NumSets)
			}
			if i > 0 && list[i-1] >= id {
				return fmt.Errorf("coverage: vertex %d list not strictly ascending", v)
			}
		}
	}
	return nil
}

// Solve runs the plain greedy: k iterations, each scanning for the vertex
// with the largest number of uncovered sets, then marking that vertex's sets
// covered and decrementing the counts of co-members. members(setID) must
// yield the vertices of a set; the disk indexes supply it from R, the
// in-memory path from the batch.
func Solve(in *Instance, k int, members func(setID int32) []uint32) (Result, error) {
	return SolveOpts(in, k, members, SolveOptions{})
}

// SolveOpts is Solve with anytime hooks: each pick is forwarded to so.Emit
// as it is certified, and an expired so.Deadline ends the run early with the
// prefix selected so far (Partial=true).
func SolveOpts(in *Instance, k int, members func(setID int32) []uint32, so SolveOptions) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	if k <= 0 {
		return Result{}, fmt.Errorf("coverage: k must be positive, got %d", k)
	}
	counts := pool.Ints(in.NumVertices)
	defer pool.PutInts(counts)
	for v, list := range in.Lists {
		counts[v] = len(list)
	}
	covered := pool.Bools(in.NumSets)
	defer pool.PutBools(covered)
	picked := pool.Bools(in.NumVertices)
	defer pool.PutBools(picked)
	var res Result
	for iter := 0; iter < k && iter < in.NumVertices; iter++ {
		if so.expired() {
			res.Partial = true
			break
		}
		best, bestCount := -1, -1
		for v := 0; v < in.NumVertices; v++ {
			if !picked[v] && counts[v] > bestCount {
				best, bestCount = v, counts[v]
			}
		}
		if best < 0 {
			break
		}
		picked[best] = true
		so.emit(&res, uint32(best), bestCount)
		for _, setID := range in.Lists[best] {
			if covered[setID] {
				continue
			}
			covered[setID] = true
			for _, u := range members(setID) {
				counts[u]--
			}
		}
	}
	return res, nil
}

// celfEntry is a lazily evaluated candidate in SolveLazy.
type celfEntry struct {
	vertex uint32
	count  int // possibly stale upper bound on marginal coverage
	round  int // iteration at which count was computed
}

// celfPool recycles heap backing arrays between SolveLazy calls.
var celfPool pool.SlicePool[celfEntry]

// celfHeap is a typed max-heap over celfEntry. container/heap would box
// every Push/Pop through interface{} — two allocations per operation on the
// solver's hottest loop — so the sift operations are implemented directly.
type celfHeap struct{ s []celfEntry }

func (h *celfHeap) len() int { return len(h.s) }
func (h *celfHeap) less(i, j int) bool {
	if h.s[i].count != h.s[j].count {
		return h.s[i].count > h.s[j].count
	}
	return h.s[i].vertex < h.s[j].vertex
}

func (h *celfHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.s[i], h.s[parent] = h.s[parent], h.s[i]
		i = parent
	}
}

func (h *celfHeap) down(i int) {
	n := len(h.s)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best := l
		if r := l + 1; r < n && h.less(r, l) {
			best = r
		}
		if !h.less(best, i) {
			break
		}
		h.s[i], h.s[best] = h.s[best], h.s[i]
		i = best
	}
}

// init heapifies the backing slice in O(n).
func (h *celfHeap) init() {
	for i := len(h.s)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// fix0 restores the heap property after the root entry was updated in place
// (the lazy-refresh step).
func (h *celfHeap) fix0() { h.down(0) }

// pop removes and returns the root.
func (h *celfHeap) pop() celfEntry {
	top := h.s[0]
	n := len(h.s) - 1
	h.s[0] = h.s[n]
	h.s = h.s[:n]
	h.down(0)
	return top
}

// SolveLazy runs CELF-style greedy: marginal counts are only refreshed for
// the heap top, exploiting submodularity (stale counts are valid upper
// bounds). Returns exactly the same seeds as Solve under the shared
// tie-breaking rule.
func SolveLazy(in *Instance, k int, members func(setID int32) []uint32) (Result, error) {
	return SolveLazyOpts(in, k, members, SolveOptions{})
}

// SolveLazyOpts is SolveLazy with the same anytime hooks as SolveOpts.
func SolveLazyOpts(in *Instance, k int, members func(setID int32) []uint32, so SolveOptions) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	if k <= 0 {
		return Result{}, fmt.Errorf("coverage: k must be positive, got %d", k)
	}
	covered := pool.Bools(in.NumSets)
	defer pool.PutBools(covered)
	// Every vertex enters the heap (zero-count ones too) so that the
	// zero-marginal tie-breaking matches Solve exactly.
	h := celfHeap{s: celfPool.Get(in.NumVertices)}
	for v, list := range in.Lists {
		h.s[v] = celfEntry{vertex: uint32(v), count: len(list), round: 0}
	}
	h.init()
	defer func() { celfPool.Put(h.s) }()

	fresh := func(v uint32) int {
		c := 0
		for _, setID := range in.Lists[v] {
			if !covered[setID] {
				c++
			}
		}
		return c
	}

	var res Result
	for iter := 1; len(res.Seeds) < k && h.len() > 0; {
		top := h.s[0]
		if top.round != iter {
			// Refresh and push back; only when the refreshed entry stays on
			// top is it selected (next loop turn).
			h.s[0].count = fresh(top.vertex)
			h.s[0].round = iter
			h.fix0()
			continue
		}
		// The deadline gates the pick, not the refresh churn above: an entry
		// that is about to be selected is a certified greedy choice, so the
		// boundary between iterations is the only safe cut point.
		if so.expired() {
			res.Partial = true
			break
		}
		h.pop()
		so.emit(&res, top.vertex, top.count)
		for _, setID := range in.Lists[top.vertex] {
			covered[setID] = true
		}
		iter++
	}
	_ = members // signature symmetry with Solve; lazy path never rescans members
	return res, nil
}

// BruteForceBest returns the maximum number of sets coverable by any k
// vertices, by exhaustive search. Exponential — tests only.
func BruteForceBest(in *Instance, k int) (int, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	best := 0
	cur := make([]uint32, 0, k)
	var recurse func(start int)
	covered := make([]int, in.NumSets) // reference counts
	total := 0
	add := func(v uint32) {
		for _, id := range in.Lists[v] {
			if covered[id] == 0 {
				total++
			}
			covered[id]++
		}
	}
	remove := func(v uint32) {
		for _, id := range in.Lists[v] {
			covered[id]--
			if covered[id] == 0 {
				total--
			}
		}
	}
	recurse = func(start int) {
		if len(cur) == k || start == in.NumVertices {
			if total > best {
				best = total
			}
			return
		}
		// Prune: even covering everything can't beat best.
		if total+in.NumSets-coveredCount(covered) <= best {
			return
		}
		for v := start; v < in.NumVertices; v++ {
			cur = append(cur, uint32(v))
			add(uint32(v))
			recurse(v + 1)
			remove(uint32(v))
			cur = cur[:len(cur)-1]
		}
	}
	recurse(0)
	return best, nil
}

func coveredCount(ref []int) int {
	c := 0
	for _, r := range ref {
		if r > 0 {
			c++
		}
	}
	return c
}
