package coverage

import (
	"reflect"
	"testing"
	"time"

	"kbtim/internal/rng"
)

// TestSolveOptsEmitMatchesBatch: the emitted (seed, marginal) sequence,
// concatenated, is exactly the batch result — the sink observes the same
// greedy trace the Result records, for both the plain and the lazy solver.
func TestSolveOptsEmitMatchesBatch(t *testing.T) {
	src := rng.New(41)
	for trial := 0; trial < 20; trial++ {
		n := src.Intn(20) + 3
		numSets := src.Intn(40) + 1
		sets := make([][]uint32, numSets)
		for i := range sets {
			size := src.Intn(4) + 1
			seen := map[uint32]bool{}
			for len(sets[i]) < size {
				v := uint32(src.Intn(n))
				if !seen[v] {
					seen[v] = true
					sets[i] = append(sets[i], v)
				}
			}
			sortSlice(sets[i])
		}
		in, members := instanceFromSets(n, sets)
		k := src.Intn(5) + 1

		batch, err := Solve(in, k, members)
		if err != nil {
			t.Fatal(err)
		}
		for name, solve := range map[string]func(*Instance, int, func(setID int32) []uint32, SolveOptions) (Result, error){
			"SolveOpts":     SolveOpts,
			"SolveLazyOpts": SolveLazyOpts,
		} {
			var seeds []uint32
			var marginals []int
			res, err := solve(in, k, members, SolveOptions{
				Emit: func(seed uint32, marginal int) {
					seeds = append(seeds, seed)
					marginals = append(marginals, marginal)
				},
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if res.Partial {
				t.Fatalf("%s: partial without a deadline", name)
			}
			if !reflect.DeepEqual(seeds, res.Seeds) || !reflect.DeepEqual(marginals, res.Marginal) {
				t.Fatalf("%s trial %d: emitted (%v,%v) != result (%v,%v)",
					name, trial, seeds, marginals, res.Seeds, res.Marginal)
			}
			if !reflect.DeepEqual(res.Seeds, batch.Seeds) || res.Covered != batch.Covered {
				t.Fatalf("%s trial %d: streamed result diverged from batch", name, trial)
			}
		}
	}
}

// TestSolveOptsDeadline: an already-expired deadline yields an empty
// certified prefix marked Partial; a generous one yields the full batch
// answer with Partial false.
func TestSolveOptsDeadline(t *testing.T) {
	in, members := example2()
	res, err := SolveOpts(in, 2, members, SolveOptions{Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("expired deadline did not mark the result partial")
	}
	if len(res.Seeds) != 0 {
		t.Fatalf("expired deadline still picked %v", res.Seeds)
	}

	batch, err := Solve(in, 2, members)
	if err != nil {
		t.Fatal(err)
	}
	res, err = SolveOpts(in, 2, members, SolveOptions{Deadline: time.Now().Add(time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatal("generous deadline marked the result partial")
	}
	if !reflect.DeepEqual(res.Seeds, batch.Seeds) || res.Covered != batch.Covered {
		t.Fatalf("generous deadline changed the answer: %+v vs %+v", res, batch)
	}
}
