package coverage

import (
	"reflect"
	"testing"

	"kbtim/internal/rng"
	"kbtim/internal/rrset"
)

// instanceFromSets builds an Instance plus a members function from explicit
// set contents.
func instanceFromSets(numVertices int, sets [][]uint32) (*Instance, func(int32) []uint32) {
	var b rrset.Batch
	for _, s := range sets {
		b.Append(s)
	}
	in := &Instance{
		NumVertices: numVertices,
		NumSets:     len(sets),
		Lists:       b.InvertedLists(numVertices),
	}
	return in, func(id int32) []uint32 { return b.Set(int(id)) }
}

// Example 2 of the paper: four RR sets over {a..g}=0..6. The paper notes
// {e,f} covers all four sets; greedy must reach full coverage value within
// its guarantee, and k=2 brute force must find 4.
func example2() (*Instance, func(int32) []uint32) {
	return instanceFromSets(7, [][]uint32{
		{1, 3, 5}, // Gd = {b,d,f}
		{4},       // Ge = {e}
		{3, 5},    // Gd' = {d,f}
		{0, 1, 4}, // Gb = {a,b,e}
	})
}

func TestBruteForceExample2(t *testing.T) {
	in, _ := example2()
	best, err := BruteForceBest(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if best != 4 {
		t.Fatalf("brute force = %d, want 4 ({e,f} covers all)", best)
	}
}

func TestGreedyGuaranteeExample2(t *testing.T) {
	in, members := example2()
	res, err := Solve(in, 2, members)
	if err != nil {
		t.Fatal(err)
	}
	// (1-1/e)·4 ≈ 2.53 → greedy must cover ≥ 3.
	if res.Covered < 3 {
		t.Fatalf("greedy covered %d < 3", res.Covered)
	}
	if len(res.Seeds) != 2 || len(res.Marginal) != 2 {
		t.Fatalf("result shape %+v", res)
	}
	if res.Marginal[0]+res.Marginal[1] != res.Covered {
		t.Fatal("marginal sums disagree with Covered")
	}
}

func TestGreedyDeterministicTieBreak(t *testing.T) {
	// Two vertices cover disjoint pairs; smaller ID must win the tie.
	in, members := instanceFromSets(4, [][]uint32{{1}, {1}, {3}, {3}})
	res, err := Solve(in, 1, members)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 1 {
		t.Fatalf("tie broken toward %d, want 1", res.Seeds[0])
	}
}

func TestGreedyMarksCoveredOnce(t *testing.T) {
	// Overlapping sets: picking v=0 (in both sets) leaves nothing for v=1.
	in, members := instanceFromSets(2, [][]uint32{{0, 1}, {0, 1}})
	res, err := Solve(in, 2, members)
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered != 2 {
		t.Fatalf("Covered = %d, want 2", res.Covered)
	}
	if res.Marginal[1] != 0 {
		t.Fatalf("second marginal = %d, want 0", res.Marginal[1])
	}
}

func TestLazyMatchesPlain(t *testing.T) {
	src := rng.New(31)
	for trial := 0; trial < 30; trial++ {
		n := src.Intn(20) + 3
		numSets := src.Intn(40) + 1
		sets := make([][]uint32, numSets)
		for i := range sets {
			size := src.Intn(4) + 1
			seen := map[uint32]bool{}
			for len(sets[i]) < size {
				v := uint32(src.Intn(n))
				if !seen[v] {
					seen[v] = true
					sets[i] = append(sets[i], v)
				}
			}
			sortSlice(sets[i])
		}
		in, members := instanceFromSets(n, sets)
		k := src.Intn(n) + 1
		plain, err := Solve(in, k, members)
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := SolveLazy(in, k, members)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.Seeds, lazy.Seeds) {
			t.Fatalf("trial %d: plain %v vs lazy %v (marginals %v vs %v)",
				trial, plain.Seeds, lazy.Seeds, plain.Marginal, lazy.Marginal)
		}
		if plain.Covered != lazy.Covered {
			t.Fatalf("trial %d: covered %d vs %d", trial, plain.Covered, lazy.Covered)
		}
	}
}

func TestGreedyApproximationRatio(t *testing.T) {
	// Property: greedy ≥ (1-1/e)·OPT on random brute-forceable instances.
	src := rng.New(37)
	for trial := 0; trial < 25; trial++ {
		n := src.Intn(8) + 3
		numSets := src.Intn(12) + 1
		sets := make([][]uint32, numSets)
		for i := range sets {
			size := src.Intn(3) + 1
			seen := map[uint32]bool{}
			for len(sets[i]) < size {
				v := uint32(src.Intn(n))
				if !seen[v] {
					seen[v] = true
					sets[i] = append(sets[i], v)
				}
			}
			sortSlice(sets[i])
		}
		in, members := instanceFromSets(n, sets)
		k := src.Intn(3) + 1
		res, err := Solve(in, k, members)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := BruteForceBest(in, k)
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.Covered) < (1-1/2.718281828)*float64(opt)-1e-9 {
			t.Fatalf("trial %d: greedy %d < (1-1/e)·%d", trial, res.Covered, opt)
		}
	}
}

func TestValidateCatchesBadInstances(t *testing.T) {
	bad := []*Instance{
		{NumVertices: 2, NumSets: 1, Lists: [][]int32{{0}}},    // wrong list count
		{NumVertices: 1, NumSets: 1, Lists: [][]int32{{1}}},    // set ID out of range
		{NumVertices: 1, NumSets: 2, Lists: [][]int32{{1, 0}}}, // not ascending
		{NumVertices: 1, NumSets: 2, Lists: [][]int32{{0, 0}}}, // duplicate
		{NumVertices: -1, NumSets: 0, Lists: nil},              // negative
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad instance %d accepted", i)
		}
	}
}

func TestSolveRejectsBadK(t *testing.T) {
	in, members := example2()
	if _, err := Solve(in, 0, members); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := SolveLazy(in, -1, members); err == nil {
		t.Fatal("k=-1 accepted by lazy")
	}
}

func TestKLargerThanVertices(t *testing.T) {
	in, members := instanceFromSets(2, [][]uint32{{0}})
	res, err := Solve(in, 5, members)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) > 2 {
		t.Fatalf("selected %d seeds from 2 vertices", len(res.Seeds))
	}
}

func sortSlice(xs []uint32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

func BenchmarkGreedy(b *testing.B) {
	src := rng.New(1)
	n := 5000
	sets := make([][]uint32, 20000)
	for i := range sets {
		size := src.Intn(8) + 1
		seen := map[uint32]bool{}
		for len(sets[i]) < size {
			v := uint32(src.Intn(n))
			if !seen[v] {
				seen[v] = true
				sets[i] = append(sets[i], v)
			}
		}
		sortSlice(sets[i])
	}
	in, members := instanceFromSets(n, sets)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(in, 30, members); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyLazy(b *testing.B) {
	src := rng.New(1)
	n := 5000
	sets := make([][]uint32, 20000)
	for i := range sets {
		size := src.Intn(8) + 1
		seen := map[uint32]bool{}
		for len(sets[i]) < size {
			v := uint32(src.Intn(n))
			if !seen[v] {
				seen[v] = true
				sets[i] = append(sets[i], v)
			}
		}
		sortSlice(sets[i])
	}
	in, members := instanceFromSets(n, sets)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveLazy(in, 30, members); err != nil {
			b.Fatal(err)
		}
	}
}
