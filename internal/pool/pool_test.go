package pool

import (
	"sync"
	"testing"
)

func TestClassRounding(t *testing.T) {
	for _, tc := range []struct{ n, wantCap int }{
		{0, 64}, {1, 64}, {64, 64}, {65, 128}, {128, 128}, {129, 256}, {4096, 4096},
	} {
		s := Ints(tc.n)
		if len(s) != tc.n || cap(s) != tc.wantCap {
			t.Errorf("Ints(%d): len=%d cap=%d, want len=%d cap=%d", tc.n, len(s), cap(s), tc.n, tc.wantCap)
		}
		PutInts(s)
	}
}

func TestGetReturnsZeroedAfterDirtyPut(t *testing.T) {
	s := Bools(100)
	for i := range s {
		s[i] = true
	}
	PutBools(s)
	// Ask for a LONGER slice of the same class: every element, including the
	// tail beyond the previous user's length, must be false again.
	s2 := Bools(128)
	for i, v := range s2 {
		if v {
			t.Fatalf("recycled slice dirty at %d", i)
		}
	}
	PutBools(s2)

	lists := Int32Lists(10)
	lists[3] = []int32{1, 2, 3}
	PutInt32Lists(lists)
	lists2 := Int32Lists(16)
	for i, l := range lists2 {
		if l != nil {
			t.Fatalf("recycled list table retains inner slice at %d", i)
		}
	}
	PutInt32Lists(lists2)
}

func TestPutGrownByAppend(t *testing.T) {
	s := Uint32s(10)
	s = append(s[:0], make([]uint32, 500)...) // force growth past the class
	PutUint32s(s)                             // must re-class or drop, never corrupt
	big := Uint32s(500)
	if len(big) != 500 {
		t.Fatalf("len %d", len(big))
	}
	for i, v := range big {
		if v != 0 {
			t.Fatalf("dirty at %d", i)
		}
	}
	PutUint32s(big)
}

func TestHugeRequestsBypassPool(t *testing.T) {
	n := 1 << 26
	s := Int32s(n)
	if len(s) != n {
		t.Fatalf("len %d", len(s))
	}
	PutInt32s(s[:0]) // dropping an unpoolable slice must be a no-op
}

// TestConcurrentUse hammers the shared pools from many goroutines under
// -race: every Get must observe fully zeroed state.
func TestConcurrentUse(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				n := 50 + (g*31+i)%400
				b := Bools(n)
				for j := range b {
					if b[j] {
						t.Errorf("dirty bool at %d", j)
						return
					}
					b[j] = true
				}
				PutBools(b)
				u := Uint32s(n)
				for j := range u {
					if u[j] != 0 {
						t.Errorf("dirty uint32 at %d", j)
						return
					}
					u[j] = 0xDEAD
				}
				PutUint32s(u)
			}
		}(g)
	}
	wg.Wait()
}
