// Package pool provides size-classed sync.Pool-backed slice pools for the
// per-query scratch state of the read path: coverage mark slices, candidate
// heap backing arrays, per-vertex list tables, decode buffers, and merge
// buffers. Every query used to allocate (and garbage-collect) this scratch
// afresh; under concurrent serving the allocation rate — not the CPU work —
// became the scaling ceiling. Pooling drops allocs/query by an order of
// magnitude (see the BenchmarkQueryAllocs gates in rrindex and irrindex).
//
// Capacities are rounded up to power-of-two size classes so one pool entry
// serves every request of its class, and each Get returns a fully ZEROED
// slice of the requested length — callers never see a previous query's
// state. Putting a slice back is always optional (dropping it just costs an
// allocation later) and callers MUST NOT retain any alias after Put.
package pool

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// gets and puts count SlicePool.Get and Put calls across every pool in
// the process. The counters exist for the leak regression tests (and
// kbtim-lint's poolpair analyzer they back up): around any code path —
// in particular error paths — the number of gets and puts must balance
// once the path has run to completion. One uncontended atomic add per
// per-query pool operation is noise next to the zeroing Put already does.
var gets, puts atomic.Int64

// Counts returns the cumulative Get and Put call counts across every
// SlicePool. Tests snapshot it before and after the code under test and
// assert the deltas balance.
func Counts() (g, p int64) { return gets.Load(), puts.Load() }

// minClassBits is the smallest pooled capacity (1<<minClassBits); requests
// below it share the smallest class.
const minClassBits = 6

// numClasses spans capacities 64 .. 1<<30; larger requests bypass the pool.
const numClasses = 25

// SlicePool is a size-classed pool of []T. The zero value is ready to use;
// declare one per element type (see the package-level pools for common
// types).
type SlicePool[T any] struct {
	classes [numClasses]sync.Pool
}

// class returns the size-class index for capacity n, or -1 when n is too
// large to pool.
func class(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	c := bits.Len(uint(n-1)) - minClassBits
	if c >= numClasses {
		return -1
	}
	return c
}

// Get returns a zeroed slice of length n (capacity rounded up to the size
// class). Slices beyond the largest class are freshly allocated.
func (p *SlicePool[T]) Get(n int) []T {
	gets.Add(1)
	c := class(n)
	if c < 0 {
		return make([]T, n)
	}
	// Pooled entries are fully zeroed (at Put) and fresh ones come zeroed
	// from make, so no clearing is needed here. A few larger classes are
	// tried before allocating: append-grown slices land in higher classes
	// than the hint their next user asks with, and serving the small request
	// from the grown slice (bounded overshoot) is what lets grow-in-place
	// workloads reach steady state instead of re-growing every time.
	for i := c; i < c+4 && i < numClasses; i++ {
		if v, ok := p.classes[i].Get().(*[]T); ok {
			return (*v)[:n]
		}
	}
	return make([]T, n, 1<<(c+minClassBits))
}

// Put returns a slice obtained from Get to its pool. The slice may have been
// re-sliced or grown by append (append growth rarely lands on a power of
// two, so capacities are FLOOR-classed: every entry of class c has capacity
// >= the class size, which is all Get needs). Pointer-holding element types
// are cleared here too, so pooled entries never pin a previous query's
// memory for the GC.
func (p *SlicePool[T]) Put(s []T) {
	puts.Add(1)
	if cap(s) < 1<<minClassBits {
		return
	}
	c := bits.Len(uint(cap(s))) - 1 - minClassBits // floor(log2(cap)) class
	if c >= numClasses {
		return
	}
	if c < 0 {
		c = 0
	}
	s = s[:cap(s)]
	clear(s)
	p.classes[c].Put(&s)
}

// Shared pools for the element types the query paths use.
var (
	boolPool   SlicePool[bool]
	intPool    SlicePool[int]
	int32Pool  SlicePool[int32]
	int64Pool  SlicePool[int64]
	uint32Pool SlicePool[uint32]
	listsPool  SlicePool[[]int32]
)

// Bools returns a zeroed []bool of length n (coverage marks, picked flags).
func Bools(n int) []bool { return boolPool.Get(n) }

// PutBools returns a Bools slice to the pool.
func PutBools(s []bool) { boolPool.Put(s) }

// Ints returns a zeroed []int of length n (per-vertex counts).
func Ints(n int) []int { return intPool.Get(n) }

// PutInts returns an Ints slice to the pool.
func PutInts(s []int) { intPool.Put(s) }

// Int32s returns a zeroed []int32 of length n (merge buffers).
func Int32s(n int) []int32 { return int32Pool.Get(n) }

// PutInt32s returns an Int32s slice to the pool.
func PutInt32s(s []int32) { int32Pool.Put(s) }

// Int64s returns a zeroed []int64 of length n (batch offset tables).
func Int64s(n int) []int64 { return int64Pool.Get(n) }

// PutInt64s returns an Int64s slice to the pool.
func PutInt64s(s []int64) { int64Pool.Put(s) }

// Uint32s returns a zeroed []uint32 of length n (decode scratch).
func Uint32s(n int) []uint32 { return uint32Pool.Get(n) }

// PutUint32s returns a Uint32s slice to the pool.
func PutUint32s(s []uint32) { uint32Pool.Put(s) }

// Int32Lists returns a zeroed [][]int32 of length n (per-vertex inverted
// list tables). Entries are nil on return from Get.
func Int32Lists(n int) [][]int32 { return listsPool.Get(n) }

// PutInt32Lists returns an Int32Lists slice to the pool, dropping every
// inner-slice reference.
func PutInt32Lists(s [][]int32) { listsPool.Put(s) }
