package rrset

import (
	"runtime"
	"sync"

	"kbtim/internal/graph"
	"kbtim/internal/prop"
	"kbtim/internal/rng"
)

// Batch is a collection of RR sets stored in one flat arena: set i occupies
// Flat[Off[i]:Off[i+1]]. Flat storage keeps hundreds of thousands of sets
// allocation- and GC-friendly, and it is the exact shape the disk index
// serializes. Decoded batches are published through internal/objcache and
// shared read-only between queries, so post-construction writes outside
// the constructing function are checked by kbtim-lint's cacheimmutable.
//
//kbtim:cached
type Batch struct {
	Off  []int64
	Flat []uint32
}

// Len returns the number of RR sets in the batch.
func (b *Batch) Len() int { return len(b.Off) - 1 }

// Set returns RR set i (sorted ascending, aliases internal storage).
func (b *Batch) Set(i int) []uint32 { return b.Flat[b.Off[i]:b.Off[i+1]] }

// TotalSize returns the summed cardinality of all sets.
func (b *Batch) TotalSize() int64 { return int64(len(b.Flat)) }

// MeanSize returns the average RR-set cardinality (the "Mean RR set size"
// column of Table 5).
func (b *Batch) MeanSize() float64 {
	if b.Len() == 0 {
		return 0
	}
	return float64(b.TotalSize()) / float64(b.Len())
}

// Append adds one RR set (already sorted) to the batch.
func (b *Batch) Append(set []uint32) {
	if len(b.Off) == 0 {
		b.Off = append(b.Off, 0)
	}
	b.Flat = append(b.Flat, set...)
	b.Off = append(b.Off, int64(len(b.Flat)))
}

// GenerateOptions configures batch generation.
type GenerateOptions struct {
	Count   int    // number of RR sets
	Seed    uint64 // base seed; the result is a deterministic function of it
	Workers int    // 0 = GOMAXPROCS
}

// Generate samples opts.Count RR sets concurrently. The output is
// deterministic for a fixed (graph, model, picker, Count, Seed, Workers):
// set i is produced by worker i%Workers from a per-worker child seed, and
// sets are reassembled in index order. Index construction for the paper's
// experiments runs with 8 threads (§6.2); this is the equivalent machinery.
func Generate(g *graph.Graph, model prop.Model, picker RootPicker, opts GenerateOptions) *Batch {
	if opts.Count <= 0 {
		return &Batch{Off: []int64{0}}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.Count {
		workers = opts.Count
	}

	type shard struct {
		off  []int64 // local offsets, starting at 0
		flat []uint32
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(opts.Seed ^ (0x9E3779B97F4A7C15 * uint64(w+1)))
			sampler := NewSampler(g, model)
			local := shard{off: []int64{0}}
			for i := w; i < opts.Count; i += workers {
				root := picker.PickRoot(src)
				local.flat = sampler.AppendRR(local.flat, root, src)
				local.off = append(local.off, int64(len(local.flat)))
			}
			shards[w] = local
		}(w)
	}
	wg.Wait()

	// Reassemble in global index order i = 0,1,2,...: set i is the
	// (i/workers)-th set of shard i%workers.
	out := &Batch{Off: make([]int64, 1, opts.Count+1)}
	total := 0
	for _, s := range shards {
		total += len(s.flat)
	}
	out.Flat = make([]uint32, 0, total)
	for i := 0; i < opts.Count; i++ {
		s := &shards[i%workers]
		j := i / workers
		out.Flat = append(out.Flat, s.flat[s.off[j]:s.off[j+1]]...)
		out.Off = append(out.Off, int64(len(out.Flat)))
	}
	return out
}

// InvertedLists builds the vertex → RR-set-IDs inverse mapping L of
// Algorithm 1 (line 5): lists[v] holds the ascending IDs of the sets
// containing v. Vertices in no set have nil entries.
func (b *Batch) InvertedLists(numVertices int) [][]int32 {
	lists := make([][]int32, numVertices)
	counts := make([]int32, numVertices)
	for _, v := range b.Flat {
		counts[v]++
	}
	for v, c := range counts {
		if c > 0 {
			lists[v] = make([]int32, 0, c)
		}
	}
	for i := 0; i < b.Len(); i++ {
		for _, v := range b.Set(i) {
			lists[v] = append(lists[v], int32(i))
		}
	}
	return lists
}
