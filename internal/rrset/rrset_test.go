package rrset

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"kbtim/internal/graph"
	"kbtim/internal/prop"
	"kbtim/internal/rng"
)

const (
	vA, vB, vC, vD, vE, vF, vG = 0, 1, 2, 3, 4, 5, 6
)

func figure1(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(7, []graph.Edge{
		{From: vE, To: vA}, {From: vE, To: vB}, {From: vG, To: vB},
		{From: vE, To: vC}, {From: vB, To: vC},
		{From: vB, To: vD}, {From: vF, To: vD},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCoverageIdentityIC is the heart of RIS correctness (and of Lemma 1):
// P(RR(v) ∩ S ≠ ∅) = p(S→v). Verified against the exact oracle on the
// paper's running example with S = {e,g}.
func TestCoverageIdentityIC(t *testing.T) {
	g := figure1(t)
	exact, err := prop.ExactActivationProbsIC(g, []uint32{vE, vG})
	if err != nil {
		t.Fatal(err)
	}
	sampler := NewSampler(g, prop.IC{})
	src := rng.New(41)
	const rounds = 200000
	for _, root := range []uint32{vB, vC, vD} {
		hits := 0
		for i := 0; i < rounds; i++ {
			rr := sampler.AppendRR(nil, root, src)
			for _, u := range rr {
				if u == vE || u == vG {
					hits++
					break
				}
			}
		}
		got := float64(hits) / rounds
		if math.Abs(got-exact[root]) > 0.005 {
			t.Errorf("P(RR(%d)∩S≠∅) = %v, exact p(S→%d) = %v", root, got, root, exact[root])
		}
	}
}

// TestCoverageIdentityLT repeats the identity under the LT model.
func TestCoverageIdentityLT(t *testing.T) {
	g := figure1(t)
	exact, err := prop.ExactActivationProbsLT(g, []uint32{vE, vG})
	if err != nil {
		t.Fatal(err)
	}
	sampler := NewSampler(g, prop.LT{})
	src := rng.New(43)
	const rounds = 200000
	for _, root := range []uint32{vB, vC, vD} {
		hits := 0
		for i := 0; i < rounds; i++ {
			rr := sampler.AppendRR(nil, root, src)
			for _, u := range rr {
				if u == vE || u == vG {
					hits++
					break
				}
			}
		}
		got := float64(hits) / rounds
		if math.Abs(got-exact[root]) > 0.005 {
			t.Errorf("LT P(RR(%d)∩S≠∅) = %v, exact %v", root, got, exact[root])
		}
	}
}

func TestRRContainsRootAndSorted(t *testing.T) {
	g := figure1(t)
	sampler := NewSampler(g, prop.IC{})
	src := rng.New(2)
	for i := 0; i < 500; i++ {
		root := uint32(src.Intn(7))
		rr := sampler.RR(root, src)
		if !sort.SliceIsSorted(rr, func(i, j int) bool { return rr[i] < rr[j] }) {
			t.Fatalf("RR set not sorted: %v", rr)
		}
		found := false
		for _, v := range rr {
			if v == root {
				found = true
			}
		}
		if !found {
			t.Fatalf("RR(%d) = %v missing root", root, rr)
		}
		// No duplicates.
		for j := 1; j < len(rr); j++ {
			if rr[j] == rr[j-1] {
				t.Fatalf("duplicate in RR set %v", rr)
			}
		}
	}
}

func TestRRSourceVertexIsSingleton(t *testing.T) {
	g := figure1(t)
	sampler := NewSampler(g, prop.IC{})
	src := rng.New(3)
	// e has no in-edges, so RR(e) = {e} always.
	for i := 0; i < 50; i++ {
		rr := sampler.RR(vE, src)
		if len(rr) != 1 || rr[0] != vE {
			t.Fatalf("RR(e) = %v", rr)
		}
	}
}

func TestWeightedRootsDistribution(t *testing.T) {
	users := []uint32{10, 20, 30}
	weights := []float64{1, 2, 7}
	picker, err := NewWeightedRoots(users, weights)
	if err != nil {
		t.Fatal(err)
	}
	if picker.Support() != 3 {
		t.Fatalf("Support = %d", picker.Support())
	}
	src := rng.New(5)
	counts := map[uint32]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[picker.PickRoot(src)]++
	}
	for i, u := range users {
		want := weights[i] / 10
		got := float64(counts[u]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("root %d frequency %v, want %v", u, got, want)
		}
	}
}

func TestWeightedRootsRejectsBadInput(t *testing.T) {
	if _, err := NewWeightedRoots([]uint32{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewWeightedRoots(nil, nil); err == nil {
		t.Fatal("empty support accepted")
	}
}

func TestUniformRoots(t *testing.T) {
	src := rng.New(7)
	p := UniformRoots{N: 5}
	seen := map[uint32]bool{}
	for i := 0; i < 1000; i++ {
		r := p.PickRoot(src)
		if r >= 5 {
			t.Fatalf("root %d out of range", r)
		}
		seen[r] = true
	}
	if len(seen) != 5 {
		t.Fatalf("only %d distinct roots seen", len(seen))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := figure1(t)
	opts := GenerateOptions{Count: 200, Seed: 99, Workers: 4}
	b1 := Generate(g, prop.IC{}, UniformRoots{N: 7}, opts)
	b2 := Generate(g, prop.IC{}, UniformRoots{N: 7}, opts)
	if !reflect.DeepEqual(b1.Off, b2.Off) || !reflect.DeepEqual(b1.Flat, b2.Flat) {
		t.Fatal("Generate not deterministic for fixed seed/workers")
	}
	b3 := Generate(g, prop.IC{}, UniformRoots{N: 7}, GenerateOptions{Count: 200, Seed: 100, Workers: 4})
	if reflect.DeepEqual(b1.Flat, b3.Flat) {
		t.Fatal("different seeds produced identical batches")
	}
}

func TestGenerateCountAndShape(t *testing.T) {
	g := figure1(t)
	b := Generate(g, prop.IC{}, UniformRoots{N: 7}, GenerateOptions{Count: 137, Seed: 1, Workers: 3})
	if b.Len() != 137 {
		t.Fatalf("Len = %d", b.Len())
	}
	for i := 0; i < b.Len(); i++ {
		set := b.Set(i)
		if len(set) == 0 {
			t.Fatalf("empty RR set %d", i)
		}
	}
	if b.MeanSize() < 1 {
		t.Fatalf("MeanSize = %v", b.MeanSize())
	}
	empty := Generate(g, prop.IC{}, UniformRoots{N: 7}, GenerateOptions{Count: 0})
	if empty.Len() != 0 {
		t.Fatalf("empty generate Len = %d", empty.Len())
	}
}

func TestGenerateStatisticallyMatchesSequential(t *testing.T) {
	// Concurrency must not skew the distribution: frequency of vE appearing
	// in RR sets rooted uniformly should match between 1 and 4 workers.
	g := figure1(t)
	count := 40000
	freq := func(workers int, seed uint64) float64 {
		b := Generate(g, prop.IC{}, UniformRoots{N: 7}, GenerateOptions{Count: count, Seed: seed, Workers: workers})
		hits := 0
		for i := 0; i < b.Len(); i++ {
			for _, v := range b.Set(i) {
				if v == vE {
					hits++
					break
				}
			}
		}
		return float64(hits) / float64(count)
	}
	f1 := freq(1, 11)
	f4 := freq(4, 12)
	if math.Abs(f1-f4) > 0.01 {
		t.Fatalf("worker skew: f1=%v f4=%v", f1, f4)
	}
}

func TestInvertedLists(t *testing.T) {
	var b Batch
	b.Append([]uint32{0, 2})
	b.Append([]uint32{1})
	b.Append([]uint32{0, 1, 3})
	lists := b.InvertedLists(5)
	want := [][]int32{{0, 2}, {1, 2}, {0}, {2}, nil}
	if !reflect.DeepEqual(lists, want) {
		t.Fatalf("lists = %v, want %v", lists, want)
	}
}

func TestBatchAppendAndAccessors(t *testing.T) {
	var b Batch
	b.Append([]uint32{5, 6})
	b.Append([]uint32{7})
	if b.Len() != 2 || b.TotalSize() != 3 {
		t.Fatalf("Len=%d TotalSize=%d", b.Len(), b.TotalSize())
	}
	if !reflect.DeepEqual(b.Set(0), []uint32{5, 6}) || !reflect.DeepEqual(b.Set(1), []uint32{7}) {
		t.Fatal("Set accessor broken")
	}
	if b.MeanSize() != 1.5 {
		t.Fatalf("MeanSize = %v", b.MeanSize())
	}
}

func BenchmarkSampleRRTwitterLike(b *testing.B) {
	gb := graph.NewBuilder(20000)
	src := rng.New(1)
	for i := 0; i < 200000; i++ {
		_ = gb.AddEdge(uint32(src.Intn(20000)), uint32(src.Intn(20000)))
	}
	g := gb.Build()
	sampler := NewSampler(g, prop.IC{})
	var buf []uint32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = sampler.AppendRR(buf[:0], uint32(src.Intn(20000)), src)
	}
}
