package prop

import (
	"fmt"
	"math"

	"kbtim/internal/graph"
)

// Exact oracles compute activation probabilities p(S→v) by enumerating all
// possible worlds. Evaluating p(S→v) is #P-hard in general ([5] in the
// paper), so these run only on tiny graphs (≲ 20 edges); they are the ground
// truth every sampler and estimator in the repository is validated against,
// including the paper's own worked numbers (Examples 1–3).

// maxExactWorlds bounds enumeration size so a mistaken call cannot hang a
// test run.
const maxExactWorlds = 1 << 24

// ExactActivationProbsIC returns p(S→v) for every vertex under the IC model
// with p(e) = 1/N_v, by enumerating all 2^|E| live-edge worlds.
func ExactActivationProbsIC(g *graph.Graph, seeds []uint32) ([]float64, error) {
	m := g.NumEdges()
	if m >= 24 {
		return nil, fmt.Errorf("prop: exact IC oracle limited to <24 edges, got %d", m)
	}
	edges := g.Edges()
	probs := make([]float64, m)
	for i, e := range edges {
		probs[i] = g.ICProb(e.To)
	}
	n := g.NumVertices()
	result := make([]float64, n)
	worlds := 1 << m
	if worlds > maxExactWorlds {
		return nil, fmt.Errorf("prop: too many worlds (%d)", worlds)
	}
	adj := make([][]uint32, n)
	reach := make([]bool, n)
	stack := make([]uint32, 0, n)
	for mask := 0; mask < worlds; mask++ {
		weight := 1.0
		for i := range adj {
			adj[i] = adj[i][:0]
		}
		for i, e := range edges {
			if mask&(1<<i) != 0 {
				weight *= probs[i]
				adj[e.From] = append(adj[e.From], e.To)
			} else {
				weight *= 1 - probs[i]
			}
		}
		if weight == 0 {
			continue
		}
		for i := range reach {
			reach[i] = false
		}
		stack = stack[:0]
		for _, s := range seeds {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range adj[u] {
				if !reach[v] {
					reach[v] = true
					stack = append(stack, v)
				}
			}
		}
		for v := 0; v < n; v++ {
			if reach[v] {
				result[v] += weight
			}
		}
	}
	return result, nil
}

// ExactActivationProbsLT returns p(S→v) under the uniform LT model, by
// enumerating every combination of per-vertex live-edge choices (each vertex
// with in-degree d contributes a factor of d worlds).
func ExactActivationProbsLT(g *graph.Graph, seeds []uint32) ([]float64, error) {
	n := g.NumVertices()
	// Vertices with in-edges, in enumeration order.
	var vs []uint32
	worlds := 1
	for v := 0; v < n; v++ {
		d := g.InDegree(uint32(v))
		if d == 0 {
			continue
		}
		if worlds > maxExactWorlds/d {
			return nil, fmt.Errorf("prop: too many LT worlds")
		}
		worlds *= d
		vs = append(vs, uint32(v))
	}
	result := make([]float64, n)
	choice := make([]int, len(vs))
	reach := make([]bool, n)
	stack := make([]uint32, 0, n)
	liveIn := make([]uint32, n) // chosen in-neighbor per vertex (by index in vs)
	for w := 0; w < worlds; w++ {
		// Decode mixed-radix world index into per-vertex choices.
		x := w
		weight := 1.0
		for i, v := range vs {
			d := g.InDegree(v)
			choice[i] = x % d
			x /= d
			weight *= 1 / float64(d)
			liveIn[v] = g.InNeighbors(v)[choice[i]]
		}
		for i := range reach {
			reach[i] = false
		}
		stack = stack[:0]
		for _, s := range seeds {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.OutNeighbors(u) {
				if !reach[v] && liveIn[v] == u {
					reach[v] = true
					stack = append(stack, v)
				}
			}
		}
		for v := 0; v < n; v++ {
			if reach[v] {
				result[v] += weight
			}
		}
	}
	return result, nil
}

// ExactActivationProbs dispatches to the model-specific oracle.
func ExactActivationProbs(g *graph.Graph, model Model, seeds []uint32) ([]float64, error) {
	switch model.(type) {
	case IC:
		return ExactActivationProbsIC(g, seeds)
	case LT:
		return ExactActivationProbsLT(g, seeds)
	default:
		return nil, fmt.Errorf("prop: no exact oracle for model %q", model.Name())
	}
}

// ExactSpread returns E[|I(S)|] = Σ_v p(S→v) exactly.
func ExactSpread(g *graph.Graph, model Model, seeds []uint32) (float64, error) {
	probs, err := ExactActivationProbs(g, model, seeds)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, p := range probs {
		total += p
	}
	return total, nil
}

// ExactWeightedSpread returns E[I^Q(S)] = Σ_v p(S→v)·score(v) exactly
// (Eqn 2 with the expectation expanded by linearity).
func ExactWeightedSpread(g *graph.Graph, model Model, seeds []uint32, score func(v uint32) float64) (float64, error) {
	probs, err := ExactActivationProbs(g, model, seeds)
	if err != nil {
		return 0, err
	}
	var total float64
	for v, p := range probs {
		total += p * score(uint32(v))
	}
	return total, nil
}

// BestSeedSetExact brute-forces the optimal size-k seed set under the exact
// oracle maximizing Σ_v p(S→v)·score(v). Exponential in |V| choose k — only
// for validating approximation ratios on tiny instances. score may be nil
// for the unweighted objective.
func BestSeedSetExact(g *graph.Graph, model Model, k int, score func(v uint32) float64) ([]uint32, float64, error) {
	n := g.NumVertices()
	if k <= 0 || k > n {
		return nil, 0, fmt.Errorf("prop: invalid k=%d for %d vertices", k, n)
	}
	if score == nil {
		score = func(uint32) float64 { return 1 }
	}
	best := math.Inf(-1)
	var bestSet []uint32
	cur := make([]uint32, 0, k)
	var recurse func(start int) error
	recurse = func(start int) error {
		if len(cur) == k {
			val, err := ExactWeightedSpread(g, model, cur, score)
			if err != nil {
				return err
			}
			if val > best {
				best = val
				bestSet = append(bestSet[:0], cur...)
			}
			return nil
		}
		for v := start; v < n; v++ {
			cur = append(cur, uint32(v))
			if err := recurse(v + 1); err != nil {
				return err
			}
			cur = cur[:len(cur)-1]
		}
		return nil
	}
	if err := recurse(0); err != nil {
		return nil, 0, err
	}
	return bestSet, best, nil
}
