// Package prop implements the influence-propagation substrate of §2.1: the
// independent cascade (IC) model, the linear threshold (LT) model, and the
// general triggering abstraction both specialize; forward Monte-Carlo spread
// estimation; and exact spread oracles by world enumeration for tiny graphs
// (used to validate every sampler in the repository against ground truth).
//
// Everything is expressed through the live-edge (triggering-set) view of
// Kempe et al.: each vertex v independently samples a trigger set
// T(v) ⊆ InNeighbors(v); the live-edge graph keeps edge (u,v) iff u ∈ T(v);
// and I(S) is the set of vertices forward-reachable from S along live edges.
//
//   - IC:  u ∈ T(v) independently with probability p(u,v) = 1/N_v (§2.1).
//   - LT:  T(v) is exactly one in-neighbor chosen with probability b(u,v);
//     with the paper's normalization (random weights summing to 1) the
//     reverse sampler consumes the same one-pick distribution.
//
// Reverse-reachable sets (internal/rrset) are reverse reachability in the
// same live-edge graph, so the two packages share the Model interface.
package prop

import (
	"kbtim/internal/graph"
	"kbtim/internal/rng"
)

// Model is a triggering-model distribution: for each vertex it can sample a
// trigger set (a subset of the vertex's in-neighbors). Implementations must
// be stateless and safe for concurrent use; all randomness flows through the
// supplied Source.
type Model interface {
	// Name identifies the model in reports ("IC", "LT").
	Name() string
	// AppendTrigger appends one fresh sample of T(v) to dst and returns the
	// extended slice.
	AppendTrigger(dst []uint32, g *graph.Graph, v uint32, src *rng.Source) []uint32
	// TriggerProb returns the probability that u is a member of T(v),
	// i.e. the live-edge probability of (u,v). Used by exact oracles and
	// tests; u must be an in-neighbor of v for a meaningful answer.
	TriggerProb(g *graph.Graph, u, v uint32) float64
}

// IC is the independent cascade model with the paper's default weighting
// p(e) = 1/N_v. The zero value is ready to use.
type IC struct{}

// Name implements Model.
func (IC) Name() string { return "IC" }

// AppendTrigger implements Model: each in-neighbor joins T(v) independently
// with probability 1/InDegree(v).
func (IC) AppendTrigger(dst []uint32, g *graph.Graph, v uint32, src *rng.Source) []uint32 {
	in := g.InNeighbors(v)
	if len(in) == 0 {
		return dst
	}
	p := 1 / float64(len(in))
	for _, u := range in {
		if src.Bernoulli(p) {
			dst = append(dst, u)
		}
	}
	return dst
}

// TriggerProb implements Model.
func (IC) TriggerProb(g *graph.Graph, u, v uint32) float64 {
	if !g.HasEdge(u, v) {
		return 0
	}
	return g.ICProb(v)
}

// LT is the linear threshold model with uniform normalized in-weights
// b(u,v) = 1/N_v (the paper draws random weights and normalizes them; the
// uniform special case keeps exact oracles tractable and is the common
// benchmark setting). Its live-edge form picks exactly one in-neighbor
// uniformly at random.
type LT struct{}

// Name implements Model.
func (LT) Name() string { return "LT" }

// AppendTrigger implements Model: exactly one uniformly random in-neighbor.
func (LT) AppendTrigger(dst []uint32, g *graph.Graph, v uint32, src *rng.Source) []uint32 {
	in := g.InNeighbors(v)
	if len(in) == 0 {
		return dst
	}
	return append(dst, in[src.Intn(len(in))])
}

// TriggerProb implements Model.
func (LT) TriggerProb(g *graph.Graph, u, v uint32) float64 {
	if !g.HasEdge(u, v) {
		return 0
	}
	// Parallel edges give u proportionally more weight; count multiplicity.
	count := 0
	for _, w := range g.InNeighbors(v) {
		if w == u {
			count++
		}
	}
	return float64(count) / float64(g.InDegree(v))
}

// WeightedIC is an IC variant with caller-supplied per-target probability:
// every edge into v carries probability P(v). It generalizes the 1/N_v
// default (ablation: sensitivity of index size to propagation probability).
type WeightedIC struct {
	// P returns the activation probability of edges into v.
	P func(g *graph.Graph, v uint32) float64
}

// Name implements Model.
func (WeightedIC) Name() string { return "WIC" }

// AppendTrigger implements Model.
func (m WeightedIC) AppendTrigger(dst []uint32, g *graph.Graph, v uint32, src *rng.Source) []uint32 {
	in := g.InNeighbors(v)
	if len(in) == 0 {
		return dst
	}
	p := m.P(g, v)
	for _, u := range in {
		if src.Bernoulli(p) {
			dst = append(dst, u)
		}
	}
	return dst
}

// TriggerProb implements Model.
func (m WeightedIC) TriggerProb(g *graph.Graph, u, v uint32) float64 {
	if !g.HasEdge(u, v) {
		return 0
	}
	return m.P(g, v)
}
