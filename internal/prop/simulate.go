package prop

import (
	"kbtim/internal/graph"
	"kbtim/internal/rng"
)

// Simulator runs forward influence cascades. It owns reusable scratch
// buffers, so one Simulator per goroutine amortizes all allocation across
// the tens of thousands of Monte-Carlo rounds behind a spread estimate.
type Simulator struct {
	g     *graph.Graph
	model Model

	// Per-world lazy trigger-set cache: triggerOff[v] >= 0 points into
	// triggerBuf once T(v) has been sampled this world; epoch marks reset.
	sampled    []int32 // epoch when T(v) was sampled
	triggerPos []int32 // start of T(v) in triggerBuf
	triggerLen []int32
	triggerBuf []uint32

	active    []int32 // epoch when vertex became active
	epoch     int32
	frontier  []uint32
	nextFront []uint32
}

// NewSimulator creates a forward simulator for g under the given model.
func NewSimulator(g *graph.Graph, model Model) *Simulator {
	n := g.NumVertices()
	s := &Simulator{
		g:          g,
		model:      model,
		sampled:    make([]int32, n),
		triggerPos: make([]int32, n),
		triggerLen: make([]int32, n),
		active:     make([]int32, n),
		epoch:      0,
	}
	for i := range s.sampled {
		s.sampled[i] = -1
		s.active[i] = -1
	}
	return s
}

// trigger returns T(v) for the current world, sampling and caching it on
// first touch so repeated examinations of v are consistent within a world.
func (s *Simulator) trigger(v uint32, src *rng.Source) []uint32 {
	if s.sampled[v] == s.epoch {
		return s.triggerBuf[s.triggerPos[v] : s.triggerPos[v]+s.triggerLen[v]]
	}
	start := len(s.triggerBuf)
	s.triggerBuf = s.model.AppendTrigger(s.triggerBuf, s.g, v, src)
	s.sampled[v] = s.epoch
	s.triggerPos[v] = int32(start)
	s.triggerLen[v] = int32(len(s.triggerBuf) - start)
	return s.triggerBuf[start:]
}

// Run simulates one cascade from seeds and calls visit for every activated
// vertex (including the seeds themselves). It returns the number of
// activated vertices. visit may be nil.
func (s *Simulator) Run(seeds []uint32, src *rng.Source, visit func(v uint32)) int {
	s.epoch++
	s.triggerBuf = s.triggerBuf[:0]
	s.frontier = s.frontier[:0]

	count := 0
	for _, v := range seeds {
		if s.active[v] == s.epoch {
			continue
		}
		s.active[v] = s.epoch
		s.frontier = append(s.frontier, v)
		count++
		if visit != nil {
			visit(v)
		}
	}
	for len(s.frontier) > 0 {
		s.nextFront = s.nextFront[:0]
		for _, u := range s.frontier {
			for _, v := range s.g.OutNeighbors(u) {
				if s.active[v] == s.epoch {
					continue
				}
				// v activates via u iff u ∈ T(v) in this world.
				if containsVertex(s.trigger(v, src), u) {
					s.active[v] = s.epoch
					s.nextFront = append(s.nextFront, v)
					count++
					if visit != nil {
						visit(v)
					}
				}
			}
		}
		s.frontier, s.nextFront = s.nextFront, s.frontier
	}
	return count
}

func containsVertex(set []uint32, u uint32) bool {
	for _, x := range set {
		if x == u {
			return true
		}
	}
	return false
}

// EstimateSpread returns the Monte-Carlo estimate of E[|I(S)|] over the
// given number of rounds (the classic IM objective, Definition 1).
func EstimateSpread(g *graph.Graph, model Model, seeds []uint32, rounds int, src *rng.Source) float64 {
	sim := NewSimulator(g, model)
	var total float64
	for i := 0; i < rounds; i++ {
		total += float64(sim.Run(seeds, src, nil))
	}
	return total / float64(rounds)
}

// EstimateWeightedSpread returns the Monte-Carlo estimate of
// E[I^Q(S)] = E[Σ_{v∈I(S)} score(v)] (Eqn 2), the KB-TIM objective, where
// score is typically φ(·,Q).
func EstimateWeightedSpread(g *graph.Graph, model Model, seeds []uint32, score func(v uint32) float64, rounds int, src *rng.Source) float64 {
	sim := NewSimulator(g, model)
	var total float64
	for i := 0; i < rounds; i++ {
		var worldScore float64
		sim.Run(seeds, src, func(v uint32) { worldScore += score(v) })
		total += worldScore
	}
	return total / float64(rounds)
}
