package prop

import (
	"math"
	"testing"

	"kbtim/internal/graph"
	"kbtim/internal/rng"
)

// Vertex labels for the paper's Figure 1 running example.
const (
	vA, vB, vC, vD, vE, vF, vG = 0, 1, 2, 3, 4, 5, 6
)

// figure1 reconstructs the paper's running-example graph. Edge set chosen so
// that IC with p(e)=1/N_v reproduces the figure's labels (e→a: 1.0, all
// others 0.5) and the worked numbers of Example 2.
func figure1(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(7, []graph.Edge{
		{From: vE, To: vA}, {From: vE, To: vB}, {From: vG, To: vB},
		{From: vE, To: vC}, {From: vB, To: vC},
		{From: vB, To: vD}, {From: vF, To: vD},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestExample2ExactNumbers checks the paper's Example 1/2 arithmetic:
// p({e,g}→b) = 0.75 and E[I({e,g})] = 4.8125.
func TestExample2ExactNumbers(t *testing.T) {
	g := figure1(t)
	probs, err := ExactActivationProbsIC(g, []uint32{vE, vG})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.75, 0.6875, 0.375, 1, 0, 1} // a,b,c,d,e,f,g
	for v, w := range want {
		if math.Abs(probs[v]-w) > 1e-12 {
			t.Errorf("p(S→%d) = %v, want %v", v, probs[v], w)
		}
	}
	spread, err := ExactSpread(g, IC{}, []uint32{vE, vG})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(spread-4.8125) > 1e-12 {
		t.Fatalf("E[I(S)] = %v, want 4.8125", spread)
	}
}

func TestBruteForceOptimalMatchesPaper(t *testing.T) {
	g := figure1(t)
	_, best, err := BestSeedSetExact(g, IC{}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(best-4.8125) > 1e-12 {
		t.Fatalf("OPT_2 = %v, want 4.8125 (paper says S*={e,g})", best)
	}
}

func TestMonteCarloMatchesExactIC(t *testing.T) {
	g := figure1(t)
	seeds := []uint32{vE, vG}
	exact, err := ExactSpread(g, IC{}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	got := EstimateSpread(g, IC{}, seeds, 200000, rng.New(5))
	if math.Abs(got-exact) > 0.03 {
		t.Fatalf("MC spread %v vs exact %v", got, exact)
	}
}

func TestMonteCarloMatchesExactLT(t *testing.T) {
	g := figure1(t)
	seeds := []uint32{vE, vF}
	exact, err := ExactSpread(g, LT{}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	got := EstimateSpread(g, LT{}, seeds, 200000, rng.New(6))
	if math.Abs(got-exact) > 0.03 {
		t.Fatalf("LT MC spread %v vs exact %v", got, exact)
	}
}

func TestWeightedSpreadMatchesExact(t *testing.T) {
	g := figure1(t)
	// Arbitrary targeting scores, e.g. φ(v, {music}).
	score := func(v uint32) float64 {
		return []float64{0.6, 0.5, 0.3, 0.1, 0.5, 0, 0}[v]
	}
	seeds := []uint32{vB, vE}
	exact, err := ExactWeightedSpread(g, IC{}, seeds, score)
	if err != nil {
		t.Fatal(err)
	}
	got := EstimateWeightedSpread(g, IC{}, seeds, score, 200000, rng.New(7))
	if math.Abs(got-exact) > 0.02 {
		t.Fatalf("weighted MC %v vs exact %v", got, exact)
	}
}

func TestSimulatorSeedsAlwaysActive(t *testing.T) {
	g := figure1(t)
	sim := NewSimulator(g, IC{})
	src := rng.New(3)
	for i := 0; i < 50; i++ {
		count := 0
		seen := map[uint32]bool{}
		sim.Run([]uint32{vF, vG, vF}, src, func(v uint32) {
			seen[v] = true
			count++
		})
		if !seen[vF] || !seen[vG] {
			t.Fatal("seed not activated")
		}
		// Duplicate seeds must not double-count.
		if count != len(seen) {
			t.Fatalf("visit called %d times for %d distinct vertices", count, len(seen))
		}
	}
}

func TestSimulatorMonotoneInSeeds(t *testing.T) {
	g := figure1(t)
	src := rng.New(11)
	small := EstimateSpread(g, IC{}, []uint32{vE}, 20000, src)
	large := EstimateSpread(g, IC{}, []uint32{vE, vG, vF}, 20000, src)
	if large < small {
		t.Fatalf("spread not monotone: %v < %v", large, small)
	}
}

func TestLTTriggerIsSingleton(t *testing.T) {
	g := figure1(t)
	src := rng.New(13)
	for i := 0; i < 100; i++ {
		ts := LT{}.AppendTrigger(nil, g, vB, src)
		if len(ts) != 1 {
			t.Fatalf("LT trigger size %d, want 1", len(ts))
		}
		if ts[0] != vE && ts[0] != vG {
			t.Fatalf("LT trigger %d not an in-neighbor of b", ts[0])
		}
	}
	if ts := (LT{}).AppendTrigger(nil, g, vE, src); len(ts) != 0 {
		t.Fatal("LT trigger of source vertex should be empty")
	}
}

func TestICTriggerFrequency(t *testing.T) {
	g := figure1(t)
	src := rng.New(17)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		ts := IC{}.AppendTrigger(nil, g, vB, src)
		for _, u := range ts {
			if u == vE {
				hits++
			}
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.5) > 0.01 {
		t.Fatalf("IC trigger freq for (e,b) = %v, want 0.5", p)
	}
}

func TestTriggerProb(t *testing.T) {
	g := figure1(t)
	if p := (IC{}).TriggerProb(g, vE, vB); p != 0.5 {
		t.Fatalf("IC TriggerProb(e,b) = %v", p)
	}
	if p := (IC{}).TriggerProb(g, vE, vA); p != 1 {
		t.Fatalf("IC TriggerProb(e,a) = %v", p)
	}
	if p := (IC{}).TriggerProb(g, vA, vE); p != 0 {
		t.Fatalf("IC TriggerProb on non-edge = %v", p)
	}
	if p := (LT{}).TriggerProb(g, vG, vB); p != 0.5 {
		t.Fatalf("LT TriggerProb(g,b) = %v", p)
	}
}

func TestWeightedICCustomProb(t *testing.T) {
	g := figure1(t)
	m := WeightedIC{P: func(*graph.Graph, uint32) float64 { return 1 }}
	// With p=1, spread from e is deterministic: e reaches a,b,c,d.
	got := EstimateSpread(g, m, []uint32{vE}, 100, rng.New(1))
	if got != 5 {
		t.Fatalf("deterministic WIC spread = %v, want 5", got)
	}
	if p := m.TriggerProb(g, vE, vB); p != 1 {
		t.Fatalf("WIC TriggerProb = %v", p)
	}
}

func TestExactOracleGuards(t *testing.T) {
	// A graph with too many edges must be rejected, not enumerated.
	b := graph.NewBuilder(30)
	for i := 0; i < 29; i++ {
		_ = b.AddEdge(uint32(i), uint32(i+1))
	}
	g := b.Build()
	if _, err := ExactActivationProbsIC(g, []uint32{0}); err == nil {
		t.Fatal("oracle accepted 29-edge graph")
	}
	if _, err := ExactActivationProbs(g, WeightedIC{}, []uint32{0}); err == nil {
		t.Fatal("oracle accepted model without exact support")
	}
}

func TestBestSeedSetExactValidation(t *testing.T) {
	g := figure1(t)
	if _, _, err := BestSeedSetExact(g, IC{}, 0, nil); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := BestSeedSetExact(g, IC{}, 8, nil); err == nil {
		t.Fatal("k>n accepted")
	}
}

// Property-style: on random tiny graphs, MC tracks the exact oracle.
func TestMonteCarloTracksExactOnRandomGraphs(t *testing.T) {
	src := rng.New(23)
	for trial := 0; trial < 8; trial++ {
		n := src.Intn(5) + 3
		b := graph.NewBuilder(n)
		m := src.Intn(8) + 2
		for i := 0; i < m; i++ {
			_ = b.AddEdge(uint32(src.Intn(n)), uint32(src.Intn(n)))
		}
		g := b.Build()
		seeds := []uint32{uint32(src.Intn(n))}
		for _, model := range []Model{IC{}, LT{}} {
			exact, err := ExactSpread(g, model, seeds)
			if err != nil {
				t.Fatal(err)
			}
			got := EstimateSpread(g, model, seeds, 60000, src)
			if math.Abs(got-exact) > 0.06 {
				t.Fatalf("trial %d %s: MC %v vs exact %v (n=%d m=%d)",
					trial, model.Name(), got, exact, n, g.NumEdges())
			}
		}
	}
}

func BenchmarkSimulateIC(b *testing.B) {
	gb := graph.NewBuilder(10000)
	src := rng.New(1)
	for i := 0; i < 50000; i++ {
		_ = gb.AddEdge(uint32(src.Intn(10000)), uint32(src.Intn(10000)))
	}
	g := gb.Build()
	sim := NewSimulator(g, IC{})
	seeds := []uint32{1, 2, 3, 4, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(seeds, src, nil)
	}
}
