package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunThroughputShape pins the acceptance contract of the serving
// benchmark: queries/sec is reported for at least two worker counts, and
// the cached configurations achieve a positive hit rate on the
// repeated-keyword workload.
func TestRunThroughputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput smoke test skipped in -short mode")
	}
	env := tinyEnv(t)
	points, err := RunThroughput(env, Twitter)
	if err != nil {
		t.Fatal(err)
	}
	workerCounts := map[int]bool{}
	cachedRows, uncachedRows := 0, 0
	for _, p := range points {
		if p.QPS <= 0 || p.Queries <= 0 {
			t.Fatalf("degenerate point: %+v", p)
		}
		workerCounts[p.Workers] = true
		if p.CacheBytes > 0 {
			cachedRows++
			if p.HitRate <= 0 {
				t.Fatalf("cached run has zero hit rate: %+v", p)
			}
		} else {
			uncachedRows++
			if p.HitRate != 0 {
				t.Fatalf("uncached run reports a hit rate: %+v", p)
			}
			if p.DiskReads == 0 {
				t.Fatalf("uncached run reports zero disk reads: %+v", p)
			}
		}
	}
	if len(workerCounts) < 2 {
		t.Fatalf("need >= 2 worker counts, got %v", workerCounts)
	}
	if cachedRows == 0 || uncachedRows == 0 {
		t.Fatalf("sweep must cover cache on and off: %d cached, %d uncached", cachedRows, uncachedRows)
	}
}

// TestRunShardedThroughputShape pins the sharded serving benchmark: the
// shard axis covers 1, 2, and 4 engines, every point is sane, and at least
// one query in the workload actually scatters across shards (otherwise the
// axis never exercises the merge path).
func TestRunShardedThroughputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded throughput smoke test skipped in -short mode")
	}
	env := tinyEnv(t)
	points, err := RunShardedThroughput(env, News)
	if err != nil {
		t.Fatal(err)
	}
	shardCounts := map[int]bool{}
	scatterSeen := false
	for _, p := range points {
		if p.QPS <= 0 || p.Queries <= 0 || p.MeanMS <= 0 {
			t.Fatalf("degenerate point: %+v", p)
		}
		shardCounts[p.Shards] = true
		if p.Shards == 1 && p.Scatter != 0 {
			t.Fatalf("1-shard row reports scatter: %+v", p)
		}
		if p.Shards > 1 && p.Scatter > 0 {
			scatterSeen = true
		}
	}
	for _, want := range []int{1, 2, 4} {
		if !shardCounts[want] {
			t.Fatalf("shard axis missing %d: %v", want, shardCounts)
		}
	}
	if !scatterSeen {
		t.Fatal("no multi-shard row scattered any query; the merge path went unmeasured")
	}
}

// TestShardedThroughputRenders checks the registry entry end to end.
func TestShardedThroughputRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded throughput smoke test skipped in -short mode")
	}
	env := tinyEnv(t)
	var buf bytes.Buffer
	if err := ShardedThroughput(t.Context(), &buf, env); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"shards", "scatter", "q/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// TestThroughputRenders checks the registry entry end to end.
func TestThroughputRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput smoke test skipped in -short mode")
	}
	env := tinyEnv(t)
	var buf bytes.Buffer
	if err := Throughput(t.Context(), &buf, env); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"q/s", "hit-rate", "workers", "off"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
