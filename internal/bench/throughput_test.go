package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunThroughputShape pins the acceptance contract of the serving
// benchmark: queries/sec is reported for at least two worker counts, and
// the cached configurations achieve a positive hit rate on the
// repeated-keyword workload.
func TestRunThroughputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput smoke test skipped in -short mode")
	}
	env := tinyEnv(t)
	points, err := RunThroughput(env, Twitter)
	if err != nil {
		t.Fatal(err)
	}
	workerCounts := map[int]bool{}
	cachedRows, uncachedRows := 0, 0
	for _, p := range points {
		if p.QPS <= 0 || p.Queries <= 0 {
			t.Fatalf("degenerate point: %+v", p)
		}
		workerCounts[p.Workers] = true
		if p.CacheBytes > 0 {
			cachedRows++
			if p.HitRate <= 0 {
				t.Fatalf("cached run has zero hit rate: %+v", p)
			}
		} else {
			uncachedRows++
			if p.HitRate != 0 {
				t.Fatalf("uncached run reports a hit rate: %+v", p)
			}
			if p.DiskReads == 0 {
				t.Fatalf("uncached run reports zero disk reads: %+v", p)
			}
		}
	}
	if len(workerCounts) < 2 {
		t.Fatalf("need >= 2 worker counts, got %v", workerCounts)
	}
	if cachedRows == 0 || uncachedRows == 0 {
		t.Fatalf("sweep must cover cache on and off: %d cached, %d uncached", cachedRows, uncachedRows)
	}
}

// TestThroughputRenders checks the registry entry end to end.
func TestThroughputRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput smoke test skipped in -short mode")
	}
	env := tinyEnv(t)
	var buf bytes.Buffer
	if err := Throughput(&buf, env); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"q/s", "hit-rate", "workers", "off"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
