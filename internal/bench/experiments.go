package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"kbtim/internal/codec"
	"kbtim/internal/coverage"
	"kbtim/internal/graph"
	"kbtim/internal/prop"
	"kbtim/internal/rng"
	"kbtim/internal/rrset"
	"kbtim/internal/topic"
	"kbtim/internal/wris"
)

// Experiment regenerates one paper artifact, writing the table/series to w.
type Experiment func(ctx context.Context, w io.Writer, env *Env) error

// Experiments maps experiment IDs to their runners, in paper order.
var Experiments = []struct {
	ID   string
	Desc string
	Run  Experiment
}{
	{"table2", "Table 2: dataset statistics", Table2},
	{"fig4", "Figure 4: in-degree distributions", Figure4},
	{"table3", "Table 3: θ̂_w vs θ_w index size & build time", Table3},
	{"table4", "Table 4: compressed vs uncompressed indexes", Table4},
	{"table5", "Table 5: Σθ_w and mean RR-set size vs |V|", Table5},
	{"fig5", "Figure 5: query time & RR sets loaded vs Q.k", Figure5},
	{"table6", "Table 6: IRR I/O vs Q.k", Table6},
	{"table7", "Table 7: influence spread vs Q.k", Table7},
	{"fig6", "Figure 6: query time & RR sets loaded vs |Q.T|", Figure6},
	{"fig7", "Figure 7: query time & RR sets loaded vs |V|", Figure7},
	{"table8", "Table 8: example seeds per keyword and model", Table8},
	{"ablation-delta", "Ablation: IRR partition size δ", AblationPartitionSize},
	{"ablation-compress", "Ablation: compression on/off query impact", AblationCompression},
	{"ablation-greedy", "Ablation: plain vs CELF-lazy greedy", AblationGreedy},
	{"throughput", "Throughput: q/s vs workers vs segment cache (multi-client)", Throughput},
	{"sharded", "Sharded serving: q/s vs engine shards (1/2/4) vs workers", ShardedThroughput},
	{"router", "Router serving: 1 engine vs 2-shard box vs 2-node HTTP router", RouterThroughput},
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

// Table2 prints the dataset statistics of both families (the Table 2
// analogue at 1:1000 scale).
func Table2(ctx context.Context, w io.Writer, env *Env) error {
	t := newTable("Table 2: datasets (scaled ~1:1000 from the paper)",
		"dataset", "#users", "#edges", "avg-degree", "#topics")
	for _, f := range []Family{News, Twitter} {
		for _, size := range env.sizes(f) {
			g, prof, err := env.Dataset(f, size)
			if err != nil {
				return err
			}
			name := fmt.Sprintf("%s-%d", f, size)
			if size == env.defaultSize(f) {
				name += "*"
			}
			t.add(name, g.NumVertices(), g.NumEdges(),
				fmt.Sprintf("%.1f", g.AvgDegree()), prof.NumTopics())
		}
	}
	t.addf("(* = default; #QWords sweep %v, k sweep %v)", env.Cfg.LenSweep, env.Cfg.KSweep)
	return t.write(w)
}

// Figure4 prints the log-bucketed in-degree distributions of the two
// default graphs.
func Figure4(ctx context.Context, w io.Writer, env *Env) error {
	t := newTable("Figure 4: in-degree distributions (log10 buckets)",
		"dataset", "bucket[1,10)", "[10,100)", "[100,1k)", "[1k,10k)", "max-deg", "plaw-slope")
	for _, f := range []Family{News, Twitter} {
		g, _, err := env.Dataset(f, env.defaultSize(f))
		if err != nil {
			return err
		}
		h := graph.InDegreeHistogram(g)
		buckets := h.Buckets(10)
		for len(buckets) < 4 {
			buckets = append(buckets, 0)
		}
		t.add(fmt.Sprintf("%s-%d", f, env.defaultSize(f)),
			buckets[0], buckets[1], buckets[2], buckets[3],
			h.MaxDegree(), fmt.Sprintf("%.2f", h.PowerLawSlope()))
	}
	t.addf("(twitter: heavy tail with vertices followed by a large share of users; news: light tail)")
	return t.write(w)
}

// table3Sizes returns the news sizes used by Table 3 (trimmed when not in
// full mode: θ̂_w builds are an order of magnitude heavier).
func table3Sizes(env *Env) []int {
	if env.Cfg.Full {
		return env.Cfg.NewsSizes
	}
	return env.Cfg.NewsSizes[:2]
}

// Table3 compares index size and construction time under θ̂_w (Eqn 8)
// versus θ_w (Eqn 10) on the news family.
func Table3(ctx context.Context, w io.Writer, env *Env) error {
	t := newTable("Table 3: θ̂_w vs θ_w (news, RR and IRR indexes)",
		"dataset", "RR-MB(θ̂)", "RR-MB(θ)", "IRR-MB(θ̂)", "IRR-MB(θ)",
		"RR-s(θ̂)", "RR-s(θ)", "IRR-s(θ̂)", "IRR-s(θ)")
	for _, size := range table3Sizes(env) {
		_, rrHat, err := env.RRIndex(News, size, wris.SizeThetaHat, codec.Delta)
		if err != nil {
			return err
		}
		_, rrStd, err := env.RRIndex(News, size, wris.SizeTheta, codec.Delta)
		if err != nil {
			return err
		}
		_, irrHat, err := env.IRRIndex(News, size, wris.SizeThetaHat, codec.Delta, 0)
		if err != nil {
			return err
		}
		_, irrStd, err := env.IRRIndex(News, size, wris.SizeTheta, codec.Delta, 0)
		if err != nil {
			return err
		}
		t.add(fmt.Sprintf("n%d", size),
			mb(rrHat.bytes), mb(rrStd.bytes), mb(irrHat.bytes), mb(irrStd.bytes),
			secs(rrHat.buildSec), secs(rrStd.buildSec), secs(irrHat.buildSec), secs(irrStd.buildSec))
	}
	t.addf("(paper: θ̂_w is ~9-10x larger; approximation power is identical — see Table 7)")
	return t.write(w)
}

// Table4 compares compressed and uncompressed index footprints.
func Table4(ctx context.Context, w io.Writer, env *Env) error {
	t := newTable("Table 4: disk size & build time, uncompressed vs compressed (θ_w)",
		"dataset", "RR-MB(raw)", "IRR-MB(raw)", "RR-MB(comp)", "IRR-MB(comp)",
		"RR-s(raw)", "IRR-s(raw)", "RR-s(comp)", "IRR-s(comp)")
	for _, f := range []Family{News, Twitter} {
		sizes := env.sizes(f)
		if !env.Cfg.Full {
			sizes = sizes[:2]
		}
		for _, size := range sizes {
			_, rrRaw, err := env.RRIndex(f, size, wris.SizeTheta, codec.Raw)
			if err != nil {
				return err
			}
			_, irrRaw, err := env.IRRIndex(f, size, wris.SizeTheta, codec.Raw, 0)
			if err != nil {
				return err
			}
			_, rrC, err := env.RRIndex(f, size, wris.SizeTheta, codec.Delta)
			if err != nil {
				return err
			}
			_, irrC, err := env.IRRIndex(f, size, wris.SizeTheta, codec.Delta, 0)
			if err != nil {
				return err
			}
			t.add(fmt.Sprintf("%.1s%d", f, size),
				mb(rrRaw.bytes), mb(irrRaw.bytes), mb(rrC.bytes), mb(irrC.bytes),
				secs(rrRaw.buildSec), secs(irrRaw.buildSec), secs(rrC.buildSec), secs(irrC.buildSec))
		}
	}
	t.addf("(paper: ~40-50%% space reduction at negligible build-time cost)")
	return t.write(w)
}

// Table5 prints Σθ_w and mean RR-set size across the size sweeps.
func Table5(ctx context.Context, w io.Writer, env *Env) error {
	t := newTable("Table 5: Σθ_w and mean RR-set size vs graph size",
		"dataset", "sum θ_w", "mean RR size")
	for _, f := range []Family{News, Twitter} {
		for _, size := range env.sizes(f) {
			_, ent, err := env.RRIndex(f, size, wris.SizeTheta, codec.Delta)
			if err != nil {
				return err
			}
			t.add(fmt.Sprintf("%.1s%d", f, size), ent.sumTheta, fmt.Sprintf("%.2f", ent.meanRR))
		}
	}
	t.addf("(paper: θ_w grows with |V| while mean RR size shrinks as the graph sparsifies)")
	return t.write(w)
}

// methodTiming measures one (method, query-set) pair.
type methodTiming struct {
	seconds float64 // mean per query
	loaded  float64 // mean RR sets examined
	io      float64 // mean logical I/O ops
	parts   float64 // mean partitions loaded (IRR)
	spread  float64 // mean MC-evaluated targeted spread (Table 7 only)
}

// runPoint measures RR, IRR, and WRIS on one (family, size, len, k) point.
// wrisEvery limits the (expensive) WRIS runs to the first n queries;
// 0 skips WRIS.
func (e *Env) runPoint(ctx context.Context, f Family, size, length, k, wrisEvery int, evalSpread bool) (rr, irr, online methodTiming, err error) {
	g, prof, err := e.Dataset(f, size)
	if err != nil {
		return rr, irr, online, err
	}
	queries, err := e.Queries(e.Cfg.QueriesPerPoint, length, k)
	if err != nil {
		return rr, irr, online, err
	}
	rrIdx, _, err := e.RRIndex(f, size, wris.SizeTheta, codec.Delta)
	if err != nil {
		return rr, irr, online, err
	}
	irrIdx, _, err := e.IRRIndex(f, size, wris.SizeTheta, codec.Delta, 0)
	if err != nil {
		return rr, irr, online, err
	}
	cfg := e.queryCfg()
	evalRNG := rng.New(e.Cfg.Seed ^ 0xEA7)
	nWRIS := 0
	for i, q := range queries {
		r1, qerr := rrIdx.QueryCtx(ctx, q)
		if qerr != nil {
			return rr, irr, online, qerr
		}
		rr.seconds += r1.Elapsed.Seconds()
		rr.loaded += float64(r1.NumRRSets)
		rr.io += float64(r1.IO.Total())

		r2, qerr := irrIdx.QueryCtx(ctx, q)
		if qerr != nil {
			return rr, irr, online, qerr
		}
		irr.seconds += r2.Elapsed.Seconds()
		irr.loaded += float64(r2.NumRRSets)
		irr.io += float64(r2.IO.Total())
		irr.parts += float64(r2.PartitionsLoaded)

		if evalSpread {
			score := func(v uint32) float64 { return prof.Score(v, q) }
			rr.spread += prop.EstimateWeightedSpread(g, prop.IC{}, r1.Seeds, score, e.Cfg.SpreadRounds, evalRNG)
			irr.spread += prop.EstimateWeightedSpread(g, prop.IC{}, r2.Seeds, score, e.Cfg.SpreadRounds, evalRNG)
		}
		if i < wrisEvery {
			r3, qerr := wris.Query(g, prop.IC{}, prof, q, cfg)
			if qerr != nil {
				return rr, irr, online, qerr
			}
			online.seconds += r3.Elapsed.Seconds()
			online.loaded += float64(r3.NumRRSets)
			if evalSpread {
				score := func(v uint32) float64 { return prof.Score(v, q) }
				online.spread += prop.EstimateWeightedSpread(g, prop.IC{}, r3.Seeds, score, e.Cfg.SpreadRounds, evalRNG)
			}
			nWRIS++
		}
	}
	n := float64(len(queries))
	rr.seconds /= n
	rr.loaded /= n
	rr.io /= n
	rr.spread /= n
	irr.seconds /= n
	irr.loaded /= n
	irr.io /= n
	irr.parts /= n
	irr.spread /= n
	if nWRIS > 0 {
		online.seconds /= float64(nWRIS)
		online.loaded /= float64(nWRIS)
		online.spread /= float64(nWRIS)
	}
	return rr, irr, online, nil
}

// Figure5 sweeps Q.k at the default keyword count.
func Figure5(ctx context.Context, w io.Writer, env *Env) error {
	for _, f := range []Family{News, Twitter} {
		t := newTable(fmt.Sprintf("Figure 5 (%s): vary Q.k, |Q.T|=%d", f, env.Cfg.DefaultLen),
			"Q.k", "RR-ms", "IRR-ms", "WRIS-ms", "RR-sets", "IRR-sets", "WRIS-sets")
		for _, k := range env.Cfg.KSweep {
			rr, irr, online, err := env.runPoint(ctx, f, env.defaultSize(f), env.Cfg.DefaultLen, k, 1, false)
			if err != nil {
				return err
			}
			t.add(k, ms(rr.seconds), ms(irr.seconds), ms(online.seconds),
				int64(rr.loaded), int64(irr.loaded), int64(online.loaded))
		}
		t.addf("(paper: RR/IRR are ~2 orders of magnitude below WRIS; IRR loads fewer sets)")
		if err := t.write(w); err != nil {
			return err
		}
	}
	return nil
}

// Table6 reports IRR's logical I/O count as Q.k grows.
func Table6(ctx context.Context, w io.Writer, env *Env) error {
	t := newTable("Table 6: number of I/O operations for IRR vs Q.k",
		"dataset", "Q.k", "IRR I/O ops", "partitions")
	for _, f := range []Family{News, Twitter} {
		for _, k := range env.Cfg.KSweep {
			_, irr, _, err := env.runPoint(ctx, f, env.defaultSize(f), env.Cfg.DefaultLen, k, 0, false)
			if err != nil {
				return err
			}
			t.add(string(f), k, fmt.Sprintf("%.1f", irr.io), fmt.Sprintf("%.1f", irr.parts))
		}
	}
	t.addf("(paper: I/O grows with Q.k as more partitions must be fetched)")
	return t.write(w)
}

// Table7 compares the Monte-Carlo influence spread of the seeds returned by
// WRIS, RR (both sizings), and IRR — they must be statistically identical.
// The news rows run on the smallest news graph so the θ̂_w index (which only
// exists at Table 3's sizes) is compared on the SAME dataset as the other
// methods; the twitter rows run on the default twitter graph (the paper
// likewise reports RR(θ̂_w) for news only).
func Table7(ctx context.Context, w io.Writer, env *Env) error {
	t := newTable("Table 7: influence spread when varying Q.k (Monte-Carlo evaluation)",
		"dataset", "Q.k", "WRIS", "RR(θ̂_w)", "RR", "IRR")
	newsSize := table3Sizes(env)[0]
	for _, f := range []Family{News, Twitter} {
		size := env.defaultSize(f)
		if f == News {
			size = newsSize
		}
		for _, k := range env.Cfg.KSweep {
			rr, irr, online, err := env.runPoint(ctx, f, size, env.Cfg.DefaultLen, k, 1, true)
			if err != nil {
				return err
			}
			hat := "-"
			if f == News {
				idx, _, herr := env.RRIndex(News, newsSize, wris.SizeThetaHat, codec.Delta)
				if herr != nil {
					return herr
				}
				gHat, profHat, derr := env.Dataset(News, newsSize)
				if derr != nil {
					return derr
				}
				queries, qerr := env.Queries(env.Cfg.QueriesPerPoint, env.Cfg.DefaultLen, k)
				if qerr != nil {
					return qerr
				}
				evalRNG := rng.New(env.Cfg.Seed ^ uint64(k))
				var s float64
				for _, q := range queries {
					res, qerr := idx.QueryCtx(ctx, q)
					if qerr != nil {
						return qerr
					}
					score := func(v uint32) float64 { return profHat.Score(v, q) }
					s += prop.EstimateWeightedSpread(gHat, prop.IC{}, res.Seeds, score,
						env.Cfg.SpreadRounds, evalRNG)
				}
				hat = fmt.Sprintf("%.1f", s/float64(len(queries)))
			}
			t.add(string(f)+fmt.Sprintf("-%d", size), k, fmt.Sprintf("%.1f", online.spread), hat,
				fmt.Sprintf("%.1f", rr.spread), fmt.Sprintf("%.1f", irr.spread))
		}
	}
	t.addf("(paper: almost no difference between methods — the guarantee holds for all)")
	return t.write(w)
}

// Figure6 sweeps the keyword count at the default Q.k.
func Figure6(ctx context.Context, w io.Writer, env *Env) error {
	for _, f := range []Family{News, Twitter} {
		t := newTable(fmt.Sprintf("Figure 6 (%s): vary |Q.T|, Q.k=%d", f, env.Cfg.DefaultK),
			"|Q.T|", "RR-ms", "IRR-ms", "WRIS-ms", "RR-sets", "IRR-sets")
		for _, l := range env.Cfg.LenSweep {
			rr, irr, online, err := env.runPoint(ctx, f, env.defaultSize(f), l, env.Cfg.DefaultK, 1, false)
			if err != nil {
				return err
			}
			t.add(l, ms(rr.seconds), ms(irr.seconds), ms(online.seconds),
				int64(rr.loaded), int64(irr.loaded))
		}
		t.addf("(paper: both indexes stay >=2 orders of magnitude faster than WRIS)")
		if err := t.write(w); err != nil {
			return err
		}
	}
	return nil
}

// Figure7 sweeps the graph size at the default query shape.
func Figure7(ctx context.Context, w io.Writer, env *Env) error {
	for _, f := range []Family{News, Twitter} {
		t := newTable(fmt.Sprintf("Figure 7 (%s): vary |V|, Q.k=%d, |Q.T|=%d",
			f, env.Cfg.DefaultK, env.Cfg.DefaultLen),
			"|V|", "RR-ms", "IRR-ms", "WRIS-ms", "RR-sets", "IRR-sets")
		for _, size := range env.sizes(f) {
			rr, irr, online, err := env.runPoint(ctx, f, size, env.Cfg.DefaultLen, env.Cfg.DefaultK, 1, false)
			if err != nil {
				return err
			}
			t.add(size, ms(rr.seconds), ms(irr.seconds), ms(online.seconds),
				int64(rr.loaded), int64(irr.loaded))
		}
		t.addf("(paper: IRR dominates RR on growing twitter graphs; near-parity on news)")
		if err := t.write(w); err != nil {
			return err
		}
	}
	return nil
}

// Table8 prints example top-8 seeds for two popular keywords under WRIS(IC),
// WRIS(LT), and keyword-blind RIS — the qualitative §6.6 study.
func Table8(ctx context.Context, w io.Writer, env *Env) error {
	t := newTable("Table 8: example top-8 seeds ('software'=topic0, 'journal'=topic1)",
		"dataset", "method", "keyword", "seeds")
	const k = 8
	for _, f := range []Family{News, Twitter} {
		g, prof, err := env.Dataset(f, env.defaultSize(f))
		if err != nil {
			return err
		}
		cfg := env.queryCfg()
		for _, kw := range []int{0, 1} {
			name := map[int]string{0: "software", 1: "journal"}[kw]
			q := topic.Query{Topics: []int{kw}, K: k}
			for _, model := range []prop.Model{prop.IC{}, prop.LT{}} {
				res, qerr := wris.Query(g, model, prof, q, cfg)
				if qerr != nil {
					return qerr
				}
				t.add(string(f), "WRIS("+model.Name()+")", name, fmt.Sprint(res.Seeds))
			}
		}
		ris, err := wris.QueryRIS(g, prop.IC{}, k, cfg)
		if err != nil {
			return err
		}
		t.add(string(f), "RIS", "(any)", fmt.Sprint(ris.Seeds))
	}
	t.addf("(paper: RIS returns the same seeds regardless of the advertisement)")
	return t.write(w)
}

// AblationPartitionSize sweeps the IRR δ parameter.
func AblationPartitionSize(ctx context.Context, w io.Writer, env *Env) error {
	t := newTable("Ablation: IRR partition size δ (default query shape)",
		"dataset", "δ", "IRR-ms", "I/O ops", "RR sets loaded")
	for _, f := range []Family{News, Twitter} {
		for _, delta := range []int{10, 100, 1000} {
			idx, _, err := env.IRRIndex(f, env.defaultSize(f), wris.SizeTheta, codec.Delta, delta)
			if err != nil {
				return err
			}
			queries, err := env.Queries(env.Cfg.QueriesPerPoint, env.Cfg.DefaultLen, env.Cfg.DefaultK)
			if err != nil {
				return err
			}
			var sec, io, loaded float64
			for _, q := range queries {
				res, qerr := idx.QueryCtx(ctx, q)
				if qerr != nil {
					return qerr
				}
				sec += res.Elapsed.Seconds()
				io += float64(res.IO.Total())
				loaded += float64(res.NumRRSets)
			}
			n := float64(len(queries))
			t.add(string(f), delta, ms(sec/n), fmt.Sprintf("%.1f", io/n), int64(loaded/n))
		}
	}
	t.addf("(small δ: many tiny random I/Os; large δ: fewer but coarser loads)")
	return t.write(w)
}

// AblationCompression measures the query-time cost of decompression.
func AblationCompression(ctx context.Context, w io.Writer, env *Env) error {
	t := newTable("Ablation: compression impact on RR query time",
		"dataset", "codec", "RR-ms", "bytes read/query")
	for _, f := range []Family{News, Twitter} {
		for _, comp := range []codec.Compression{codec.Raw, codec.Delta} {
			idx, _, err := env.RRIndex(f, env.defaultSize(f), wris.SizeTheta, comp)
			if err != nil {
				return err
			}
			queries, err := env.Queries(env.Cfg.QueriesPerPoint, env.Cfg.DefaultLen, env.Cfg.DefaultK)
			if err != nil {
				return err
			}
			var sec, bytes float64
			for _, q := range queries {
				res, qerr := idx.QueryCtx(ctx, q)
				if qerr != nil {
					return qerr
				}
				sec += res.Elapsed.Seconds()
				bytes += float64(res.IO.BytesRead)
			}
			n := float64(len(queries))
			t.add(string(f), comp.String(), ms(sec/n), int64(bytes/n))
		}
	}
	t.addf("(compression halves bytes read for a modest decode cost)")
	return t.write(w)
}

// AblationGreedy times the plain scan-and-update greedy against the
// CELF-style lazy variant on an identical coverage instance.
func AblationGreedy(ctx context.Context, w io.Writer, env *Env) error {
	g, prof, err := env.Dataset(Twitter, env.defaultSize(Twitter))
	if err != nil {
		return err
	}
	users, weights := wris.KeywordSupport(prof, 0)
	picker, err := rrset.NewWeightedRoots(users, weights)
	if err != nil {
		return err
	}
	batch := rrset.Generate(g, prop.IC{}, picker, rrset.GenerateOptions{Count: 30000, Seed: 5})
	inst := &coverage.Instance{
		NumVertices: g.NumVertices(),
		NumSets:     batch.Len(),
		Lists:       batch.InvertedLists(g.NumVertices()),
	}
	members := func(id int32) []uint32 { return batch.Set(int(id)) }
	t := newTable("Ablation: greedy maximum-coverage solver (30k RR sets)",
		"solver", "k", "ms", "covered")
	for _, k := range []int{10, 50} {
		start := time.Now()
		plain, err := coverage.Solve(inst, k, members)
		if err != nil {
			return err
		}
		plainSec := time.Since(start).Seconds()
		start = time.Now()
		lazy, err := coverage.SolveLazy(inst, k, members)
		if err != nil {
			return err
		}
		lazySec := time.Since(start).Seconds()
		if plain.Covered != lazy.Covered {
			return fmt.Errorf("bench: greedy variants disagree (%d vs %d)", plain.Covered, lazy.Covered)
		}
		t.add("plain", k, ms(plainSec), plain.Covered)
		t.add("celf-lazy", k, ms(lazySec), lazy.Covered)
	}
	t.addf("(identical results by construction; lazy wins when θ >> |V|)")
	return t.write(w)
}
