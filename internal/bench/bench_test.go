package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// tinyConfig shrinks everything so the whole experiment registry runs in a
// few seconds inside the unit-test suite.
func tinyConfig() Config {
	return Config{
		Full:            false,
		Topics:          4,
		Epsilon:         0.5,
		K:               10,
		MaxTheta:        4000,
		PartitionSize:   5,
		NewsSizes:       []int{200, 400},
		NewsDegrees:     []float64{4, 3},
		TwitterSizes:    []int{200, 400},
		TwitterDegrees:  []float64{8, 6},
		DefaultNews:     1,
		DefaultTwitter:  1,
		KSweep:          []int{2, 5},
		LenSweep:        []int{1, 2},
		DefaultK:        3,
		DefaultLen:      2,
		QueriesPerPoint: 2,
		SpreadRounds:    50,
		Seed:            5,
	}
}

func tinyEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := env.Close(); err != nil {
			t.Errorf("env close: %v", err)
		}
	})
	return env
}

// TestAllExperimentsRun executes the complete registry at toy scale: every
// table/figure must render without error and produce non-trivial output.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	env := tinyEnv(t)
	for _, e := range Experiments {
		var buf bytes.Buffer
		if err := e.Run(t.Context(), &buf, env); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		out := buf.String()
		if !strings.Contains(out, "==") {
			t.Fatalf("%s produced no table header:\n%s", e.ID, out)
		}
		if len(strings.Split(out, "\n")) < 4 {
			t.Fatalf("%s produced a suspiciously short table:\n%s", e.ID, out)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("table7"); !ok {
		t.Fatal("table7 missing from registry")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus ID found")
	}
}

func TestEnvCachesDatasetsAndIndexes(t *testing.T) {
	env := tinyEnv(t)
	g1, p1, err := env.Dataset(News, 200)
	if err != nil {
		t.Fatal(err)
	}
	g2, p2, err := env.Dataset(News, 200)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 || p1 != p2 {
		t.Fatal("dataset not cached")
	}
	if _, _, err := env.Dataset(News, 777); err == nil {
		t.Fatal("size outside sweep accepted")
	}
	idx1, ent1, err := env.RRIndex(News, 200, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	idx2, ent2, err := env.RRIndex(News, 200, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if idx1 != idx2 || ent1 != ent2 {
		t.Fatal("index not cached")
	}
}

func TestQueriesDeterministic(t *testing.T) {
	env := tinyEnv(t)
	a, err := env.Queries(3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Queries(3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].K != b[i].K || len(a[i].Topics) != len(b[i].Topics) {
			t.Fatal("query workload not deterministic")
		}
		for j := range a[i].Topics {
			if a[i].Topics[j] != b[i].Topics[j] {
				t.Fatal("query workload not deterministic")
			}
		}
	}
}

func TestDefaultConfigShapes(t *testing.T) {
	quick := DefaultConfig(false)
	full := DefaultConfig(true)
	if len(full.KSweep) <= len(quick.KSweep) {
		t.Fatal("full config does not widen the k sweep")
	}
	if len(quick.NewsSizes) != len(quick.NewsDegrees) ||
		len(quick.TwitterSizes) != len(quick.TwitterDegrees) {
		t.Fatal("size/degree sweeps misaligned")
	}
	if quick.DefaultNews >= len(quick.NewsSizes) || quick.DefaultTwitter >= len(quick.TwitterSizes) {
		t.Fatal("default indexes out of range")
	}
}

func TestTableRenderer(t *testing.T) {
	tb := newTable("demo", "a", "bb")
	tb.add("x", 1)
	tb.add(2.5, int64(7))
	tb.addf("note %d", 9)
	var buf bytes.Buffer
	if err := tb.write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== demo ==", "a", "bb", "x", "note 9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if _, err := io.WriteString(io.Discard, out); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkThroughputSmoke runs the throughput experiment end to end at toy
// scale. CI's bench-smoke step (`go test -bench . -benchtime 1x
// ./internal/bench`) executes this, so the experiment harness — dataset
// generation, index builds, the cache-tier sweep — cannot silently rot.
func BenchmarkThroughputSmoke(b *testing.B) {
	env, err := NewEnv(tinyConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	for i := 0; i < b.N; i++ {
		if err := Throughput(b.Context(), io.Discard, env); err != nil {
			b.Fatal(err)
		}
	}
}

// TestThroughputCacheTiers asserts the cache axis is present and sane: the
// sweep must produce an "off", a "byte", and an "object" row per family,
// and the cached rows must record hits on the repeated workload.
func TestThroughputCacheTiers(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput sweep skipped in -short mode")
	}
	env := tinyEnv(t)
	points, err := RunThroughput(env, News)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, p := range points {
		kinds[p.CacheKind] = true
		if p.QPS <= 0 || p.Queries <= 0 {
			t.Fatalf("implausible point %+v", p)
		}
		if p.CacheKind != "off" && p.HitRate == 0 {
			t.Fatalf("%s cache never hit on a cycled workload: %+v", p.CacheKind, p)
		}
		if p.CacheKind == "off" && p.HitRate != 0 {
			t.Fatalf("uncached row reports a hit rate: %+v", p)
		}
	}
	for _, want := range []string{"off", "byte", "object"} {
		if !kinds[want] {
			t.Fatalf("cache axis missing %q: %v", want, kinds)
		}
	}
}
