// Package bench is the experiment harness behind §6 of the paper: it
// generates the scaled dataset suite, builds and caches the disk indexes,
// runs every table and figure of the evaluation, and renders them as text
// tables. bench_test.go at the module root exposes one testing.B benchmark
// per experiment; cmd/kbtim-bench drives the same code from the command
// line.
//
// Scaling: the paper's corpora (Twitter up to 41.6M users / 1.4B edges,
// News up to 1.4M vertices) are scaled ~1:1000 and ε is raised from 0.1 to
// 0.4 (θ ∝ 1/ε²) so the whole suite runs on a laptop in minutes. The
// comparative shapes — which method wins, by how much, and where IRR
// degrades to RR — are preserved; see EXPERIMENTS.md for the side-by-side
// reading.
package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"kbtim/internal/codec"
	"kbtim/internal/diskio"
	"kbtim/internal/gen"
	"kbtim/internal/graph"
	"kbtim/internal/irrindex"
	"kbtim/internal/prop"
	"kbtim/internal/rrindex"
	"kbtim/internal/topic"
	"kbtim/internal/wris"
)

// Family names the two dataset families of Table 2.
type Family string

// Dataset families.
const (
	News    Family = "news"
	Twitter Family = "twitter"
)

// Config sizes the experiment suite.
type Config struct {
	// Full switches from the quick default sweep to the paper's complete
	// parameter grid (set KBTIM_BENCH_FULL=1).
	Full bool
	// Topics is the topic-space size (paper: 200).
	Topics int
	// Epsilon for every method (paper: 0.1).
	Epsilon float64
	// K is the index sizing cap on Q.k (paper: 100, max Q.k 50).
	K int
	// MaxTheta caps per-keyword samples so runaway configurations stay
	// bounded.
	MaxTheta int
	// PartitionSize is the IRR δ (paper: 100).
	PartitionSize int
	// NewsSizes / TwitterSizes are the |V| sweeps of Table 2.
	NewsSizes    []int
	TwitterSizes []int
	// NewsDegrees / TwitterDegrees are the matching average degrees
	// (both decrease with size, as in Table 2).
	NewsDegrees    []float64
	TwitterDegrees []float64
	// DefaultNews / DefaultTwitter index into the size sweeps (the bolded
	// defaults of Table 2).
	DefaultNews    int
	DefaultTwitter int
	// KSweep is the Q.k sweep of Figure 5 (paper: 10..50 step 5).
	KSweep []int
	// LenSweep is the |Q.T| sweep of Figure 6 (paper: 1..6).
	LenSweep []int
	// DefaultK and DefaultLen are the fixed values when the other
	// parameter sweeps (paper: 30 and 5).
	DefaultK   int
	DefaultLen int
	// QueriesPerPoint averages each measurement over this many queries
	// (paper: 100 per length; scaled down here).
	QueriesPerPoint int
	// SpreadRounds is the Monte-Carlo budget of Table 7.
	SpreadRounds int
	// Seed drives everything.
	Seed uint64
}

// DefaultConfig returns the quick (full=false) or complete (full=true)
// suite configuration.
func DefaultConfig(full bool) Config {
	cfg := Config{
		Full:            full,
		Topics:          16,
		Epsilon:         0.4,
		K:               50,
		MaxTheta:        120000,
		PartitionSize:   20, // paper: 100 at 10^7 users; scaled with |V|
		NewsSizes:       []int{2000, 6000, 10000, 14000},
		NewsDegrees:     []float64{5.2, 3.1, 2.6, 2.2},
		TwitterSizes:    []int{4000, 8000, 12000, 16000},
		TwitterDegrees:  []float64{19, 14, 12, 10},
		DefaultNews:     2,
		DefaultTwitter:  1,
		KSweep:          []int{10, 30, 50},
		LenSweep:        []int{1, 3, 5},
		DefaultK:        30,
		DefaultLen:      5,
		QueriesPerPoint: 3,
		SpreadRounds:    800,
		Seed:            1,
	}
	if full {
		cfg.Topics = 32
		cfg.KSweep = []int{10, 15, 20, 25, 30, 35, 40, 45, 50}
		cfg.LenSweep = []int{1, 2, 3, 4, 5, 6}
		cfg.QueriesPerPoint = 10
		cfg.SpreadRounds = 2000
		cfg.MaxTheta = 300000
	}
	return cfg
}

// dataset is one generated graph + profiles pair.
type dataset struct {
	g    *graph.Graph
	prof *topic.Profiles
}

// indexKey identifies a cached index build.
type indexKey struct {
	family  Family
	size    int
	kind    string // "rr" | "irr"
	sizing  wris.SizingMode
	comp    codec.Compression
	modelNm string
	delta   int
}

// indexEntry is a cached, opened index.
type indexEntry struct {
	path     string
	bytes    int64
	sumTheta int64
	meanRR   float64
	buildSec float64
	rr       *rrindex.Index
	irr      *irrindex.Index
	file     *diskio.File
}

// Env lazily generates datasets and builds indexes, caching both so that
// experiments sharing a configuration do not pay twice.
type Env struct {
	Cfg Config

	mu       sync.Mutex //kbtim:lockrank 60
	dir      string
	datasets map[string]*dataset
	indexes  map[indexKey]*indexEntry
}

// NewEnv creates an environment whose index files live in a fresh temp dir.
func NewEnv(cfg Config) (*Env, error) {
	dir, err := os.MkdirTemp("", "kbtim-bench-")
	if err != nil {
		return nil, err
	}
	return &Env{
		Cfg:      cfg,
		dir:      dir,
		datasets: map[string]*dataset{},
		indexes:  map[indexKey]*indexEntry{},
	}, nil
}

// Close removes all cached index files.
func (e *Env) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, ent := range e.indexes {
		if ent.file != nil {
			ent.file.Close()
		}
	}
	e.indexes = map[indexKey]*indexEntry{}
	return os.RemoveAll(e.dir)
}

// wrisConfig returns the sampling configuration used by index BUILDS
// (parallel workers, like the paper's 8-thread construction).
func (e *Env) wrisConfig() wris.Config {
	return wris.Config{
		Epsilon:            e.Cfg.Epsilon,
		K:                  e.Cfg.K,
		PilotSets:          1500,
		MaxThetaPerKeyword: e.Cfg.MaxTheta,
		Seed:               e.Cfg.Seed,
	}
}

// queryCfg returns the configuration for ONLINE query-time methods: a
// single worker, so the WRIS-vs-index latency comparison is apples to
// apples (index query processing is single-threaded), and a far looser θ
// cap — the paper's WRIS has no cap at all, and capping it would hide the
// very cost the indexes exist to avoid (θ for WRIS is sized by OPT_{Q.k}
// of the live query, while the indexes are sized once by OPT_K).
func (e *Env) queryCfg() wris.Config {
	cfg := e.wrisConfig()
	cfg.Workers = 1
	cfg.MaxThetaPerKeyword = 5_000_000
	return cfg
}

// sizes returns the |V| sweep of a family.
func (e *Env) sizes(f Family) []int {
	if f == News {
		return e.Cfg.NewsSizes
	}
	return e.Cfg.TwitterSizes
}

// defaultSize returns the family's bolded Table 2 default.
func (e *Env) defaultSize(f Family) int {
	if f == News {
		return e.Cfg.NewsSizes[e.Cfg.DefaultNews]
	}
	return e.Cfg.TwitterSizes[e.Cfg.DefaultTwitter]
}

// Dataset returns the (cached) graph + profiles for a family/size.
func (e *Env) Dataset(f Family, size int) (*graph.Graph, *topic.Profiles, error) {
	key := fmt.Sprintf("%s-%d", f, size)
	e.mu.Lock()
	defer e.mu.Unlock()
	if d, ok := e.datasets[key]; ok {
		return d.g, d.prof, nil
	}
	deg, err := e.degreeFor(f, size)
	if err != nil {
		return nil, nil, err
	}
	var g *graph.Graph
	switch f {
	case News:
		g, err = gen.NewsLike(gen.NewsLikeConfig{N: size, AvgDegree: deg, Seed: e.Cfg.Seed + uint64(size)})
	case Twitter:
		g, err = gen.TwitterLike(gen.TwitterLikeConfig{N: size, AvgDegree: int(deg), Seed: e.Cfg.Seed + uint64(size)})
	default:
		return nil, nil, fmt.Errorf("bench: unknown family %q", f)
	}
	if err != nil {
		return nil, nil, err
	}
	pcfg := gen.DefaultProfilesConfig(size, e.Cfg.Topics, e.Cfg.Seed+uint64(size)*3)
	if pcfg.MaxTopics > e.Cfg.Topics {
		pcfg.MaxTopics = e.Cfg.Topics
	}
	prof, err := gen.Profiles(pcfg)
	if err != nil {
		return nil, nil, err
	}
	e.datasets[key] = &dataset{g: g, prof: prof}
	return g, prof, nil
}

func (e *Env) degreeFor(f Family, size int) (float64, error) {
	sizes := e.sizes(f)
	degrees := e.Cfg.NewsDegrees
	if f == Twitter {
		degrees = e.Cfg.TwitterDegrees
	}
	for i, s := range sizes {
		if s == size {
			return degrees[i], nil
		}
	}
	return 0, fmt.Errorf("bench: size %d not in %s sweep", size, f)
}

// Queries returns a deterministic workload of n queries with the given
// keyword count and k.
func (e *Env) Queries(n, length, k int) ([]topic.Query, error) {
	batch, err := gen.Queries(gen.QueryWorkloadConfig{
		NumTopics:    e.Cfg.Topics,
		Lengths:      []int{length},
		PerLength:    n,
		K:            k,
		ZipfExponent: 1.0,
		Seed:         e.Cfg.Seed + uint64(length)*977 + uint64(k),
	})
	if err != nil {
		return nil, err
	}
	return batch[length], nil
}

// RRIndex builds (or fetches) an RR index.
func (e *Env) RRIndex(f Family, size int, sizing wris.SizingMode, comp codec.Compression) (*rrindex.Index, *indexEntry, error) {
	ent, err := e.index(indexKey{family: f, size: size, kind: "rr", sizing: sizing, comp: comp, modelNm: "IC", delta: 0})
	if err != nil {
		return nil, nil, err
	}
	return ent.rr, ent, nil
}

// IRRIndex builds (or fetches) an IRR index.
func (e *Env) IRRIndex(f Family, size int, sizing wris.SizingMode, comp codec.Compression, delta int) (*irrindex.Index, *indexEntry, error) {
	if delta == 0 {
		delta = e.Cfg.PartitionSize
	}
	ent, err := e.index(indexKey{family: f, size: size, kind: "irr", sizing: sizing, comp: comp, modelNm: "IC", delta: delta})
	if err != nil {
		return nil, nil, err
	}
	return ent.irr, ent, nil
}

func (e *Env) index(key indexKey) (*indexEntry, error) {
	e.mu.Lock()
	if ent, ok := e.indexes[key]; ok {
		e.mu.Unlock()
		return ent, nil
	}
	e.mu.Unlock()

	g, prof, err := e.Dataset(key.family, key.size)
	if err != nil {
		return nil, err
	}
	cfg := e.wrisConfig()
	path := filepath.Join(e.dir, fmt.Sprintf("%s-%d-%s-%d-%d-%d.idx",
		key.family, key.size, key.kind, key.sizing, key.comp, key.delta))
	fo, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	ent := &indexEntry{path: path}
	switch key.kind {
	case "rr":
		stats, berr := rrindex.Build(fo, g, prop.IC{}, prof, cfg, rrindex.BuildOptions{
			Compression: key.comp,
			Sizing:      key.sizing,
		})
		if berr != nil {
			fo.Close()
			return nil, berr
		}
		ent.bytes = stats.TotalBytes
		ent.sumTheta = stats.SumTheta()
		ent.meanRR = stats.MeanRRSize()
		ent.buildSec = stats.Elapsed.Seconds()
	case "irr":
		stats, berr := irrindex.Build(fo, g, prop.IC{}, prof, cfg, irrindex.BuildOptions{
			Compression:   key.comp,
			Sizing:        key.sizing,
			PartitionSize: key.delta,
		})
		if berr != nil {
			fo.Close()
			return nil, berr
		}
		ent.bytes = stats.TotalBytes
		ent.sumTheta = stats.SumTheta()
		ent.meanRR = stats.MeanRRSize()
		ent.buildSec = stats.Elapsed.Seconds()
	default:
		fo.Close()
		return nil, fmt.Errorf("bench: unknown index kind %q", key.kind)
	}
	if err := fo.Close(); err != nil {
		return nil, err
	}
	df, err := diskio.Open(path, diskio.NewCounter())
	if err != nil {
		return nil, err
	}
	switch key.kind {
	case "rr":
		ent.rr, err = rrindex.Open(df)
	case "irr":
		ent.irr, err = irrindex.Open(df)
	}
	if err != nil {
		df.Close()
		return nil, err
	}
	ent.file = df

	e.mu.Lock()
	e.indexes[key] = ent
	e.mu.Unlock()
	return ent, nil
}
