package bench

import (
	"fmt"
	"io"
	"strings"
)

// table is a minimal fixed-width text-table renderer for experiment output.
type table struct {
	title   string
	headers []string
	rows    [][]string
}

func newTable(title string, headers ...string) *table {
	return &table{title: title, headers: headers}
}

func (t *table) add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func (t *table) addf(format string, args ...interface{}) {
	t.rows = append(t.rows, []string{fmt.Sprintf(format, args...)})
}

func (t *table) write(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		if len(row) == 1 && len(t.headers) > 1 {
			continue // footnotes don't widen columns
		}
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	sb.WriteString("\n== " + t.title + " ==\n")
	if len(t.headers) > 0 {
		for i, h := range t.headers {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], h)
		}
		sb.WriteString("\n")
		for i := range t.headers {
			sb.WriteString(strings.Repeat("-", widths[i]) + "  ")
		}
		sb.WriteString("\n")
	}
	for _, row := range t.rows {
		if len(row) == 1 && len(t.headers) > 1 {
			sb.WriteString(row[0] + "\n") // footnote line
			continue
		}
		for i, c := range row {
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
			} else {
				sb.WriteString(c + "  ")
			}
		}
		sb.WriteString("\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func mb(bytes int64) string {
	return fmt.Sprintf("%.2f", float64(bytes)/(1<<20))
}

func secs(s float64) string {
	return fmt.Sprintf("%.2f", s)
}

func ms(s float64) string {
	return fmt.Sprintf("%.2f", s*1000)
}
