package bench

import (
	"context"
	"errors"
	"io"
	"testing"
)

// BenchmarkRouterSmoke runs the cross-node experiment end to end at toy
// scale — CI's bench-smoke step executes this, so the router harness
// (artifact servers, remote opens, proxy fast path) cannot silently rot.
func BenchmarkRouterSmoke(b *testing.B) {
	env, err := NewEnv(tinyConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	for i := 0; i < b.N; i++ {
		if err := RouterThroughput(b.Context(), io.Discard, env); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRouterThroughputTopologies asserts the topology axis is complete and
// sane: all three arms present, plausible rates, a consistent scatter
// fraction, and nonzero artifact wire traffic on the router arm only.
func TestRouterThroughputTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("router sweep skipped in -short mode")
	}
	env := tinyEnv(t)
	points, err := RunRouterThroughput(t.Context(), env, News)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	routerWire := 0.0
	for _, p := range points {
		seen[p.Topology] = true
		if p.QPS <= 0 || p.Queries <= 0 {
			t.Fatalf("implausible point %+v", p)
		}
		if p.Scatter < 0 || p.Scatter > 1 {
			t.Fatalf("scatter fraction out of range: %+v", p)
		}
		if p.Topology == "2-node router" {
			routerWire += p.WireKB
		} else if p.WireKB != 0 {
			t.Fatalf("local topology reports wire traffic: %+v", p)
		}
	}
	for _, want := range []string{"1-engine", "2-shard box", "2-node router"} {
		if !seen[want] {
			t.Fatalf("topology axis missing %q: %v", want, seen)
		}
	}
	if routerWire == 0 {
		t.Fatal("router arm moved no artifact bytes over the wire")
	}
}

// TestRouterThroughputCanceledCtx is the regression test for the detached
// context kbtim-lint's ctxflow analyzer flagged at the remote-node open:
// the router arm used to mint context.Background() for OpenIRR and the
// proxied POST, so a canceled caller could never stop the sweep. With the
// ctx threaded through, an already-canceled context must surface as an
// error instead of a completed run.
func TestRouterThroughputCanceledCtx(t *testing.T) {
	if testing.Short() {
		t.Skip("router sweep skipped in -short mode")
	}
	env := tinyEnv(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunRouterThroughput(ctx, env, News); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: got %v, want context.Canceled", err)
	}
}
