package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"kbtim/internal/codec"
	"kbtim/internal/diskio"
	"kbtim/internal/irrindex"
	"kbtim/internal/objcache"
	"kbtim/internal/prop"
	"kbtim/internal/shardmap"
	"kbtim/internal/topic"
	"kbtim/internal/wris"
)

// cacheMode is one point of the cache axis: which tier is enabled and with
// what budget. "off" reads and decodes everything per query; "byte" is the
// segment-byte LRU (skips the disk, still pays the decode); "object" is the
// sharded decoded-object cache with singleflight (skips the disk AND the
// decode). Par > 1 additionally enables per-query parallel artifact loading
// (speculative partition prefetch on the IRR path).
type cacheMode struct {
	Kind  string // "off" | "byte" | "object"
	Bytes int64
	Par   int // per-query artifact-load parallelism (0/1 = sequential)
}

func (m cacheMode) label() string {
	var base string
	switch {
	case m.Kind == "off":
		base = "off"
	case m.Bytes >= 1<<20:
		base = fmt.Sprintf("%s:%dMiB", m.Kind, m.Bytes>>20)
	default:
		base = fmt.Sprintf("%s:%dKiB", m.Kind, m.Bytes>>10)
	}
	if m.Par > 1 {
		base += fmt.Sprintf("+par%d", m.Par)
	}
	return base
}

// ThroughputPoint is one (cache mode, worker count) measurement of the
// multi-client serving experiment.
type ThroughputPoint struct {
	Family     Family
	CacheKind  string // "off" | "byte" | "object"
	CacheBytes int64
	QueryPar   int // per-query artifact-load parallelism
	Workers    int
	Queries    int
	Elapsed    time.Duration
	QPS        float64
	MeanMS     float64
	HitRate    float64 // cache hit rate across the run (0 when uncached)
	DiskReads  int64   // reads that actually reached the file
}

// throughputModes returns the cache axis (always starting at "off", the
// pre-cache baseline). Budgets are sized against the default indexes (tens
// of MB), and the byte and object tiers get the same budget so the
// comparison isolates WHAT is cached, not how much memory is spent.
func throughputModes(env *Env) []cacheMode {
	if env.Cfg.Full {
		return []cacheMode{
			{Kind: "off"},
			{Kind: "byte", Bytes: 8 << 20},
			{Kind: "byte", Bytes: 64 << 20},
			{Kind: "object", Bytes: 8 << 20},
			{Kind: "object", Bytes: 64 << 20},
			{Kind: "object", Bytes: 64 << 20, Par: 2},
		}
	}
	return []cacheMode{
		{Kind: "off"},
		{Kind: "byte", Bytes: 16 << 20},
		{Kind: "object", Bytes: 16 << 20},
		{Kind: "object", Bytes: 16 << 20, Par: 2},
	}
}

// throughputWorkers returns the closed-loop client sweep. The full 1→16
// curve runs in every configuration: the scaling shape (not one point) is
// what the sharded cache and scratch pooling exist for.
func throughputWorkers(env *Env) []int {
	return []int{1, 2, 4, 8, 16}
}

// RunThroughput measures queries/sec of ONE shared IRR index serving
// closed-loop workers (each worker issues its next query as soon as the
// previous one returns) across the cache and worker sweeps. The workload
// cycles a fixed query list, so it has the repeated-keyword locality a
// production ad server sees, and the cached rows report their hit rate.
func RunThroughput(env *Env, f Family) ([]ThroughputPoint, error) {
	_, ent, err := env.IRRIndex(f, env.defaultSize(f), wris.SizeTheta, codec.Delta, 0)
	if err != nil {
		return nil, err
	}
	// A short workload cycled several times per worker: advertisers re-ask
	// popular keywords, which is exactly the locality the caches target.
	queries, err := env.Queries(env.Cfg.QueriesPerPoint*2, env.Cfg.DefaultLen, env.Cfg.DefaultK)
	if err != nil {
		return nil, err
	}
	queriesPerWorker := 2 * len(queries)
	if env.Cfg.Full {
		queriesPerWorker = 4 * len(queries)
	}

	// Read the index through once up front so every configuration runs
	// against a uniformly warm OS page cache (the page cache is per-inode,
	// not per-handle, so later rows would otherwise benefit from pages the
	// earlier rows faulted in). The rows then differ only in cache-tier
	// state, which is what the sweep measures.
	if _, err := os.ReadFile(ent.path); err != nil {
		return nil, err
	}

	var points []ThroughputPoint
	for _, mode := range throughputModes(env) {
		// A fresh handle and cache per configuration keeps the rows' cache
		// state independent.
		file, err := diskio.Open(ent.path, diskio.NewCounter())
		if err != nil {
			return nil, err
		}
		var reader diskio.Segmented = file
		var byteCache *diskio.CachedReader
		if mode.Kind == "byte" {
			byteCache = diskio.NewCachedReader(file, mode.Bytes)
			reader = byteCache
		}
		idx, err := irrindex.Open(reader)
		if err != nil {
			file.Close()
			return nil, err
		}
		var objCache *objcache.Cache
		if mode.Kind == "object" {
			objCache = objcache.NewSharded(mode.Bytes, 0)
			idx.SetDecodedCache(objCache)
		}
		idx.SetQueryParallelism(mode.Par)
		for _, workers := range throughputWorkers(env) {
			if byteCache != nil {
				byteCache.Purge()
			}
			if objCache != nil {
				objCache.Purge()
			}
			file.Counter().Reset()
			var byteBefore diskio.CacheStats
			var objBefore objcache.Stats
			if byteCache != nil {
				byteBefore = byteCache.Stats() // Purge keeps counters; diff per row
			}
			if objCache != nil {
				objBefore = objCache.Stats()
			}
			point, err := runClosedLoop(idx.Query, queries, workers, queriesPerWorker)
			if err != nil {
				file.Close()
				return nil, err
			}
			point.Family = f
			point.CacheKind = mode.Kind
			point.CacheBytes = mode.Bytes
			point.QueryPar = mode.Par
			if byteCache != nil {
				after := byteCache.Stats()
				hits := after.Hits - byteBefore.Hits
				misses := after.Misses - byteBefore.Misses
				if hits+misses > 0 {
					point.HitRate = float64(hits) / float64(hits+misses)
				}
			}
			if objCache != nil {
				after := objCache.Stats()
				hits := after.Hits - objBefore.Hits + after.Shared - objBefore.Shared
				misses := after.Misses - objBefore.Misses
				if hits+misses > 0 {
					point.HitRate = float64(hits) / float64(hits+misses)
				}
			}
			point.DiskReads = file.Counter().Stats().Total()
			points = append(points, point)
		}
		if err := file.Close(); err != nil {
			return nil, err
		}
	}
	return points, nil
}

// runClosedLoop fires `workers` goroutines, each answering its share of the
// cycled workload back to back through `query`, and aggregates wall-clock
// throughput. The query func abstracts over one index (Index.Query) and a
// sharded deployment (irrindex.QueryMulti behind a shardmap).
func runClosedLoop(query func(topic.Query) (*irrindex.QueryResult, error), queries []topic.Query, workers, perWorker int) (ThroughputPoint, error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		totalNS  int64
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var localNS int64
			for i := 0; i < perWorker; i++ {
				// Stagger each worker's position in the cycled workload so
				// concurrent clients ask *different* queries at any instant
				// (all-lockstep identical requests would flatter the cache).
				q := queries[(w+i)%len(queries)]
				res, err := query(q)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				localNS += res.Elapsed.Nanoseconds()
			}
			mu.Lock()
			totalNS += localNS
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return ThroughputPoint{}, firstErr
	}
	n := workers * perWorker
	return ThroughputPoint{
		Workers: workers,
		Queries: n,
		Elapsed: elapsed,
		QPS:     float64(n) / elapsed.Seconds(),
		MeanMS:  float64(totalNS) / float64(n) / 1e6,
	}, nil
}

// ShardedThroughputPoint is one (shard count, worker count) measurement of
// the multi-engine serving experiment.
type ShardedThroughputPoint struct {
	Family  Family
	Shards  int
	Workers int
	Queries int
	Scatter float64 // fraction of queries that spanned > 1 shard
	Elapsed time.Duration
	QPS     float64
	MeanMS  float64
}

// shardedShardCounts is the engine-shard axis (the kbtim-serve -shards
// topology, one box).
func shardedShardCounts(env *Env) []int { return []int{1, 2, 4} }

// shardedWorkers trims the closed-loop sweep: the shards axis is about how
// partitioning moves the concurrency curve, so three points suffice.
func shardedWorkers(env *Env) []int { return []int{1, 4, 16} }

// RunShardedThroughput measures queries/sec of a keyword-sharded
// multi-engine deployment (the kbtim-serve -shards topology): the keyword
// universe is hash-partitioned across N per-shard IRR indexes, each with
// its own file handle and its 1/N split of one global decoded-cache budget,
// and every query is routed through the shard map — single-index call when
// its topics co-locate, exact cross-shard merge otherwise. Results are
// identical across the axis (the parity tests pin that); this experiment
// reports what the topology does to throughput.
func RunShardedThroughput(env *Env, f Family) ([]ShardedThroughputPoint, error) {
	g, prof, err := env.Dataset(f, env.defaultSize(f))
	if err != nil {
		return nil, err
	}
	queries, err := env.Queries(env.Cfg.QueriesPerPoint*2, env.Cfg.DefaultLen, env.Cfg.DefaultK)
	if err != nil {
		return nil, err
	}
	queriesPerWorker := 2 * len(queries)
	var universe []int
	for t := 0; t < prof.NumTopics(); t++ {
		if prof.TFSum(t) > 0 {
			universe = append(universe, t)
		}
	}
	const cacheBudget = 16 << 20 // split across shards: memory held constant

	var points []ShardedThroughputPoint
	for _, shards := range shardedShardCounts(env) {
		sm, err := shardmap.New(shards, shardmap.Hash, prof.NumTopics())
		if err != nil {
			return nil, err
		}
		parts := sm.Partition(universe)
		shardIdx := make([]*irrindex.Index, shards)
		var files []*diskio.File
		closeFiles := func() {
			for _, fo := range files {
				fo.Close()
			}
		}
		for s, part := range parts {
			if len(part) == 0 {
				continue
			}
			path := filepath.Join(env.dir, fmt.Sprintf("shard-%s-%dof%d.idx", f, s, shards))
			fo, err := os.Create(path)
			if err != nil {
				closeFiles()
				return nil, err
			}
			_, berr := irrindex.Build(fo, g, prop.IC{}, prof, env.wrisConfig(), irrindex.BuildOptions{
				Compression:   codec.Delta,
				PartitionSize: env.Cfg.PartitionSize,
				Topics:        part,
			})
			if cerr := fo.Close(); berr == nil {
				berr = cerr
			}
			if berr != nil {
				closeFiles()
				return nil, berr
			}
			file, err := diskio.Open(path, diskio.NewCounter())
			if err != nil {
				closeFiles()
				return nil, err
			}
			files = append(files, file)
			idx, err := irrindex.Open(file)
			if err != nil {
				closeFiles()
				return nil, err
			}
			idx.SetDecodedCache(objcache.NewSharded(cacheBudget/int64(shards), 0))
			shardIdx[s] = idx
		}
		owner := func(w int) *irrindex.Index {
			if w < 0 || w >= prof.NumTopics() {
				return nil
			}
			return shardIdx[sm.Owner(w)]
		}
		scattered := 0
		for _, q := range queries {
			if len(sm.Shards(q.Topics)) > 1 {
				scattered++
			}
		}
		query := func(q topic.Query) (*irrindex.QueryResult, error) {
			return irrindex.QueryMulti(owner, q)
		}
		for _, workers := range shardedWorkers(env) {
			point, err := runClosedLoop(query, queries, workers, queriesPerWorker)
			if err != nil {
				closeFiles()
				return nil, err
			}
			points = append(points, ShardedThroughputPoint{
				Family:  f,
				Shards:  shards,
				Workers: workers,
				Queries: point.Queries,
				Scatter: float64(scattered) / float64(len(queries)),
				Elapsed: point.Elapsed,
				QPS:     point.QPS,
				MeanMS:  point.MeanMS,
			})
		}
		closeFiles()
	}
	return points, nil
}

// ShardedThroughput renders the multi-engine serving experiment: q/s vs
// engine-shard count (1/2/4, hash-partitioned keywords, constant total
// cache memory) vs closed-loop workers. Quick mode covers the News family;
// full mode adds Twitter.
func ShardedThroughput(ctx context.Context, w io.Writer, env *Env) error {
	t := newTable("Sharded serving: hash-partitioned engines under closed-loop clients",
		"dataset", "shards", "workers", "queries", "scatter", "q/s", "mean-ms")
	families := []Family{News}
	if env.Cfg.Full {
		families = []Family{News, Twitter}
	}
	for _, f := range families {
		points, err := RunShardedThroughput(env, f)
		if err != nil {
			return err
		}
		for _, p := range points {
			t.add(string(f), p.Shards, p.Workers, p.Queries,
				fmt.Sprintf("%.2f", p.Scatter),
				fmt.Sprintf("%.1f", p.QPS), fmt.Sprintf("%.2f", p.MeanMS))
		}
	}
	t.addf("(scatter = fraction of queries spanning >1 shard; results are identical across the axis, only cost moves)")
	return t.write(w)
}

// Throughput renders the multi-client serving experiment: queries/sec of
// one shared IRR index vs. closed-loop worker count vs. cache tier (none,
// byte-level segments, decoded objects). This is the post-paper scaling
// axis: §6 measures single-query latency, while a production ad platform
// serves many advertisers at once.
func Throughput(ctx context.Context, w io.Writer, env *Env) error {
	t := newTable("Throughput: shared IRR index under concurrent closed-loop clients",
		"dataset", "cache", "workers", "queries", "q/s", "mean-ms", "hit-rate", "disk-reads")
	for _, f := range []Family{News, Twitter} {
		points, err := RunThroughput(env, f)
		if err != nil {
			return err
		}
		for _, p := range points {
			t.add(string(f), cacheMode{Kind: p.CacheKind, Bytes: p.CacheBytes, Par: p.QueryPar}.label(),
				p.Workers, p.Queries,
				fmt.Sprintf("%.1f", p.QPS), fmt.Sprintf("%.2f", p.MeanMS),
				fmt.Sprintf("%.2f", p.HitRate), p.DiskReads)
		}
	}
	t.addf("(closed loop: every worker keeps one query in flight; byte hits skip the disk, object hits skip the disk and the decode)")
	return t.write(w)
}
