package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"kbtim/internal/codec"
	"kbtim/internal/diskio"
	"kbtim/internal/irrindex"
	"kbtim/internal/objcache"
	"kbtim/internal/prop"
	"kbtim/internal/remote"
	"kbtim/internal/shardmap"
	"kbtim/internal/topic"
	"kbtim/internal/wris"
)

// RouterThroughputPoint is one (topology, worker count) measurement of the
// cross-node serving experiment.
type RouterThroughputPoint struct {
	Family Family
	// Topology is "1-engine" (one local index), "2-shard box" (in-process
	// scatter-gather over two local shard indexes), or "2-node router"
	// (two HTTP nodes: co-located queries proxied whole, spanning queries
	// merged locally with artifact fetches over the wire).
	Topology string
	Workers  int
	Queries  int
	// Scatter is the fraction of workload queries spanning both shards
	// (identical across topologies; only its cost moves).
	Scatter float64
	QPS     float64
	MeanMS  float64
	// WireKB is the artifact payload the router pulled over HTTP during
	// this point (zero for the local topologies; proxied query traffic is
	// not artifact wire and is excluded).
	WireKB float64
	// RoundTripsPerQuery is the mean artifact wire requests (batch POSTs and
	// per-unit GETs alike) per query of this point — the latency currency
	// batching spends down: per-unit fetching pays one round trip per
	// keyword-partition, batching one per backend per planning round.
	RoundTripsPerQuery float64
}

// routerWorkers is the closed-loop client sweep of the router experiment.
func routerWorkers(env *Env) []int { return []int{1, 4, 16} }

// benchNode is one in-process "remote" node of the router arm: a local
// shard index served over httptest with the real artifact protocol plus a
// minimal /query endpoint for the proxied fast path.
type benchNode struct {
	srv    *httptest.Server
	client *remote.Client
	remote *irrindex.Index
}

// benchQueryHandler answers the proxied fast path over one local index —
// the minimal stand-in for a kbtim-serve node's /query.
func benchQueryHandler(idx *irrindex.Index) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Topics []int `json:"topics"`
			K      int   `json:"k"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := idx.Query(topic.Query{Topics: req.Topics, K: req.K})
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"seeds": res.Seeds, "est_spread": res.EstSpread,
			"num_rr_sets": res.NumRRSets, "partitions_loaded": res.PartitionsLoaded,
		})
	}
}

// RunRouterThroughput measures queries/sec of the same workload over three
// topologies at CONSTANT total decoded-cache budget: one engine (full
// index, whole budget), an in-process 2-shard box (half budget per shard),
// and a 2-node HTTP router (half budget per node on the ROUTER side,
// fronting the wire the way a serve-side cache fronts the disk). Results
// are identical across the axis — the parity tests pin that — so the
// experiment isolates what crossing process and network boundaries costs,
// and what the artifact cache buys back.
func RunRouterThroughput(ctx context.Context, env *Env, f Family) ([]RouterThroughputPoint, error) {
	g, prof, err := env.Dataset(f, env.defaultSize(f))
	if err != nil {
		return nil, err
	}
	queries, err := env.Queries(env.Cfg.QueriesPerPoint*2, env.Cfg.DefaultLen, env.Cfg.DefaultK)
	if err != nil {
		return nil, err
	}
	queriesPerWorker := 2 * len(queries)
	var universe []int
	for t := 0; t < prof.NumTopics(); t++ {
		if prof.TFSum(t) > 0 {
			universe = append(universe, t)
		}
	}
	const cacheBudget = 16 << 20
	const shards = 2

	sm, err := shardmap.New(shards, shardmap.Hash, prof.NumTopics())
	if err != nil {
		return nil, err
	}
	parts := sm.Partition(universe)
	scattered := 0
	for _, q := range queries {
		if len(sm.Shards(q.Topics)) > 1 {
			scattered++
		}
	}
	scatter := float64(scattered) / float64(len(queries))

	// buildIRR builds one IRR index over the given topics (nil = all) and
	// opens it with the given decoded-cache budget (0 = none).
	var files []*diskio.File
	closeFiles := func() {
		for _, fo := range files {
			fo.Close()
		}
	}
	buildIRR := func(name string, topics []int, cache int64) (*irrindex.Index, error) {
		path := filepath.Join(env.dir, fmt.Sprintf("router-%s-%s.idx", f, name))
		fo, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		_, berr := irrindex.Build(fo, g, prop.IC{}, prof, env.wrisConfig(), irrindex.BuildOptions{
			Compression:   codec.Delta,
			PartitionSize: env.Cfg.PartitionSize,
			Topics:        topics,
		})
		if cerr := fo.Close(); berr == nil {
			berr = cerr
		}
		if berr != nil {
			return nil, berr
		}
		file, err := diskio.Open(path, diskio.NewCounter())
		if err != nil {
			return nil, err
		}
		files = append(files, file)
		idx, err := irrindex.Open(file)
		if err != nil {
			return nil, err
		}
		if cache > 0 {
			idx.SetDecodedCache(objcache.NewSharded(cache, 0))
		}
		return idx, nil
	}
	defer closeFiles()

	var points []RouterThroughputPoint
	addPoints := func(topology string, query func(topic.Query) (*irrindex.QueryResult, error), wire func() (bytes, trips float64)) error {
		for _, workers := range routerWorkers(env) {
			beforeB, beforeT := 0.0, 0.0
			if wire != nil {
				beforeB, beforeT = wire()
			}
			p, err := runClosedLoop(query, queries, workers, queriesPerWorker)
			if err != nil {
				return err
			}
			pt := RouterThroughputPoint{
				Family: f, Topology: topology, Workers: workers,
				Queries: p.Queries, Scatter: scatter, QPS: p.QPS, MeanMS: p.MeanMS,
			}
			if wire != nil {
				afterB, afterT := wire()
				pt.WireKB = (afterB - beforeB) / 1024
				if p.Queries > 0 {
					pt.RoundTripsPerQuery = (afterT - beforeT) / float64(p.Queries)
				}
			}
			points = append(points, pt)
		}
		return nil
	}

	// Topology 1: one engine, one full index, the whole cache budget.
	full, err := buildIRR("full", nil, cacheBudget)
	if err != nil {
		return nil, err
	}
	if err := addPoints("1-engine", func(q topic.Query) (*irrindex.QueryResult, error) {
		return full.QueryCtx(ctx, q)
	}, nil); err != nil {
		return nil, err
	}

	// Topology 2: in-process 2-shard box (PR 4's Sharded data plane).
	boxIdx := make([]*irrindex.Index, shards)
	for s, part := range parts {
		if len(part) == 0 {
			continue
		}
		if boxIdx[s], err = buildIRR(fmt.Sprintf("box%d", s), part, cacheBudget/shards); err != nil {
			return nil, err
		}
	}
	boxOwner := func(w int) *irrindex.Index {
		if w < 0 || w >= prof.NumTopics() {
			return nil
		}
		return boxIdx[sm.Owner(w)]
	}
	if err := addPoints("2-shard box", func(q topic.Query) (*irrindex.QueryResult, error) {
		return irrindex.QueryMultiCtx(ctx, boxOwner, q)
	}, nil); err != nil {
		return nil, err
	}

	// Topology 3: 2-node HTTP router. Each node serves its shard index
	// (no node-side decoded cache: the budget lives router-side, keeping
	// the total constant) over the real artifact protocol + a /query
	// endpoint; the router proxies co-located queries and scatter-merges
	// spanning ones over remote-backed indexes.
	nodes := make([]*benchNode, shards)
	for s, part := range parts {
		if len(part) == 0 {
			continue
		}
		servedIdx, err := buildIRR(fmt.Sprintf("node%d", s), part, 0)
		if err != nil {
			return nil, err
		}
		mux := http.NewServeMux()
		src := remote.IndexSource{IRR: servedIdx}
		mux.Handle(remote.ArtifactPath, remote.NewHandler(src))
		mux.Handle(remote.BatchPath, remote.NewBatchHandler(src))
		mux.Handle("/query", benchQueryHandler(servedIdx))
		srv := httptest.NewServer(mux)
		defer srv.Close()
		client := remote.NewClient(srv.URL, nil)
		// Open through a (single-replica) Group so the benchmark walks the
		// production failover fetch path, pricing its overhead into the arm.
		rIdx, err := remote.NewGroup([]*remote.Client{client}, nil).OpenIRR(ctx)
		if err != nil {
			return nil, err
		}
		rIdx.SetDecodedCache(objcache.NewSharded(cacheBudget/shards, 0))
		// Match the real router's default query parallelism: it also arms
		// the speculative batch lookahead, so spanning queries plan multi-
		// round chunks instead of one round trip per partition step.
		rIdx.SetQueryParallelism(2)
		nodes[s] = &benchNode{srv: srv, client: client, remote: rIdx}
	}
	remoteOwner := func(w int) *irrindex.Index {
		if w < 0 || w >= prof.NumTopics() {
			return nil
		}
		return nodes[sm.Owner(w)].remote
	}
	hc := &http.Client{Timeout: 60 * time.Second}
	routerQuery := func(q topic.Query) (*irrindex.QueryResult, error) {
		owners := sm.Shards(q.Topics)
		if len(owners) > 1 {
			return irrindex.QueryMultiCtx(ctx, remoteOwner, q)
		}
		// Co-located fast path: proxy the whole query to the owning node.
		t0 := time.Now()
		body, err := json.Marshal(map[string]any{"topics": q.Topics, "k": q.K})
		if err != nil {
			return nil, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			nodes[owners[0]].srv.URL+"/query", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := hc.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return nil, fmt.Errorf("proxied query: %s: %s", resp.Status, msg)
		}
		var qr struct {
			Seeds            []uint32 `json:"seeds"`
			EstSpread        float64  `json:"est_spread"`
			NumRRSets        int      `json:"num_rr_sets"`
			PartitionsLoaded int      `json:"partitions_loaded"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			return nil, err
		}
		return &irrindex.QueryResult{
			Result: wris.Result{
				Seeds:     qr.Seeds,
				EstSpread: qr.EstSpread,
				NumRRSets: qr.NumRRSets,
				Elapsed:   time.Since(t0),
			},
			PartitionsLoaded: qr.PartitionsLoaded,
		}, nil
	}
	wireStats := func() (bytes, trips float64) {
		for _, n := range nodes {
			if n != nil {
				ws := n.client.Stats()
				bytes += float64(ws.Bytes)
				trips += float64(ws.Fetches)
			}
		}
		return bytes, trips
	}
	if err := addPoints("2-node router", routerQuery, wireStats); err != nil {
		return nil, err
	}
	return points, nil
}

// RouterThroughput prints the cross-node serving experiment.
func RouterThroughput(ctx context.Context, w io.Writer, env *Env) error {
	t := newTable("Router serving: one engine vs in-process shards vs 2-node HTTP router",
		"dataset", "topology", "workers", "queries", "scatter", "q/s", "mean-ms", "wire-KB", "rt/q")
	families := []Family{News}
	if env.Cfg.Full {
		families = []Family{News, Twitter}
	}
	for _, f := range families {
		points, err := RunRouterThroughput(ctx, env, f)
		if err != nil {
			return err
		}
		for _, p := range points {
			t.add(string(f), p.Topology, p.Workers, p.Queries,
				fmt.Sprintf("%.2f", p.Scatter),
				fmt.Sprintf("%.1f", p.QPS), fmt.Sprintf("%.2f", p.MeanMS),
				fmt.Sprintf("%.0f", p.WireKB), fmt.Sprintf("%.1f", p.RoundTripsPerQuery))
		}
	}
	t.addf("(constant 16 MiB total decoded cache per topology; wire-KB = artifact bytes the router fetched; rt/q = artifact wire round trips per query; results identical across topologies)")
	return t.write(w)
}
