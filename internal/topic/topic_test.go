package topic

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"kbtim/internal/rng"
)

// tiny builds a 4-user, 3-topic store with known weights.
func tiny(t testing.TB) *Profiles {
	t.Helper()
	b := NewBuilder(4, 3)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(b.Set(0, 0, 0.5)) // user 0: topic0=0.5, topic1=0.5
	must(b.Set(0, 1, 0.5))
	must(b.Set(1, 0, 0.3)) // user 1: topic0=0.3, topic2=0.7
	must(b.Set(1, 2, 0.7))
	must(b.Set(2, 1, 1.0)) // user 2: topic1=1.0
	// user 3: empty profile
	return b.Build()
}

func TestTFLookup(t *testing.T) {
	p := tiny(t)
	cases := []struct {
		user  uint32
		topic int
		want  float64
	}{
		{0, 0, 0.5}, {0, 1, 0.5}, {0, 2, 0},
		{1, 0, 0.3}, {1, 2, 0.7},
		{2, 1, 1.0}, {2, 0, 0},
		{3, 0, 0}, {3, 1, 0}, {3, 2, 0},
	}
	for _, c := range cases {
		if got := p.TF(c.user, c.topic); got != c.want {
			t.Errorf("TF(%d,%d) = %v, want %v", c.user, c.topic, got, c.want)
		}
	}
}

func TestAggregates(t *testing.T) {
	p := tiny(t)
	if got := p.TFSum(0); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("TFSum(0) = %v, want 0.8", got)
	}
	if got := p.DF(0); got != 2 {
		t.Errorf("DF(0) = %d, want 2", got)
	}
	wantIDF := math.Log(1 + 4.0/2.0)
	if got := p.IDF(0); math.Abs(got-wantIDF) > 1e-12 {
		t.Errorf("IDF(0) = %v, want %v", got, wantIDF)
	}
	if got := p.Phi(0); math.Abs(got-0.8*wantIDF) > 1e-12 {
		t.Errorf("Phi(0) = %v", got)
	}
	// Topic never used: zero everything.
	b := NewBuilder(4, 5)
	_ = b.Set(0, 0, 1)
	p2 := b.Build()
	if p2.IDF(4) != 0 || p2.Phi(4) != 0 || p2.DF(4) != 0 {
		t.Error("unused topic has nonzero stats")
	}
}

func TestScoreAndPhiQ(t *testing.T) {
	p := tiny(t)
	q := Query{Topics: []int{0, 1}, K: 2}
	want := 0.5*p.IDF(0) + 0.5*p.IDF(1)
	if got := p.Score(0, q); math.Abs(got-want) > 1e-12 {
		t.Errorf("Score(0,Q) = %v, want %v", got, want)
	}
	// φ_Q equals both the per-user sum and the per-keyword sum.
	var byUser float64
	for u := uint32(0); u < 4; u++ {
		byUser += p.Score(u, q)
	}
	if got := p.PhiQ(q); math.Abs(got-byUser) > 1e-12 {
		t.Errorf("PhiQ = %v, per-user sum %v", got, byUser)
	}
}

func TestMixtureIdentity(t *testing.T) {
	// Eqn 7: Σ_{w∈Q.T} ps(v,w)·p_w = ps(v,Q), for every user, on random
	// profile stores.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		nUsers := src.Intn(30) + 2
		nTopics := src.Intn(6) + 2
		b := NewBuilder(nUsers, nTopics)
		for i := 0; i < nUsers*2; i++ {
			_ = b.Set(uint32(src.Intn(nUsers)), src.Intn(nTopics), src.Float64()+0.05)
		}
		p := b.Build()
		// Build a query from all topics with positive mass.
		var topics []int
		for w := 0; w < nTopics; w++ {
			if p.TFSum(w) > 0 {
				topics = append(topics, w)
			}
		}
		if len(topics) == 0 {
			return true
		}
		q := Query{Topics: topics, K: 1}
		for u := uint32(0); u < uint32(nUsers); u++ {
			var mix float64
			for _, w := range topics {
				mix += p.PSvw(u, w) * p.PW(w, q)
			}
			if math.Abs(mix-p.PSvQ(u, q)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPSNormalization(t *testing.T) {
	p := tiny(t)
	for w := 0; w < 3; w++ {
		var sum float64
		for u := uint32(0); u < 4; u++ {
			sum += p.PSvw(u, w)
		}
		if p.TFSum(w) > 0 && math.Abs(sum-1) > 1e-12 {
			t.Errorf("Σ_v ps(v,%d) = %v, want 1", w, sum)
		}
	}
	q := Query{Topics: []int{0, 1, 2}, K: 1}
	var sum float64
	for u := uint32(0); u < 4; u++ {
		sum += p.PSvQ(u, q)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("Σ_v ps(v,Q) = %v, want 1", sum)
	}
}

func TestDuplicateSetSums(t *testing.T) {
	b := NewBuilder(1, 1)
	_ = b.Set(0, 0, 0.25)
	_ = b.Set(0, 0, 0.25)
	p := b.Build()
	if got := p.TF(0, 0); got != 0.5 {
		t.Fatalf("duplicate Set: TF = %v, want 0.5", got)
	}
	if p.DF(0) != 1 {
		t.Fatalf("duplicate Set inflated DF: %d", p.DF(0))
	}
}

func TestSetRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(2, 2)
	if err := b.Set(2, 0, 1); err == nil {
		t.Fatal("out-of-range user accepted")
	}
	if err := b.Set(0, 2, 1); err == nil {
		t.Fatal("out-of-range topic accepted")
	}
	if err := b.Set(0, 0, -1); err != nil {
		t.Fatal("negative tf should be silently ignored, not error")
	}
	if err := b.Set(0, 0, math.NaN()); err != nil {
		t.Fatal("NaN tf should be silently ignored")
	}
	p := b.Build()
	if p.TF(0, 0) != 0 {
		t.Fatal("ignored weights leaked into store")
	}
}

func TestQueryValidate(t *testing.T) {
	if err := (Query{Topics: []int{0}, K: 1}).Validate(3); err != nil {
		t.Fatal(err)
	}
	bad := []Query{
		{Topics: []int{0}, K: 0},
		{Topics: nil, K: 1},
		{Topics: []int{3}, K: 1},
		{Topics: []int{-1}, K: 1},
		{Topics: []int{0, 0}, K: 1},
	}
	for i, q := range bad {
		if err := q.Validate(3); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

func TestPostingsSorted(t *testing.T) {
	p := tiny(t)
	for w := 0; w < 3; w++ {
		entries := p.Postings(w)
		for i := 1; i < len(entries); i++ {
			if entries[i-1].User >= entries[i].User {
				t.Fatalf("postings for %d not strictly sorted", w)
			}
		}
	}
	if len(p.Postings(1)) != 2 {
		t.Fatalf("postings(1) length %d, want 2", len(p.Postings(1)))
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	p := tiny(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, p); err != nil {
		t.Fatal(err)
	}
	p2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p2.NumUsers() != p.NumUsers() || p2.NumTopics() != p.NumTopics() {
		t.Fatal("dimensions changed in round trip")
	}
	for u := uint32(0); u < 4; u++ {
		for w := 0; w < 3; w++ {
			if p.TF(u, w) != p2.TF(u, w) {
				t.Fatalf("TF(%d,%d) changed: %v vs %v", u, w, p.TF(u, w), p2.TF(u, w))
			}
		}
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	p := tiny(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, p); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOPE"), data[4:]...),
		"truncated": data[:len(data)-5],
	}
	for name, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
