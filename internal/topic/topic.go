// Package topic implements the advertisement-targeting model of KB-TIM §3.1:
// every user carries a weighted term vector over a universal topic space T,
// an advertisement is a keyword set Q.T ⊆ T, and the impact of the ad on a
// user v is the tf-idf score φ(v,Q) = Σ_{w∈Q.T} tf_{w,v}·idf_w (Eqn 1).
//
// The package also precomputes the per-keyword quantities the samplers and
// indexes need:
//
//	TFSum(w)  = Σ_v tf_{w,v}              (the mass in Lemma 3/4's θ formulas)
//	Phi(w)    = Σ_v tf_{w,v}·idf_w        (φ_w of Table 1)
//	PhiQ(Q)   = Σ_{w∈Q.T} φ_w             (φ_Q; valid because profiles are
//	                                       summed per keyword)
//	PW(w, Q)  = φ_w / φ_Q                 (mixture weight p_w, Eqn 7)
//	PSvw      = tf_{w,v} / TFSum(w)       (per-keyword sampling ps(v,w))
package topic

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Query is a KB-TIM query Q = (Q.T, Q.k): the advertisement's keyword set
// and the seed budget (Definition 3).
type Query struct {
	Topics []int // Q.T, distinct topic IDs
	K      int   // Q.k, number of seeds
}

// Validate checks the query against a topic space of the given size.
func (q Query) Validate(numTopics int) error {
	if q.K <= 0 {
		return fmt.Errorf("topic: query k must be positive, got %d", q.K)
	}
	if len(q.Topics) == 0 {
		return errors.New("topic: query needs at least one keyword")
	}
	seen := map[int]bool{}
	for _, w := range q.Topics {
		if w < 0 || w >= numTopics {
			return fmt.Errorf("topic: keyword %d outside topic space [0,%d)", w, numTopics)
		}
		if seen[w] {
			return fmt.Errorf("topic: duplicate keyword %d", w)
		}
		seen[w] = true
	}
	return nil
}

// Entry is a (user, tf) pair in a keyword's postings.
type Entry struct {
	User uint32
	TF   float64
}

// Profiles is the immutable user-profile store. It maintains both views:
// per-user sparse term vectors (for scoring φ(v,Q)) and per-keyword postings
// (for offline per-keyword sampling).
type Profiles struct {
	numUsers  int
	numTopics int

	// Per-user CSR: topics/tfs for user u live at [userOff[u], userOff[u+1]).
	userOff    []int64
	userTopics []int32
	userTFs    []float64

	// Per-keyword postings sorted by user ID.
	postings [][]Entry

	tfSum []float64 // Σ_v tf_{w,v}
	df    []int     // document frequency per topic
	idf   []float64 // idf_w
}

// Builder accumulates (user, topic, tf) triples.
type Builder struct {
	numUsers  int
	numTopics int
	rows      []builderRow
}

type builderRow struct {
	user  uint32
	topic int32
	tf    float64
}

// NewBuilder creates a profile builder over numUsers users and numTopics
// topics.
func NewBuilder(numUsers, numTopics int) *Builder {
	if numUsers < 0 || numTopics <= 0 {
		panic("topic: invalid builder dimensions")
	}
	return &Builder{numUsers: numUsers, numTopics: numTopics}
}

// Set records the preference weight tf of user for topic. Non-positive
// weights are ignored (absent topics have tf 0 implicitly). Setting the same
// (user, topic) twice sums the weights.
func (b *Builder) Set(user uint32, topicID int, tf float64) error {
	if int(user) >= b.numUsers {
		return fmt.Errorf("topic: user %d out of range", user)
	}
	if topicID < 0 || topicID >= b.numTopics {
		return fmt.Errorf("topic: topic %d out of range", topicID)
	}
	if tf <= 0 || math.IsNaN(tf) || math.IsInf(tf, 0) {
		return nil
	}
	b.rows = append(b.rows, builderRow{user: user, topic: int32(topicID), tf: tf})
	return nil
}

// Build finalizes the store, computing idf_w = ln(1 + |V|/df_w). The "+1"
// smoothing keeps idf finite and positive even for topics covering every
// user; topics with df = 0 get idf 0 and mass 0, so queries touching them
// contribute nothing (the paper only queries topics that occur).
func (b *Builder) Build() *Profiles {
	// Merge duplicates: sort by (user, topic) and fold.
	sort.Slice(b.rows, func(i, j int) bool {
		if b.rows[i].user != b.rows[j].user {
			return b.rows[i].user < b.rows[j].user
		}
		return b.rows[i].topic < b.rows[j].topic
	})
	merged := b.rows[:0]
	for _, r := range b.rows {
		if n := len(merged); n > 0 && merged[n-1].user == r.user && merged[n-1].topic == r.topic {
			merged[n-1].tf += r.tf
			continue
		}
		merged = append(merged, r)
	}

	p := &Profiles{
		numUsers:   b.numUsers,
		numTopics:  b.numTopics,
		userOff:    make([]int64, b.numUsers+1),
		userTopics: make([]int32, len(merged)),
		userTFs:    make([]float64, len(merged)),
		postings:   make([][]Entry, b.numTopics),
		tfSum:      make([]float64, b.numTopics),
		df:         make([]int, b.numTopics),
		idf:        make([]float64, b.numTopics),
	}
	for _, r := range merged {
		p.userOff[r.user+1]++
	}
	for u := 0; u < b.numUsers; u++ {
		p.userOff[u+1] += p.userOff[u]
	}
	cur := make([]int64, b.numUsers)
	for _, r := range merged {
		i := p.userOff[r.user] + cur[r.user]
		cur[r.user]++
		p.userTopics[i] = r.topic
		p.userTFs[i] = r.tf
		p.postings[r.topic] = append(p.postings[r.topic], Entry{User: r.user, TF: r.tf})
		p.tfSum[r.topic] += r.tf
		p.df[r.topic]++
	}
	for w := 0; w < b.numTopics; w++ {
		if p.df[w] > 0 {
			p.idf[w] = math.Log(1 + float64(b.numUsers)/float64(p.df[w]))
		}
	}
	return p
}

// NumUsers returns |V| as known to the profile store.
func (p *Profiles) NumUsers() int { return p.numUsers }

// NumTopics returns |T|.
func (p *Profiles) NumTopics() int { return p.numTopics }

// TF returns tf_{w,v}, 0 when the user has no preference for the topic.
func (p *Profiles) TF(user uint32, topicID int) float64 {
	lo, hi := p.userOff[user], p.userOff[user+1]
	topics := p.userTopics[lo:hi]
	i := sort.Search(len(topics), func(i int) bool { return topics[i] >= int32(topicID) })
	if i < len(topics) && topics[i] == int32(topicID) {
		return p.userTFs[lo+int64(i)]
	}
	return 0
}

// UserTopics returns the user's sparse term vector as parallel slices
// (topics ascending). The slices alias internal storage.
func (p *Profiles) UserTopics(user uint32) ([]int32, []float64) {
	lo, hi := p.userOff[user], p.userOff[user+1]
	return p.userTopics[lo:hi], p.userTFs[lo:hi]
}

// IDF returns idf_w.
func (p *Profiles) IDF(topicID int) float64 { return p.idf[topicID] }

// DF returns the number of users with tf_{w,v} > 0.
func (p *Profiles) DF(topicID int) int { return p.df[topicID] }

// TFSum returns Σ_v tf_{w,v}, the un-idf'd keyword mass used by Lemmas 3–4.
func (p *Profiles) TFSum(topicID int) float64 { return p.tfSum[topicID] }

// Phi returns φ_w = Σ_v tf_{w,v}·idf_w (Table 1).
func (p *Profiles) Phi(topicID int) float64 { return p.tfSum[topicID] * p.idf[topicID] }

// Postings returns the keyword's postings list, sorted by user ID. The slice
// aliases internal storage.
func (p *Profiles) Postings(topicID int) []Entry { return p.postings[topicID] }

// Score returns φ(v,Q) = Σ_{w∈Q.T} tf_{w,v}·idf_w (Eqn 1).
func (p *Profiles) Score(user uint32, q Query) float64 {
	var s float64
	for _, w := range q.Topics {
		if tf := p.TF(user, w); tf > 0 {
			s += tf * p.idf[w]
		}
	}
	return s
}

// PhiQ returns φ_Q = Σ_v φ(v,Q) = Σ_{w∈Q.T} φ_w.
func (p *Profiles) PhiQ(q Query) float64 {
	var s float64
	for _, w := range q.Topics {
		s += p.Phi(w)
	}
	return s
}

// PW returns the mixture weight p_w = φ_w / φ_Q for keyword w within query q
// (Eqn 7). It returns 0 when φ_Q is 0.
func (p *Profiles) PW(topicID int, q Query) float64 {
	phiQ := p.PhiQ(q)
	if phiQ == 0 {
		return 0
	}
	return p.Phi(topicID) / phiQ
}

// PSvw returns the per-keyword sampling probability ps(v,w) =
// tf_{w,v} / Σ_v tf_{w,v}. It returns 0 when the keyword has no mass.
func (p *Profiles) PSvw(user uint32, topicID int) float64 {
	if p.tfSum[topicID] == 0 {
		return 0
	}
	return p.TF(user, topicID) / p.tfSum[topicID]
}

// PSvQ returns the query-conditioned sampling probability ps(v,Q) =
// φ(v,Q)/φ_Q (Eqn 3).
func (p *Profiles) PSvQ(user uint32, q Query) float64 {
	phiQ := p.PhiQ(q)
	if phiQ == 0 {
		return 0
	}
	return p.Score(user, q) / phiQ
}
