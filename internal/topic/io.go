package topic

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary profile format:
//
//	magic "KBTP" | version uint32 | numUsers uint64 | numTopics uint32 |
//	numEntries uint64 | numEntries × (user uint32, topic uint32, tf float64).
const (
	profileMagic   = "KBTP"
	profileVersion = 1
)

// ErrBadFormat reports a malformed or corrupt profile file.
var ErrBadFormat = errors.New("topic: bad file format")

// WriteBinary serializes the profile store.
func WriteBinary(w io.Writer, p *Profiles) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(profileMagic); err != nil {
		return err
	}
	var entries uint64
	for u := 0; u < p.numUsers; u++ {
		entries += uint64(p.userOff[u+1] - p.userOff[u])
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], profileVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(p.numUsers))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(p.numTopics))
	binary.LittleEndian.PutUint64(hdr[16:24], entries)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [16]byte
	for u := 0; u < p.numUsers; u++ {
		topics, tfs := p.UserTopics(uint32(u))
		for i := range topics {
			binary.LittleEndian.PutUint32(rec[0:4], uint32(u))
			binary.LittleEndian.PutUint32(rec[4:8], uint32(topics[i]))
			binary.LittleEndian.PutUint64(rec[8:16], math.Float64bits(tfs[i]))
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses a profile store written by WriteBinary.
func ReadBinary(r io.Reader) (*Profiles, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(magic) != profileMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic)
	}
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadFormat)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v != profileVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	numUsers := binary.LittleEndian.Uint64(hdr[4:12])
	numTopics := binary.LittleEndian.Uint32(hdr[12:16])
	entries := binary.LittleEndian.Uint64(hdr[16:24])
	const maxReasonable = 1 << 33
	if numUsers > maxReasonable || entries > maxReasonable || numTopics == 0 {
		return nil, fmt.Errorf("%w: implausible header", ErrBadFormat)
	}
	b := NewBuilder(int(numUsers), int(numTopics))
	var rec [16]byte
	for i := uint64(0); i < entries; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated entry %d", ErrBadFormat, i)
		}
		user := binary.LittleEndian.Uint32(rec[0:4])
		topicID := binary.LittleEndian.Uint32(rec[4:8])
		tf := math.Float64frombits(binary.LittleEndian.Uint64(rec[8:16]))
		if tf <= 0 || math.IsNaN(tf) || math.IsInf(tf, 0) {
			return nil, fmt.Errorf("%w: invalid tf %v at entry %d", ErrBadFormat, tf, i)
		}
		if err := b.Set(user, int(topicID), tf); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
	}
	return b.Build(), nil
}
