package wris

import (
	"fmt"
	"time"

	"kbtim/internal/coverage"
	"kbtim/internal/graph"
	"kbtim/internal/prop"
	"kbtim/internal/rrset"
	"kbtim/internal/topic"
)

// Result reports one query-processing run. Every method in the repository
// (online WRIS/RIS here, the RR and IRR indexes elsewhere) reports through
// this type so the benchmark harness can compare them uniformly.
type Result struct {
	Seeds []uint32
	// EstSpread is the estimated expected influence of Seeds in the
	// objective's units: F_θ(S)/θ · mass (Lemma 1) — tf-idf units for
	// KB-TIM, vertex counts for classic RIS.
	EstSpread float64
	// Covered is F_θ(S), the number of RR sets the seeds cover.
	Covered int
	// NumRRSets is θ, the number of RR sets examined ("Number of RR sets
	// loaded" in Figures 5–7).
	NumRRSets int
	// ThetaCapped records whether the configured cap truncated θ,
	// invalidating the formal guarantee for this run.
	ThetaCapped bool
	// Elapsed is the wall-clock query time.
	Elapsed time.Duration
}

// Query answers a KB-TIM query with online weighted RIS sampling (§3.2):
//
//  1. estimate OPT^{Q.T}_{Q.k} with a pilot round,
//  2. draw θ (Theorem 2) root vertices with probability ps(v,Q) ∝ φ(v,Q)
//     and a random RR set for each,
//  3. greedy maximum coverage for Q.k seeds.
//
// This is the paper's accuracy-preserving baseline: correct but slow,
// because all sampling happens at query time.
func Query(g *graph.Graph, model prop.Model, prof *topic.Profiles, q topic.Query, cfg Config) (Result, error) {
	start := time.Now()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := q.Validate(prof.NumTopics()); err != nil {
		return Result{}, err
	}
	if q.K > cfg.K {
		return Result{}, fmt.Errorf("wris: Q.k=%d exceeds system cap K=%d", q.K, cfg.K)
	}
	users, weights := QuerySupport(prof, q)
	if len(users) == 0 {
		return Result{}, fmt.Errorf("wris: query %v has no targeted users", q.Topics)
	}
	picker, err := rrset.NewWeightedRoots(users, weights)
	if err != nil {
		return Result{}, err
	}
	opt, err := EstimateOPTQuery(g, model, prof, q, cfg)
	if err != nil {
		return Result{}, err
	}
	phiQ := prof.PhiQ(q)
	theta := ThetaWRIS(g.NumVertices(), q.K, cfg.Epsilon, phiQ, opt, cfg.MaxThetaPerKeyword)
	capped := cfg.MaxThetaPerKeyword > 0 && theta == cfg.MaxThetaPerKeyword

	batch := rrset.Generate(g, model, picker, rrset.GenerateOptions{
		Count:   theta,
		Seed:    cfg.Seed ^ 0x517EED,
		Workers: cfg.Workers,
	})
	res, err := solveBatch(g.NumVertices(), batch, q.K)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Seeds:       res.Seeds,
		EstSpread:   float64(res.Covered) / float64(batch.Len()) * phiQ,
		Covered:     res.Covered,
		NumRRSets:   batch.Len(),
		ThetaCapped: capped,
		Elapsed:     time.Since(start),
	}, nil
}

// QueryRIS answers a classic (non-targeted) IM query with uniform RIS
// sampling — the state-of-the-art baseline the paper extends. It ignores
// profiles entirely, which is why Table 8 shows it returning the same seeds
// for every advertisement.
func QueryRIS(g *graph.Graph, model prop.Model, k int, cfg Config) (Result, error) {
	start := time.Now()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	n := g.NumVertices()
	if n == 0 {
		return Result{}, fmt.Errorf("wris: empty graph")
	}
	if k <= 0 || k > n {
		return Result{}, fmt.Errorf("wris: invalid k=%d", k)
	}
	opt, err := EstimateOPTUniform(g, model, k, cfg)
	if err != nil {
		return Result{}, err
	}
	theta := ThetaRIS(n, k, cfg.Epsilon, opt, cfg.MaxThetaPerKeyword)
	capped := cfg.MaxThetaPerKeyword > 0 && theta == cfg.MaxThetaPerKeyword
	batch := rrset.Generate(g, model, rrset.UniformRoots{N: n}, rrset.GenerateOptions{
		Count:   theta,
		Seed:    cfg.Seed ^ 0x715,
		Workers: cfg.Workers,
	})
	res, err := solveBatch(n, batch, k)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Seeds:       res.Seeds,
		EstSpread:   float64(res.Covered) / float64(batch.Len()) * float64(n),
		Covered:     res.Covered,
		NumRRSets:   batch.Len(),
		ThetaCapped: capped,
		Elapsed:     time.Since(start),
	}, nil
}

func solveBatch(numVertices int, batch *rrset.Batch, k int) (coverage.Result, error) {
	inst := &coverage.Instance{
		NumVertices: numVertices,
		NumSets:     batch.Len(),
		Lists:       batch.InvertedLists(numVertices),
	}
	return coverage.Solve(inst, k, func(id int32) []uint32 { return batch.Set(int(id)) })
}
