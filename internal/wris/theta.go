// Package wris implements the sampling theory and the online baselines of
// the paper: the θ lower bounds of Theorem 1 (RIS), Theorem 2 (WRIS) and
// Lemmas 3–4 (per-keyword θ̂_w and θ_w for offline index sizing), the OPT
// lower-bound estimation the bounds need, and the two online
// query-processing baselines — classic uniform RIS (not target-aware, the
// Table 8 comparator) and weighted WRIS (§3.2, the efficiency baseline that
// the RR and IRR indexes beat by two orders of magnitude).
package wris

import (
	"fmt"
	"math"
)

// Config carries the sampling parameters shared by the baselines and the
// index builders.
type Config struct {
	// Epsilon is the ε of the (1−1/e−ε) guarantee. The paper fixes 0.1 for
	// all experiments; tests and laptop benches typically use larger values
	// (θ scales with 1/ε²).
	Epsilon float64
	// K is the system-wide cap on Q.k used for offline index sizing
	// (§4.2: "Q.k ≤ K ∀Q"; the paper sets K=100 with max Q.k 50).
	K int
	// PilotSets is the RR-sample budget for each OPT lower-bound
	// estimation.
	PilotSets int
	// MaxThetaPerKeyword caps θ_w (and online θ) so a mis-parameterized
	// run cannot exhaust memory; 0 means no cap. Capping trades the formal
	// guarantee for a best-effort answer and is reported by the builders.
	MaxThetaPerKeyword int
	// Seed drives all sampling.
	Seed uint64
	// Workers bounds sampling concurrency (0 = GOMAXPROCS). The paper
	// builds indexes with 8 threads.
	Workers int
}

// DefaultConfig mirrors the paper's experimental defaults (ε=0.1, K=100).
func DefaultConfig() Config {
	return Config{
		Epsilon:   0.1,
		K:         100,
		PilotSets: 4096,
		Seed:      1,
	}
}

// Validate checks parameter sanity.
func (c Config) Validate() error {
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		return fmt.Errorf("wris: epsilon must be in (0,1), got %v", c.Epsilon)
	}
	if c.K <= 0 {
		return fmt.Errorf("wris: K must be positive, got %d", c.K)
	}
	if c.PilotSets <= 0 {
		return fmt.Errorf("wris: PilotSets must be positive, got %d", c.PilotSets)
	}
	if c.MaxThetaPerKeyword < 0 {
		return fmt.Errorf("wris: negative MaxThetaPerKeyword")
	}
	return nil
}

// LnChoose returns ln C(n, k) via log-gamma, the ln(|V| choose k) term of
// every θ bound.
func LnChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// logTerm returns ln|V| + ln C(|V|,k) + ln 2, shared by all bounds.
// k is clamped to [0, |V|]: callers may size an index with a system cap K
// exceeding a small graph's vertex count, where "any seed set" means "all
// vertices" and the binomial term vanishes.
func logTerm(numVertices, k int) float64 {
	if k > numVertices {
		k = numVertices
	}
	if k < 0 {
		k = 0
	}
	return math.Log(float64(numVertices)) + LnChoose(numVertices, k) + math.Ln2
}

// clampTheta converts the real-valued bound to a usable sample count.
func clampTheta(theta float64, cap int) int {
	if math.IsNaN(theta) || theta < 1 {
		theta = 1
	}
	if theta > float64(math.MaxInt32) {
		theta = float64(math.MaxInt32)
	}
	t := int(math.Ceil(theta))
	if cap > 0 && t > cap {
		t = cap
	}
	return t
}

// ThetaRIS returns the Theorem 1 bound for classic uniform RIS:
// θ ≥ (8+2ε)·|V|·(ln|V| + ln C(|V|,k) + ln 2)/(OPT_k·ε²), with OPT_k the
// (estimated) optimal unweighted spread.
func ThetaRIS(numVertices, k int, eps, optK float64, maxTheta int) int {
	if optK <= 0 {
		return clampTheta(math.Inf(1), maxTheta)
	}
	theta := (8 + 2*eps) * float64(numVertices) * logTerm(numVertices, k) / (optK * eps * eps)
	return clampTheta(theta, maxTheta)
}

// ThetaWRIS returns the Theorem 2 bound for weighted sampling:
// θ ≥ (8+2ε)·φ_Q·(ln|V| + ln C(|V|,Q.k) + ln 2)/(OPT^{Q.T}_{Q.k}·ε²).
// phiQ and opt must be in the same (tf-idf) units.
func ThetaWRIS(numVertices, k int, eps, phiQ, opt float64, maxTheta int) int {
	if opt <= 0 {
		return clampTheta(math.Inf(1), maxTheta)
	}
	theta := (8 + 2*eps) * phiQ * logTerm(numVertices, k) / (opt * eps * eps)
	return clampTheta(theta, maxTheta)
}

// ThetaHatW returns the Lemma 3 per-keyword bound (Eqn 8):
// θ̂_w = (8+2ε)·(Σ_v tf_{w,v})·(ln|V| + ln C(|V|,K) + ln 2)/(OPT^{w}_1·ε²),
// where opt1 = OPT^{w}_1 is the best single-seed spread in tf units
// (Σ_v p(S→v)·tf_{w,v}; the idf factor cancels, see Lemma 3's proof).
// This is the conservative sizing that Table 3 shows to be an order of
// magnitude too large.
func ThetaHatW(numVertices int, tfSum float64, bigK int, eps, opt1 float64, maxTheta int) int {
	if opt1 <= 0 {
		return clampTheta(math.Inf(1), maxTheta)
	}
	theta := (8 + 2*eps) * tfSum * logTerm(numVertices, bigK) / (opt1 * eps * eps)
	return clampTheta(theta, maxTheta)
}

// ThetaW returns the Lemma 4 improved bound (Eqn 10): identical to ThetaHatW
// but with OPT^{w}_K (best K-seed spread in tf units) in the denominator,
// shrinking the index by roughly K/Q.k.
func ThetaW(numVertices int, tfSum float64, bigK int, eps, optK float64, maxTheta int) int {
	if optK <= 0 {
		return clampTheta(math.Inf(1), maxTheta)
	}
	theta := (8 + 2*eps) * tfSum * logTerm(numVertices, bigK) / (optK * eps * eps)
	return clampTheta(theta, maxTheta)
}
