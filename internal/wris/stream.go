package wris

import "time"

// EmitFunc receives one certified seed the moment a query-processing path
// selects it: the seed, its marginal coverage, and the running spread lower
// bound (the spread of the emitted prefix — certified, never a guess).
// Implementations run synchronously on the query goroutine and must not
// block longer than they want the query stalled.
type EmitFunc func(seed uint32, marginal int, spreadLB float64)

// StreamOptions carries the anytime-query hooks shared by the RR and IRR
// query paths. The zero value means "batch": no emission, no deadline, and
// the streaming entry points degrade to exactly the batch code path.
type StreamOptions struct {
	// Emit, when non-nil, is invoked per certified seed in selection
	// order; the concatenated emissions always equal the returned result
	// prefix byte-for-byte.
	Emit EmitFunc
	// Deadline, when non-zero, bounds the query: once it passes, the
	// query returns the best certified prefix so far with Partial=true
	// instead of an error.
	Deadline time.Time
}

// Expired reports whether the deadline has passed. A zero deadline never
// expires.
func (so *StreamOptions) Expired() bool {
	return !so.Deadline.IsZero() && time.Now().After(so.Deadline)
}
