package wris

import (
	"math"
	"testing"

	"kbtim/internal/graph"
	"kbtim/internal/prop"
	"kbtim/internal/topic"
)

const (
	vA, vB, vC, vD, vE, vF, vG = 0, 1, 2, 3, 4, 5, 6
)

// figure1 reconstructs the paper's running example graph (validated against
// Example 2's exact numbers in internal/prop).
func figure1(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(7, []graph.Edge{
		{From: vE, To: vA}, {From: vE, To: vB}, {From: vG, To: vB},
		{From: vE, To: vC}, {From: vB, To: vC},
		{From: vB, To: vD}, {From: vF, To: vD},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Topic IDs for the running example.
const (
	topicMusic = 0
	topicBook  = 1
	topicSport = 2
	topicCar   = 3
)

// figure1Profiles assigns Figure 1-style topic preferences. (The paper's
// Example 3 numbers are internally inconsistent — its per-term products sum
// to 1.34375, not the claimed 1.5 — so correctness is checked against our
// exact oracle rather than the printed value; see EXPERIMENTS.md.)
func figure1Profiles(t testing.TB) *topic.Profiles {
	t.Helper()
	b := topic.NewBuilder(7, 4)
	set := func(u uint32, w int, tf float64) {
		if err := b.Set(u, w, tf); err != nil {
			t.Fatal(err)
		}
	}
	set(vA, topicMusic, 0.6)
	set(vA, topicBook, 0.2)
	set(vA, topicSport, 0.1)
	set(vA, topicCar, 0.1)
	set(vB, topicMusic, 0.5)
	set(vB, topicBook, 0.5)
	set(vC, topicMusic, 0.5)
	set(vC, topicBook, 0.3)
	set(vC, topicCar, 0.2)
	set(vD, topicSport, 0.2)
	set(vD, topicBook, 0.2)
	set(vE, topicMusic, 0.3)
	set(vE, topicBook, 0.3)
	set(vE, topicSport, 0.4)
	set(vF, topicCar, 1.0)
	set(vG, topicBook, 1.0)
	return b.Build()
}

func testConfig() Config {
	return Config{
		Epsilon:            0.3,
		K:                  10,
		PilotSets:          1000,
		MaxThetaPerKeyword: 60000,
		Seed:               7,
		Workers:            2,
	}
}

func TestLnChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, math.Log(10)},
		{5, 0, 0},
		{5, 5, 0},
		{7, 2, math.Log(21)},
		{100, 1, math.Log(100)},
	}
	for _, c := range cases {
		if got := LnChoose(c.n, c.k); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("LnChoose(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(LnChoose(3, 5), -1) {
		t.Error("LnChoose(3,5) should be -inf")
	}
}

func TestThetaMonotonicity(t *testing.T) {
	// Larger OPT → smaller θ.
	a := ThetaWRIS(1000, 10, 0.1, 100, 1, 0)
	b := ThetaWRIS(1000, 10, 0.1, 100, 10, 0)
	if a <= b {
		t.Fatalf("θ not decreasing in OPT: %d vs %d", a, b)
	}
	// Smaller ε → larger θ.
	c := ThetaWRIS(1000, 10, 0.05, 100, 10, 0)
	if c <= b {
		t.Fatalf("θ not increasing as ε shrinks: %d vs %d", c, b)
	}
	// θ̂_w ≥ θ_w whenever OPT_K ≥ OPT_1 (monotonicity of spread, Lemma 4).
	hat := ThetaHatW(1000, 50, 100, 0.1, 2, 0)
	improved := ThetaW(1000, 50, 100, 0.1, 20, 0)
	if hat < improved {
		t.Fatalf("θ̂_w=%d < θ_w=%d", hat, improved)
	}
}

func TestThetaCapAndDegenerate(t *testing.T) {
	if got := ThetaWRIS(1000, 10, 0.1, 100, 10, 7); got != 7 {
		t.Fatalf("cap ignored: %d", got)
	}
	// OPT=0 → cap (or max int) rather than a crash.
	if got := ThetaWRIS(1000, 10, 0.1, 100, 0, 123); got != 123 {
		t.Fatalf("degenerate OPT: %d", got)
	}
	if got := ThetaRIS(10, 2, 0.5, 1e18, 0); got < 1 {
		t.Fatalf("θ below 1: %d", got)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Epsilon: 0, K: 1, PilotSets: 1},
		{Epsilon: 1, K: 1, PilotSets: 1},
		{Epsilon: 0.1, K: 0, PilotSets: 1},
		{Epsilon: 0.1, K: 1, PilotSets: 0},
		{Epsilon: 0.1, K: 1, PilotSets: 1, MaxThetaPerKeyword: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestKeywordSupport(t *testing.T) {
	prof := figure1Profiles(t)
	users, weights := KeywordSupport(prof, topicCar)
	if len(users) != 3 { // a, c, f
		t.Fatalf("car support %v", users)
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	if math.Abs(total-prof.TFSum(topicCar)) > 1e-12 {
		t.Fatalf("support mass %v vs TFSum %v", total, prof.TFSum(topicCar))
	}
	if u, _ := KeywordSupport(topic.NewBuilder(3, 1).Build(), 0); u != nil {
		t.Fatal("empty keyword support should be nil")
	}
}

func TestQuerySupportMatchesScores(t *testing.T) {
	prof := figure1Profiles(t)
	q := topic.Query{Topics: []int{topicMusic, topicBook}, K: 2}
	users, weights := QuerySupport(prof, q)
	for i, u := range users {
		if math.Abs(weights[i]-prof.Score(u, q)) > 1e-12 {
			t.Fatalf("weight[%d] = %v, Score = %v", i, weights[i], prof.Score(u, q))
		}
	}
	// Support = users with positive score: everyone except... all users have
	// music or book except f (car only).
	if len(users) != 6 {
		t.Fatalf("support size %d, want 6", len(users))
	}
	for i := 1; i < len(users); i++ {
		if users[i-1] >= users[i] {
			t.Fatal("support not sorted")
		}
	}
}

// TestWRISApproximationGuarantee is the headline correctness test: the
// returned seeds' exact weighted spread must be within (1−1/e−ε) of the
// brute-force optimum.
func TestWRISApproximationGuarantee(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	cfg := testConfig()
	for _, q := range []topic.Query{
		{Topics: []int{topicMusic}, K: 2},
		{Topics: []int{topicBook}, K: 2},
		{Topics: []int{topicMusic, topicBook}, K: 2},
		{Topics: []int{topicCar}, K: 1},
	} {
		res, err := Query(g, prop.IC{}, prof, q, cfg)
		if err != nil {
			t.Fatalf("query %v: %v", q.Topics, err)
		}
		if len(res.Seeds) != q.K {
			t.Fatalf("query %v returned %d seeds", q.Topics, len(res.Seeds))
		}
		score := func(v uint32) float64 { return prof.Score(v, q) }
		got, err := prop.ExactWeightedSpread(g, prop.IC{}, res.Seeds, score)
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := prop.BestSeedSetExact(g, prop.IC{}, q.K, score)
		if err != nil {
			t.Fatal(err)
		}
		ratio := 1 - 1/math.E - cfg.Epsilon
		if got < ratio*opt-1e-9 {
			t.Errorf("query %v: spread %v < %v·OPT(%v)", q.Topics, got, ratio, opt)
		}
		// The internal estimator should be close to the exact spread.
		if math.Abs(res.EstSpread-got) > 0.35*opt {
			t.Errorf("query %v: estimator %v far from exact %v", q.Topics, res.EstSpread, got)
		}
	}
}

// TestWRISTargetAware: different keywords should steer seed selection.
// Under query {car} the only useful seeds involve f→d (d has no car
// interest, but f does); under {book} g is valuable (g→b, both book-heavy).
func TestWRISTargetAware(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	cfg := testConfig()
	car, err := Query(g, prop.IC{}, prof, topic.Query{Topics: []int{topicCar}, K: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force says the best single seed for {car} maximizes
	// Σ p(S→v)·tf_car: candidates a (0.1), c (0.2), f (1.0 + nothing
	// downstream with car)... check via oracle that WRIS picked optimally.
	score := func(v uint32) float64 { return prof.Score(v, topic.Query{Topics: []int{topicCar}, K: 1}) }
	_, opt, err := prop.BestSeedSetExact(g, prop.IC{}, 1, score)
	if err != nil {
		t.Fatal(err)
	}
	got, err := prop.ExactWeightedSpread(g, prop.IC{}, car.Seeds, score)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.99*opt {
		t.Fatalf("car query picked %v (spread %v), optimal %v", car.Seeds, got, opt)
	}
}

func TestWRISLTModel(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	cfg := testConfig()
	q := topic.Query{Topics: []int{topicMusic}, K: 2}
	res, err := Query(g, prop.LT{}, prof, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	score := func(v uint32) float64 { return prof.Score(v, q) }
	got, err := prop.ExactWeightedSpread(g, prop.LT{}, res.Seeds, score)
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := prop.BestSeedSetExact(g, prop.LT{}, 2, score)
	if err != nil {
		t.Fatal(err)
	}
	if got < (1-1/math.E-cfg.Epsilon)*opt {
		t.Fatalf("LT spread %v below guarantee of OPT %v", got, opt)
	}
}

func TestRISGuarantee(t *testing.T) {
	g := figure1(t)
	cfg := testConfig()
	res, err := QueryRIS(g, prop.IC{}, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := prop.ExactSpread(g, prop.IC{}, res.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	// OPT_2 = 4.8125 (Example 2).
	if got < (1-1/math.E-cfg.Epsilon)*4.8125 {
		t.Fatalf("RIS spread %v below guarantee", got)
	}
	if math.Abs(res.EstSpread-got) > 1.2 {
		t.Fatalf("RIS estimator %v vs exact %v", res.EstSpread, got)
	}
}

func TestQueryValidation(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	cfg := testConfig()
	if _, err := Query(g, prop.IC{}, prof, topic.Query{Topics: []int{99}, K: 1}, cfg); err == nil {
		t.Fatal("invalid topic accepted")
	}
	if _, err := Query(g, prop.IC{}, prof, topic.Query{Topics: []int{0}, K: 0}, cfg); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Query(g, prop.IC{}, prof, topic.Query{Topics: []int{0}, K: 11}, cfg); err == nil {
		t.Fatal("Q.k above system K accepted")
	}
	if _, err := QueryRIS(g, prop.IC{}, 0, cfg); err == nil {
		t.Fatal("RIS k=0 accepted")
	}
	if _, err := QueryRIS(g, prop.IC{}, 100, cfg); err == nil {
		t.Fatal("RIS k>n accepted")
	}
	bad := cfg
	bad.Epsilon = 0
	if _, err := Query(g, prop.IC{}, prof, topic.Query{Topics: []int{0}, K: 1}, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestThetaCappedReported(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	cfg := testConfig()
	cfg.MaxThetaPerKeyword = 10
	res, err := Query(g, prop.IC{}, prof, topic.Query{Topics: []int{topicMusic}, K: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ThetaCapped {
		t.Fatal("cap of 10 not reported")
	}
	if res.NumRRSets != 10 {
		t.Fatalf("generated %d sets under cap 10", res.NumRRSets)
	}
}

func TestEstimateOPTKeyword(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	cfg := testConfig()
	cfg.PilotSets = 20000
	// OPT^{music}_1 in tf units: best single seed for Σ p(S→v)·tf_music.
	est, err := EstimateOPTKeyword(g, prop.IC{}, prof, topicMusic, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	score := func(v uint32) float64 { return prof.TF(v, topicMusic) }
	_, opt, err := prop.BestSeedSetExact(g, prop.IC{}, 1, score)
	if err != nil {
		t.Fatal(err)
	}
	// The pilot estimate is a greedy lower bound: within [(1-1/e)·OPT-noise,
	// OPT+noise].
	if est < 0.5*opt || est > 1.2*opt {
		t.Fatalf("OPT estimate %v vs exact %v", est, opt)
	}
	if _, err := EstimateOPTKeyword(g, prop.IC{}, prof, 99, 1, cfg); err == nil {
		t.Fatal("unknown keyword accepted")
	}
}

func TestEstimateOPTUniform(t *testing.T) {
	g := figure1(t)
	cfg := testConfig()
	cfg.PilotSets = 20000
	est, err := EstimateOPTUniform(g, prop.IC{}, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// OPT_2 = 4.8125; greedy lower bound ≥ (1-1/e)·OPT ≈ 3.04.
	if est < 2.9 || est > 5.3 {
		t.Fatalf("uniform OPT estimate %v (exact 4.8125)", est)
	}
}
