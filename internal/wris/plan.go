package wris

import (
	"fmt"

	"kbtim/internal/graph"
	"kbtim/internal/prop"
	"kbtim/internal/topic"
)

// SizingMode selects which per-keyword sample-count bound an offline index
// is built with — the ablation of Table 3.
type SizingMode int

// Sizing modes.
const (
	// SizeThetaHat uses θ̂_w (Eqn 8, OPT^{w}_1 in the denominator): the
	// conservative bound that Table 3 shows to be ~10× too large.
	SizeThetaHat SizingMode = iota
	// SizeTheta uses the improved θ_w (Eqn 10, OPT^{w}_K): the default.
	SizeTheta
)

// String names the mode for reports.
func (m SizingMode) String() string {
	switch m {
	case SizeThetaHat:
		return "theta-hat"
	case SizeTheta:
		return "theta"
	default:
		return fmt.Sprintf("sizing(%d)", int(m))
	}
}

// PlanThetaW computes the number of RR sets to pre-build for keyword w
// under the chosen sizing mode: it estimates the relevant OPT^{w} lower
// bound with a pilot round and applies Lemma 3 or Lemma 4. The boolean
// reports whether the configured cap truncated the bound.
func PlanThetaW(g *graph.Graph, model prop.Model, prof *topic.Profiles, w int, cfg Config, mode SizingMode) (int, bool, error) {
	if err := cfg.Validate(); err != nil {
		return 0, false, err
	}
	var theta int
	switch mode {
	case SizeThetaHat:
		opt1, err := EstimateOPTKeyword(g, model, prof, w, 1, cfg)
		if err != nil {
			return 0, false, err
		}
		theta = ThetaHatW(g.NumVertices(), prof.TFSum(w), cfg.K, cfg.Epsilon, opt1, cfg.MaxThetaPerKeyword)
	case SizeTheta:
		optK, err := EstimateOPTKeyword(g, model, prof, w, cfg.K, cfg)
		if err != nil {
			return 0, false, err
		}
		theta = ThetaW(g.NumVertices(), prof.TFSum(w), cfg.K, cfg.Epsilon, optK, cfg.MaxThetaPerKeyword)
	default:
		return 0, false, fmt.Errorf("wris: unknown sizing mode %d", mode)
	}
	capped := cfg.MaxThetaPerKeyword > 0 && theta == cfg.MaxThetaPerKeyword
	return theta, capped, nil
}
