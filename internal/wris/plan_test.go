package wris

import (
	"testing"

	"kbtim/internal/prop"
)

func TestPlanThetaWModes(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	cfg := testConfig()
	cfg.MaxThetaPerKeyword = 0 // uncapped: compare the raw bounds

	hat, cappedHat, err := PlanThetaW(g, prop.IC{}, prof, topicMusic, cfg, SizeThetaHat)
	if err != nil {
		t.Fatal(err)
	}
	std, cappedStd, err := PlanThetaW(g, prop.IC{}, prof, topicMusic, cfg, SizeTheta)
	if err != nil {
		t.Fatal(err)
	}
	if cappedHat || cappedStd {
		t.Fatal("uncapped plan reported capped")
	}
	// Lemma 4: θ_w ≤ θ̂_w (OPT_K ≥ OPT_1).
	if std > hat {
		t.Fatalf("θ_w = %d exceeds θ̂_w = %d", std, hat)
	}
	if std < 1 {
		t.Fatalf("θ_w = %d", std)
	}
}

func TestPlanThetaWCapReporting(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	cfg := testConfig()
	cfg.MaxThetaPerKeyword = 3
	theta, capped, err := PlanThetaW(g, prop.IC{}, prof, topicMusic, cfg, SizeTheta)
	if err != nil {
		t.Fatal(err)
	}
	if theta != 3 || !capped {
		t.Fatalf("theta=%d capped=%v, want 3/true", theta, capped)
	}
}

func TestPlanThetaWValidation(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	cfg := testConfig()
	if _, _, err := PlanThetaW(g, prop.IC{}, prof, topicMusic, cfg, SizingMode(9)); err == nil {
		t.Fatal("unknown sizing mode accepted")
	}
	bad := cfg
	bad.Epsilon = -1
	if _, _, err := PlanThetaW(g, prop.IC{}, prof, topicMusic, bad, SizeTheta); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, _, err := PlanThetaW(g, prop.IC{}, prof, 99, cfg, SizeTheta); err == nil {
		t.Fatal("unknown keyword accepted")
	}
}

func TestSizingModeString(t *testing.T) {
	if SizeThetaHat.String() != "theta-hat" || SizeTheta.String() != "theta" {
		t.Fatal("mode names broken")
	}
	if SizingMode(9).String() == "" {
		t.Fatal("unknown mode name empty")
	}
}
