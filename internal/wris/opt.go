package wris

import (
	"fmt"
	"sort"

	"kbtim/internal/coverage"
	"kbtim/internal/graph"
	"kbtim/internal/prop"
	"kbtim/internal/rrset"
	"kbtim/internal/topic"
)

// OPT lower-bound estimation. Every θ bound divides by an (unknown) optimal
// spread; following TIM's approach of estimating it from samples, we run a
// pilot round: generate PilotSets weighted RR sets, greedy-select k seeds,
// and read the spread off the unbiased estimator of Lemma 1
// (cover/θ_pilot · mass). The greedy seed set's spread is a valid lower
// bound on OPT, and substituting a lower bound only increases θ, so the
// (1−1/e−ε) guarantee is preserved (see DESIGN.md, Substitutions).

// KeywordSupport extracts the positive-mass support of keyword w as
// parallel (users, tf-weights) slices, the input to per-keyword root
// picking (ps(v,w), §4.1).
func KeywordSupport(prof *topic.Profiles, w int) ([]uint32, []float64) {
	entries := prof.Postings(w)
	if len(entries) == 0 {
		return nil, nil
	}
	users := make([]uint32, len(entries))
	weights := make([]float64, len(entries))
	for i, e := range entries {
		users[i] = e.User
		weights[i] = e.TF
	}
	return users, weights
}

// QuerySupport extracts the positive-score support of a whole query as
// parallel (users, φ(v,Q)-weights) slices, the input to WRIS root picking
// (ps(v,Q), Eqn 3).
func QuerySupport(prof *topic.Profiles, q topic.Query) ([]uint32, []float64) {
	scores := map[uint32]float64{}
	for _, w := range q.Topics {
		idf := prof.IDF(w)
		for _, e := range prof.Postings(w) {
			scores[e.User] += e.TF * idf
		}
	}
	if len(scores) == 0 {
		return nil, nil
	}
	users := make([]uint32, 0, len(scores))
	for u := range scores {
		users = append(users, u)
	}
	// Deterministic order.
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	weights := make([]float64, len(users))
	for i, u := range users {
		weights[i] = scores[u]
	}
	return users, weights
}

// estimateOPT runs the pilot: sample pilotSets RR sets with the given root
// picker, greedy-select k, and return cover/θ·mass. mass is Σ of the root
// weights' normalizer (TFSum(w) for a keyword pilot, φ_Q for a query pilot).
func estimateOPT(g *graph.Graph, model prop.Model, picker rrset.RootPicker, k, pilotSets int, mass float64, seed uint64, workers int) (float64, error) {
	batch := rrset.Generate(g, model, picker, rrset.GenerateOptions{
		Count:   pilotSets,
		Seed:    seed,
		Workers: workers,
	})
	inst := &coverage.Instance{
		NumVertices: g.NumVertices(),
		NumSets:     batch.Len(),
		Lists:       batch.InvertedLists(g.NumVertices()),
	}
	res, err := coverage.Solve(inst, k, func(id int32) []uint32 { return batch.Set(int(id)) })
	if err != nil {
		return 0, err
	}
	est := float64(res.Covered) / float64(batch.Len()) * mass
	if est <= 0 {
		// Nothing covered (degenerate support): fall back to the smallest
		// useful value so θ formulas stay finite; callers cap θ anyway.
		est = mass / float64(pilotSets)
	}
	return est, nil
}

// EstimateOPTKeyword estimates OPT^{w}_k in tf units (Σ_v p(S→v)·tf_{w,v})
// for keyword w: the quantity in the denominators of Eqns 8 and 10.
func EstimateOPTKeyword(g *graph.Graph, model prop.Model, prof *topic.Profiles, w, k int, cfg Config) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if w < 0 || w >= prof.NumTopics() {
		return 0, fmt.Errorf("wris: keyword %d outside topic space [0,%d)", w, prof.NumTopics())
	}
	users, weights := KeywordSupport(prof, w)
	if len(users) == 0 {
		return 0, fmt.Errorf("wris: keyword %d has no support", w)
	}
	picker, err := rrset.NewWeightedRoots(users, weights)
	if err != nil {
		return 0, err
	}
	return estimateOPT(g, model, picker, k, cfg.PilotSets, prof.TFSum(w), cfg.Seed^uint64(w)<<20, cfg.Workers)
}

// EstimateOPTQuery estimates OPT^{Q.T}_{Q.k} in tf-idf units, the Theorem 2
// denominator.
func EstimateOPTQuery(g *graph.Graph, model prop.Model, prof *topic.Profiles, q topic.Query, cfg Config) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	users, weights := QuerySupport(prof, q)
	if len(users) == 0 {
		return 0, fmt.Errorf("wris: query %v has no targeted users", q.Topics)
	}
	picker, err := rrset.NewWeightedRoots(users, weights)
	if err != nil {
		return 0, err
	}
	return estimateOPT(g, model, picker, q.K, cfg.PilotSets, prof.PhiQ(q), cfg.Seed^0xD1F7, cfg.Workers)
}

// EstimateOPTUniform estimates OPT_k in vertex-count units for classic RIS
// (Theorem 1 denominator).
func EstimateOPTUniform(g *graph.Graph, model prop.Model, k int, cfg Config) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	n := g.NumVertices()
	if n == 0 {
		return 0, fmt.Errorf("wris: empty graph")
	}
	return estimateOPT(g, model, rrset.UniformRoots{N: n}, k, cfg.PilotSets, float64(n), cfg.Seed^0xBEEF, cfg.Workers)
}
