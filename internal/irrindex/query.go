package irrindex

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"kbtim/internal/artifact"
	"kbtim/internal/binfmt"
	"kbtim/internal/diskio"
	"kbtim/internal/objcache"
	"kbtim/internal/pool"
	"kbtim/internal/topic"
	"kbtim/internal/wris"
)

// Decoded-cache regions of this index (see objcache.Key).
const (
	regionIP   objcache.Region = iota // Aux = 0 → map[uint32]int32
	regionPart                        // Aux = partition index → *partBlock
)

// Index is an opened IRR index ready for incremental query processing.
// After Open the header and directory are immutable; every Query builds its
// own NRA state (kwState, heap, scratch buffers) and reads through a
// per-query I/O scope, so one Index is safe for concurrent use by multiple
// goroutines (provided the underlying reader supports concurrent positional
// reads, as diskio.File, diskio.Mem, and diskio.CachedReader all do).
type Index struct {
	hdr     Header
	dirs    map[int]*KeywordDir
	r       diskio.Segmented
	prelude int64           // header+directory byte length (the UnitDir artifact)
	dec     *objcache.Cache // optional decoded-object cache, set before first Query
	par     int             // per-query artifact-load parallelism, set before first Query
	fetch   Fetcher         // optional remote artifact source, set before first Query
}

// Artifact units of the IRR index, as named by the cross-node fetch protocol
// (internal/remote): every raw byte range a query ever reads is one of
// these, which is what lets a remote index fetch per-artifact instead of
// per-offset.
const (
	// UnitDir is the index prelude: header plus keyword directory.
	UnitDir = "dir"
	// UnitIP is one keyword's first-occurrence (IP) table; aux is 0.
	UnitIP = "ip"
	// UnitPart is one partition block of a keyword; aux is the partition
	// index.
	UnitPart = "part"
)

// Fetcher returns the raw bytes of one named artifact of this index — the
// pluggable byte source that lets an Index be backed by a remote node
// instead of a local file. Implementations must return exactly the bytes
// the local file holds for that unit (ArtifactBytes on the serving side is
// the canonical producer), so decoded artifacts — and therefore query
// results — are bit-identical to a local open of the same file.
type Fetcher interface {
	Fetch(ctx context.Context, unit string, topic int, aux int64) ([]byte, error)
}

// BatchFetcher is an optional Fetcher upgrade: one call moves a whole round
// of artifacts in (ideally) one wire round trip. FetchBatch must return
// exactly len(reqs) replies in request order, isolating failures per unit;
// each successful payload obeys the same bit-identity contract as Fetch.
// When the NRA query loop finds a BatchFetcher behind a remote index, each
// fetch round plans its needs — every keyword's next partition plus the
// speculative lookahead — and moves them in one batch per owning backend;
// per-unit Fetch remains the fallback for everything else, so results are
// byte-identical either way.
type BatchFetcher interface {
	Fetcher
	FetchBatch(ctx context.Context, reqs []artifact.Request) []artifact.Reply
}

// ErrNoArtifact marks an artifact request whose NAME does not resolve on
// this index — unknown unit, unindexed keyword, out-of-range partition.
// Serving layers map it to "not served here" (HTTP 404), as distinct from
// a resolvable artifact whose read failed (a real server error).
var ErrNoArtifact = errors.New("irrindex: no such artifact")

// Open parses the header and directory of an IRR index accessible via r.
func Open(r diskio.Segmented) (*Index, error) {
	head, err := r.ReadSegment(0, 16)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(head[:4]) != indexMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, head[:4])
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != indexVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	preludeLen := int64(binary.LittleEndian.Uint64(head[8:16]))
	if preludeLen < 16 || preludeLen > r.Size() {
		return nil, fmt.Errorf("%w: implausible prelude length %d", ErrBadFormat, preludeLen)
	}
	prelude, err := r.ReadSegment(0, preludeLen)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	br := binfmt.NewReader(prelude)
	hdr, numKeywords, err := parseHeader(br)
	if err != nil {
		return nil, err
	}
	idx := &Index{hdr: hdr, dirs: make(map[int]*KeywordDir, numKeywords), r: r, prelude: preludeLen}
	for i := 0; i < numKeywords; i++ {
		d, err := parseKeywordDir(br, &hdr)
		if err != nil {
			return nil, err
		}
		if d.IPOff < preludeLen || d.IPOff+d.IPLen > r.Size() {
			return nil, fmt.Errorf("%w: IP region for topic %d out of file", ErrBadFormat, d.TopicID)
		}
		for _, p := range d.Partitions {
			if p.Off < preludeLen || p.Off+p.Len > r.Size() {
				return nil, fmt.Errorf("%w: partition out of file for topic %d", ErrBadFormat, d.TopicID)
			}
		}
		dd := d
		idx.dirs[d.TopicID] = &dd
	}
	return idx, nil
}

// SetDecodedCache attaches a decoded-object cache: parsed IP tables and
// partition blocks are cached across queries (with singleflight loading),
// so hot keywords skip both the disk AND the decode. Must be called before
// the index is shared between goroutines (i.e. right after Open); pass nil
// to detach. Cached values are immutable — queries trim inverted lists to
// their private θ^Q_w by slicing.
func (idx *Index) SetDecodedCache(c *objcache.Cache) { idx.dec = c }

// SetQueryParallelism bounds how many keywords one Query fetches and
// decodes concurrently (<= 1 keeps the fully sequential path). With
// parallelism > 1 a query loads all keywords' IP tables and first partitions
// concurrently, and each NRA round SPECULATIVELY prefetches every keyword's
// next partition while the current one is processed. Seeds and spreads are
// identical either way — NRA state mutation stays sequential in keyword
// order — but speculative fetches that the query ends up not needing do
// show up in its I/O stats (that is the price of the latency win; they are
// decoded-cache warmup, not waste, when a cache is attached). Must be called
// before the index is shared between goroutines (i.e. right after Open).
func (idx *Index) SetQueryParallelism(n int) { idx.par = n }

// SetFetcher makes the index remote-backed: every artifact read bypasses the
// local reader and asks f for the named unit instead (the decoded cache, when
// attached, still fronts those fetches, so hot keywords skip the wire). Must
// be called before the index is shared between goroutines (i.e. right after
// Open); pass nil to go back to local reads.
func (idx *Index) SetFetcher(f Fetcher) { idx.fetch = f }

// Size returns the total byte length of the underlying index file (for a
// remote-backed index, the size the serving node advertised).
func (idx *Index) Size() int64 { return idx.r.Size() }

// ArtifactBytes serves one named artifact's raw bytes from the local index —
// the serving side of the cross-node fetch protocol. Reads go through the
// index's shared reader (and so through the segment cache when one is
// attached). aux is the partition index for UnitPart and ignored otherwise.
func (idx *Index) ArtifactBytes(unit string, topic int, aux int64) ([]byte, error) {
	if unit == UnitDir {
		return idx.r.ReadSegment(0, idx.prelude)
	}
	d := idx.dirs[topic]
	if d == nil {
		return nil, fmt.Errorf("%w: keyword %d not indexed", ErrNoArtifact, topic)
	}
	switch unit {
	case UnitIP:
		return idx.r.ReadSegment(d.IPOff, d.IPLen)
	case UnitPart:
		if aux < 0 || aux >= int64(len(d.Partitions)) {
			return nil, fmt.Errorf("%w: keyword %d has %d partitions, asked for %d", ErrNoArtifact, topic, len(d.Partitions), aux)
		}
		p := d.Partitions[aux]
		return idx.r.ReadSegment(p.Off, p.Len)
	default:
		return nil, fmt.Errorf("%w: unknown artifact unit %q", ErrNoArtifact, unit)
	}
}

// artifact returns one artifact's raw bytes for a query: from the remote
// fetcher when the index is remote-backed (recording the transfer in the
// query's I/O scope, so wire bytes surface in the usual I/O stats), else one
// ReadSegment against the local reader. off/length locate the unit in the
// file — the fetched payload must be exactly that long, a cheap end-to-end
// check that the remote node serves the same index this directory describes.
func (idx *Index) artifact(ctx context.Context, r diskio.Segmented, unit string, topic int, aux, off, length int64) ([]byte, error) {
	if idx.fetch == nil {
		return r.ReadSegment(off, length)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// A batch-planned round has already moved this unit over the wire; the
	// stash rides the query's reader, and consuming an entry (Take removes
	// it) is the moment its transfer lands in the I/O stats.
	if st, ok := r.(*artifact.Stashed); ok {
		if b, ok := st.S.Take(artifact.Request{Unit: unit, Topic: topic, Aux: aux}); ok {
			if int64(len(b)) != length {
				return nil, fmt.Errorf("irrindex: remote %s artifact for keyword %d is %d bytes, directory says %d",
					unit, topic, len(b), length)
			}
			r.Counter().Record(off, len(b))
			return b, nil
		}
	}
	b, err := idx.fetch.Fetch(ctx, unit, topic, aux)
	if err != nil {
		return nil, err
	}
	if int64(len(b)) != length {
		return nil, fmt.Errorf("irrindex: remote %s artifact for keyword %d is %d bytes, directory says %d",
			unit, topic, len(b), length)
	}
	r.Counter().Record(off, len(b))
	return b, nil
}

// Header returns the index-wide metadata.
func (idx *Index) Header() Header { return idx.hdr }

// Keywords returns the indexed topic IDs (unordered).
func (idx *Index) Keywords() []int {
	out := make([]int, 0, len(idx.dirs))
	for t := range idx.dirs {
		out = append(out, t)
	}
	return out
}

// Dir exposes one keyword's directory entry (nil if not indexed).
func (idx *Index) Dir(topicID int) *KeywordDir { return idx.dirs[topicID] }

// Plan computes the per-keyword RR-set allocation θ^Q_w = θ^Q·p_w, exactly
// as the RR index does (line 1 of Algorithm 4 = line 1 of Algorithm 2).
func (idx *Index) Plan(q topic.Query) (map[int]int, error) {
	if err := q.Validate(idx.hdr.NumTopics); err != nil {
		return nil, err
	}
	dirs := make([]*KeywordDir, len(q.Topics))
	for i, w := range q.Topics {
		if dirs[i] = idx.dirs[w]; dirs[i] == nil {
			return nil, fmt.Errorf("irrindex: keyword %d not indexed", w)
		}
	}
	return planTopics(&idx.hdr, q, dirs)
}

// planTopics is the Plan body over an explicit per-topic directory list —
// the directories may come from ONE index or from several keyword-sharded
// ones. θ^Q_w depends only on each keyword's (ThetaW, Phi), both frozen per
// keyword at build time, so a sharded deployment allocates exactly like a
// single index.
func planTopics(hdr *Header, q topic.Query, dirs []*KeywordDir) (map[int]int, error) {
	if err := q.Validate(hdr.NumTopics); err != nil {
		return nil, err
	}
	if q.K > hdr.K {
		return nil, fmt.Errorf("irrindex: Q.k=%d exceeds index cap K=%d", q.K, hdr.K)
	}
	var phiQ float64
	for _, d := range dirs {
		phiQ += d.Phi
	}
	if phiQ <= 0 {
		return nil, fmt.Errorf("irrindex: query %v has zero mass", q.Topics)
	}
	thetaQ := math.Inf(1)
	for _, d := range dirs {
		pw := d.Phi / phiQ
		if pw <= 0 {
			continue
		}
		if v := float64(d.ThetaW) / pw; v < thetaQ {
			thetaQ = v
		}
	}
	alloc := make(map[int]int, len(q.Topics))
	for _, d := range dirs {
		t := int64(thetaQ*(d.Phi/phiQ) + 1e-9)
		if t < 1 {
			t = 1
		}
		if t > d.ThetaW {
			t = d.ThetaW
		}
		alloc[d.TopicID] = int(t)
	}
	return alloc, nil
}

// QueryResult is a wris.Result plus IRR-specific access metrics.
type QueryResult struct {
	wris.Result
	// Marginals[i] is the number of newly covered RR sets when Seeds[i]
	// was selected; Theorem 3 says these match Algorithm 2's exactly.
	Marginals []int
	// IO is the logical disk activity (IP reads + partition fetches,
	// including speculative prefetches when query parallelism is on).
	IO diskio.Stats
	// Loaded maps keywords to the number of RR sets (IDs < θ^Q_w) seen in
	// fetched partitions — the Figures 5–7 series for IRR.
	Loaded map[int]int
	// PartitionsLoaded counts partition blocks consumed by the NRA rounds
	// (Table 6's I/O driver). Speculative prefetches the query never
	// consumed are not counted here (they appear in IO only).
	PartitionsLoaded int
	// DecodedHits / DecodedMisses count decoded-cache lookups by this
	// query (zero when no decoded cache is attached). A hit means the
	// artifact was consumed without any read OR decode.
	DecodedHits   int64
	DecodedMisses int64
	// Partial is true when a streaming deadline stopped the NRA loop before
	// k seeds: Seeds is the certified prefix (every entry was decided by the
	// usual COMPLETE ∧ ub ≥ Σkb test — never a guess), and EstSpread is the
	// spread of that prefix, a lower bound on the full answer's.
	Partial bool
}

// decCounters accumulates one query's decoded-cache traffic.
type decCounters struct {
	hits, misses int64
}

// add folds another goroutine's counters in (used after a parallel fetch
// joins; never called concurrently).
func (d *decCounters) add(o decCounters) {
	d.hits += o.hits
	d.misses += o.misses
}

// partFuture is one in-flight speculative partition fetch. The producing
// goroutine owns blk/err/dec until it closes done; the query consumes them
// only after <-done.
type partFuture struct {
	pi   int // partition index being fetched
	done chan struct{}
	blk  *partBlock
	err  error
	dec  decCounters
}

// kwState is the per-keyword in-memory state of one NRA run.
type kwState struct {
	topicID int
	// idx is the index owning this keyword — always the queried index for
	// single-index queries, possibly a different shard per keyword under
	// QueryMulti — and r is that index's per-query I/O scope. Every fetch
	// for this keyword goes through this pair.
	// r is a diskio.Segmented rather than a bare scope because the batch
	// planner reroutes remote keywords through a stash-carrying wrapper.
	idx     *Index
	r       diskio.Segmented
	dir     *KeywordDir
	thetaQw int
	ip      map[uint32]int32 // first occurrence per listed user (shared, read-only)
	// ipHot[u] is the precomputed "IP_w[u] < θ^Q_w" predicate (pooled): the
	// NRA upper-bound refresh asks it for every candidate every round, and a
	// bitmap probe there beats a map lookup by ~an order of magnitude.
	//
	// ipHot and lists are DENSE per-vertex tables, trading O(NumVertices)
	// pooled bytes (and a memclr) per keyword per query for O(1) branchless
	// probes on the hottest loop. At this repo's 1:1000 dataset scale that
	// is ~100s of KB per query; a paper-scale 41M-vertex graph would want
	// the sparse (map) representation back behind a size cutoff — see the
	// ROADMAP item.
	ipHot    []bool
	next     int       // next partition to fetch
	kb       int       // upper bound for users not yet seen in IL_w
	covered  []bool    // covered[rrID] for rrID < thetaQw (pooled)
	lists    [][]int32 // per-user loaded list (pooled; nil = not loaded)
	loaded   int       // RR sets (IDs < thetaQw) seen in fetched partitions
	fetched  int       // partition blocks consumed
	maxParts int
	pref     *partFuture // speculative next-partition fetch, nil when none
	// dec/err carry the parallel load phase's results to the join.
	dec decCounters
	err error
}

// candidate is a priority-queue entry; stale bounds are corrected on pop.
type candidate struct {
	user uint32
	ub   int
}

// candPool recycles heap backing arrays between queries.
var candPool pool.SlicePool[candidate]

// candHeap is a typed max-heap over candidates. container/heap would box
// every Push/Pop through interface{} — two allocations per operation on the
// NRA hot loop — so the sift operations are implemented directly.
type candHeap struct{ s []candidate }

func (h *candHeap) len() int { return len(h.s) }
func (h *candHeap) less(i, j int) bool {
	if h.s[i].ub != h.s[j].ub {
		return h.s[i].ub > h.s[j].ub
	}
	return h.s[i].user < h.s[j].user
}

func (h *candHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.s[i], h.s[parent] = h.s[parent], h.s[i]
		i = parent
	}
}

func (h *candHeap) down(i int) {
	n := len(h.s)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best := l
		if r := l + 1; r < n && h.less(r, l) {
			best = r
		}
		if !h.less(best, i) {
			break
		}
		h.s[i], h.s[best] = h.s[best], h.s[i]
		i = best
	}
}

// push adds a candidate.
func (h *candHeap) push(c candidate) {
	h.s = append(h.s, c)
	h.up(len(h.s) - 1)
}

// pop removes and returns the root.
func (h *candHeap) pop() candidate {
	top := h.s[0]
	n := len(h.s) - 1
	h.s[0] = h.s[n]
	h.s = h.s[:n]
	h.down(0)
	return top
}

// fix0 restores the heap property after the root was updated in place (the
// lazy upper-bound refresh).
func (h *candHeap) fix0() { h.down(0) }

// Query answers a KB-TIM query with Algorithm 4: incremental NRA top-k
// aggregation over the partitioned, length-sorted inverted lists, with lazy
// upper-bound refinement, terminating each round as soon as the heap top is
// COMPLETE and beats every unseen candidate (Σ_w kb[w]). With
// SetQueryParallelism > 1 the IP tables and first partitions load
// concurrently and each keyword's next partition is speculatively prefetched
// while the current NRA round runs; all NRA state mutation stays sequential,
// so the seed trace is identical to the sequential path.
func (idx *Index) Query(q topic.Query) (*QueryResult, error) {
	return QueryMulti(func(int) *Index { return idx }, q)
}

// QueryCtx is Query with cancellation: ctx is checked at every keyword-load
// and NRA partition-round boundary (and passed to the remote fetcher, when
// one is attached), so a canceled caller stops paying for rounds it no
// longer wants.
func (idx *Index) QueryCtx(ctx context.Context, q topic.Query) (*QueryResult, error) {
	return QueryMultiCtx(ctx, func(int) *Index { return idx }, q)
}

// QueryStreamCtx is QueryCtx with anytime hooks: so.Emit receives each seed
// the moment the NRA test certifies it — typically long before every
// partition is loaded — and an expired so.Deadline returns the certified
// prefix so far with Partial=true instead of an error.
func (idx *Index) QueryStreamCtx(ctx context.Context, q topic.Query, so wris.StreamOptions) (*QueryResult, error) {
	return QueryMultiStreamCtx(ctx, func(int) *Index { return idx }, q, so)
}

// QueryMulti answers a KB-TIM query with Algorithm 4 over a
// keyword-partitioned set of indexes: owner(w) returns the Index holding
// keyword w (nil = not indexed anywhere). The NRA aggregation is already
// organized as per-keyword state advancing round by round; here each
// keyword's state simply fetches from ITS owning index through that index's
// per-query I/O scope. Per-keyword partitions, IP tables, and the
// allocation plan are bit-identical however the universe is partitioned
// (sampling is seeded by topic ID alone), and all NRA state mutation stays
// sequential in query-keyword order — so a query spanning N shard indexes
// returns exactly the seeds, marginals, and spread a single full index
// would. The reported IO is the sum over the involved indexes' scopes.
func QueryMulti(owner func(topic int) *Index, q topic.Query) (*QueryResult, error) {
	return QueryMultiCtx(context.Background(), owner, q)
}

// QueryMultiCtx is QueryMulti with cancellation: ctx is checked before every
// keyword's IP load and at the top of every NRA partition round, so a
// canceled query stops within one round — it never fetches another full
// round of partitions for a client that hung up. Outstanding speculative
// prefetches are still drained before returning (they read through this
// query's I/O scope), so cancellation never leaks a goroutine into a
// released index handle.
func QueryMultiCtx(ctx context.Context, owner func(topic int) *Index, q topic.Query) (*QueryResult, error) {
	return QueryMultiStreamCtx(ctx, owner, q, wris.StreamOptions{})
}

// QueryMultiStreamCtx is QueryMultiCtx with anytime hooks; QueryMultiCtx is
// this function with zero options, so batch and streaming share one body and
// parity holds by construction. so.Emit is invoked synchronously the moment
// the NRA certification test (heap top COMPLETE with ub ≥ Σ_w kb[w]) decides
// a seed — the defining win of the IRR layout is that this happens while
// partitions are still unloaded — carrying the seed, its marginal, and the
// running spread lower bound Covered/θ^Q·φ^Q of the emitted prefix. A
// non-zero so.Deadline is checked at the same partition-round boundary as
// cancellation; once expired the loop stops and returns the certified prefix
// with Partial=true (zero-marginal padding is skipped — padding is only
// correct once every partition is decided, which a cut-short query cannot
// claim).
func QueryMultiStreamCtx(ctx context.Context, owner func(topic int) *Index, q topic.Query, so wris.StreamOptions) (*QueryResult, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(q.Topics) == 0 {
		return nil, fmt.Errorf("irrindex: query needs at least one keyword")
	}
	// Resolve the owning indexes. The overwhelmingly common case — every
	// keyword on ONE index (single-engine deployments, replicate shards,
	// co-located fast paths) — is detected first so it allocates none of
	// the multi-index bookkeeping; only genuinely spanning queries pay.
	base := owner(q.Topics[0])
	if base == nil {
		return nil, fmt.Errorf("irrindex: keyword %d not indexed", q.Topics[0])
	}
	multi := false
	for _, w := range q.Topics[1:] {
		ix := owner(w)
		if ix == nil {
			return nil, fmt.Errorf("irrindex: keyword %d not indexed", w)
		}
		if ix != base {
			multi = true
		}
	}
	var (
		idxOf  []*Index        // per-topic owner, nil when single-index
		uniq   []*Index        // distinct involved indexes, nil when single
		scopes []*diskio.Scope // per-query I/O scopes, parallel to uniq
		scope0 *diskio.Scope   // the single-index scope
	)
	if multi {
		idxOf = make([]*Index, len(q.Topics))
		for i, w := range q.Topics {
			ix := owner(w)
			idxOf[i] = ix
			known := false
			for _, u := range uniq {
				if u == ix {
					known = true
					break
				}
			}
			if !known {
				uniq = append(uniq, ix)
			}
		}
		for _, u := range uniq[1:] {
			if u.hdr.NumVertices != base.hdr.NumVertices || u.hdr.NumTopics != base.hdr.NumTopics || u.hdr.K != base.hdr.K {
				return nil, fmt.Errorf("irrindex: shard indexes built over different datasets or caps (|V| %d vs %d, |T| %d vs %d, K %d vs %d)",
					base.hdr.NumVertices, u.hdr.NumVertices, base.hdr.NumTopics, u.hdr.NumTopics, base.hdr.K, u.hdr.K)
			}
		}
		// All reads go through per-query scopes (one per involved index):
		// precise I/O accounting with no shared cursor, so concurrent
		// queries cannot race or pollute each other's sequential/random
		// classification.
		scopes = make([]*diskio.Scope, len(uniq))
		for i, u := range uniq {
			scopes[i] = diskio.NewScope(u.r)
		}
	} else {
		scope0 = diskio.NewScope(base.r)
	}
	idxAt := func(i int) *Index {
		if idxOf == nil {
			return base
		}
		return idxOf[i]
	}
	scopeAt := func(i int) *diskio.Scope {
		if idxOf == nil {
			return scope0
		}
		for j, u := range uniq {
			if u == idxOf[i] {
				return scopes[j]
			}
		}
		return nil // unreachable: every owner is in uniq
	}
	// Validate BEFORE the directory lookups so an out-of-space keyword is
	// reported as such ("outside topic space"), not as a coverage gap.
	if err := q.Validate(base.hdr.NumTopics); err != nil {
		return nil, err
	}
	dirOf := make([]*KeywordDir, len(q.Topics))
	for i, w := range q.Topics {
		if dirOf[i] = idxAt(i).dirs[w]; dirOf[i] == nil {
			return nil, fmt.Errorf("irrindex: keyword %d not indexed", w)
		}
	}
	nv := base.hdr.NumVertices
	alloc, err := planTopics(&base.hdr, q, dirOf)
	if err != nil {
		return nil, err
	}
	par := base.par
	for _, u := range uniq {
		if u.par > par {
			par = u.par
		}
	}

	var dec decCounters
	states := make([]*kwState, 0, len(q.Topics))
	var phiQ float64
	var blocks []*partBlock // consumed query-private (pool-backed) blocks
	h := &candHeap{}
	pushed := pool.Bools(nv)
	pending := pool.Uint32s(64)[:0] // users discovered by the latest fetches
	// fetchSem bounds ALL of this query's concurrent artifact loads — the
	// parallel IP phase and every speculative partition prefetch — at the
	// configured parallelism (shared across shard indexes, so a scatter
	// query cannot multiply its load budget by the shard count).
	var fetchSem chan struct{}
	if par > 1 {
		fetchSem = make(chan struct{}, par)
	}
	// drainPrefetch settles outstanding speculative fetches. They MUST
	// finish before the query returns: they read through this query's I/O
	// scope, and the caller may release the index handle (closing the file)
	// as soon as Query returns. On the success path (fold=true) their
	// decoded-cache traffic is folded into the query's counters — their
	// reads are already in the I/O scope, so dropping the counters would
	// let DecodedHits+Misses drift from IO — and their unconsumed
	// pool-backed blocks go back to the pools.
	drainPrefetch := func(fold bool) {
		for _, st := range states {
			f := st.pref
			if f == nil {
				continue
			}
			st.pref = nil
			<-f.done
			if fold {
				dec.add(f.dec)
			}
			if f.blk != nil {
				f.blk.release() // no-op for cache-shared blocks
			}
		}
	}
	defer func() {
		drainPrefetch(false)
		for _, st := range states {
			if st.covered != nil {
				pool.PutBools(st.covered)
			}
			if st.lists != nil {
				pool.PutInt32Lists(st.lists)
			}
			if st.ipHot != nil {
				pool.PutBools(st.ipHot)
			}
		}
		for _, blk := range blocks {
			blk.release()
		}
		pool.PutBools(pushed)
		pool.PutUint32s(pending)
		candPool.Put(h.s)
	}()

	for i, w := range q.Topics {
		d := dirOf[i]
		phiQ += d.Phi
		st := &kwState{
			topicID:  w,
			idx:      idxAt(i),
			r:        scopeAt(i),
			dir:      d,
			thetaQw:  alloc[w],
			next:     0,
			kb:       math.MaxInt32,
			covered:  pool.Bools(alloc[w]),
			lists:    pool.Int32Lists(nv),
			ipHot:    pool.Bools(nv),
			maxParts: len(d.Partitions),
		}
		states = append(states, st)
	}
	// Candidates are exactly the users listed in some IL_w, so the summed IP
	// entry counts bound the heap.
	hintCands := 0
	for _, st := range states {
		hintCands += st.dir.NumIPEntries
	}
	h.s = candPool.Get(hintCands)[:0]

	spec := par > 1
	// Wire batching: every remote batch-capable index gets a per-query stash
	// and each keyword's reads are rerouted through a stash-carrying reader;
	// from here on each fetch round PLANS its needs (all keywords' next
	// partitions plus the speculative lookahead), groups them by owning
	// index, and moves them in one batch round trip per backend. Local
	// indexes and plain fetchers make this a no-op.
	wp := newWirePlanner(states, spec)
	wp.planInitial(ctx, states)
	if spec && len(states) > 1 {
		// Parallel load phase: every keyword's IP table is fetched and
		// decoded concurrently (bounded by fetchSem), and its first
		// partition is kicked off as a speculative fetch the priming loop
		// consumes.
		var wg sync.WaitGroup
		for _, st := range states {
			wg.Add(1)
			go func(st *kwState) {
				defer wg.Done()
				fetchSem <- struct{}{}
				defer func() { <-fetchSem }()
				if st.err = ctx.Err(); st.err != nil {
					return
				}
				st.err = st.idx.loadIP(ctx, st.r, st, &st.dec)
				if st.err == nil && st.maxParts > 0 {
					st.pref = st.idx.prefetchPartition(ctx, st.r, st, fetchSem)
				}
			}(st)
		}
		wg.Wait()
		for _, st := range states {
			dec.add(st.dec)
			if st.err != nil {
				return nil, fmt.Errorf("irrindex: keyword %d IP: %w", st.topicID, st.err)
			}
		}
	} else {
		for _, st := range states {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := st.idx.loadIP(ctx, st.r, st, &dec); err != nil {
				return nil, fmt.Errorf("irrindex: keyword %d IP: %w", st.topicID, err)
			}
		}
	}

	// Prime with the first partition of every keyword.
	for _, st := range states {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pending, err = st.idx.loadNextPartition(ctx, st.r, st, pushed, &dec, fetchSem, &blocks, pending)
		if err != nil {
			return nil, err
		}
	}

	sumKB := func() int {
		total := 0
		for _, st := range states {
			total += st.kb
		}
		return total
	}
	// ubOf returns the upper-bound score of u and whether it is COMPLETE
	// (all partial scores exact). Results are memoized under a version
	// stamp: the inputs (covered marks, loaded lists, kb) only change when a
	// seed is picked or a partition-load round completes, and each of those
	// bumps ubVersion — so the heap's refresh-then-decide double call (and
	// every flushPending re-push) costs one list scan, not two.
	ubVersion := int32(1)
	ubMemo := pool.Int32s(nv)
	ubStamp := pool.Int32s(nv)
	ubComplete := pool.Bools(nv)
	defer func() {
		pool.PutInt32s(ubMemo)
		pool.PutInt32s(ubStamp)
		pool.PutBools(ubComplete)
	}()
	ubOf := func(u uint32) (int, bool) {
		if ubStamp[u] == ubVersion {
			return int(ubMemo[u]), ubComplete[u]
		}
		total, complete := 0, true
		for _, st := range states {
			if list := st.lists[u]; list != nil {
				for _, id := range list {
					if !st.covered[id] {
						total++
					}
				}
				continue
			}
			if !st.ipHot[u] {
				continue // exact partial score 0 (line "IP_w[v] ≥ θ^Q_w")
			}
			total += st.kb
			complete = false
		}
		ubStamp[u] = ubVersion
		ubMemo[u] = int32(total)
		ubComplete[u] = complete
		return total, complete
	}

	// flushPending pushes newly discovered users with a CHEAP upper bound:
	// a loaded list's full length (≥ its uncovered count, no covered scan)
	// plus kb for every keyword still pending. That is ≥ ubOf(u) at push
	// time, and exact partial scores and kb only shrink afterwards, so heap
	// entries always overestimate — the invariant lazy refinement relies
	// on. The exact (covered-scanning) ubOf runs only for entries that
	// reach the heap top, which is what makes discovery O(keywords) per
	// user instead of O(total list length).
	flushPending := func() {
		for _, u := range pending {
			ub := 0
			for _, st := range states {
				if list := st.lists[u]; list != nil {
					ub += len(list)
				} else if st.ipHot[u] {
					ub += st.kb
				}
			}
			h.push(candidate{user: u, ub: ub})
		}
		pending = pending[:0]
	}
	flushPending()

	res := &QueryResult{Loaded: make(map[int]int, len(states))}
	picked := pool.Bools(nv)
	defer func() { pool.PutBools(picked) }()
	// θ^Q = Σ_w θ^Q_w and φ^Q are both fixed by the plan before any seed is
	// selected, so the running spread lower bound of an emitted prefix uses
	// the same formula as the final EstSpread — emissions never over-promise.
	totalTheta := 0
	for _, st := range states {
		totalTheta += st.thetaQw
	}
	// emit is THE way a seed enters the result — certified picks and
	// zero-marginal padding both funnel through it, so the emitted stream and
	// the returned batch prefix are equal by construction.
	emit := func(seed uint32, marginal int) {
		picked[seed] = true
		res.Seeds = append(res.Seeds, seed)
		res.Marginals = append(res.Marginals, marginal)
		res.Covered += marginal
		if so.Emit != nil {
			so.Emit(seed, marginal, float64(res.Covered)/float64(totalTheta)*phiQ)
		}
	}
	// padZeros fills the remaining seed slots with zero-marginal vertices in
	// exactly coverage.Solve's order: smallest unpicked vertex ID over ALL
	// vertices, listed in an inverted file or not. Using the candidate heap
	// here instead would visit listed users first (smallest-user tie-break
	// among heap entries only) and break the Theorem-3 trace equality the
	// moment marginals hit zero.
	padZeros := func() {
		for v := 0; len(res.Seeds) < q.K && v < nv; v++ {
			if !picked[v] {
				emit(uint32(v), 0)
			}
		}
	}
	for len(res.Seeds) < q.K {
		// The partition-round boundary: each iteration fetches at most one
		// round of partitions, so a canceled client's query stops within one
		// round instead of running Algorithm 4 to completion. The anytime
		// deadline shares the boundary, but keeps the certified prefix.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if so.Expired() {
			res.Partial = true
			break
		}
		if h.len() == 0 {
			// The heap drained, but undiscovered users in unloaded
			// partitions may still score positively — padding now would
			// silently skip them. Keep fetching; pad only once every
			// partition is loaded (then every unpicked vertex is exactly
			// zero-marginal).
			wp.planRound(ctx, states)
			progress := false
			for _, st := range states {
				if st.next < st.maxParts {
					pending, err = st.idx.loadNextPartition(ctx, st.r, st, pushed, &dec, fetchSem, &blocks, pending)
					if err != nil {
						return nil, err
					}
					progress = true
				}
			}
			ubVersion++
			flushPending()
			if progress {
				continue
			}
			padZeros()
			break
		}
		top := h.s[0]
		if picked[top.user] {
			h.pop()
			continue
		}
		ub, complete := ubOf(top.user)
		if ub != top.ub {
			h.s[0].ub = ub
			h.fix0()
			continue
		}
		if complete && ub >= sumKB() {
			if ub == 0 {
				// The decided marginal is 0 and it bounds every other
				// candidate (heap entries overestimate, unseen users are
				// bounded by Σkb ≤ 0), so every remaining vertex has
				// marginal 0: switch to the solver's global padding order.
				padZeros()
				break
			}
			h.pop()
			emit(top.user, ub)
			for _, st := range states {
				for _, id := range st.lists[top.user] {
					st.covered[id] = true
				}
			}
			ubVersion++
			continue
		}
		// Not decidable yet: fetch the next partition of every keyword.
		wp.planRound(ctx, states)
		progress := false
		for _, st := range states {
			if st.next < st.maxParts {
				pending, err = st.idx.loadNextPartition(ctx, st.r, st, pushed, &dec, fetchSem, &blocks, pending)
				if err != nil {
					return nil, err
				}
				progress = true
			}
		}
		ubVersion++
		flushPending()
		if !progress {
			// Everything is loaded, so every candidate is COMPLETE and
			// kb = 0; the next pop decides. Guard against a logic error
			// that would otherwise spin forever.
			if complete {
				return nil, fmt.Errorf("irrindex: NRA made no progress (internal invariant violated)")
			}
		}
	}

	// Settle outstanding speculation BEFORE reading the counters, so the
	// reported decoded hits/misses cover exactly the lookups whose I/O the
	// scope recorded.
	drainPrefetch(true)
	for _, st := range states {
		res.Loaded[st.topicID] = st.loaded
		res.NumRRSets += st.loaded
		res.PartitionsLoaded += st.fetched
	}
	res.EstSpread = float64(res.Covered) / float64(totalTheta) * phiQ
	if multi {
		for _, s := range scopes {
			res.IO = res.IO.Add(s.Stats())
		}
	} else {
		res.IO = scope0.Stats()
	}
	res.DecodedHits = dec.hits
	res.DecodedMisses = dec.misses
	res.Elapsed = time.Since(start)
	return res, nil
}

// specLookahead is how many partitions ahead of the NRA cursor a batch
// round fetches per keyword when speculative prefetching is on. Chunking is
// what turns batching from "fewer, fatter requests" into "fewer wire
// ROUNDS": a lookahead of L serves ~L NRA rounds from the stash per round
// trip, at the cost of up to L−1 partitions of over-fetch per keyword when
// the NRA test certifies early. Partitions are small (length-sorted tails),
// and with a decoded cache attached over-fetched blocks are warmup, not
// waste — the same trade the single-partition speculation already makes.
// Without speculation the planner fetches exactly the round's needs.
const specLookahead = 4

// wirePlanner batches the query's wire needs per fetch round: one stash per
// remote batch-capable index, shared by all of that index's keywords and by
// the per-unit decode path that consumes it (see Index.artifact).
type wirePlanner struct {
	stashes map[*Index]*artifact.Stash
	spec    bool
}

// newWirePlanner prepares a stash for every involved index whose fetcher is
// batch-capable and reroutes those keywords' reads through a stash-carrying
// reader. Queries over local indexes (or plain fetchers) get a planner whose
// every method is a no-op.
func newWirePlanner(states []*kwState, spec bool) *wirePlanner {
	wp := &wirePlanner{spec: spec}
	for _, st := range states {
		if st.idx.fetch == nil {
			continue
		}
		if _, ok := st.idx.fetch.(BatchFetcher); !ok {
			continue
		}
		stash := wp.stashes[st.idx]
		if stash == nil {
			if wp.stashes == nil {
				wp.stashes = make(map[*Index]*artifact.Stash)
			}
			stash = artifact.NewStash()
			wp.stashes[st.idx] = stash
		}
		st.r = &artifact.Stashed{Segmented: st.r, S: stash}
	}
	return wp
}

// lookahead is the per-keyword partition chunk one batch round asks for.
func (wp *wirePlanner) lookahead() int {
	if wp.spec {
		return specLookahead
	}
	return 1
}

// partCovered reports whether partition pi of st's keyword needs no wire:
// an in-flight speculative future is fetching it, a prior batch already
// stashed it, or the decoded cache holds it.
func (wp *wirePlanner) partCovered(st *kwState, stash *artifact.Stash, pi int) bool {
	if f := st.pref; f != nil && f.pi == pi {
		return true
	}
	if stash.Has(artifact.Request{Unit: UnitPart, Topic: st.dir.TopicID, Aux: int64(pi)}) {
		return true
	}
	return st.idx.dec != nil &&
		st.idx.dec.Contains(objcache.Key{Region: regionPart, Topic: int32(st.dir.TopicID), Aux: int64(pi)})
}

// planInitial batches the query's opening needs — every keyword's IP table
// and its first partition chunk — into one round trip per owning index.
func (wp *wirePlanner) planInitial(ctx context.Context, states []*kwState) {
	if wp.stashes == nil {
		return
	}
	var plans map[*Index][]artifact.Request
	for _, st := range states {
		stash := wp.stashes[st.idx]
		if stash == nil {
			continue
		}
		if plans == nil {
			plans = make(map[*Index][]artifact.Request)
		}
		if st.idx.dec == nil || !st.idx.dec.Contains(objcache.Key{Region: regionIP, Topic: int32(st.dir.TopicID)}) {
			plans[st.idx] = append(plans[st.idx], artifact.Request{Unit: UnitIP, Topic: st.dir.TopicID})
		}
		for pi := 0; pi < wp.lookahead() && pi < st.maxParts; pi++ {
			if !wp.partCovered(st, stash, pi) {
				plans[st.idx] = append(plans[st.idx], artifact.Request{Unit: UnitPart, Topic: st.dir.TopicID, Aux: int64(pi)})
			}
		}
	}
	wp.issue(ctx, plans)
}

// planRound batches the partitions the coming fetch round will read. It
// fires only when some keyword's imminent needs (the next partition, plus
// the speculative next when prefetching is on) are not already covered; a
// triggered index then gets the full lookahead chunk of EVERY keyword it
// owns, so the following rounds ride the stash instead of the wire.
func (wp *wirePlanner) planRound(ctx context.Context, states []*kwState) {
	if wp.stashes == nil {
		return
	}
	var need map[*Index]bool
	for _, st := range states {
		stash := wp.stashes[st.idx]
		if stash == nil || st.next >= st.maxParts {
			continue
		}
		span := 1
		if wp.spec {
			span = 2 // the round consumes next and kicks a prefetch of next+1
		}
		for pi := st.next; pi < st.next+span && pi < st.maxParts; pi++ {
			if !wp.partCovered(st, stash, pi) {
				if need == nil {
					need = make(map[*Index]bool)
				}
				need[st.idx] = true
				break
			}
		}
	}
	if need == nil {
		return
	}
	plans := make(map[*Index][]artifact.Request)
	for _, st := range states {
		stash := wp.stashes[st.idx]
		if stash == nil || !need[st.idx] {
			continue
		}
		for pi := st.next; pi < st.next+wp.lookahead() && pi < st.maxParts; pi++ {
			if !wp.partCovered(st, stash, pi) {
				plans[st.idx] = append(plans[st.idx], artifact.Request{Unit: UnitPart, Topic: st.dir.TopicID, Aux: int64(pi)})
			}
		}
	}
	wp.issue(ctx, plans)
}

// issue moves each index's plan in one FetchBatch (concurrently across
// indexes, so a spanning query's backends are hit in parallel) and stashes
// every successful payload. Failed units are simply not stashed: the
// per-unit fetch path retries them with its own failover and surfaces
// errors with the usual keyword context. Single-unit plans are dropped —
// one POST saves nothing over one GET.
func (wp *wirePlanner) issue(ctx context.Context, plans map[*Index][]artifact.Request) {
	var wg sync.WaitGroup
	for ix, reqs := range plans {
		if len(reqs) < 2 {
			continue
		}
		wg.Add(1)
		go func(bf BatchFetcher, stash *artifact.Stash, reqs []artifact.Request) {
			defer wg.Done()
			for k, rep := range bf.FetchBatch(ctx, reqs) {
				if rep.Err == nil {
					stash.Put(reqs[k], rep.Payload)
				}
			}
		}(ix.fetch.(BatchFetcher), wp.stashes[ix], reqs)
	}
	wg.Wait()
}

// loadIP attaches a keyword's first-occurrence table to st, through the
// decoded cache when one is attached. The table is shared read-only between
// queries.
func (idx *Index) loadIP(ctx context.Context, r diskio.Segmented, st *kwState, dec *decCounters) error {
	if idx.dec == nil {
		ip, err := idx.decodeIP(ctx, r, st.dir)
		if err != nil {
			return err
		}
		st.ip = ip
		st.fillIPHot()
		return nil
	}
	// The loader runs under singleflight: concurrent queries share one
	// load, so it must not die with the query that happened to lead it — a
	// canceled leader would poison every live waiter with ITS ctx error.
	// Detach cancellation for the load; the canceled query still stops at
	// its next boundary check.
	lctx := context.WithoutCancel(ctx)
	v, hit, err := idx.dec.GetOrLoad(
		objcache.Key{Region: regionIP, Topic: int32(st.dir.TopicID)},
		func() (any, int64, error) {
			ip, err := idx.decodeIP(lctx, r, st.dir)
			if err != nil {
				return nil, 0, err
			}
			// Rough map footprint: key + value + bucket overhead.
			return ip, int64(len(ip)) * 16, nil
		})
	if err != nil {
		return err
	}
	if hit {
		dec.hits++
	} else {
		dec.misses++
	}
	st.ip = v.(map[uint32]int32)
	st.fillIPHot()
	return nil
}

// fillIPHot precomputes the "listed below the θ^Q_w horizon" predicate the
// NRA upper-bound refresh probes for every candidate every round.
func (st *kwState) fillIPHot() {
	for u, fo := range st.ip {
		if int(fo) < st.thetaQw {
			st.ipHot[u] = true
		}
	}
}

// decodeIP reads and parses a keyword's first-occurrence table through the
// query's scope.
func (idx *Index) decodeIP(ctx context.Context, r diskio.Segmented, d *KeywordDir) (map[uint32]int32, error) {
	buf, err := idx.artifact(ctx, r, UnitIP, d.TopicID, 0, d.IPOff, d.IPLen)
	if err != nil {
		return nil, err
	}
	br := binfmt.NewReader(buf)
	ip := make(map[uint32]int32, d.NumIPEntries)
	for i := 0; i < d.NumIPEntries; i++ {
		v := br.Uvarint()
		fo := br.Uvarint()
		if br.Err() != nil {
			return nil, br.Err()
		}
		if v >= uint64(idx.hdr.NumVertices) || fo >= uint64(d.ThetaW) {
			return nil, fmt.Errorf("%w: bad IP entry (%d→%d)", ErrBadFormat, v, fo)
		}
		ip[uint32(v)] = int32(fo)
	}
	if br.Remaining() != 0 {
		return nil, fmt.Errorf("%w: IP region has trailing bytes", ErrBadFormat)
	}
	return ip, nil
}

// partBlock is one fully decoded partition: users[i]'s ascending, UNtrimmed
// inverted list is lists[i]; setIDs are the RR sets first claimed by this
// block (the IR part — member lists are skipped, queries never need them).
// Cache-shared blocks are read-only and never pooled; query-private blocks
// (no decoded cache) borrow their backing arrays from the scratch pools
// (arena backs every lists[i]) and are released at query end. Cached blocks
// are shared read-only; post-construction writes outside the constructing
// function are checked by kbtim-lint's cacheimmutable.
//
//kbtim:cached
type partBlock struct {
	users  []uint32
	lists  [][]int32
	setIDs []uint32
	arena  []int32 // backing of lists when pool-backed, nil otherwise
}

// release returns a pool-backed block's arrays; a no-op for shared blocks.
func (b *partBlock) release() {
	if b.arena == nil {
		return
	}
	pool.PutUint32s(b.users)
	pool.PutUint32s(b.setIDs)
	pool.PutInt32Lists(b.lists)
	pool.PutInt32s(b.arena)
	b.arena = nil
}

// prefetchPartition starts fetching st's next partition in the background
// and returns the future the next loadNextPartition consumes. The goroutine
// owns the future's fields until done is closed, and takes a slot on the
// query's fetch semaphore so speculation honors the parallelism bound.
func (idx *Index) prefetchPartition(ctx context.Context, r diskio.Segmented, st *kwState, sem chan struct{}) *partFuture {
	f := &partFuture{pi: st.next, done: make(chan struct{})}
	d, t := st.dir, st.thetaQw
	go func() {
		defer close(f.done)
		sem <- struct{}{}
		defer func() { <-sem }()
		f.blk, f.err = idx.partition(ctx, r, d, f.pi, t, &f.dec)
	}()
	return f
}

// loadNextPartition obtains one partition block — from the keyword's
// speculative prefetch when one is in flight, else synchronously (a single
// random I/O on a decoded-cache miss) — merges its inverted lists into st
// (trimmed to IDs < θ^Q_w by slicing the shared block), counts its RR sets,
// lowers kb, appends users not seen before to pending (the caller pushes
// them once their cross-keyword upper bound is known), and, when spec is
// set, kicks off the NEXT partition's speculative fetch. Query-private
// blocks are appended to *blocks for release at query end.
func (idx *Index) loadNextPartition(ctx context.Context, r diskio.Segmented, st *kwState, pushed []bool, dec *decCounters, sem chan struct{}, blocks *[]*partBlock, pending []uint32) ([]uint32, error) {
	if st.next >= st.maxParts {
		return pending, nil
	}
	pi := st.next
	var blk *partBlock
	var err error
	if f := st.pref; f != nil && f.pi == pi {
		st.pref = nil
		<-f.done
		dec.add(f.dec)
		blk, err = f.blk, f.err
	} else {
		blk, err = idx.partition(ctx, r, st.dir, pi, st.thetaQw, dec)
	}
	if err != nil {
		return pending, err
	}
	if blk.arena != nil {
		*blocks = append(*blocks, blk)
	}
	st.next++
	st.fetched++
	for i, u := range blk.users {
		list := blk.lists[i]
		cut := len(list)
		// IDs ascend, so when the last one is inside the θ^Q_w horizon the
		// whole list survives — the overwhelmingly common case; binary
		// search only otherwise.
		if cut > 0 && list[cut-1] >= int32(st.thetaQw) {
			cut = sort.Search(cut, func(j int) bool { return list[j] >= int32(st.thetaQw) })
		}
		// list is never nil (even a fully trimmed one keeps its base
		// pointer), so a stored entry always reads as "loaded" in ubOf.
		st.lists[u] = list[:cut]
		if !pushed[u] {
			pushed[u] = true
			pending = append(pending, u)
		}
	}
	for _, id := range blk.setIDs {
		if id < uint32(st.thetaQw) {
			st.loaded++
		}
	}

	// kb: unseen users' lists are no longer than the shortest list just
	// loaded; once everything is loaded no unseen user remains.
	if st.next >= st.maxParts {
		st.kb = 0
	} else {
		st.kb = st.dir.Partitions[pi].LastListLen
		if st.kb > st.thetaQw {
			st.kb = st.thetaQw
		}
		if sem != nil && st.pref == nil {
			st.pref = idx.prefetchPartition(ctx, r, st, sem)
		}
	}
	return pending, nil
}

// partition returns one decoded partition block, through the decoded cache
// when attached. Without a cache the block is query-private and pool-backed,
// so its lists are trimmed to IDs < thetaQw during decode; the cached
// artifact is decoded in full (and never pooled) because it is shared by
// queries with different θ^Q_w.
func (idx *Index) partition(ctx context.Context, r diskio.Segmented, d *KeywordDir, pi, thetaQw int, dec *decCounters) (*partBlock, error) {
	if idx.dec == nil {
		return idx.decodePartition(ctx, r, d, pi, thetaQw, true)
	}
	// Detached ctx for the same singleflight-sharing reason as loadIP.
	lctx := context.WithoutCancel(ctx)
	v, hit, err := idx.dec.GetOrLoad(
		objcache.Key{Region: regionPart, Topic: int32(d.TopicID), Aux: int64(pi)},
		func() (any, int64, error) {
			blk, err := idx.decodePartition(lctx, r, d, pi, int(d.ThetaW), false)
			if err != nil {
				return nil, 0, err
			}
			size := int64(len(blk.users))*28 + int64(len(blk.setIDs))*4
			for _, l := range blk.lists {
				size += int64(len(l)) * 4
			}
			return blk, size, nil
		})
	if err != nil {
		return nil, err
	}
	if hit {
		dec.hits++
	} else {
		dec.misses++
	}
	return v.(*partBlock), nil
}

// decodePartition reads and decodes partition pi of keyword d: the IL
// part's user lists trimmed to RR-set IDs < limit (IDs ascend, so the kept
// part is a prefix), and the IR part's claimed-ID list only — the v2 layout
// fronts those IDs and length-prefixes the member lists, so nothing steps
// over member bytes at all. A pooled block borrows its backing arrays from the scratch
// pools; its arena is pre-sized to the partition's byte length (a safe upper
// bound on decoded entries — every entry costs at least one byte), so the
// per-user subslices never move.
func (idx *Index) decodePartition(ctx context.Context, r diskio.Segmented, d *KeywordDir, pi, limit int, pooled bool) (_ *partBlock, err error) {
	p := d.Partitions[pi]
	buf, err := idx.artifact(ctx, r, UnitPart, d.TopicID, int64(pi), p.Off, p.Len)
	if err != nil {
		return nil, err
	}
	br := binfmt.NewReader(buf)
	blk := &partBlock{}
	if pooled {
		blk.users = pool.Uint32s(p.NumUsers)[:0]
		blk.lists = pool.Int32Lists(p.NumUsers)[:0]
		blk.setIDs = pool.Uint32s(p.NumSets)[:0]
		blk.arena = pool.Int32s(int(p.Len))[:0]
		// A decode error below abandons blk before the caller ever sees
		// it; return the borrowed arrays instead of leaking them.
		defer func() {
			if err != nil {
				blk.release()
			}
		}()
	} else {
		blk.users = make([]uint32, 0, p.NumUsers)
		blk.lists = make([][]int32, 0, p.NumUsers)
		blk.setIDs = make([]uint32, 0, p.NumSets)
	}
	scratch := pool.Uint32s(64)[:0]
	defer func() { pool.PutUint32s(scratch) }()
	for i := 0; i < p.NumUsers; i++ {
		v := br.Uvarint()
		if br.Err() != nil {
			return nil, br.Err()
		}
		if v >= uint64(idx.hdr.NumVertices) {
			return nil, fmt.Errorf("%w: partition user %d out of range", ErrBadFormat, v)
		}
		scratch = scratch[:0]
		var n int
		scratch, n, err = idx.hdr.Compression.DecodeList(scratch, buf[br.Pos():])
		if err != nil {
			return nil, err
		}
		br.Bytes(n)
		cut := len(scratch)
		for cut > 0 && scratch[cut-1] >= uint32(limit) {
			cut--
		}
		var list []int32
		if pooled {
			start := len(blk.arena)
			for _, id := range scratch[:cut] {
				blk.arena = append(blk.arena, int32(id))
			}
			list = blk.arena[start:len(blk.arena):len(blk.arena)]
		} else {
			list = make([]int32, cut)
			for j, id := range scratch[:cut] {
				list[j] = int32(id)
			}
		}
		blk.users = append(blk.users, uint32(v))
		blk.lists = append(blk.lists, list)
	}
	// IR part v2: one compressed list of claimed set IDs, then the member
	// lists behind a byte-length prefix. Queries only need the IDs, so
	// decode stops after the length check — no scan over member bytes.
	scratch = scratch[:0]
	var n int
	scratch, n, err = idx.hdr.Compression.DecodeList(scratch, buf[br.Pos():])
	if err != nil {
		return nil, err
	}
	br.Bytes(n)
	if len(scratch) != p.NumSets {
		return nil, fmt.Errorf("%w: partition claims %d sets, directory says %d", ErrBadFormat, len(scratch), p.NumSets)
	}
	for _, id := range scratch {
		if uint64(id) >= uint64(d.ThetaW) {
			return nil, fmt.Errorf("%w: partition set ID %d out of range", ErrBadFormat, id)
		}
		blk.setIDs = append(blk.setIDs, id)
	}
	memberBytes := br.Uvarint()
	if br.Err() != nil {
		return nil, br.Err()
	}
	if uint64(br.Remaining()) != memberBytes {
		return nil, fmt.Errorf("%w: partition member region is %d bytes, prefix says %d", ErrBadFormat, br.Remaining(), memberBytes)
	}
	return blk, nil
}
