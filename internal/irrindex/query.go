package irrindex

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"kbtim/internal/binfmt"
	"kbtim/internal/diskio"
	"kbtim/internal/objcache"
	"kbtim/internal/topic"
	"kbtim/internal/wris"
)

// Decoded-cache regions of this index (see objcache.Key).
const (
	regionIP   objcache.Region = iota // Aux = 0 → map[uint32]int32
	regionPart                        // Aux = partition index → *partBlock
)

// Index is an opened IRR index ready for incremental query processing.
// After Open the header and directory are immutable; every Query builds its
// own NRA state (kwState, heap, scratch buffers) and reads through a
// per-query I/O scope, so one Index is safe for concurrent use by multiple
// goroutines (provided the underlying reader supports concurrent positional
// reads, as diskio.File, diskio.Mem, and diskio.CachedReader all do).
type Index struct {
	hdr  Header
	dirs map[int]*KeywordDir
	r    diskio.Segmented
	dec  *objcache.Cache // optional decoded-object cache, set before first Query
}

// Open parses the header and directory of an IRR index accessible via r.
func Open(r diskio.Segmented) (*Index, error) {
	head, err := r.ReadSegment(0, 16)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(head[:4]) != indexMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, head[:4])
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != indexVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	preludeLen := int64(binary.LittleEndian.Uint64(head[8:16]))
	if preludeLen < 16 || preludeLen > r.Size() {
		return nil, fmt.Errorf("%w: implausible prelude length %d", ErrBadFormat, preludeLen)
	}
	prelude, err := r.ReadSegment(0, preludeLen)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	br := binfmt.NewReader(prelude)
	hdr, numKeywords, err := parseHeader(br)
	if err != nil {
		return nil, err
	}
	idx := &Index{hdr: hdr, dirs: make(map[int]*KeywordDir, numKeywords), r: r}
	for i := 0; i < numKeywords; i++ {
		d, err := parseKeywordDir(br, &hdr)
		if err != nil {
			return nil, err
		}
		if d.IPOff < preludeLen || d.IPOff+d.IPLen > r.Size() {
			return nil, fmt.Errorf("%w: IP region for topic %d out of file", ErrBadFormat, d.TopicID)
		}
		for _, p := range d.Partitions {
			if p.Off < preludeLen || p.Off+p.Len > r.Size() {
				return nil, fmt.Errorf("%w: partition out of file for topic %d", ErrBadFormat, d.TopicID)
			}
		}
		dd := d
		idx.dirs[d.TopicID] = &dd
	}
	return idx, nil
}

// SetDecodedCache attaches a decoded-object cache: parsed IP tables and
// partition blocks are cached across queries (with singleflight loading),
// so hot keywords skip both the disk AND the decode. Must be called before
// the index is shared between goroutines (i.e. right after Open); pass nil
// to detach. Cached values are immutable — queries trim inverted lists to
// their private θ^Q_w by slicing.
func (idx *Index) SetDecodedCache(c *objcache.Cache) { idx.dec = c }

// Header returns the index-wide metadata.
func (idx *Index) Header() Header { return idx.hdr }

// Keywords returns the indexed topic IDs (unordered).
func (idx *Index) Keywords() []int {
	out := make([]int, 0, len(idx.dirs))
	for t := range idx.dirs {
		out = append(out, t)
	}
	return out
}

// Dir exposes one keyword's directory entry (nil if not indexed).
func (idx *Index) Dir(topicID int) *KeywordDir { return idx.dirs[topicID] }

// Plan computes the per-keyword RR-set allocation θ^Q_w = θ^Q·p_w, exactly
// as the RR index does (line 1 of Algorithm 4 = line 1 of Algorithm 2).
func (idx *Index) Plan(q topic.Query) (map[int]int, error) {
	if err := q.Validate(idx.hdr.NumTopics); err != nil {
		return nil, err
	}
	if q.K > idx.hdr.K {
		return nil, fmt.Errorf("irrindex: Q.k=%d exceeds index cap K=%d", q.K, idx.hdr.K)
	}
	var phiQ float64
	for _, w := range q.Topics {
		d := idx.dirs[w]
		if d == nil {
			return nil, fmt.Errorf("irrindex: keyword %d not indexed", w)
		}
		phiQ += d.Phi
	}
	if phiQ <= 0 {
		return nil, fmt.Errorf("irrindex: query %v has zero mass", q.Topics)
	}
	thetaQ := math.Inf(1)
	for _, w := range q.Topics {
		d := idx.dirs[w]
		pw := d.Phi / phiQ
		if pw <= 0 {
			continue
		}
		if v := float64(d.ThetaW) / pw; v < thetaQ {
			thetaQ = v
		}
	}
	alloc := make(map[int]int, len(q.Topics))
	for _, w := range q.Topics {
		d := idx.dirs[w]
		t := int64(thetaQ*(d.Phi/phiQ) + 1e-9)
		if t < 1 {
			t = 1
		}
		if t > d.ThetaW {
			t = d.ThetaW
		}
		alloc[w] = int(t)
	}
	return alloc, nil
}

// QueryResult is a wris.Result plus IRR-specific access metrics.
type QueryResult struct {
	wris.Result
	// Marginals[i] is the number of newly covered RR sets when Seeds[i]
	// was selected; Theorem 3 says these match Algorithm 2's exactly.
	Marginals []int
	// IO is the logical disk activity (IP reads + partition fetches).
	IO diskio.Stats
	// Loaded maps keywords to the number of RR sets (IDs < θ^Q_w) seen in
	// fetched partitions — the Figures 5–7 series for IRR.
	Loaded map[int]int
	// PartitionsLoaded counts partition blocks fetched (Table 6's I/O
	// driver).
	PartitionsLoaded int
	// DecodedHits / DecodedMisses count decoded-cache lookups by this
	// query (zero when no decoded cache is attached). A hit means the
	// artifact was consumed without any read OR decode.
	DecodedHits   int64
	DecodedMisses int64
}

// decCounters accumulates one query's decoded-cache traffic.
type decCounters struct {
	hits, misses int64
}

// kwState is the per-keyword in-memory state of one NRA run.
type kwState struct {
	topicID  int
	dir      *KeywordDir
	thetaQw  int
	ip       map[uint32]int32 // first occurrence per listed user (shared, read-only)
	next     int              // next partition to fetch
	kb       int              // upper bound for users not yet seen in IL_w
	covered  []bool           // covered[rrID] for rrID < thetaQw
	lists    map[uint32][]int32
	loaded   int // RR sets (IDs < thetaQw) seen in fetched partitions
	fetched  int // partition blocks fetched
	maxParts int
}

// candidate is a priority-queue entry; stale bounds are corrected on pop.
type candidate struct {
	user uint32
	ub   int
}

type candHeap []candidate

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if h[i].ub != h[j].ub {
		return h[i].ub > h[j].ub
	}
	return h[i].user < h[j].user
}
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(candidate)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Query answers a KB-TIM query with Algorithm 4: incremental NRA top-k
// aggregation over the partitioned, length-sorted inverted lists, with lazy
// upper-bound refinement, terminating each round as soon as the heap top is
// COMPLETE and beats every unseen candidate (Σ_w kb[w]).
func (idx *Index) Query(q topic.Query) (*QueryResult, error) {
	start := time.Now()
	// All reads go through a per-query scope: precise I/O accounting with
	// no shared cursor, so concurrent queries cannot race or pollute each
	// other's sequential/random classification.
	r := diskio.NewScope(idx.r)
	alloc, err := idx.Plan(q)
	if err != nil {
		return nil, err
	}

	var dec decCounters
	states := make([]*kwState, 0, len(q.Topics))
	var phiQ float64
	h := &candHeap{}
	pushed := make(map[uint32]bool)
	var pending []uint32 // users discovered by the latest partition fetches
	for _, w := range q.Topics {
		d := idx.dirs[w]
		phiQ += d.Phi
		st := &kwState{
			topicID:  w,
			dir:      d,
			thetaQw:  alloc[w],
			next:     0,
			kb:       math.MaxInt32,
			covered:  make([]bool, alloc[w]),
			lists:    make(map[uint32][]int32),
			maxParts: len(d.Partitions),
		}
		if err := idx.loadIP(r, st, &dec); err != nil {
			return nil, fmt.Errorf("irrindex: keyword %d IP: %w", w, err)
		}
		states = append(states, st)
	}

	// Prime with the first partition of every keyword.
	for _, st := range states {
		users, err := idx.loadNextPartition(r, st, pushed, &dec)
		if err != nil {
			return nil, err
		}
		pending = append(pending, users...)
	}

	sumKB := func() int {
		total := 0
		for _, st := range states {
			total += st.kb
		}
		return total
	}
	// ubOf returns the upper-bound score of u and whether it is COMPLETE
	// (all partial scores exact).
	ubOf := func(u uint32) (int, bool) {
		total, complete := 0, true
		for _, st := range states {
			if list, ok := st.lists[u]; ok {
				for _, id := range list {
					if !st.covered[id] {
						total++
					}
				}
				continue
			}
			fo, listed := st.ip[u]
			if !listed || int(fo) >= st.thetaQw {
				continue // exact partial score 0 (line "IP_w[v] ≥ θ^Q_w")
			}
			total += st.kb
			complete = false
		}
		return total, complete
	}

	// flushPending pushes newly discovered users with their CURRENT upper
	// bound. At push time ubOf(u) is a valid upper bound, and both exact
	// partial scores and kb only shrink afterwards, so heap entries always
	// overestimate — the invariant lazy refinement relies on.
	flushPending := func() {
		for _, u := range pending {
			ub, _ := ubOf(u)
			heap.Push(h, candidate{user: u, ub: ub})
		}
		pending = pending[:0]
	}
	flushPending()

	res := &QueryResult{Loaded: make(map[int]int, len(states))}
	picked := make(map[uint32]bool, q.K)
	// padZeros fills the remaining seed slots with zero-marginal vertices in
	// exactly coverage.Solve's order: smallest unpicked vertex ID over ALL
	// vertices, listed in an inverted file or not. Using the candidate heap
	// here instead would visit listed users first (smallest-user tie-break
	// among heap entries only) and break the Theorem-3 trace equality the
	// moment marginals hit zero.
	padZeros := func() {
		for v := 0; len(res.Seeds) < q.K && v < idx.hdr.NumVertices; v++ {
			if !picked[uint32(v)] {
				picked[uint32(v)] = true
				res.Seeds = append(res.Seeds, uint32(v))
				res.Marginals = append(res.Marginals, 0)
			}
		}
	}
	for len(res.Seeds) < q.K {
		if h.Len() == 0 {
			// The heap drained, but undiscovered users in unloaded
			// partitions may still score positively — padding now would
			// silently skip them. Keep fetching; pad only once every
			// partition is loaded (then every unpicked vertex is exactly
			// zero-marginal).
			progress := false
			for _, st := range states {
				if st.next < st.maxParts {
					users, err := idx.loadNextPartition(r, st, pushed, &dec)
					if err != nil {
						return nil, err
					}
					pending = append(pending, users...)
					progress = true
				}
			}
			flushPending()
			if progress {
				continue
			}
			padZeros()
			break
		}
		top := (*h)[0]
		if picked[top.user] {
			heap.Pop(h)
			continue
		}
		ub, complete := ubOf(top.user)
		if ub != top.ub {
			(*h)[0].ub = ub
			heap.Fix(h, 0)
			continue
		}
		if complete && ub >= sumKB() {
			if ub == 0 {
				// The decided marginal is 0 and it bounds every other
				// candidate (heap entries overestimate, unseen users are
				// bounded by Σkb ≤ 0), so every remaining vertex has
				// marginal 0: switch to the solver's global padding order.
				padZeros()
				break
			}
			heap.Pop(h)
			picked[top.user] = true
			res.Seeds = append(res.Seeds, top.user)
			res.Marginals = append(res.Marginals, ub)
			res.Covered += ub
			for _, st := range states {
				for _, id := range st.lists[top.user] {
					st.covered[id] = true
				}
			}
			continue
		}
		// Not decidable yet: fetch the next partition of every keyword.
		progress := false
		for _, st := range states {
			if st.next < st.maxParts {
				users, err := idx.loadNextPartition(r, st, pushed, &dec)
				if err != nil {
					return nil, err
				}
				pending = append(pending, users...)
				progress = true
			}
		}
		flushPending()
		if !progress {
			// Everything is loaded, so every candidate is COMPLETE and
			// kb = 0; the next pop decides. Guard against a logic error
			// that would otherwise spin forever.
			if complete {
				return nil, fmt.Errorf("irrindex: NRA made no progress (internal invariant violated)")
			}
		}
	}

	total := 0
	for _, st := range states {
		total += st.thetaQw
		res.Loaded[st.topicID] = st.loaded
		res.NumRRSets += st.loaded
		res.PartitionsLoaded += st.fetched
	}
	res.EstSpread = float64(res.Covered) / float64(total) * phiQ
	res.IO = r.Stats()
	res.DecodedHits = dec.hits
	res.DecodedMisses = dec.misses
	res.Elapsed = time.Since(start)
	return res, nil
}

// loadIP attaches a keyword's first-occurrence table to st, through the
// decoded cache when one is attached. The table is shared read-only between
// queries.
func (idx *Index) loadIP(r diskio.Segmented, st *kwState, dec *decCounters) error {
	if idx.dec == nil {
		ip, err := idx.decodeIP(r, st.dir)
		if err != nil {
			return err
		}
		st.ip = ip
		return nil
	}
	v, hit, err := idx.dec.GetOrLoad(
		objcache.Key{Region: regionIP, Topic: int32(st.dir.TopicID)},
		func() (any, int64, error) {
			ip, err := idx.decodeIP(r, st.dir)
			if err != nil {
				return nil, 0, err
			}
			// Rough map footprint: key + value + bucket overhead.
			return ip, int64(len(ip)) * 16, nil
		})
	if err != nil {
		return err
	}
	if hit {
		dec.hits++
	} else {
		dec.misses++
	}
	st.ip = v.(map[uint32]int32)
	return nil
}

// decodeIP reads and parses a keyword's first-occurrence table through the
// query's scope.
func (idx *Index) decodeIP(r diskio.Segmented, d *KeywordDir) (map[uint32]int32, error) {
	buf, err := r.ReadSegment(d.IPOff, d.IPLen)
	if err != nil {
		return nil, err
	}
	br := binfmt.NewReader(buf)
	ip := make(map[uint32]int32, d.NumIPEntries)
	for i := 0; i < d.NumIPEntries; i++ {
		v := br.Uvarint()
		fo := br.Uvarint()
		if br.Err() != nil {
			return nil, br.Err()
		}
		if v >= uint64(idx.hdr.NumVertices) || fo >= uint64(d.ThetaW) {
			return nil, fmt.Errorf("%w: bad IP entry (%d→%d)", ErrBadFormat, v, fo)
		}
		ip[uint32(v)] = int32(fo)
	}
	if br.Remaining() != 0 {
		return nil, fmt.Errorf("%w: IP region has trailing bytes", ErrBadFormat)
	}
	return ip, nil
}

// partBlock is one fully decoded partition: users[i]'s ascending, UNtrimmed
// inverted list is lists[i]; setIDs are the RR sets first claimed by this
// block (the IR part — member lists are skipped, queries never need them).
// Shared read-only through the decoded cache.
type partBlock struct {
	users  []uint32
	lists  [][]int32
	setIDs []uint32
}

// loadNextPartition fetches one partition block (a single random I/O on a
// decoded-cache miss), merges its inverted lists into st (trimmed to IDs <
// θ^Q_w by slicing the shared block), counts its RR sets, lowers kb, and
// returns the users not seen before (the caller pushes them once their
// cross-keyword upper bound is known).
func (idx *Index) loadNextPartition(r diskio.Segmented, st *kwState, pushed map[uint32]bool, dec *decCounters) ([]uint32, error) {
	if st.next >= st.maxParts {
		return nil, nil
	}
	pi := st.next
	st.next++
	st.fetched++
	blk, err := idx.partition(r, st.dir, pi, st.thetaQw, dec)
	if err != nil {
		return nil, err
	}
	var newUsers []uint32
	for i, u := range blk.users {
		list := blk.lists[i]
		cut := sort.Search(len(list), func(j int) bool { return list[j] >= int32(st.thetaQw) })
		st.lists[u] = list[:cut]
		if !pushed[u] {
			pushed[u] = true
			newUsers = append(newUsers, u)
		}
	}
	for _, id := range blk.setIDs {
		if id < uint32(st.thetaQw) {
			st.loaded++
		}
	}

	// kb: unseen users' lists are no longer than the shortest list just
	// loaded; once everything is loaded no unseen user remains.
	if st.next >= st.maxParts {
		st.kb = 0
	} else {
		st.kb = st.dir.Partitions[pi].LastListLen
		if st.kb > st.thetaQw {
			st.kb = st.thetaQw
		}
	}
	return newUsers, nil
}

// partition returns one decoded partition block, through the decoded cache
// when attached. Without a cache the block is query-private, so its lists
// are trimmed to IDs < thetaQw during decode; the cached artifact is
// decoded in full because it is shared by queries with different θ^Q_w.
func (idx *Index) partition(r diskio.Segmented, d *KeywordDir, pi, thetaQw int, dec *decCounters) (*partBlock, error) {
	if idx.dec == nil {
		return idx.decodePartition(r, d, pi, thetaQw)
	}
	v, hit, err := idx.dec.GetOrLoad(
		objcache.Key{Region: regionPart, Topic: int32(d.TopicID), Aux: int64(pi)},
		func() (any, int64, error) {
			blk, err := idx.decodePartition(r, d, pi, int(d.ThetaW))
			if err != nil {
				return nil, 0, err
			}
			size := int64(len(blk.users))*28 + int64(len(blk.setIDs))*4
			for _, l := range blk.lists {
				size += int64(len(l)) * 4
			}
			return blk, size, nil
		})
	if err != nil {
		return nil, err
	}
	if hit {
		dec.hits++
	} else {
		dec.misses++
	}
	return v.(*partBlock), nil
}

// decodePartition reads and decodes partition pi of keyword d: the IL
// part's user lists trimmed to RR-set IDs < limit (IDs ascend, so the kept
// part is a prefix), and the IR part's RR-set IDs only, stepping over the
// member lists with SkipList instead of materializing them just to be
// thrown away.
func (idx *Index) decodePartition(r diskio.Segmented, d *KeywordDir, pi, limit int) (*partBlock, error) {
	p := d.Partitions[pi]
	buf, err := r.ReadSegment(p.Off, p.Len)
	if err != nil {
		return nil, err
	}
	br := binfmt.NewReader(buf)
	blk := &partBlock{
		users:  make([]uint32, 0, p.NumUsers),
		lists:  make([][]int32, 0, p.NumUsers),
		setIDs: make([]uint32, 0, p.NumSets),
	}
	scratch := make([]uint32, 0, 64)
	for i := 0; i < p.NumUsers; i++ {
		v := br.Uvarint()
		if br.Err() != nil {
			return nil, br.Err()
		}
		if v >= uint64(idx.hdr.NumVertices) {
			return nil, fmt.Errorf("%w: partition user %d out of range", ErrBadFormat, v)
		}
		scratch = scratch[:0]
		var n int
		scratch, n, err = idx.hdr.Compression.DecodeList(scratch, buf[br.Pos():])
		if err != nil {
			return nil, err
		}
		br.Bytes(n)
		cut := len(scratch)
		for cut > 0 && scratch[cut-1] >= uint32(limit) {
			cut--
		}
		list := make([]int32, cut)
		for j, id := range scratch[:cut] {
			list[j] = int32(id)
		}
		blk.users = append(blk.users, uint32(v))
		blk.lists = append(blk.lists, list)
	}
	for i := 0; i < p.NumSets; i++ {
		id := br.Uvarint()
		if br.Err() != nil {
			return nil, br.Err()
		}
		if id >= uint64(d.ThetaW) {
			return nil, fmt.Errorf("%w: partition set ID %d out of range", ErrBadFormat, id)
		}
		n, err := idx.hdr.Compression.SkipList(buf[br.Pos():])
		if err != nil {
			return nil, err
		}
		br.Bytes(n)
		blk.setIDs = append(blk.setIDs, uint32(id))
	}
	if br.Remaining() != 0 {
		return nil, fmt.Errorf("%w: partition has trailing bytes", ErrBadFormat)
	}
	return blk, nil
}
