package irrindex

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"kbtim/internal/codec"
	"kbtim/internal/diskio"
	"kbtim/internal/prop"
	"kbtim/internal/topic"
)

// buildFigure1Mem builds the figure-1 IRR index and returns its raw bytes.
func buildFigure1Mem(t testing.TB, delta int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := Build(&buf, figure1(t), prop.IC{}, figure1Profiles(t), testConfig(), BuildOptions{
		Compression:   codec.Delta,
		PartitionSize: delta,
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestQueryConcurrent runs many goroutines of incremental NRA queries
// against one shared Index (run under -race): each query's state (kwState,
// heap, covered bitmaps, I/O scope) is private, so every result must equal
// the serial baseline.
func TestQueryConcurrent(t *testing.T) {
	idx, err := Open(diskio.NewMem(buildFigure1Mem(t, 2), nil))
	if err != nil {
		t.Fatal(err)
	}
	queries := []topic.Query{
		{Topics: []int{topicMusic}, K: 2},
		{Topics: []int{topicMusic, topicBook}, K: 2},
		{Topics: []int{topicBook, topicSport, topicCar}, K: 3},
	}
	baseline := make([]*QueryResult, len(queries))
	for i, q := range queries {
		res, err := idx.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		baseline[i] = res
	}

	const goroutines, rounds = 8, 10
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				qi := (g + i) % len(queries)
				res, err := idx.Query(queries[qi])
				if err != nil {
					errc <- err
					return
				}
				want := baseline[qi]
				if !reflect.DeepEqual(res.Seeds, want.Seeds) ||
					res.EstSpread != want.EstSpread ||
					res.PartitionsLoaded != want.PartitionsLoaded ||
					res.IO != want.IO {
					t.Errorf("query %d diverged under concurrency:\n got seeds=%v spread=%v parts=%d io=%+v\nwant seeds=%v spread=%v parts=%d io=%+v",
						qi, res.Seeds, res.EstSpread, res.PartitionsLoaded, res.IO,
						want.Seeds, want.EstSpread, want.PartitionsLoaded, want.IO)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestQueryCachedReaderAgrees compares cached and uncached IRR processing
// over identical index bytes, including concurrent cached queries.
func TestQueryCachedReaderAgrees(t *testing.T) {
	raw := buildFigure1Mem(t, 2)
	plainIdx, err := Open(diskio.NewMem(raw, nil))
	if err != nil {
		t.Fatal(err)
	}
	cache := diskio.NewCachedReader(diskio.NewMem(raw, nil), 1<<20)
	cachedIdx, err := Open(cache)
	if err != nil {
		t.Fatal(err)
	}

	q := topic.Query{Topics: []int{topicMusic, topicBook}, K: 2}
	want, err := plainIdx.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cachedIdx.Query(q); err != nil { // warm the cache
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := cachedIdx.Query(q)
			if err != nil {
				t.Error(err)
				return
			}
			if !reflect.DeepEqual(res.Seeds, want.Seeds) || res.EstSpread != want.EstSpread {
				t.Errorf("cached result diverged: %v/%v vs %v/%v",
					res.Seeds, res.EstSpread, want.Seeds, want.EstSpread)
				return
			}
			if res.IO.Total() != 0 || res.IO.CacheHits == 0 {
				t.Errorf("warm cached query still paid disk I/O: %+v", res.IO)
			}
		}()
	}
	wg.Wait()
	if hr := cache.Stats().HitRate(); hr == 0 {
		t.Fatal("cache hit rate is zero on a repeated workload")
	}
}
