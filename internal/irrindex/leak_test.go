package irrindex

import (
	"bytes"
	"context"
	"testing"

	"kbtim/internal/codec"
	"kbtim/internal/diskio"
	"kbtim/internal/pool"
	"kbtim/internal/prop"
)

// TestDecodePartitionErrorReturnsPooledArrays is the regression test for
// the early-error pool leak kbtim-lint's poolpair analyzer flagged: a
// pooled decodePartition that died mid-decode used to abandon the block's
// four borrowed arrays (users, setIDs, lists, arena) instead of releasing
// them. The test corrupts one partition's payload so the decode fails
// after the pool gets, then asserts the pool's global get/put counters
// still balance.
func TestDecodePartitionErrorReturnsPooledArrays(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	var buf bytes.Buffer
	if _, err := Build(&buf, g, prop.IC{}, prof, testConfig(), BuildOptions{
		Compression:   codec.Delta,
		PartitionSize: 2,
	}); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)

	// Locate the keyword's first partition via a pristine open, then
	// 0xFF-fill its payload: the leading user varint either overflows or
	// decodes out of range, failing the decode. The prelude is untouched,
	// so reopening succeeds.
	idx, err := Open(diskio.NewMem(data, nil))
	if err != nil {
		t.Fatal(err)
	}
	d := idx.dirs[topicMusic]
	if len(d.Partitions) == 0 {
		t.Fatal("test keyword has no partitions")
	}
	p := d.Partitions[0]
	for i := p.Off; i < p.Off+p.Len; i++ {
		data[i] = 0xFF
	}
	idx, err = Open(diskio.NewMem(data, nil))
	if err != nil {
		t.Fatal(err)
	}
	d = idx.dirs[topicMusic]

	g0, p0 := pool.Counts()
	if _, err := idx.decodePartition(context.Background(), idx.r, d, 0, int(d.ThetaW), true); err == nil {
		t.Fatal("decodePartition succeeded on a 0xFF-filled partition; corruption setup is broken")
	}
	g1, p1 := pool.Counts()
	if g1-g0 != p1-p0 {
		t.Fatalf("decodePartition error path leaked pooled slices: %d gets vs %d puts", g1-g0, p1-p0)
	}
}
