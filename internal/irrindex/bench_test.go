package irrindex

import (
	"bytes"
	"testing"

	"kbtim/internal/codec"
	"kbtim/internal/diskio"
	"kbtim/internal/gen"
	"kbtim/internal/objcache"
	"kbtim/internal/prop"
	"kbtim/internal/topic"
	"kbtim/internal/wris"
)

// benchIndex builds a mid-size News-like IRR index held in memory, so the
// benchmark measures query-side CPU and allocation, not the page cache.
func benchIndex(b *testing.B) *Index {
	b.Helper()
	g, err := gen.NewsLike(gen.NewsLikeConfig{N: 400, AvgDegree: 3, Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	prof, err := gen.Profiles(gen.DefaultProfilesConfig(400, 6, 6))
	if err != nil {
		b.Fatal(err)
	}
	cfg := wris.Config{
		Epsilon:            0.4,
		K:                  20,
		PilotSets:          800,
		MaxThetaPerKeyword: 20000,
		Seed:               11,
		Workers:            2,
	}
	var buf bytes.Buffer
	if _, err := Build(&buf, g, prop.IC{}, prof, cfg, BuildOptions{
		Compression:   codec.Delta,
		PartitionSize: 10,
	}); err != nil {
		b.Fatal(err)
	}
	idx, err := Open(diskio.NewMem(buf.Bytes(), nil))
	if err != nil {
		b.Fatal(err)
	}
	return idx
}

// BenchmarkQueryAllocs is the allocs/query regression gate for the IRR read
// path (CI runs it with -benchmem): one warm multi-keyword NRA query against
// an in-memory index with the decoded cache attached, the hot serving shape.
func BenchmarkQueryAllocs(b *testing.B) {
	idx := benchIndex(b)
	idx.SetDecodedCache(objcache.NewSharded(32<<20, 0))
	q := topic.Query{Topics: []int{0, 2, 4}, K: 10}
	if _, err := idx.Query(q); err != nil { // warm the decoded cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryAllocsUncached is the same query with no decoded cache:
// every iteration pays read + decode, exercising the pooled scratch path.
func BenchmarkQueryAllocsUncached(b *testing.B) {
	idx := benchIndex(b)
	q := topic.Query{Topics: []int{0, 2, 4}, K: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}
