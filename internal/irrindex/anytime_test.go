package irrindex

import (
	"context"
	"math"
	"reflect"
	"testing"
	"time"

	"kbtim/internal/topic"
	"kbtim/internal/wris"
)

// TestQueryStreamMatchesBatch: the emitted (seed, marginal) sequence of a
// streamed NRA query, concatenated, is byte-identical to the batch result —
// including the zero-marginal padding tail, which funnels through the same
// sink — on both the single-index and the sharded QueryMulti path. The
// running spread lower bound never decreases and lands on EstSpread.
func TestQueryStreamMatchesBatch(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	_, idx := buildBoth(t, g, prof, testConfig(), 2)
	_, ownerOf := shardFixture(t, 2, false, 1)
	queries := []topic.Query{
		{Topics: []int{topicMusic}, K: 2},
		{Topics: []int{topicMusic, topicBook}, K: 3},
		{Topics: []int{topicSport, topicCar}, K: 5}, // K big enough to force padding
	}
	for _, q := range queries {
		runs := map[string]func(wris.StreamOptions) (*QueryResult, error){
			"single": func(so wris.StreamOptions) (*QueryResult, error) {
				return idx.QueryStreamCtx(context.Background(), q, so)
			},
			"multi": func(so wris.StreamOptions) (*QueryResult, error) {
				return QueryMultiStreamCtx(context.Background(), ownerOf, q, so)
			},
		}
		for name, run := range runs {
			// Each topology's batch counterpart is the zero-option call of
			// the same body; streaming must reproduce it exactly.
			batch, err := run(wris.StreamOptions{})
			if err != nil {
				t.Fatal(err)
			}
			var seeds []uint32
			var marginals []int
			lastLB := math.Inf(-1)
			res, err := run(wris.StreamOptions{Emit: func(seed uint32, marginal int, spreadLB float64) {
				seeds = append(seeds, seed)
				marginals = append(marginals, marginal)
				if spreadLB < lastLB {
					t.Errorf("%s %v: spread lower bound decreased: %v -> %v", name, q, lastLB, spreadLB)
				}
				lastLB = spreadLB
			}})
			if err != nil {
				t.Fatalf("%s %v: %v", name, q, err)
			}
			if res.Partial {
				t.Fatalf("%s %v: partial without a deadline", name, q)
			}
			if !reflect.DeepEqual(seeds, res.Seeds) || !reflect.DeepEqual(marginals, res.Marginals) {
				t.Fatalf("%s %v: emitted (%v,%v) != result (%v,%v)",
					name, q, seeds, marginals, res.Seeds, res.Marginals)
			}
			if !reflect.DeepEqual(res.Seeds, batch.Seeds) || !reflect.DeepEqual(res.Marginals, batch.Marginals) ||
				res.EstSpread != batch.EstSpread || res.NumRRSets != batch.NumRRSets {
				t.Fatalf("%s %v: streamed result diverged from batch", name, q)
			}
			if len(seeds) > 0 && math.Abs(lastLB-res.EstSpread) > 1e-9 {
				t.Fatalf("%s %v: final spread lower bound %v != EstSpread %v", name, q, lastLB, res.EstSpread)
			}
		}
	}
}

// TestQueryStreamDeadline: an expired anytime deadline keeps whatever
// prefix the NRA certified before it hit (here: nothing, since it expires
// before the first partition round) and marks the result Partial without
// error; a generous deadline is invisible.
func TestQueryStreamDeadline(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	_, idx := buildBoth(t, g, prof, testConfig(), 2)
	q := topic.Query{Topics: []int{topicMusic, topicBook}, K: 3}

	res, err := idx.QueryStreamCtx(context.Background(), q, wris.StreamOptions{
		Deadline: time.Now().Add(-time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("expired deadline did not mark the result partial")
	}
	if len(res.Seeds) != 0 {
		t.Fatalf("expired deadline still certified seeds %v", res.Seeds)
	}

	batch, err := idx.QueryCtx(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	res, err = idx.QueryStreamCtx(context.Background(), q, wris.StreamOptions{
		Deadline: time.Now().Add(time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatal("generous deadline marked the result partial")
	}
	if !reflect.DeepEqual(res.Seeds, batch.Seeds) || res.EstSpread != batch.EstSpread {
		t.Fatal("generous deadline changed the answer")
	}
}
