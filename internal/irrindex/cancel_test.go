package irrindex

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"kbtim/internal/diskio"
	"kbtim/internal/topic"
)

// gatedReader wraps a Segmented so that every read AFTER the first
// blockAfter query reads parks until the gate opens — the "blocking
// reader" of the cancellation tests: it freezes a query mid-artifact so
// the test can cancel the context while the fetch is in flight and then
// observe exactly how much further the query runs.
type gatedReader struct {
	inner   diskio.Segmented
	reads   atomic.Int64
	armed   atomic.Bool
	after   int64         // reads beyond this block (once armed)
	entered chan struct{} // signals a read is parked at the gate
	gate    chan struct{} // close to release parked reads
}

func newGatedReader(inner diskio.Segmented, after int64) *gatedReader {
	return &gatedReader{
		inner:   inner,
		after:   after,
		entered: make(chan struct{}, 64),
		gate:    make(chan struct{}),
	}
}

func (g *gatedReader) ReadSegment(off, length int64) ([]byte, error) {
	if g.armed.Load() && g.reads.Add(1) > g.after {
		g.entered <- struct{}{}
		<-g.gate
	}
	return g.inner.ReadSegment(off, length)
}

func (g *gatedReader) Size() int64              { return g.inner.Size() }
func (g *gatedReader) Counter() *diskio.Counter { return g.inner.Counter() }

// TestQueryCtxCanceledStopsWithinOneRound is the acceptance test for
// query cancellation: a query whose client disconnects mid-partition-fetch
// (blocking reader + canceled context) finishes that ONE fetch and stops at
// the next round boundary — it neither runs Algorithm 4 to completion nor
// touches another partition.
func TestQueryCtxCanceledStopsWithinOneRound(t *testing.T) {
	raw := buildFigure1Mem(t, 2) // δ=2: several partitions per keyword
	g := newGatedReader(diskio.NewMem(raw, nil), 1)
	idx, err := Open(g) // Open's reads happen un-armed
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Dir(topicMusic).Partitions) < 2 {
		t.Fatalf("fixture has %d partitions; need >= 2 to observe the round boundary", len(idx.Dir(topicMusic).Partitions))
	}
	g.armed.Store(true) // query read 1 (the IP table) passes, read 2 (partition 0) parks

	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		res *QueryResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := idx.QueryCtx(ctx, topic.Query{Topics: []int{topicMusic}, K: 2})
		done <- outcome{res, err}
	}()

	select {
	case <-g.entered: // the partition-0 fetch is in flight
	case <-time.After(5 * time.Second):
		t.Fatal("query never reached the partition fetch")
	}
	cancel()
	close(g.gate) // let the in-flight fetch complete

	select {
	case o := <-done:
		if !errors.Is(o.err, context.Canceled) {
			t.Fatalf("got (%v, %v), want context.Canceled", o.res, o.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled query did not return")
	}
	// IP + exactly the one in-flight partition: the round boundary stopped
	// the query before any further partition fetch.
	if n := g.reads.Load(); n != 2 {
		t.Fatalf("canceled query performed %d reads, want 2 (IP + the in-flight partition)", n)
	}
}

// TestQueryCtxPreCanceled: a context canceled before dispatch fails fast
// with no I/O at all.
func TestQueryCtxPreCanceled(t *testing.T) {
	g := newGatedReader(diskio.NewMem(buildFigure1Mem(t, 2), nil), 0)
	idx, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	g.armed.Store(true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := idx.QueryCtx(ctx, topic.Query{Topics: []int{topicMusic}, K: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := g.reads.Load(); n != 0 {
		t.Fatalf("pre-canceled query performed %d reads, want 0", n)
	}
}

// TestQueryCtxCanceledParallel: cancellation also lands when the parallel
// load phase and speculative prefetches are on (the goroutines observe the
// canceled context and the query surfaces it after the join).
func TestQueryCtxCanceledParallel(t *testing.T) {
	g := newGatedReader(diskio.NewMem(buildFigure1Mem(t, 2), nil), 1)
	idx, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	idx.SetQueryParallelism(4)
	g.armed.Store(true)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := idx.QueryCtx(ctx, topic.Query{Topics: []int{topicMusic, topicBook, topicSport}, K: 2})
		done <- err
	}()
	select {
	case <-g.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("query never reached a gated read")
	}
	cancel()
	close(g.gate)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled parallel query did not return")
	}
}
