package irrindex

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"kbtim/internal/codec"
	"kbtim/internal/diskio"
	"kbtim/internal/gen"
	"kbtim/internal/objcache"
	"kbtim/internal/prop"
	"kbtim/internal/topic"
	"kbtim/internal/wris"
)

// newsIRRBytes builds a News-like IRR index with small partitions so NRA
// runs several incremental rounds (the shape speculation targets).
func newsIRRBytes(t testing.TB) []byte {
	t.Helper()
	g, err := gen.NewsLike(gen.NewsLikeConfig{N: 400, AvgDegree: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := gen.Profiles(gen.DefaultProfilesConfig(400, 6, 6))
	if err != nil {
		t.Fatal(err)
	}
	cfg := wris.Config{
		Epsilon:            0.4,
		K:                  20,
		PilotSets:          800,
		MaxThetaPerKeyword: 8000,
		Seed:               11,
		Workers:            2,
	}
	var buf bytes.Buffer
	if _, err := Build(&buf, g, prop.IC{}, prof, cfg, BuildOptions{
		Compression:   codec.Delta,
		PartitionSize: 10,
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestQueryParallelismParity: parallel IP loading + speculative partition
// prefetch must not change the NRA outcome — seeds, marginals, spread,
// loaded counts, and CONSUMED partitions all match the sequential path
// (speculative fetches may add reads to IO, which is why IO is not
// compared), with and without a decoded cache.
func TestQueryParallelismParity(t *testing.T) {
	raw := newsIRRBytes(t)
	queries := []topic.Query{
		{Topics: []int{0}, K: 5},
		{Topics: []int{0, 2}, K: 8},
		{Topics: []int{1, 3, 5}, K: 10},
		{Topics: []int{0, 1, 2, 3, 4, 5}, K: 12},
	}
	for _, cached := range []bool{false, true} {
		seq, err := Open(diskio.NewMem(raw, nil))
		if err != nil {
			t.Fatal(err)
		}
		par, err := Open(diskio.NewMem(raw, nil))
		if err != nil {
			t.Fatal(err)
		}
		par.SetQueryParallelism(4)
		if cached {
			seq.SetDecodedCache(objcache.New(16 << 20))
			par.SetDecodedCache(objcache.NewSharded(16<<20, 4))
		}
		for qi, q := range queries {
			a, err := seq.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := par.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Seeds, b.Seeds) ||
				!reflect.DeepEqual(a.Marginals, b.Marginals) ||
				a.EstSpread != b.EstSpread ||
				a.NumRRSets != b.NumRRSets ||
				a.PartitionsLoaded != b.PartitionsLoaded ||
				!reflect.DeepEqual(a.Loaded, b.Loaded) {
				t.Fatalf("cached=%v query %d diverged:\n seq %v / %v / parts=%d\n par %v / %v / parts=%d",
					cached, qi, a.Seeds, a.Marginals, a.PartitionsLoaded,
					b.Seeds, b.Marginals, b.PartitionsLoaded)
			}
		}
	}
}

// TestQueryParallelConcurrent hammers one shared speculative-prefetch index
// with a small sharded decoded cache from many goroutines (run under -race):
// evictions, singleflight, prefetch futures, and pooled scratch all in play.
func TestQueryParallelConcurrent(t *testing.T) {
	raw := newsIRRBytes(t)
	idx, err := Open(diskio.NewMem(raw, nil))
	if err != nil {
		t.Fatal(err)
	}
	idx.SetQueryParallelism(3)
	idx.SetDecodedCache(objcache.NewSharded(1<<20, 8)) // small: force evictions
	queries := []topic.Query{
		{Topics: []int{0, 2}, K: 8},
		{Topics: []int{1, 3, 5}, K: 10},
		{Topics: []int{2, 4}, K: 6},
	}
	baseline := make([]*QueryResult, len(queries))
	for i, q := range queries {
		if baseline[i], err = idx.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	const goroutines, rounds = 8, 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				qi := (g + i) % len(queries)
				res, err := idx.Query(queries[qi])
				if err != nil {
					t.Error(err)
					return
				}
				want := baseline[qi]
				if !reflect.DeepEqual(res.Seeds, want.Seeds) || res.EstSpread != want.EstSpread ||
					res.PartitionsLoaded != want.PartitionsLoaded {
					t.Errorf("query %d diverged under concurrency", qi)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestTheorem3HoldsWithParallelism: the RR/IRR seed-and-marginal trace
// equality (Theorem 3) must survive both indexes running their parallel
// paths.
func TestTheorem3HoldsWithParallelism(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	rr, irr := buildBoth(t, g, prof, testConfig(), 2)
	rr.SetQueryParallelism(4)
	irr.SetQueryParallelism(4)
	for _, q := range []topic.Query{
		{Topics: []int{topicMusic, topicBook}, K: 3},
		{Topics: []int{topicBook, topicSport, topicCar}, K: 5},
	} {
		a, err := rr.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := irr.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Seeds, b.Seeds) || !reflect.DeepEqual(a.Marginals, b.Marginals) {
			t.Fatalf("Theorem 3 broke under parallelism:\n rr  %v / %v\n irr %v / %v",
				a.Seeds, a.Marginals, b.Seeds, b.Marginals)
		}
	}
}
