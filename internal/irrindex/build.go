package irrindex

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"time"

	"kbtim/internal/codec"
	"kbtim/internal/graph"
	"kbtim/internal/prop"
	"kbtim/internal/rrset"
	"kbtim/internal/topic"
	"kbtim/internal/wris"
)

// BuildOptions configures IRR index construction (Algorithm 3).
type BuildOptions struct {
	// Compression selects the list codec.
	Compression codec.Compression
	// Sizing selects θ̂_w vs θ_w.
	Sizing wris.SizingMode
	// PartitionSize is δ, the number of inverted lists per partition
	// (the paper uses 100). 0 uses DefaultPartitionSize.
	PartitionSize int
	// Topics restricts the index to a subset; nil indexes all topics with
	// positive mass.
	Topics []int
}

// DefaultPartitionSize is the paper's δ = 100.
const DefaultPartitionSize = 100

// KeywordStats reports one keyword's build outcome.
type KeywordStats struct {
	TopicID       int
	Theta         int
	Capped        bool
	MeanRRSize    float64
	NumPartitions int
	Bytes         int64
}

// BuildStats summarizes an IRR build.
type BuildStats struct {
	Keywords   []KeywordStats
	TotalBytes int64
	Elapsed    time.Duration
}

// SumTheta returns Σ_w θ_w.
func (s *BuildStats) SumTheta() int64 {
	var total int64
	for _, k := range s.Keywords {
		total += int64(k.Theta)
	}
	return total
}

// MeanRRSize returns the set-count-weighted mean RR-set size.
func (s *BuildStats) MeanRRSize() float64 {
	var sets, members float64
	for _, k := range s.Keywords {
		sets += float64(k.Theta)
		members += float64(k.Theta) * k.MeanRRSize
	}
	if sets == 0 {
		return 0
	}
	return members / sets
}

type kwPayload struct {
	dir KeywordDir
	ip  []byte
	// parts[i] is the serialized i-th partition block (IL then IR).
	parts [][]byte
}

// Build constructs the IRR index (Algorithm 3): per keyword it samples the
// same θ_w RR sets as the basic RR index, derives (IR, IL, IP), sorts the
// inverted lists by descending length, cuts them into δ-user partitions,
// and assigns each RR set to the first partition containing one of its
// members.
func Build(w io.Writer, g *graph.Graph, model prop.Model, prof *topic.Profiles, cfg wris.Config, opts BuildOptions) (*BuildStats, error) {
	start := time.Now()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !opts.Compression.Valid() {
		return nil, fmt.Errorf("irrindex: invalid compression %d", opts.Compression)
	}
	if opts.PartitionSize == 0 {
		opts.PartitionSize = DefaultPartitionSize
	}
	if opts.PartitionSize < 0 {
		return nil, fmt.Errorf("irrindex: negative partition size")
	}
	topics := opts.Topics
	if topics == nil {
		for t := 0; t < prof.NumTopics(); t++ {
			if prof.TFSum(t) > 0 {
				topics = append(topics, t)
			}
		}
	}
	if len(topics) == 0 {
		return nil, fmt.Errorf("irrindex: no topics to index")
	}

	stats := &BuildStats{}
	payloads := make([]kwPayload, 0, len(topics))
	for _, t := range topics {
		if t < 0 || t >= prof.NumTopics() {
			return nil, fmt.Errorf("irrindex: topic %d outside topic space", t)
		}
		if prof.TFSum(t) <= 0 {
			return nil, fmt.Errorf("irrindex: topic %d has no mass", t)
		}
		p, ks, err := buildKeyword(g, model, prof, t, cfg, opts)
		if err != nil {
			return nil, fmt.Errorf("irrindex: keyword %d: %w", t, err)
		}
		payloads = append(payloads, p)
		stats.Keywords = append(stats.Keywords, ks)
	}

	hdr := Header{
		Compression:   opts.Compression,
		Sizing:        opts.Sizing,
		ModelName:     model.Name(),
		NumVertices:   g.NumVertices(),
		NumTopics:     prof.NumTopics(),
		K:             cfg.K,
		Epsilon:       cfg.Epsilon,
		PartitionSize: opts.PartitionSize,
	}
	prelude, err := assemblePrelude(&hdr, payloads)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(prelude); err != nil {
		return nil, err
	}
	written := int64(len(prelude))
	for i := range payloads {
		if _, err := w.Write(payloads[i].ip); err != nil {
			return nil, err
		}
		written += int64(len(payloads[i].ip))
		for _, part := range payloads[i].parts {
			if _, err := w.Write(part); err != nil {
				return nil, err
			}
			written += int64(len(part))
		}
	}
	stats.TotalBytes = written
	stats.Elapsed = time.Since(start)
	return stats, nil
}

func assemblePrelude(hdr *Header, payloads []kwPayload) ([]byte, error) {
	measure, err := appendHeader(nil, hdr, len(payloads))
	if err != nil {
		return nil, err
	}
	for i := range payloads {
		measure = appendKeywordDir(measure, &payloads[i].dir)
	}
	preludeLen := int64(len(measure))

	off := preludeLen
	for i := range payloads {
		p := &payloads[i]
		p.dir.IPOff = off
		off += int64(len(p.ip))
		for j := range p.dir.Partitions {
			p.dir.Partitions[j].Off = off
			off += p.dir.Partitions[j].Len
		}
	}
	buf, err := appendHeader(nil, hdr, len(payloads))
	if err != nil {
		return nil, err
	}
	for i := range payloads {
		buf = appendKeywordDir(buf, &payloads[i].dir)
	}
	if int64(len(buf)) != preludeLen {
		return nil, fmt.Errorf("irrindex: prelude size drifted")
	}
	binary.LittleEndian.PutUint64(buf[8:16], uint64(preludeLen))
	return buf, nil
}

func buildKeyword(g *graph.Graph, model prop.Model, prof *topic.Profiles, t int, cfg wris.Config, opts BuildOptions) (kwPayload, KeywordStats, error) {
	theta, capped, err := wris.PlanThetaW(g, model, prof, t, cfg, opts.Sizing)
	if err != nil {
		return kwPayload{}, KeywordStats{}, err
	}
	users, weights := wris.KeywordSupport(prof, t)
	picker, err := rrset.NewWeightedRoots(users, weights)
	if err != nil {
		return kwPayload{}, KeywordStats{}, err
	}
	// Identical seed derivation to rrindex.Build: both indexes over the
	// same inputs contain the same RR sets, which is what makes Theorem 3
	// testable end to end.
	batch := rrset.Generate(g, model, picker, rrset.GenerateOptions{
		Count:   theta,
		Seed:    cfg.Seed ^ (uint64(t+1) * 0x9E3779B97F4A7C15),
		Workers: cfg.Workers,
	})
	lists := batch.InvertedLists(g.NumVertices())

	// IP: first occurrence of each listed user (lists are ascending).
	var ip []byte
	numIP := 0
	for v, list := range lists {
		if len(list) == 0 {
			continue
		}
		numIP++
		ip = binary.AppendUvarint(ip, uint64(v))
		ip = binary.AppendUvarint(ip, uint64(list[0]))
	}

	// Sort listed users by descending list length, then ascending vertex.
	type row struct {
		v    uint32
		list []int32
	}
	rows := make([]row, 0, numIP)
	for v, list := range lists {
		if len(list) > 0 {
			rows = append(rows, row{v: uint32(v), list: list})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if len(rows[i].list) != len(rows[j].list) {
			return len(rows[i].list) > len(rows[j].list)
		}
		return rows[i].v < rows[j].v
	})

	// partOf[v] = partition index of user v.
	delta := opts.PartitionSize
	numParts := (len(rows) + delta - 1) / delta
	partOf := make([]int32, g.NumVertices())
	for i := range partOf {
		partOf[i] = -1
	}
	for i, rw := range rows {
		partOf[rw.v] = int32(i / delta)
	}
	// Assign each RR set to the earliest partition among its members.
	setPart := make([]int32, batch.Len())
	for s := 0; s < batch.Len(); s++ {
		best := int32(numParts)
		for _, v := range batch.Set(s) {
			if p := partOf[v]; p >= 0 && p < best {
				best = p
			}
		}
		setPart[s] = best // == numParts only for empty sets (impossible)
	}
	setsByPart := make([][]int32, numParts)
	for s, p := range setPart {
		if int(p) < numParts {
			setsByPart[p] = append(setsByPart[p], int32(s))
		}
	}

	// Serialize partition blocks.
	payload := kwPayload{
		dir: KeywordDir{
			TopicID:      t,
			ThetaW:       int64(batch.Len()),
			TFSum:        prof.TFSum(t),
			Phi:          prof.Phi(t),
			IPLen:        int64(len(ip)),
			NumIPEntries: numIP,
		},
		ip: ip,
	}
	tmp := make([]uint32, 0, 64)
	for p := 0; p < numParts; p++ {
		lo, hi := p*delta, (p+1)*delta
		if hi > len(rows) {
			hi = len(rows)
		}
		var block []byte
		for _, rw := range rows[lo:hi] {
			block = binary.AppendUvarint(block, uint64(rw.v))
			tmp = tmp[:0]
			for _, id := range rw.list {
				tmp = append(tmp, uint32(id))
			}
			block = opts.Compression.AppendList(block, tmp)
		}
		// IR part v2: claimed set IDs up front as ONE compressed list
		// (setsByPart appends in ascending s order), then the member lists
		// length-prefixed — queries read the IDs and stop.
		tmp = tmp[:0]
		for _, s := range setsByPart[p] {
			tmp = append(tmp, uint32(s))
		}
		block = opts.Compression.AppendList(block, tmp)
		var members []byte
		for _, s := range setsByPart[p] {
			members = opts.Compression.AppendList(members, batch.Set(int(s)))
		}
		block = binary.AppendUvarint(block, uint64(len(members)))
		block = append(block, members...)
		payload.dir.Partitions = append(payload.dir.Partitions, Partition{
			Len:         int64(len(block)),
			NumUsers:    hi - lo,
			NumSets:     len(setsByPart[p]),
			LastListLen: len(rows[hi-1].list),
		})
		payload.parts = append(payload.parts, block)
	}

	ks := KeywordStats{
		TopicID:       t,
		Theta:         batch.Len(),
		Capped:        capped,
		MeanRRSize:    batch.MeanSize(),
		NumPartitions: numParts,
	}
	ks.Bytes = int64(len(ip))
	for _, part := range payload.parts {
		ks.Bytes += int64(len(part))
	}
	return payload, ks, nil
}
