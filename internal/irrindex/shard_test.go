package irrindex

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"kbtim/internal/codec"
	"kbtim/internal/diskio"
	"kbtim/internal/gen"
	"kbtim/internal/objcache"
	"kbtim/internal/prop"
	"kbtim/internal/shardmap"
	"kbtim/internal/topic"
	"kbtim/internal/wris"
)

// shardFixture builds one full IRR index plus a keyword-sharded set over
// the SAME inputs (small partitions, so NRA runs several rounds per shard),
// returning the full index and an owner func routing topics to shards.
func shardFixture(t *testing.T, shards int, cache bool, par int) (*Index, func(int) *Index) {
	t.Helper()
	const topics = 6
	g, err := gen.NewsLike(gen.NewsLikeConfig{N: 400, AvgDegree: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := gen.Profiles(gen.DefaultProfilesConfig(400, topics, 6))
	if err != nil {
		t.Fatal(err)
	}
	cfg := wris.Config{
		Epsilon:            0.4,
		K:                  20,
		PilotSets:          800,
		MaxThetaPerKeyword: 8000,
		Seed:               11,
		Workers:            2,
	}
	build := func(only []int) *Index {
		var buf bytes.Buffer
		if _, err := Build(&buf, g, prop.IC{}, prof, cfg, BuildOptions{
			Compression:   codec.Delta,
			PartitionSize: 10,
			Topics:        only,
		}); err != nil {
			t.Fatal(err)
		}
		idx, err := Open(diskio.NewMem(buf.Bytes(), nil))
		if err != nil {
			t.Fatal(err)
		}
		if cache {
			idx.SetDecodedCache(objcache.NewSharded(16<<20, 4))
		}
		idx.SetQueryParallelism(par)
		return idx
	}
	full := build(nil)
	sm, err := shardmap.New(shards, shardmap.Hash, topics)
	if err != nil {
		t.Fatal(err)
	}
	parts := sm.Partition(full.Keywords())
	shardIdx := make([]*Index, shards)
	for s, part := range parts {
		if len(part) > 0 {
			shardIdx[s] = build(part)
		}
	}
	owner := func(w int) *Index {
		if w < 0 || w >= topics {
			return shardIdx[0]
		}
		return shardIdx[sm.Owner(w)]
	}
	return full, owner
}

// TestQueryMultiShardParity: the NRA aggregation over hash-sharded subset
// indexes must return exactly the single-index result — seeds, marginals,
// spread, loads, and CONSUMED partitions — for single-shard and
// shard-spanning queries, across {plain, cached, parallel+speculative}
// configurations.
func TestQueryMultiShardParity(t *testing.T) {
	queries := []topic.Query{
		{Topics: []int{0}, K: 5},
		{Topics: []int{0, 2}, K: 8},
		{Topics: []int{1, 3, 5}, K: 10},
		{Topics: []int{0, 1, 2, 3, 4, 5}, K: 12},
	}
	for _, mode := range []struct {
		name  string
		cache bool
		par   int
	}{
		{"plain", false, 0},
		{"cached", true, 0},
		{"parallel", true, 3},
	} {
		full, owner := shardFixture(t, 4, mode.cache, mode.par)
		for qi, q := range queries {
			want, err := full.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := QueryMulti(owner, q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.Seeds, got.Seeds) ||
				!reflect.DeepEqual(want.Marginals, got.Marginals) ||
				want.EstSpread != got.EstSpread ||
				want.NumRRSets != got.NumRRSets ||
				want.PartitionsLoaded != got.PartitionsLoaded ||
				!reflect.DeepEqual(want.Loaded, got.Loaded) {
				t.Fatalf("%s query %d diverged:\n full  %v / %v / parts=%d\n shard %v / %v / parts=%d",
					mode.name, qi, want.Seeds, want.Marginals, want.PartitionsLoaded,
					got.Seeds, got.Marginals, got.PartitionsLoaded)
			}
		}
	}
}

// TestQueryMultiConcurrent hammers the sharded NRA path from many
// goroutines (run under -race): shard-spanning queries with speculative
// prefetch, shared decoded caches, and pooled scratch all in play, each
// result checked against its baseline.
func TestQueryMultiConcurrent(t *testing.T) {
	_, owner := shardFixture(t, 2, true, 3)
	queries := []topic.Query{
		{Topics: []int{0, 2}, K: 8},
		{Topics: []int{1, 3, 5}, K: 10},
		{Topics: []int{2, 4}, K: 6},
	}
	baseline := make([]*QueryResult, len(queries))
	for i, q := range queries {
		var err error
		if baseline[i], err = QueryMulti(owner, q); err != nil {
			t.Fatal(err)
		}
	}
	const goroutines, rounds = 8, 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				qi := (g + i) % len(queries)
				res, err := QueryMulti(owner, queries[qi])
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(res.Seeds, baseline[qi].Seeds) || res.EstSpread != baseline[qi].EstSpread {
					t.Errorf("query %d diverged under concurrency", qi)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestQueryMultiErrors: unknown keywords and empty topic sets are rejected.
func TestQueryMultiErrors(t *testing.T) {
	_, owner := shardFixture(t, 2, false, 0)
	if _, err := QueryMulti(func(int) *Index { return nil }, topic.Query{Topics: []int{0}, K: 2}); err == nil {
		t.Fatal("nil owner accepted")
	}
	if _, err := QueryMulti(owner, topic.Query{Topics: nil, K: 2}); err == nil {
		t.Fatal("empty topic set accepted")
	}
	if _, err := QueryMulti(owner, topic.Query{Topics: []int{0}, K: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
}
