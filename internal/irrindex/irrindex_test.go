package irrindex

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"kbtim/internal/codec"
	"kbtim/internal/diskio"
	"kbtim/internal/gen"
	"kbtim/internal/graph"
	"kbtim/internal/objcache"
	"kbtim/internal/prop"
	"kbtim/internal/rrindex"
	"kbtim/internal/topic"
	"kbtim/internal/wris"
)

const (
	vA, vB, vC, vD, vE, vF, vG = 0, 1, 2, 3, 4, 5, 6
	topicMusic                 = 0
	topicBook                  = 1
	topicSport                 = 2
	topicCar                   = 3
)

func figure1(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(7, []graph.Edge{
		{From: vE, To: vA}, {From: vE, To: vB}, {From: vG, To: vB},
		{From: vE, To: vC}, {From: vB, To: vC},
		{From: vB, To: vD}, {From: vF, To: vD},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func figure1Profiles(t testing.TB) *topic.Profiles {
	t.Helper()
	b := topic.NewBuilder(7, 4)
	set := func(u uint32, w int, tf float64) {
		if err := b.Set(u, w, tf); err != nil {
			t.Fatal(err)
		}
	}
	set(vA, topicMusic, 0.6)
	set(vA, topicBook, 0.2)
	set(vA, topicSport, 0.1)
	set(vA, topicCar, 0.1)
	set(vB, topicMusic, 0.5)
	set(vB, topicBook, 0.5)
	set(vC, topicMusic, 0.5)
	set(vC, topicBook, 0.3)
	set(vC, topicCar, 0.2)
	set(vD, topicSport, 0.2)
	set(vD, topicBook, 0.2)
	set(vE, topicMusic, 0.3)
	set(vE, topicBook, 0.3)
	set(vE, topicSport, 0.4)
	set(vF, topicCar, 1.0)
	set(vG, topicBook, 1.0)
	return b.Build()
}

func testConfig() wris.Config {
	return wris.Config{
		Epsilon:            0.3,
		K:                  5,
		PilotSets:          800,
		MaxThetaPerKeyword: 20000,
		Seed:               17,
		Workers:            2,
	}
}

// buildBoth builds the RR and IRR indexes from identical inputs (same seed
// derivation), so they contain the same RR sets — the precondition of the
// Theorem 3 end-to-end test.
func buildBoth(t testing.TB, g *graph.Graph, prof *topic.Profiles, cfg wris.Config, delta int) (*rrindex.Index, *Index) {
	t.Helper()
	var rrBuf, irrBuf bytes.Buffer
	if _, err := rrindex.Build(&rrBuf, g, prop.IC{}, prof, cfg, rrindex.BuildOptions{
		Compression: codec.Delta,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(&irrBuf, g, prop.IC{}, prof, cfg, BuildOptions{
		Compression:   codec.Delta,
		PartitionSize: delta,
	}); err != nil {
		t.Fatal(err)
	}
	rr, err := rrindex.Open(diskio.NewMem(rrBuf.Bytes(), nil))
	if err != nil {
		t.Fatal(err)
	}
	irr, err := Open(diskio.NewMem(irrBuf.Bytes(), nil))
	if err != nil {
		t.Fatal(err)
	}
	return rr, irr
}

func TestBuildAndOpenRoundTrip(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	var buf bytes.Buffer
	stats, err := Build(&buf, g, prop.IC{}, prof, testConfig(), BuildOptions{
		Compression:   codec.Delta,
		PartitionSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Open(diskio.NewMem(buf.Bytes(), nil))
	if err != nil {
		t.Fatal(err)
	}
	h := idx.Header()
	if h.PartitionSize != 2 || h.ModelName != "IC" || h.NumVertices != 7 {
		t.Fatalf("header %+v", h)
	}
	if len(idx.Keywords()) != 4 {
		t.Fatalf("keywords %v", idx.Keywords())
	}
	for _, ks := range stats.Keywords {
		d := idx.Dir(ks.TopicID)
		if d == nil || int(d.ThetaW) != ks.Theta {
			t.Fatalf("dir mismatch for topic %d", ks.TopicID)
		}
		if ks.NumPartitions != len(d.Partitions) {
			t.Fatalf("partition count mismatch for topic %d", ks.TopicID)
		}
		// Partition invariants: users ≤ δ, LastListLen non-increasing.
		prev := 1 << 30
		for _, p := range d.Partitions {
			if p.NumUsers <= 0 || p.NumUsers > 2 {
				t.Fatalf("partition users %d with δ=2", p.NumUsers)
			}
			if p.LastListLen > prev {
				t.Fatalf("LastListLen not non-increasing: %d after %d", p.LastListLen, prev)
			}
			prev = p.LastListLen
		}
	}
	if stats.SumTheta() <= 0 || stats.MeanRRSize() < 1 {
		t.Fatalf("stats %+v", stats)
	}
}

// TestTheorem3ScoresMatchRR is the paper's Theorem 3 end-to-end: the greedy
// marginal-coverage trace of the incremental algorithm equals the RR
// index's, query by query.
func TestTheorem3ScoresMatchRR(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	rr, irr := buildBoth(t, g, prof, testConfig(), 2)
	for _, q := range []topic.Query{
		{Topics: []int{topicMusic}, K: 2},
		{Topics: []int{topicBook}, K: 3},
		{Topics: []int{topicMusic, topicBook}, K: 2},
		{Topics: []int{topicCar, topicSport}, K: 2},
		{Topics: []int{topicMusic, topicBook, topicSport, topicCar}, K: 4},
	} {
		rrRes, err := rr.Query(q)
		if err != nil {
			t.Fatalf("RR %v: %v", q.Topics, err)
		}
		irrRes, err := irr.Query(q)
		if err != nil {
			t.Fatalf("IRR %v: %v", q.Topics, err)
		}
		if len(rrRes.Marginals) != len(irrRes.Marginals) {
			t.Fatalf("query %v: marginal lengths %d vs %d",
				q.Topics, len(rrRes.Marginals), len(irrRes.Marginals))
		}
		for i := range rrRes.Marginals {
			if rrRes.Marginals[i] != irrRes.Marginals[i] {
				t.Fatalf("query %v: marginals differ at %d: RR %v vs IRR %v (seeds %v vs %v)",
					q.Topics, i, rrRes.Marginals, irrRes.Marginals, rrRes.Seeds, irrRes.Seeds)
			}
			// Identical scores imply identical seeds wherever the marginal
			// is positive and untied — check seeds match when marginal > 0.
			if rrRes.Marginals[i] > 0 && rrRes.Seeds[i] != irrRes.Seeds[i] {
				// Ties between equal-scoring users may legitimately resolve
				// differently only if scores are equal; verify via covered.
				t.Logf("query %v: seed %d differs (%d vs %d) at equal marginal %d",
					q.Topics, i, rrRes.Seeds[i], irrRes.Seeds[i], rrRes.Marginals[i])
			}
		}
		if rrRes.Covered != irrRes.Covered {
			t.Fatalf("query %v: covered %d vs %d", q.Topics, rrRes.Covered, irrRes.Covered)
		}
	}
}

// TestTheorem3MediumScale repeats the equivalence on a 300-vertex graph
// with several partition sizes.
func TestTheorem3MediumScale(t *testing.T) {
	g, err := gen.NewsLike(gen.NewsLikeConfig{N: 300, AvgDegree: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := gen.Profiles(gen.DefaultProfilesConfig(300, 5, 8))
	if err != nil {
		t.Fatal(err)
	}
	cfg := wris.Config{
		Epsilon:            0.4,
		K:                  15,
		PilotSets:          500,
		MaxThetaPerKeyword: 8000,
		Seed:               21,
		Workers:            2,
	}
	for _, delta := range []int{3, 10, 50} {
		rr, irr := buildBoth(t, g, prof, cfg, delta)
		for _, q := range []topic.Query{
			{Topics: []int{0, 1}, K: 10},
			{Topics: []int{0, 2, 3}, K: 15},
			{Topics: []int{4}, K: 5},
		} {
			rrRes, err := rr.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			irrRes, err := irr.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if rrRes.Covered != irrRes.Covered {
				t.Fatalf("δ=%d query %v: covered %d vs %d",
					delta, q.Topics, rrRes.Covered, irrRes.Covered)
			}
			for i := range rrRes.Marginals {
				if rrRes.Marginals[i] != irrRes.Marginals[i] {
					t.Fatalf("δ=%d query %v: marginals %v vs %v",
						delta, q.Topics, rrRes.Marginals, irrRes.Marginals)
				}
			}
		}
	}
}

// TestIRRLoadsFewerSets: the point of the incremental index — on a
// heavy-tailed graph it must examine far fewer RR sets than the RR index
// loads.
func TestIRRLoadsFewerSets(t *testing.T) {
	g, err := gen.TwitterLike(gen.TwitterLikeConfig{N: 500, AvgDegree: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := gen.Profiles(gen.DefaultProfilesConfig(500, 5, 3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := wris.Config{
		Epsilon:            0.4,
		K:                  15,
		PilotSets:          500,
		MaxThetaPerKeyword: 8000,
		Seed:               3,
		Workers:            2,
	}
	rr, irr := buildBoth(t, g, prof, cfg, 10)
	q := topic.Query{Topics: []int{0, 1}, K: 5}
	rrRes, err := rr.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	irrRes, err := irr.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if irrRes.NumRRSets >= rrRes.NumRRSets {
		t.Fatalf("IRR loaded %d sets, RR loaded %d", irrRes.NumRRSets, rrRes.NumRRSets)
	}
	if irrRes.PartitionsLoaded <= 0 {
		t.Fatal("no partitions loaded")
	}
}

func TestIRRIOGrowsWithK(t *testing.T) {
	g, err := gen.NewsLike(gen.NewsLikeConfig{N: 400, AvgDegree: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := gen.Profiles(gen.DefaultProfilesConfig(400, 5, 6))
	if err != nil {
		t.Fatal(err)
	}
	cfg := wris.Config{
		Epsilon:            0.4,
		K:                  30,
		PilotSets:          400,
		MaxThetaPerKeyword: 6000,
		Seed:               8,
		Workers:            2,
	}
	var buf bytes.Buffer
	if _, err := Build(&buf, g, prop.IC{}, prof, cfg, BuildOptions{
		Compression:   codec.Delta,
		PartitionSize: 5,
	}); err != nil {
		t.Fatal(err)
	}
	idx, err := Open(diskio.NewMem(buf.Bytes(), nil))
	if err != nil {
		t.Fatal(err)
	}
	small, err := idx.Query(topic.Query{Topics: []int{0, 1}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	large, err := idx.Query(topic.Query{Topics: []int{0, 1}, K: 25})
	if err != nil {
		t.Fatal(err)
	}
	// Table 6's trend: more seeds require at least as many partition loads.
	if large.PartitionsLoaded < small.PartitionsLoaded {
		t.Fatalf("partitions loaded decreased with k: %d vs %d",
			small.PartitionsLoaded, large.PartitionsLoaded)
	}
	if small.IO.Total() <= 0 {
		t.Fatalf("no I/O recorded: %+v", small.IO)
	}
}

func TestQueryGuarantee(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	_, irr := buildBoth(t, g, prof, testConfig(), 2)
	for _, q := range []topic.Query{
		{Topics: []int{topicMusic}, K: 2},
		{Topics: []int{topicMusic, topicBook}, K: 2},
	} {
		res, err := irr.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		score := func(v uint32) float64 { return prof.Score(v, q) }
		got, err := prop.ExactWeightedSpread(g, prop.IC{}, res.Seeds, score)
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := prop.BestSeedSetExact(g, prop.IC{}, q.K, score)
		if err != nil {
			t.Fatal(err)
		}
		if got < (1-1/math.E-0.3)*opt-1e-9 {
			t.Errorf("query %v: spread %v below guarantee of OPT %v", q.Topics, got, opt)
		}
	}
}

func TestPlanMatchesRRPlan(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	rr, irr := buildBoth(t, g, prof, testConfig(), 2)
	q := topic.Query{Topics: []int{topicMusic, topicBook}, K: 2}
	a, err := rr.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := irr.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	for w, v := range a {
		if b[w] != v {
			t.Fatalf("plans differ: %v vs %v", a, b)
		}
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	var buf bytes.Buffer
	if _, err := Build(&buf, g, prop.IC{}, prof, testConfig(), BuildOptions{
		Compression:   codec.Delta,
		PartitionSize: 2,
	}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for name, c := range map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("ZZZZ"), data[4:]...),
		"truncated": data[:60],
	} {
		if _, err := Open(diskio.NewMem(c, nil)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	var buf bytes.Buffer
	if _, err := Build(&buf, g, prop.IC{}, prof, testConfig(), BuildOptions{
		Compression: codec.Compression(7),
	}); err == nil {
		t.Fatal("bad compression accepted")
	}
	if _, err := Build(&buf, g, prop.IC{}, prof, testConfig(), BuildOptions{
		PartitionSize: -1,
	}); err == nil {
		t.Fatal("negative partition size accepted")
	}
	if _, err := Build(&buf, g, prop.IC{}, prof, testConfig(), BuildOptions{
		Topics: []int{77},
	}); err == nil {
		t.Fatal("bad topic accepted")
	}
}

func TestQueryValidation(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	_, irr := buildBoth(t, g, prof, testConfig(), 2)
	if _, err := irr.Query(topic.Query{Topics: []int{0}, K: 99}); err == nil {
		t.Fatal("k above K accepted")
	}
	if _, err := irr.Query(topic.Query{Topics: []int{9}, K: 1}); err == nil {
		t.Fatal("out-of-space topic accepted")
	}
}

func TestLTModelEquivalence(t *testing.T) {
	// Theorem 3 must hold under LT as well.
	g := figure1(t)
	prof := figure1Profiles(t)
	cfg := testConfig()
	var rrBuf, irrBuf bytes.Buffer
	if _, err := rrindex.Build(&rrBuf, g, prop.LT{}, prof, cfg, rrindex.BuildOptions{
		Compression: codec.Delta,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(&irrBuf, g, prop.LT{}, prof, cfg, BuildOptions{
		Compression:   codec.Delta,
		PartitionSize: 2,
	}); err != nil {
		t.Fatal(err)
	}
	rr, err := rrindex.Open(diskio.NewMem(rrBuf.Bytes(), nil))
	if err != nil {
		t.Fatal(err)
	}
	irr, err := Open(diskio.NewMem(irrBuf.Bytes(), nil))
	if err != nil {
		t.Fatal(err)
	}
	q := topic.Query{Topics: []int{topicMusic, topicBook}, K: 2}
	a, err := rr.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := irr.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Covered != b.Covered {
		t.Fatalf("LT covered %d vs %d", a.Covered, b.Covered)
	}
}

// TestTriggeringModelEquivalence exercises the general-triggering claim of
// the paper (footnote 2/3: the methods are independent of the propagation
// model and of how p(e) is set): both indexes built under a custom
// WeightedIC model must still agree per Theorem 3.
func TestTriggeringModelEquivalence(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	cfg := testConfig()
	model := prop.WeightedIC{P: func(g *graph.Graph, v uint32) float64 {
		if g.InDegree(v) == 0 {
			return 0
		}
		return 0.3
	}}
	var rrBuf, irrBuf bytes.Buffer
	if _, err := rrindex.Build(&rrBuf, g, model, prof, cfg, rrindex.BuildOptions{
		Compression: codec.Delta,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(&irrBuf, g, model, prof, cfg, BuildOptions{
		Compression:   codec.Delta,
		PartitionSize: 2,
	}); err != nil {
		t.Fatal(err)
	}
	rr, err := rrindex.Open(diskio.NewMem(rrBuf.Bytes(), nil))
	if err != nil {
		t.Fatal(err)
	}
	irr, err := Open(diskio.NewMem(irrBuf.Bytes(), nil))
	if err != nil {
		t.Fatal(err)
	}
	if rr.Header().ModelName != "WIC" || irr.Header().ModelName != "WIC" {
		t.Fatalf("model name not preserved: %q / %q",
			rr.Header().ModelName, irr.Header().ModelName)
	}
	q := topic.Query{Topics: []int{topicMusic, topicBook}, K: 3}
	a, err := rr.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := irr.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Covered != b.Covered {
		t.Fatalf("WIC covered %d vs %d", a.Covered, b.Covered)
	}
	for i := range a.Marginals {
		if a.Marginals[i] != b.Marginals[i] {
			t.Fatalf("WIC marginals %v vs %v", a.Marginals, b.Marginals)
		}
	}
}

// TestTheorem3ZeroMarginalPadding is the regression for the zero-marginal
// trace divergence: once the greedy marginals hit 0 (k well past the
// positive-score horizon of a small index), the IRR query used to keep
// popping its candidate heap — listed users, smallest-user tie-break —
// while coverage.Solve (the RR path) pads with the smallest unpicked vertex
// ID over ALL vertices. Theorem 3 promises identical traces, so seeds AND
// marginals must match exactly all the way to k.
func TestTheorem3ZeroMarginalPadding(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	rr, irr := buildBoth(t, g, prof, testConfig(), 2)
	sawZero := false
	for _, q := range []topic.Query{
		// K=5 on a 7-vertex graph: the tail of every trace is zero-marginal.
		{Topics: []int{topicCar}, K: 5},
		{Topics: []int{topicSport}, K: 5},
		{Topics: []int{topicMusic, topicBook}, K: 5},
		{Topics: []int{topicMusic, topicBook, topicSport, topicCar}, K: 5},
	} {
		rrRes, err := rr.Query(q)
		if err != nil {
			t.Fatalf("RR %v: %v", q.Topics, err)
		}
		irrRes, err := irr.Query(q)
		if err != nil {
			t.Fatalf("IRR %v: %v", q.Topics, err)
		}
		if len(rrRes.Seeds) != len(irrRes.Seeds) {
			t.Fatalf("query %v: %d vs %d seeds", q.Topics, len(rrRes.Seeds), len(irrRes.Seeds))
		}
		for i := range rrRes.Seeds {
			if rrRes.Marginals[i] == 0 {
				sawZero = true
			}
			if rrRes.Seeds[i] != irrRes.Seeds[i] || rrRes.Marginals[i] != irrRes.Marginals[i] {
				t.Fatalf("query %v: trace diverges at %d: RR %v/%v vs IRR %v/%v",
					q.Topics, i, rrRes.Seeds, rrRes.Marginals, irrRes.Seeds, irrRes.Marginals)
			}
		}
	}
	if !sawZero {
		t.Fatal("no query reached the zero-marginal horizon; the regression exercises nothing")
	}
}

// queryEqual fails the test unless two query results are observably
// identical in everything but their I/O profile.
func queryEqual(t *testing.T, ctx string, a, b *QueryResult) {
	t.Helper()
	if !reflect.DeepEqual(a.Seeds, b.Seeds) {
		t.Fatalf("%s: seeds %v vs %v", ctx, a.Seeds, b.Seeds)
	}
	if !reflect.DeepEqual(a.Marginals, b.Marginals) {
		t.Fatalf("%s: marginals %v vs %v", ctx, a.Marginals, b.Marginals)
	}
	if a.EstSpread != b.EstSpread || a.Covered != b.Covered ||
		a.NumRRSets != b.NumRRSets || a.PartitionsLoaded != b.PartitionsLoaded {
		t.Fatalf("%s: metrics diverge: %+v vs %+v", ctx, a, b)
	}
	if !reflect.DeepEqual(a.Loaded, b.Loaded) {
		t.Fatalf("%s: loaded %v vs %v", ctx, a.Loaded, b.Loaded)
	}
}

// TestDecodedCacheCorrectness runs the same workload with and without the
// decoded-object cache: results must be identical, repeats must hit, and a
// fully warm query must touch neither the disk nor the decoder.
func TestDecodedCacheCorrectness(t *testing.T) {
	g, err := gen.NewsLike(gen.NewsLikeConfig{N: 300, AvgDegree: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := gen.Profiles(gen.DefaultProfilesConfig(300, 5, 8))
	if err != nil {
		t.Fatal(err)
	}
	cfg := wris.Config{
		Epsilon: 0.4, K: 15, PilotSets: 500, MaxThetaPerKeyword: 8000, Seed: 21, Workers: 2,
	}
	var buf bytes.Buffer
	if _, err := Build(&buf, g, prop.IC{}, prof, cfg, BuildOptions{
		Compression:   codec.Delta,
		PartitionSize: 10,
	}); err != nil {
		t.Fatal(err)
	}
	plain, err := Open(diskio.NewMem(buf.Bytes(), nil))
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Open(diskio.NewMem(buf.Bytes(), nil))
	if err != nil {
		t.Fatal(err)
	}
	cache := objcache.New(8 << 20)
	cached.SetDecodedCache(cache)

	queries := []topic.Query{
		{Topics: []int{0, 1}, K: 10},
		{Topics: []int{0, 2, 3}, K: 15},
		{Topics: []int{4}, K: 5},
		{Topics: []int{0, 1}, K: 10}, // repeat → decoded hits
	}
	var hits int64
	for i, q := range queries {
		a, err := plain.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := cached.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		queryEqual(t, fmt.Sprintf("query %d", i), a, b)
		if a.DecodedHits != 0 || a.DecodedMisses != 0 {
			t.Fatalf("uncached index reported decoded-cache traffic: %+v", a)
		}
		hits += b.DecodedHits
	}
	if hits == 0 {
		t.Fatal("repeated workload produced no decoded-cache hits")
	}
	if s := cache.Stats(); s.Hits == 0 || s.Misses == 0 || s.Entries == 0 {
		t.Fatalf("cache stats %+v", s)
	}
	// A fully repeated query on a warm cache costs zero reads AND zero
	// decodes: everything is a decoded hit.
	warm, err := cached.Query(topic.Query{Topics: []int{0, 1}, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if warm.IO.Total() != 0 || warm.DecodedMisses != 0 || warm.DecodedHits == 0 {
		t.Fatalf("warm query still paid: io=%+v hits=%d misses=%d",
			warm.IO, warm.DecodedHits, warm.DecodedMisses)
	}
}

// TestDecodedCacheConcurrent hammers one decoded-cache-backed index from
// many goroutines (run under -race): every result must equal the serial
// baseline, and the singleflight must have collapsed concurrent decodes.
func TestDecodedCacheConcurrent(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	_, irr := buildBoth(t, g, prof, testConfig(), 2)
	cache := objcache.New(1 << 20)
	irr.SetDecodedCache(cache)

	queries := []topic.Query{
		{Topics: []int{topicMusic}, K: 2},
		{Topics: []int{topicMusic, topicBook}, K: 3},
		{Topics: []int{topicCar, topicSport}, K: 5},
	}
	base := make([]*QueryResult, len(queries))
	for i, q := range queries {
		r, err := irr.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		base[i] = r
	}
	const goroutines, rounds = 10, 8
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				qi := (gi + i) % len(queries)
				r, err := irr.Query(queries[qi])
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(r.Seeds, base[qi].Seeds) || r.EstSpread != base[qi].EstSpread {
					t.Errorf("query %d diverged under concurrency", qi)
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	if s := cache.Stats(); s.Hits+s.Shared == 0 {
		t.Fatalf("concurrent repeated workload never hit the decoded cache: %+v", s)
	}
}
