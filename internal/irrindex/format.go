// Package irrindex implements the Incremental RR index of §5: per keyword,
// the inverted lists are sorted by length (most-covered users first) and cut
// into fixed-size partitions; each partition block also carries the RR sets
// first "claimed" by that partition (IR), and a first-occurrence table (IP)
// resolves whether an unseen user can still contribute (Algorithm 3). Query
// processing is an NRA-style top-k aggregation with lazy upper-bound
// refinement (Algorithm 4), loading partitions only until the next seed is
// provably the best remaining candidate — the source of the "load far fewer
// RR sets" effect of Figures 5–7 (at the price of random I/O, Table 6).
//
// On-disk layout (single file, little-endian):
//
//	header:
//	  magic "KBII" | version u32 | preludeLen u64 | compression u8 |
//	  sizing u8 | modelNameLen u8 | modelName | numVertices u64 |
//	  numTopics u32 | K u32 | epsilon f64 | partitionSize u32 |
//	  numKeywords u32
//	directory, one entry per keyword:
//	  topicID u32 | thetaW u64 | tfSum f64 | phi f64 |
//	  ipOff u64 | ipLen u64 | numIPEntries u32 | numPartitions u32 |
//	  per partition: off u64 | len u64 | numUsers u32 | numSets u32 |
//	                 lastListLen u32
//	payload:
//	  per keyword: IP region (numIPEntries × [vertex uvarint, firstOcc
//	  uvarint]), then partition blocks. A partition block is
//	  IL part: numUsers × [vertex uvarint, encoded RR-ID list] followed by
//	  IR part: encoded list of the numSets claimed rrIDs (ascending),
//	  then memberBytes uvarint and numSets encoded member lists (in
//	  claimed-ID order).
//
// Version history: v1 interleaved the IR part as numSets × [rrID uvarint,
// encoded member list], which forced queries — that only ever need the
// claimed IDs — to varint-scan every member list just to step over it;
// profile-wise that scan dominated partition decode. v2 fronts the claimed
// IDs and length-prefixes the member-list bytes, so query decode stops
// cold after one list.
//
// lastListLen is the length of the partition's shortest (last) inverted
// list: after loading partition p the NRA bound kb[w] for unseen users is
// exactly that value (lists are globally sorted by descending length).
package irrindex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"kbtim/internal/binfmt"
	"kbtim/internal/codec"
	"kbtim/internal/wris"
)

const (
	indexMagic   = "KBII"
	indexVersion = 2
)

// ErrBadFormat reports a malformed or corrupt index file.
var ErrBadFormat = errors.New("irrindex: bad index format")

// Header is the index-wide metadata.
type Header struct {
	Compression   codec.Compression
	Sizing        wris.SizingMode
	ModelName     string
	NumVertices   int
	NumTopics     int
	K             int
	Epsilon       float64
	PartitionSize int // δ of Algorithm 3
}

// Partition locates one partition block.
type Partition struct {
	Off         int64
	Len         int64
	NumUsers    int
	NumSets     int
	LastListLen int // length of the shortest inverted list in the block
}

// KeywordDir is one keyword's directory entry.
type KeywordDir struct {
	TopicID      int
	ThetaW       int64
	TFSum        float64
	Phi          float64
	IPOff        int64
	IPLen        int64
	NumIPEntries int
	Partitions   []Partition
}

func appendHeader(buf []byte, h *Header, numKeywords int) ([]byte, error) {
	if len(h.ModelName) == 0 || len(h.ModelName) > 255 {
		return nil, fmt.Errorf("irrindex: invalid model name %q", h.ModelName)
	}
	if !h.Compression.Valid() {
		return nil, fmt.Errorf("irrindex: invalid compression %d", h.Compression)
	}
	if h.PartitionSize <= 0 {
		return nil, fmt.Errorf("irrindex: invalid partition size %d", h.PartitionSize)
	}
	buf = append(buf, indexMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, indexVersion)
	buf = binary.LittleEndian.AppendUint64(buf, 0) // preludeLen, patched later
	buf = append(buf, byte(h.Compression), byte(h.Sizing), byte(len(h.ModelName)))
	buf = append(buf, h.ModelName...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(h.NumVertices))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.NumTopics))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.K))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.Epsilon))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.PartitionSize))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(numKeywords))
	return buf, nil
}

func parseHeader(r *binfmt.Reader) (Header, int, error) {
	var h Header
	magic := r.Bytes(4)
	if err := r.Err(); err != nil {
		return h, 0, err
	}
	if string(magic) != indexMagic {
		return h, 0, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic)
	}
	if v := r.U32(); r.Err() == nil && v != indexVersion {
		return h, 0, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	r.U64() // preludeLen, consumed by Open
	h.Compression = codec.Compression(r.U8())
	h.Sizing = wris.SizingMode(r.U8())
	nameLen := int(r.U8())
	name := r.Bytes(nameLen)
	if r.Err() == nil {
		h.ModelName = string(name)
	}
	h.NumVertices = int(r.U64())
	h.NumTopics = int(r.U32())
	h.K = int(r.U32())
	h.Epsilon = r.F64()
	h.PartitionSize = int(r.U32())
	numKeywords := int(r.U32())
	if err := r.Err(); err != nil {
		return h, 0, err
	}
	if !h.Compression.Valid() {
		return h, 0, fmt.Errorf("%w: unknown compression %d", ErrBadFormat, h.Compression)
	}
	if h.NumVertices < 0 || h.NumTopics <= 0 || h.PartitionSize <= 0 ||
		numKeywords < 0 || numKeywords > h.NumTopics {
		return h, 0, fmt.Errorf("%w: implausible header", ErrBadFormat)
	}
	return h, numKeywords, nil
}

func appendKeywordDir(buf []byte, d *KeywordDir) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.TopicID))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.ThetaW))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.TFSum))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.Phi))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.IPOff))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.IPLen))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.NumIPEntries))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(d.Partitions)))
	for _, p := range d.Partitions {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Off))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Len))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.NumUsers))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.NumSets))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.LastListLen))
	}
	return buf
}

func parseKeywordDir(r *binfmt.Reader, h *Header) (KeywordDir, error) {
	var d KeywordDir
	d.TopicID = int(r.U32())
	d.ThetaW = int64(r.U64())
	d.TFSum = r.F64()
	d.Phi = r.F64()
	d.IPOff = int64(r.U64())
	d.IPLen = int64(r.U64())
	d.NumIPEntries = int(r.U32())
	numParts := int(r.U32())
	if err := r.Err(); err != nil {
		return d, err
	}
	if numParts < 0 || numParts > 1<<28 {
		return d, fmt.Errorf("%w: implausible partition count %d", ErrBadFormat, numParts)
	}
	d.Partitions = make([]Partition, numParts)
	for i := range d.Partitions {
		d.Partitions[i] = Partition{
			Off:         int64(r.U64()),
			Len:         int64(r.U64()),
			NumUsers:    int(r.U32()),
			NumSets:     int(r.U32()),
			LastListLen: int(r.U32()),
		}
	}
	if err := r.Err(); err != nil {
		return d, err
	}
	if d.TopicID < 0 || d.TopicID >= h.NumTopics || d.ThetaW <= 0 ||
		d.NumIPEntries < 0 || d.NumIPEntries > h.NumVertices {
		return d, fmt.Errorf("%w: implausible directory for topic %d", ErrBadFormat, d.TopicID)
	}
	return d, nil
}
