package irrindex

import (
	"bytes"
	"testing"

	"kbtim/internal/codec"
	"kbtim/internal/diskio"
	"kbtim/internal/prop"
	"kbtim/internal/rng"
	"kbtim/internal/topic"
)

// TestRandomCorruptionNeverPanics flips random bytes throughout a valid
// index and asserts every Open/Query outcome is either a clean error or a
// well-formed result — never a panic. (Corruption in unread padding may
// legitimately go unnoticed; silent success on touched-but-compatible bytes
// is acceptable, crashing is not.)
func TestRandomCorruptionNeverPanics(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	var buf bytes.Buffer
	if _, err := Build(&buf, g, prop.IC{}, prof, testConfig(), BuildOptions{
		Compression:   codec.Delta,
		PartitionSize: 2,
	}); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	src := rng.New(99)
	q := topic.Query{Topics: []int{topicMusic, topicBook}, K: 2}

	for trial := 0; trial < 300; trial++ {
		data := append([]byte(nil), pristine...)
		flips := src.Intn(4) + 1
		for i := 0; i < flips; i++ {
			pos := src.Intn(len(data))
			data[pos] ^= byte(src.Intn(255) + 1)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v", trial, r)
				}
			}()
			idx, err := Open(diskio.NewMem(data, nil))
			if err != nil {
				return // clean rejection
			}
			res, err := idx.Query(q)
			if err != nil {
				return // clean rejection
			}
			// Whatever survived must still be structurally sane.
			if len(res.Seeds) == 0 || len(res.Seeds) > 2 {
				t.Fatalf("trial %d: corrupt index returned %d seeds", trial, len(res.Seeds))
			}
			for _, s := range res.Seeds {
				if int(s) >= g.NumVertices() {
					t.Fatalf("trial %d: seed %d out of range", trial, s)
				}
			}
		}()
	}
}

// TestTruncationSweepNeverPanics opens every prefix of a valid index.
func TestTruncationSweepNeverPanics(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	cfg := testConfig()
	cfg.MaxThetaPerKeyword = 200 // keep the file small enough to sweep
	var buf bytes.Buffer
	if _, err := Build(&buf, g, prop.IC{}, prof, cfg, BuildOptions{
		Compression:   codec.Delta,
		PartitionSize: 2,
	}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	step := len(data)/200 + 1
	for n := 0; n < len(data); n += step {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("prefix %d panicked: %v", n, r)
				}
			}()
			idx, err := Open(diskio.NewMem(data[:n], nil))
			if err != nil {
				return
			}
			_, _ = idx.Query(topic.Query{Topics: []int{topicMusic}, K: 1})
		}()
	}
}
