package binfmt

import (
	"encoding/binary"
	"testing"
)

func TestReaderSequence(t *testing.T) {
	var buf []byte
	buf = append(buf, 7)
	buf = binary.LittleEndian.AppendUint32(buf, 42)
	buf = binary.LittleEndian.AppendUint64(buf, 1<<40)
	buf = binary.AppendUvarint(buf, 300)
	buf = append(buf, 'h', 'i')

	r := NewReader(buf)
	if got := r.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if got := r.U32(); got != 42 {
		t.Fatalf("U32 = %d", got)
	}
	if got := r.U64(); got != 1<<40 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.Uvarint(); got != 300 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := string(r.Bytes(2)); got != "hi" {
		t.Fatalf("Bytes = %q", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1})
	r.U32() // fails: needs 4 bytes
	if r.Err() == nil {
		t.Fatal("no error after overread")
	}
	// Subsequent reads are no-ops returning zero values.
	if r.U8() != 0 || r.U64() != 0 || r.Uvarint() != 0 || r.Bytes(1) != nil {
		t.Fatal("reads after error not zeroed")
	}
}

func TestReaderBadVarint(t *testing.T) {
	r := NewReader([]byte{0x80, 0x80})
	r.Uvarint()
	if r.Err() == nil {
		t.Fatal("unterminated varint accepted")
	}
}

func TestReaderNegativeLength(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if r.Bytes(-1) != nil || r.Err() == nil {
		t.Fatal("negative length accepted")
	}
}

func TestFail(t *testing.T) {
	r := NewReader([]byte{1, 2})
	r.Fail(ErrTruncated)
	if r.Err() != ErrTruncated {
		t.Fatal("Fail did not stick")
	}
	r.Fail(nil) // must not overwrite
	if r.Err() != ErrTruncated {
		t.Fatal("Fail overwrote original error")
	}
}
