// Package binfmt provides the little cursor-style binary readers the index
// formats share. Every index file is parsed through Reader so truncation and
// garbage are caught at a single chokepoint instead of being scattered
// through format code.
package binfmt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated reports a read past the end of the buffer.
var ErrTruncated = errors.New("binfmt: truncated input")

// Reader is a sequential cursor over a byte slice with sticky error capture:
// after the first failure every subsequent read is a no-op and Err reports
// the original cause.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader wraps buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Pos returns the current cursor position.
func (r *Reader) Pos() int { return r.pos }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

// Fail records err (if no earlier error exists).
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Bytes consumes and returns n raw bytes (aliasing the input buffer).
func (r *Reader) Bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.buf) {
		r.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, r.pos, len(r.buf))
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// U8 consumes one byte.
func (r *Reader) U8() byte {
	b := r.Bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 consumes a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.Bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 consumes a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.Bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// F64 consumes a little-endian float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Uvarint consumes one LEB128 varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.err = fmt.Errorf("%w: bad uvarint at offset %d", ErrTruncated, r.pos)
		return 0
	}
	r.pos += n
	return v
}
