package codec

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"kbtim/internal/rng"
)

func TestRoundTripSimple(t *testing.T) {
	lists := [][]uint32{
		{},
		{0},
		{5},
		{0, 1, 2, 3},
		{10, 100, 1000, 1 << 30},
		{4294967294, 4294967295},
	}
	for _, list := range lists {
		for _, c := range []Compression{Raw, Delta} {
			buf := c.AppendList(nil, list)
			out, n, err := c.DecodeList(nil, buf)
			if err != nil {
				t.Fatalf("%s %v: %v", c, list, err)
			}
			if n != len(buf) {
				t.Fatalf("%s %v: consumed %d of %d bytes", c, list, n, len(buf))
			}
			if len(list) == 0 {
				if len(out) != 0 {
					t.Fatalf("%s: empty list decoded to %v", c, out)
				}
				continue
			}
			if !reflect.DeepEqual(out, list) {
				t.Fatalf("%s: round trip %v → %v", c, list, out)
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		// Dedup + sort to satisfy Delta's precondition.
		seen := map[uint32]bool{}
		var list []uint32
		for _, v := range raw {
			if !seen[v] {
				seen[v] = true
				list = append(list, v)
			}
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		for _, c := range []Compression{Raw, Delta} {
			buf := c.AppendList(nil, list)
			out, n, err := c.DecodeList(nil, buf)
			if err != nil || n != len(buf) {
				return false
			}
			if len(list) != len(out) {
				return false
			}
			for i := range list {
				if list[i] != out[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcatenatedLists(t *testing.T) {
	a := []uint32{1, 5, 9}
	b := []uint32{2, 3}
	buf := AppendUint32List(nil, a)
	buf = AppendUint32List(buf, b)
	outA, n, err := DecodeUint32List(nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	outB, n2, err := DecodeUint32List(nil, buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if n+n2 != len(buf) {
		t.Fatalf("consumed %d+%d of %d", n, n2, len(buf))
	}
	if !reflect.DeepEqual(outA, a) || !reflect.DeepEqual(outB, b) {
		t.Fatalf("concat decode: %v %v", outA, outB)
	}
}

func TestDeltaPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted input accepted")
		}
	}()
	AppendUint32List(nil, []uint32{3, 1})
}

func TestDeltaPanicsOnDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate input accepted")
		}
	}()
	AppendUint32List(nil, []uint32{1, 1})
}

func TestDecodeRejectsCorruption(t *testing.T) {
	good := AppendUint32List(nil, []uint32{10, 20, 30})
	cases := map[string][]byte{
		"empty":           {},
		"truncated":       good[:len(good)-1],
		"huge count":      {0xFF, 0xFF, 0xFF, 0xFF, 0x0F},
		"zero gap stream": {2, 5, 0}, // gap of 0 is illegal
	}
	for name, buf := range cases {
		if _, _, err := DecodeUint32List(nil, buf); err == nil {
			t.Errorf("delta: %s accepted", name)
		}
	}
	rawGood := AppendRawUint32List(nil, []uint32{10, 20})
	if _, _, err := DecodeRawUint32List(nil, rawGood[:len(rawGood)-2]); err == nil {
		t.Error("raw: truncated accepted")
	}
	if _, _, err := DecodeRawUint32List(nil, nil); err == nil {
		t.Error("raw: empty accepted")
	}
}

func TestDecodeAppendsToExisting(t *testing.T) {
	buf := AppendUint32List(nil, []uint32{7, 8})
	out := []uint32{1, 2}
	out, _, err := DecodeUint32List(out, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []uint32{1, 2, 7, 8}) {
		t.Fatalf("append decode = %v", out)
	}
}

func TestCompressionRatioOnTypicalGaps(t *testing.T) {
	// Inverted lists have small gaps; delta should beat raw clearly
	// (the Table 4 effect).
	src := rng.New(3)
	list := make([]uint32, 0, 10000)
	cur := uint32(0)
	for i := 0; i < 10000; i++ {
		cur += uint32(src.Intn(20) + 1)
		list = append(list, cur)
	}
	raw := AppendRawUint32List(nil, list)
	delta := AppendUint32List(nil, list)
	ratio := float64(len(delta)) / float64(len(raw))
	if ratio > 0.6 {
		t.Fatalf("delta/raw = %v, expected ≤0.6 on small-gap data", ratio)
	}
}

func TestCompressionEnum(t *testing.T) {
	if !Raw.Valid() || !Delta.Valid() || Compression(9).Valid() {
		t.Fatal("Valid() broken")
	}
	if Raw.String() != "raw" || Delta.String() != "delta-varint" {
		t.Fatal("String() broken")
	}
	if Compression(9).String() == "" {
		t.Fatal("unknown String() empty")
	}
}

func BenchmarkEncodeDelta(b *testing.B) {
	src := rng.New(1)
	list := make([]uint32, 0, 4096)
	cur := uint32(0)
	for i := 0; i < 4096; i++ {
		cur += uint32(src.Intn(30) + 1)
		list = append(list, cur)
	}
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendUint32List(buf[:0], list)
	}
}

func BenchmarkDecodeDelta(b *testing.B) {
	src := rng.New(1)
	list := make([]uint32, 0, 4096)
	cur := uint32(0)
	for i := 0; i < 4096; i++ {
		cur += uint32(src.Intn(30) + 1)
		list = append(list, cur)
	}
	buf := AppendUint32List(nil, list)
	var out []uint32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, _, err = DecodeUint32List(out[:0], buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}
