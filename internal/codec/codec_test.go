package codec

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"kbtim/internal/rng"
)

func TestRoundTripSimple(t *testing.T) {
	lists := [][]uint32{
		{},
		{0},
		{5},
		{0, 1, 2, 3},
		{10, 100, 1000, 1 << 30},
		{4294967294, 4294967295},
	}
	for _, list := range lists {
		for _, c := range []Compression{Raw, Delta} {
			buf := c.AppendList(nil, list)
			out, n, err := c.DecodeList(nil, buf)
			if err != nil {
				t.Fatalf("%s %v: %v", c, list, err)
			}
			if n != len(buf) {
				t.Fatalf("%s %v: consumed %d of %d bytes", c, list, n, len(buf))
			}
			if len(list) == 0 {
				if len(out) != 0 {
					t.Fatalf("%s: empty list decoded to %v", c, out)
				}
				continue
			}
			if !reflect.DeepEqual(out, list) {
				t.Fatalf("%s: round trip %v → %v", c, list, out)
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		// Dedup + sort to satisfy Delta's precondition.
		seen := map[uint32]bool{}
		var list []uint32
		for _, v := range raw {
			if !seen[v] {
				seen[v] = true
				list = append(list, v)
			}
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		for _, c := range []Compression{Raw, Delta} {
			buf := c.AppendList(nil, list)
			out, n, err := c.DecodeList(nil, buf)
			if err != nil || n != len(buf) {
				return false
			}
			if len(list) != len(out) {
				return false
			}
			for i := range list {
				if list[i] != out[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcatenatedLists(t *testing.T) {
	a := []uint32{1, 5, 9}
	b := []uint32{2, 3}
	buf := AppendUint32List(nil, a)
	buf = AppendUint32List(buf, b)
	outA, n, err := DecodeUint32List(nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	outB, n2, err := DecodeUint32List(nil, buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if n+n2 != len(buf) {
		t.Fatalf("consumed %d+%d of %d", n, n2, len(buf))
	}
	if !reflect.DeepEqual(outA, a) || !reflect.DeepEqual(outB, b) {
		t.Fatalf("concat decode: %v %v", outA, outB)
	}
}

func TestDeltaPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted input accepted")
		}
	}()
	AppendUint32List(nil, []uint32{3, 1})
}

func TestDeltaPanicsOnDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate input accepted")
		}
	}()
	AppendUint32List(nil, []uint32{1, 1})
}

func TestDecodeRejectsCorruption(t *testing.T) {
	good := AppendUint32List(nil, []uint32{10, 20, 30})
	cases := map[string][]byte{
		"empty":           {},
		"truncated":       good[:len(good)-1],
		"huge count":      {0xFF, 0xFF, 0xFF, 0xFF, 0x0F},
		"zero gap stream": {2, 5, 0}, // gap of 0 is illegal
	}
	for name, buf := range cases {
		if _, _, err := DecodeUint32List(nil, buf); err == nil {
			t.Errorf("delta: %s accepted", name)
		}
	}
	rawGood := AppendRawUint32List(nil, []uint32{10, 20})
	if _, _, err := DecodeRawUint32List(nil, rawGood[:len(rawGood)-2]); err == nil {
		t.Error("raw: truncated accepted")
	}
	if _, _, err := DecodeRawUint32List(nil, nil); err == nil {
		t.Error("raw: empty accepted")
	}
}

func TestDecodeAppendsToExisting(t *testing.T) {
	buf := AppendUint32List(nil, []uint32{7, 8})
	out := []uint32{1, 2}
	out, _, err := DecodeUint32List(out, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []uint32{1, 2, 7, 8}) {
		t.Fatalf("append decode = %v", out)
	}
}

func TestCompressionRatioOnTypicalGaps(t *testing.T) {
	// Inverted lists have small gaps; delta should beat raw clearly
	// (the Table 4 effect).
	src := rng.New(3)
	list := make([]uint32, 0, 10000)
	cur := uint32(0)
	for i := 0; i < 10000; i++ {
		cur += uint32(src.Intn(20) + 1)
		list = append(list, cur)
	}
	raw := AppendRawUint32List(nil, list)
	delta := AppendUint32List(nil, list)
	ratio := float64(len(delta)) / float64(len(raw))
	if ratio > 0.6 {
		t.Fatalf("delta/raw = %v, expected ≤0.6 on small-gap data", ratio)
	}
}

func TestCompressionEnum(t *testing.T) {
	if !Raw.Valid() || !Delta.Valid() || Compression(9).Valid() {
		t.Fatal("Valid() broken")
	}
	if Raw.String() != "raw" || Delta.String() != "delta-varint" {
		t.Fatal("String() broken")
	}
	if Compression(9).String() == "" {
		t.Fatal("unknown String() empty")
	}
}

func BenchmarkEncodeDelta(b *testing.B) {
	src := rng.New(1)
	list := make([]uint32, 0, 4096)
	cur := uint32(0)
	for i := 0; i < 4096; i++ {
		cur += uint32(src.Intn(30) + 1)
		list = append(list, cur)
	}
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendUint32List(buf[:0], list)
	}
}

func BenchmarkDecodeDelta(b *testing.B) {
	src := rng.New(1)
	list := make([]uint32, 0, 4096)
	cur := uint32(0)
	for i := 0; i < 4096; i++ {
		cur += uint32(src.Intn(30) + 1)
		list = append(list, cur)
	}
	buf := AppendUint32List(nil, list)
	var out []uint32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, _, err = DecodeUint32List(out[:0], buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// TestSkipDecodeParity: SkipList must report exactly the byte position
// DecodeList reports, for both codecs, across deterministic random lists
// and concatenated streams.
func TestSkipDecodeParity(t *testing.T) {
	src := rng.New(99)
	lists := [][]uint32{{}, {0}, {1 << 31}, {0, 1, 2}, {7, 300, 90000, 1 << 29}}
	for i := 0; i < 50; i++ {
		n := int(src.Uint64() % 200)
		seen := map[uint32]bool{}
		var list []uint32
		for len(list) < n {
			v := uint32(src.Uint64())
			if !seen[v] {
				seen[v] = true
				list = append(list, v)
			}
		}
		sort.Slice(list, func(a, b int) bool { return list[a] < list[b] })
		lists = append(lists, list)
	}
	for _, c := range []Compression{Raw, Delta} {
		// Per-list parity.
		for _, list := range lists {
			buf := c.AppendList(nil, list)
			_, dn, err := c.DecodeList(nil, buf)
			if err != nil {
				t.Fatalf("%s: decode: %v", c, err)
			}
			sn, err := c.SkipList(buf)
			if err != nil {
				t.Fatalf("%s: skip: %v", c, err)
			}
			if sn != dn {
				t.Fatalf("%s %v: skip consumed %d bytes, decode %d", c, list, sn, dn)
			}
			// Trailing garbage must not change the consumed count.
			sn2, err := c.SkipList(append(append([]byte(nil), buf...), 0xAB, 0xCD))
			if err != nil || sn2 != dn {
				t.Fatalf("%s: skip with trailing bytes: n=%d err=%v", c, sn2, err)
			}
		}
		// Concatenated-stream parity: skipping list by list lands on the
		// same boundaries decoding does.
		var buf []byte
		for _, list := range lists {
			buf = c.AppendList(buf, list)
		}
		dpos, spos := 0, 0
		for range lists {
			_, dn, err := c.DecodeList(nil, buf[dpos:])
			if err != nil {
				t.Fatal(err)
			}
			sn, err := c.SkipList(buf[spos:])
			if err != nil {
				t.Fatal(err)
			}
			dpos += dn
			spos += sn
			if dpos != spos {
				t.Fatalf("%s: positions diverged: skip %d decode %d", c, spos, dpos)
			}
		}
		if spos != len(buf) {
			t.Fatalf("%s: %d trailing bytes after skipping all lists", c, len(buf)-spos)
		}
	}
}

func TestSkipRejectsTruncation(t *testing.T) {
	for _, c := range []Compression{Raw, Delta} {
		good := c.AppendList(nil, []uint32{10, 500, 100000})
		for cut := 0; cut < len(good); cut++ {
			// Parity on bad input too: skip must error exactly when decode
			// errors (a skip that "succeeds" with a short count on a
			// truncation decode rejects would desynchronize its caller).
			_, dn, derr := c.DecodeList(nil, good[:cut])
			sn, serr := c.SkipList(good[:cut])
			if (derr == nil) != (serr == nil) {
				t.Errorf("%s cut %d: decode err=%v, skip err=%v", c, cut, derr, serr)
				continue
			}
			if derr == nil && sn != dn {
				t.Errorf("%s cut %d: skip consumed %d, decode %d", c, cut, sn, dn)
			}
		}
		if _, err := c.SkipList(nil); err == nil {
			t.Errorf("%s: empty buffer accepted", c)
		}
		// A huge count varint must be rejected, not wrapped into a bogus
		// short skip (count*4 overflow guard).
		huge := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}
		if n, err := c.SkipList(huge); err == nil {
			t.Errorf("%s: huge count accepted (n=%d)", c, n)
		}
		if _, _, err := c.DecodeList(nil, huge); err == nil {
			t.Errorf("%s: decode accepted huge count", c)
		}
	}
}

func TestSkipRejectsOverflowVarint(t *testing.T) {
	// count=1 followed by a 10-byte varint overflowing uint64: Uvarint (and
	// so DecodeUint32List) rejects it, and SkipUint32List must too.
	buf := []byte{0x01, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}
	if _, _, err := DecodeUint32List(nil, buf); err == nil {
		t.Fatal("decode accepted an overflowing varint")
	}
	if n, err := SkipUint32List(buf); err == nil {
		t.Fatalf("skip accepted an overflowing varint (n=%d)", n)
	}
	// The maximal VALID 10-byte varint (last byte 0x01) passes framing in
	// both; decode then rejects it on the uint32 range check, which skip
	// does not perform — that value-level divergence is documented.
	ok := []byte{0x01, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
	if _, err := SkipUint32List(ok); err != nil {
		t.Fatalf("skip rejected a valid-framing 10-byte varint: %v", err)
	}
}
