// Package codec compresses the sorted integer lists that dominate both disk
// indexes: RR-set member lists and per-vertex inverted lists of RR-set IDs.
// The paper applies FastPFOR (as shipped in Lucene 4.6) and reports ≈40–50%
// space savings at negligible build-time cost (§6.2, Table 4); FastPFOR is
// not available to a stdlib-only build, so codec implements the same role
// with delta + LEB128 varint encoding, which achieves comparable ratios on
// the same data shapes (small sorted-gap distributions).
//
// Wire format of an encoded list:
//
//	varint(count) | varint(first) | varint(gap_1) | ... | varint(gap_{count-1})
//
// Gaps are strictly relative to the previous element; because lists are
// sorted and duplicate-free, every gap ≥ 1, and a decoded gap of 0 marks a
// corrupt stream.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrCorrupt reports an undecodable or internally inconsistent stream.
var ErrCorrupt = errors.New("codec: corrupt stream")

// AppendUint32List encodes the sorted, duplicate-free list and appends the
// bytes to dst. It panics if the list is not strictly ascending, because an
// unsorted list would silently decode to garbage.
func AppendUint32List(dst []byte, list []uint32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(list)))
	if len(list) == 0 {
		return dst
	}
	dst = binary.AppendUvarint(dst, uint64(list[0]))
	prev := list[0]
	for _, v := range list[1:] {
		if v <= prev {
			panic(fmt.Sprintf("codec: list not strictly ascending (%d after %d)", v, prev))
		}
		dst = binary.AppendUvarint(dst, uint64(v-prev))
		prev = v
	}
	return dst
}

// DecodeUint32List decodes one list from buf, appending members to out.
// It returns the extended slice and the number of bytes consumed.
func DecodeUint32List(out []uint32, buf []byte) ([]uint32, int, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return out, 0, fmt.Errorf("%w: bad count", ErrCorrupt)
	}
	if count > uint64(len(buf)) { // each element needs ≥1 byte
		return out, 0, fmt.Errorf("%w: count %d exceeds buffer", ErrCorrupt, count)
	}
	pos := n
	if count == 0 {
		return out, pos, nil
	}
	first, n := binary.Uvarint(buf[pos:])
	if n <= 0 || first > 1<<32-1 {
		return out, 0, fmt.Errorf("%w: bad first element", ErrCorrupt)
	}
	pos += n
	out = append(out, uint32(first))
	prev := uint32(first)
	for i := uint64(1); i < count; i++ {
		gap, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return out, 0, fmt.Errorf("%w: truncated at element %d", ErrCorrupt, i)
		}
		if gap == 0 || uint64(prev)+gap > 1<<32-1 {
			return out, 0, fmt.Errorf("%w: invalid gap %d", ErrCorrupt, gap)
		}
		pos += n
		prev += uint32(gap)
		out = append(out, prev)
	}
	return out, pos, nil
}

// SkipUint32List advances past one delta-encoded list in buf without
// materializing its members, returning the number of bytes it occupies —
// exactly the byte position DecodeUint32List would report for a valid
// stream. Element values are not validated (a corrupt gap that would fail
// decoding can pass a skip); only varint framing and truncation are checked.
func SkipUint32List(buf []byte) (int, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad count", ErrCorrupt)
	}
	if count > uint64(len(buf)) { // each element needs ≥1 byte
		return 0, fmt.Errorf("%w: count %d exceeds buffer", ErrCorrupt, count)
	}
	pos := n
	// first element + count-1 gaps = count varints; a varint ends at its
	// first byte without the continuation bit.
	for i := uint64(0); i < count; i++ {
		j := pos
		for j < len(buf) && buf[j]&0x80 != 0 {
			j++
		}
		if j >= len(buf) {
			return 0, fmt.Errorf("%w: truncated at element %d", ErrCorrupt, i)
		}
		// Match binary.Uvarint's overflow rule exactly (decode/skip error
		// parity): more than 10 bytes, or 10 bytes whose last exceeds 1,
		// does not fit uint64.
		if width := j - pos + 1; width > binary.MaxVarintLen64 ||
			(width == binary.MaxVarintLen64 && buf[j] > 1) {
			return 0, fmt.Errorf("%w: varint overflow at element %d", ErrCorrupt, i)
		}
		pos = j + 1
	}
	return pos, nil
}

// AppendRawUint32List encodes the list without compression (count +
// fixed-width little-endian elements). The "uncompressed" configuration of
// Table 4.
func AppendRawUint32List(dst []byte, list []uint32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(list)))
	for _, v := range list {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	return dst
}

// DecodeRawUint32List decodes one raw list from buf.
func DecodeRawUint32List(out []uint32, buf []byte) ([]uint32, int, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return out, 0, fmt.Errorf("%w: bad count", ErrCorrupt)
	}
	if count > uint64(len(buf))/4 { // also guards the count*4 overflow below
		return out, 0, fmt.Errorf("%w: count %d exceeds buffer", ErrCorrupt, count)
	}
	pos := n
	need := count * 4
	if uint64(len(buf)-pos) < need {
		return out, 0, fmt.Errorf("%w: raw list truncated", ErrCorrupt)
	}
	for i := uint64(0); i < count; i++ {
		out = append(out, binary.LittleEndian.Uint32(buf[pos:]))
		pos += 4
	}
	return out, pos, nil
}

// SkipRawUint32List advances past one raw-encoded list, returning its byte
// length (the position DecodeRawUint32List would report).
func SkipRawUint32List(buf []byte) (int, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad count", ErrCorrupt)
	}
	if count > uint64(len(buf))/4 { // also guards the count*4 overflow below
		return 0, fmt.Errorf("%w: count %d exceeds buffer", ErrCorrupt, count)
	}
	need := count * 4
	if uint64(len(buf)-n) < need {
		return 0, fmt.Errorf("%w: raw list truncated", ErrCorrupt)
	}
	return n + int(need), nil
}

// Compression selects the list encoding used by an index file.
type Compression uint8

// Supported compressions.
const (
	Raw   Compression = 0 // fixed-width, the "uncompressed" rows of Table 4
	Delta Compression = 1 // delta+varint, the "compressed" rows of Table 4
)

// Valid reports whether c is a known compression.
func (c Compression) Valid() bool { return c == Raw || c == Delta }

// String names the compression for reports.
func (c Compression) String() string {
	switch c {
	case Raw:
		return "raw"
	case Delta:
		return "delta-varint"
	default:
		return fmt.Sprintf("compression(%d)", uint8(c))
	}
}

// AppendList dispatches on c. Delta requires strictly ascending input; Raw
// accepts any order.
func (c Compression) AppendList(dst []byte, list []uint32) []byte {
	if c == Delta {
		return AppendUint32List(dst, list)
	}
	return AppendRawUint32List(dst, list)
}

// DecodeList dispatches on c.
func (c Compression) DecodeList(out []uint32, buf []byte) ([]uint32, int, error) {
	if c == Delta {
		return DecodeUint32List(out, buf)
	}
	return DecodeRawUint32List(out, buf)
}

// SkipList advances past one encoded list without decoding it, returning
// the number of bytes DecodeList would consume. Callers that only need to
// step over a list (e.g. the IRR partition loader counting RR sets) save
// the whole materialization cost.
func (c Compression) SkipList(buf []byte) (int, error) {
	if c == Delta {
		return SkipUint32List(buf)
	}
	return SkipRawUint32List(buf)
}
