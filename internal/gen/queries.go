package gen

import (
	"fmt"

	"kbtim/internal/rng"
	"kbtim/internal/topic"
)

// QueryWorkloadConfig controls the synthetic advertisement workload that
// substitutes the filtered AOL query log of §6.1 (100 real keyword queries
// per length 1..6, restricted to the 200 predefined topics).
type QueryWorkloadConfig struct {
	NumTopics    int
	Lengths      []int   // query lengths to generate, e.g. 1..6
	PerLength    int     // queries per length (paper: 100)
	K            int     // Q.k assigned to each query
	ZipfExponent float64 // keyword popularity skew (same as profiles)
	Seed         uint64
}

// DefaultQueryWorkloadConfig mirrors the paper: lengths 1..6, 100 queries
// each, default Q.k = 30.
func DefaultQueryWorkloadConfig(numTopics int, seed uint64) QueryWorkloadConfig {
	return QueryWorkloadConfig{
		NumTopics:    numTopics,
		Lengths:      []int{1, 2, 3, 4, 5, 6},
		PerLength:    100,
		K:            30,
		ZipfExponent: 1.0,
		Seed:         seed,
	}
}

// Queries generates the workload grouped by query length:
// result[L] holds the queries with |Q.T| = L.
func Queries(cfg QueryWorkloadConfig) (map[int][]topic.Query, error) {
	if cfg.NumTopics <= 0 {
		return nil, fmt.Errorf("gen: queries need a positive topic space, got %d", cfg.NumTopics)
	}
	if cfg.PerLength <= 0 || cfg.K <= 0 {
		return nil, fmt.Errorf("gen: queries need positive PerLength and K")
	}
	for _, l := range cfg.Lengths {
		if l <= 0 || l > cfg.NumTopics {
			return nil, fmt.Errorf("gen: query length %d invalid for %d topics", l, cfg.NumTopics)
		}
	}
	src := rng.New(cfg.Seed)
	alias, err := rng.NewAlias(TopicPopularity(cfg.NumTopics, cfg.ZipfExponent))
	if err != nil {
		return nil, err
	}
	out := make(map[int][]topic.Query, len(cfg.Lengths))
	for _, l := range cfg.Lengths {
		qs := make([]topic.Query, 0, cfg.PerLength)
		for i := 0; i < cfg.PerLength; i++ {
			seen := map[int]bool{}
			topics := make([]int, 0, l)
			for len(topics) < l {
				w := alias.Sample(src)
				if seen[w] {
					continue
				}
				seen[w] = true
				topics = append(topics, w)
			}
			qs = append(qs, topic.Query{Topics: topics, K: cfg.K})
		}
		out[l] = qs
	}
	return out, nil
}
