package gen

import (
	"fmt"
	"math"

	"kbtim/internal/rng"
	"kbtim/internal/topic"
)

// ProfilesConfig controls the synthetic user-profile generator.
type ProfilesConfig struct {
	NumUsers     int
	NumTopics    int     // |T|; the paper extracts 200 topics
	MinTopics    int     // minimum topics per user (≥1)
	MaxTopics    int     // maximum topics per user
	ZipfExponent float64 // topic popularity skew; 0 = uniform, ~1 realistic
	Seed         uint64
}

// DefaultProfilesConfig mirrors the paper's setup at reduced scale: a skewed
// topic distribution where a few topics (sports, music, ...) dominate.
func DefaultProfilesConfig(numUsers, numTopics int, seed uint64) ProfilesConfig {
	return ProfilesConfig{
		NumUsers:     numUsers,
		NumTopics:    numTopics,
		MinTopics:    1,
		MaxTopics:    5,
		ZipfExponent: 1.0,
		Seed:         seed,
	}
}

// Profiles generates a user-profile store: each user draws between MinTopics
// and MaxTopics distinct topics, Zipf-weighted by topic rank, and assigns
// random preference weights normalized to sum to 1 per user (as in Figure 1,
// where each user's topic preferences sum to 1).
func Profiles(cfg ProfilesConfig) (*topic.Profiles, error) {
	if cfg.NumUsers <= 0 || cfg.NumTopics <= 0 {
		return nil, fmt.Errorf("gen: profiles need positive dimensions, got %d users, %d topics", cfg.NumUsers, cfg.NumTopics)
	}
	if cfg.MinTopics < 1 || cfg.MaxTopics < cfg.MinTopics {
		return nil, fmt.Errorf("gen: invalid topics-per-user range [%d,%d]", cfg.MinTopics, cfg.MaxTopics)
	}
	if cfg.MaxTopics > cfg.NumTopics {
		return nil, fmt.Errorf("gen: MaxTopics %d exceeds topic space %d", cfg.MaxTopics, cfg.NumTopics)
	}
	src := rng.New(cfg.Seed)
	pop := TopicPopularity(cfg.NumTopics, cfg.ZipfExponent)
	alias, err := rng.NewAlias(pop)
	if err != nil {
		return nil, err
	}

	b := topic.NewBuilder(cfg.NumUsers, cfg.NumTopics)
	picked := make([]int, 0, cfg.MaxTopics)
	weights := make([]float64, 0, cfg.MaxTopics)
	for u := 0; u < cfg.NumUsers; u++ {
		k := cfg.MinTopics
		if cfg.MaxTopics > cfg.MinTopics {
			k += src.Intn(cfg.MaxTopics - cfg.MinTopics + 1)
		}
		picked = picked[:0]
		weights = weights[:0]
		seen := map[int]bool{}
		for len(picked) < k {
			w := alias.Sample(src)
			if seen[w] {
				continue
			}
			seen[w] = true
			picked = append(picked, w)
			weights = append(weights, src.Float64()+0.1)
		}
		var total float64
		for _, w := range weights {
			total += w
		}
		for i, w := range picked {
			if err := b.Set(uint32(u), w, weights[i]/total); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(), nil
}

// TopicPopularity returns the unnormalized Zipf popularity vector
// pop[w] = 1/(w+1)^s used by both the profile and query generators, so the
// query workload targets the same skewed topics the profiles emphasize.
func TopicPopularity(numTopics int, s float64) []float64 {
	pop := make([]float64, numTopics)
	for w := range pop {
		if s == 0 {
			pop[w] = 1
		} else {
			pop[w] = math.Pow(float64(w+1), -s)
		}
	}
	return pop
}
