package gen

import (
	"math"
	"testing"

	"kbtim/internal/graph"
)

func TestTwitterLikeBasic(t *testing.T) {
	g, err := TwitterLike(TwitterLikeConfig{N: 2000, AvgDegree: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2000 {
		t.Fatalf("N = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	avg := g.AvgDegree()
	if avg < 8 || avg > 10.5 {
		t.Fatalf("avg degree %v, want ≈10", avg)
	}
}

func TestTwitterLikeHeavyTail(t *testing.T) {
	g, err := TwitterLike(TwitterLikeConfig{N: 5000, AvgDegree: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	h := graph.InDegreeHistogram(g)
	// Heavy tail: the max in-degree should vastly exceed the average.
	if h.MaxDegree() < 10*int(g.AvgDegree()) {
		t.Fatalf("max in-degree %d not heavy-tailed (avg %v)", h.MaxDegree(), g.AvgDegree())
	}
	// The unbucketed least-squares fit is noisy (tail singletons flatten
	// it), so only sanity-check that a decaying trend exists.
	slope := h.PowerLawSlope()
	if slope < 0.4 || slope > 4 {
		t.Fatalf("power-law slope %v outside plausible range", slope)
	}
}

func TestTwitterLikeDeterministic(t *testing.T) {
	g1, _ := TwitterLike(TwitterLikeConfig{N: 500, AvgDegree: 5, Seed: 42})
	g2, _ := TwitterLike(TwitterLikeConfig{N: 500, AvgDegree: 5, Seed: 42})
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	e1, e2 := g1.Edges(), g2.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("same seed produced different edge lists")
		}
	}
	g3, _ := TwitterLike(TwitterLikeConfig{N: 500, AvgDegree: 5, Seed: 43})
	if g3.NumEdges() == g1.NumEdges() {
		same := true
		e3 := g3.Edges()
		for i := range e1 {
			if e1[i] != e3[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestTwitterLikeRejectsBadConfig(t *testing.T) {
	if _, err := TwitterLike(TwitterLikeConfig{N: 1, AvgDegree: 2}); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := TwitterLike(TwitterLikeConfig{N: 10, AvgDegree: 0}); err == nil {
		t.Fatal("AvgDegree=0 accepted")
	}
}

func TestNewsLikeBasic(t *testing.T) {
	g, err := NewsLike(NewsLikeConfig{N: 3000, AvgDegree: 2.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	avg := g.AvgDegree()
	if avg < 2.0 || avg > 2.6 {
		t.Fatalf("avg degree %v, want ≈2.5", avg)
	}
	// Light tail: max in-degree should stay small relative to N.
	h := graph.InDegreeHistogram(g)
	if h.MaxDegree() > 40 {
		t.Fatalf("news-like max in-degree %d suspiciously large", h.MaxDegree())
	}
}

func TestNewsLikeRejectsBadConfig(t *testing.T) {
	if _, err := NewsLike(NewsLikeConfig{N: 0, AvgDegree: 2}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := NewsLike(NewsLikeConfig{N: 10, AvgDegree: 0}); err == nil {
		t.Fatal("AvgDegree=0 accepted")
	}
}

func TestProfilesBasic(t *testing.T) {
	p, err := Profiles(DefaultProfilesConfig(1000, 50, 9))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumUsers() != 1000 || p.NumTopics() != 50 {
		t.Fatalf("dimensions %d×%d", p.NumUsers(), p.NumTopics())
	}
	// Every user's tf weights sum to 1.
	for u := uint32(0); u < 1000; u++ {
		_, tfs := p.UserTopics(u)
		if len(tfs) < 1 || len(tfs) > 5 {
			t.Fatalf("user %d has %d topics", u, len(tfs))
		}
		var sum float64
		for _, tf := range tfs {
			sum += tf
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("user %d tf sum %v", u, sum)
		}
	}
}

func TestProfilesZipfSkew(t *testing.T) {
	p, err := Profiles(DefaultProfilesConfig(5000, 40, 11))
	if err != nil {
		t.Fatal(err)
	}
	// Topic 0 should have much more mass than topic 39 under Zipf(1).
	if p.TFSum(0) < 4*p.TFSum(39) {
		t.Fatalf("Zipf skew missing: mass(0)=%v mass(39)=%v", p.TFSum(0), p.TFSum(39))
	}
}

func TestProfilesRejectsBadConfig(t *testing.T) {
	bad := []ProfilesConfig{
		{NumUsers: 0, NumTopics: 5, MinTopics: 1, MaxTopics: 2},
		{NumUsers: 5, NumTopics: 0, MinTopics: 1, MaxTopics: 2},
		{NumUsers: 5, NumTopics: 5, MinTopics: 0, MaxTopics: 2},
		{NumUsers: 5, NumTopics: 5, MinTopics: 3, MaxTopics: 2},
		{NumUsers: 5, NumTopics: 5, MinTopics: 1, MaxTopics: 6},
	}
	for i, cfg := range bad {
		if _, err := Profiles(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestQueriesWorkload(t *testing.T) {
	cfg := DefaultQueryWorkloadConfig(30, 5)
	cfg.PerLength = 20
	qs, err := Queries(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 6 {
		t.Fatalf("lengths generated: %d", len(qs))
	}
	for l, batch := range qs {
		if len(batch) != 20 {
			t.Fatalf("length %d: %d queries", l, len(batch))
		}
		for _, q := range batch {
			if len(q.Topics) != l {
				t.Fatalf("query %v has wrong length (want %d)", q.Topics, l)
			}
			if err := q.Validate(30); err != nil {
				t.Fatalf("invalid query generated: %v", err)
			}
		}
	}
}

func TestQueriesRejectBadConfig(t *testing.T) {
	if _, err := Queries(QueryWorkloadConfig{NumTopics: 0, Lengths: []int{1}, PerLength: 1, K: 1}); err == nil {
		t.Fatal("zero topics accepted")
	}
	if _, err := Queries(QueryWorkloadConfig{NumTopics: 3, Lengths: []int{5}, PerLength: 1, K: 1}); err == nil {
		t.Fatal("length > topics accepted")
	}
	if _, err := Queries(QueryWorkloadConfig{NumTopics: 3, Lengths: []int{1}, PerLength: 0, K: 1}); err == nil {
		t.Fatal("zero PerLength accepted")
	}
}

func TestTopicPopularity(t *testing.T) {
	pop := TopicPopularity(4, 1)
	want := []float64{1, 0.5, 1.0 / 3, 0.25}
	for i := range want {
		if math.Abs(pop[i]-want[i]) > 1e-12 {
			t.Fatalf("pop = %v", pop)
		}
	}
	uniform := TopicPopularity(3, 0)
	for _, v := range uniform {
		if v != 1 {
			t.Fatalf("uniform pop = %v", uniform)
		}
	}
}
