// Package gen synthesizes the datasets the paper evaluates on. The paper
// uses two SNAP corpora (Twitter: 41.6M users, dense and heavy-tailed;
// News/memetracker: 1.4M media, sparse) plus an AOL keyword-query log;
// none is redistributable here, so gen builds structurally equivalent
// synthetic substitutes at laptop scale:
//
//   - TwitterLike: directed preferential attachment. In-degree follows a
//     power law (many vertices followed by a large number of users, as in
//     Figure 4b) and average degree is high (tens), which is what makes the
//     IRR index shine in the paper's §6.3–6.5.
//   - NewsLike: sparse uniform-random digraph with average degree 2–5 and
//     light-tailed in-degrees (Figure 4a), the regime where IRR degrades to
//     RR.
//   - Profiles: Zipf-popular topics, 1–5 topics per user, normalized tf
//     weights — reproducing the skewed per-keyword mass φ_w that drives
//     per-keyword index sizing.
//   - Queries: keyword sets of length 1–6 sampled by topic popularity,
//     standing in for the filtered AOL log of §6.1.
package gen

import (
	"fmt"

	"kbtim/internal/graph"
	"kbtim/internal/rng"
)

// TwitterLikeConfig controls the preferential-attachment generator.
type TwitterLikeConfig struct {
	N         int    // number of vertices
	AvgDegree int    // target average out-degree (edges per new vertex)
	Seed      uint64 // RNG seed
}

// TwitterLike generates a dense, heavy-tailed directed graph. Each arriving
// vertex u draws AvgDegree preferentially chosen partners (repeated-node
// list, equivalent to attachment by degree+1); half the edges run u→v
// (feeding the hubs' power-law in-degree, the Figure 4b shape) and half run
// v→u (so every user has a baseline in-degree ≈ AvgDegree/2, as real
// follower graphs do — without it most vertices would be influence-isolated
// and twitter RR sets would degenerate to singletons instead of the large
// sets Table 5 reports).
func TwitterLike(cfg TwitterLikeConfig) (*graph.Graph, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("gen: TwitterLike needs N ≥ 2, got %d", cfg.N)
	}
	if cfg.AvgDegree < 1 {
		return nil, fmt.Errorf("gen: TwitterLike needs AvgDegree ≥ 1, got %d", cfg.AvgDegree)
	}
	src := rng.New(cfg.Seed)
	b := graph.NewBuilder(cfg.N)

	targets := make([]uint32, 0, cfg.N*(cfg.AvgDegree+1))
	targets = append(targets, 0)
	for u := 1; u < cfg.N; u++ {
		deg := cfg.AvgDegree
		if deg > u {
			deg = u
		}
		seen := make(map[uint32]bool, deg)
		for e := 0; e < deg; e++ {
			var v uint32
			for tries := 0; ; tries++ {
				v = targets[src.Intn(len(targets))]
				if v != uint32(u) && !seen[v] {
					break
				}
				if tries > 32 { // dense early graph: fall back to any distinct vertex
					v = uint32(src.Intn(u))
					if !seen[v] {
						break
					}
				}
			}
			seen[v] = true
			var err error
			if e%2 == 0 {
				err = b.AddEdge(uint32(u), v)
			} else {
				err = b.AddEdge(v, uint32(u))
			}
			if err != nil {
				return nil, err
			}
			targets = append(targets, v)
		}
		targets = append(targets, uint32(u))
	}
	return b.Build(), nil
}

// NewsLikeConfig controls the sparse random-graph generator.
type NewsLikeConfig struct {
	N         int     // number of vertices
	AvgDegree float64 // expected out-degree per vertex (2–5 in the paper)
	Seed      uint64
}

// NewsLike generates a sparse directed G(n, m)-style graph with m ≈
// N·AvgDegree uniformly random edges. In-degrees are Poisson-like
// (light-tailed), matching the news/media link graph of Figure 4a.
func NewsLike(cfg NewsLikeConfig) (*graph.Graph, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("gen: NewsLike needs N ≥ 2, got %d", cfg.N)
	}
	if cfg.AvgDegree <= 0 {
		return nil, fmt.Errorf("gen: NewsLike needs AvgDegree > 0, got %v", cfg.AvgDegree)
	}
	src := rng.New(cfg.Seed)
	b := graph.NewBuilder(cfg.N)
	m := int(float64(cfg.N) * cfg.AvgDegree)
	for i := 0; i < m; i++ {
		u := uint32(src.Intn(cfg.N))
		v := uint32(src.Intn(cfg.N))
		if u == v {
			continue // self-loops dropped anyway; skip to keep m close
		}
		if err := b.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}
