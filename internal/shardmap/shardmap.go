// Package shardmap assigns a keyword universe to N engine shards. It is the
// single source of truth for "which shard owns keyword w": kbtim-build uses
// it to decide which topics go into each per-shard index file, and the
// kbtim-serve router uses the SAME mapping to fan a query's topic set out to
// the engines that can answer it. Both sides must agree, so every mode is a
// pure function of (keyword ID, shard count) with no per-process state.
//
// Three modes are provided:
//
//   - Hash: keyword → shard by a fixed 64-bit mix of the topic ID. Spreads
//     hot keywords independently of ID locality; the default.
//   - Range: contiguous topic-ID blocks of the topic space. Keeps adjacent
//     IDs together (useful when topic IDs encode category locality) at the
//     price of skew when popularity correlates with ID.
//   - Replicate: every shard holds the full universe. No scatter-gather is
//     ever needed — the router picks one replica per query — which is the
//     right trade for small indexes where N copies are cheaper than
//     cross-shard merges.
package shardmap

import (
	"fmt"
	"sort"
)

// Mode selects the keyword→shard assignment strategy.
type Mode int

// Assignment modes.
const (
	Hash Mode = iota
	Range
	Replicate
)

// String returns the flag spelling of the mode.
func (m Mode) String() string {
	switch m {
	case Hash:
		return "hash"
	case Range:
		return "range"
	case Replicate:
		return "replicate"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode parses the -shard-mode flag spelling.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "hash":
		return Hash, nil
	case "range":
		return Range, nil
	case "replicate":
		return Replicate, nil
	default:
		return 0, fmt.Errorf("shardmap: unknown mode %q (want hash, range, or replicate)", s)
	}
}

// Map is an immutable assignment of a topic space to NumShards shards.
type Map struct {
	n         int
	mode      Mode
	numTopics int
}

// New builds a map over a topic space of numTopics IDs ([0, numTopics)).
// numTopics only matters for Range (it sets the block boundaries) but is
// validated for every mode so misconfiguration fails at construction.
func New(n int, mode Mode, numTopics int) (*Map, error) {
	if n < 1 {
		return nil, fmt.Errorf("shardmap: shard count must be >= 1, got %d", n)
	}
	switch mode {
	case Hash, Range, Replicate:
	default:
		return nil, fmt.Errorf("shardmap: invalid mode %d", int(mode))
	}
	if numTopics < 1 {
		return nil, fmt.Errorf("shardmap: topic space must be >= 1, got %d", numTopics)
	}
	if mode == Range && n > numTopics {
		return nil, fmt.Errorf("shardmap: %d range shards over %d topics leaves empty shards", n, numTopics)
	}
	return &Map{n: n, mode: mode, numTopics: numTopics}, nil
}

// NumShards returns N.
func (m *Map) NumShards() int { return m.n }

// Mode returns the assignment strategy.
func (m *Map) Mode() Mode { return m.mode }

// NumTopics returns the topic-space size the map was built over.
func (m *Map) NumTopics() int { return m.numTopics }

// mix64 is the splitmix64 finalizer: a cheap, well-distributed, stable
// integer hash. Stability matters — the build-time partition and the
// serve-time router may run in different processes (or releases) and must
// land every keyword on the same shard.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Owner returns the shard owning topic w. In Replicate mode every shard
// holds w; the hash assignment is still returned so callers can use it as a
// deterministic default replica for balancing.
func (m *Map) Owner(w int) int {
	if w < 0 || w >= m.numTopics {
		// Out-of-space keywords are routed (not rejected) so the owning
		// engine reports the same "outside topic space" error a single
		// engine would; shard 0 is as good a reporter as any.
		return 0
	}
	switch m.mode {
	case Range:
		// Proportional blocks: shard i owns IDs [i*T/n, (i+1)*T/n).
		return w * m.n / m.numTopics
	default: // Hash, Replicate
		return int(mix64(uint64(w)) % uint64(m.n))
	}
}

// Affinity returns the preferred replica (in [0, replicas)) for reads of
// topic w when a shard is served by `replicas` interchangeable copies. It is
// a pure function of the topic ID, mixed with a different constant than
// Owner so the replica choice is independent of the shard assignment: hot
// keywords spread across a replica set instead of all landing on replica 0,
// while each keyword keeps hitting the same replica (and therefore the same
// backend caches) run after run. Callers treat it as a starting preference
// and rotate away from it on failure.
func Affinity(w, replicas int) int {
	if replicas <= 1 {
		return 0
	}
	if w < 0 {
		w = -w
	}
	// A second splitmix64 round over an offset ID decorrelates the replica
	// pick from Owner's shard pick (same mix of the same ID would make
	// replica choice a function of shard choice).
	return int(mix64(uint64(w)+0x9E3779B97F4A7C15) % uint64(replicas))
}

// Shards returns the distinct shards owning any of the given topics, in
// ascending order. In Replicate mode any single shard can answer, so the
// result is always one shard — the hash of the first topic — making replica
// choice deterministic per topic set (callers wanting rotation can override).
func (m *Map) Shards(topics []int) []int {
	if len(topics) == 0 {
		return nil
	}
	if m.mode == Replicate {
		return []int{m.Owner(topics[0])}
	}
	seen := make(map[int]bool, m.n)
	out := make([]int, 0, len(topics))
	for _, w := range topics {
		s := m.Owner(w)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// Partition splits a concrete keyword universe (the topics an unsharded
// build would index) into per-shard topic lists: result[i] is shard i's
// build set, each list preserving the input order. Hash and Range partition
// the universe disjointly; Replicate gives every shard the full list.
func (m *Map) Partition(topics []int) [][]int {
	out := make([][]int, m.n)
	if m.mode == Replicate {
		for i := range out {
			out[i] = append([]int(nil), topics...)
		}
		return out
	}
	for _, w := range topics {
		s := m.Owner(w)
		out[s] = append(out[s], w)
	}
	return out
}
