package shardmap

import (
	"reflect"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, Hash, 16); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := New(2, Mode(9), 16); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if _, err := New(2, Hash, 0); err == nil {
		t.Fatal("empty topic space accepted")
	}
	if _, err := New(8, Range, 4); err == nil {
		t.Fatal("range mode with more shards than topics accepted")
	}
	m, err := New(4, Hash, 16)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumShards() != 4 || m.Mode() != Hash || m.NumTopics() != 16 {
		t.Fatalf("map state = %d/%v/%d", m.NumShards(), m.Mode(), m.NumTopics())
	}
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"hash", Hash}, {"range", Range}, {"replicate", Replicate}} {
		got, err := ParseMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseMode(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("round trip %q → %q", tc.in, got.String())
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("bogus mode parsed")
	}
}

// TestOwnerDeterministicAndTotal: every keyword lands on exactly one valid
// shard, and two independently constructed maps agree (the build/serve
// contract).
func TestOwnerDeterministicAndTotal(t *testing.T) {
	for _, mode := range []Mode{Hash, Range, Replicate} {
		a, _ := New(4, mode, 200)
		b, _ := New(4, mode, 200)
		for w := 0; w < 200; w++ {
			s := a.Owner(w)
			if s < 0 || s >= 4 {
				t.Fatalf("%v: Owner(%d) = %d out of range", mode, w, s)
			}
			if s != b.Owner(w) {
				t.Fatalf("%v: Owner(%d) differs across instances", mode, w)
			}
		}
	}
}

// TestHashBalance: splitmix over sequential IDs should not collapse onto few
// shards. Loose bound — this guards gross hash bugs, not perfect balance.
func TestHashBalance(t *testing.T) {
	m, _ := New(4, Hash, 1024)
	counts := make([]int, 4)
	for w := 0; w < 1024; w++ {
		counts[m.Owner(w)]++
	}
	for s, c := range counts {
		if c < 128 || c > 384 { // within [0.5x, 1.5x] of the 256 ideal
			t.Fatalf("shard %d owns %d of 1024 keywords: %v", s, c, counts)
		}
	}
}

func TestRangeContiguity(t *testing.T) {
	m, _ := New(3, Range, 10)
	prev := 0
	for w := 0; w < 10; w++ {
		s := m.Owner(w)
		if s < prev {
			t.Fatalf("range owners not monotone at %d: %d after %d", w, s, prev)
		}
		prev = s
	}
	if m.Owner(0) != 0 || m.Owner(9) != 2 {
		t.Fatalf("range endpoints: %d, %d", m.Owner(0), m.Owner(9))
	}
}

// TestPartitionDisjointCover: hash/range partitions are a disjoint cover of
// the universe preserving order; replicate copies it to every shard.
func TestPartitionDisjointCover(t *testing.T) {
	universe := []int{0, 2, 3, 5, 8, 13, 14, 15}
	for _, mode := range []Mode{Hash, Range} {
		m, _ := New(3, mode, 16)
		parts := m.Partition(universe)
		if len(parts) != 3 {
			t.Fatalf("%v: %d parts", mode, len(parts))
		}
		seen := map[int]int{}
		for s, part := range parts {
			last := -1
			for _, w := range part {
				if m.Owner(w) != s {
					t.Fatalf("%v: topic %d in shard %d but owned by %d", mode, w, s, m.Owner(w))
				}
				if prev, dup := seen[w]; dup {
					t.Fatalf("%v: topic %d in shards %d and %d", mode, w, prev, s)
				}
				seen[w] = s
				if w <= last {
					t.Fatalf("%v: shard %d out of input order: %v", mode, s, part)
				}
				last = w
			}
		}
		if len(seen) != len(universe) {
			t.Fatalf("%v: partition covers %d of %d topics", mode, len(seen), len(universe))
		}
	}

	m, _ := New(3, Replicate, 16)
	for s, part := range m.Partition(universe) {
		if !reflect.DeepEqual(part, universe) {
			t.Fatalf("replicate shard %d = %v", s, part)
		}
	}
}

// TestShardsRouting: distinct ascending owners for hash, single replica for
// replicate, deterministic across calls.
func TestShardsRouting(t *testing.T) {
	m, _ := New(4, Hash, 64)
	topics := []int{1, 9, 33, 42, 9}
	got := m.Shards(topics)
	if len(got) == 0 {
		t.Fatal("no shards for non-empty topics")
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("shards not ascending/distinct: %v", got)
		}
	}
	if !reflect.DeepEqual(got, m.Shards(topics)) {
		t.Fatal("routing not deterministic")
	}
	if m.Shards(nil) != nil {
		t.Fatal("empty topics routed somewhere")
	}

	r, _ := New(4, Replicate, 64)
	if s := r.Shards(topics); len(s) != 1 {
		t.Fatalf("replicate scattered to %v", s)
	}
}

// TestOwnerOutOfSpace: unknown keywords route to shard 0 so the owning
// engine produces the same validation error a single engine would.
func TestOwnerOutOfSpace(t *testing.T) {
	m, _ := New(4, Hash, 16)
	if m.Owner(-1) != 0 || m.Owner(16) != 0 {
		t.Fatalf("out-of-space owners: %d, %d", m.Owner(-1), m.Owner(16))
	}
}

// TestAffinity: the per-keyword preferred replica is deterministic, in
// range, spreads over the replica set, and is decorrelated from Owner (the
// whole point of the second mix constant — replica choice must not be a
// function of shard choice).
func TestAffinity(t *testing.T) {
	for w := 0; w < 64; w++ {
		if got := Affinity(w, 1); got != 0 {
			t.Fatalf("Affinity(%d, 1) = %d, want 0", w, got)
		}
		if got := Affinity(w, 0); got != 0 {
			t.Fatalf("Affinity(%d, 0) = %d, want 0", w, got)
		}
	}
	const replicas = 3
	counts := make([]int, replicas)
	for w := 0; w < 1024; w++ {
		r := Affinity(w, replicas)
		if r < 0 || r >= replicas {
			t.Fatalf("Affinity(%d, %d) = %d out of range", w, replicas, r)
		}
		if r != Affinity(w, replicas) {
			t.Fatalf("Affinity(%d, %d) not deterministic", w, replicas)
		}
		counts[r]++
	}
	for r, c := range counts {
		if c < 170 || c > 512 { // within [0.5x, 1.5x] of the ~341 ideal
			t.Fatalf("replica %d preferred by %d of 1024 keywords: %v", r, c, counts)
		}
	}
	// Decorrelation from Owner: among keywords owned by shard 0 of a 2-way
	// hash map, the 2-replica affinity must not be constant.
	m, _ := New(2, Hash, 1024)
	seen := map[int]bool{}
	for w := 0; w < 1024; w++ {
		if m.Owner(w) == 0 {
			seen[Affinity(w, 2)] = true
		}
	}
	if len(seen) != 2 {
		t.Fatalf("replica affinity collapsed to %v for shard-0 keywords", seen)
	}
}
