package remote_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strconv"
	"sync/atomic"
	"testing"

	"kbtim"
	"kbtim/internal/diskio"
	"kbtim/internal/irrindex"
	"kbtim/internal/remote"
	"kbtim/internal/rrindex"
	"kbtim/internal/shardmap"
)

// flakyHandler fails the next `failN` requests with a 500 before passing
// traffic through — the injected transient fault the Group must retry around.
type flakyHandler struct {
	inner http.Handler
	failN atomic.Int64
	hits  atomic.Int64
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.hits.Add(1)
	if h.failN.Add(-1) >= 0 {
		http.Error(w, "injected fault", http.StatusInternalServerError)
		return
	}
	h.inner.ServeHTTP(w, r)
}

// sizeTamper rewrites the advertised index size on every response — a
// replica that answers happily but claims to serve a different file.
type sizeTamper struct {
	inner http.Handler
	delta int64
}

type tamperWriter struct {
	http.ResponseWriter
	delta int64
}

func (w tamperWriter) WriteHeader(code int) {
	const sizeHeader = "X-Kbtim-Index-Size"
	if v := w.Header().Get(sizeHeader); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err == nil {
			w.Header().Set(sizeHeader, strconv.FormatInt(n+w.delta, 10))
		}
	}
	w.ResponseWriter.WriteHeader(code)
}

func (h *sizeTamper) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.inner.ServeHTTP(tamperWriter{ResponseWriter: w, delta: h.delta}, r)
}

// stubHealth is a hand-driven remote.Health: per-replica availability set by
// the test, every observation recorded for inspection.
type stubHealth struct {
	down     []atomic.Bool
	observed []error // appended under no lock; tests drive fetches serially
}

func newStubHealth(n int) *stubHealth { return &stubHealth{down: make([]atomic.Bool, n)} }

func (h *stubHealth) Available(i int) bool { return !h.down[i].Load() }
func (h *stubHealth) Observe(i int, err error) {
	h.observed = append(h.observed, err)
}

// replicaCluster is a replicated 2-shard deployment: each shard's engine is
// exposed through TWO httptest servers (byte-identical replicas by
// construction), replica 0 of every shard wrapped in a fault injector.
type replicaCluster struct {
	groups  []*remote.Group
	flaky   []*flakyHandler // per shard, wraps replica 0
	rrIdx   []*rrindex.Index
	irrIdx  []*irrindex.Index
	rrLocal *rrindex.Index
	sm      *shardmap.Map
}

func (c *replicaCluster) rrOwner(w int) *rrindex.Index {
	if w < 0 || w >= c.sm.NumTopics() {
		return nil
	}
	return c.rrIdx[c.sm.Owner(w)]
}

func (c *replicaCluster) irrOwner(w int) *irrindex.Index {
	if w < 0 || w >= c.sm.NumTopics() {
		return nil
	}
	return c.irrIdx[c.sm.Owner(w)]
}

// newReplicaCluster builds each shard as TWO httptest servers over ONE
// engine — replicas byte-identical by construction — with replica 0 behind
// the fault injector.
func newReplicaCluster(t *testing.T) *replicaCluster {
	t.Helper()
	ds, err := kbtim.GenerateDataset(kbtim.DatasetSpec{
		Kind: kbtim.TwitterLike, NumUsers: 300, AvgDegree: 6,
		NumTopics: 8, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	builder, err := kbtim.NewEngine(ds, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { builder.Close() })
	rrFull := filepath.Join(dir, "full.rr")
	if _, err := builder.BuildRRIndex(rrFull); err != nil {
		t.Fatal(err)
	}
	const shards = 2
	pathFor := func(kind string) func(int) string {
		return func(i int) string {
			return kbtim.ShardIndexPath(filepath.Join(dir, "ads."+kind), i)
		}
	}
	if _, err := builder.BuildShardIndexes("rr", shards, kbtim.ShardHash, pathFor("rr")); err != nil {
		t.Fatal(err)
	}
	if _, err := builder.BuildShardIndexes("irr", shards, kbtim.ShardHash, pathFor("irr")); err != nil {
		t.Fatal(err)
	}
	sm, err := shardmap.New(shards, shardmap.Hash, ds.NumTopics())
	if err != nil {
		t.Fatal(err)
	}
	c := &replicaCluster{sm: sm}
	ctx := context.Background()
	for i := 0; i < shards; i++ {
		eng, err := kbtim.NewEngine(ds, testOptions())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		if err := eng.OpenRRIndex(pathFor("rr")(i)); err != nil {
			t.Fatal(err)
		}
		if err := eng.OpenIRRIndex(pathFor("irr")(i)); err != nil {
			t.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.Handle(remote.ArtifactPath, remote.NewHandler(eng))
		fh := &flakyHandler{inner: mux}
		srvA := httptest.NewServer(fh)
		t.Cleanup(srvA.Close)
		srvB := httptest.NewServer(mux)
		t.Cleanup(srvB.Close)
		c.flaky = append(c.flaky, fh)
		g := remote.NewGroup([]*remote.Client{
			remote.NewClient(srvA.URL, srvA.Client()),
			remote.NewClient(srvB.URL, srvB.Client()),
		}, nil)
		c.groups = append(c.groups, g)
		rr, err := g.OpenRR(ctx)
		if err != nil {
			t.Fatal(err)
		}
		irr, err := g.OpenIRR(ctx)
		if err != nil {
			t.Fatal(err)
		}
		c.rrIdx = append(c.rrIdx, rr)
		c.irrIdx = append(c.irrIdx, irr)
	}
	if c.rrLocal, err = rrindex.Open(openSegmented(t, rrFull)); err != nil {
		t.Fatal(err)
	}
	return c
}

// openSegmented opens an index file for direct (local-truth) reads.
func openSegmented(t *testing.T, path string) diskio.Segmented {
	t.Helper()
	f, err := diskio.Open(path, diskio.NewCounter())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestGroupFailoverParity is the retried-fetch half of the failover
// invariant: with one replica of every shard dropping a burst of artifact
// fetches mid-run, spanning queries still return byte-identical seeds,
// marginals, and spreads to a directly opened full index — the Group
// re-issues each failed GET on the surviving replica.
func TestGroupFailoverParity(t *testing.T) {
	c := newReplicaCluster(t)
	ctx := context.Background()
	for _, fh := range c.flaky {
		fh.failN.Store(4) // next 4 fetches on replica 0 of each shard fail
	}
	for _, q := range parityQueries() {
		want, err := c.rrLocal.Query(q)
		if err != nil {
			t.Fatalf("local rr %v: %v", q.Topics, err)
		}
		got, err := rrindex.QueryMultiCtx(ctx, c.rrOwner, q)
		if err != nil {
			t.Fatalf("failover rr %v: %v", q.Topics, err)
		}
		if !reflect.DeepEqual(got.Seeds, want.Seeds) ||
			!reflect.DeepEqual(got.Marginals, want.Marginals) ||
			got.EstSpread != want.EstSpread || got.NumRRSets != want.NumRRSets {
			t.Fatalf("rr %v under faults: (%v, %v, %v) != local (%v, %v, %v)", q.Topics,
				got.Seeds, got.Marginals, got.EstSpread,
				want.Seeds, want.Marginals, want.EstSpread)
		}
		gotIRR, err := irrindex.QueryMultiCtx(ctx, c.irrOwner, q)
		if err != nil {
			t.Fatalf("failover irr %v: %v", q.Topics, err)
		}
		if !reflect.DeepEqual(gotIRR.Marginals, got.Marginals) {
			t.Fatalf("%v: IRR marginals %v != RR marginals %v under faults",
				q.Topics, gotIRR.Marginals, got.Marginals)
		}
	}
	var retries, failovers int64
	for _, g := range c.groups {
		s := g.Stats()
		retries += s.Retries
		failovers += s.Failovers
	}
	if retries == 0 || failovers == 0 {
		t.Fatalf("injected faults produced retries=%d failovers=%d; want both > 0", retries, failovers)
	}
}

// TestGroupOpensDegraded: a Group whose first replica is already dead still
// opens (the dir comes from the survivor) and serves every fetch — the
// router's "start degraded" path at the fetch layer.
func TestGroupOpensDegraded(t *testing.T) {
	base := newCluster(t, 0)
	ctx := context.Background()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadClient := remote.NewClient(dead.URL, dead.Client())
	dead.Close() // connection refused from now on
	// Put the dead replica at the dir fetch's affinity-preferred slot so the
	// open deterministically has to fail over.
	replicas := make([]*remote.Client, 2)
	pref := shardmap.Affinity(0, 2)
	replicas[pref] = deadClient
	replicas[1-pref] = base.clients[0]
	g := remote.NewGroup(replicas, nil)
	rr, err := g.OpenRR(ctx)
	if err != nil {
		t.Fatalf("open with a dead first replica: %v", err)
	}
	if kws := rr.Keywords(); len(kws) == 0 {
		t.Fatal("degraded open produced an empty index")
	}
	if s := g.Stats(); s.Retries == 0 || s.Failovers == 0 {
		t.Fatalf("degraded open counted retries=%d failovers=%d; want both > 0", s.Retries, s.Failovers)
	}
	if err := g.Validate(ctx, pref, remote.KindRR); err == nil || errors.Is(err, remote.ErrReplicaMismatch) {
		t.Fatalf("validating a dead replica: got %v, want a transport error", err)
	}
}

// TestGroupNotServedIsNotAFault: a 404 (name does not resolve) is a property
// of the byte-identical file, not of the replica that answered — the Group
// must return it immediately instead of hammering every replica.
func TestGroupNotServedIsNotAFault(t *testing.T) {
	c := newReplicaCluster(t)
	g := c.groups[0]
	if _, _, err := g.Fetch(context.Background(), remote.KindRR, "bogus", 0, 0); !errors.Is(err, remote.ErrNotServed) {
		t.Fatalf("bogus unit: got %v, want ErrNotServed", err)
	}
	if s := g.Stats(); s.Retries != 0 {
		t.Fatalf("a 404 was retried %d times across replicas", s.Retries)
	}
}

// TestGroupMismatchedReplicaRejected: a replica that answers but advertises
// a different index size is a fault, not a byte source — Validate names it
// ErrReplicaMismatch, and a Fetch forced onto it fails over to the replica
// holding the right file even when health reports that one down (fail-open).
func TestGroupMismatchedReplicaRejected(t *testing.T) {
	base := newCluster(t, 0)
	ctx := context.Background()
	good := base.clients[0]
	// A second "replica" re-serving the same shard-0 artifacts with the
	// advertised size header shifted: answers fine, claims a different file.
	tampered := httptest.NewServer(&sizeTamper{inner: proxyTo(t, good), delta: 7})
	defer tampered.Close()
	health := newStubHealth(2)
	health.down[1].Store(true) // keep the tampered replica out of the open
	g := remote.NewGroup([]*remote.Client{good, remote.NewClient(tampered.URL, tampered.Client())}, health)
	if _, err := g.OpenRR(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(ctx, 1, remote.KindRR); !errors.Is(err, remote.ErrReplicaMismatch) {
		t.Fatalf("validating the tampered replica: got %v, want ErrReplicaMismatch", err)
	}
	// Force fetches to prefer the tampered replica: the mismatch must read
	// as a fault and fail over to the "unavailable" good replica (fail-open).
	health.down[1].Store(false)
	health.down[0].Store(true)
	topics := base.sm.NumTopics()
	var sawMismatch bool
	for w := 0; w < topics; w++ {
		if base.sm.Owner(w) != 0 {
			continue
		}
		if shardmap.Affinity(w, 2) != 1 {
			continue // only keywords whose preferred replica is the tampered one
		}
		if _, _, err := g.Fetch(ctx, remote.KindRR, rrindex.UnitDir, w, 0); err != nil {
			t.Fatalf("fetch of topic %d with a mismatched preferred replica: %v", w, err)
		}
		sawMismatch = true
	}
	if !sawMismatch {
		t.Skip("no shard-0 keyword prefers replica 1 in this universe")
	}
	if s := g.Stats(); s.Failovers == 0 {
		t.Fatalf("mismatched replica produced no failovers: %+v", s)
	}
	var gotMismatch bool
	for _, err := range health.observed {
		if errors.Is(err, remote.ErrReplicaMismatch) {
			gotMismatch = true
		}
	}
	if !gotMismatch {
		t.Fatal("health never observed the ErrReplicaMismatch fault")
	}
}

// proxyTo forwards artifact requests to another node — a stand-in for a
// second server over the same files when only a client handle is available.
func proxyTo(t *testing.T, c *remote.Client) http.Handler {
	t.Helper()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		topic, _ := strconv.Atoi(q.Get("topic"))
		aux, _ := strconv.ParseInt(q.Get("aux"), 10, 64)
		b, size, err := c.Fetch(r.Context(), q.Get("kind"), q.Get("unit"), topic, aux)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, remote.ErrNotServed) {
				status = http.StatusNotFound
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("X-Kbtim-Artifact-Version", strconv.Itoa(remote.Version))
		w.Header().Set("X-Kbtim-Index-Size", strconv.FormatInt(size, 10))
		w.WriteHeader(http.StatusOK)
		w.Write(b)
	})
}
