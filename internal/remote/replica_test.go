package remote_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strconv"
	"sync/atomic"
	"testing"

	"kbtim"
	"kbtim/internal/artifact"
	"kbtim/internal/diskio"
	"kbtim/internal/irrindex"
	"kbtim/internal/remote"
	"kbtim/internal/rrindex"
	"kbtim/internal/shardmap"
)

// flakyHandler fails the next `failN` requests with a 500 before passing
// traffic through — the injected transient fault the Group must retry around.
type flakyHandler struct {
	inner http.Handler
	failN atomic.Int64
	hits  atomic.Int64
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.hits.Add(1)
	if h.failN.Add(-1) >= 0 {
		http.Error(w, "injected fault", http.StatusInternalServerError)
		return
	}
	h.inner.ServeHTTP(w, r)
}

// sizeTamper rewrites the advertised index size on every response — a
// replica that answers happily but claims to serve a different file.
type sizeTamper struct {
	inner http.Handler
	delta int64
}

type tamperWriter struct {
	http.ResponseWriter
	delta int64
}

func (w tamperWriter) WriteHeader(code int) {
	const sizeHeader = "X-Kbtim-Index-Size"
	if v := w.Header().Get(sizeHeader); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err == nil {
			w.Header().Set(sizeHeader, strconv.FormatInt(n+w.delta, 10))
		}
	}
	w.ResponseWriter.WriteHeader(code)
}

func (h *sizeTamper) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.inner.ServeHTTP(tamperWriter{ResponseWriter: w, delta: h.delta}, r)
}

// truncBatch models a replica dying MID-BATCH: for the next `cut` batch
// requests it delivers the real headers plus only the first reply record,
// then ends the body — the client keeps the parsed prefix and must re-issue
// just the remainder elsewhere. Non-batch traffic passes through untouched.
type truncBatch struct {
	inner http.Handler
	cut   atomic.Int64
	hits  atomic.Int64 // batch requests actually truncated
}

func (h *truncBatch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != remote.BatchPath || h.cut.Add(-1) < 0 {
		h.inner.ServeHTTP(w, r)
		return
	}
	h.hits.Add(1)
	rec := httptest.NewRecorder()
	h.inner.ServeHTTP(rec, r)
	body := rec.Body.Bytes()
	end := len(body)
	if rec.Code == http.StatusOK && len(body) > 1 {
		// One record = status byte + uvarint length + payload.
		if n, u := binary.Uvarint(body[1:]); u > 0 && 1+u+int(n) < len(body) {
			end = 1 + u + int(n)
		}
	}
	for k, vs := range rec.Header() {
		if k == "Content-Length" {
			continue
		}
		w.Header()[k] = vs
	}
	w.Header().Set("Content-Length", strconv.Itoa(end))
	w.WriteHeader(rec.Code)
	w.Write(body[:end])
}

// stubHealth is a hand-driven remote.Health: per-replica availability set by
// the test, every observation recorded for inspection.
type stubHealth struct {
	down     []atomic.Bool
	observed []error // appended under no lock; tests drive fetches serially
}

func newStubHealth(n int) *stubHealth { return &stubHealth{down: make([]atomic.Bool, n)} }

func (h *stubHealth) Available(i int) bool { return !h.down[i].Load() }
func (h *stubHealth) Observe(i int, err error) {
	h.observed = append(h.observed, err)
}

// replicaCluster is a replicated 2-shard deployment: each shard's engine is
// exposed through TWO httptest servers (byte-identical replicas by
// construction), replica 0 of every shard wrapped in fault injectors (a
// whole-request 500 injector and a batch-reply truncator).
type replicaCluster struct {
	groups  []*remote.Group
	flaky   []*flakyHandler   // per shard, wraps replica 0
	trunc   []*truncBatch     // per shard, wraps replica 0 under flaky
	clients [][]*remote.Client // per shard, [replica0, replica1]
	rrIdx   []*rrindex.Index
	irrIdx  []*irrindex.Index
	rrLocal *rrindex.Index
	sm      *shardmap.Map
}

func (c *replicaCluster) rrOwner(w int) *rrindex.Index {
	if w < 0 || w >= c.sm.NumTopics() {
		return nil
	}
	return c.rrIdx[c.sm.Owner(w)]
}

func (c *replicaCluster) irrOwner(w int) *irrindex.Index {
	if w < 0 || w >= c.sm.NumTopics() {
		return nil
	}
	return c.irrIdx[c.sm.Owner(w)]
}

// newReplicaCluster builds each shard as TWO httptest servers over ONE
// engine — replicas byte-identical by construction — with replica 0 behind
// the fault injector.
func newReplicaCluster(t *testing.T) *replicaCluster {
	t.Helper()
	ds, err := kbtim.GenerateDataset(kbtim.DatasetSpec{
		Kind: kbtim.TwitterLike, NumUsers: 300, AvgDegree: 6,
		NumTopics: 8, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	builder, err := kbtim.NewEngine(ds, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { builder.Close() })
	rrFull := filepath.Join(dir, "full.rr")
	if _, err := builder.BuildRRIndex(rrFull); err != nil {
		t.Fatal(err)
	}
	const shards = 2
	pathFor := func(kind string) func(int) string {
		return func(i int) string {
			return kbtim.ShardIndexPath(filepath.Join(dir, "ads."+kind), i)
		}
	}
	if _, err := builder.BuildShardIndexes("rr", shards, kbtim.ShardHash, pathFor("rr")); err != nil {
		t.Fatal(err)
	}
	if _, err := builder.BuildShardIndexes("irr", shards, kbtim.ShardHash, pathFor("irr")); err != nil {
		t.Fatal(err)
	}
	sm, err := shardmap.New(shards, shardmap.Hash, ds.NumTopics())
	if err != nil {
		t.Fatal(err)
	}
	c := &replicaCluster{sm: sm}
	ctx := context.Background()
	for i := 0; i < shards; i++ {
		eng, err := kbtim.NewEngine(ds, testOptions())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		if err := eng.OpenRRIndex(pathFor("rr")(i)); err != nil {
			t.Fatal(err)
		}
		if err := eng.OpenIRRIndex(pathFor("irr")(i)); err != nil {
			t.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.Handle(remote.ArtifactPath, remote.NewHandler(eng))
		mux.Handle(remote.BatchPath, remote.NewBatchHandler(eng))
		tb := &truncBatch{inner: mux}
		fh := &flakyHandler{inner: tb}
		srvA := httptest.NewServer(fh)
		t.Cleanup(srvA.Close)
		srvB := httptest.NewServer(mux)
		t.Cleanup(srvB.Close)
		c.flaky = append(c.flaky, fh)
		c.trunc = append(c.trunc, tb)
		reps := []*remote.Client{
			remote.NewClient(srvA.URL, srvA.Client()),
			remote.NewClient(srvB.URL, srvB.Client()),
		}
		c.clients = append(c.clients, reps)
		g := remote.NewGroup(reps, nil)
		c.groups = append(c.groups, g)
		rr, err := g.OpenRR(ctx)
		if err != nil {
			t.Fatal(err)
		}
		irr, err := g.OpenIRR(ctx)
		if err != nil {
			t.Fatal(err)
		}
		c.rrIdx = append(c.rrIdx, rr)
		c.irrIdx = append(c.irrIdx, irr)
	}
	if c.rrLocal, err = rrindex.Open(openSegmented(t, rrFull)); err != nil {
		t.Fatal(err)
	}
	return c
}

// openSegmented opens an index file for direct (local-truth) reads.
func openSegmented(t *testing.T, path string) diskio.Segmented {
	t.Helper()
	f, err := diskio.Open(path, diskio.NewCounter())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestGroupFailoverParity is the retried-fetch half of the failover
// invariant: with one replica of every shard dropping a burst of artifact
// fetches mid-run, spanning queries still return byte-identical seeds,
// marginals, and spreads to a directly opened full index — the Group
// re-issues each failed GET on the surviving replica.
func TestGroupFailoverParity(t *testing.T) {
	c := newReplicaCluster(t)
	ctx := context.Background()
	for _, fh := range c.flaky {
		fh.failN.Store(4) // next 4 fetches on replica 0 of each shard fail
	}
	for _, q := range parityQueries() {
		want, err := c.rrLocal.Query(q)
		if err != nil {
			t.Fatalf("local rr %v: %v", q.Topics, err)
		}
		got, err := rrindex.QueryMultiCtx(ctx, c.rrOwner, q)
		if err != nil {
			t.Fatalf("failover rr %v: %v", q.Topics, err)
		}
		if !reflect.DeepEqual(got.Seeds, want.Seeds) ||
			!reflect.DeepEqual(got.Marginals, want.Marginals) ||
			got.EstSpread != want.EstSpread || got.NumRRSets != want.NumRRSets {
			t.Fatalf("rr %v under faults: (%v, %v, %v) != local (%v, %v, %v)", q.Topics,
				got.Seeds, got.Marginals, got.EstSpread,
				want.Seeds, want.Marginals, want.EstSpread)
		}
		gotIRR, err := irrindex.QueryMultiCtx(ctx, c.irrOwner, q)
		if err != nil {
			t.Fatalf("failover irr %v: %v", q.Topics, err)
		}
		if !reflect.DeepEqual(gotIRR.Marginals, got.Marginals) {
			t.Fatalf("%v: IRR marginals %v != RR marginals %v under faults",
				q.Topics, gotIRR.Marginals, got.Marginals)
		}
	}
	var retries, failovers int64
	for _, g := range c.groups {
		s := g.Stats()
		retries += s.Retries
		failovers += s.Failovers
	}
	if retries == 0 || failovers == 0 {
		t.Fatalf("injected faults produced retries=%d failovers=%d; want both > 0", retries, failovers)
	}
	// The spanning queries above must actually have traveled batched — the
	// parity and failover assertions are about the batch path, not a silent
	// per-unit fallback.
	var wire remote.WireStats
	for _, reps := range c.clients {
		for _, cl := range reps {
			wire = wire.Add(cl.Stats())
		}
	}
	if wire.BatchedUnits == 0 || wire.BatchedUnits <= wire.Fetches/2 {
		t.Fatalf("batching never engaged under faults: %d units over %d requests", wire.BatchedUnits, wire.Fetches)
	}
}

// TestGroupBatchTruncationFailover is the mid-batch half of the failover
// invariant: a replica that dies after delivering ONE reply record keeps that
// record used, and only the unserved remainder is re-issued to the survivor —
// with every payload byte-identical to a clean per-unit fetch.
func TestGroupBatchTruncationFailover(t *testing.T) {
	c := newReplicaCluster(t)
	ctx := context.Background()
	g := c.groups[0]
	// Keywords shard 0 owns, ordered so the batch's routing topic (reqs[0])
	// prefers replica 0 — the one armed to truncate.
	var topics []int
	for w := 0; w < c.sm.NumTopics(); w++ {
		if c.sm.Owner(w) != 0 {
			continue
		}
		if shardmap.Affinity(w, 2) == 0 {
			topics = append([]int{w}, topics...)
		} else {
			topics = append(topics, w)
		}
	}
	if len(topics) < 3 || shardmap.Affinity(topics[0], 2) != 0 {
		t.Skip("universe does not give shard 0 three keywords with a replica-0-affine first")
	}
	reqs := make([]artifact.Request, len(topics))
	want := make([][]byte, len(topics))
	for i, w := range topics {
		reqs[i] = artifact.Request{Unit: rrindex.UnitInv, Topic: w}
		b, _, err := g.Fetch(ctx, remote.KindRR, rrindex.UnitInv, w, 0)
		if err != nil {
			t.Fatalf("reference fetch topic %d: %v", w, err)
		}
		want[i] = b
	}
	before := g.Stats()
	c.trunc[0].cut.Store(1)
	replies := g.FetchBatch(ctx, remote.KindRR, reqs)
	if got := c.trunc[0].hits.Load(); got != 1 {
		t.Fatalf("truncator fired %d times; want exactly 1 (batch routed to replica 0 once)", got)
	}
	for i, rep := range replies {
		if rep.Err != nil {
			t.Fatalf("unit %d (topic %d) failed despite a healthy survivor: %v", i, topics[i], rep.Err)
		}
		if !bytes.Equal(rep.Payload, want[i]) {
			t.Fatalf("unit %d (topic %d): truncated-batch payload differs from per-unit fetch", i, topics[i])
		}
	}
	after := g.Stats()
	if after.Retries == before.Retries || after.Failovers == before.Failovers {
		t.Fatalf("truncation produced no remainder retry: stats %+v -> %+v", before, after)
	}
	// The survivor's batch served exactly the remainder: every unit except
	// the one record the dying replica fully delivered.
	if bu := c.clients[0][1].Stats().BatchedUnits; bu != int64(len(reqs)-1) {
		t.Fatalf("survivor served %d batched units; want the %d-unit remainder", bu, len(reqs)-1)
	}
}

// TestGroupMixedVersionFallback: a v2 router batching against a v1-only
// backend (no BatchPath endpoint) must serve every unit per-unit over v1,
// byte-identically, and remember the verdict so the probe happens once.
func TestGroupMixedVersionFallback(t *testing.T) {
	base := newCluster(t, 0)
	ctx := context.Background()
	var batchProbes atomic.Int64
	v1mux := http.NewServeMux()
	v1mux.Handle(remote.ArtifactPath, proxyTo(t, base.clients[0]))
	v1srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == remote.BatchPath {
			batchProbes.Add(1)
		}
		v1mux.ServeHTTP(w, r)
	}))
	defer v1srv.Close()
	cl := remote.NewClient(v1srv.URL, v1srv.Client())
	g := remote.NewGroup([]*remote.Client{cl}, nil)
	if _, err := g.OpenRR(ctx); err != nil {
		t.Fatal(err)
	}
	var topics []int
	for w := 0; w < base.sm.NumTopics() && len(topics) < 3; w++ {
		if base.sm.Owner(w) == 0 {
			topics = append(topics, w)
		}
	}
	reqs := make([]artifact.Request, len(topics))
	for i, w := range topics {
		reqs[i] = artifact.Request{Unit: rrindex.UnitInv, Topic: w}
	}
	for round := 0; round < 2; round++ {
		replies := g.FetchBatch(ctx, remote.KindRR, reqs)
		for i, rep := range replies {
			if rep.Err != nil {
				t.Fatalf("round %d unit %d: %v", round, i, rep.Err)
			}
			want, _, err := base.clients[0].Fetch(ctx, remote.KindRR, rrindex.UnitInv, topics[i], 0)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rep.Payload, want) {
				t.Fatalf("round %d unit %d: v1-fallback payload differs from direct fetch", round, i)
			}
		}
	}
	if n := batchProbes.Load(); n != 1 {
		t.Fatalf("v1-only backend probed %d times for the batch endpoint; want exactly 1 (verdict remembered)", n)
	}
	if ws := cl.Stats(); ws.BatchedUnits != 0 || ws.Fetches == 0 {
		t.Fatalf("mixed-version fallback stats %+v; want zero batched units over nonzero per-unit fetches", ws)
	}
}

// TestGroupOpensDegraded: a Group whose first replica is already dead still
// opens (the dir comes from the survivor) and serves every fetch — the
// router's "start degraded" path at the fetch layer.
func TestGroupOpensDegraded(t *testing.T) {
	base := newCluster(t, 0)
	ctx := context.Background()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadClient := remote.NewClient(dead.URL, dead.Client())
	dead.Close() // connection refused from now on
	// Put the dead replica at the dir fetch's affinity-preferred slot so the
	// open deterministically has to fail over.
	replicas := make([]*remote.Client, 2)
	pref := shardmap.Affinity(0, 2)
	replicas[pref] = deadClient
	replicas[1-pref] = base.clients[0]
	g := remote.NewGroup(replicas, nil)
	rr, err := g.OpenRR(ctx)
	if err != nil {
		t.Fatalf("open with a dead first replica: %v", err)
	}
	if kws := rr.Keywords(); len(kws) == 0 {
		t.Fatal("degraded open produced an empty index")
	}
	if s := g.Stats(); s.Retries == 0 || s.Failovers == 0 {
		t.Fatalf("degraded open counted retries=%d failovers=%d; want both > 0", s.Retries, s.Failovers)
	}
	if err := g.Validate(ctx, pref, remote.KindRR); err == nil || errors.Is(err, remote.ErrReplicaMismatch) {
		t.Fatalf("validating a dead replica: got %v, want a transport error", err)
	}
}

// TestGroupNotServedIsNotAFault: a 404 (name does not resolve) is a property
// of the byte-identical file, not of the replica that answered — the Group
// must return it immediately instead of hammering every replica.
func TestGroupNotServedIsNotAFault(t *testing.T) {
	c := newReplicaCluster(t)
	g := c.groups[0]
	if _, _, err := g.Fetch(context.Background(), remote.KindRR, "bogus", 0, 0); !errors.Is(err, remote.ErrNotServed) {
		t.Fatalf("bogus unit: got %v, want ErrNotServed", err)
	}
	if s := g.Stats(); s.Retries != 0 {
		t.Fatalf("a 404 was retried %d times across replicas", s.Retries)
	}
}

// TestGroupMismatchedReplicaRejected: a replica that answers but advertises
// a different index size is a fault, not a byte source — Validate names it
// ErrReplicaMismatch, and a Fetch forced onto it fails over to the replica
// holding the right file even when health reports that one down (fail-open).
func TestGroupMismatchedReplicaRejected(t *testing.T) {
	base := newCluster(t, 0)
	ctx := context.Background()
	good := base.clients[0]
	// A second "replica" re-serving the same shard-0 artifacts with the
	// advertised size header shifted: answers fine, claims a different file.
	tampered := httptest.NewServer(&sizeTamper{inner: proxyTo(t, good), delta: 7})
	defer tampered.Close()
	health := newStubHealth(2)
	health.down[1].Store(true) // keep the tampered replica out of the open
	g := remote.NewGroup([]*remote.Client{good, remote.NewClient(tampered.URL, tampered.Client())}, health)
	if _, err := g.OpenRR(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(ctx, 1, remote.KindRR); !errors.Is(err, remote.ErrReplicaMismatch) {
		t.Fatalf("validating the tampered replica: got %v, want ErrReplicaMismatch", err)
	}
	// Force fetches to prefer the tampered replica: the mismatch must read
	// as a fault and fail over to the "unavailable" good replica (fail-open).
	health.down[1].Store(false)
	health.down[0].Store(true)
	topics := base.sm.NumTopics()
	var sawMismatch bool
	for w := 0; w < topics; w++ {
		if base.sm.Owner(w) != 0 {
			continue
		}
		if shardmap.Affinity(w, 2) != 1 {
			continue // only keywords whose preferred replica is the tampered one
		}
		if _, _, err := g.Fetch(ctx, remote.KindRR, rrindex.UnitDir, w, 0); err != nil {
			t.Fatalf("fetch of topic %d with a mismatched preferred replica: %v", w, err)
		}
		sawMismatch = true
	}
	if !sawMismatch {
		t.Skip("no shard-0 keyword prefers replica 1 in this universe")
	}
	if s := g.Stats(); s.Failovers == 0 {
		t.Fatalf("mismatched replica produced no failovers: %+v", s)
	}
	var gotMismatch bool
	for _, err := range health.observed {
		if errors.Is(err, remote.ErrReplicaMismatch) {
			gotMismatch = true
		}
	}
	if !gotMismatch {
		t.Fatal("health never observed the ErrReplicaMismatch fault")
	}
}

// proxyTo forwards artifact requests to another node — a stand-in for a
// second server over the same files when only a client handle is available.
func proxyTo(t *testing.T, c *remote.Client) http.Handler {
	t.Helper()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		topic, _ := strconv.Atoi(q.Get("topic"))
		aux, _ := strconv.ParseInt(q.Get("aux"), 10, 64)
		b, size, err := c.Fetch(r.Context(), q.Get("kind"), q.Get("unit"), topic, aux)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, remote.ErrNotServed) {
				status = http.StatusNotFound
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("X-Kbtim-Artifact-Version", strconv.Itoa(remote.Version))
		w.Header().Set("X-Kbtim-Index-Size", strconv.FormatInt(size, 10))
		w.WriteHeader(http.StatusOK)
		w.Write(b)
	})
}
