package remote

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"kbtim/internal/diskio"
	"kbtim/internal/irrindex"
	"kbtim/internal/rrindex"
	"kbtim/internal/shardmap"
)

// ErrReplicaMismatch reports that a replica answered but serves a DIFFERENT
// index file than the rest of its group — a configuration error, not a
// transient fault. The parity invariant (remote queries bit-identical to a
// local open) only holds when every replica of a shard serves byte-identical
// files, so a mismatching replica must never receive artifact traffic.
var ErrReplicaMismatch = errors.New("remote: replica serves a different index")

// Health is the availability policy a Group consults per replica — the seam
// between the retrying fetch layer and the router's breaker state. A nil
// Health treats every replica as available and discards observations.
//
// Observe is called with the outcome of every replica round trip the Group
// makes (nil on success — including a 404, where the node answered and the
// artifact name simply does not resolve). It is NOT called when the caller's
// context is already canceled: an impatient client must not read as a
// replica fault.
type Health interface {
	// Available reports whether replica i should be tried at all. When no
	// replica is available the Group fails open and tries them all anyway —
	// a stale "everything is down" verdict must not fail queries that could
	// have succeeded.
	Available(i int) bool
	// Observe reports the outcome of a round trip to replica i.
	Observe(i int, err error)
}

// GroupStats is a snapshot of a Group's cumulative failover counters.
type GroupStats struct {
	// Retries counts failed fetch attempts that were re-issued to another
	// replica of the same shard.
	Retries int64
	// Failovers counts fetches that SUCCEEDED on a replica other than the
	// first one tried.
	Failovers int64
}

// dirRecord is the group's recorded view of one index kind: the prelude
// bytes and advertised file size of the first successful open, the reference
// every replica must match.
type dirRecord struct {
	prelude []byte
	size    int64
}

// Group fetches index artifacts from a set of interchangeable replicas of
// ONE shard — every replica serves a byte-identical index file, so an
// artifact GET is idempotent across them and a failed fetch can be re-issued
// to a surviving replica without violating the parity invariant.
//
// Reads of topic w start at the shardmap.Affinity-preferred replica (hot
// keywords spread deterministically across the set) and rotate on failure:
// available replicas first, then — if every replica is reported down — the
// rest, so a stale health verdict degrades to a retry instead of an outright
// failure. A 404 (ErrNotServed) returns immediately: the name resolves the
// same way on every replica.
//
// A Group is safe for concurrent use.
type Group struct {
	clients []*Client
	health  Health

	mu   sync.Mutex
	dirs map[string]dirRecord // kind → reference prelude/size, set at open

	retries   atomic.Int64
	failovers atomic.Int64
}

// NewGroup returns a group over the given replica clients (at least one).
// health may be nil; see Health.
func NewGroup(clients []*Client, health Health) *Group {
	return &Group{clients: clients, health: health, dirs: make(map[string]dirRecord)}
}

// NumReplicas returns the replica count.
func (g *Group) NumReplicas() int { return len(g.clients) }

// Stats returns the cumulative failover counters.
func (g *Group) Stats() GroupStats {
	return GroupStats{Retries: g.retries.Load(), Failovers: g.failovers.Load()}
}

func (g *Group) available(i int) bool {
	return g.health == nil || g.health.Available(i)
}

func (g *Group) observe(i int, err error) {
	if g.health != nil {
		g.health.Observe(i, err)
	}
}

// tryOrder returns replica indices in preference order for topic: the
// Affinity-preferred replica first, rotating upward, with unavailable
// replicas moved to the back (kept as a last resort rather than dropped).
func (g *Group) tryOrder(topic int) []int {
	n := len(g.clients)
	start := shardmap.Affinity(topic, n)
	order := make([]int, 0, n)
	for k := 0; k < n; k++ {
		if i := (start + k) % n; g.available(i) {
			order = append(order, i)
		}
	}
	for k := 0; k < n; k++ {
		if i := (start + k) % n; !g.available(i) {
			order = append(order, i)
		}
	}
	return order
}

// recordedSize returns the advertised index size recorded for kind at open
// time (0 when the kind was never opened through this group).
func (g *Group) recordedSize(kind string) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.dirs[kind].size
}

func (g *Group) recordDir(kind string, prelude []byte, size int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.dirs[kind] = dirRecord{prelude: append([]byte(nil), prelude...), size: size}
}

// Fetch retrieves one artifact from any replica, failing over on transient
// faults. The advertised index size of every response is checked against the
// size recorded when the group opened that kind: a replica advertising a
// different size serves a different file and is treated as faulty, not as a
// source of (parity-breaking) bytes.
func (g *Group) Fetch(ctx context.Context, kind, unit string, topic int, aux int64) ([]byte, int64, error) {
	order := g.tryOrder(topic)
	var lastErr error
	for attempt, i := range order {
		b, size, err := g.clients[i].Fetch(ctx, kind, unit, topic, aux)
		if err == nil {
			if want := g.recordedSize(kind); want != 0 && size != want {
				err = fmt.Errorf("%w: advertises a %d-byte %s index, group opened a %d-byte one", ErrReplicaMismatch, size, kind, want)
			}
		}
		if err == nil {
			g.observe(i, nil)
			if attempt > 0 {
				g.failovers.Add(1)
			}
			return b, size, nil
		}
		if errors.Is(err, ErrNotServed) {
			// The node answered; the name just does not resolve — which is a
			// property of the (identical) file, not of this replica.
			g.observe(i, nil)
			return nil, 0, err
		}
		if ctx.Err() != nil {
			// The caller gave up; do not blame the replica, do not keep trying.
			return nil, 0, err
		}
		g.observe(i, err)
		lastErr = err
		if attempt < len(order)-1 {
			g.retries.Add(1)
		}
	}
	return nil, 0, fmt.Errorf("remote: all %d replicas failed, last: %w", len(order), lastErr)
}

// groupFetcher binds a group to one index kind, satisfying rrindex.Fetcher
// and irrindex.Fetcher — the per-keyword artifact source that lets a
// spanning query fail over to a surviving replica mid-round.
type groupFetcher struct {
	g    *Group
	kind string
}

func (f groupFetcher) Fetch(ctx context.Context, unit string, topic int, aux int64) ([]byte, error) {
	b, _, err := f.g.Fetch(ctx, f.kind, unit, topic, aux)
	return b, err
}

// OpenRR opens the shard's RR index through the group: the dir artifact
// comes from the first replica that answers (recorded as the group's
// reference view), and the returned index reads every payload artifact
// through the failover Fetch.
func (g *Group) OpenRR(ctx context.Context) (*rrindex.Index, error) {
	prelude, size, err := g.Fetch(ctx, KindRR, rrindex.UnitDir, 0, 0)
	if err != nil {
		return nil, err
	}
	g.recordDir(KindRR, prelude, size)
	idx, err := rrindex.Open(&stubReader{prelude: prelude, size: size, counter: diskio.NewCounter()})
	if err != nil {
		return nil, err
	}
	idx.SetFetcher(groupFetcher{g: g, kind: KindRR})
	return idx, nil
}

// OpenIRR opens the shard's IRR index through the group; see OpenRR.
func (g *Group) OpenIRR(ctx context.Context) (*irrindex.Index, error) {
	prelude, size, err := g.Fetch(ctx, KindIRR, irrindex.UnitDir, 0, 0)
	if err != nil {
		return nil, err
	}
	g.recordDir(KindIRR, prelude, size)
	idx, err := irrindex.Open(&stubReader{prelude: prelude, size: size, counter: diskio.NewCounter()})
	if err != nil {
		return nil, err
	}
	idx.SetFetcher(groupFetcher{g: g, kind: KindIRR})
	return idx, nil
}

// Validate checks replica i against the group's recorded view of kind: it
// fetches the dir artifact directly from that replica and requires a
// byte-identical prelude and the same advertised size. This is the admission
// check for a replica that was unreachable when the group opened — until it
// passes, the replica must not serve artifact traffic (the router gates it
// behind its breaker). A network failure returns the transport error; a
// reachable replica serving different bytes returns ErrReplicaMismatch.
// Validate itself reports nothing to Health — the caller owns that verdict.
func (g *Group) Validate(ctx context.Context, i int, kind string) error {
	g.mu.Lock()
	rec, ok := g.dirs[kind]
	g.mu.Unlock()
	if !ok {
		return fmt.Errorf("remote: group never opened a %s index to validate against", kind)
	}
	unit := rrindex.UnitDir
	if kind == KindIRR {
		unit = irrindex.UnitDir
	}
	prelude, size, err := g.clients[i].Fetch(ctx, kind, unit, 0, 0)
	if err != nil {
		return err
	}
	if size != rec.size || !bytes.Equal(prelude, rec.prelude) {
		return fmt.Errorf("%w: %s dir is %d bytes in a %d-byte file, group reference is %d bytes in a %d-byte file",
			ErrReplicaMismatch, kind, len(prelude), size, len(rec.prelude), rec.size)
	}
	return nil
}
