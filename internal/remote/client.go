package remote

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"kbtim/internal/diskio"
	"kbtim/internal/irrindex"
	"kbtim/internal/rrindex"
)

// ErrNotServed reports that the node answered but does not serve the
// requested artifact (a 404) — "that node has no such index/keyword", as
// opposed to the node being unreachable. Routers probe index kinds with it.
var ErrNotServed = errors.New("remote: artifact not served")

// maxArtifactBytes caps one artifact response. Artifacts are bounded by the
// index file, so the cap only guards against a confused or hostile peer
// streaming forever.
const maxArtifactBytes = 1 << 30

// WireStats is a snapshot of a client's cumulative transfer counters.
type WireStats struct {
	// Fetches is the number of artifact requests (per-unit GETs and batch
	// POSTs alike) that returned 200.
	Fetches int64
	// Bytes is the total payload bytes those fetches carried.
	Bytes int64
	// BatchedUnits is the number of artifact units delivered inside batch
	// replies. BatchedUnits/Fetches is the units-per-request ratio a healthy
	// batching deployment keeps well above 1.
	BatchedUnits int64
	// BatchBytes is the slice of Bytes that batch replies carried; the
	// remainder traveled over per-unit v1 fetches.
	BatchBytes int64
}

// Add returns the element-wise sum of two snapshots.
func (w WireStats) Add(o WireStats) WireStats {
	w.Fetches += o.Fetches
	w.Bytes += o.Bytes
	w.BatchedUnits += o.BatchedUnits
	w.BatchBytes += o.BatchBytes
	return w
}

// Client fetches index artifacts from one serving node. It is safe for
// concurrent use; every open index created through it shares the client's
// transfer counters, so a router can report per-backend wire traffic.
type Client struct {
	base      string // ".../internal/artifact", no trailing query
	batchBase string // ".../internal/artifacts"
	hc        *http.Client

	// batchMode is the learned batch-protocol verdict for this backend
	// (batchUnknown / batchUnsupported / batchSupported).
	batchMode atomic.Int32

	fetches      atomic.Int64
	bytes        atomic.Int64
	batchedUnits atomic.Int64
	batchBytes   atomic.Int64
}

// NewTransport returns an http.Transport tuned for artifact traffic to a
// small, fixed set of backends: every fetch round should ride an already-warm
// connection, so the per-host idle pool must hold the router's full fetch
// parallelism (the stock http.DefaultTransport keeps only 2 idle connections
// per host and silently closes the rest, re-paying TCP setup every round).
// maxIdlePerHost <= 0 selects the default of 32.
func NewTransport(maxIdlePerHost int) *http.Transport {
	if maxIdlePerHost <= 0 {
		maxIdlePerHost = 32
	}
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 0 // unlimited pool overall; the per-host knob governs
	t.MaxIdleConnsPerHost = maxIdlePerHost
	t.IdleConnTimeout = 90 * time.Second
	return t
}

// NewClient returns a client against the node at base (e.g.
// "http://host:8080" — ArtifactPath is appended). hc may be nil for a
// default client with a 30s timeout over a keep-alive transport
// (NewTransport); routers multiplexing many spanning queries should pass
// their own shared tuned client.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second, Transport: NewTransport(0)}
	}
	return &Client{base: base + ArtifactPath, batchBase: base + BatchPath, hc: hc}
}

// Stats returns the cumulative wire counters.
func (c *Client) Stats() WireStats {
	return WireStats{
		Fetches:      c.fetches.Load(),
		Bytes:        c.bytes.Load(),
		BatchedUnits: c.batchedUnits.Load(),
		BatchBytes:   c.batchBytes.Load(),
	}
}

// Fetch retrieves one artifact, returning its payload and the index file
// size the node advertised alongside it.
func (c *Client) Fetch(ctx context.Context, kind, unit string, topic int, aux int64) ([]byte, int64, error) {
	q := url.Values{}
	q.Set("kind", kind)
	q.Set("unit", unit)
	q.Set("topic", strconv.Itoa(topic))
	q.Set("aux", strconv.FormatInt(aux, 10))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"?"+q.Encode(), nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		if resp.StatusCode == http.StatusNotFound {
			return nil, 0, fmt.Errorf("%w: %s %s artifact (topic %d, aux %d): %s",
				ErrNotServed, kind, unit, topic, aux, strings.TrimSpace(string(msg)))
		}
		return nil, 0, fmt.Errorf("remote: %s %s artifact (topic %d, aux %d): %s: %s",
			kind, unit, topic, aux, resp.Status, msg)
	}
	if v := resp.Header.Get(headerVersion); v != strconv.Itoa(Version) {
		return nil, 0, fmt.Errorf("remote: node speaks artifact protocol %q, this client speaks %d", v, Version)
	}
	size, err := strconv.ParseInt(resp.Header.Get(headerIndexSize), 10, 64)
	if err != nil || size <= 0 {
		return nil, 0, fmt.Errorf("remote: missing or bad %s header %q", headerIndexSize, resp.Header.Get(headerIndexSize))
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxArtifactBytes+1))
	if err != nil {
		return nil, 0, err
	}
	if len(b) > maxArtifactBytes {
		return nil, 0, fmt.Errorf("remote: artifact exceeds %d-byte cap", int64(maxArtifactBytes))
	}
	c.fetches.Add(1)
	c.bytes.Add(int64(len(b)))
	return b, size, nil
}

// kindFetcher binds a client to one index kind, satisfying both
// rrindex.Fetcher and irrindex.Fetcher (identical shapes).
type kindFetcher struct {
	c    *Client
	kind string
}

func (f kindFetcher) Fetch(ctx context.Context, unit string, topic int, aux int64) ([]byte, error) {
	b, _, err := f.c.Fetch(ctx, f.kind, unit, topic, aux)
	return b, err
}

// stubReader backs a remote-opened index: it serves the already-fetched
// prelude to Open's header/directory reads and reports the advertised file
// size for offset validation. Payload reads never reach it — they go
// through the fetcher — so anything past the prelude is an error, loudly
// catching any future read path that forgot to be fetch-aware.
type stubReader struct {
	prelude []byte
	size    int64
	counter *diskio.Counter
}

func (s *stubReader) ReadSegment(off, length int64) ([]byte, error) {
	if off < 0 || length < 0 || off+length > int64(len(s.prelude)) {
		return nil, fmt.Errorf("remote: segment [%d,%d) outside the fetched prelude (%d bytes) — remote indexes read payloads through the fetcher only",
			off, off+length, len(s.prelude))
	}
	b := make([]byte, length)
	copy(b, s.prelude[off:off+length])
	return b, nil
}

func (s *stubReader) Size() int64              { return s.size }
func (s *stubReader) Counter() *diskio.Counter { return s.counter }

// OpenRR opens the node's RR index remotely: one "dir" fetch brings the
// header and keyword directory over (parsed by the exact code a local open
// runs, including offset validation against the advertised file size), and
// the returned index fetches every payload artifact through this client.
// Attach a decoded cache (SetDecodedCache) to keep hot artifacts on this
// side of the wire.
func (c *Client) OpenRR(ctx context.Context) (*rrindex.Index, error) {
	prelude, size, err := c.Fetch(ctx, KindRR, rrindex.UnitDir, 0, 0)
	if err != nil {
		return nil, err
	}
	idx, err := rrindex.Open(&stubReader{prelude: prelude, size: size, counter: diskio.NewCounter()})
	if err != nil {
		return nil, err
	}
	idx.SetFetcher(kindFetcher{c: c, kind: KindRR})
	return idx, nil
}

// OpenIRR opens the node's IRR index remotely; see OpenRR.
func (c *Client) OpenIRR(ctx context.Context) (*irrindex.Index, error) {
	prelude, size, err := c.Fetch(ctx, KindIRR, irrindex.UnitDir, 0, 0)
	if err != nil {
		return nil, err
	}
	idx, err := irrindex.Open(&stubReader{prelude: prelude, size: size, counter: diskio.NewCounter()})
	if err != nil {
		return nil, err
	}
	idx.SetFetcher(kindFetcher{c: c, kind: KindIRR})
	return idx, nil
}
