// Package remote is the cross-node artifact-fetch protocol behind KB-TIM's
// scatter-gather router (DESIGN.md §6.2): it lets one process open another
// process's disk index and query it with the per-keyword artifact reads
// going over HTTP instead of a local file.
//
// The wire unit is the ARTIFACT, not the byte range: every raw segment a
// query ever reads is one of the named units the index packages declare —
// the RR index's keyword set-prefix ("sets", aux = θ-prefix length) and
// inverted region ("inv"), the IRR index's IP table ("ip") and partition
// block ("part", aux = partition index), plus each index's prelude ("dir",
// header + keyword directory). These are exactly the units the decoded
// cache (internal/objcache) keys on, so a router-side cache fronts the wire
// the same way a serve-side cache fronts the disk: a hot keyword skips the
// network AND the decode.
//
// Protocol (version 1):
//
//	GET <path>?kind=rr|irr&unit=dir|sets|inv|ip|part&topic=T&aux=A
//
//	200 → raw artifact bytes, exactly as stored in the index file, with
//	      X-Kbtim-Artifact-Version: 1 and X-Kbtim-Index-Size: <total file
//	      bytes> (the remote open validates directory offsets against it)
//	404 → the node serves no such kind/unit/topic
//	400 → malformed parameters
//
// Because payloads are the stored bytes verbatim and every decode runs with
// the directory the serving node itself uses, a query over remote indexes
// is bit-identical to the same query over local opens of the same files —
// the parity invariant the router's spanning-query path relies on.
package remote

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"kbtim/internal/irrindex"
	"kbtim/internal/rrindex"
)

// ErrNoArtifact marks a request whose NAME does not resolve on this node —
// unknown kind, no index of that kind attached. Sources wrap it (the index
// packages have their own equivalents for unknown unit/keyword/partition)
// so the handler can answer 404 "not served here", while a resolvable
// artifact whose read failed stays a 500: routers must be able to tell
// "that keyword lives elsewhere" from "retry this node".
var ErrNoArtifact = errors.New("remote: no such artifact")

// notServed reports whether err means the artifact name does not resolve
// (any layer's sentinel), as opposed to a read/engine failure.
func notServed(err error) bool {
	return errors.Is(err, ErrNoArtifact) ||
		errors.Is(err, rrindex.ErrNoArtifact) ||
		errors.Is(err, irrindex.ErrNoArtifact)
}

// Protocol constants.
const (
	// Version is the artifact protocol version; client and server must
	// agree exactly (the payload encoding is the index file format itself,
	// which carries its own version in the "dir" unit).
	Version = 1
	// ArtifactPath is the conventional mount point of the handler on a
	// kbtim-serve node.
	ArtifactPath = "/internal/artifact"
	// KindRR and KindIRR name the two index kinds.
	KindRR  = "rr"
	KindIRR = "irr"

	headerVersion   = "X-Kbtim-Artifact-Version"
	headerIndexSize = "X-Kbtim-Index-Size"
)

// Source serves raw artifact bytes from locally attached indexes; it is the
// seam between the HTTP handler and the index layer. kbtim.Engine
// implements it (pinning the index handle for each read), and
// IndexSource adapts bare rrindex/irrindex Index values for tests and
// benchmarks. The returned size is the index file's total byte length.
type Source interface {
	ArtifactBytes(kind, unit string, topic int, aux int64) ([]byte, int64, error)
}

// NewHandler returns the HTTP handler serving src's artifacts — mount it at
// ArtifactPath. Responses carry the protocol version and the index size;
// failures map to 400 (bad parameters) or 404 (nothing served under that
// kind/unit/topic on this node).
func NewHandler(src Source) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		kind, unit := q.Get("kind"), q.Get("unit")
		if kind == "" || unit == "" {
			http.Error(w, "kind and unit are required", http.StatusBadRequest)
			return
		}
		topic, aux := 0, int64(0)
		var err error
		if s := q.Get("topic"); s != "" {
			if topic, err = strconv.Atoi(s); err != nil {
				http.Error(w, fmt.Sprintf("bad topic %q", s), http.StatusBadRequest)
				return
			}
		}
		if s := q.Get("aux"); s != "" {
			if aux, err = strconv.ParseInt(s, 10, 64); err != nil {
				http.Error(w, fmt.Sprintf("bad aux %q", s), http.StatusBadRequest)
				return
			}
		}
		b, size, err := src.ArtifactBytes(kind, unit, topic, aux)
		if err != nil {
			// A name that does not resolve here — unknown kind/unit,
			// keyword not indexed, no index of that kind attached — is a
			// 404 (routers probe index kinds with it). A resolvable
			// artifact whose read failed (disk error, engine mid-close) is
			// a real server error, NOT "not served": a 404 here would
			// misroute failover logic.
			if notServed(err) {
				http.Error(w, err.Error(), http.StatusNotFound)
			} else {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		h := w.Header()
		h.Set("Content-Type", "application/octet-stream")
		h.Set(headerVersion, strconv.Itoa(Version))
		h.Set(headerIndexSize, strconv.FormatInt(size, 10))
		h.Set("Content-Length", strconv.Itoa(len(b)))
		w.Write(b)
	})
}

// IndexSource adapts directly opened Index values to the Source interface
// (no engine, no handle pinning — the caller owns the index lifetimes).
// Either field may be nil; its kind is then not served.
type IndexSource struct {
	RR  rrArtifacts
	IRR irrArtifacts
}

// rrArtifacts / irrArtifacts are the tiny per-kind surfaces IndexSource
// needs; *rrindex.Index and *irrindex.Index satisfy them.
type rrArtifacts interface {
	ArtifactBytes(unit string, topic int, aux int64) ([]byte, error)
	Size() int64
}

type irrArtifacts = rrArtifacts

// ArtifactBytes implements Source.
func (s IndexSource) ArtifactBytes(kind, unit string, topic int, aux int64) ([]byte, int64, error) {
	var idx rrArtifacts
	switch kind {
	case KindRR:
		idx = s.RR
	case KindIRR:
		idx = s.IRR
	default:
		return nil, 0, fmt.Errorf("%w: unknown index kind %q (want rr or irr)", ErrNoArtifact, kind)
	}
	if idx == nil {
		return nil, 0, fmt.Errorf("%w: no %s index attached", ErrNoArtifact, kind)
	}
	b, err := idx.ArtifactBytes(unit, topic, aux)
	if err != nil {
		return nil, 0, err
	}
	return b, idx.Size(), nil
}
