package remote_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"kbtim"
	"kbtim/internal/diskio"
	"kbtim/internal/irrindex"
	"kbtim/internal/objcache"
	"kbtim/internal/remote"
	"kbtim/internal/rrindex"
	"kbtim/internal/shardmap"
	"kbtim/internal/topic"
)

// kbtim.Engine is the production Source implementation; pin that here so a
// signature drift breaks this package's tests, not just cmd/kbtim-serve.
var _ remote.Source = (*kbtim.Engine)(nil)

func testOptions() kbtim.Options {
	return kbtim.Options{
		Epsilon:            0.5,
		K:                  10,
		MaxThetaPerKeyword: 4000,
		PartitionSize:      5,
		Seed:               11,
	}
}

// cluster is a 2-node remote deployment plus the local single-index truth:
// two backend engines each serving one hash shard's RR+IRR files over
// httptest, remote-opened indexes on the "router" side, and directly opened
// full indexes for parity comparison.
type cluster struct {
	sm        *shardmap.Map
	rrRemote  []*rrindex.Index
	irrRemote []*irrindex.Index
	rrLocal   *rrindex.Index
	irrLocal  *irrindex.Index
	clients   []*remote.Client
}

func (c *cluster) rrOwner(w int) *rrindex.Index {
	if w < 0 || w >= c.sm.NumTopics() {
		return nil
	}
	return c.rrRemote[c.sm.Owner(w)]
}

func (c *cluster) irrOwner(w int) *irrindex.Index {
	if w < 0 || w >= c.sm.NumTopics() {
		return nil
	}
	return c.irrRemote[c.sm.Owner(w)]
}

// newCluster builds the dataset, the full and 2-shard index files, the two
// backend nodes, and the remote opens. cacheBytes > 0 attaches a decoded
// cache to each remote index (the router-side tier that keeps hot artifacts
// off the wire).
func newCluster(t *testing.T, cacheBytes int64) *cluster {
	t.Helper()
	ds, err := kbtim.GenerateDataset(kbtim.DatasetSpec{
		Kind: kbtim.TwitterLike, NumUsers: 300, AvgDegree: 6,
		NumTopics: 8, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	builder, err := kbtim.NewEngine(ds, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { builder.Close() })
	rrFull := filepath.Join(dir, "full.rr")
	irrFull := filepath.Join(dir, "full.irr")
	if _, err := builder.BuildRRIndex(rrFull); err != nil {
		t.Fatal(err)
	}
	if _, err := builder.BuildIRRIndex(irrFull); err != nil {
		t.Fatal(err)
	}
	const shards = 2
	pathFor := func(kind string) func(int) string {
		return func(i int) string {
			return kbtim.ShardIndexPath(filepath.Join(dir, "ads."+kind), i)
		}
	}
	if _, err := builder.BuildShardIndexes("rr", shards, kbtim.ShardHash, pathFor("rr")); err != nil {
		t.Fatal(err)
	}
	if _, err := builder.BuildShardIndexes("irr", shards, kbtim.ShardHash, pathFor("irr")); err != nil {
		t.Fatal(err)
	}

	sm, err := shardmap.New(shards, shardmap.Hash, ds.NumTopics())
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{sm: sm}
	topicsBy, err := builder.ShardTopics(shards, kbtim.ShardHash)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < shards; i++ {
		if len(topicsBy[i]) == 0 {
			t.Fatalf("shard %d owns no topics; pick a dataset that spreads", i)
		}
		eng, err := kbtim.NewEngine(ds, testOptions())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		if err := eng.OpenRRIndex(pathFor("rr")(i)); err != nil {
			t.Fatal(err)
		}
		if err := eng.OpenIRRIndex(pathFor("irr")(i)); err != nil {
			t.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.Handle(remote.ArtifactPath, remote.NewHandler(eng))
		mux.Handle(remote.BatchPath, remote.NewBatchHandler(eng))
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		client := remote.NewClient(srv.URL, srv.Client())
		c.clients = append(c.clients, client)
		rr, err := client.OpenRR(ctx)
		if err != nil {
			t.Fatal(err)
		}
		irr, err := client.OpenIRR(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if cacheBytes > 0 {
			rr.SetDecodedCache(objcache.New(cacheBytes))
			irr.SetDecodedCache(objcache.New(cacheBytes))
		}
		c.rrRemote = append(c.rrRemote, rr)
		c.irrRemote = append(c.irrRemote, irr)
	}

	openLocal := func(path string) diskio.Segmented {
		f, err := diskio.Open(path, diskio.NewCounter())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Close() })
		return f
	}
	if c.rrLocal, err = rrindex.Open(openLocal(rrFull)); err != nil {
		t.Fatal(err)
	}
	if c.irrLocal, err = irrindex.Open(openLocal(irrFull)); err != nil {
		t.Fatal(err)
	}
	return c
}

// parityQueries covers co-located single keywords, spanning pairs, and the
// whole universe (always spanning under hash over 8 topics).
func parityQueries() []topic.Query {
	return []topic.Query{
		{Topics: []int{0}, K: 3},
		{Topics: []int{3}, K: 2},
		{Topics: []int{0, 1}, K: 3},
		{Topics: []int{2, 5, 7}, K: 4},
		{Topics: []int{0, 1, 2, 3, 4, 5, 6, 7}, K: 5},
	}
}

// TestRemoteParity is the cross-node half of the parity invariant: queries
// over remote-opened shard indexes — every artifact crossing the wire —
// return byte-identical seeds, marginals, and spreads to a directly opened
// single full index, for both strategies, spanning queries included.
func TestRemoteParity(t *testing.T) {
	c := newCluster(t, 0)
	ctx := context.Background()
	for _, q := range parityQueries() {
		wantRR, err := c.rrLocal.Query(q)
		if err != nil {
			t.Fatalf("local rr %v: %v", q.Topics, err)
		}
		gotRR, err := rrindex.QueryMultiCtx(ctx, c.rrOwner, q)
		if err != nil {
			t.Fatalf("remote rr %v: %v", q.Topics, err)
		}
		if !reflect.DeepEqual(gotRR.Seeds, wantRR.Seeds) ||
			!reflect.DeepEqual(gotRR.Marginals, wantRR.Marginals) ||
			gotRR.EstSpread != wantRR.EstSpread || gotRR.NumRRSets != wantRR.NumRRSets {
			t.Fatalf("rr %v: remote (%v, %v, %v) != local (%v, %v, %v)", q.Topics,
				gotRR.Seeds, gotRR.Marginals, gotRR.EstSpread,
				wantRR.Seeds, wantRR.Marginals, wantRR.EstSpread)
		}
		wantIRR, err := c.irrLocal.Query(q)
		if err != nil {
			t.Fatalf("local irr %v: %v", q.Topics, err)
		}
		gotIRR, err := irrindex.QueryMultiCtx(ctx, c.irrOwner, q)
		if err != nil {
			t.Fatalf("remote irr %v: %v", q.Topics, err)
		}
		if !reflect.DeepEqual(gotIRR.Seeds, wantIRR.Seeds) ||
			!reflect.DeepEqual(gotIRR.Marginals, wantIRR.Marginals) ||
			gotIRR.EstSpread != wantIRR.EstSpread {
			t.Fatalf("irr %v: remote (%v, %v, %v) != local (%v, %v, %v)", q.Topics,
				gotIRR.Seeds, gotIRR.Marginals, gotIRR.EstSpread,
				wantIRR.Seeds, wantIRR.Marginals, wantIRR.EstSpread)
		}
		// Theorem 3 should survive the wire too: both strategies agree on
		// the greedy trace.
		if !reflect.DeepEqual(gotRR.Marginals, gotIRR.Marginals) {
			t.Fatalf("%v: remote RR marginals %v != remote IRR marginals %v",
				q.Topics, gotRR.Marginals, gotIRR.Marginals)
		}
	}
}

// TestRemoteDecodedCacheKeepsHotArtifactsOffTheWire: with a decoded cache
// attached, repeating a query must cost zero additional artifact fetches —
// the cache fronts the wire exactly as it fronts the disk locally.
func TestRemoteDecodedCacheKeepsHotArtifactsOffTheWire(t *testing.T) {
	c := newCluster(t, 1<<20)
	ctx := context.Background()
	q := topic.Query{Topics: []int{0, 1, 2, 3, 4, 5, 6, 7}, K: 5}
	first, err := irrindex.QueryMultiCtx(ctx, c.irrOwner, q)
	if err != nil {
		t.Fatal(err)
	}
	fetchesAfterFirst := int64(0)
	for _, cl := range c.clients {
		fetchesAfterFirst += cl.Stats().Fetches
	}
	second, err := irrindex.QueryMultiCtx(ctx, c.irrOwner, q)
	if err != nil {
		t.Fatal(err)
	}
	fetchesAfterSecond := int64(0)
	for _, cl := range c.clients {
		fetchesAfterSecond += cl.Stats().Fetches
	}
	if fetchesAfterSecond != fetchesAfterFirst {
		t.Fatalf("repeat query fetched %d artifacts over the wire; want 0 (cache should absorb them)",
			fetchesAfterSecond-fetchesAfterFirst)
	}
	if !reflect.DeepEqual(first.Seeds, second.Seeds) || first.EstSpread != second.EstSpread {
		t.Fatalf("cached rerun diverged: %v/%v vs %v/%v", first.Seeds, first.EstSpread, second.Seeds, second.EstSpread)
	}
	if second.DecodedHits == 0 {
		t.Fatalf("repeat query reported no decoded-cache hits")
	}
}

// TestRemoteProtocolErrors pins the failure surface: unknown units and
// unindexed keywords are 404s with the source's message, and a canceled
// context aborts the fetch.
func TestRemoteProtocolErrors(t *testing.T) {
	c := newCluster(t, 0)
	ctx := context.Background()
	if _, _, err := c.clients[0].Fetch(ctx, remote.KindRR, "bogus", 0, 0); err == nil ||
		!strings.Contains(err.Error(), "unknown artifact unit") {
		t.Fatalf("bogus unit: got %v, want an unknown-unit 404", err)
	}
	if _, _, err := c.clients[0].Fetch(ctx, "bogus", rrindex.UnitInv, 0, 0); err == nil ||
		!strings.Contains(err.Error(), "unknown index kind") {
		t.Fatalf("bogus kind: got %v, want an unknown-kind 404", err)
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, _, err := c.clients[0].Fetch(canceled, remote.KindRR, rrindex.UnitDir, 0, 0); err == nil {
		t.Fatal("canceled fetch succeeded")
	}
}

// TestTransportReusesConnections pins the connection-reuse fix: sequential
// fetches through a NewTransport-backed client must ride the same warm
// connection (httptrace reports every connection after the first as reused)
// instead of re-paying TCP setup per round trip.
func TestTransportReusesConnections(t *testing.T) {
	c := newCluster(t, 0)
	srv := httptest.NewServer(proxyTo(t, c.clients[0]))
	defer srv.Close()
	cl := remote.NewClient(srv.URL, &http.Client{Transport: remote.NewTransport(4)})
	var got, reused int
	ctx := httptrace.WithClientTrace(context.Background(), &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) {
			got++
			if info.Reused {
				reused++
			}
		},
	})
	const rounds = 5
	for i := 0; i < rounds; i++ {
		if _, _, err := cl.Fetch(ctx, remote.KindRR, rrindex.UnitDir, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got != rounds || reused != rounds-1 {
		t.Fatalf("%d fetches used %d connections (%d reused); want every connection after the first reused", rounds, got, reused)
	}
}

// TestRemoteWireBytesAccounted: a cache-less spanning query must report I/O
// equal to the artifact bytes the clients moved (the scope records every
// remote fetch), so the router's wire accounting is trustworthy.
func TestRemoteWireBytesAccounted(t *testing.T) {
	c := newCluster(t, 0)
	ctx := context.Background()
	before := int64(0)
	for _, cl := range c.clients {
		before += cl.Stats().Bytes
	}
	res, err := rrindex.QueryMultiCtx(ctx, c.rrOwner, topic.Query{Topics: []int{0, 1, 2, 3, 4, 5, 6, 7}, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	after := int64(0)
	for _, cl := range c.clients {
		after += cl.Stats().Bytes
	}
	if res.IO.BytesRead != after-before {
		t.Fatalf("query reports %d bytes read, clients moved %d", res.IO.BytesRead, after-before)
	}
}
