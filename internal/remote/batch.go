package remote

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"kbtim/internal/artifact"
)

// Protocol (version 2) — the batched companion to the per-unit GET. One POST
// moves a whole fetch round:
//
//	POST <BatchPath>
//	{"kind":"rr","units":[{"unit":"sets","topic":3,"aux":7}, ...]}
//
//	200 → X-Kbtim-Artifact-Version: 2, X-Kbtim-Index-Size: <file bytes of
//	      the first successfully served unit, 0 if none>, and a body with
//	      one record per requested unit IN REQUEST ORDER:
//
//	        status byte | uvarint length | payload
//
//	      status 0 = ok (payload is the stored artifact bytes verbatim),
//	      1 = not served on this node (payload is the error text; terminal,
//	      the name resolves the same way on every replica), 2 = failed
//	      (payload is the error text; retryable on another replica).
//	      Failures are isolated per unit: one missing keyword never fails
//	      the round's other fetches.
//	404/405 → the node predates the batch protocol. The client remembers
//	      (per backend) and serves every later round per-unit over v1, so
//	      mixed-version fleets keep working.
//	400 → malformed batch request.
//
// The record stream is strictly ordered and length-prefixed, so a client
// whose connection dies mid-body keeps every fully parsed record and can
// re-issue just the unserved remainder to the next replica.
const (
	// BatchVersion is the batched artifact protocol version.
	BatchVersion = 2
	// BatchPath is the conventional mount point of the batch handler on a
	// kbtim-serve node.
	BatchPath = "/internal/artifacts"

	// Per-unit status bytes in a batch reply.
	batchOK        = 0
	batchNotServed = 1
	batchFailed    = 2

	// maxBatchUnits bounds one batch request — far above any real round
	// (a round asks for at most a few units per query keyword).
	maxBatchUnits = 4096
	// maxBatchBody bounds the JSON request body the handler will read.
	maxBatchBody = 1 << 20
)

// errBatchUnsupported reports that the backend does not speak the batch
// protocol (it answered 404/405 to BatchPath). Callers fall back to per-unit
// v1 fetches; the client caches the verdict so the probe happens once.
var errBatchUnsupported = errors.New("remote: node does not speak the batch protocol")

// Client.batchMode states (atomic).
const (
	batchUnknown     = 0 // not probed yet: try a batch, learn from the answer
	batchUnsupported = 1 // node answered 404/405: v1 per-unit only
	batchSupported   = 2 // node served a batch: keep batching
)

// batchUnitJSON / batchRequestJSON are the POST body shape.
type batchUnitJSON struct {
	Unit  string `json:"unit"`
	Topic int    `json:"topic"`
	Aux   int64  `json:"aux,omitempty"`
}

type batchRequestJSON struct {
	Kind  string          `json:"kind"`
	Units []batchUnitJSON `json:"units"`
}

// NewBatchHandler returns the HTTP handler serving batched artifact requests
// from src — mount it at BatchPath, next to the v1 handler. Every requested
// unit is answered in order with its own status record, so a unit that does
// not resolve (or whose read fails) degrades that unit alone.
func NewBatchHandler(src Source) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req batchRequestJSON
		dec := json.NewDecoder(io.LimitReader(r.Body, maxBatchBody))
		if err := dec.Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("bad batch request: %v", err), http.StatusBadRequest)
			return
		}
		if req.Kind == "" || len(req.Units) == 0 {
			http.Error(w, "kind and at least one unit are required", http.StatusBadRequest)
			return
		}
		if len(req.Units) > maxBatchUnits {
			http.Error(w, fmt.Sprintf("batch of %d units exceeds the %d-unit cap", len(req.Units), maxBatchUnits), http.StatusBadRequest)
			return
		}
		// Replies are buffered so the headers (version, index size) can be
		// written after the last unit is resolved.
		var body bytes.Buffer
		var lenBuf [binary.MaxVarintLen64]byte
		size := int64(0)
		for _, u := range req.Units {
			b, sz, err := src.ArtifactBytes(req.Kind, u.Unit, u.Topic, u.Aux)
			var status byte
			payload := b
			switch {
			case err == nil:
				status = batchOK
				if size == 0 {
					size = sz
				}
			case notServed(err):
				status = batchNotServed
				payload = []byte(err.Error())
			default:
				status = batchFailed
				payload = []byte(err.Error())
			}
			body.WriteByte(status)
			body.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(payload)))])
			body.Write(payload)
		}
		h := w.Header()
		h.Set("Content-Type", "application/octet-stream")
		h.Set(headerVersion, strconv.Itoa(BatchVersion))
		h.Set(headerIndexSize, strconv.FormatInt(size, 10))
		h.Set("Content-Length", strconv.Itoa(body.Len()))
		body.WriteTo(w)
	})
}

// FetchBatch retrieves a whole round of artifacts of one kind in a single
// round trip, returning one reply per request in order plus the index file
// size the node advertised (0 when no unit succeeded). Per-unit failures are
// carried in the replies, not the error.
//
// A non-nil error means the round trip itself failed; the returned replies
// are then the fully parsed PREFIX (possibly empty) of the response, so the
// caller can re-issue just the unserved remainder elsewhere. A backend that
// does not speak the protocol yields errBatchUnsupported exactly once and is
// remembered; callers then serve the round per-unit over v1.
func (c *Client) FetchBatch(ctx context.Context, kind string, reqs []artifact.Request) ([]artifact.Reply, int64, error) {
	if len(reqs) == 0 {
		return nil, 0, nil
	}
	if c.batchMode.Load() == batchUnsupported {
		return nil, 0, errBatchUnsupported
	}
	units := make([]batchUnitJSON, len(reqs))
	for i, r := range reqs {
		units[i] = batchUnitJSON{Unit: r.Unit, Topic: r.Topic, Aux: r.Aux}
	}
	body, err := json.Marshal(batchRequestJSON{Kind: kind, Units: units})
	if err != nil {
		return nil, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.batchBase, bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound, http.StatusMethodNotAllowed:
		// No batch endpoint on this node: a v1-only backend. Remember, so a
		// mixed-version fleet pays this probe once per backend, not per round.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
		c.batchMode.Store(batchUnsupported)
		return nil, 0, errBatchUnsupported
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, 0, fmt.Errorf("remote: batch of %d %s units: %s: %s", len(reqs), kind, resp.Status, bytes.TrimSpace(msg))
	}
	if v := resp.Header.Get(headerVersion); v != strconv.Itoa(BatchVersion) {
		return nil, 0, fmt.Errorf("remote: node answered a batch with artifact protocol %q, this client speaks %d", v, BatchVersion)
	}
	size, err := strconv.ParseInt(resp.Header.Get(headerIndexSize), 10, 64)
	if err != nil || size < 0 {
		return nil, 0, fmt.Errorf("remote: missing or bad %s header %q", headerIndexSize, resp.Header.Get(headerIndexSize))
	}
	c.batchMode.Store(batchSupported)
	c.fetches.Add(1)

	// Parse the ordered record stream. Any truncation or corruption returns
	// the fully parsed prefix with the error — the unserved remainder is the
	// caller's to retry.
	replies := make([]artifact.Reply, 0, len(reqs))
	br := bufio.NewReader(resp.Body)
	for i := range reqs {
		status, err := br.ReadByte()
		if err != nil {
			return replies, size, fmt.Errorf("remote: batch reply truncated after %d of %d units: %w", i, len(reqs), err)
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return replies, size, fmt.Errorf("remote: batch reply truncated in unit %d of %d: %w", i+1, len(reqs), err)
		}
		if n > maxArtifactBytes {
			return replies, size, fmt.Errorf("remote: batch unit exceeds %d-byte cap", int64(maxArtifactBytes))
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return replies, size, fmt.Errorf("remote: batch reply truncated in unit %d of %d: %w", i+1, len(reqs), err)
		}
		r := reqs[i]
		switch status {
		case batchOK:
			c.bytes.Add(int64(n))
			c.batchBytes.Add(int64(n))
			c.batchedUnits.Add(1)
			replies = append(replies, artifact.Reply{Payload: buf})
		case batchNotServed:
			replies = append(replies, artifact.Reply{Err: fmt.Errorf("%w: %s %s artifact (topic %d, aux %d): %s",
				ErrNotServed, kind, r.Unit, r.Topic, r.Aux, buf)})
		case batchFailed:
			replies = append(replies, artifact.Reply{Err: fmt.Errorf("remote: %s %s artifact (topic %d, aux %d): %s",
				kind, r.Unit, r.Topic, r.Aux, buf)})
		default:
			return replies, size, fmt.Errorf("remote: batch unit %d has unknown status %d", i+1, status)
		}
	}
	return replies, size, nil
}

// FetchBatch implements the index packages' BatchFetcher over one client:
// one POST when the backend speaks v2, a per-unit v1 loop when it does not,
// and — after a mid-body failure — per-unit fetches for just the units the
// parsed prefix did not cover. Always returns len(reqs) replies.
func (f kindFetcher) FetchBatch(ctx context.Context, reqs []artifact.Request) []artifact.Reply {
	out := make([]artifact.Reply, len(reqs))
	replies, _, err := f.c.FetchBatch(ctx, f.kind, reqs)
	copy(out, replies)
	if err == nil {
		return out
	}
	for i := len(replies); i < len(reqs); i++ {
		if ctx.Err() != nil {
			out[i] = artifact.Reply{Err: ctx.Err()}
			continue
		}
		b, ferr := f.Fetch(ctx, reqs[i].Unit, reqs[i].Topic, reqs[i].Aux)
		out[i] = artifact.Reply{Payload: b, Err: ferr}
	}
	return out
}

// FetchBatch retrieves a whole round of artifacts from the replica group in
// (ideally) one round trip, with whole-batch failover: a replica that fails
// mid-batch keeps every reply it fully delivered, and only the UNSERVED
// REMAINDER is re-issued to the next replica. Per-unit semantics match
// Fetch: a not-served reply is terminal (the name resolves identically on
// every replica of the shard), a mismatching advertised index size discards
// that replica's entire answer, and a canceled context stops the rotation
// without blaming a replica. A v1-only replica serves the remainder through
// the group's per-unit failover Fetch. Always returns len(reqs) replies.
func (g *Group) FetchBatch(ctx context.Context, kind string, reqs []artifact.Request) []artifact.Reply {
	out := make([]artifact.Reply, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	pending := make([]int, len(reqs))
	for i := range pending {
		pending[i] = i
	}
	order := g.tryOrder(reqs[0].Topic)
	want := g.recordedSize(kind)
	var lastErr error
	for attempt, i := range order {
		if len(pending) == 0 {
			return out
		}
		sub := make([]artifact.Request, len(pending))
		for k, pi := range pending {
			sub[k] = reqs[pi]
		}
		replies, size, err := g.clients[i].FetchBatch(ctx, kind, sub)
		if errors.Is(err, errBatchUnsupported) {
			// A v1-only replica: serve the remainder per-unit through the
			// group's own Fetch, which keeps per-unit failover and size
			// checks intact on mixed-version fleets.
			for _, pi := range pending {
				b, _, ferr := g.Fetch(ctx, kind, reqs[pi].Unit, reqs[pi].Topic, reqs[pi].Aux)
				out[pi] = artifact.Reply{Payload: b, Err: ferr}
			}
			return out
		}
		if err == nil && size != 0 && want != 0 && size != want {
			// The replica answered cleanly but serves a DIFFERENT file; none
			// of its bytes may be used (parity), so the whole sub-batch stays
			// pending for the next replica.
			err = fmt.Errorf("%w: advertises a %d-byte %s index, group opened a %d-byte one", ErrReplicaMismatch, size, kind, want)
			replies = nil
		}
		served := false
		var rest []int
		for k, pi := range pending {
			if k < len(replies) {
				rep := replies[k]
				if rep.Err == nil {
					out[pi] = rep
					served = true
					continue
				}
				if errors.Is(rep.Err, ErrNotServed) {
					out[pi] = rep
					continue
				}
				lastErr = rep.Err
			}
			rest = append(rest, pi)
		}
		pending = rest
		if err != nil {
			if ctx.Err() != nil {
				// The caller gave up; do not blame the replica, do not keep trying.
				for _, pi := range pending {
					out[pi] = artifact.Reply{Err: err}
				}
				return out
			}
			g.observe(i, err)
			lastErr = err
		} else {
			g.observe(i, nil)
		}
		if served && attempt > 0 {
			g.failovers.Add(1)
		}
		if len(pending) > 0 && attempt < len(order)-1 {
			g.retries.Add(1)
		}
	}
	for _, pi := range pending {
		out[pi] = artifact.Reply{Err: fmt.Errorf("remote: all %d replicas failed the batch, last: %w", len(order), lastErr)}
	}
	return out
}

// FetchBatch implements the index packages' BatchFetcher over the group.
func (f groupFetcher) FetchBatch(ctx context.Context, reqs []artifact.Request) []artifact.Reply {
	return f.g.FetchBatch(ctx, f.kind, reqs)
}
