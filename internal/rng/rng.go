// Package rng provides the deterministic random-number machinery used by
// every sampler in the repository: a splittable 64-bit generator
// (xoshiro256** seeded through splitmix64) and Vose's alias method for O(1)
// weighted sampling.
//
// All experiments in the paper depend on sampling enormous numbers of
// reverse-reachable sets; determinism (seed in, identical index out) is what
// makes the index formats testable byte-for-byte and the benchmarks
// repeatable, so math/rand is deliberately not used.
package rng

import "math"

// Source is a xoshiro256** pseudo-random generator. The zero value is not
// usable; construct with New. It intentionally mirrors the subset of
// math/rand's API the samplers need, but is splittable and allocation-free.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from seed via splitmix64, so that nearby seeds
// produce unrelated streams.
func New(seed uint64) *Source {
	var s Source
	s.Seed(seed)
	return &s
}

// Seed resets the generator state from seed.
func (s *Source) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	s.s0, s.s1, s.s2, s.s3 = next(), next(), next(), next()
	// xoshiro must not start in the all-zero state.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 0x9E3779B97F4A7C15
	}
}

// Split derives an independent child generator from the current state.
// The parent is advanced, so successive Splits yield distinct children.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xA5A5A5A55A5A5A5A)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Uint32 returns the next 32 pseudo-random bits.
func (s *Source) Uint32() uint32 { return uint32(s.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Rejection sampling to remove modulo bias.
	if n&(n-1) == 0 { // power of two
		return s.Uint64() & (n - 1)
	}
	max := math.MaxUint64 - math.MaxUint64%n
	for {
		v := s.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
