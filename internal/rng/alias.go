package rng

import (
	"errors"
	"fmt"
)

// Alias is a Vose alias table supporting O(1) sampling from a fixed discrete
// distribution over {0, ..., n-1}. The paper's discriminative WRIS sampling
// (Eqn 3 / Eqn 7) picks root vertices with probability ps(v,w) =
// tf_{w,v} / Σ_v tf_{w,v}; with hundreds of thousands of RR sets per keyword
// this pick is on the hot path, so linear or binary-search CDF sampling is
// not acceptable.
type Alias struct {
	prob  []float64
	alias []int32
	n     int
	total float64
}

// ErrEmptyDistribution is returned when no weight is positive.
var ErrEmptyDistribution = errors.New("rng: alias table needs at least one positive weight")

// NewAlias builds an alias table for the given non-negative weights.
// Weights need not be normalized. Negative or NaN weights are rejected.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, ErrEmptyDistribution
	}
	var total float64
	for i, w := range weights {
		if w < 0 || w != w {
			return nil, fmt.Errorf("rng: weight %d is invalid (%v)", i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, ErrEmptyDistribution
	}
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
		n:     n,
		total: total,
	}
	// Vose's algorithm: scale weights to mean 1, then pair underfull and
	// overfull buckets.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[l] = scaled[l]
		a.alias[l] = g
		scaled[g] = (scaled[g] + scaled[l]) - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, g := range large {
		a.prob[g] = 1
	}
	for _, l := range small { // numerical leftovers
		a.prob[l] = 1
	}
	return a, nil
}

// N returns the number of outcomes.
func (a *Alias) N() int { return a.n }

// Total returns the sum of the input weights.
func (a *Alias) Total() float64 { return a.total }

// Sample draws one index according to the table's distribution.
func (a *Alias) Sample(src *Source) int {
	i := src.Intn(a.n)
	if src.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// Prob returns the probability of outcome i under the table's distribution.
func (a *Alias) Prob(i int) float64 {
	// Reconstructing exact probabilities from the table is lossy; expose the
	// normalized input weight instead via total bookkeeping. Callers that
	// need probabilities should keep the weight slice; this helper exists
	// for tests validating table construction.
	var p float64
	p = a.prob[i] / float64(a.n)
	for j := 0; j < a.n; j++ {
		if int(a.alias[j]) == i && a.prob[j] < 1 {
			p += (1 - a.prob[j]) / float64(a.n)
		}
	}
	return p
}
