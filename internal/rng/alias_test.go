package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAliasRejectsBadInput(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
	if _, err := NewAlias([]float64{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewAlias([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN weight accepted")
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a, err := NewAlias([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	s := New(4)
	for i := 0; i < 100; i++ {
		if a.Sample(s) != 0 {
			t.Fatal("single-outcome table sampled nonzero index")
		}
	}
}

func TestAliasMatchesDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4, 0, 10}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	s := New(17)
	const n = 400000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[a.Sample(s)]++
	}
	if counts[4] != 0 {
		t.Fatalf("zero-weight outcome sampled %d times", counts[4])
	}
	var chi2 float64
	for i, w := range weights {
		if w == 0 {
			continue
		}
		expected := w / a.Total() * n
		d := float64(counts[i]) - expected
		chi2 += d * d / expected
	}
	// 4 dof, 99.9% critical value ~18.5.
	if chi2 > 18.5 {
		t.Fatalf("alias sampling chi2 = %v (counts %v)", chi2, counts)
	}
}

func TestAliasProbReconstruction(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range weights {
		want := w / 10.0
		if got := a.Prob(i); math.Abs(got-want) > 1e-9 {
			t.Fatalf("Prob(%d) = %v, want %v", i, got, want)
		}
	}
}

// Property: for arbitrary positive weight vectors the reconstructed
// probabilities equal the normalized weights.
func TestAliasProbProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 40 {
			return true
		}
		weights := make([]float64, len(raw))
		var total float64
		for i, r := range raw {
			weights[i] = float64(r%1000) + 1
			total += weights[i]
		}
		a, err := NewAlias(weights)
		if err != nil {
			return false
		}
		for i, w := range weights {
			if math.Abs(a.Prob(i)-w/total) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAliasSample(b *testing.B) {
	weights := make([]float64, 100000)
	s := New(2)
	for i := range weights {
		weights[i] = s.Float64() + 0.01
	}
	a, err := NewAlias(weights)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = a.Sample(s)
	}
	_ = sink
}
