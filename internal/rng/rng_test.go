package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 coincided %d/100 times", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical streams")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnUniformity(t *testing.T) {
	s := New(99)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[s.Intn(buckets)]++
	}
	// Chi-square with 9 dof; 99.9% critical value ~27.9.
	expected := float64(n) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.9 {
		t.Fatalf("Intn uniformity chi2 = %v (counts %v)", chi2, counts)
	}
}

func TestBernoulli(t *testing.T) {
	s := New(5)
	if s.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !s.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical rate %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(8)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	s := New(13)
	xs := []int{1, 2, 2, 3, 5, 8, 13}
	orig := map[int]int{}
	for _, x := range xs {
		orig[x]++
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := map[int]int{}
	for _, x := range xs {
		got[x]++
	}
	for k, v := range orig {
		if got[k] != v {
			t.Fatalf("shuffle changed multiset: %v", xs)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = s.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = s.Intn(1000003)
	}
	_ = sink
}
