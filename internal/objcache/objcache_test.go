package objcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetOrLoadBasics(t *testing.T) {
	c := New(1 << 10)
	key := Key{Region: 1, Topic: 7, Aux: 30}
	loads := 0
	load := func() (any, int64, error) {
		loads++
		return "decoded", 8, nil
	}
	v, hit, err := c.GetOrLoad(key, load)
	if err != nil || hit || v != "decoded" {
		t.Fatalf("first load: v=%v hit=%v err=%v", v, hit, err)
	}
	v, hit, err = c.GetOrLoad(key, load)
	if err != nil || !hit || v != "decoded" {
		t.Fatalf("second load: v=%v hit=%v err=%v", v, hit, err)
	}
	if loads != 1 {
		t.Fatalf("loader ran %d times", loads)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.BytesCached != 8 {
		t.Fatalf("stats %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", s.HitRate())
	}
}

func TestKeysAreDistinct(t *testing.T) {
	c := New(1 << 10)
	for _, k := range []Key{
		{Region: 0, Topic: 1, Aux: 0},
		{Region: 1, Topic: 1, Aux: 0},
		{Region: 0, Topic: 2, Aux: 0},
		{Region: 0, Topic: 1, Aux: 5}, // same keyword, different θ-prefix
	} {
		k := k
		_, hit, err := c.GetOrLoad(k, func() (any, int64, error) { return k, 4, nil })
		if err != nil || hit {
			t.Fatalf("key %+v unexpectedly hit", k)
		}
	}
	if s := c.Stats(); s.Entries != 4 || s.Misses != 4 {
		t.Fatalf("stats %+v", s)
	}
}

func TestBudgetEviction(t *testing.T) {
	c := New(100)
	for i := 0; i < 10; i++ {
		key := Key{Topic: int32(i)}
		if _, _, err := c.GetOrLoad(key, func() (any, int64, error) { return i, 30, nil }); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.BytesCached > 100 {
		t.Fatalf("over budget: %+v", s)
	}
	if s.Entries != 3 || s.Evictions != 7 {
		t.Fatalf("stats %+v", s)
	}
	// Most recently used keys survive.
	for i := 7; i < 10; i++ {
		_, hit, _ := c.GetOrLoad(Key{Topic: int32(i)}, func() (any, int64, error) { return i, 30, nil })
		if !hit {
			t.Fatalf("recently used key %d evicted", i)
		}
	}
}

func TestOversizeAndZeroBudget(t *testing.T) {
	c := New(10)
	if _, _, err := c.GetOrLoad(Key{Topic: 1}, func() (any, int64, error) { return "big", 11, nil }); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("oversize value cached: %+v", s)
	}
	z := New(0)
	loads := 0
	for i := 0; i < 2; i++ {
		if _, _, err := z.GetOrLoad(Key{Topic: 2}, func() (any, int64, error) { loads++; return 1, 1, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if loads != 2 {
		t.Fatalf("zero-budget cache stored a value (loads=%d)", loads)
	}
}

func TestFailedLoadNotCached(t *testing.T) {
	c := New(1 << 10)
	boom := errors.New("boom")
	if _, _, err := c.GetOrLoad(Key{Topic: 3}, func() (any, int64, error) { return nil, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The failure is not cached; the next call retries and succeeds.
	v, hit, err := c.GetOrLoad(Key{Topic: 3}, func() (any, int64, error) { return "ok", 2, nil })
	if err != nil || hit || v != "ok" {
		t.Fatalf("retry: v=%v hit=%v err=%v", v, hit, err)
	}
}

// TestSingleflight proves that N concurrent lookups of one missing key run
// the loader exactly once and all observe its result (run under -race).
func TestSingleflight(t *testing.T) {
	c := New(1 << 20)
	var loads atomic.Int64
	release := make(chan struct{})
	const goroutines = 16
	var wg sync.WaitGroup
	var sharedHits atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, hit, err := c.GetOrLoad(Key{Region: 2, Topic: 9}, func() (any, int64, error) {
				loads.Add(1)
				<-release // hold every other goroutine in the flight
				return "once", 4, nil
			})
			if err != nil || v != "once" {
				t.Errorf("v=%v err=%v", v, err)
			}
			if hit {
				sharedHits.Add(1)
			}
		}()
	}
	// Let the goroutines pile onto the flight, then release the loader.
	for c.Stats().Shared < goroutines-1 {
	}
	close(release)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("loader ran %d times for %d concurrent callers", n, goroutines)
	}
	if sharedHits.Load() != goroutines-1 {
		t.Fatalf("%d shared hits, want %d", sharedHits.Load(), goroutines-1)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Shared != goroutines-1 {
		t.Fatalf("stats %+v", s)
	}
}

// TestConcurrentMixedKeys hammers the cache with overlapping keys under
// -race: every result must match its key's loader output.
func TestConcurrentMixedKeys(t *testing.T) {
	c := New(512) // small budget forces concurrent evictions
	const goroutines, rounds, keys = 8, 200, 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				topic := int32((g + i) % keys)
				want := fmt.Sprintf("val-%d", topic)
				v, _, err := c.GetOrLoad(Key{Topic: topic}, func() (any, int64, error) {
					return want, 64, nil
				})
				if err != nil || v != want {
					t.Errorf("topic %d: v=%v err=%v", topic, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s := c.Stats(); s.BytesCached > 512 {
		t.Fatalf("over budget after concurrency: %+v", s)
	}
}

func TestPurge(t *testing.T) {
	c := New(1 << 10)
	if _, _, err := c.GetOrLoad(Key{Topic: 1}, func() (any, int64, error) { return 1, 8, nil }); err != nil {
		t.Fatal(err)
	}
	c.Purge()
	if s := c.Stats(); s.Entries != 0 || s.BytesCached != 0 || s.Misses != 1 {
		t.Fatalf("post-purge stats %+v", s)
	}
	_, hit, _ := c.GetOrLoad(Key{Topic: 1}, func() (any, int64, error) { return 1, 8, nil })
	if hit {
		t.Fatal("purged entry still hit")
	}
}

// TestLoaderPanicDoesNotWedgeKey: a panicking loader must retire its flight
// (waiters unblock with an error, the panic propagates to the loader's
// caller) and leave the key loadable afterwards.
func TestLoaderPanicDoesNotWedgeKey(t *testing.T) {
	c := New(1 << 10)
	key := Key{Topic: 42}
	entered := make(chan struct{})

	waitErr := make(chan error, 1)
	go func() {
		<-entered // join the flight only once the loader is inside
		_, _, err := c.GetOrLoad(key, func() (any, int64, error) { return "waiter", 1, nil })
		waitErr <- err
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("loader panic did not propagate")
			}
		}()
		c.GetOrLoad(key, func() (any, int64, error) {
			close(entered)
			for c.Stats().Shared == 0 {
				time.Sleep(time.Millisecond) // wait for the waiter to join
			}
			panic("decode exploded")
		})
	}()
	select {
	case err := <-waitErr:
		if err == nil {
			t.Fatal("waiter of a panicked flight got a nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter wedged on a panicked flight")
	}
	// The key must be loadable again.
	v, hit, err := c.GetOrLoad(key, func() (any, int64, error) { return "ok", 2, nil })
	if err != nil || hit || v != "ok" {
		t.Fatalf("retry after panic: v=%v hit=%v err=%v", v, hit, err)
	}
}
