package objcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNewShardedRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 16}, {64, 64},
	} {
		if got := NewSharded(1<<20, tc.n).Shards(); got != tc.want {
			t.Errorf("NewSharded(_, %d).Shards() = %d, want %d", tc.n, got, tc.want)
		}
	}
	auto := NewSharded(1<<20, 0).Shards()
	if auto < 1 || auto&(auto-1) != 0 {
		t.Fatalf("auto shard count %d is not a positive power of two", auto)
	}
	if New(1<<20).Shards() != 1 {
		t.Fatal("New must stay single-shard (exact LRU semantics)")
	}
}

// TestShardedKeysSpread sanity-checks the key hash: distinct topics and
// partition indexes must not all collapse onto one shard.
func TestShardedKeysSpread(t *testing.T) {
	c := NewSharded(1<<20, 8)
	seen := map[*shard]bool{}
	for topic := int32(0); topic < 64; topic++ {
		for aux := int64(0); aux < 4; aux++ {
			seen[c.shardFor(Key{Region: 1, Topic: topic, Aux: aux})] = true
		}
	}
	if len(seen) < 4 {
		t.Fatalf("256 keys landed on only %d of 8 shards", len(seen))
	}
}

// TestShardedConcurrentGetAddEvict hammers a small sharded cache from many
// goroutines (run under -race): values must always match their key's loader,
// and no shard may exceed its budget share.
func TestShardedConcurrentGetAddEvict(t *testing.T) {
	const budget = 4096
	c := NewSharded(budget, 8)
	const goroutines, rounds, keys = 16, 300, 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				topic := int32((g*7 + i) % keys)
				k := Key{Region: Region(i % 2), Topic: topic}
				want := fmt.Sprintf("val-%d-%d", k.Region, topic)
				v, _, err := c.GetOrLoad(k, func() (any, int64, error) {
					return want, 64, nil
				})
				if err != nil || v != want {
					t.Errorf("key %+v: v=%v err=%v", k, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.BytesCached > budget {
		t.Fatalf("over budget after concurrency: %+v", s)
	}
	if s.Hits+s.Misses+s.Shared != goroutines*rounds {
		t.Fatalf("lookup accounting lost calls: %+v", s)
	}
	for i, sh := range c.shards {
		sh.mu.Lock()
		used, max := sh.used, sh.budget
		sh.mu.Unlock()
		if used > max {
			t.Fatalf("shard %d over its budget: %d > %d", i, used, max)
		}
	}
}

// TestShardedSingleflight: concurrent lookups of one missing key collapse to
// a single load even though other keys (on other shards) load in parallel.
func TestShardedSingleflight(t *testing.T) {
	c := NewSharded(1<<20, 8)
	hot := Key{Region: 1, Topic: 99}
	var hotLoads atomic.Int64
	release := make(chan struct{})

	const waiters = 12
	var wg sync.WaitGroup
	for g := 0; g < waiters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.GetOrLoad(hot, func() (any, int64, error) {
				hotLoads.Add(1)
				<-release
				return "hot", 8, nil
			})
			if err != nil || v != "hot" {
				t.Errorf("hot: v=%v err=%v", v, err)
			}
		}()
	}
	// While the hot flight is held open, other keys must still be loadable:
	// the flight must not pin any lock that other shards (or even the same
	// shard's map) need.
	for c.Stats().Shared < waiters-1 {
	}
	for topic := int32(0); topic < 16; topic++ {
		if _, _, err := c.GetOrLoad(Key{Region: 0, Topic: topic}, func() (any, int64, error) {
			return topic, 8, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	wg.Wait()
	if n := hotLoads.Load(); n != 1 {
		t.Fatalf("hot loader ran %d times for %d concurrent callers", n, waiters)
	}
	s := c.Stats()
	if s.Shared != waiters-1 {
		t.Fatalf("stats %+v, want %d shared", s, waiters-1)
	}
}

// TestShardedStatsAggregation inserts a known population across shards and
// checks the aggregated snapshot adds up.
func TestShardedStatsAggregation(t *testing.T) {
	c := NewSharded(1<<20, 4)
	const n = 32
	for topic := int32(0); topic < n; topic++ {
		if _, _, err := c.GetOrLoad(Key{Topic: topic}, func() (any, int64, error) {
			return topic, 10, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for topic := int32(0); topic < n; topic += 2 {
		_, hit, err := c.GetOrLoad(Key{Topic: topic}, func() (any, int64, error) {
			return topic, 10, nil
		})
		if err != nil || !hit {
			t.Fatalf("topic %d not cached (hit=%v err=%v)", topic, hit, err)
		}
	}
	s := c.Stats()
	if s.Misses != n || s.Hits != n/2 || s.Entries != n || s.BytesCached != n*10 {
		t.Fatalf("aggregated stats %+v", s)
	}
	if s.BudgetBytes != 1<<20 {
		t.Fatalf("budget reports the per-shard slice, not the total: %+v", s)
	}
	c.Purge()
	if s := c.Stats(); s.Entries != 0 || s.BytesCached != 0 || s.Misses != n {
		t.Fatalf("post-purge stats %+v", s)
	}
}

// TestRebalanceShiftsBudgetTowardHotRegion: after one region earns far more
// hits per byte than another, Rebalance must give it the larger target, and
// eviction must then sacrifice the cold region even when plain LRU would
// have evicted the hot one.
func TestRebalanceShiftsBudgetTowardHotRegion(t *testing.T) {
	c := New(1000) // single shard: deterministic LRU order
	load := func(r Region, topic int32) {
		if _, _, err := c.GetOrLoad(Key{Region: r, Topic: topic}, func() (any, int64, error) {
			return topic, 100, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := int32(0); i < 5; i++ {
		load(0, i) // hot region
	}
	for i := int32(0); i < 5; i++ {
		load(1, 100+i) // cold region
	}
	// Region 0 earns many hits; region 1 is touched once per entry, LAST, so
	// its entries sit at the LRU front and plain LRU would evict region 0.
	for round := 0; round < 10; round++ {
		for i := int32(0); i < 5; i++ {
			load(0, i)
		}
	}
	for i := int32(0); i < 5; i++ {
		load(1, 100+i)
	}
	c.Rebalance()
	if hot, cold := c.RegionTarget(0), c.RegionTarget(1); hot <= cold {
		t.Fatalf("hot region target %d not above cold %d", hot, cold)
	}
	// Inserting one more cold entry must evict a COLD entry (over target),
	// not the LRU-back hot one.
	load(1, 200)
	if used := c.RegionUsed(0); used != 500 {
		t.Fatalf("hot region shrank to %d bytes; eviction ignored targets", used)
	}
	if used := c.RegionUsed(1); used != 500 {
		t.Fatalf("cold region used %d bytes, want 500 after evicting its own", used)
	}
	s := c.Stats()
	if s.BytesCached > 1000 {
		t.Fatalf("over budget: %+v", s)
	}
}

// TestRebalanceSingleRegionUnconstrained: with one region in play the
// budgeter must not constrain anything.
func TestRebalanceSingleRegionUnconstrained(t *testing.T) {
	c := New(1000)
	for i := int32(0); i < 5; i++ {
		if _, _, err := c.GetOrLoad(Key{Region: 3, Topic: i}, func() (any, int64, error) {
			return i, 100, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.Rebalance()
	if c.hasTargets.Load() {
		t.Fatal("single-region cache grew targets")
	}
	if c.RegionTarget(3) != 0 {
		t.Fatalf("single region target %d, want 0", c.RegionTarget(3))
	}
}
