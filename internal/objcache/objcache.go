// Package objcache is the decoded-object tier of the two-tier cache
// described in DESIGN.md §4. Where diskio.CachedReader caches the raw bytes
// of index segments ("skip the disk"), objcache caches the *parsed*
// artifacts queries actually consume — RR-set batch prefixes, decoded
// inverted tables, IRR IP tables, decoded partition blocks — so a hot
// keyword also skips the varint+delta decode, which dominates query cost
// once segments are memory-resident.
//
// Entries are keyed by (region, topic, aux): region tags the artifact kind,
// topic the keyword, and aux the refinement — the θ-prefix length for RR-set
// prefixes, the partition index for IRR partition blocks, zero elsewhere.
// Each opened index file owns its own Cache, so file identity is implicit in
// the instance.
//
// Loads are collapsed with singleflight semantics: when N concurrent
// queries ask for the same missing key, exactly one runs the loader (paying
// the read + decode) and the other N−1 block and share the result. Under a
// Zipf keyword workload this is the difference between one decode per
// eviction and one decode per query.
//
// Cached values are shared between queries and MUST be treated as
// immutable; consumers trim to their private θ^Q_w by slicing, never by
// mutating.
package objcache

import (
	"container/list"
	"errors"
	"sync"
)

// errPanicked is what waiters of a flight observe when its loader panicked
// (the panic itself propagates to the goroutine that ran the loader).
var errPanicked = errors.New("objcache: loader panicked")

// Region tags the artifact kind of a cache key. The values are declared by
// the index packages; objcache only requires them to be distinct per cache
// instance.
type Region uint8

// Key identifies one decoded artifact within a cache instance.
type Key struct {
	// Region is the artifact kind (sets prefix, inverted table, IP table,
	// partition block, ...).
	Region Region
	// Topic is the keyword (topic ID) the artifact belongs to.
	Topic int32
	// Aux refines the key within (Region, Topic): the θ-prefix length for
	// RR-set prefixes, the partition index for partition blocks, 0 when the
	// region has a single artifact per keyword.
	Aux int64
}

// Stats is a snapshot of a Cache's counters.
type Stats struct {
	Hits        int64 // GetOrLoad calls served from a cached entry
	Misses      int64 // GetOrLoad calls that ran the loader
	Shared      int64 // GetOrLoad calls that joined another caller's in-flight load
	Evictions   int64 // entries dropped to stay within the budget
	Entries     int   // artifacts currently cached
	BytesCached int64 // estimated payload bytes currently cached
	BudgetBytes int64 // configured byte budget
}

// HitRate returns the fraction of lookups that avoided a decode (hits plus
// shared loads), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Shared
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Shared) / float64(total)
}

// entry is one cached artifact.
type entry struct {
	key  Key
	val  any
	size int64
}

// flight is one in-progress load other callers can join.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// Cache is a concurrency-safe byte-budget LRU of decoded artifacts with
// singleflight loading. The zero budget (or any budget <= 0) disables
// storage but keeps singleflight collapsing, which is still worth having
// under concurrency.
type Cache struct {
	budget int64

	mu      sync.Mutex
	ll      *list.List // front = most recently used
	entries map[Key]*list.Element
	flights map[Key]*flight
	used    int64
	stats   Stats
}

// New returns a cache with the given payload byte budget.
func New(budget int64) *Cache {
	return &Cache{
		budget:  budget,
		ll:      list.New(),
		entries: make(map[Key]*list.Element),
		flights: make(map[Key]*flight),
	}
}

// GetOrLoad returns the artifact for key, running load at most once across
// concurrent callers. hit is true when this caller did not run the loader
// (the value came from the cache or from another caller's in-flight load).
// The loader's size result is the value's estimated payload bytes, used for
// budget accounting. A failed load is not cached; every caller of that
// flight observes the same error.
func (c *Cache) GetOrLoad(key Key, load func() (val any, size int64, err error)) (val any, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		v := el.Value.(*entry).val
		c.mu.Unlock()
		return v, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.stats.Shared++
		c.mu.Unlock()
		<-f.done
		return f.val, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.stats.Misses++
	c.mu.Unlock()

	// The flight MUST be retired even if the loader panics — otherwise the
	// key is wedged forever and every future caller blocks on f.done (in a
	// server, each such caller pins a worker-pool slot). Waiters of a
	// panicked flight observe errPanicked; the panic itself propagates to
	// the loader's caller.
	var size int64
	finished := false
	defer func() {
		if !finished {
			f.err = errPanicked
		}
		c.mu.Lock()
		delete(c.flights, key)
		if finished && f.err == nil {
			c.insertLocked(key, f.val, size)
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.val, size, f.err = load()
	finished = true
	return f.val, false, f.err
}

// insertLocked stores val under key and evicts LRU entries until the budget
// holds. Values larger than the whole budget are not cached. A concurrent
// duplicate (possible when a flight for the same key failed and was retried)
// is refreshed in place.
func (c *Cache) insertLocked(key Key, val any, size int64) {
	if size < 0 {
		size = 0
	}
	if size > c.budget || c.budget <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*entry)
		c.used += size - ent.size
		ent.val, ent.size = val, size
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(&entry{key: key, val: val, size: size})
		c.used += size
	}
	for c.used > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.entries, ent.key)
		c.used -= ent.size
		c.stats.Evictions++
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.BytesCached = c.used
	s.BudgetBytes = c.budget
	return s
}

// Purge drops every cached artifact (counters are kept, in-flight loads are
// unaffected — they will reinsert on completion).
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.entries = make(map[Key]*list.Element)
	c.used = 0
}
