// Package objcache is the decoded-object tier of the two-tier cache
// described in DESIGN.md §4. Where diskio.CachedReader caches the raw bytes
// of index segments ("skip the disk"), objcache caches the *parsed*
// artifacts queries actually consume — RR-set batch prefixes, decoded
// inverted tables, IRR IP tables, decoded partition blocks — so a hot
// keyword also skips the varint+delta decode, which dominates query cost
// once segments are memory-resident.
//
// Entries are keyed by (region, topic, aux): region tags the artifact kind,
// topic the keyword, and aux the refinement — the θ-prefix length for RR-set
// prefixes, the partition index for IRR partition blocks, zero elsewhere.
// Each opened index file owns its own Cache, so file identity is implicit in
// the instance.
//
// The cache is internally SHARDED: keys hash to one of N power-of-two
// shards, each with its own lock, LRU list, byte budget, and singleflight
// group, so concurrent queries on different keywords never contend on one
// mutex. New returns a single-shard cache (exact global LRU, the shape the
// unit tests pin down); NewSharded picks the shard count, with 0 selecting a
// power of two near GOMAXPROCS — what the Engine uses for serving.
//
// Loads are collapsed with singleflight semantics: when N concurrent
// queries ask for the same missing key, exactly one runs the loader (paying
// the read + decode) and the other N−1 block and share the result. Under a
// Zipf keyword workload this is the difference between one decode per
// eviction and one decode per query.
//
// The byte budget is split adaptively between REGIONS: every rebalance
// interval the cache compares each region's recent hits per cached byte
// (θ-prefix batches are big but hot; partition blocks are small and
// long-tailed) and shifts per-region byte targets toward the regions that
// earn more hits per byte. Eviction then prefers LRU entries of regions over
// their target. Call Rebalance to force a recomputation; it also runs
// automatically every rebalanceEvery misses.
//
// Cached values are shared between queries and MUST be treated as
// immutable; consumers trim to their private θ^Q_w by slicing, never by
// mutating.
package objcache

import (
	"container/list"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// errPanicked is what waiters of a flight observe when its loader panicked
// (the panic itself propagates to the goroutine that ran the loader).
var errPanicked = errors.New("objcache: loader panicked")

// Region tags the artifact kind of a cache key. The values are declared by
// the index packages; objcache only requires them to be distinct per cache
// instance and below maxRegions.
type Region uint8

// maxRegions bounds the per-region accounting arrays. Each index declares
// two regions today; eight leaves room without bloating the shards.
const maxRegions = 8

// rebalanceEvery is the number of cache misses between automatic region
// budget rebalances.
const rebalanceEvery = 1024

// evictScanWindow bounds how far from the LRU end eviction searches for an
// entry of an over-target region before falling back to plain LRU.
const evictScanWindow = 8

// Key identifies one decoded artifact within a cache instance.
type Key struct {
	// Region is the artifact kind (sets prefix, inverted table, IP table,
	// partition block, ...).
	Region Region
	// Topic is the keyword (topic ID) the artifact belongs to.
	Topic int32
	// Aux refines the key within (Region, Topic): the θ-prefix length for
	// RR-set prefixes, the partition index for partition blocks, 0 when the
	// region has a single artifact per keyword.
	Aux int64
}

// hash spreads the key over shards (splitmix64-style finalizer over the
// three fields).
func (k Key) hash() uint64 {
	h := uint64(uint32(k.Topic))*0x9E3779B97F4A7C15 ^
		uint64(k.Aux)*0xBF58476D1CE4E5B9 ^
		uint64(k.Region)<<56
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// region clamps the key's region into the accounting range.
func (k Key) region() int { return int(k.Region) & (maxRegions - 1) }

// Stats is a snapshot of a Cache's counters, aggregated across shards.
type Stats struct {
	Hits        int64 // GetOrLoad calls served from a cached entry
	Misses      int64 // GetOrLoad calls that ran the loader
	Shared      int64 // GetOrLoad calls that joined another caller's in-flight load
	Evictions   int64 // entries dropped to stay within the budget
	Entries     int   // artifacts currently cached
	BytesCached int64 // estimated payload bytes currently cached
	BudgetBytes int64 // configured byte budget
}

// Add returns the element-wise sum of two snapshots — the aggregation
// serving layers use when one logical deployment spans several caches
// (per-shard engines, per-backend router caches).
func (s Stats) Add(o Stats) Stats {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Shared += o.Shared
	s.Evictions += o.Evictions
	s.Entries += o.Entries
	s.BytesCached += o.BytesCached
	s.BudgetBytes += o.BudgetBytes
	return s
}

// HitRate returns the fraction of lookups that avoided a decode (hits plus
// shared loads), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Shared
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Shared) / float64(total)
}

// entry is one cached artifact.
type entry struct {
	key  Key
	val  any
	size int64
}

// flight is one in-progress load other callers can join.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// shard is one independently locked slice of the cache: its own LRU, byte
// budget, singleflight group, and counters.
type shard struct {
	budget int64

	mu         sync.Mutex //kbtim:lockrank 20
	ll         *list.List // front = most recently used
	entries    map[Key]*list.Element
	flights    map[Key]*flight
	used       int64
	stats      Stats
	regionUsed [maxRegions]int64
	regionHits [maxRegions]int64 // cumulative, consumed as deltas by Rebalance
}

// Cache is a concurrency-safe byte-budget LRU of decoded artifacts with
// singleflight loading, sharded by key hash. The zero budget (or any budget
// <= 0) disables storage but keeps singleflight collapsing, which is still
// worth having under concurrency.
type Cache struct {
	budget int64
	shards []*shard
	mask   uint64

	// Adaptive region budgeting: targets[r] is region r's byte target
	// (0 = unconstrained), recomputed by Rebalance from recent hit density.
	targets    [maxRegions]atomic.Int64
	hasTargets atomic.Bool
	missTick   atomic.Int64

	rebalMu  sync.Mutex //kbtim:lockrank 10
	lastHits [maxRegions]int64
}

// New returns a single-shard cache with the given payload byte budget: one
// global LRU with exact eviction order, the right shape for tests and
// single-threaded tools. Serving paths should prefer NewSharded.
func New(budget int64) *Cache { return NewSharded(budget, 1) }

// minAutoShardBytes floors the per-shard budget when the shard count is
// auto-selected: an artifact larger than one shard's budget can never be
// cached, so auto mode trades some lock spreading for headroom (a decoded
// θ-prefix batch runs to megabytes). An explicit n is always honored.
const minAutoShardBytes = 8 << 20

// NewSharded returns a cache with the given total payload byte budget split
// over n power-of-two shards (n is rounded up; n == 0 selects a power of two
// near GOMAXPROCS, capped at 64 and reduced so each shard keeps at least
// minAutoShardBytes of budget). More shards mean less lock contention, a
// slightly less exact global LRU order, and a smaller largest-cacheable
// artifact (one shard's budget).
func NewSharded(budget int64, n int) *Cache {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
		if n > 64 {
			n = 64
		}
		for n > 1 && budget/int64(n) < minAutoShardBytes {
			n /= 2
		}
	}
	shards := 1
	for shards < n {
		shards <<= 1
	}
	c := &Cache{
		budget: budget,
		shards: make([]*shard, shards),
		mask:   uint64(shards - 1),
	}
	per := budget / int64(shards)
	for i := range c.shards {
		c.shards[i] = &shard{
			budget:  per,
			ll:      list.New(),
			entries: make(map[Key]*list.Element),
			flights: make(map[Key]*flight),
		}
	}
	return c
}

// Shards returns the shard count (a power of two).
func (c *Cache) Shards() int { return len(c.shards) }

// shardFor maps a key to its shard.
func (c *Cache) shardFor(key Key) *shard { return c.shards[key.hash()&c.mask] }

// Contains reports whether key is currently cached, without promoting the
// entry or touching the hit counters — a pure peek. Batch planners use it to
// peel cache-resident units off a fetch plan before going to the wire; the
// subsequent GetOrLoad still does the real (promoting, counted) lookup, so
// accounting is unchanged. An in-flight load does NOT count as cached: the
// planner cannot consume it, and joining the flight is GetOrLoad's job.
func (c *Cache) Contains(key Key) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	_, ok := s.entries[key]
	s.mu.Unlock()
	return ok
}

// GetOrLoad returns the artifact for key, running load at most once across
// concurrent callers. hit is true when this caller did not run the loader
// (the value came from the cache or from another caller's in-flight load).
// The loader's size result is the value's estimated payload bytes, used for
// budget accounting. A failed load is not cached; every caller of that
// flight observes the same error.
func (c *Cache) GetOrLoad(key Key, load func() (val any, size int64, err error)) (val any, hit bool, err error) {
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.ll.MoveToFront(el)
		s.stats.Hits++
		s.regionHits[key.region()]++
		v := el.Value.(*entry).val
		s.mu.Unlock()
		return v, true, nil
	}
	if f, ok := s.flights[key]; ok {
		s.stats.Shared++
		s.mu.Unlock()
		<-f.done
		return f.val, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.stats.Misses++
	s.mu.Unlock()
	if c.missTick.Add(1)%rebalanceEvery == 0 {
		c.Rebalance()
	}

	// The flight MUST be retired even if the loader panics — otherwise the
	// key is wedged forever and every future caller blocks on f.done (in a
	// server, each such caller pins a worker-pool slot). Waiters of a
	// panicked flight observe errPanicked; the panic itself propagates to
	// the loader's caller.
	var size int64
	finished := false
	defer func() {
		if !finished {
			f.err = errPanicked
		}
		s.mu.Lock()
		delete(s.flights, key)
		if finished && f.err == nil {
			c.insertLocked(s, key, f.val, size)
		}
		s.mu.Unlock()
		close(f.done)
	}()
	f.val, size, f.err = load()
	finished = true
	return f.val, false, f.err
}

// insertLocked stores val under key in shard s (whose mutex the caller
// holds) and evicts entries until the shard budget holds. Values larger than
// the shard budget are not cached. A concurrent duplicate (possible when a
// flight for the same key failed and was retried) is refreshed in place.
func (c *Cache) insertLocked(s *shard, key Key, val any, size int64) {
	if size < 0 {
		size = 0
	}
	if size > s.budget || s.budget <= 0 {
		return
	}
	r := key.region()
	if el, ok := s.entries[key]; ok {
		ent := el.Value.(*entry)
		s.used += size - ent.size
		s.regionUsed[r] += size - ent.size
		ent.val, ent.size = val, size
		s.ll.MoveToFront(el)
	} else {
		s.entries[key] = s.ll.PushFront(&entry{key: key, val: val, size: size})
		s.used += size
		s.regionUsed[r] += size
	}
	c.evictLocked(s)
}

// evictLocked drops entries from shard s until its budget holds. When region
// targets are set, a bounded window from the LRU end is searched for an
// entry of an over-target region first; plain LRU otherwise, so the cache
// degrades to exact LRU when regions are balanced or targets are unset.
func (c *Cache) evictLocked(s *shard) {
	nshards := int64(len(c.shards))
	for s.used > s.budget {
		victim := s.ll.Back()
		if victim == nil {
			break
		}
		if c.hasTargets.Load() {
			for el, scanned := victim, 0; el != nil && scanned < evictScanWindow; el, scanned = el.Prev(), scanned+1 {
				r := el.Value.(*entry).key.region()
				if t := c.targets[r].Load() / nshards; t > 0 && s.regionUsed[r] > t {
					victim = el
					break
				}
			}
		}
		ent := victim.Value.(*entry)
		s.ll.Remove(victim)
		delete(s.entries, ent.key)
		s.used -= ent.size
		s.regionUsed[ent.key.region()] -= ent.size
		s.stats.Evictions++
	}
}

// Rebalance recomputes the per-region byte targets from the hit density
// observed since the last rebalance: each region's weight is its recent hits
// per cached byte (Laplace-smoothed), and the total budget is split in
// weight proportion, blended 50/50 with the previous split so budgets move
// gradually. Regions that earn more hits per byte therefore grow at the
// expense of cold ones. Runs automatically every rebalanceEvery misses; safe
// to call concurrently with lookups.
func (c *Cache) Rebalance() {
	if c.budget <= 0 {
		return
	}
	c.rebalMu.Lock()
	defer c.rebalMu.Unlock()

	var hits, used [maxRegions]int64
	for _, s := range c.shards {
		s.mu.Lock()
		for r := 0; r < maxRegions; r++ {
			hits[r] += s.regionHits[r]
			used[r] += s.regionUsed[r]
		}
		s.mu.Unlock()
	}

	var weight [maxRegions]float64
	var total float64
	active := 0
	for r := 0; r < maxRegions; r++ {
		delta := hits[r] - c.lastHits[r]
		c.lastHits[r] = hits[r]
		if used[r] == 0 && delta == 0 {
			continue
		}
		active++
		// Hits per cached byte, Laplace-smoothed so empty-but-requested
		// regions neither explode nor vanish. A tiny dense region can earn
		// a target far beyond what it can fill; that is harmless — targets
		// only steer eviction preference, and an under-filled region simply
		// never gets preferentially evicted.
		weight[r] = (float64(delta) + 1) / (float64(used[r]) + 4096)
		total += weight[r]
	}
	if active < 2 || total <= 0 {
		// One region (or none) observed: budgets constrain nothing.
		c.hasTargets.Store(false)
		for r := 0; r < maxRegions; r++ {
			c.targets[r].Store(0)
		}
		return
	}
	for r := 0; r < maxRegions; r++ {
		if weight[r] == 0 {
			c.targets[r].Store(0)
			continue
		}
		raw := int64(float64(c.budget) * weight[r] / total)
		old := c.targets[r].Load()
		if old == 0 {
			old = raw
		}
		c.targets[r].Store((old + raw) / 2)
	}
	c.hasTargets.Store(true)
}

// RegionTarget returns region r's current byte target (0 when the adaptive
// budgeter has not constrained it).
func (c *Cache) RegionTarget(r Region) int64 {
	return c.targets[int(r)&(maxRegions-1)].Load()
}

// RegionUsed returns the bytes currently cached for region r across shards.
func (c *Cache) RegionUsed(r Region) int64 {
	ri := int(r) & (maxRegions - 1)
	var used int64
	for _, s := range c.shards {
		s.mu.Lock()
		used += s.regionUsed[ri]
		s.mu.Unlock()
	}
	return used
}

// Stats returns a snapshot of the cache counters aggregated across shards.
func (c *Cache) Stats() Stats {
	var out Stats
	for _, s := range c.shards {
		s.mu.Lock()
		out.Hits += s.stats.Hits
		out.Misses += s.stats.Misses
		out.Shared += s.stats.Shared
		out.Evictions += s.stats.Evictions
		out.Entries += len(s.entries)
		out.BytesCached += s.used
		s.mu.Unlock()
	}
	out.BudgetBytes = c.budget
	return out
}

// Purge drops every cached artifact (counters are kept, in-flight loads are
// unaffected — they will reinsert on completion).
func (c *Cache) Purge() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.ll.Init()
		s.entries = make(map[Key]*list.Element)
		s.used = 0
		s.regionUsed = [maxRegions]int64{}
		s.mu.Unlock()
	}
}
