package diskio

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testPayload(n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	return buf
}

func TestCachedReaderHitMiss(t *testing.T) {
	mem := NewMem(testPayload(256), nil)
	c := NewCachedReader(mem, 1024)

	a, err := c.ReadSegment(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.ReadSegment(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) || !bytes.Equal(a, testPayload(256)[:64]) {
		t.Fatal("cached read returned wrong bytes")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// The hit must not have touched the inner reader.
	if got := mem.Counter().Stats().Total(); got != 1 {
		t.Fatalf("inner reads = %d, want 1", got)
	}
	if s.Entries != 1 || s.BytesCached != 64 || s.BudgetBytes != 1024 {
		t.Fatalf("occupancy = %+v", s)
	}
	if hr := s.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %v", hr)
	}
}

func TestCachedReaderPrefixReads(t *testing.T) {
	payload := testPayload(256)
	c := NewCachedReader(NewMem(payload, nil), 1024)
	// A shorter read at a cached offset is served as a prefix slice — the
	// RR index reads query-dependent prefixes of each keyword's set region
	// at a fixed offset, so this is the cache's hot path.
	if _, err := c.ReadSegment(0, 64); err != nil {
		t.Fatal(err)
	}
	buf, err := c.ReadSegment(0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload[:32]) {
		t.Fatalf("prefix slice = %v", buf)
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// A longer read misses and replaces the shorter entry; the occupancy
	// must account the swap, and the shorter read then hits the new entry.
	long, err := c.ReadSegment(0, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(long, payload[:128]) {
		t.Fatalf("long read = %v", long)
	}
	if s := c.Stats(); s.Misses != 2 || s.Entries != 1 || s.BytesCached != 128 {
		t.Fatalf("stats after extend = %+v", s)
	}
	if _, err := c.ReadSegment(0, 64); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Hits != 2 {
		t.Fatalf("stats after re-read = %+v", s)
	}
}

func TestCachedReaderEviction(t *testing.T) {
	c := NewCachedReader(NewMem(testPayload(1024), nil), 128)
	// Three 64-byte segments only fit two at a time.
	for _, off := range []int64{0, 64, 128} {
		if _, err := c.ReadSegment(off, 64); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 || s.BytesCached != 128 {
		t.Fatalf("stats = %+v", s)
	}
	// Offset 0 was least recently used and must be gone (a miss), while 128
	// is still resident (a hit).
	if _, err := c.ReadSegment(128, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadSegment(0, 64); err != nil {
		t.Fatal(err)
	}
	s = c.Stats()
	if s.Hits != 1 || s.Misses != 4 {
		t.Fatalf("stats after LRU probe = %+v", s)
	}
}

func TestCachedReaderLRUOrderOnHit(t *testing.T) {
	c := NewCachedReader(NewMem(testPayload(1024), nil), 128)
	c.ReadSegment(0, 64)  // cache [0]
	c.ReadSegment(64, 64) // cache [64, 0]
	c.ReadSegment(0, 64)  // hit → [0, 64]
	c.ReadSegment(128, 64)
	// 64 was LRU and must have been evicted; 0 must survive.
	before := c.Stats().Hits
	c.ReadSegment(0, 64)
	if c.Stats().Hits != before+1 {
		t.Fatal("hit on segment 0 expected (should have been MRU)")
	}
	before = c.Stats().Misses
	c.ReadSegment(64, 64)
	if c.Stats().Misses != before+1 {
		t.Fatal("miss on segment 64 expected (should have been evicted)")
	}
}

func TestCachedReaderOverBudgetSegment(t *testing.T) {
	c := NewCachedReader(NewMem(testPayload(1024), nil), 16)
	if _, err := c.ReadSegment(0, 64); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Entries != 0 || s.BytesCached != 0 {
		t.Fatalf("over-budget segment was cached: %+v", s)
	}
	// Zero budget: pure pass-through.
	c0 := NewCachedReader(NewMem(testPayload(64), nil), 0)
	c0.ReadSegment(0, 8)
	c0.ReadSegment(0, 8)
	if s := c0.Stats(); s.Hits != 0 || s.Misses != 2 {
		t.Fatalf("zero-budget cache served a hit: %+v", s)
	}
}

func TestCachedReaderZeroLengthNotCounted(t *testing.T) {
	c := NewCachedReader(NewMem(testPayload(64), nil), 1024)
	s := NewScope(c)
	for i := 0; i < 2; i++ {
		if _, err := s.ReadSegment(8, 0); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("zero-length read touched the cache: %+v", st)
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("zero-length read recorded in scope: %+v", st)
	}
	// Bounds errors still surface through the zero-length fast path.
	if _, err := c.ReadSegment(100, 0); err == nil {
		t.Fatal("out-of-range zero-length read accepted")
	}
}

func TestCachedReaderErrorNotCached(t *testing.T) {
	c := NewCachedReader(NewMem(testPayload(64), nil), 1024)
	if _, err := c.ReadSegment(32, 64); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if s := c.Stats(); s.Entries != 0 || s.Misses != 0 {
		t.Fatalf("failed read was counted or cached: %+v", s)
	}
}

func TestCachedReaderPurge(t *testing.T) {
	c := NewCachedReader(NewMem(testPayload(256), nil), 1024)
	c.ReadSegment(0, 64)
	c.Purge()
	if s := c.Stats(); s.Entries != 0 || s.BytesCached != 0 {
		t.Fatalf("purge left entries: %+v", s)
	}
	c.ReadSegment(0, 64)
	if s := c.Stats(); s.Misses != 2 {
		t.Fatalf("read after purge should miss: %+v", s)
	}
}

func TestCachedReaderConcurrent(t *testing.T) {
	payload := testPayload(4096)
	c := NewCachedReader(NewMem(payload, nil), 512)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				off := int64(((g * 131) + i*17) % 4000)
				length := int64(1 + (i % 64))
				buf, err := c.ReadSegment(off, length)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(buf, payload[off:off+length]) {
					t.Errorf("corrupt read at [%d,%d)", off, off+length)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses != 8*500 {
		t.Fatalf("lost reads: %+v", s)
	}
	if s.BytesCached > 512 {
		t.Fatalf("budget exceeded: %+v", s)
	}
}

func TestScopePerQueryAccounting(t *testing.T) {
	shared := NewMem(testPayload(256), nil)
	s1, s2 := NewScope(shared), NewScope(shared)
	s1.ReadSegment(0, 16)
	s1.ReadSegment(16, 16) // sequential for s1
	s2.ReadSegment(100, 8) // unrelated scope
	st1, st2 := s1.Stats(), s2.Stats()
	if st1.RandomReads != 1 || st1.SequentialReads != 1 || st1.BytesRead != 32 {
		t.Fatalf("scope1 = %+v", st1)
	}
	if st2.RandomReads != 1 || st2.SequentialReads != 0 || st2.BytesRead != 8 {
		t.Fatalf("scope2 = %+v", st2)
	}
	// The shared counter still sees everything.
	if tot := shared.Counter().Stats(); tot.Total() != 3 || tot.BytesRead != 40 {
		t.Fatalf("shared = %+v", tot)
	}
}

func TestScopeThroughCache(t *testing.T) {
	cache := NewCachedReader(NewMem(testPayload(256), nil), 1024)
	s1 := NewScope(cache)
	s1.ReadSegment(0, 32) // miss: disk read + miss mark
	s1.ReadSegment(0, 32) // hit: no disk read
	st := s1.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Fatalf("scope cache counters = %+v", st)
	}
	if st.Total() != 1 || st.BytesRead != 32 {
		t.Fatalf("scope disk counters = %+v", st)
	}
	// A second scope hitting the warm cache performs zero disk I/O.
	s2 := NewScope(cache)
	s2.ReadSegment(0, 32)
	if st := s2.Stats(); st.Total() != 0 || st.CacheHits != 1 {
		t.Fatalf("warm scope = %+v", st)
	}
}

// TestZeroLengthAccountingParity pins the File/Mem accounting contract:
// zero-byte reads are not I/O for either implementation, and identical read
// sequences produce identical counters.
func TestZeroLengthAccountingParity(t *testing.T) {
	payload := testPayload(64)
	path := filepath.Join(t.TempDir(), "parity.bin")
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	file, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	mem := NewMem(payload, nil)

	type op struct {
		kind string // "at" | "seg"
		off  int64
		n    int64
	}
	steps := []struct {
		name string
		ops  []op
		want Stats
	}{
		{
			name: "zero-length ReadAt is not recorded",
			ops:  []op{{"at", 3, 0}},
			want: Stats{},
		},
		{
			name: "zero-length ReadSegment is not recorded",
			ops:  []op{{"seg", 3, 0}},
			want: Stats{},
		},
		{
			name: "plain reads count identically",
			ops:  []op{{"seg", 0, 8}, {"seg", 8, 8}, {"at", 32, 4}},
			want: Stats{SequentialReads: 1, RandomReads: 2, BytesRead: 20},
		},
		{
			name: "zero-length read does not break adjacency",
			ops:  []op{{"seg", 0, 8}, {"at", 20, 0}, {"seg", 8, 8}},
			want: Stats{SequentialReads: 1, RandomReads: 1, BytesRead: 16},
		},
	}
	for _, tc := range steps {
		t.Run(tc.name, func(t *testing.T) {
			for name, r := range map[string]interface {
				ReadAt(p []byte, off int64) (int, error)
				ReadSegment(off, length int64) ([]byte, error)
				Counter() *Counter
			}{"file": file, "mem": mem} {
				r.Counter().Reset()
				for _, o := range tc.ops {
					switch o.kind {
					case "at":
						if _, err := r.ReadAt(make([]byte, o.n), o.off); err != nil {
							t.Fatalf("%s: ReadAt(%d,%d): %v", name, o.off, o.n, err)
						}
					case "seg":
						if _, err := r.ReadSegment(o.off, o.n); err != nil {
							t.Fatalf("%s: ReadSegment(%d,%d): %v", name, o.off, o.n, err)
						}
					}
				}
				if got := r.Counter().Stats(); got != tc.want {
					t.Fatalf("%s: stats = %+v, want %+v", name, got, tc.want)
				}
			}
		})
	}
}
