package diskio

import (
	"container/list"
	"sync"
)

// CacheStats is a snapshot of a CachedReader's global counters.
type CacheStats struct {
	Hits        int64 // segment reads served from memory
	Misses      int64 // segment reads that went to the inner reader
	Evictions   int64 // entries dropped to stay within the budget
	Entries     int   // segments currently cached
	BytesCached int64 // payload bytes currently cached
	BudgetBytes int64 // configured byte budget
}

// HitRate returns Hits/(Hits+Misses), or 0 before any read.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// scopedReader is the optional extension CachedReader and Scope use to
// thread a per-query counter through a read without double-counting.
type scopedReader interface {
	readSegmentScoped(off, length int64, scope *Counter) ([]byte, error)
}

// Segments are keyed by offset alone: the underlying reader is immutable,
// so the bytes at [off, off+n) never change and a cached read at off serves
// every request at off of the same or shorter length as a slice. This
// matters for the RR index, whose per-keyword set region is read as a
// query-dependent prefix (same offset, varying length) — exact (off,len)
// keying would cache each prefix as an independent overlapping copy. A
// longer read at a cached offset replaces the shorter entry.
type cacheEntry struct {
	off  int64
	data []byte
}

// CachedReader is a concurrency-safe LRU segment cache in front of a
// Segmented reader. A hit returns the cached buffer without touching the
// inner reader (and therefore without counting as an I/O); a miss reads
// through, counts as usual, and caches the segment if it fits the budget.
//
// Returned buffers are shared between callers and MUST be treated as
// read-only — the index readers only ever decode from them.
type CachedReader struct {
	inner  Segmented
	budget int64

	mu      sync.Mutex //kbtim:lockrank 41
	ll      *list.List // front = most recently used
	entries map[int64]*list.Element
	used    int64
	stats   CacheStats
}

// NewCachedReader wraps inner with an LRU cache of at most budget payload
// bytes. A budget <= 0 disables caching (every read passes through).
func NewCachedReader(inner Segmented, budget int64) *CachedReader {
	return &CachedReader{
		inner:   inner,
		budget:  budget,
		ll:      list.New(),
		entries: make(map[int64]*list.Element),
	}
}

// ReadSegment implements Segmented.
func (c *CachedReader) ReadSegment(off, length int64) ([]byte, error) {
	return c.readSegmentScoped(off, length, nil)
}

func (c *CachedReader) readSegmentScoped(off, length int64, scope *Counter) ([]byte, error) {
	if length <= 0 {
		// Zero-byte reads are not I/O anywhere in this package; don't let
		// them pollute the hit/miss counters either. Delegate so bounds
		// errors still surface.
		if sr, ok := c.inner.(scopedReader); ok {
			return sr.readSegmentScoped(off, length, scope)
		}
		return c.inner.ReadSegment(off, length)
	}
	c.mu.Lock()
	if el, ok := c.entries[off]; ok {
		if data := el.Value.(*cacheEntry).data; int64(len(data)) >= length {
			c.ll.MoveToFront(el)
			c.stats.Hits++
			c.mu.Unlock()
			if scope != nil {
				scope.RecordHit()
			}
			// Full-slice expression: the caller must not be able to append
			// into the cached buffer's spare capacity.
			return data[:length:length], nil
		}
	}
	c.mu.Unlock()

	var buf []byte
	var err error
	if sr, ok := c.inner.(scopedReader); ok {
		buf, err = sr.readSegmentScoped(off, length, scope)
	} else {
		buf, err = c.inner.ReadSegment(off, length)
		if err == nil && scope != nil && length > 0 {
			scope.Record(off, int(length))
		}
	}
	if err != nil {
		// Failed reads are neither hits nor misses: they could never have
		// been served from cache, and counting them would let the global
		// Misses drift from the sum of per-scope CacheMisses.
		return nil, err
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	if scope != nil {
		scope.RecordMiss()
	}
	c.insert(off, buf)
	return buf, nil
}

// insert caches buf at off, evicting least-recently-used entries until the
// budget holds. Segments larger than the whole budget are not cached, and a
// shorter buffer never displaces a longer one already cached at the same
// offset.
func (c *CachedReader) insert(off int64, buf []byte) {
	size := int64(len(buf))
	if size > c.budget || c.budget <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[off]; ok {
		// Already cached by a concurrent miss or a shorter prefix read;
		// keep whichever buffer is longer.
		ent := el.Value.(*cacheEntry)
		if int64(len(ent.data)) >= size {
			return
		}
		c.used -= int64(len(ent.data))
		ent.data = buf
		c.ll.MoveToFront(el)
	} else {
		c.entries[off] = c.ll.PushFront(&cacheEntry{off: off, data: buf})
	}
	c.used += size
	for c.used > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.entries, ent.off)
		c.used -= int64(len(ent.data))
		c.stats.Evictions++
	}
}

// Size implements Segmented.
func (c *CachedReader) Size() int64 { return c.inner.Size() }

// Counter implements Segmented, returning the inner reader's counter (which
// only sees misses — cache hits are free).
func (c *CachedReader) Counter() *Counter { return c.inner.Counter() }

// Stats returns a snapshot of the cache counters.
func (c *CachedReader) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.BytesCached = c.used
	s.BudgetBytes = c.budget
	return s
}

// Purge drops every cached segment (counters are kept).
func (c *CachedReader) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.entries = make(map[int64]*list.Element)
	c.used = 0
}

// Scope wraps a Segmented with a private Counter so one query's I/O can be
// measured exactly even while other queries share the same reader. Reads
// pass straight through to the shared reader (and its shared counter); the
// scope's counter additionally records this scope's reads only, with its
// own sequential/random adjacency and per-scope cache hit/miss counts.
type Scope struct {
	r Segmented
	c *Counter
}

// NewScope returns a fresh per-query view of r.
func NewScope(r Segmented) *Scope { return &Scope{r: r, c: NewCounter()} }

// ReadSegment implements Segmented.
func (s *Scope) ReadSegment(off, length int64) ([]byte, error) {
	if sr, ok := s.r.(scopedReader); ok {
		return sr.readSegmentScoped(off, length, s.c)
	}
	buf, err := s.r.ReadSegment(off, length)
	if err == nil && length > 0 {
		s.c.Record(off, int(length))
	}
	return buf, err
}

// Size implements Segmented.
func (s *Scope) Size() int64 { return s.r.Size() }

// Counter implements Segmented, returning the scope-private counter.
func (s *Scope) Counter() *Counter { return s.c }

// Stats returns the I/O accumulated through this scope.
func (s *Scope) Stats() Stats { return s.c.Stats() }

var (
	_ Segmented    = (*CachedReader)(nil)
	_ Segmented    = (*Scope)(nil)
	_ scopedReader = (*File)(nil)
	_ scopedReader = (*Mem)(nil)
	_ scopedReader = (*CachedReader)(nil)
)
