package diskio

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func TestCounterSequentialVsRandom(t *testing.T) {
	c := NewCounter()
	c.Record(0, 10)  // first read: random (seek from nowhere)
	c.Record(10, 10) // continues: sequential
	c.Record(20, 5)  // continues: sequential
	c.Record(100, 5) // jump: random
	c.Record(105, 1) // continues: sequential
	s := c.Stats()
	if s.RandomReads != 2 || s.SequentialReads != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BytesRead != 31 {
		t.Fatalf("bytes = %d", s.BytesRead)
	}
	if s.Total() != 5 {
		t.Fatalf("total = %d", s.Total())
	}
}

func TestCounterReset(t *testing.T) {
	c := NewCounter()
	c.Record(0, 4)
	c.Reset()
	if c.Stats() != (Stats{}) {
		t.Fatal("reset did not clear stats")
	}
	c.Record(4, 4) // after reset, adjacency is forgotten → random
	if c.Stats().RandomReads != 1 {
		t.Fatal("adjacency survived reset")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{SequentialReads: 1, RandomReads: 2, BytesRead: 3}
	b := Stats{SequentialReads: 10, RandomReads: 20, BytesRead: 30}
	want := Stats{SequentialReads: 11, RandomReads: 22, BytesRead: 33}
	if a.Add(b) != want {
		t.Fatalf("Add = %+v", a.Add(b))
	}
}

func TestCounterConcurrentSafety(t *testing.T) {
	c := NewCounter()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Record(int64(j), 1)
			}
		}()
	}
	wg.Wait()
	if c.Stats().Total() != 8000 {
		t.Fatalf("lost records: %+v", c.Stats())
	}
}

func TestMemReadSegment(t *testing.T) {
	data := []byte{0, 1, 2, 3, 4, 5, 6, 7}
	m := NewMem(data, nil)
	seg, err := m.ReadSegment(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seg, []byte{2, 3, 4}) {
		t.Fatalf("segment = %v", seg)
	}
	if m.Size() != 8 {
		t.Fatalf("size = %d", m.Size())
	}
	if _, err := m.ReadSegment(6, 4); err == nil {
		t.Fatal("overlong segment accepted")
	}
	if _, err := m.ReadSegment(-1, 2); err == nil {
		t.Fatal("negative offset accepted")
	}
	if m.Counter().Stats().Total() != 1 {
		t.Fatalf("counted %d ops", m.Counter().Stats().Total())
	}
}

func TestMemReadAt(t *testing.T) {
	m := NewMem([]byte{9, 8, 7}, nil)
	buf := make([]byte, 2)
	n, err := m.ReadAt(buf, 1)
	if err != nil || n != 2 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if buf[0] != 8 || buf[1] != 7 {
		t.Fatalf("buf = %v", buf)
	}
	if _, err := m.ReadAt(buf, 5); err == nil {
		t.Fatal("read past end accepted")
	}
	// Short read at the boundary returns EOF.
	if n, err := m.ReadAt(make([]byte, 4), 1); n != 2 || err == nil {
		t.Fatalf("boundary read = %d, %v", n, err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg.bin")
	payload := []byte("hello, indexed world")
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCounter()
	f, err := Open(path, c)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Size() != int64(len(payload)) {
		t.Fatalf("size = %d", f.Size())
	}
	seg, err := f.ReadSegment(7, 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(seg) != "indexed" {
		t.Fatalf("segment %q", seg)
	}
	// Sequential continuation.
	if _, err := f.ReadSegment(14, 6); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.RandomReads != 1 || s.SequentialReads != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if _, err := f.ReadSegment(0, 100); err == nil {
		t.Fatal("oversized segment accepted")
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing"), nil); err == nil {
		t.Fatal("missing file opened")
	}
}
