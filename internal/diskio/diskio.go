// Package diskio wraps file access for the disk-based indexes and accounts
// for logical I/O operations, the metric behind Table 6 ("Number of I/O for
// IRR when varying Q.k") and the I/O-efficiency discussion of §6.3–6.5.
//
// Counting is logical, not physical: one contiguous segment read is one
// sequential I/O when it continues at the previous read's end offset, and
// one random I/O otherwise. This matches how the paper reasons about the
// two indexes — RR incurs one sequential I/O per query keyword (it streams
// θ^Q_w RR sets plus the whole inverted file), while IRR pays one random
// I/O per incrementally fetched partition — and makes the metric
// reproducible on any hardware.
package diskio

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// Stats is a snapshot of accumulated I/O counters. The read counters cover
// reads that actually reached the underlying medium; segments served from a
// CachedReader appear only in CacheHits.
type Stats struct {
	SequentialReads int64 // reads continuing at the previous offset
	RandomReads     int64 // reads requiring a seek
	BytesRead       int64
	CacheHits       int64 // segment reads served from a CachedReader
	CacheMisses     int64 // segment reads that fell through to the medium
}

// Total returns the total number of logical read operations (cache hits
// excluded: they cost no I/O).
func (s Stats) Total() int64 { return s.SequentialReads + s.RandomReads }

// Add returns the element-wise sum of two snapshots.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		SequentialReads: s.SequentialReads + o.SequentialReads,
		RandomReads:     s.RandomReads + o.RandomReads,
		BytesRead:       s.BytesRead + o.BytesRead,
		CacheHits:       s.CacheHits + o.CacheHits,
		CacheMisses:     s.CacheMisses + o.CacheMisses,
	}
}

// Counter accumulates I/O statistics. Safe for concurrent use.
type Counter struct {
	mu    sync.Mutex //kbtim:lockrank 40
	stats Stats
	last  int64 // end offset of the previous read, -1 initially
}

// NewCounter returns a fresh counter.
func NewCounter() *Counter { return &Counter{last: -1} }

// Record registers one read of n bytes at offset off.
func (c *Counter) Record(off int64, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if off == c.last {
		c.stats.SequentialReads++
	} else {
		c.stats.RandomReads++
	}
	c.stats.BytesRead += int64(n)
	c.last = off + int64(n)
}

// RecordHit registers one segment read served from cache. Hits do not touch
// the medium, so they count in no read bucket and leave adjacency alone.
func (c *Counter) RecordHit() {
	c.mu.Lock()
	c.stats.CacheHits++
	c.mu.Unlock()
}

// RecordMiss registers one segment read that fell through a cache to the
// medium (the read itself is accounted separately by Record).
func (c *Counter) RecordMiss() {
	c.mu.Lock()
	c.stats.CacheMisses++
	c.mu.Unlock()
}

// Stats returns the current snapshot.
func (c *Counter) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Reset zeroes the counters and forgets read adjacency.
func (c *Counter) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
	c.last = -1
}

// ReaderAt is the index access abstraction: positional reads plus size.
type ReaderAt interface {
	io.ReaderAt
	Size() int64
}

// File is a counted, read-only file. Close when done.
type File struct {
	f       *os.File
	size    int64
	counter *Counter
}

// Open opens path read-only and attaches the counter (which may be shared
// across files; pass nil for uncounted access).
func Open(path string, counter *Counter) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if counter == nil {
		counter = NewCounter()
	}
	return &File{f: f, size: st.Size(), counter: counter}, nil
}

// ReadAt implements io.ReaderAt with accounting. Zero-byte reads are not
// I/O and are never recorded (Mem.ReadAt matches).
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.f.ReadAt(p, off)
	if n > 0 {
		f.counter.Record(off, n)
	}
	return n, err
}

// ReadSegment reads exactly length bytes at off, in one counted operation.
// Safe for concurrent use: the read is positional (pread) and the counter
// locks internally.
func (f *File) ReadSegment(off, length int64) ([]byte, error) {
	return f.readSegmentScoped(off, length, nil)
}

// readSegmentScoped is ReadSegment recording into an optional extra
// per-scope counter alongside the file's own.
func (f *File) readSegmentScoped(off, length int64, scope *Counter) ([]byte, error) {
	if off < 0 || length < 0 || off+length > f.size {
		return nil, fmt.Errorf("diskio: segment [%d,%d) outside file of %d bytes", off, off+length, f.size)
	}
	buf := make([]byte, length)
	if _, err := io.ReadFull(io.NewSectionReader(f.f, off, length), buf); err != nil {
		return nil, err
	}
	if length > 0 {
		f.counter.Record(off, int(length))
		if scope != nil {
			scope.Record(off, int(length))
		}
	}
	return buf, nil
}

// Size implements ReaderAt.
func (f *File) Size() int64 { return f.size }

// Counter returns the attached counter.
func (f *File) Counter() *Counter { return f.counter }

// Close releases the file handle.
func (f *File) Close() error { return f.f.Close() }

// Mem is an in-memory ReaderAt with the same accounting, used by tests and
// by benchmark configurations that want to isolate CPU cost from the page
// cache. It implements the same interface as File.
type Mem struct {
	data    []byte
	counter *Counter
}

// NewMem wraps data; counter may be nil.
func NewMem(data []byte, counter *Counter) *Mem {
	if counter == nil {
		counter = NewCounter()
	}
	return &Mem{data: data, counter: counter}
}

// ReadAt implements io.ReaderAt with accounting. As with File.ReadAt, an
// I/O is recorded only when bytes actually move (n > 0), so the two
// implementations account identically.
func (m *Mem) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n > 0 {
		m.counter.Record(off, n)
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// ReadSegment reads exactly length bytes at off in one counted operation.
func (m *Mem) ReadSegment(off, length int64) ([]byte, error) {
	return m.readSegmentScoped(off, length, nil)
}

// readSegmentScoped is ReadSegment recording into an optional extra
// per-scope counter alongside the buffer's own.
func (m *Mem) readSegmentScoped(off, length int64, scope *Counter) ([]byte, error) {
	if off < 0 || length < 0 || off+length > int64(len(m.data)) {
		return nil, fmt.Errorf("diskio: segment [%d,%d) outside buffer of %d bytes", off, off+length, len(m.data))
	}
	buf := make([]byte, length)
	copy(buf, m.data[off:off+length])
	if length > 0 {
		m.counter.Record(off, int(length))
		if scope != nil {
			scope.Record(off, int(length))
		}
	}
	return buf, nil
}

// Size implements ReaderAt.
func (m *Mem) Size() int64 { return int64(len(m.data)) }

// Counter returns the attached counter.
func (m *Mem) Counter() *Counter { return m.counter }

// Segmented is the minimal interface the index readers need.
type Segmented interface {
	ReadSegment(off, length int64) ([]byte, error)
	Size() int64
	Counter() *Counter
}

var (
	_ Segmented = (*File)(nil)
	_ Segmented = (*Mem)(nil)
	_ ReaderAt  = (*File)(nil)
	_ ReaderAt  = (*Mem)(nil)
)

// Sub returns the element-wise difference s - o, for before/after deltas
// around a query.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		SequentialReads: s.SequentialReads - o.SequentialReads,
		RandomReads:     s.RandomReads - o.RandomReads,
		BytesRead:       s.BytesRead - o.BytesRead,
		CacheHits:       s.CacheHits - o.CacheHits,
		CacheMisses:     s.CacheMisses - o.CacheMisses,
	}
}
