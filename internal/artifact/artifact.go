// Package artifact holds the shared vocabulary of the batched artifact
// protocol: the (unit, topic, aux) request naming one raw index segment, the
// per-unit reply, and the per-query stash that carries batch-fetched payloads
// from the round planner to the decode path.
//
// It exists because the batch seam crosses package boundaries in both
// directions: internal/rrindex and internal/irrindex declare BatchFetcher
// interfaces over these types, and internal/remote implements them — one
// FetchBatch method can only satisfy both interfaces if the request and reply
// shapes live in a package below all three.
package artifact

import (
	"sync"

	"kbtim/internal/diskio"
)

// Request names one raw index artifact, relative to an index kind the caller
// has already bound (a fetcher is per-kind, so kind never appears here). The
// unit strings are the ones the index packages export (UnitSets, UnitInv,
// UnitIP, UnitPart, ...); aux is the unit-specific argument — θ-prefix length
// for "sets", partition index for "part", zero otherwise.
type Request struct {
	Unit  string
	Topic int
	Aux   int64
}

// Reply is the outcome of one Request within a batch: the raw payload bytes
// exactly as stored in the index file, or the error that unit produced. A
// batch isolates failures per unit — one missing keyword must not fail the
// round's other fetches.
type Reply struct {
	Payload []byte
	Err     error
}

// Stash is a per-query holding area for batch-fetched payloads: the round
// planner Puts every reply, and the decode path Takes each unit at the exact
// point it would otherwise have gone to the wire. Take removes the entry, so
// a payload is consumed (and its I/O accounted) exactly once, and anything
// left over is simply garbage-collected with the query.
//
// It is mutex-protected because speculative prefetch goroutines from a prior
// round may still be draining while the main goroutine stashes the next
// round's batch.
type Stash struct {
	mu sync.Mutex
	m  map[Request][]byte
}

// NewStash returns an empty stash.
func NewStash() *Stash {
	return &Stash{m: make(map[Request][]byte)}
}

// Put stores a payload for req, replacing any previous entry.
func (s *Stash) Put(req Request, payload []byte) {
	s.mu.Lock()
	s.m[req] = payload
	s.mu.Unlock()
}

// Take removes and returns the payload stored for req, if any.
func (s *Stash) Take(req Request) ([]byte, bool) {
	s.mu.Lock()
	b, ok := s.m[req]
	if ok {
		delete(s.m, req)
	}
	s.mu.Unlock()
	return b, ok
}

// Has reports whether a payload is currently stashed for req, without
// consuming it. Planners use it to skip re-fetching a unit that an earlier
// round already brought over.
func (s *Stash) Has(req Request) bool {
	s.mu.Lock()
	_, ok := s.m[req]
	s.mu.Unlock()
	return ok
}

// Stashed decorates a query's I/O scope with a stash of batch-fetched
// payloads. The index packages' artifact choke points type-assert for it and
// consume stashed bytes before falling back to the per-unit fetcher, so the
// batch seam needs no signature changes anywhere in the decode chain — the
// stash rides the reader every fetch already receives. Reads that miss the
// stash (local segments, prelude reads, un-planned units) pass through to
// the embedded scope unchanged.
type Stashed struct {
	diskio.Segmented
	S *Stash
}
