package rrindex

import (
	"bytes"
	"reflect"
	"testing"

	"kbtim/internal/codec"
	"kbtim/internal/diskio"
	"kbtim/internal/gen"
	"kbtim/internal/graph"
	"kbtim/internal/objcache"
	"kbtim/internal/prop"
	"kbtim/internal/shardmap"
	"kbtim/internal/topic"
	"kbtim/internal/wris"
)

// shardFixture builds one full index plus a keyword-sharded set of indexes
// over the SAME inputs, returning the full index and an owner func routing
// each topic to its shard index.
func shardFixture(t *testing.T, shards int, cache bool) (*Index, func(int) *Index, *shardmap.Map) {
	t.Helper()
	const topics = 8
	g, err := gen.NewsLike(gen.NewsLikeConfig{N: 500, AvgDegree: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := gen.Profiles(gen.DefaultProfilesConfig(500, topics, 9))
	if err != nil {
		t.Fatal(err)
	}
	cfg := wris.Config{
		Epsilon:            0.4,
		K:                  20,
		PilotSets:          800,
		MaxThetaPerKeyword: 8000,
		Seed:               11,
		Workers:            2,
	}
	build := func(only []int) *Index {
		var buf bytes.Buffer
		if _, err := Build(&buf, g, prop.IC{}, prof, cfg, BuildOptions{
			Compression: codec.Delta,
			Topics:      only,
		}); err != nil {
			t.Fatal(err)
		}
		idx, err := Open(diskio.NewMem(buf.Bytes(), nil))
		if err != nil {
			t.Fatal(err)
		}
		if cache {
			idx.SetDecodedCache(objcache.New(16 << 20))
		}
		return idx
	}
	full := build(nil)
	sm, err := shardmap.New(shards, shardmap.Hash, topics)
	if err != nil {
		t.Fatal(err)
	}
	universe := full.Keywords()
	// Keywords() is unordered; Partition preserves input order per shard,
	// and build order only affects file layout, not per-keyword payloads.
	parts := sm.Partition(universe)
	shardIdx := make([]*Index, shards)
	for s, part := range parts {
		if len(part) > 0 {
			shardIdx[s] = build(part)
		}
	}
	owner := func(w int) *Index {
		if w < 0 || w >= topics {
			return shardIdx[0]
		}
		return shardIdx[sm.Owner(w)]
	}
	return full, owner, sm
}

// TestQueryMultiShardParity: a query resolved across hash-sharded subset
// indexes returns exactly the single-index result — seeds, marginals,
// spread, set counts, loads — for single-shard AND shard-spanning topic
// sets, with and without the decoded cache.
func TestQueryMultiShardParity(t *testing.T) {
	queries := []topic.Query{
		{Topics: []int{0}, K: 5},
		{Topics: []int{3, 5}, K: 8},
		{Topics: []int{0, 1, 2, 3}, K: 10},
		{Topics: []int{0, 1, 2, 3, 4, 5, 6, 7}, K: 12},
	}
	for _, cache := range []bool{false, true} {
		full, owner, _ := shardFixture(t, 4, cache)
		for qi, q := range queries {
			want, err := full.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := QueryMulti(owner, q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.Seeds, got.Seeds) ||
				!reflect.DeepEqual(want.Marginals, got.Marginals) ||
				want.EstSpread != got.EstSpread ||
				want.NumRRSets != got.NumRRSets ||
				!reflect.DeepEqual(want.Loaded, got.Loaded) {
				t.Fatalf("cache=%v query %d diverged:\n full  %v / %v / θ=%v\n shard %v / %v / θ=%v",
					cache, qi, want.Seeds, want.Marginals, want.Loaded,
					got.Seeds, got.Marginals, got.Loaded)
			}
			if got.IO.Total() == 0 && !cache {
				t.Fatalf("query %d reported no I/O across shard scopes", qi)
			}
		}
	}
}

// TestQueryMultiErrors: unknown keywords and inconsistent shard headers are
// rejected, not silently merged.
func TestQueryMultiErrors(t *testing.T) {
	full, owner, _ := shardFixture(t, 2, false)
	if _, err := QueryMulti(func(int) *Index { return nil }, topic.Query{Topics: []int{0}, K: 2}); err == nil {
		t.Fatal("nil owner accepted")
	}
	if _, err := QueryMulti(owner, topic.Query{Topics: nil, K: 2}); err == nil {
		t.Fatal("empty topic set accepted")
	}
	if _, err := QueryMulti(owner, topic.Query{Topics: []int{0, 0}, K: 2}); err == nil {
		t.Fatal("duplicate topics accepted")
	}

	// An index over a DIFFERENT dataset must be rejected on a spanning query.
	g2, err := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}})
	if err != nil {
		t.Fatal(err)
	}
	b := topic.NewBuilder(3, 8)
	for u := uint32(0); u < 3; u++ {
		if err := b.Set(u, int(u), 1.0); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := Build(&buf, g2, prop.IC{}, b.Build(), testConfig(), BuildOptions{Compression: codec.Delta}); err != nil {
		t.Fatal(err)
	}
	alien, err := Open(diskio.NewMem(buf.Bytes(), nil))
	if err != nil {
		t.Fatal(err)
	}
	mixed := func(w int) *Index {
		if w == 0 {
			return alien
		}
		return full
	}
	if _, err := QueryMulti(mixed, topic.Query{Topics: []int{0, 1}, K: 2}); err == nil {
		t.Fatal("mismatched shard headers accepted")
	}
}
