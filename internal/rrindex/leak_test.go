package rrindex

import (
	"bytes"
	"context"
	"testing"

	"kbtim/internal/codec"
	"kbtim/internal/diskio"
	"kbtim/internal/pool"
	"kbtim/internal/prop"
	"kbtim/internal/wris"
)

// TestDecodeSetsErrorReturnsPooledArrays is the regression test for the
// early-error pool leak kbtim-lint's poolpair analyzer flagged: a pooled
// decodeSets that died mid-decode used to abandon the batch's borrowed
// Flat/Off arrays instead of returning them. The test corrupts one
// keyword's sets region so the decode fails after the pool gets, then
// asserts the pool's global get/put counters still balance.
func TestDecodeSetsErrorReturnsPooledArrays(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	var buf bytes.Buffer
	if _, err := Build(&buf, g, prop.IC{}, prof, testConfig(), BuildOptions{
		Compression: codec.Delta,
		Sizing:      wris.SizeTheta,
	}); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)

	// Locate the keyword's sets region via a pristine open, then 0xFF-fill
	// it: every varint byte now has its continuation bit set, so DecodeList
	// fails (and any member that did decode would be out of range). The
	// prelude is untouched, so reopening succeeds.
	idx, err := Open(diskio.NewMem(data, nil))
	if err != nil {
		t.Fatal(err)
	}
	d := idx.dirs[topicMusic]
	for i := d.SetsOff; i < d.SetsOff+d.SetsLen; i++ {
		data[i] = 0xFF
	}
	idx, err = Open(diskio.NewMem(data, nil))
	if err != nil {
		t.Fatal(err)
	}
	d = idx.dirs[topicMusic]

	g0, p0 := pool.Counts()
	if _, err := idx.decodeSets(context.Background(), idx.r, d, int(d.ThetaW), true); err == nil {
		t.Fatal("decodeSets succeeded on a 0xFF-filled sets region; corruption setup is broken")
	}
	g1, p1 := pool.Counts()
	if g1-g0 != p1-p0 {
		t.Fatalf("decodeSets error path leaked pooled slices: %d gets vs %d puts", g1-g0, p1-p0)
	}
}
