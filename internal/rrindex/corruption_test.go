package rrindex

import (
	"bytes"
	"testing"

	"kbtim/internal/codec"
	"kbtim/internal/diskio"
	"kbtim/internal/prop"
	"kbtim/internal/rng"
	"kbtim/internal/topic"
	"kbtim/internal/wris"
)

// TestRandomCorruptionNeverPanics mirrors the IRR corruption sweep for the
// RR index: arbitrary byte flips must produce clean errors or sane results,
// never a crash.
func TestRandomCorruptionNeverPanics(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	var buf bytes.Buffer
	if _, err := Build(&buf, g, prop.IC{}, prof, testConfig(), BuildOptions{
		Compression: codec.Delta,
		Sizing:      wris.SizeTheta,
	}); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	src := rng.New(123)
	q := topic.Query{Topics: []int{topicMusic, topicBook}, K: 2}

	for trial := 0; trial < 300; trial++ {
		data := append([]byte(nil), pristine...)
		flips := src.Intn(4) + 1
		for i := 0; i < flips; i++ {
			pos := src.Intn(len(data))
			data[pos] ^= byte(src.Intn(255) + 1)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v", trial, r)
				}
			}()
			idx, err := Open(diskio.NewMem(data, nil))
			if err != nil {
				return
			}
			res, err := idx.Query(q)
			if err != nil {
				return
			}
			if len(res.Seeds) == 0 || len(res.Seeds) > 2 {
				t.Fatalf("trial %d: corrupt index returned %d seeds", trial, len(res.Seeds))
			}
			for _, s := range res.Seeds {
				if int(s) >= g.NumVertices() {
					t.Fatalf("trial %d: seed %d out of range", trial, s)
				}
			}
		}()
	}
}

// TestTruncationSweepNeverPanics opens every prefix of a valid index.
func TestTruncationSweepNeverPanics(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	cfg := testConfig()
	cfg.MaxThetaPerKeyword = 200
	var buf bytes.Buffer
	if _, err := Build(&buf, g, prop.IC{}, prof, cfg, BuildOptions{
		Compression: codec.Delta,
	}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	step := len(data)/200 + 1
	for n := 0; n < len(data); n += step {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("prefix %d panicked: %v", n, r)
				}
			}()
			idx, err := Open(diskio.NewMem(data[:n], nil))
			if err != nil {
				return
			}
			_, _ = idx.Query(topic.Query{Topics: []int{topicMusic}, K: 1})
		}()
	}
}
