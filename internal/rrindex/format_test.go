package rrindex

import "testing"

func TestPrefixBytes(t *testing.T) {
	// 2500 sets, checkpoints at 1024, 2048, and the final end.
	d := &KeywordDir{
		ThetaW:      2500,
		SetsLen:     10000,
		Checkpoints: []int64{4000, 8000, 10000},
	}
	cases := []struct {
		t    int64
		want int64
	}{
		{1, 4000},     // inside first checkpoint block
		{1023, 4000},  // still first block
		{1024, 4000},  // exactly at the boundary: first checkpoint suffices
		{1025, 8000},  // spills into the second block
		{2048, 8000},  // exactly second boundary
		{2049, 10000}, // third block
		{2500, 10000}, // everything
		{9999, 10000}, // beyond θ_w clamps to the full region
	}
	for _, c := range cases {
		if got := d.prefixBytes(c.t); got != c.want {
			t.Errorf("prefixBytes(%d) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestPrefixBytesSingleCheckpoint(t *testing.T) {
	// Fewer than checkpointInterval sets: one checkpoint at the end.
	d := &KeywordDir{ThetaW: 10, SetsLen: 123, Checkpoints: []int64{123}}
	for _, tt := range []int64{1, 5, 10, 100} {
		if got := d.prefixBytes(tt); got != 123 {
			t.Errorf("prefixBytes(%d) = %d, want 123", tt, got)
		}
	}
}

func TestHeaderRejectsBadModelName(t *testing.T) {
	h := &Header{ModelName: "", Compression: 1}
	if _, err := appendHeader(nil, h, 0); err == nil {
		t.Fatal("empty model name accepted")
	}
	h.ModelName = string(make([]byte, 300))
	if _, err := appendHeader(nil, h, 0); err == nil {
		t.Fatal("oversized model name accepted")
	}
}

func TestHeaderReaderTruncation(t *testing.T) {
	r := &headerReader{buf: []byte{1, 2}}
	r.u64()
	if r.err == nil {
		t.Fatal("truncated u64 accepted")
	}
	// Sticky error: subsequent reads return zero values.
	if r.u8() != 0 || r.u32() != 0 || r.f64() != 0 {
		t.Fatal("reads after error not zeroed")
	}
}
