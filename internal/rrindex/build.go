package rrindex

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"kbtim/internal/codec"
	"kbtim/internal/graph"
	"kbtim/internal/prop"
	"kbtim/internal/rrset"
	"kbtim/internal/topic"
	"kbtim/internal/wris"
)

// BuildOptions configures index construction (Algorithm 1).
type BuildOptions struct {
	// Compression selects the list codec (Table 4's ablation).
	Compression codec.Compression
	// Sizing selects θ̂_w vs θ_w (Table 3's ablation).
	Sizing wris.SizingMode
	// Topics restricts the index to a keyword subset; nil indexes every
	// topic with positive mass.
	Topics []int
}

// KeywordStats reports one keyword's build outcome.
type KeywordStats struct {
	TopicID    int
	Theta      int     // number of RR sets sampled
	Capped     bool    // whether MaxThetaPerKeyword truncated θ_w
	MeanRRSize float64 // average RR-set cardinality (Table 5)
	SetsBytes  int64
	InvBytes   int64
}

// BuildStats summarizes a build (Tables 3–5).
type BuildStats struct {
	Keywords   []KeywordStats
	TotalBytes int64
	Elapsed    time.Duration
}

// SumTheta returns Σ_w θ_w (the "Sum of θw" column of Table 5).
func (s *BuildStats) SumTheta() int64 {
	var total int64
	for _, k := range s.Keywords {
		total += int64(k.Theta)
	}
	return total
}

// MeanRRSize returns the set-count-weighted mean RR-set size across
// keywords (Table 5).
func (s *BuildStats) MeanRRSize() float64 {
	var sets, members float64
	for _, k := range s.Keywords {
		sets += float64(k.Theta)
		members += float64(k.Theta) * k.MeanRRSize
	}
	if sets == 0 {
		return 0
	}
	return members / sets
}

// kwPayload is one keyword's serialized regions before offsets are known.
type kwPayload struct {
	dir  KeywordDir
	sets []byte
	inv  []byte
}

// Build constructs the RR index for the given graph, model, and profiles,
// writing the single-file index to w. It implements Algorithm 1: for each
// keyword, plan θ_w (Lemma 3 or 4 via a pilot OPT estimate), sample θ_w RR
// sets with root probability ps(v,w), invert them, and serialize both
// regions.
func Build(w io.Writer, g *graph.Graph, model prop.Model, prof *topic.Profiles, cfg wris.Config, opts BuildOptions) (*BuildStats, error) {
	start := time.Now()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !opts.Compression.Valid() {
		return nil, fmt.Errorf("rrindex: invalid compression %d", opts.Compression)
	}
	topics := opts.Topics
	if topics == nil {
		for t := 0; t < prof.NumTopics(); t++ {
			if prof.TFSum(t) > 0 {
				topics = append(topics, t)
			}
		}
	}
	if len(topics) == 0 {
		return nil, fmt.Errorf("rrindex: no topics to index")
	}

	stats := &BuildStats{}
	payloads := make([]kwPayload, 0, len(topics))
	for _, t := range topics {
		if t < 0 || t >= prof.NumTopics() {
			return nil, fmt.Errorf("rrindex: topic %d outside topic space", t)
		}
		if prof.TFSum(t) <= 0 {
			return nil, fmt.Errorf("rrindex: topic %d has no mass", t)
		}
		p, ks, err := buildKeyword(g, model, prof, t, cfg, opts)
		if err != nil {
			return nil, fmt.Errorf("rrindex: keyword %d: %w", t, err)
		}
		payloads = append(payloads, p)
		stats.Keywords = append(stats.Keywords, ks)
	}

	hdr := Header{
		Compression: opts.Compression,
		Sizing:      opts.Sizing,
		ModelName:   model.Name(),
		NumVertices: g.NumVertices(),
		NumTopics:   prof.NumTopics(),
		K:           cfg.K,
		Epsilon:     cfg.Epsilon,
	}
	prelude, err := assemblePrelude(&hdr, payloads)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(prelude); err != nil {
		return nil, err
	}
	written := int64(len(prelude))
	for i := range payloads {
		if _, err := w.Write(payloads[i].sets); err != nil {
			return nil, err
		}
		if _, err := w.Write(payloads[i].inv); err != nil {
			return nil, err
		}
		written += int64(len(payloads[i].sets) + len(payloads[i].inv))
	}
	stats.TotalBytes = written
	stats.Elapsed = time.Since(start)
	return stats, nil
}

// assemblePrelude serializes header + directory, assigning absolute payload
// offsets and patching the prelude-length slot.
func assemblePrelude(hdr *Header, payloads []kwPayload) ([]byte, error) {
	// First pass with zero offsets to measure the prelude.
	measure, err := appendHeader(nil, hdr, len(payloads))
	if err != nil {
		return nil, err
	}
	for i := range payloads {
		measure = appendKeywordDir(measure, &payloads[i].dir)
	}
	preludeLen := int64(len(measure))

	off := preludeLen
	for i := range payloads {
		payloads[i].dir.SetsOff = off
		off += payloads[i].dir.SetsLen
		payloads[i].dir.InvOff = off
		off += payloads[i].dir.InvLen
	}
	buf, err := appendHeader(nil, hdr, len(payloads))
	if err != nil {
		return nil, err
	}
	for i := range payloads {
		buf = appendKeywordDir(buf, &payloads[i].dir)
	}
	if int64(len(buf)) != preludeLen {
		return nil, fmt.Errorf("rrindex: prelude size drifted (%d vs %d)", len(buf), preludeLen)
	}
	binary.LittleEndian.PutUint64(buf[8:16], uint64(preludeLen))
	return buf, nil
}

func buildKeyword(g *graph.Graph, model prop.Model, prof *topic.Profiles, t int, cfg wris.Config, opts BuildOptions) (kwPayload, KeywordStats, error) {
	theta, capped, err := wris.PlanThetaW(g, model, prof, t, cfg, opts.Sizing)
	if err != nil {
		return kwPayload{}, KeywordStats{}, err
	}
	users, weights := wris.KeywordSupport(prof, t)
	picker, err := rrset.NewWeightedRoots(users, weights)
	if err != nil {
		return kwPayload{}, KeywordStats{}, err
	}
	batch := rrset.Generate(g, model, picker, rrset.GenerateOptions{
		Count:   theta,
		Seed:    cfg.Seed ^ (uint64(t+1) * 0x9E3779B97F4A7C15),
		Workers: cfg.Workers,
	})

	var sets []byte
	var checkpoints []int64
	for i := 0; i < batch.Len(); i++ {
		sets = opts.Compression.AppendList(sets, batch.Set(i))
		if (i+1)%checkpointInterval == 0 {
			checkpoints = append(checkpoints, int64(len(sets)))
		}
	}
	if len(checkpoints) == 0 || checkpoints[len(checkpoints)-1] != int64(len(sets)) {
		checkpoints = append(checkpoints, int64(len(sets)))
	}

	lists := batch.InvertedLists(g.NumVertices())
	var inv []byte
	numLists := 0
	tmp := make([]uint32, 0, 64)
	for v, list := range lists {
		if len(list) == 0 {
			continue
		}
		numLists++
		inv = binary.AppendUvarint(inv, uint64(v))
		tmp = tmp[:0]
		for _, id := range list {
			tmp = append(tmp, uint32(id))
		}
		inv = opts.Compression.AppendList(inv, tmp)
	}

	p := kwPayload{
		dir: KeywordDir{
			TopicID:     t,
			ThetaW:      int64(batch.Len()),
			TFSum:       prof.TFSum(t),
			Phi:         prof.Phi(t),
			SetsLen:     int64(len(sets)),
			InvLen:      int64(len(inv)),
			NumInvLists: numLists,
			Checkpoints: checkpoints,
		},
		sets: sets,
		inv:  inv,
	}
	ks := KeywordStats{
		TopicID:    t,
		Theta:      batch.Len(),
		Capped:     capped,
		MeanRRSize: batch.MeanSize(),
		SetsBytes:  int64(len(sets)),
		InvBytes:   int64(len(inv)),
	}
	return p, ks, nil
}
