package rrindex

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"kbtim/internal/codec"
	"kbtim/internal/diskio"
	"kbtim/internal/gen"
	"kbtim/internal/graph"
	"kbtim/internal/objcache"
	"kbtim/internal/prop"
	"kbtim/internal/topic"
	"kbtim/internal/wris"
)

const (
	vA, vB, vC, vD, vE, vF, vG = 0, 1, 2, 3, 4, 5, 6
	topicMusic                 = 0
	topicBook                  = 1
	topicSport                 = 2
	topicCar                   = 3
)

func figure1(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(7, []graph.Edge{
		{From: vE, To: vA}, {From: vE, To: vB}, {From: vG, To: vB},
		{From: vE, To: vC}, {From: vB, To: vC},
		{From: vB, To: vD}, {From: vF, To: vD},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func figure1Profiles(t testing.TB) *topic.Profiles {
	t.Helper()
	b := topic.NewBuilder(7, 4)
	set := func(u uint32, w int, tf float64) {
		if err := b.Set(u, w, tf); err != nil {
			t.Fatal(err)
		}
	}
	set(vA, topicMusic, 0.6)
	set(vA, topicBook, 0.2)
	set(vA, topicSport, 0.1)
	set(vA, topicCar, 0.1)
	set(vB, topicMusic, 0.5)
	set(vB, topicBook, 0.5)
	set(vC, topicMusic, 0.5)
	set(vC, topicBook, 0.3)
	set(vC, topicCar, 0.2)
	set(vD, topicSport, 0.2)
	set(vD, topicBook, 0.2)
	set(vE, topicMusic, 0.3)
	set(vE, topicBook, 0.3)
	set(vE, topicSport, 0.4)
	set(vF, topicCar, 1.0)
	set(vG, topicBook, 1.0)
	return b.Build()
}

func testConfig() wris.Config {
	return wris.Config{
		Epsilon:            0.3,
		K:                  5,
		PilotSets:          800,
		MaxThetaPerKeyword: 20000,
		Seed:               17,
		Workers:            2,
	}
}

// buildFigure1 builds an in-memory index over the running example.
func buildFigure1(t testing.TB, comp codec.Compression, sizing wris.SizingMode) (*Index, *BuildStats) {
	t.Helper()
	g := figure1(t)
	prof := figure1Profiles(t)
	var buf bytes.Buffer
	stats, err := Build(&buf, g, prop.IC{}, prof, testConfig(), BuildOptions{
		Compression: comp,
		Sizing:      sizing,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Open(diskio.NewMem(buf.Bytes(), nil))
	if err != nil {
		t.Fatal(err)
	}
	return idx, stats
}

func TestBuildAndOpenRoundTrip(t *testing.T) {
	idx, stats := buildFigure1(t, codec.Delta, wris.SizeTheta)
	h := idx.Header()
	if h.NumVertices != 7 || h.NumTopics != 4 || h.ModelName != "IC" || h.K != 5 {
		t.Fatalf("header %+v", h)
	}
	if len(idx.Keywords()) != 4 {
		t.Fatalf("keywords %v", idx.Keywords())
	}
	if stats.SumTheta() <= 0 || stats.MeanRRSize() < 1 {
		t.Fatalf("stats %+v", stats)
	}
	for _, ks := range stats.Keywords {
		d := idx.Dir(ks.TopicID)
		if d == nil || int(d.ThetaW) != ks.Theta {
			t.Fatalf("dir/stat mismatch for topic %d", ks.TopicID)
		}
	}
}

func TestQueryGuarantee(t *testing.T) {
	idx, _ := buildFigure1(t, codec.Delta, wris.SizeTheta)
	g := figure1(t)
	prof := figure1Profiles(t)
	cfgEps := 0.3
	for _, q := range []topic.Query{
		{Topics: []int{topicMusic}, K: 2},
		{Topics: []int{topicBook}, K: 2},
		{Topics: []int{topicMusic, topicBook}, K: 2},
		{Topics: []int{topicCar, topicSport}, K: 1},
	} {
		res, err := idx.Query(q)
		if err != nil {
			t.Fatalf("query %v: %v", q.Topics, err)
		}
		if len(res.Seeds) != q.K {
			t.Fatalf("query %v: %d seeds", q.Topics, len(res.Seeds))
		}
		score := func(v uint32) float64 { return prof.Score(v, q) }
		got, err := prop.ExactWeightedSpread(g, prop.IC{}, res.Seeds, score)
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := prop.BestSeedSetExact(g, prop.IC{}, q.K, score)
		if err != nil {
			t.Fatal(err)
		}
		if got < (1-1/math.E-cfgEps)*opt-1e-9 {
			t.Errorf("query %v: spread %v below guarantee of OPT %v (seeds %v)",
				q.Topics, got, opt, res.Seeds)
		}
		if math.Abs(res.EstSpread-got) > 0.4*opt {
			t.Errorf("query %v: estimator %v vs exact %v", q.Topics, res.EstSpread, got)
		}
	}
}

func TestPlanRespectsProportions(t *testing.T) {
	idx, _ := buildFigure1(t, codec.Delta, wris.SizeTheta)
	q := topic.Query{Topics: []int{topicMusic, topicBook}, K: 2}
	alloc, err := idx.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	dm, db := idx.Dir(topicMusic), idx.Dir(topicBook)
	phiQ := dm.Phi + db.Phi
	// The binding keyword is allocated (nearly) all of its sets; the other
	// is proportional: θQw/θQw' ≈ pw/pw'.
	am, ab := float64(alloc[topicMusic]), float64(alloc[topicBook])
	wantRatio := dm.Phi / db.Phi
	gotRatio := am / ab
	if math.Abs(gotRatio-wantRatio)/wantRatio > 0.01 {
		t.Fatalf("allocation ratio %v, want %v (alloc %v)", gotRatio, wantRatio, alloc)
	}
	if int64(alloc[topicMusic]) > dm.ThetaW || int64(alloc[topicBook]) > db.ThetaW {
		t.Fatalf("allocation exceeds stored θw: %v", alloc)
	}
	_ = phiQ
}

func TestPlanErrors(t *testing.T) {
	idx, _ := buildFigure1(t, codec.Delta, wris.SizeTheta)
	if _, err := idx.Plan(topic.Query{Topics: []int{topicMusic}, K: 99}); err == nil {
		t.Fatal("k above index K accepted")
	}
	if _, err := idx.Plan(topic.Query{Topics: []int{9}, K: 1}); err == nil {
		t.Fatal("out-of-space topic accepted")
	}
	// Index only some topics, query another.
	g := figure1(t)
	prof := figure1Profiles(t)
	var buf bytes.Buffer
	if _, err := Build(&buf, g, prop.IC{}, prof, testConfig(), BuildOptions{
		Compression: codec.Delta,
		Topics:      []int{topicMusic},
	}); err != nil {
		t.Fatal(err)
	}
	partial, err := Open(diskio.NewMem(buf.Bytes(), nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partial.Plan(topic.Query{Topics: []int{topicBook}, K: 1}); err == nil {
		t.Fatal("unindexed keyword accepted")
	}
}

func TestCompressionModesAgree(t *testing.T) {
	// Raw and Delta indexes must return identical seeds (same samples, same
	// greedy), and Delta must be smaller.
	idxRaw, statsRaw := buildFigure1(t, codec.Raw, wris.SizeTheta)
	idxDelta, statsDelta := buildFigure1(t, codec.Delta, wris.SizeTheta)
	q := topic.Query{Topics: []int{topicMusic, topicBook}, K: 2}
	r1, err := idxRaw.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := idxDelta.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Covered != r2.Covered || r1.NumRRSets != r2.NumRRSets {
		t.Fatalf("raw %+v vs delta %+v", r1.Result, r2.Result)
	}
	for i := range r1.Seeds {
		if r1.Seeds[i] != r2.Seeds[i] {
			t.Fatalf("seeds diverge: %v vs %v", r1.Seeds, r2.Seeds)
		}
	}
	if statsDelta.TotalBytes >= statsRaw.TotalBytes {
		t.Fatalf("delta index (%d B) not smaller than raw (%d B)",
			statsDelta.TotalBytes, statsRaw.TotalBytes)
	}
}

func TestThetaHatLargerThanTheta(t *testing.T) {
	// Table 3's effect: θ̂_w sizing must produce a strictly larger index.
	_, statsHat := buildFigure1(t, codec.Delta, wris.SizeThetaHat)
	_, stats := buildFigure1(t, codec.Delta, wris.SizeTheta)
	if statsHat.SumTheta() <= stats.SumTheta() {
		t.Fatalf("Σθ̂_w = %d not larger than Σθ_w = %d",
			statsHat.SumTheta(), stats.SumTheta())
	}
}

func TestFileRoundTrip(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "index.rr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(f, g, prop.IC{}, prof, testConfig(), BuildOptions{Compression: codec.Delta}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	counter := diskio.NewCounter()
	df, err := diskio.Open(path, counter)
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	idx, err := Open(df)
	if err != nil {
		t.Fatal(err)
	}
	counter.Reset()
	q := topic.Query{Topics: []int{topicMusic, topicBook}, K: 2}
	res, err := idx.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 2 {
		t.Fatalf("seeds %v", res.Seeds)
	}
	// Algorithm 2 reads two segments per keyword (sets prefix + inverted
	// file): 4 logical I/Os for a 2-keyword query.
	if res.IO.Total() != 4 {
		t.Fatalf("I/O ops = %d (%+v), want 4", res.IO.Total(), res.IO)
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	var buf bytes.Buffer
	if _, err := Build(&buf, g, prop.IC{}, prof, testConfig(), BuildOptions{Compression: codec.Delta}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	truncated := data[:40]
	badMagic := append([]byte("XXXX"), data[4:]...)
	empty := []byte{}
	for name, c := range map[string][]byte{
		"truncated": truncated,
		"bad magic": badMagic,
		"empty":     empty,
	} {
		if _, err := Open(diskio.NewMem(c, nil)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Flip a byte inside the payload: queries should fail loudly, not
	// return garbage silently. (Decoder errors or member-range checks.)
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)-3] ^= 0xFF
	idx, err := Open(diskio.NewMem(corrupt, nil))
	if err != nil {
		return // corrupted directory — also acceptable
	}
	for _, w := range idx.Keywords() {
		_, qerr := idx.Query(topic.Query{Topics: []int{w}, K: 1})
		if qerr != nil {
			return // loudly failed, as desired
		}
	}
	// Payload corruption may fall inside unread padding; not an error.
}

func TestBuildValidation(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	var buf bytes.Buffer
	if _, err := Build(&buf, g, prop.IC{}, prof, testConfig(), BuildOptions{Compression: codec.Compression(9)}); err == nil {
		t.Fatal("bad compression accepted")
	}
	if _, err := Build(&buf, g, prop.IC{}, prof, testConfig(), BuildOptions{Topics: []int{99}}); err == nil {
		t.Fatal("bad topic accepted")
	}
	bad := testConfig()
	bad.Epsilon = 2
	if _, err := Build(&buf, g, prop.IC{}, prof, bad, BuildOptions{}); err == nil {
		t.Fatal("bad config accepted")
	}
	emptyProf := topic.NewBuilder(7, 2).Build()
	if _, err := Build(&buf, g, prop.IC{}, emptyProf, testConfig(), BuildOptions{}); err == nil {
		t.Fatal("massless profile store accepted")
	}
}

// TestMediumScaleConsistency cross-checks the index against online WRIS on
// a 400-vertex news-like graph: both must produce seed sets of comparable
// estimated quality.
func TestMediumScaleConsistency(t *testing.T) {
	g, err := gen.NewsLike(gen.NewsLikeConfig{N: 400, AvgDegree: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := gen.Profiles(gen.DefaultProfilesConfig(400, 6, 6))
	if err != nil {
		t.Fatal(err)
	}
	cfg := wris.Config{
		Epsilon:            0.4,
		K:                  20,
		PilotSets:          600,
		MaxThetaPerKeyword: 15000,
		Seed:               9,
		Workers:            2,
	}
	var buf bytes.Buffer
	if _, err := Build(&buf, g, prop.IC{}, prof, cfg, BuildOptions{Compression: codec.Delta}); err != nil {
		t.Fatal(err)
	}
	idx, err := Open(diskio.NewMem(buf.Bytes(), nil))
	if err != nil {
		t.Fatal(err)
	}
	q := topic.Query{Topics: []int{0, 1}, K: 10}
	fromIndex, err := idx.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	online, err := wris.Query(g, prop.IC{}, prof, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both are (1−1/e−ε)-approximate; their estimated spreads should land
	// within a generous factor of each other.
	lo, hi := online.EstSpread*0.55, online.EstSpread*1.8
	if fromIndex.EstSpread < lo || fromIndex.EstSpread > hi {
		t.Fatalf("index spread %v vs online %v", fromIndex.EstSpread, online.EstSpread)
	}
}

// TestDecodedCacheCorrectness runs the same workload with and without the
// decoded-object cache: Seeds, Marginals, and spreads must be identical,
// repeats must hit, and a fully warm query must touch neither the disk nor
// the varint decoder.
func TestDecodedCacheCorrectness(t *testing.T) {
	g := figure1(t)
	prof := figure1Profiles(t)
	var buf bytes.Buffer
	if _, err := Build(&buf, g, prop.IC{}, prof, testConfig(), BuildOptions{
		Compression: codec.Delta,
	}); err != nil {
		t.Fatal(err)
	}
	plain, err := Open(diskio.NewMem(buf.Bytes(), nil))
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Open(diskio.NewMem(buf.Bytes(), nil))
	if err != nil {
		t.Fatal(err)
	}
	cache := objcache.New(4 << 20)
	cached.SetDecodedCache(cache)

	queries := []topic.Query{
		{Topics: []int{topicMusic}, K: 2},
		{Topics: []int{topicMusic, topicBook}, K: 3},
		{Topics: []int{topicCar, topicSport}, K: 5},
		{Topics: []int{topicMusic, topicBook}, K: 3}, // repeat → decoded hits
	}
	var hits int64
	for _, q := range queries {
		a, err := plain.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := cached.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Seeds, b.Seeds) || !reflect.DeepEqual(a.Marginals, b.Marginals) {
			t.Fatalf("query %v diverges with decoded cache: %v/%v vs %v/%v",
				q.Topics, a.Seeds, a.Marginals, b.Seeds, b.Marginals)
		}
		if a.EstSpread != b.EstSpread || a.NumRRSets != b.NumRRSets {
			t.Fatalf("query %v: metrics diverge: %+v vs %+v", q.Topics, a, b)
		}
		if a.DecodedHits != 0 || a.DecodedMisses != 0 {
			t.Fatalf("uncached index reported decoded-cache traffic: %+v", a)
		}
		hits += b.DecodedHits
	}
	if hits == 0 {
		t.Fatal("repeated workload produced no decoded-cache hits")
	}
	warm, err := cached.Query(topic.Query{Topics: []int{topicMusic, topicBook}, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if warm.IO.Total() != 0 || warm.DecodedMisses != 0 || warm.DecodedHits == 0 {
		t.Fatalf("warm query still paid: io=%+v hits=%d misses=%d",
			warm.IO, warm.DecodedHits, warm.DecodedMisses)
	}
}

// TestDecodedCacheConcurrent hammers one decoded-cache-backed RR index from
// many goroutines (run under -race): results must match the serial baseline
// and the singleflight must have collapsed concurrent decodes.
func TestDecodedCacheConcurrent(t *testing.T) {
	idx, _ := buildFigure1(t, codec.Delta, wris.SizeTheta)
	cache := objcache.New(1 << 20)
	idx.SetDecodedCache(cache)
	q := topic.Query{Topics: []int{topicMusic, topicBook}, K: 3}
	base, err := idx.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				r, err := idx.Query(q)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(r.Seeds, base.Seeds) || r.EstSpread != base.EstSpread {
					t.Error("result diverged under concurrency")
					return
				}
			}
		}()
	}
	wg.Wait()
	if s := cache.Stats(); s.Hits+s.Shared == 0 {
		t.Fatalf("concurrent repeated workload never hit the decoded cache: %+v", s)
	}
}
