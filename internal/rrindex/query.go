package rrindex

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"kbtim/internal/coverage"
	"kbtim/internal/diskio"
	"kbtim/internal/rrset"
	"kbtim/internal/topic"
	"kbtim/internal/wris"
)

// Index is an opened RR index ready for query processing. After Open the
// header and directory are immutable and every Query works on its own
// scratch state and a per-query I/O scope, so one Index is safe for
// concurrent use by multiple goroutines (provided the underlying reader
// supports concurrent positional reads, as diskio.File, diskio.Mem, and
// diskio.CachedReader all do).
type Index struct {
	hdr  Header
	dirs map[int]*KeywordDir
	r    diskio.Segmented
}

// Open parses the header and directory of an index accessible through r.
// The payload stays on "disk" and is fetched per query.
func Open(r diskio.Segmented) (*Index, error) {
	head, err := r.ReadSegment(0, 16)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(head[:4]) != indexMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, head[:4])
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != indexVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	preludeLen := int64(binary.LittleEndian.Uint64(head[8:16]))
	if preludeLen < 16 || preludeLen > r.Size() {
		return nil, fmt.Errorf("%w: implausible prelude length %d", ErrBadFormat, preludeLen)
	}
	prelude, err := r.ReadSegment(0, preludeLen)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	hr := &headerReader{buf: prelude}
	hdr, numKeywords, err := parseHeader(hr)
	if err != nil {
		return nil, err
	}
	idx := &Index{hdr: hdr, dirs: make(map[int]*KeywordDir, numKeywords), r: r}
	for i := 0; i < numKeywords; i++ {
		d, err := parseKeywordDir(hr, &hdr)
		if err != nil {
			return nil, err
		}
		if d.SetsOff < preludeLen || d.SetsOff+d.SetsLen > r.Size() ||
			d.InvOff < preludeLen || d.InvOff+d.InvLen > r.Size() {
			return nil, fmt.Errorf("%w: payload offsets for topic %d out of file", ErrBadFormat, d.TopicID)
		}
		dd := d
		idx.dirs[d.TopicID] = &dd
	}
	return idx, nil
}

// Header returns the index-wide metadata.
func (idx *Index) Header() Header { return idx.hdr }

// Keywords returns the indexed topic IDs (unordered).
func (idx *Index) Keywords() []int {
	out := make([]int, 0, len(idx.dirs))
	for t := range idx.dirs {
		out = append(out, t)
	}
	return out
}

// Dir exposes one keyword's directory entry (nil if not indexed).
func (idx *Index) Dir(topicID int) *KeywordDir { return idx.dirs[topicID] }

// QueryResult is a wris.Result plus the disk-access profile of the query.
type QueryResult struct {
	wris.Result
	// Marginals[i] is the number of newly covered RR sets when Seeds[i]
	// was picked (the greedy trace; Theorem 3 compares these against the
	// IRR index's).
	Marginals []int
	// IO is the logical disk activity the query incurred.
	IO diskio.Stats
	// Loaded maps each query keyword to the number of RR sets fetched
	// (θ^Q_w, the Figure 5–7 "number of RR sets loaded" series).
	Loaded map[int]int
}

// Plan computes θ^Q and the per-keyword allocation θ^Q_w = θ^Q·p_w of
// Algorithm 2 lines 1–4, using the φ_w values frozen into the index.
func (idx *Index) Plan(q topic.Query) (map[int]int, error) {
	if err := q.Validate(idx.hdr.NumTopics); err != nil {
		return nil, err
	}
	if q.K > idx.hdr.K {
		return nil, fmt.Errorf("rrindex: Q.k=%d exceeds index cap K=%d", q.K, idx.hdr.K)
	}
	var phiQ float64
	for _, w := range q.Topics {
		d := idx.dirs[w]
		if d == nil {
			return nil, fmt.Errorf("rrindex: keyword %d not indexed", w)
		}
		phiQ += d.Phi
	}
	if phiQ <= 0 {
		return nil, fmt.Errorf("rrindex: query %v has zero mass", q.Topics)
	}
	thetaQ := math.Inf(1)
	for _, w := range q.Topics {
		d := idx.dirs[w]
		pw := d.Phi / phiQ
		if pw <= 0 {
			continue
		}
		if v := float64(d.ThetaW) / pw; v < thetaQ {
			thetaQ = v
		}
	}
	alloc := make(map[int]int, len(q.Topics))
	for _, w := range q.Topics {
		d := idx.dirs[w]
		pw := d.Phi / phiQ
		t := int64(thetaQ*pw + 1e-9)
		if t < 1 {
			t = 1
		}
		if t > d.ThetaW {
			t = d.ThetaW
		}
		alloc[w] = int(t)
	}
	return alloc, nil
}

// Query answers a KB-TIM query with Algorithm 2: load θ^Q_w RR sets and the
// inverted file of every query keyword, then run greedy maximum coverage.
func (idx *Index) Query(q topic.Query) (*QueryResult, error) {
	start := time.Now()
	// All reads go through a per-query scope: precise I/O accounting with
	// no shared cursor, so concurrent queries cannot race or pollute each
	// other's sequential/random classification.
	r := diskio.NewScope(idx.r)
	alloc, err := idx.Plan(q)
	if err != nil {
		return nil, err
	}

	var batch rrset.Batch
	lists := make([][]int32, idx.hdr.NumVertices)
	offset := int32(0)
	loaded := make(map[int]int, len(alloc))
	var phiQ float64
	for _, w := range q.Topics {
		d := idx.dirs[w]
		phiQ += d.Phi
		t := alloc[w]
		if err := idx.loadSets(r, d, t, &batch); err != nil {
			return nil, fmt.Errorf("rrindex: keyword %d sets: %w", w, err)
		}
		if err := idx.loadInverted(r, d, t, offset, lists); err != nil {
			return nil, fmt.Errorf("rrindex: keyword %d inverted: %w", w, err)
		}
		offset += int32(t)
		loaded[w] = t
	}

	inst := &coverage.Instance{
		NumVertices: idx.hdr.NumVertices,
		NumSets:     batch.Len(),
		Lists:       lists,
	}
	res, err := coverage.Solve(inst, q.K, func(id int32) []uint32 { return batch.Set(int(id)) })
	if err != nil {
		return nil, err
	}
	total := batch.Len()
	return &QueryResult{
		Result: wris.Result{
			Seeds:     res.Seeds,
			EstSpread: float64(res.Covered) / float64(total) * phiQ,
			Covered:   res.Covered,
			NumRRSets: total,
			Elapsed:   time.Since(start),
		},
		Marginals: res.Marginal,
		IO:        r.Stats(),
		Loaded:    loaded,
	}, nil
}

// loadSets fetches the first t RR sets of keyword d in one sequential
// segment read through the query's scope and appends them to batch.
func (idx *Index) loadSets(r diskio.Segmented, d *KeywordDir, t int, batch *rrset.Batch) error {
	buf, err := r.ReadSegment(d.SetsOff, d.prefixBytes(int64(t)))
	if err != nil {
		return err
	}
	pos := 0
	scratch := make([]uint32, 0, 64)
	for i := 0; i < t; i++ {
		scratch = scratch[:0]
		var n int
		scratch, n, err = idx.hdr.Compression.DecodeList(scratch, buf[pos:])
		if err != nil {
			return err
		}
		pos += n
		for _, v := range scratch {
			if int(v) >= idx.hdr.NumVertices {
				return fmt.Errorf("%w: member %d out of range", ErrBadFormat, v)
			}
		}
		batch.Append(scratch)
	}
	return nil
}

// loadInverted fetches the whole inverted region of keyword d (one
// sequential read), keeps only RR IDs < t, applies the global ID offset,
// and merges into lists.
func (idx *Index) loadInverted(r diskio.Segmented, d *KeywordDir, t int, offset int32, lists [][]int32) error {
	buf, err := r.ReadSegment(d.InvOff, d.InvLen)
	if err != nil {
		return err
	}
	pos := 0
	scratch := make([]uint32, 0, 64)
	for i := 0; i < d.NumInvLists; i++ {
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 || v >= uint64(idx.hdr.NumVertices) {
			return fmt.Errorf("%w: bad inverted-list vertex", ErrBadFormat)
		}
		pos += n
		scratch = scratch[:0]
		scratch, n, err = idx.hdr.Compression.DecodeList(scratch, buf[pos:])
		if err != nil {
			return err
		}
		pos += n
		for _, id := range scratch {
			if id >= uint32(t) {
				break // IDs ascend; the rest are beyond θ^Q_w
			}
			lists[v] = append(lists[v], int32(id)+offset)
		}
	}
	if pos != len(buf) {
		return fmt.Errorf("%w: inverted region has %d trailing bytes", ErrBadFormat, len(buf)-pos)
	}
	return nil
}
