package rrindex

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"kbtim/internal/artifact"
	"kbtim/internal/coverage"
	"kbtim/internal/diskio"
	"kbtim/internal/objcache"
	"kbtim/internal/pool"
	"kbtim/internal/rrset"
	"kbtim/internal/topic"
	"kbtim/internal/wris"
)

// Decoded-cache regions of this index (see objcache.Key).
const (
	regionSets objcache.Region = iota // Aux = θ-prefix length → *rrset.Batch
	regionInv                         // Aux = 0 → *invTable
)

// Index is an opened RR index ready for query processing. After Open the
// header and directory are immutable and every Query works on its own
// scratch state and a per-query I/O scope, so one Index is safe for
// concurrent use by multiple goroutines (provided the underlying reader
// supports concurrent positional reads, as diskio.File, diskio.Mem, and
// diskio.CachedReader all do).
type Index struct {
	hdr     Header
	dirs    map[int]*KeywordDir
	r       diskio.Segmented
	prelude int64           // header+directory byte length (the UnitDir artifact)
	dec     *objcache.Cache // optional decoded-object cache, set before first Query
	par     int             // per-query artifact-load parallelism, set before first Query
	fetch   Fetcher         // optional remote artifact source, set before first Query
}

// Artifact units of the RR index, as named by the cross-node fetch protocol
// (internal/remote): every raw byte range a query ever reads is one of
// these, which is what lets a remote index fetch per-artifact instead of
// per-offset.
const (
	// UnitDir is the index prelude: header plus keyword directory.
	UnitDir = "dir"
	// UnitSets is one keyword's θ-prefix of RR sets; aux is the prefix
	// length t (the payload is the checkpoint-aligned first prefixBytes(t)
	// bytes of the sets region).
	UnitSets = "sets"
	// UnitInv is one keyword's whole inverted region; aux is 0.
	UnitInv = "inv"
)

// Fetcher returns the raw bytes of one named artifact of this index — the
// pluggable byte source that lets an Index be backed by a remote node
// instead of a local file. Implementations must return exactly the bytes
// the local file holds for that unit (ArtifactBytes on the serving side is
// the canonical producer), so decoded artifacts — and therefore query
// results — are bit-identical to a local open of the same file.
type Fetcher interface {
	Fetch(ctx context.Context, unit string, topic int, aux int64) ([]byte, error)
}

// BatchFetcher is an optional Fetcher upgrade: one call moves a whole round
// of artifacts in (ideally) one wire round trip. FetchBatch must return
// exactly len(reqs) replies in request order, isolating failures per unit;
// each successful payload obeys the same bit-identity contract as Fetch.
// When the query planner finds a BatchFetcher behind a remote index it
// gathers every unit the round will need, peels decoded-cache residents off,
// and batches the rest — per-unit Fetch remains the fallback for everything
// else, so results are byte-identical either way.
type BatchFetcher interface {
	Fetcher
	FetchBatch(ctx context.Context, reqs []artifact.Request) []artifact.Reply
}

// ErrNoArtifact marks an artifact request whose NAME does not resolve on
// this index — unknown unit, unindexed keyword, out-of-range refinement.
// Serving layers map it to "not served here" (HTTP 404), as distinct from
// a resolvable artifact whose read failed (a real server error).
var ErrNoArtifact = errors.New("rrindex: no such artifact")

// Open parses the header and directory of an index accessible through r.
// The payload stays on "disk" and is fetched per query.
func Open(r diskio.Segmented) (*Index, error) {
	head, err := r.ReadSegment(0, 16)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(head[:4]) != indexMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, head[:4])
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != indexVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	preludeLen := int64(binary.LittleEndian.Uint64(head[8:16]))
	if preludeLen < 16 || preludeLen > r.Size() {
		return nil, fmt.Errorf("%w: implausible prelude length %d", ErrBadFormat, preludeLen)
	}
	prelude, err := r.ReadSegment(0, preludeLen)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	hr := &headerReader{buf: prelude}
	hdr, numKeywords, err := parseHeader(hr)
	if err != nil {
		return nil, err
	}
	idx := &Index{hdr: hdr, dirs: make(map[int]*KeywordDir, numKeywords), r: r, prelude: preludeLen}
	for i := 0; i < numKeywords; i++ {
		d, err := parseKeywordDir(hr, &hdr)
		if err != nil {
			return nil, err
		}
		if d.SetsOff < preludeLen || d.SetsOff+d.SetsLen > r.Size() ||
			d.InvOff < preludeLen || d.InvOff+d.InvLen > r.Size() {
			return nil, fmt.Errorf("%w: payload offsets for topic %d out of file", ErrBadFormat, d.TopicID)
		}
		dd := d
		idx.dirs[d.TopicID] = &dd
	}
	return idx, nil
}

// SetDecodedCache attaches a decoded-object cache: parsed RR-set batch
// prefixes and inverted tables are cached across queries (with singleflight
// loading), so hot keywords skip both the disk AND the decode. Must be
// called before the index is shared between goroutines (i.e. right after
// Open); pass nil to detach. Cached values are immutable — queries trim to
// their private θ^Q_w by slicing.
func (idx *Index) SetDecodedCache(c *objcache.Cache) { idx.dec = c }

// SetQueryParallelism bounds how many keywords one Query fetches and
// decodes concurrently (<= 1 keeps the fully sequential path). Seeds and
// spreads are identical either way — artifacts are merged in keyword order
// after the parallel fetch — only latency and the sequential/random shape of
// per-query I/O stats change. Must be called before the index is shared
// between goroutines (i.e. right after Open).
func (idx *Index) SetQueryParallelism(n int) { idx.par = n }

// SetFetcher makes the index remote-backed: every artifact read bypasses the
// local reader and asks f for the named unit instead (the decoded cache, when
// attached, still fronts those fetches, so hot keywords skip the wire). Must
// be called before the index is shared between goroutines (i.e. right after
// Open); pass nil to go back to local reads.
func (idx *Index) SetFetcher(f Fetcher) { idx.fetch = f }

// Size returns the total byte length of the underlying index file (for a
// remote-backed index, the size the serving node advertised).
func (idx *Index) Size() int64 { return idx.r.Size() }

// ArtifactBytes serves one named artifact's raw bytes from the local index —
// the serving side of the cross-node fetch protocol. Reads go through the
// index's shared reader (and so through the segment cache when one is
// attached). aux is the θ-prefix length for UnitSets and ignored otherwise.
func (idx *Index) ArtifactBytes(unit string, topic int, aux int64) ([]byte, error) {
	if unit == UnitDir {
		return idx.r.ReadSegment(0, idx.prelude)
	}
	d := idx.dirs[topic]
	if d == nil {
		return nil, fmt.Errorf("%w: keyword %d not indexed", ErrNoArtifact, topic)
	}
	switch unit {
	case UnitSets:
		if aux < 1 {
			return nil, fmt.Errorf("%w: sets artifact needs a positive prefix length, got %d", ErrNoArtifact, aux)
		}
		return idx.r.ReadSegment(d.SetsOff, d.prefixBytes(aux))
	case UnitInv:
		return idx.r.ReadSegment(d.InvOff, d.InvLen)
	default:
		return nil, fmt.Errorf("%w: unknown artifact unit %q", ErrNoArtifact, unit)
	}
}

// artifact returns one artifact's raw bytes for a query: from the remote
// fetcher when the index is remote-backed (recording the transfer in the
// query's I/O scope, so wire bytes surface in the usual I/O stats), else one
// ReadSegment against the local reader. off/length locate the unit in the
// file — the fetched payload must be exactly that long, a cheap end-to-end
// check that the remote node serves the same index this directory describes.
func (idx *Index) artifact(ctx context.Context, r diskio.Segmented, unit string, topic int, aux, off, length int64) ([]byte, error) {
	if idx.fetch == nil {
		return r.ReadSegment(off, length)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// A batch-planned round has already moved this unit over the wire; the
	// stash rides the query's reader, and consuming an entry (Take removes
	// it) is the moment its transfer lands in the I/O stats.
	if st, ok := r.(*artifact.Stashed); ok {
		if b, ok := st.S.Take(artifact.Request{Unit: unit, Topic: topic, Aux: aux}); ok {
			if int64(len(b)) != length {
				return nil, fmt.Errorf("rrindex: remote %s artifact for keyword %d is %d bytes, directory says %d",
					unit, topic, len(b), length)
			}
			r.Counter().Record(off, len(b))
			return b, nil
		}
	}
	b, err := idx.fetch.Fetch(ctx, unit, topic, aux)
	if err != nil {
		return nil, err
	}
	if int64(len(b)) != length {
		return nil, fmt.Errorf("rrindex: remote %s artifact for keyword %d is %d bytes, directory says %d",
			unit, topic, len(b), length)
	}
	r.Counter().Record(off, len(b))
	return b, nil
}

// Header returns the index-wide metadata.
func (idx *Index) Header() Header { return idx.hdr }

// Keywords returns the indexed topic IDs (unordered).
func (idx *Index) Keywords() []int {
	out := make([]int, 0, len(idx.dirs))
	for t := range idx.dirs {
		out = append(out, t)
	}
	return out
}

// Dir exposes one keyword's directory entry (nil if not indexed).
func (idx *Index) Dir(topicID int) *KeywordDir { return idx.dirs[topicID] }

// QueryResult is a wris.Result plus the disk-access profile of the query.
type QueryResult struct {
	wris.Result
	// Marginals[i] is the number of newly covered RR sets when Seeds[i]
	// was picked (the greedy trace; Theorem 3 compares these against the
	// IRR index's).
	Marginals []int
	// IO is the logical disk activity the query incurred.
	IO diskio.Stats
	// Loaded maps each query keyword to the number of RR sets fetched
	// (θ^Q_w, the Figure 5–7 "number of RR sets loaded" series).
	Loaded map[int]int
	// DecodedHits / DecodedMisses count decoded-cache lookups by this
	// query (zero when no decoded cache is attached). A hit means the
	// artifact was consumed without any read OR decode.
	DecodedHits   int64
	DecodedMisses int64
	// Partial is true when a streaming deadline stopped the query before
	// the full answer: Seeds is the certified prefix selected so far
	// (possibly empty if the deadline expired during artifact loading).
	Partial bool
}

// decCounters accumulates one query's decoded-cache traffic.
type decCounters struct {
	hits, misses int64
}

// add folds another goroutine's counters in (used after a parallel fetch
// phase joins; never called concurrently).
func (d *decCounters) add(o decCounters) {
	d.hits += o.hits
	d.misses += o.misses
}

// Plan computes θ^Q and the per-keyword allocation θ^Q_w = θ^Q·p_w of
// Algorithm 2 lines 1–4, using the φ_w values frozen into the index.
func (idx *Index) Plan(q topic.Query) (map[int]int, error) {
	if err := q.Validate(idx.hdr.NumTopics); err != nil {
		return nil, err
	}
	dirs := make([]*KeywordDir, len(q.Topics))
	for i, w := range q.Topics {
		if dirs[i] = idx.dirs[w]; dirs[i] == nil {
			return nil, fmt.Errorf("rrindex: keyword %d not indexed", w)
		}
	}
	return planTopics(&idx.hdr, q, dirs)
}

// planTopics is the Plan body over an explicit per-topic directory list —
// the directories may come from ONE index or from several keyword-sharded
// ones. θ^Q_w depends only on each keyword's (ThetaW, Phi), both frozen per
// keyword at build time, which is why a sharded deployment allocates exactly
// like a single index (the parity the sharded tests pin).
func planTopics(hdr *Header, q topic.Query, dirs []*KeywordDir) (map[int]int, error) {
	if err := q.Validate(hdr.NumTopics); err != nil {
		return nil, err
	}
	if q.K > hdr.K {
		return nil, fmt.Errorf("rrindex: Q.k=%d exceeds index cap K=%d", q.K, hdr.K)
	}
	var phiQ float64
	for _, d := range dirs {
		phiQ += d.Phi
	}
	if phiQ <= 0 {
		return nil, fmt.Errorf("rrindex: query %v has zero mass", q.Topics)
	}
	thetaQ := math.Inf(1)
	for _, d := range dirs {
		pw := d.Phi / phiQ
		if pw <= 0 {
			continue
		}
		if v := float64(d.ThetaW) / pw; v < thetaQ {
			thetaQ = v
		}
	}
	alloc := make(map[int]int, len(q.Topics))
	for _, d := range dirs {
		pw := d.Phi / phiQ
		t := int64(thetaQ*pw + 1e-9)
		if t < 1 {
			t = 1
		}
		if t > d.ThetaW {
			t = d.ThetaW
		}
		alloc[d.TopicID] = int(t)
	}
	return alloc, nil
}

// setsView maps one keyword's RR-set batch into the query's global set-ID
// space: set (start+i) is batch.Set(i).
type setsView struct {
	start int32
	batch *rrset.Batch
}

// kwArtifacts is one keyword's fetched-and-decoded state from the parallel
// load phase, merged sequentially afterwards.
type kwArtifacts struct {
	batch *rrset.Batch
	inv   *invTable // cache-shared table (decoded-cache path), nil otherwise
	// pverts/pids are the private pre-trimmed (vertex, RR-ID) pairs of the
	// cache-free path, pool-backed.
	pverts []uint32
	pids   []int32
	dec    decCounters
	err    error
}

// Query answers a KB-TIM query with Algorithm 2: load θ^Q_w RR sets and the
// inverted file of every query keyword, then run greedy maximum coverage.
// With SetQueryParallelism > 1 the per-keyword fetch+decode runs
// concurrently (bounded), and the merge into query state stays sequential in
// keyword order, so results are identical to the sequential path.
func (idx *Index) Query(q topic.Query) (*QueryResult, error) {
	return QueryMulti(func(int) *Index { return idx }, q)
}

// QueryCtx is Query with cancellation: ctx is checked at every keyword-load
// boundary (and passed to the remote fetcher, when one is attached), so a
// canceled caller stops paying for fetches it no longer wants.
func (idx *Index) QueryCtx(ctx context.Context, q topic.Query) (*QueryResult, error) {
	return QueryMultiCtx(ctx, func(int) *Index { return idx }, q)
}

// QueryStreamCtx is QueryCtx with anytime hooks: so.Emit receives each seed
// the moment greedy selection certifies it, and an expired so.Deadline
// returns the best certified prefix with Partial=true instead of an error.
func (idx *Index) QueryStreamCtx(ctx context.Context, q topic.Query, so wris.StreamOptions) (*QueryResult, error) {
	return QueryMultiStreamCtx(ctx, func(int) *Index { return idx }, q, so)
}

// QueryMulti answers a KB-TIM query with Algorithm 2 over a
// keyword-partitioned set of indexes: owner(w) returns the Index holding
// keyword w (nil = not indexed anywhere). Per-keyword artifacts are
// bit-identical however the keyword universe is partitioned (each keyword's
// sampling is seeded by the topic ID alone), the allocation plan depends
// only on the query keywords' own directory entries, and the merge runs in
// query-keyword order — so a query spanning N shard indexes returns exactly
// the seeds, marginals, and spread a single full index would. Each involved
// index reads through its own per-query I/O scope; the reported IO is their
// sum.
func QueryMulti(owner func(topic int) *Index, q topic.Query) (*QueryResult, error) {
	return QueryMultiCtx(context.Background(), owner, q)
}

// QueryMultiCtx is QueryMulti with cancellation: ctx is checked before every
// keyword's artifact load (the unit of work between checks, so cancellation
// latency is bounded by one fetch+decode) and once more before the coverage
// solve. A canceled query returns ctx.Err() wrapped in the usual keyword
// error context.
func QueryMultiCtx(ctx context.Context, owner func(topic int) *Index, q topic.Query) (*QueryResult, error) {
	return QueryMultiStreamCtx(ctx, owner, q, wris.StreamOptions{})
}

// errDeadline marks a keyword fetch abandoned because the streaming deadline
// expired — the anytime path's "stop now" signal, converted to a Partial
// result (never surfaced as an error) before QueryMultiStreamCtx returns.
var errDeadline = errors.New("rrindex: query deadline expired")

// QueryMultiStreamCtx is QueryMultiCtx with anytime hooks; QueryMultiCtx is
// this function with zero options, so the batch path and the streaming path
// are one body and parity holds by construction. so.Emit receives each seed
// synchronously as greedy selection certifies it, with the running spread
// lower bound of the emitted prefix. A non-zero so.Deadline turns timeout
// into degradation: the query checks the deadline at every keyword-load
// boundary and before every greedy pick, and once expired returns whatever
// prefix is certified so far with Partial=true (RR certifies nothing until
// all artifacts are merged, so a deadline during loading yields an empty
// Partial result).
func QueryMultiStreamCtx(ctx context.Context, owner func(topic int) *Index, q topic.Query, so wris.StreamOptions) (*QueryResult, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(q.Topics) == 0 {
		return nil, fmt.Errorf("rrindex: query needs at least one keyword")
	}
	// Resolve the owning indexes. The overwhelmingly common case — every
	// keyword on ONE index (single-engine deployments, replicate shards,
	// co-located fast paths) — is detected first so it allocates none of
	// the multi-index bookkeeping; only genuinely spanning queries pay.
	base := owner(q.Topics[0])
	if base == nil {
		return nil, fmt.Errorf("rrindex: keyword %d not indexed", q.Topics[0])
	}
	multi := false
	for _, w := range q.Topics[1:] {
		ix := owner(w)
		if ix == nil {
			return nil, fmt.Errorf("rrindex: keyword %d not indexed", w)
		}
		if ix != base {
			multi = true
		}
	}
	var (
		idxOf  []*Index        // per-topic owner, nil when single-index
		uniq   []*Index        // distinct involved indexes, nil when single
		scopes []*diskio.Scope // per-query I/O scopes, parallel to uniq
		scope0 *diskio.Scope   // the single-index scope
	)
	if multi {
		idxOf = make([]*Index, len(q.Topics))
		for i, w := range q.Topics {
			ix := owner(w)
			idxOf[i] = ix
			known := false
			for _, u := range uniq {
				if u == ix {
					known = true
					break
				}
			}
			if !known {
				uniq = append(uniq, ix)
			}
		}
		for _, u := range uniq[1:] {
			if u.hdr.NumVertices != base.hdr.NumVertices || u.hdr.NumTopics != base.hdr.NumTopics || u.hdr.K != base.hdr.K {
				return nil, fmt.Errorf("rrindex: shard indexes built over different datasets or caps (|V| %d vs %d, |T| %d vs %d, K %d vs %d)",
					base.hdr.NumVertices, u.hdr.NumVertices, base.hdr.NumTopics, u.hdr.NumTopics, base.hdr.K, u.hdr.K)
			}
		}
		// All reads go through per-query scopes (one per involved index):
		// precise I/O accounting with no shared cursor, so concurrent
		// queries cannot race or pollute each other's sequential/random
		// classification.
		scopes = make([]*diskio.Scope, len(uniq))
		for i, u := range uniq {
			scopes[i] = diskio.NewScope(u.r)
		}
	} else {
		scope0 = diskio.NewScope(base.r)
	}
	idxAt := func(i int) *Index {
		if idxOf == nil {
			return base
		}
		return idxOf[i]
	}
	scopeAt := func(i int) *diskio.Scope {
		if idxOf == nil {
			return scope0
		}
		for j, u := range uniq {
			if u == idxOf[i] {
				return scopes[j]
			}
		}
		return nil // unreachable: every owner is in uniq
	}
	// Validate BEFORE the directory lookups so an out-of-space keyword is
	// reported as such ("outside topic space"), not as a coverage gap.
	if err := q.Validate(base.hdr.NumTopics); err != nil {
		return nil, err
	}
	dirOf := make([]*KeywordDir, len(q.Topics))
	for i, w := range q.Topics {
		if dirOf[i] = idxAt(i).dirs[w]; dirOf[i] == nil {
			return nil, fmt.Errorf("rrindex: keyword %d not indexed", w)
		}
	}
	alloc, err := planTopics(&base.hdr, q, dirOf)
	if err != nil {
		return nil, err
	}

	// Batch round: the allocation above fixes every artifact this query will
	// read, so a remote index with a batch-capable fetcher gets all its units
	// in ONE round trip per owning backend (decoded-cache residents peeled
	// off first). The payloads ride per-index stashes that the unchanged
	// fetch path consumes unit by unit — local indexes and plain fetchers
	// skip this entirely.
	var stashes map[*Index]*artifact.Stash
	if !so.Expired() {
		stashes = planWire(ctx, q.Topics, idxAt, dirOf, alloc)
	}
	readerAt := func(i int) diskio.Segmented {
		s := scopeAt(i)
		if st := stashes[idxAt(i)]; st != nil {
			return &artifact.Stashed{Segmented: s, S: st}
		}
		return s
	}

	var dec decCounters
	views := make([]setsView, 0, len(q.Topics))
	lists := pool.Int32Lists(base.hdr.NumVertices)
	defer pool.PutInt32Lists(lists)
	offset := int32(0)
	loaded := make(map[int]int, len(alloc))
	var phiQ float64

	// Fetch phase: every keyword's set prefix and inverted artifact is
	// fetched and decoded into private (or cache-shared) state — nothing
	// query-global is touched until the merge. With parallelism > 1 the
	// keywords load concurrently (bounded); the merge below is sequential in
	// keyword order either way, so results are identical.
	arts := make([]kwArtifacts, len(q.Topics))
	fetchOne := func(a *kwArtifacts, ix *Index, r diskio.Segmented, d *KeywordDir, t int) {
		// The keyword-load boundary is the cancellation unit: a canceled
		// query abandons every keyword it has not started yet. The anytime
		// deadline shares the boundary, but resolves to a Partial result
		// below instead of an error.
		if a.err = ctx.Err(); a.err != nil {
			return
		}
		if so.Expired() {
			a.err = errDeadline
			return
		}
		a.batch, a.err = ix.setsPrefix(ctx, r, d, t, &a.dec)
		if a.err != nil {
			return
		}
		if ix.dec == nil {
			a.pverts, a.pids, a.err = ix.decodeInvPairs(ctx, r, d, t)
		} else {
			a.inv, a.err = ix.invTable(ctx, r, d, &a.dec)
		}
	}
	par := base.par
	for _, u := range uniq {
		if u.par > par {
			par = u.par
		}
	}
	if par > len(q.Topics) {
		par = len(q.Topics)
	}
	if par > 1 {
		sem := make(chan struct{}, par)
		var wg sync.WaitGroup
		for i, w := range q.Topics {
			wg.Add(1)
			go func(a *kwArtifacts, ix *Index, r diskio.Segmented, d *KeywordDir, t int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				fetchOne(a, ix, r, d, t)
			}(&arts[i], idxAt(i), readerAt(i), dirOf[i], alloc[w])
		}
		wg.Wait()
	} else {
		for i, w := range q.Topics {
			fetchOne(&arts[i], idxAt(i), readerAt(i), dirOf[i], alloc[w])
			if arts[i].err != nil {
				break // later keywords keep zero artifacts; merge reports the error
			}
		}
	}
	defer func() {
		for i := range arts {
			if arts[i].pverts != nil {
				pool.PutUint32s(arts[i].pverts)
				pool.PutInt32s(arts[i].pids)
			}
			if idxAt(i).dec == nil && arts[i].batch != nil {
				// Query-private pool-backed batches (never cache-shared).
				pool.PutUint32s(arts[i].batch.Flat)
				pool.PutInt64s(arts[i].batch.Off)
			}
		}
	}()
	deadlineHit := false
	for i, w := range q.Topics {
		a := &arts[i]
		dec.add(a.dec)
		if errors.Is(a.err, errDeadline) {
			deadlineHit = true
			continue
		}
		if a.err != nil {
			return nil, fmt.Errorf("rrindex: keyword %d: %w", w, a.err)
		}
	}
	if deadlineHit {
		// The deadline expired while artifacts were still loading: RR-greedy
		// certifies no seed before every keyword's sets are merged, so the
		// best certified prefix is empty. Report what was spent and stop.
		var io diskio.Stats
		if multi {
			for _, s := range scopes {
				io = io.Add(s.Stats())
			}
		} else {
			io = scope0.Stats()
		}
		return &QueryResult{
			Result:        wris.Result{Elapsed: time.Since(start)},
			IO:            io,
			Loaded:        loaded,
			DecodedHits:   dec.hits,
			DecodedMisses: dec.misses,
			Partial:       true,
		}, nil
	}

	// Merge pass 1: per-vertex pair counts, so the query lists can live in
	// ONE pooled arena instead of thousands of per-vertex appends.
	counts := pool.Ints(base.hdr.NumVertices)
	defer pool.PutInts(counts)
	totalPairs := 0
	for i := range arts {
		a := &arts[i]
		t := alloc[q.Topics[i]]
		if a.inv != nil {
			for j, v := range a.inv.verts {
				cut := trimLen(a.inv.lists[j], t)
				counts[v] += cut
				totalPairs += cut
			}
		} else {
			for _, v := range a.pverts {
				counts[v]++
			}
			totalPairs += len(a.pverts)
		}
	}
	arena := pool.Int32s(totalPairs)
	defer pool.PutInt32s(arena)
	pos := 0
	for v, n := range counts {
		if n > 0 {
			lists[v] = arena[pos : pos : pos+n]
			pos += n
		}
	}
	// Merge pass 2: fill in keyword order — per-vertex IDs ascend within a
	// keyword and offsets grow across keywords, exactly the order the
	// one-pass merge produced.
	for i, w := range q.Topics {
		a := &arts[i]
		d := dirOf[i]
		phiQ += d.Phi
		t := alloc[w]
		if a.inv != nil {
			for j, v := range a.inv.verts {
				list := a.inv.lists[j]
				for _, id := range list[:trimLen(list, t)] {
					lists[v] = append(lists[v], id+offset)
				}
			}
		} else {
			for j, v := range a.pverts {
				lists[v] = append(lists[v], a.pids[j]+offset)
			}
		}
		views = append(views, setsView{start: offset, batch: a.batch})
		offset += int32(t)
		loaded[w] = t
	}

	// The solve is pure CPU on fully merged state, so this is the last
	// moment a canceled query can stop early.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	total := int(offset)
	inst := &coverage.Instance{
		NumVertices: base.hdr.NumVertices,
		NumSets:     total,
		Lists:       lists,
	}
	// Queries carry a handful of keywords, so a reverse linear scan finds
	// the owning batch faster than anything fancier.
	members := func(id int32) []uint32 {
		for i := len(views) - 1; i >= 0; i-- {
			if id >= views[i].start {
				return views[i].batch.Set(int(id - views[i].start))
			}
		}
		return nil
	}
	// total and phiQ are both known before selection starts (the plan fixed
	// them), so the running spread lower bound of an emitted prefix uses the
	// same formula as the final EstSpread — emissions never over-promise.
	sopts := coverage.SolveOptions{Deadline: so.Deadline}
	if so.Emit != nil {
		running := 0
		sopts.Emit = func(seed uint32, marginal int) {
			running += marginal
			so.Emit(seed, marginal, float64(running)/float64(total)*phiQ)
		}
	}
	res, err := coverage.SolveOpts(inst, q.K, members, sopts)
	if err != nil {
		return nil, err
	}
	var io diskio.Stats
	if multi {
		for _, s := range scopes {
			io = io.Add(s.Stats())
		}
	} else {
		io = scope0.Stats()
	}
	return &QueryResult{
		Result: wris.Result{
			Seeds:     res.Seeds,
			EstSpread: float64(res.Covered) / float64(total) * phiQ,
			Covered:   res.Covered,
			NumRRSets: total,
			Elapsed:   time.Since(start),
		},
		Marginals:     res.Marginal,
		IO:            io,
		Loaded:        loaded,
		DecodedHits:   dec.hits,
		DecodedMisses: dec.misses,
		Partial:       res.Partial,
	}, nil
}

// planWire is the RR query's batch round. Algorithm 2 reads exactly two
// artifacts per keyword — the θ^Q_w sets prefix and the inverted region —
// and the allocation fixes both before any fetch starts, so for every
// remote batch-capable index the complete wire need is known up front: it
// is gathered here, minus units already resident in that index's decoded
// cache, and moved in one FetchBatch per owning index (concurrently across
// indexes for spanning queries). Successful payloads land in per-index
// stashes; failed units are simply not stashed, so the per-unit fetch path
// retries them with its own failover and surfaces errors with the usual
// keyword context. Plans that would batch a single unit are dropped — one
// POST saves nothing over one GET.
func planWire(ctx context.Context, topics []int, idxAt func(int) *Index, dirOf []*KeywordDir, alloc map[int]int) map[*Index]*artifact.Stash {
	var plans map[*Index][]artifact.Request
	for i := range topics {
		ix := idxAt(i)
		if ix.fetch == nil {
			continue
		}
		if _, ok := ix.fetch.(BatchFetcher); !ok {
			continue
		}
		d := dirOf[i]
		t := int64(alloc[topics[i]])
		var reqs []artifact.Request
		if ix.dec == nil || !ix.dec.Contains(objcache.Key{Region: regionSets, Topic: int32(d.TopicID), Aux: t}) {
			reqs = append(reqs, artifact.Request{Unit: UnitSets, Topic: d.TopicID, Aux: t})
		}
		if ix.dec == nil || !ix.dec.Contains(objcache.Key{Region: regionInv, Topic: int32(d.TopicID)}) {
			reqs = append(reqs, artifact.Request{Unit: UnitInv, Topic: d.TopicID})
		}
		if len(reqs) == 0 {
			continue
		}
		if plans == nil {
			plans = make(map[*Index][]artifact.Request)
		}
		plans[ix] = append(plans[ix], reqs...)
	}
	var (
		stashes map[*Index]*artifact.Stash
		mu      sync.Mutex
		wg      sync.WaitGroup
	)
	for ix, reqs := range plans {
		if len(reqs) < 2 {
			continue
		}
		wg.Add(1)
		go func(ix *Index, bf BatchFetcher, reqs []artifact.Request) {
			defer wg.Done()
			st := artifact.NewStash()
			for k, rep := range bf.FetchBatch(ctx, reqs) {
				if rep.Err == nil {
					st.Put(reqs[k], rep.Payload)
				}
			}
			mu.Lock()
			if stashes == nil {
				stashes = make(map[*Index]*artifact.Stash)
			}
			stashes[ix] = st
			mu.Unlock()
		}(ix, ix.fetch.(BatchFetcher), reqs)
	}
	wg.Wait()
	return stashes
}

// trimLen returns how many leading IDs of the ascending list are below the
// θ^Q_w horizon t (the per-query trim of a shared, untrimmed cached list).
func trimLen(list []int32, t int) int {
	return sort.Search(len(list), func(j int) bool { return list[j] >= int32(t) })
}

// setsPrefix returns keyword d's first t RR sets as a batch, served from the
// decoded cache when one is attached (key includes the θ-prefix t, so every
// distinct prefix is its own artifact, exactly as hot repeated queries
// produce). Without a cache the batch is query-private and pool-backed; the
// caller returns it after the solve.
func (idx *Index) setsPrefix(ctx context.Context, r diskio.Segmented, d *KeywordDir, t int, dec *decCounters) (*rrset.Batch, error) {
	if idx.dec == nil {
		return idx.decodeSets(ctx, r, d, t, true)
	}
	// The loader runs under singleflight: concurrent queries share one
	// load, so it must not die with the query that happened to lead it — a
	// canceled leader would poison every live waiter with ITS ctx error.
	// Detach cancellation for the load (the result lands in the shared
	// cache either way); the canceled query still stops at its next
	// keyword-load boundary.
	lctx := context.WithoutCancel(ctx)
	v, hit, err := idx.dec.GetOrLoad(
		objcache.Key{Region: regionSets, Topic: int32(d.TopicID), Aux: int64(t)},
		func() (any, int64, error) {
			b, err := idx.decodeSets(lctx, r, d, t, false)
			if err != nil {
				return nil, 0, err
			}
			return b, int64(len(b.Flat))*4 + int64(len(b.Off))*8, nil
		})
	if err != nil {
		return nil, err
	}
	if hit {
		dec.hits++
	} else {
		dec.misses++
	}
	return v.(*rrset.Batch), nil
}

// decodeSets fetches the first t RR sets of keyword d in one sequential
// segment read through the query's scope and decodes them into a fresh
// batch. A pooled batch borrows its backing arrays from the scratch pools
// (query-private use only — NEVER for a batch published to the decoded
// cache, whose artifacts are shared and immutable).
func (idx *Index) decodeSets(ctx context.Context, r diskio.Segmented, d *KeywordDir, t int, pooled bool) (_ *rrset.Batch, err error) {
	buf, err := idx.artifact(ctx, r, UnitSets, d.TopicID, int64(t), d.SetsOff, d.prefixBytes(int64(t)))
	if err != nil {
		return nil, err
	}
	batch := &rrset.Batch{}
	if pooled {
		// Flat's decoded length is unknown before the decode; half the
		// compressed byte count is a workable hint (delta-varint members
		// average ~2 bytes) and the pool's class fall-through absorbs the
		// rest. Off is exactly t+1 entries.
		batch.Flat = pool.Uint32s(len(buf) / 2)[:0]
		batch.Off = pool.Int64s(t + 1)[:0]
		// A decode error below abandons batch before the caller ever
		// sees it; return the borrowed arrays instead of leaking them.
		defer func() {
			if err != nil {
				pool.PutUint32s(batch.Flat)
				pool.PutInt64s(batch.Off)
			}
		}()
	}
	pos := 0
	scratch := pool.Uint32s(64)[:0]
	defer func() { pool.PutUint32s(scratch) }()
	for i := 0; i < t; i++ {
		scratch = scratch[:0]
		var n int
		scratch, n, err = idx.hdr.Compression.DecodeList(scratch, buf[pos:])
		if err != nil {
			return nil, err
		}
		pos += n
		for _, v := range scratch {
			if int(v) >= idx.hdr.NumVertices {
				return nil, fmt.Errorf("%w: member %d out of range", ErrBadFormat, v)
			}
		}
		batch.Append(scratch)
	}
	return batch, nil
}

// invTable is one keyword's fully decoded inverted region: verts[i]'s
// ascending, UNtrimmed RR-ID lists are lists[i]. Shared read-only through the
// decoded cache; queries trim by slicing. Post-construction writes outside
// the constructing function are checked by kbtim-lint's cacheimmutable.
//
//kbtim:cached
type invTable struct {
	verts []uint32
	lists [][]int32
}

// decodeInvPairs is the cache-free path's inverted-region decode: keyword
// d's inverted region becomes private pool-backed (vertex, RR-ID) pairs
// trimmed to IDs < t, which the merge phase folds into the query lists. The
// caller returns both slices to the pools.
func (idx *Index) decodeInvPairs(ctx context.Context, r diskio.Segmented, d *KeywordDir, t int) ([]uint32, []int32, error) {
	// Pair count is bounded by the region's entry count; half the compressed
	// byte length is a workable capacity hint (IDs are ~2 varint bytes) and
	// the pool's class fall-through absorbs the rest.
	hint := int(d.InvLen / 2)
	verts := pool.Uint32s(hint)[:0]
	ids := pool.Int32s(hint)[:0]
	err := idx.walkInv(ctx, r, d, func(v uint32, list []uint32) {
		for _, id := range list {
			if id >= uint32(t) {
				break
			}
			verts = append(verts, v)
			ids = append(ids, int32(id))
		}
	})
	if err != nil {
		pool.PutUint32s(verts)
		pool.PutInt32s(ids)
		return nil, nil, err
	}
	return verts, ids, nil
}

// walkInv fetches keyword d's whole inverted region (one sequential read)
// and streams each (vertex, ascending RR-ID list) pair through fn; the list
// aliases decode scratch and must not be retained.
func (idx *Index) walkInv(ctx context.Context, r diskio.Segmented, d *KeywordDir, fn func(v uint32, ids []uint32)) error {
	buf, err := idx.artifact(ctx, r, UnitInv, d.TopicID, 0, d.InvOff, d.InvLen)
	if err != nil {
		return err
	}
	pos := 0
	scratch := pool.Uint32s(64)[:0]
	defer func() { pool.PutUint32s(scratch) }()
	for i := 0; i < d.NumInvLists; i++ {
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 || v >= uint64(idx.hdr.NumVertices) {
			return fmt.Errorf("%w: bad inverted-list vertex", ErrBadFormat)
		}
		pos += n
		scratch = scratch[:0]
		scratch, n, err = idx.hdr.Compression.DecodeList(scratch, buf[pos:])
		if err != nil {
			return err
		}
		pos += n
		fn(uint32(v), scratch)
	}
	if pos != len(buf) {
		return fmt.Errorf("%w: inverted region has %d trailing bytes", ErrBadFormat, len(buf)-pos)
	}
	return nil
}

// invTable returns keyword d's decoded inverted table from the decoded
// cache. The artifact is decoded in full (untrimmed) because it is shared
// by queries with different allocations.
func (idx *Index) invTable(ctx context.Context, r diskio.Segmented, d *KeywordDir, dec *decCounters) (*invTable, error) {
	// Detached ctx for the same singleflight-sharing reason as setsPrefix.
	lctx := context.WithoutCancel(ctx)
	v, hit, err := idx.dec.GetOrLoad(
		objcache.Key{Region: regionInv, Topic: int32(d.TopicID)},
		func() (any, int64, error) {
			tbl, err := idx.decodeInv(lctx, r, d)
			if err != nil {
				return nil, 0, err
			}
			size := int64(len(tbl.verts)) * 28 // vert + slice header per list
			for _, l := range tbl.lists {
				size += int64(len(l)) * 4
			}
			return tbl, size, nil
		})
	if err != nil {
		return nil, err
	}
	if hit {
		dec.hits++
	} else {
		dec.misses++
	}
	return v.(*invTable), nil
}

// decodeInv fetches the whole inverted region of keyword d (one sequential
// read) and decodes every list in full, for the shared cached artifact
// (never pool-backed: cached values outlive the query).
func (idx *Index) decodeInv(ctx context.Context, r diskio.Segmented, d *KeywordDir) (*invTable, error) {
	tbl := &invTable{
		verts: make([]uint32, 0, d.NumInvLists),
		lists: make([][]int32, 0, d.NumInvLists),
	}
	err := idx.walkInv(ctx, r, d, func(v uint32, ids []uint32) {
		list := make([]int32, len(ids))
		for j, id := range ids {
			list[j] = int32(id)
		}
		tbl.verts = append(tbl.verts, v)
		tbl.lists = append(tbl.lists, list)
	})
	if err != nil {
		return nil, err
	}
	return tbl, nil
}
