package rrindex

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"kbtim/internal/coverage"
	"kbtim/internal/diskio"
	"kbtim/internal/objcache"
	"kbtim/internal/rrset"
	"kbtim/internal/topic"
	"kbtim/internal/wris"
)

// Decoded-cache regions of this index (see objcache.Key).
const (
	regionSets objcache.Region = iota // Aux = θ-prefix length → *rrset.Batch
	regionInv                         // Aux = 0 → *invTable
)

// Index is an opened RR index ready for query processing. After Open the
// header and directory are immutable and every Query works on its own
// scratch state and a per-query I/O scope, so one Index is safe for
// concurrent use by multiple goroutines (provided the underlying reader
// supports concurrent positional reads, as diskio.File, diskio.Mem, and
// diskio.CachedReader all do).
type Index struct {
	hdr  Header
	dirs map[int]*KeywordDir
	r    diskio.Segmented
	dec  *objcache.Cache // optional decoded-object cache, set before first Query
}

// Open parses the header and directory of an index accessible through r.
// The payload stays on "disk" and is fetched per query.
func Open(r diskio.Segmented) (*Index, error) {
	head, err := r.ReadSegment(0, 16)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(head[:4]) != indexMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, head[:4])
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != indexVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	preludeLen := int64(binary.LittleEndian.Uint64(head[8:16]))
	if preludeLen < 16 || preludeLen > r.Size() {
		return nil, fmt.Errorf("%w: implausible prelude length %d", ErrBadFormat, preludeLen)
	}
	prelude, err := r.ReadSegment(0, preludeLen)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	hr := &headerReader{buf: prelude}
	hdr, numKeywords, err := parseHeader(hr)
	if err != nil {
		return nil, err
	}
	idx := &Index{hdr: hdr, dirs: make(map[int]*KeywordDir, numKeywords), r: r}
	for i := 0; i < numKeywords; i++ {
		d, err := parseKeywordDir(hr, &hdr)
		if err != nil {
			return nil, err
		}
		if d.SetsOff < preludeLen || d.SetsOff+d.SetsLen > r.Size() ||
			d.InvOff < preludeLen || d.InvOff+d.InvLen > r.Size() {
			return nil, fmt.Errorf("%w: payload offsets for topic %d out of file", ErrBadFormat, d.TopicID)
		}
		dd := d
		idx.dirs[d.TopicID] = &dd
	}
	return idx, nil
}

// SetDecodedCache attaches a decoded-object cache: parsed RR-set batch
// prefixes and inverted tables are cached across queries (with singleflight
// loading), so hot keywords skip both the disk AND the decode. Must be
// called before the index is shared between goroutines (i.e. right after
// Open); pass nil to detach. Cached values are immutable — queries trim to
// their private θ^Q_w by slicing.
func (idx *Index) SetDecodedCache(c *objcache.Cache) { idx.dec = c }

// Header returns the index-wide metadata.
func (idx *Index) Header() Header { return idx.hdr }

// Keywords returns the indexed topic IDs (unordered).
func (idx *Index) Keywords() []int {
	out := make([]int, 0, len(idx.dirs))
	for t := range idx.dirs {
		out = append(out, t)
	}
	return out
}

// Dir exposes one keyword's directory entry (nil if not indexed).
func (idx *Index) Dir(topicID int) *KeywordDir { return idx.dirs[topicID] }

// QueryResult is a wris.Result plus the disk-access profile of the query.
type QueryResult struct {
	wris.Result
	// Marginals[i] is the number of newly covered RR sets when Seeds[i]
	// was picked (the greedy trace; Theorem 3 compares these against the
	// IRR index's).
	Marginals []int
	// IO is the logical disk activity the query incurred.
	IO diskio.Stats
	// Loaded maps each query keyword to the number of RR sets fetched
	// (θ^Q_w, the Figure 5–7 "number of RR sets loaded" series).
	Loaded map[int]int
	// DecodedHits / DecodedMisses count decoded-cache lookups by this
	// query (zero when no decoded cache is attached). A hit means the
	// artifact was consumed without any read OR decode.
	DecodedHits   int64
	DecodedMisses int64
}

// decCounters accumulates one query's decoded-cache traffic.
type decCounters struct {
	hits, misses int64
}

// Plan computes θ^Q and the per-keyword allocation θ^Q_w = θ^Q·p_w of
// Algorithm 2 lines 1–4, using the φ_w values frozen into the index.
func (idx *Index) Plan(q topic.Query) (map[int]int, error) {
	if err := q.Validate(idx.hdr.NumTopics); err != nil {
		return nil, err
	}
	if q.K > idx.hdr.K {
		return nil, fmt.Errorf("rrindex: Q.k=%d exceeds index cap K=%d", q.K, idx.hdr.K)
	}
	var phiQ float64
	for _, w := range q.Topics {
		d := idx.dirs[w]
		if d == nil {
			return nil, fmt.Errorf("rrindex: keyword %d not indexed", w)
		}
		phiQ += d.Phi
	}
	if phiQ <= 0 {
		return nil, fmt.Errorf("rrindex: query %v has zero mass", q.Topics)
	}
	thetaQ := math.Inf(1)
	for _, w := range q.Topics {
		d := idx.dirs[w]
		pw := d.Phi / phiQ
		if pw <= 0 {
			continue
		}
		if v := float64(d.ThetaW) / pw; v < thetaQ {
			thetaQ = v
		}
	}
	alloc := make(map[int]int, len(q.Topics))
	for _, w := range q.Topics {
		d := idx.dirs[w]
		pw := d.Phi / phiQ
		t := int64(thetaQ*pw + 1e-9)
		if t < 1 {
			t = 1
		}
		if t > d.ThetaW {
			t = d.ThetaW
		}
		alloc[w] = int(t)
	}
	return alloc, nil
}

// setsView maps one keyword's RR-set batch into the query's global set-ID
// space: set (start+i) is batch.Set(i).
type setsView struct {
	start int32
	batch *rrset.Batch
}

// Query answers a KB-TIM query with Algorithm 2: load θ^Q_w RR sets and the
// inverted file of every query keyword, then run greedy maximum coverage.
func (idx *Index) Query(q topic.Query) (*QueryResult, error) {
	start := time.Now()
	// All reads go through a per-query scope: precise I/O accounting with
	// no shared cursor, so concurrent queries cannot race or pollute each
	// other's sequential/random classification.
	r := diskio.NewScope(idx.r)
	alloc, err := idx.Plan(q)
	if err != nil {
		return nil, err
	}

	var dec decCounters
	views := make([]setsView, 0, len(q.Topics))
	lists := make([][]int32, idx.hdr.NumVertices)
	offset := int32(0)
	loaded := make(map[int]int, len(alloc))
	var phiQ float64
	for _, w := range q.Topics {
		d := idx.dirs[w]
		phiQ += d.Phi
		t := alloc[w]
		batch, err := idx.setsPrefix(r, d, t, &dec)
		if err != nil {
			return nil, fmt.Errorf("rrindex: keyword %d sets: %w", w, err)
		}
		if idx.dec == nil {
			// No decoded cache: merge straight from the decode scratch into
			// the query-private lists, with no intermediate table.
			if err := idx.mergeInverted(r, d, t, offset, lists); err != nil {
				return nil, fmt.Errorf("rrindex: keyword %d inverted: %w", w, err)
			}
		} else {
			inv, err := idx.invTable(r, d, &dec)
			if err != nil {
				return nil, fmt.Errorf("rrindex: keyword %d inverted: %w", w, err)
			}
			// Merge into the query-private lists, trimming each (ascending)
			// RR-ID list to IDs < θ^Q_w and applying the global offset. The
			// cached table itself is never modified.
			for i, v := range inv.verts {
				list := inv.lists[i]
				cut := sort.Search(len(list), func(j int) bool { return list[j] >= int32(t) })
				for _, id := range list[:cut] {
					lists[v] = append(lists[v], id+offset)
				}
			}
		}
		views = append(views, setsView{start: offset, batch: batch})
		offset += int32(t)
		loaded[w] = t
	}

	total := int(offset)
	inst := &coverage.Instance{
		NumVertices: idx.hdr.NumVertices,
		NumSets:     total,
		Lists:       lists,
	}
	// Queries carry a handful of keywords, so a reverse linear scan finds
	// the owning batch faster than anything fancier.
	members := func(id int32) []uint32 {
		for i := len(views) - 1; i >= 0; i-- {
			if id >= views[i].start {
				return views[i].batch.Set(int(id - views[i].start))
			}
		}
		return nil
	}
	res, err := coverage.Solve(inst, q.K, members)
	if err != nil {
		return nil, err
	}
	return &QueryResult{
		Result: wris.Result{
			Seeds:     res.Seeds,
			EstSpread: float64(res.Covered) / float64(total) * phiQ,
			Covered:   res.Covered,
			NumRRSets: total,
			Elapsed:   time.Since(start),
		},
		Marginals:     res.Marginal,
		IO:            r.Stats(),
		Loaded:        loaded,
		DecodedHits:   dec.hits,
		DecodedMisses: dec.misses,
	}, nil
}

// setsPrefix returns keyword d's first t RR sets as a batch, served from the
// decoded cache when one is attached (key includes the θ-prefix t, so every
// distinct prefix is its own artifact, exactly as hot repeated queries
// produce).
func (idx *Index) setsPrefix(r diskio.Segmented, d *KeywordDir, t int, dec *decCounters) (*rrset.Batch, error) {
	if idx.dec == nil {
		return idx.decodeSets(r, d, t)
	}
	v, hit, err := idx.dec.GetOrLoad(
		objcache.Key{Region: regionSets, Topic: int32(d.TopicID), Aux: int64(t)},
		func() (any, int64, error) {
			b, err := idx.decodeSets(r, d, t)
			if err != nil {
				return nil, 0, err
			}
			return b, int64(len(b.Flat))*4 + int64(len(b.Off))*8, nil
		})
	if err != nil {
		return nil, err
	}
	if hit {
		dec.hits++
	} else {
		dec.misses++
	}
	return v.(*rrset.Batch), nil
}

// decodeSets fetches the first t RR sets of keyword d in one sequential
// segment read through the query's scope and decodes them into a fresh
// batch.
func (idx *Index) decodeSets(r diskio.Segmented, d *KeywordDir, t int) (*rrset.Batch, error) {
	buf, err := r.ReadSegment(d.SetsOff, d.prefixBytes(int64(t)))
	if err != nil {
		return nil, err
	}
	batch := &rrset.Batch{}
	pos := 0
	scratch := make([]uint32, 0, 64)
	for i := 0; i < t; i++ {
		scratch = scratch[:0]
		var n int
		scratch, n, err = idx.hdr.Compression.DecodeList(scratch, buf[pos:])
		if err != nil {
			return nil, err
		}
		pos += n
		for _, v := range scratch {
			if int(v) >= idx.hdr.NumVertices {
				return nil, fmt.Errorf("%w: member %d out of range", ErrBadFormat, v)
			}
		}
		batch.Append(scratch)
	}
	return batch, nil
}

// invTable is one keyword's fully decoded inverted region: verts[i]'s
// ascending, UNtrimmed RR-set IDs are lists[i]. Shared read-only through the
// decoded cache; queries trim by slicing.
type invTable struct {
	verts []uint32
	lists [][]int32
}

// mergeInverted is the cache-free fast path: it fetches keyword d's whole
// inverted region (one sequential read), keeps only RR IDs < t, applies the
// global ID offset, and merges directly into lists.
func (idx *Index) mergeInverted(r diskio.Segmented, d *KeywordDir, t int, offset int32, lists [][]int32) error {
	buf, err := r.ReadSegment(d.InvOff, d.InvLen)
	if err != nil {
		return err
	}
	pos := 0
	scratch := make([]uint32, 0, 64)
	for i := 0; i < d.NumInvLists; i++ {
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 || v >= uint64(idx.hdr.NumVertices) {
			return fmt.Errorf("%w: bad inverted-list vertex", ErrBadFormat)
		}
		pos += n
		scratch = scratch[:0]
		scratch, n, err = idx.hdr.Compression.DecodeList(scratch, buf[pos:])
		if err != nil {
			return err
		}
		pos += n
		for _, id := range scratch {
			if id >= uint32(t) {
				break // IDs ascend; the rest are beyond θ^Q_w
			}
			lists[v] = append(lists[v], int32(id)+offset)
		}
	}
	if pos != len(buf) {
		return fmt.Errorf("%w: inverted region has %d trailing bytes", ErrBadFormat, len(buf)-pos)
	}
	return nil
}

// invTable returns keyword d's decoded inverted table from the decoded
// cache. The artifact is decoded in full (untrimmed) because it is shared
// by queries with different allocations.
func (idx *Index) invTable(r diskio.Segmented, d *KeywordDir, dec *decCounters) (*invTable, error) {
	v, hit, err := idx.dec.GetOrLoad(
		objcache.Key{Region: regionInv, Topic: int32(d.TopicID)},
		func() (any, int64, error) {
			tbl, err := idx.decodeInv(r, d)
			if err != nil {
				return nil, 0, err
			}
			size := int64(len(tbl.verts)) * 28 // vert + slice header per list
			for _, l := range tbl.lists {
				size += int64(len(l)) * 4
			}
			return tbl, size, nil
		})
	if err != nil {
		return nil, err
	}
	if hit {
		dec.hits++
	} else {
		dec.misses++
	}
	return v.(*invTable), nil
}

// decodeInv fetches the whole inverted region of keyword d (one sequential
// read) and decodes every list in full, for the shared cached artifact.
func (idx *Index) decodeInv(r diskio.Segmented, d *KeywordDir) (*invTable, error) {
	buf, err := r.ReadSegment(d.InvOff, d.InvLen)
	if err != nil {
		return nil, err
	}
	tbl := &invTable{
		verts: make([]uint32, 0, d.NumInvLists),
		lists: make([][]int32, 0, d.NumInvLists),
	}
	pos := 0
	scratch := make([]uint32, 0, 64)
	for i := 0; i < d.NumInvLists; i++ {
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 || v >= uint64(idx.hdr.NumVertices) {
			return nil, fmt.Errorf("%w: bad inverted-list vertex", ErrBadFormat)
		}
		pos += n
		scratch = scratch[:0]
		scratch, n, err = idx.hdr.Compression.DecodeList(scratch, buf[pos:])
		if err != nil {
			return nil, err
		}
		pos += n
		list := make([]int32, len(scratch))
		for j, id := range scratch {
			list[j] = int32(id)
		}
		tbl.verts = append(tbl.verts, uint32(v))
		tbl.lists = append(tbl.lists, list)
	}
	if pos != len(buf) {
		return nil, fmt.Errorf("%w: inverted region has %d trailing bytes", ErrBadFormat, len(buf)-pos)
	}
	return tbl, nil
}
