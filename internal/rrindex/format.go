// Package rrindex implements the disk-based RR index of §4: per-keyword
// pre-sampled RR sets (R_w, drawn with the discriminative probability
// ps(v,w)) plus the vertex → RR-set-IDs inverted file (L_w), built offline
// by Algorithm 1 and consumed at query time by Algorithm 2.
//
// On-disk layout (single file, little-endian):
//
//	header:
//	  magic "KBRI" | version u32 | compression u8 | sizing u8 |
//	  modelNameLen u8 | modelName | numVertices u64 | numTopics u32 |
//	  K u32 | epsilon f64 | numKeywords u32
//	directory, one entry per indexed keyword:
//	  topicID u32 | thetaW u64 | tfSum f64 | phi f64 |
//	  setsOff u64 | setsLen u64 | invOff u64 | invLen u64 |
//	  numInvLists u32 | numCheckpoints u32 | checkpoints (u64 each)
//	payload:
//	  per keyword: sets region (thetaW encoded member lists back to back)
//	  followed by inverted region (numInvLists × [vertex uvarint,
//	  encoded RR-ID list]).
//
// Checkpoints record the byte end of every checkpointInterval-th RR set so
// a query can fetch the first θ^Q_w sets with one sequential segment read
// (over-reading at most one checkpoint's worth), without a per-set offset
// table.
package rrindex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"kbtim/internal/codec"
	"kbtim/internal/wris"
)

const (
	indexMagic   = "KBRI"
	indexVersion = 1

	// checkpointInterval is the RR-set granularity of prefix loading.
	checkpointInterval = 1024
)

// ErrBadFormat reports a malformed or corrupt index file.
var ErrBadFormat = errors.New("rrindex: bad index format")

// Header is the index-wide metadata.
type Header struct {
	Compression codec.Compression
	Sizing      wris.SizingMode
	ModelName   string
	NumVertices int
	NumTopics   int
	K           int
	Epsilon     float64
}

// KeywordDir is one keyword's directory entry.
type KeywordDir struct {
	TopicID     int
	ThetaW      int64
	TFSum       float64
	Phi         float64
	SetsOff     int64
	SetsLen     int64
	InvOff      int64
	InvLen      int64
	NumInvLists int
	// Checkpoints[i] is the byte offset (within the sets region) just past
	// RR set number (i+1)·checkpointInterval; the final entry always equals
	// SetsLen.
	Checkpoints []int64
}

// prefixBytes returns how many bytes of the sets region must be read to
// decode the first t RR sets: Checkpoints[j-1] for j = ceil(t/interval),
// since Checkpoints[i] ends set (i+1)·interval.
func (d *KeywordDir) prefixBytes(t int64) int64 {
	if t >= d.ThetaW {
		return d.SetsLen
	}
	j := (t + checkpointInterval - 1) / checkpointInterval
	if j < 1 {
		j = 1
	}
	if j > int64(len(d.Checkpoints)) {
		return d.SetsLen
	}
	return d.Checkpoints[j-1]
}

func appendHeader(buf []byte, h *Header, numKeywords int) ([]byte, error) {
	if len(h.ModelName) == 0 || len(h.ModelName) > 255 {
		return nil, fmt.Errorf("rrindex: invalid model name %q", h.ModelName)
	}
	if !h.Compression.Valid() {
		return nil, fmt.Errorf("rrindex: invalid compression %d", h.Compression)
	}
	buf = append(buf, indexMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, indexVersion)
	// Prelude length (header + directory bytes); patched by the builder
	// once the directory size is known, read first by Open.
	buf = binary.LittleEndian.AppendUint64(buf, 0)
	buf = append(buf, byte(h.Compression), byte(h.Sizing), byte(len(h.ModelName)))
	buf = append(buf, h.ModelName...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(h.NumVertices))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.NumTopics))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.K))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.Epsilon))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(numKeywords))
	return buf, nil
}

// headerReader incrementally parses from a byte slice with error capture.
type headerReader struct {
	buf []byte
	pos int
	err error
}

func (r *headerReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.pos+n > len(r.buf) {
		r.err = fmt.Errorf("%w: truncated at byte %d", ErrBadFormat, r.pos)
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *headerReader) u8() byte {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *headerReader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *headerReader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *headerReader) f64() float64 { return math.Float64frombits(r.u64()) }

func parseHeader(r *headerReader) (Header, int, error) {
	var h Header
	magic := r.bytes(4)
	if r.err != nil {
		return h, 0, r.err
	}
	if string(magic) != indexMagic {
		return h, 0, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic)
	}
	if v := r.u32(); r.err == nil && v != indexVersion {
		return h, 0, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	r.u64() // prelude length, already consumed by the caller's segment read
	h.Compression = codec.Compression(r.u8())
	h.Sizing = wris.SizingMode(r.u8())
	nameLen := int(r.u8())
	name := r.bytes(nameLen)
	if r.err == nil {
		h.ModelName = string(name)
	}
	h.NumVertices = int(r.u64())
	h.NumTopics = int(r.u32())
	h.K = int(r.u32())
	h.Epsilon = r.f64()
	numKeywords := int(r.u32())
	if r.err != nil {
		return h, 0, r.err
	}
	if !h.Compression.Valid() {
		return h, 0, fmt.Errorf("%w: unknown compression %d", ErrBadFormat, h.Compression)
	}
	if h.NumVertices < 0 || h.NumTopics <= 0 || numKeywords < 0 || numKeywords > h.NumTopics {
		return h, 0, fmt.Errorf("%w: implausible header", ErrBadFormat)
	}
	return h, numKeywords, nil
}

func appendKeywordDir(buf []byte, d *KeywordDir) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.TopicID))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.ThetaW))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.TFSum))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.Phi))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.SetsOff))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.SetsLen))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.InvOff))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.InvLen))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.NumInvLists))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(d.Checkpoints)))
	for _, c := range d.Checkpoints {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c))
	}
	return buf
}

func parseKeywordDir(r *headerReader, h *Header) (KeywordDir, error) {
	var d KeywordDir
	d.TopicID = int(r.u32())
	d.ThetaW = int64(r.u64())
	d.TFSum = r.f64()
	d.Phi = r.f64()
	d.SetsOff = int64(r.u64())
	d.SetsLen = int64(r.u64())
	d.InvOff = int64(r.u64())
	d.InvLen = int64(r.u64())
	d.NumInvLists = int(r.u32())
	numCk := int(r.u32())
	if r.err != nil {
		return d, r.err
	}
	if numCk < 0 || numCk > 1<<28 {
		return d, fmt.Errorf("%w: implausible checkpoint count %d", ErrBadFormat, numCk)
	}
	d.Checkpoints = make([]int64, numCk)
	for i := range d.Checkpoints {
		d.Checkpoints[i] = int64(r.u64())
	}
	if r.err != nil {
		return d, r.err
	}
	if d.TopicID < 0 || d.TopicID >= h.NumTopics || d.ThetaW <= 0 ||
		d.SetsLen < 0 || d.InvLen < 0 || d.NumInvLists < 0 || d.NumInvLists > h.NumVertices {
		return d, fmt.Errorf("%w: implausible directory for topic %d", ErrBadFormat, d.TopicID)
	}
	if n := len(d.Checkpoints); n == 0 || d.Checkpoints[n-1] != d.SetsLen {
		return d, fmt.Errorf("%w: checkpoint chain broken for topic %d", ErrBadFormat, d.TopicID)
	}
	return d, nil
}
