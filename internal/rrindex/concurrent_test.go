package rrindex

import (
	"reflect"
	"sync"
	"testing"

	"kbtim/internal/codec"
	"kbtim/internal/diskio"
	"kbtim/internal/topic"
	"kbtim/internal/wris"
)

// TestQueryConcurrent runs many goroutines against one shared Index (run
// under -race): every result must equal the serial baseline, including the
// per-query I/O profile, which is now scoped per query instead of diffed
// off a shared counter.
func TestQueryConcurrent(t *testing.T) {
	idx, _ := buildFigure1(t, codec.Delta, wris.SizeTheta)
	queries := []topic.Query{
		{Topics: []int{topicMusic}, K: 2},
		{Topics: []int{topicMusic, topicBook}, K: 2},
		{Topics: []int{topicBook, topicSport, topicCar}, K: 3},
	}
	baseline := make([]*QueryResult, len(queries))
	for i, q := range queries {
		res, err := idx.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		baseline[i] = res
	}

	const goroutines, rounds = 8, 10
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				qi := (g + i) % len(queries)
				res, err := idx.Query(queries[qi])
				if err != nil {
					errc <- err
					return
				}
				want := baseline[qi]
				if !reflect.DeepEqual(res.Seeds, want.Seeds) ||
					res.EstSpread != want.EstSpread ||
					res.NumRRSets != want.NumRRSets ||
					res.IO != want.IO {
					t.Errorf("query %d diverged under concurrency:\n got seeds=%v spread=%v io=%+v\nwant seeds=%v spread=%v io=%+v",
						qi, res.Seeds, res.EstSpread, res.IO,
						want.Seeds, want.EstSpread, want.IO)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestQueryCachedReaderAgrees answers the same queries through a cached and
// an uncached reader over identical bytes: seeds and spread must match, the
// cached run must serve hits on repetition, and its disk I/O must shrink.
func TestQueryCachedReaderAgrees(t *testing.T) {
	idx, _ := buildFigure1(t, codec.Delta, wris.SizeTheta)
	cachedIdx := reopenCached(t, idx)

	q := topic.Query{Topics: []int{topicMusic, topicBook}, K: 2}
	plain, err := idx.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	first, err := cachedIdx.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cachedIdx.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*QueryResult{first, second} {
		if !reflect.DeepEqual(res.Seeds, plain.Seeds) || res.EstSpread != plain.EstSpread {
			t.Fatalf("cached result diverged: %v/%v vs %v/%v",
				res.Seeds, res.EstSpread, plain.Seeds, plain.EstSpread)
		}
	}
	if second.IO.CacheHits == 0 {
		t.Fatalf("repeated query produced no cache hits: %+v", second.IO)
	}
	if second.IO.Total() >= first.IO.Total() {
		t.Fatalf("cache did not reduce disk I/O: first=%+v second=%+v", first.IO, second.IO)
	}
}

// reopenCached reopens idx's underlying bytes behind a generous
// CachedReader.
func reopenCached(t *testing.T, idx *Index) *Index {
	t.Helper()
	raw, err := idx.r.ReadSegment(0, idx.r.Size())
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Open(diskio.NewCachedReader(diskio.NewMem(raw, nil), 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	return cached
}
