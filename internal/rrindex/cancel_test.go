package rrindex

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"kbtim/internal/codec"
	"kbtim/internal/diskio"
	"kbtim/internal/prop"
	"kbtim/internal/topic"
)

// gatedReader parks every read after the first blockAfter query reads until
// the gate opens — the blocking reader of the cancellation tests.
type gatedReader struct {
	inner   diskio.Segmented
	reads   atomic.Int64
	armed   atomic.Bool
	after   int64
	entered chan struct{}
	gate    chan struct{}
}

func newGatedReader(inner diskio.Segmented, after int64) *gatedReader {
	return &gatedReader{
		inner:   inner,
		after:   after,
		entered: make(chan struct{}, 64),
		gate:    make(chan struct{}),
	}
}

func (g *gatedReader) ReadSegment(off, length int64) ([]byte, error) {
	if g.armed.Load() && g.reads.Add(1) > g.after {
		g.entered <- struct{}{}
		<-g.gate
	}
	return g.inner.ReadSegment(off, length)
}

func (g *gatedReader) Size() int64              { return g.inner.Size() }
func (g *gatedReader) Counter() *diskio.Counter { return g.inner.Counter() }

// TestQueryCtxCanceledAtKeywordBoundary: a client that disconnects while
// keyword 1's artifacts are mid-fetch sees that fetch finish and the query
// stop at the next keyword-load boundary — keyword 2 is never read.
func TestQueryCtxCanceledAtKeywordBoundary(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Build(&buf, figure1(t), prop.IC{}, figure1Profiles(t), testConfig(), BuildOptions{
		Compression: codec.Delta,
	}); err != nil {
		t.Fatal(err)
	}
	g := newGatedReader(diskio.NewMem(buf.Bytes(), nil), 1)
	idx, err := Open(g) // Open's reads happen un-armed
	if err != nil {
		t.Fatal(err)
	}
	g.armed.Store(true) // query read 1 (kw 1 sets) passes, read 2 (kw 1 inv) parks

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := idx.QueryCtx(ctx, topic.Query{Topics: []int{topicMusic, topicBook}, K: 2})
		done <- err
	}()
	select {
	case <-g.entered: // keyword 1's inverted-region fetch is in flight
	case <-time.After(5 * time.Second):
		t.Fatal("query never reached the gated read")
	}
	cancel()
	close(g.gate)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled query did not return")
	}
	// Keyword 1's two artifacts only: the boundary check stopped the query
	// before keyword 2's sets fetch.
	if n := g.reads.Load(); n != 2 {
		t.Fatalf("canceled query performed %d reads, want 2 (keyword 1's sets + inverted region)", n)
	}
}

// TestQueryCtxPreCanceled: a context canceled before dispatch fails fast
// with no I/O at all.
func TestQueryCtxPreCanceled(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Build(&buf, figure1(t), prop.IC{}, figure1Profiles(t), testConfig(), BuildOptions{
		Compression: codec.Delta,
	}); err != nil {
		t.Fatal(err)
	}
	g := newGatedReader(diskio.NewMem(buf.Bytes(), nil), 0)
	idx, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	g.armed.Store(true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := idx.QueryCtx(ctx, topic.Query{Topics: []int{topicMusic}, K: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := g.reads.Load(); n != 0 {
		t.Fatalf("pre-canceled query performed %d reads, want 0", n)
	}
}
