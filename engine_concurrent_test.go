package kbtim

import (
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// concurrentEngine builds both indexes for the Figure 1 dataset and opens
// them on one Engine with the given options.
func concurrentEngine(t testing.TB, opts Options) *Engine {
	t.Helper()
	ds := exampleDataset(t)
	eng, err := NewEngine(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	dir := t.TempDir()
	rrPath := filepath.Join(dir, "ads.rr")
	irrPath := filepath.Join(dir, "ads.irr")
	if _, err := eng.BuildRRIndex(rrPath); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.BuildIRRIndex(irrPath); err != nil {
		t.Fatal(err)
	}
	if err := eng.OpenRRIndex(rrPath); err != nil {
		t.Fatal(err)
	}
	if err := eng.OpenIRRIndex(irrPath); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestEngineConcurrentQueries issues QueryIRR and QueryRR from many
// goroutines against ONE shared Engine (run under -race) and checks every
// result against the serial baseline.
func TestEngineConcurrentQueries(t *testing.T) {
	eng := concurrentEngine(t, exampleOptions())
	queries := []Query{
		{Topics: []int{0}, K: 2},
		{Topics: []int{0, 1}, K: 2},
		{Topics: []int{1, 2, 3}, K: 3},
	}
	type baseline struct{ rr, irr *Result }
	base := make([]baseline, len(queries))
	for i, q := range queries {
		rr, err := eng.QueryRR(q)
		if err != nil {
			t.Fatal(err)
		}
		irr, err := eng.QueryIRR(q)
		if err != nil {
			t.Fatal(err)
		}
		base[i] = baseline{rr: rr, irr: irr}
	}

	const goroutines, rounds = 10, 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				qi := (g + i) % len(queries)
				q := queries[qi]
				irr, err := eng.QueryIRR(q)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(irr.Seeds, base[qi].irr.Seeds) || irr.EstSpread != base[qi].irr.EstSpread {
					t.Errorf("IRR diverged for %v: %v/%v vs %v/%v",
						q, irr.Seeds, irr.EstSpread, base[qi].irr.Seeds, base[qi].irr.EstSpread)
					return
				}
				if g%2 == 0 {
					rr, err := eng.QueryRR(q)
					if err != nil {
						t.Error(err)
						return
					}
					if !reflect.DeepEqual(rr.Seeds, base[qi].rr.Seeds) || rr.EstSpread != base[qi].rr.EstSpread {
						t.Errorf("RR diverged for %v: %v/%v vs %v/%v",
							q, rr.Seeds, rr.EstSpread, base[qi].rr.Seeds, base[qi].rr.EstSpread)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestEngineCacheCorrectness runs the same workload with caching off, with
// the byte-level segment cache, and with the decoded-object cache: Seeds
// and EstSpread must be identical everywhere, and each cache tier must both
// serve hits and save work on repetition.
func TestEngineCacheCorrectness(t *testing.T) {
	plain := concurrentEngine(t, exampleOptions())
	opts := exampleOptions()
	opts.CacheBytes = 1 << 20
	cached := concurrentEngine(t, opts)

	queries := []Query{
		{Topics: []int{0}, K: 2},
		{Topics: []int{0, 1}, K: 2},
		{Topics: []int{1, 2, 3}, K: 3},
		{Topics: []int{0, 1}, K: 2}, // repeat → cache hits
	}
	var hits int64
	for _, q := range queries {
		for _, kind := range []string{"rr", "irr"} {
			var a, b *Result
			var err error
			if kind == "rr" {
				if a, err = plain.QueryRR(q); err != nil {
					t.Fatal(err)
				}
				if b, err = cached.QueryRR(q); err != nil {
					t.Fatal(err)
				}
			} else {
				if a, err = plain.QueryIRR(q); err != nil {
					t.Fatal(err)
				}
				if b, err = cached.QueryIRR(q); err != nil {
					t.Fatal(err)
				}
			}
			if !reflect.DeepEqual(a.Seeds, b.Seeds) {
				t.Fatalf("%s %v: seeds diverge with cache: %v vs %v", kind, q, a.Seeds, b.Seeds)
			}
			if a.EstSpread != b.EstSpread {
				t.Fatalf("%s %v: spread diverges with cache: %v vs %v", kind, q, a.EstSpread, b.EstSpread)
			}
			if a.NumRRSets != b.NumRRSets || a.PartitionsLoaded != b.PartitionsLoaded {
				t.Fatalf("%s %v: work metrics diverge with cache", kind, q)
			}
			if a.IO.CacheHits != 0 || a.IO.CacheMisses != 0 {
				t.Fatalf("uncached engine reported cache traffic: %+v", a.IO)
			}
			hits += b.IO.CacheHits
		}
	}
	if hits == 0 {
		t.Fatal("cached engine never hit its cache on a repeated workload")
	}
	rrStats, irrStats := cached.CacheStats()
	if rrStats.Hits == 0 && irrStats.Hits == 0 {
		t.Fatalf("CacheStats reports no hits: rr=%+v irr=%+v", rrStats, irrStats)
	}
	if p, pi := plain.CacheStats(); p.Hits+p.Misses+pi.Hits+pi.Misses != 0 {
		t.Fatalf("uncached engine reported cache stats: %+v %+v", p, pi)
	}

	// A fully repeated query on a warm cache must cost zero disk reads.
	warm, err := cached.QueryIRR(Query{Topics: []int{0, 1}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if warm.IO.Total() != 0 || warm.IO.CacheHits == 0 {
		t.Fatalf("warm query still paid disk I/O: %+v", warm.IO)
	}

	// Decoded-object tier: same workload, identical results, and a warm
	// query costs zero reads AND zero decodes.
	dopts := exampleOptions()
	dopts.DecodedCacheBytes = 1 << 20
	decoded := concurrentEngine(t, dopts)
	var decHits int64
	for _, q := range queries {
		for _, kind := range []string{"rr", "irr"} {
			var a, b *Result
			var err error
			if kind == "rr" {
				if a, err = plain.QueryRR(q); err != nil {
					t.Fatal(err)
				}
				if b, err = decoded.QueryRR(q); err != nil {
					t.Fatal(err)
				}
			} else {
				if a, err = plain.QueryIRR(q); err != nil {
					t.Fatal(err)
				}
				if b, err = decoded.QueryIRR(q); err != nil {
					t.Fatal(err)
				}
			}
			if !reflect.DeepEqual(a.Seeds, b.Seeds) {
				t.Fatalf("%s %v: seeds diverge with decoded cache: %v vs %v", kind, q, a.Seeds, b.Seeds)
			}
			if a.EstSpread != b.EstSpread {
				t.Fatalf("%s %v: spread diverges with decoded cache: %v vs %v", kind, q, a.EstSpread, b.EstSpread)
			}
			if a.NumRRSets != b.NumRRSets || a.PartitionsLoaded != b.PartitionsLoaded {
				t.Fatalf("%s %v: work metrics diverge with decoded cache", kind, q)
			}
			if a.IO.DecodedHits != 0 || a.IO.DecodedMisses != 0 {
				t.Fatalf("uncached engine reported decoded traffic: %+v", a.IO)
			}
			decHits += b.IO.DecodedHits
		}
	}
	if decHits == 0 {
		t.Fatal("decoded engine never hit its cache on a repeated workload")
	}
	rrDec, irrDec := decoded.DecodedCacheStats()
	if rrDec.Hits == 0 || irrDec.Hits == 0 {
		t.Fatalf("DecodedCacheStats reports no hits: rr=%+v irr=%+v", rrDec, irrDec)
	}
	if p, pi := plain.DecodedCacheStats(); p.Hits+p.Misses+pi.Hits+pi.Misses != 0 {
		t.Fatalf("uncached engine reported decoded stats: %+v %+v", p, pi)
	}
	dwarm, err := decoded.QueryIRR(Query{Topics: []int{0, 1}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dwarm.IO.Total() != 0 || dwarm.IO.DecodedMisses != 0 || dwarm.IO.DecodedHits == 0 {
		t.Fatalf("warm decoded query still paid: %+v", dwarm.IO)
	}
}

// TestEngineQueriesProceedDuringSwap pins the writer-starvation fix: with a
// query in flight (simulated by holding a handle reference, exactly what a
// running query holds), OpenRRIndex must complete immediately instead of
// waiting, new queries must run on the new index while the old handle is
// still alive, and the replaced file must close only when the last user
// releases it.
func TestEngineQueriesProceedDuringSwap(t *testing.T) {
	eng := concurrentEngine(t, exampleOptions())
	dir := t.TempDir()
	q := Query{Topics: []int{0, 1}, K: 2}

	// An "in-flight query": acquire the current handle as QueryRR does.
	old, err := eng.acquireRR()
	if err != nil {
		t.Fatal(err)
	}

	// The swap must not block behind the in-flight query.
	swapPath := filepath.Join(dir, "swap.rr")
	if _, err := eng.BuildRRIndex(swapPath); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- eng.OpenRRIndex(swapPath) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("OpenRRIndex stalled behind an in-flight query")
	}

	// New queries run on the swapped-in index while the old handle lives.
	if _, err := eng.QueryRR(q); err != nil {
		t.Fatal(err)
	}
	// The old handle still answers queries (pinned index semantics), and
	// its file is still open because the in-flight reference holds it.
	if _, err := old.rr.Query(q.internal()); err != nil {
		t.Fatalf("in-flight query lost its index mid-swap: %v", err)
	}
	if got := old.refs.Load(); got != 1 {
		t.Fatalf("old handle refs = %d, want 1 (the in-flight query)", got)
	}
	// Last release closes the replaced file; afterwards reads fail.
	if err := old.release(); err != nil {
		t.Fatal(err)
	}
	if _, err := old.rr.Query(q.internal()); err == nil {
		t.Fatal("query on a fully released handle should fail (file closed)")
	}

	// Many concurrent queries + many concurrent swaps: nothing stalls,
	// nothing races (run under -race), and every query succeeds.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := eng.QueryRR(q); err != nil {
					t.Errorf("query during swaps: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 10; i++ {
		if err := eng.OpenRRIndex(swapPath); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestEngineCloseIdempotent pins the Close contract: double Close returns
// nil, queries after Close fail cleanly, and Open after Close is rejected.
func TestEngineCloseIdempotent(t *testing.T) {
	eng := concurrentEngine(t, exampleOptions())
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	if _, err := eng.QueryIRR(Query{Topics: []int{0}, K: 1}); err == nil {
		t.Fatal("query after Close succeeded")
	}
	if err := eng.OpenIRRIndex("nonexistent"); err == nil {
		t.Fatal("open after Close succeeded")
	}
}

// TestEngineConcurrentCloseAndQuery closes the engine while queries are in
// flight (run under -race): in-flight queries finish normally, later ones
// fail with the no-index error, and nothing races.
func TestEngineConcurrentCloseAndQuery(t *testing.T) {
	eng := concurrentEngine(t, exampleOptions())
	q := Query{Topics: []int{0, 1}, K: 2}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 20; i++ {
				if _, err := eng.QueryIRR(q); err != nil {
					// Only the post-Close error is acceptable.
					if err.Error() != "kbtim: engine is closed" {
						t.Errorf("unexpected query error: %v", err)
					}
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if err := eng.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	close(start)
	wg.Wait()
}
