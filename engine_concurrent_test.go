package kbtim

import (
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// concurrentEngine builds both indexes for the Figure 1 dataset and opens
// them on one Engine with the given options.
func concurrentEngine(t testing.TB, opts Options) *Engine {
	t.Helper()
	ds := exampleDataset(t)
	eng, err := NewEngine(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	dir := t.TempDir()
	rrPath := filepath.Join(dir, "ads.rr")
	irrPath := filepath.Join(dir, "ads.irr")
	if _, err := eng.BuildRRIndex(rrPath); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.BuildIRRIndex(irrPath); err != nil {
		t.Fatal(err)
	}
	if err := eng.OpenRRIndex(rrPath); err != nil {
		t.Fatal(err)
	}
	if err := eng.OpenIRRIndex(irrPath); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestEngineConcurrentQueries issues QueryIRR and QueryRR from many
// goroutines against ONE shared Engine (run under -race) and checks every
// result against the serial baseline.
func TestEngineConcurrentQueries(t *testing.T) {
	eng := concurrentEngine(t, exampleOptions())
	queries := []Query{
		{Topics: []int{0}, K: 2},
		{Topics: []int{0, 1}, K: 2},
		{Topics: []int{1, 2, 3}, K: 3},
	}
	type baseline struct{ rr, irr *Result }
	base := make([]baseline, len(queries))
	for i, q := range queries {
		rr, err := eng.QueryRR(q)
		if err != nil {
			t.Fatal(err)
		}
		irr, err := eng.QueryIRR(q)
		if err != nil {
			t.Fatal(err)
		}
		base[i] = baseline{rr: rr, irr: irr}
	}

	const goroutines, rounds = 10, 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				qi := (g + i) % len(queries)
				q := queries[qi]
				irr, err := eng.QueryIRR(q)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(irr.Seeds, base[qi].irr.Seeds) || irr.EstSpread != base[qi].irr.EstSpread {
					t.Errorf("IRR diverged for %v: %v/%v vs %v/%v",
						q, irr.Seeds, irr.EstSpread, base[qi].irr.Seeds, base[qi].irr.EstSpread)
					return
				}
				if g%2 == 0 {
					rr, err := eng.QueryRR(q)
					if err != nil {
						t.Error(err)
						return
					}
					if !reflect.DeepEqual(rr.Seeds, base[qi].rr.Seeds) || rr.EstSpread != base[qi].rr.EstSpread {
						t.Errorf("RR diverged for %v: %v/%v vs %v/%v",
							q, rr.Seeds, rr.EstSpread, base[qi].rr.Seeds, base[qi].rr.EstSpread)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestEngineCacheCorrectness runs the same workload with the segment cache
// on and off: Seeds and EstSpread must be identical, and the cached engine
// must both serve hits and save disk I/O on repetition.
func TestEngineCacheCorrectness(t *testing.T) {
	plain := concurrentEngine(t, exampleOptions())
	opts := exampleOptions()
	opts.CacheBytes = 1 << 20
	cached := concurrentEngine(t, opts)

	queries := []Query{
		{Topics: []int{0}, K: 2},
		{Topics: []int{0, 1}, K: 2},
		{Topics: []int{1, 2, 3}, K: 3},
		{Topics: []int{0, 1}, K: 2}, // repeat → cache hits
	}
	var hits int64
	for _, q := range queries {
		for _, kind := range []string{"rr", "irr"} {
			var a, b *Result
			var err error
			if kind == "rr" {
				if a, err = plain.QueryRR(q); err != nil {
					t.Fatal(err)
				}
				if b, err = cached.QueryRR(q); err != nil {
					t.Fatal(err)
				}
			} else {
				if a, err = plain.QueryIRR(q); err != nil {
					t.Fatal(err)
				}
				if b, err = cached.QueryIRR(q); err != nil {
					t.Fatal(err)
				}
			}
			if !reflect.DeepEqual(a.Seeds, b.Seeds) {
				t.Fatalf("%s %v: seeds diverge with cache: %v vs %v", kind, q, a.Seeds, b.Seeds)
			}
			if a.EstSpread != b.EstSpread {
				t.Fatalf("%s %v: spread diverges with cache: %v vs %v", kind, q, a.EstSpread, b.EstSpread)
			}
			if a.NumRRSets != b.NumRRSets || a.PartitionsLoaded != b.PartitionsLoaded {
				t.Fatalf("%s %v: work metrics diverge with cache", kind, q)
			}
			if a.IO.CacheHits != 0 || a.IO.CacheMisses != 0 {
				t.Fatalf("uncached engine reported cache traffic: %+v", a.IO)
			}
			hits += b.IO.CacheHits
		}
	}
	if hits == 0 {
		t.Fatal("cached engine never hit its cache on a repeated workload")
	}
	rrStats, irrStats := cached.CacheStats()
	if rrStats.Hits == 0 && irrStats.Hits == 0 {
		t.Fatalf("CacheStats reports no hits: rr=%+v irr=%+v", rrStats, irrStats)
	}
	if p, pi := plain.CacheStats(); p.Hits+p.Misses+pi.Hits+pi.Misses != 0 {
		t.Fatalf("uncached engine reported cache stats: %+v %+v", p, pi)
	}

	// A fully repeated query on a warm cache must cost zero disk reads.
	warm, err := cached.QueryIRR(Query{Topics: []int{0, 1}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if warm.IO.Total() != 0 || warm.IO.CacheHits == 0 {
		t.Fatalf("warm query still paid disk I/O: %+v", warm.IO)
	}
}

// TestEngineCloseIdempotent pins the Close contract: double Close returns
// nil, queries after Close fail cleanly, and Open after Close is rejected.
func TestEngineCloseIdempotent(t *testing.T) {
	eng := concurrentEngine(t, exampleOptions())
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	if _, err := eng.QueryIRR(Query{Topics: []int{0}, K: 1}); err == nil {
		t.Fatal("query after Close succeeded")
	}
	if err := eng.OpenIRRIndex("nonexistent"); err == nil {
		t.Fatal("open after Close succeeded")
	}
}

// TestEngineConcurrentCloseAndQuery closes the engine while queries are in
// flight (run under -race): in-flight queries finish normally, later ones
// fail with the no-index error, and nothing races.
func TestEngineConcurrentCloseAndQuery(t *testing.T) {
	eng := concurrentEngine(t, exampleOptions())
	q := Query{Topics: []int{0, 1}, K: 2}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 20; i++ {
				if _, err := eng.QueryIRR(q); err != nil {
					// Only the post-Close error is acceptable.
					if err.Error() != "kbtim: engine is closed" {
						t.Errorf("unexpected query error: %v", err)
					}
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if err := eng.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	close(start)
	wg.Wait()
}
