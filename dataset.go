package kbtim

import (
	"fmt"
	"os"

	"kbtim/internal/gen"
	"kbtim/internal/graph"
	"kbtim/internal/topic"
)

// Dataset bundles a social graph with its user topic profiles — everything
// a KB-TIM engine needs besides tuning parameters.
type Dataset struct {
	graph    *graph.Graph
	profiles *topic.Profiles
}

// NumUsers returns |V|.
func (d *Dataset) NumUsers() int { return d.graph.NumVertices() }

// NumEdges returns |E|.
func (d *Dataset) NumEdges() int { return d.graph.NumEdges() }

// NumTopics returns |T|.
func (d *Dataset) NumTopics() int { return d.profiles.NumTopics() }

// AvgDegree returns |E|/|V| (the Table 2 statistic).
func (d *Dataset) AvgDegree() float64 { return d.graph.AvgDegree() }

// Score returns φ(v,Q), the tf-idf relevance of user v to query q (Eqn 1).
func (d *Dataset) Score(v Seed, q Query) float64 {
	return d.profiles.Score(v, q.internal())
}

// TopicMass returns φ_w, the total relevance mass of a keyword.
func (d *Dataset) TopicMass(topicID int) float64 { return d.profiles.Phi(topicID) }

// InDegreeDistribution returns the (degree, count) series of Figure 4.
func (d *Dataset) InDegreeDistribution() (degrees, counts []int) {
	h := graph.InDegreeHistogram(d.graph)
	return h.Degrees, h.Counts
}

// DatasetKind selects a synthetic graph family.
type DatasetKind string

// Supported synthetic dataset families (the paper's two real corpora).
const (
	// TwitterLike is dense preferential attachment with power-law
	// in-degrees, standing in for the SNAP Twitter graph.
	TwitterLike DatasetKind = "twitter"
	// NewsLike is a sparse uniform random digraph, standing in for the
	// SNAP News/memetracker graph.
	NewsLike DatasetKind = "news"
)

// DatasetSpec describes a synthetic dataset to generate.
type DatasetSpec struct {
	Kind      DatasetKind
	NumUsers  int
	AvgDegree float64 // target average degree (Twitter ≫ News)
	NumTopics int     // topic-space size (the paper extracts 200)
	// TopicsPerUserMin/Max bound each user's profile size (defaults 1/5).
	TopicsPerUserMin int
	TopicsPerUserMax int
	// ZipfExponent sets topic-popularity skew (default 1.0).
	ZipfExponent float64
	Seed         uint64
}

// GenerateDataset synthesizes a graph + profiles pair (see DESIGN.md for
// why these generators preserve the paper's experimental phenomena).
func GenerateDataset(spec DatasetSpec) (*Dataset, error) {
	if spec.TopicsPerUserMin == 0 {
		spec.TopicsPerUserMin = 1
	}
	if spec.TopicsPerUserMax == 0 {
		spec.TopicsPerUserMax = 5
	}
	if spec.ZipfExponent == 0 {
		spec.ZipfExponent = 1.0
	}
	var g *graph.Graph
	var err error
	switch spec.Kind {
	case TwitterLike:
		deg := int(spec.AvgDegree)
		if deg < 1 {
			deg = 1
		}
		g, err = gen.TwitterLike(gen.TwitterLikeConfig{
			N: spec.NumUsers, AvgDegree: deg, Seed: spec.Seed,
		})
	case NewsLike:
		g, err = gen.NewsLike(gen.NewsLikeConfig{
			N: spec.NumUsers, AvgDegree: spec.AvgDegree, Seed: spec.Seed,
		})
	default:
		return nil, fmt.Errorf("kbtim: unknown dataset kind %q", spec.Kind)
	}
	if err != nil {
		return nil, err
	}
	maxT := spec.TopicsPerUserMax
	if maxT > spec.NumTopics {
		maxT = spec.NumTopics
	}
	minT := spec.TopicsPerUserMin
	if minT > maxT {
		minT = maxT
	}
	prof, err := gen.Profiles(gen.ProfilesConfig{
		NumUsers:     spec.NumUsers,
		NumTopics:    spec.NumTopics,
		MinTopics:    minT,
		MaxTopics:    maxT,
		ZipfExponent: spec.ZipfExponent,
		Seed:         spec.Seed + 0x70F1C,
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{graph: g, profiles: prof}, nil
}

// NewDataset builds a dataset from explicit edges and profile triples.
// profileTriples rows are (user, topicID, tf). Intended for small custom
// scenarios and tests; large datasets should use the binary loaders.
func NewDataset(numUsers, numTopics int, edges []Edge, profileTriples [][3]float64) (*Dataset, error) {
	g, err := graph.FromEdges(numUsers, edges)
	if err != nil {
		return nil, err
	}
	b := topic.NewBuilder(numUsers, numTopics)
	for i, row := range profileTriples {
		user := uint32(row[0])
		topicID := int(row[1])
		if float64(user) != row[0] || float64(topicID) != row[1] {
			return nil, fmt.Errorf("kbtim: non-integral user/topic in profile row %d", i)
		}
		if err := b.Set(user, topicID, row[2]); err != nil {
			return nil, fmt.Errorf("kbtim: profile row %d: %w", i, err)
		}
	}
	return &Dataset{graph: g, profiles: b.Build()}, nil
}

// SaveDataset writes the graph and profiles as two binary files.
func SaveDataset(d *Dataset, graphPath, profilePath string) error {
	gf, err := os.Create(graphPath)
	if err != nil {
		return err
	}
	if err := graph.WriteBinary(gf, d.graph); err != nil {
		gf.Close()
		return err
	}
	if err := gf.Close(); err != nil {
		return err
	}
	pf, err := os.Create(profilePath)
	if err != nil {
		return err
	}
	if err := topic.WriteBinary(pf, d.profiles); err != nil {
		pf.Close()
		return err
	}
	return pf.Close()
}

// LoadDataset reads a dataset written by SaveDataset.
func LoadDataset(graphPath, profilePath string) (*Dataset, error) {
	gf, err := os.Open(graphPath)
	if err != nil {
		return nil, err
	}
	defer gf.Close()
	g, err := graph.ReadBinary(gf)
	if err != nil {
		return nil, err
	}
	pf, err := os.Open(profilePath)
	if err != nil {
		return nil, err
	}
	defer pf.Close()
	prof, err := topic.ReadBinary(pf)
	if err != nil {
		return nil, err
	}
	if prof.NumUsers() != g.NumVertices() {
		return nil, fmt.Errorf("kbtim: graph has %d vertices but profiles cover %d users",
			g.NumVertices(), prof.NumUsers())
	}
	return &Dataset{graph: g, profiles: prof}, nil
}
