// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§6), plus the ablations called out in DESIGN.md.
//
// Each benchmark regenerates its experiment end to end — dataset
// generation and index builds are cached in a shared environment, so the
// first benchmark of a session pays the build cost and the rest measure
// query-side work. The rendered tables are printed once per run (they are
// the artifacts EXPERIMENTS.md records); run with
//
//	go test -bench=. -benchmem
//
// and set KBTIM_BENCH_FULL=1 for the paper's complete parameter grid.
package kbtim_test

import (
	"io"
	"os"
	"sync"
	"testing"

	"kbtim/internal/bench"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *bench.Env
	benchEnvErr  error
	printedOnce  sync.Map // experiment ID → struct{}
)

func sharedEnv(b *testing.B) *bench.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		full := os.Getenv("KBTIM_BENCH_FULL") == "1"
		benchEnv, benchEnvErr = bench.NewEnv(bench.DefaultConfig(full))
	})
	if benchEnvErr != nil {
		b.Fatalf("bench env: %v", benchEnvErr)
	}
	return benchEnv
}

// runExperiment prints the experiment's table once per process, then
// re-runs it (cached builds, live queries) b.N times.
func runExperiment(b *testing.B, id string, exp bench.Experiment) {
	b.Helper()
	env := sharedEnv(b)
	if _, dup := printedOnce.LoadOrStore(id, struct{}{}); !dup {
		if err := exp(b.Context(), os.Stdout, env); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exp(b.Context(), io.Discard, env); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkTable2DatasetStats(b *testing.B) { runExperiment(b, "table2", bench.Table2) }
func BenchmarkFigure4InDegree(b *testing.B)    { runExperiment(b, "fig4", bench.Figure4) }
func BenchmarkTable3ThetaHatVsTheta(b *testing.B) {
	runExperiment(b, "table3", bench.Table3)
}
func BenchmarkTable4Compression(b *testing.B)    { runExperiment(b, "table4", bench.Table4) }
func BenchmarkTable5ThetaAndRRSize(b *testing.B) { runExperiment(b, "table5", bench.Table5) }
func BenchmarkFigure5VaryK(b *testing.B)         { runExperiment(b, "fig5", bench.Figure5) }
func BenchmarkTable6IRRIO(b *testing.B)          { runExperiment(b, "table6", bench.Table6) }
func BenchmarkTable7Spread(b *testing.B)         { runExperiment(b, "table7", bench.Table7) }
func BenchmarkFigure6VaryKeywords(b *testing.B)  { runExperiment(b, "fig6", bench.Figure6) }
func BenchmarkFigure7VaryGraph(b *testing.B)     { runExperiment(b, "fig7", bench.Figure7) }
func BenchmarkTable8Examples(b *testing.B)       { runExperiment(b, "table8", bench.Table8) }

func BenchmarkAblationPartitionSize(b *testing.B) {
	runExperiment(b, "ablation-delta", bench.AblationPartitionSize)
}
func BenchmarkAblationCompression(b *testing.B) {
	runExperiment(b, "ablation-compress", bench.AblationCompression)
}
func BenchmarkAblationGreedy(b *testing.B) {
	runExperiment(b, "ablation-greedy", bench.AblationGreedy)
}
func BenchmarkThroughput(b *testing.B) {
	runExperiment(b, "throughput", bench.Throughput)
}
func BenchmarkShardedThroughput(b *testing.B) {
	runExperiment(b, "sharded", bench.ShardedThroughput)
}

func BenchmarkRouterThroughput(b *testing.B) {
	runExperiment(b, "router", bench.RouterThroughput)
}

// TestMain tears down the shared benchmark environment (cached index files
// in the OS temp dir) after all benchmarks have run.
func TestMain(m *testing.M) {
	code := m.Run()
	if benchEnv != nil {
		_ = benchEnv.Close()
	}
	os.Exit(code)
}
