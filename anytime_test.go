package kbtim

import (
	"context"
	"math"
	"reflect"
	"testing"
	"time"
)

// TestStreamMatchesBatch is the root-package anytime property: for every
// strategy (rr, irr) over both a single Engine and a sharded deployment,
// the emitted (seed, marginal) sequence concatenated is byte-identical to
// the batch QueryXXCtx result, the running spread lower bound never
// decreases, and it lands exactly on the final EstSpread.
func TestStreamMatchesBatch(t *testing.T) {
	ds := shardedDataset(t)
	s, single := buildSharded(t, ds, 2, ShardHash, 0)

	type queryFn func(context.Context, Query, StreamOptions) (*Result, error)
	paths := map[string]queryFn{
		"engine/rr":   single.QueryRRStreamCtx,
		"engine/irr":  single.QueryIRRStreamCtx,
		"sharded/rr":  s.QueryRRStreamCtx,
		"sharded/irr": s.QueryIRRStreamCtx,
	}
	for _, q := range shardedQueries() {
		for name, run := range paths {
			batch, err := run(context.Background(), q, StreamOptions{})
			if err != nil {
				t.Fatal(err)
			}
			var seeds []Seed
			var marginals []int
			lastLB := math.Inf(-1)
			res, err := run(context.Background(), q, StreamOptions{
				Emit: func(seed Seed, marginal int, spreadLB float64) {
					seeds = append(seeds, seed)
					marginals = append(marginals, marginal)
					if spreadLB < lastLB {
						t.Errorf("%s %v: spread lower bound decreased: %v -> %v", name, q, lastLB, spreadLB)
					}
					lastLB = spreadLB
				},
			})
			if err != nil {
				t.Fatalf("%s %v: %v", name, q, err)
			}
			if res.Partial {
				t.Fatalf("%s %v: partial without a deadline", name, q)
			}
			if !reflect.DeepEqual(seeds, res.Seeds) || !reflect.DeepEqual(marginals, res.Marginals) {
				t.Fatalf("%s %v: emitted (%v,%v) != result (%v,%v)",
					name, q, seeds, marginals, res.Seeds, res.Marginals)
			}
			if !reflect.DeepEqual(res.Seeds, batch.Seeds) || !reflect.DeepEqual(res.Marginals, batch.Marginals) ||
				res.EstSpread != batch.EstSpread || res.NumRRSets != batch.NumRRSets {
				t.Fatalf("%s %v: streamed result diverged from batch", name, q)
			}
			if len(seeds) > 0 && math.Abs(lastLB-res.EstSpread) > 1e-9 {
				t.Fatalf("%s %v: final spread lower bound %v != EstSpread %v", name, q, lastLB, res.EstSpread)
			}
		}
	}
}

// TestStreamDeadline: an expired deadline returns the best certified
// prefix (possibly empty) with Partial set and no error, on both
// strategies; a deadline large enough to finish returns the identical full
// answer with Partial false.
func TestStreamDeadline(t *testing.T) {
	ds := shardedDataset(t)
	_, single := buildSharded(t, ds, 2, ShardHash, 0)
	q := Query{Topics: []int{0, 1}, K: 3}

	for name, run := range map[string]func(context.Context, Query, StreamOptions) (*Result, error){
		"rr":  single.QueryRRStreamCtx,
		"irr": single.QueryIRRStreamCtx,
	} {
		res, err := run(context.Background(), q, StreamOptions{Deadline: time.Now().Add(-time.Second)})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Partial {
			t.Fatalf("%s: expired deadline did not mark the result partial", name)
		}

		batch, err := run(context.Background(), q, StreamOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err = run(context.Background(), q, StreamOptions{Deadline: time.Now().Add(time.Hour)})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Partial {
			t.Fatalf("%s: generous deadline marked the result partial", name)
		}
		if !reflect.DeepEqual(res.Seeds, batch.Seeds) || res.EstSpread != batch.EstSpread {
			t.Fatalf("%s: generous deadline changed the answer", name)
		}
	}
}
