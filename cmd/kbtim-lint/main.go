// Command kbtim-lint runs the kbtim analyzer suite (handlepin,
// poolpair, ctxflow, cacheimmutable — see internal/analysis) over the
// module and exits non-zero when any unsuppressed finding remains. CI
// runs `go run ./cmd/kbtim-lint ./...` on every change, so the
// invariants the analyzers encode are gates, not conventions.
//
// Usage:
//
//	kbtim-lint [-C dir] [-only name,name] [packages]
//
// Packages default to ./... relative to the module directory.
// Intentional exceptions are suppressed in source with
// //kbtim:allow <analyzer> <reason> on or directly above the line.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kbtim/internal/analysis"
)

func main() {
	dir := flag.String("C", ".", "module directory to lint")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: kbtim-lint [-C dir] [-only name,name] [packages]\n\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-15s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers := analysis.All()
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "kbtim-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	prog, err := analysis.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kbtim-lint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kbtim-lint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "kbtim-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
