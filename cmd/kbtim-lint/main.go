// Command kbtim-lint runs the kbtim analyzer suite (handlepin,
// poolpair, ctxflow, cacheimmutable, lockorder, atomicfield — see
// internal/analysis) over the module and exits non-zero when any
// unsuppressed finding remains. CI runs `go run ./cmd/kbtim-lint ./...`
// on every change, so the invariants the analyzers encode are gates,
// not conventions.
//
// Usage:
//
//	kbtim-lint [-C dir] [-only name,name] [-json] [packages]
//	kbtim-lint [-C dir] [-only name,name] [-json] -dir path
//
// Packages default to ./... relative to the module directory. -dir
// loads a single directory as a standalone package instead (resolving
// kbtim imports against the module directory) — the shape CI uses to
// assert the driver is alive by linting a testdata package that must
// produce findings. -json emits one JSON object per finding —
// suppressed ones included, marked — while the exit code still reflects
// only unsuppressed findings.
//
// Intentional exceptions are suppressed in source with
// //kbtim:allow <analyzer> <reason> on or directly above the line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"kbtim/internal/analysis"
)

// jsonFinding is the -json wire shape, one object per line.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

func main() {
	moduleDir := flag.String("C", ".", "module directory to lint")
	dir := flag.String("dir", "", "lint a single directory as a standalone package instead of module packages")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit one JSON object per finding (suppressed included)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: kbtim-lint [-C dir] [-only name,name] [-json] [packages]\n       kbtim-lint [-C dir] [-only name,name] [-json] -dir path\n\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-15s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers := analysis.All()
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "kbtim-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	var prog *analysis.Program
	var err error
	if *dir != "" {
		if flag.NArg() > 0 {
			fmt.Fprintln(os.Stderr, "kbtim-lint: -dir and package arguments are mutually exclusive")
			os.Exit(2)
		}
		prog, err = analysis.LoadDir(*moduleDir, *dir, "kbtim/lintdata/"+filepath.Base(*dir))
	} else {
		prog, err = analysis.Load(*moduleDir, flag.Args()...)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "kbtim-lint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kbtim-lint: %v\n", err)
		os.Exit(2)
	}

	active := analysis.Active(diags)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			enc.Encode(jsonFinding{
				File:       relTo(*moduleDir, d.Position.Filename),
				Line:       d.Position.Line,
				Col:        d.Position.Column,
				Analyzer:   d.Analyzer,
				Message:    d.Message,
				Suppressed: d.Suppressed,
				Reason:     d.SuppressReason,
			})
		}
	} else {
		for _, d := range active {
			fmt.Println(d)
		}
	}
	if len(active) > 0 {
		fmt.Fprintf(os.Stderr, "kbtim-lint: %d finding(s)\n", len(active))
		os.Exit(1)
	}
}

// relTo relativizes path against the lint root when possible, keeping
// JSON output stable across checkouts.
func relTo(base, path string) string {
	abs, err := filepath.Abs(base)
	if err != nil {
		return path
	}
	if rel, err := filepath.Rel(abs, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
