// Command kbtim-bench regenerates the paper's tables and figures against
// the scaled synthetic dataset suite (see DESIGN.md and EXPERIMENTS.md).
//
// Usage:
//
//	kbtim-bench -exp all          # every experiment, quick sweep
//	kbtim-bench -exp table7       # one experiment
//	kbtim-bench -exp fig5 -full   # the paper's complete parameter grid
//	kbtim-bench -list             # list experiment IDs
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kbtim/internal/bench"
)

func main() {
	log.SetFlags(0)
	var (
		exp  = flag.String("exp", "all", "experiment ID or 'all'")
		full = flag.Bool("full", os.Getenv("KBTIM_BENCH_FULL") == "1", "run the complete parameter grid")
		list = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-18s %s\n", e.ID, e.Desc)
		}
		return
	}

	env, err := bench.NewEnv(bench.DefaultConfig(*full))
	if err != nil {
		log.Fatalf("kbtim-bench: %v", err)
	}
	defer env.Close()

	// A long sweep should die promptly on ^C / SIGTERM: the ctx reaches
	// every experiment and cancels in-flight queries and remote fetches.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	run := func(id string, desc string, f bench.Experiment) {
		start := time.Now()
		if err := f(ctx, os.Stdout, env); err != nil {
			log.Fatalf("kbtim-bench: %s: %v", id, err)
		}
		fmt.Printf("[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range bench.Experiments {
			run(e.ID, e.Desc, e.Run)
		}
		return
	}
	f, ok := bench.Lookup(*exp)
	if !ok {
		log.Fatalf("kbtim-bench: unknown experiment %q (use -list)", *exp)
	}
	run(*exp, "", f)
}
