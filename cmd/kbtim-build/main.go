// Command kbtim-build constructs a disk-based KB-TIM index (RR or IRR) for
// a dataset produced by kbtim-gen.
//
// Usage:
//
//	kbtim-build -graph g.bin -profiles p.bin -out ads.irr -type irr \
//	            -epsilon 0.3 -K 50 -delta 100 -max-theta 200000
//
// With -shards N > 1 (hash/range mode) the keyword universe is partitioned
// and one subset index per shard is written to "<out>.s<i>" — the layout
// kbtim-serve -shards N opens. Per-keyword sampling is seeded by topic ID
// alone, so shard files hold bit-identical payloads to a full build and a
// sharded deployment answers queries identically to a single engine.
// Replicate mode needs no per-shard files: it builds the one full index at
// <out>, which every serve-side replica opens.
package main

import (
	"flag"
	"fmt"
	"log"

	"kbtim"
)

func main() {
	log.SetFlags(0)
	var (
		graphPath   = flag.String("graph", "graph.bin", "input graph path")
		profilePath = flag.String("profiles", "profiles.bin", "input profiles path")
		out         = flag.String("out", "ads.irr", "output index path")
		indexType   = flag.String("type", "irr", "index type: rr | irr")
		model       = flag.String("model", "IC", "propagation model: IC | LT")
		epsilon     = flag.Float64("epsilon", 0.3, "approximation ε (paper: 0.1)")
		bigK        = flag.Int("K", 100, "system cap on Q.k (paper: 100)")
		delta       = flag.Int("delta", 100, "IRR partition size δ")
		noCompress  = flag.Bool("no-compress", false, "disable inverted-list compression")
		thetaHat    = flag.Bool("theta-hat", false, "size with the conservative θ̂_w bound (Eqn 8)")
		maxTheta    = flag.Int("max-theta", 0, "cap on per-keyword RR sets (0 = none)")
		seed        = flag.Uint64("seed", 1, "RNG seed")
		workers     = flag.Int("workers", 0, "sampling workers (0 = all cores)")
		shards      = flag.Int("shards", 1, "write per-shard index files <out>.s<i> for a sharded deployment")
		shardMode   = flag.String("shard-mode", "hash", "keyword→shard assignment: hash | range | replicate")
	)
	flag.Parse()

	ds, err := kbtim.LoadDataset(*graphPath, *profilePath)
	if err != nil {
		log.Fatalf("kbtim-build: %v", err)
	}
	eng, err := kbtim.NewEngine(ds, kbtim.Options{
		Epsilon:            *epsilon,
		K:                  *bigK,
		Model:              kbtim.Model(*model),
		CompressOff:        *noCompress,
		PartitionSize:      *delta,
		ThetaHatSizing:     *thetaHat,
		MaxThetaPerKeyword: *maxTheta,
		Seed:               *seed,
		Workers:            *workers,
	})
	if err != nil {
		log.Fatalf("kbtim-build: %v", err)
	}
	if *indexType != "rr" && *indexType != "irr" {
		log.Fatalf("kbtim-build: unknown index type %q", *indexType)
	}
	if *shards < 1 {
		log.Fatalf("kbtim-build: -shards must be >= 1, got %d", *shards)
	}

	printReport := func(path string, report *kbtim.BuildReport) {
		fmt.Printf("wrote %s: %d keywords, Σθ_w = %d RR sets (mean size %.2f), %.1f MB in %v\n",
			path, report.Keywords, report.SumTheta, report.MeanRRSetSize,
			float64(report.Bytes)/(1<<20), report.Elapsed.Round(1e6))
		if report.Capped > 0 {
			fmt.Printf("warning: %d keyword(s) hit -max-theta; the (1-1/e-ε) guarantee is voided for them\n",
				report.Capped)
		}
	}

	mode := kbtim.ShardMode(*shardMode)
	if *shards > 1 && mode != kbtim.ShardReplicate {
		reports, err := eng.BuildShardIndexes(*indexType, *shards, mode,
			func(i int) string { return kbtim.ShardIndexPath(*out, i) })
		if err != nil {
			log.Fatalf("kbtim-build: %v", err)
		}
		for i, report := range reports {
			if report == nil {
				fmt.Printf("shard %d owns no keywords; no file written\n", i)
				continue
			}
			printReport(kbtim.ShardIndexPath(*out, i), report)
		}
		return
	}
	if *shards > 1 {
		fmt.Printf("replicate mode: one full index serves all %d shards (kbtim-serve opens %s on every shard)\n",
			*shards, *out)
	}
	var report *kbtim.BuildReport
	if *indexType == "rr" {
		report, err = eng.BuildRRIndex(*out)
	} else {
		report, err = eng.BuildIRRIndex(*out)
	}
	if err != nil {
		log.Fatalf("kbtim-build: %v", err)
	}
	printReport(*out, report)
}
