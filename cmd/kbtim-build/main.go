// Command kbtim-build constructs a disk-based KB-TIM index (RR or IRR) for
// a dataset produced by kbtim-gen.
//
// Usage:
//
//	kbtim-build -graph g.bin -profiles p.bin -out ads.irr -type irr \
//	            -epsilon 0.3 -K 50 -delta 100 -max-theta 200000
package main

import (
	"flag"
	"fmt"
	"log"

	"kbtim"
)

func main() {
	log.SetFlags(0)
	var (
		graphPath   = flag.String("graph", "graph.bin", "input graph path")
		profilePath = flag.String("profiles", "profiles.bin", "input profiles path")
		out         = flag.String("out", "ads.irr", "output index path")
		indexType   = flag.String("type", "irr", "index type: rr | irr")
		model       = flag.String("model", "IC", "propagation model: IC | LT")
		epsilon     = flag.Float64("epsilon", 0.3, "approximation ε (paper: 0.1)")
		bigK        = flag.Int("K", 100, "system cap on Q.k (paper: 100)")
		delta       = flag.Int("delta", 100, "IRR partition size δ")
		noCompress  = flag.Bool("no-compress", false, "disable inverted-list compression")
		thetaHat    = flag.Bool("theta-hat", false, "size with the conservative θ̂_w bound (Eqn 8)")
		maxTheta    = flag.Int("max-theta", 0, "cap on per-keyword RR sets (0 = none)")
		seed        = flag.Uint64("seed", 1, "RNG seed")
		workers     = flag.Int("workers", 0, "sampling workers (0 = all cores)")
	)
	flag.Parse()

	ds, err := kbtim.LoadDataset(*graphPath, *profilePath)
	if err != nil {
		log.Fatalf("kbtim-build: %v", err)
	}
	eng, err := kbtim.NewEngine(ds, kbtim.Options{
		Epsilon:            *epsilon,
		K:                  *bigK,
		Model:              kbtim.Model(*model),
		CompressOff:        *noCompress,
		PartitionSize:      *delta,
		ThetaHatSizing:     *thetaHat,
		MaxThetaPerKeyword: *maxTheta,
		Seed:               *seed,
		Workers:            *workers,
	})
	if err != nil {
		log.Fatalf("kbtim-build: %v", err)
	}
	var report *kbtim.BuildReport
	switch *indexType {
	case "rr":
		report, err = eng.BuildRRIndex(*out)
	case "irr":
		report, err = eng.BuildIRRIndex(*out)
	default:
		log.Fatalf("kbtim-build: unknown index type %q", *indexType)
	}
	if err != nil {
		log.Fatalf("kbtim-build: %v", err)
	}
	fmt.Printf("wrote %s: %d keywords, Σθ_w = %d RR sets (mean size %.2f), %.1f MB in %v\n",
		*out, report.Keywords, report.SumTheta, report.MeanRRSetSize,
		float64(report.Bytes)/(1<<20), report.Elapsed.Round(1e6))
	if report.Capped > 0 {
		fmt.Printf("warning: %d keyword(s) hit -max-theta; the (1-1/e-ε) guarantee is voided for them\n",
			report.Capped)
	}
}
