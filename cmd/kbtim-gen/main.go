// Command kbtim-gen generates a synthetic KB-TIM dataset (social graph +
// user topic profiles) and writes it as two binary files.
//
// Usage:
//
//	kbtim-gen -kind twitter -users 50000 -degree 10 -topics 64 \
//	          -seed 1 -graph g.bin -profiles p.bin
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"kbtim"
)

func main() {
	log.SetFlags(0)
	var (
		kind     = flag.String("kind", "twitter", "dataset family: twitter | news")
		users    = flag.Int("users", 50000, "number of users")
		degree   = flag.Float64("degree", 10, "target average degree")
		topics   = flag.Int("topics", 64, "topic-space size")
		zipf     = flag.Float64("zipf", 1.0, "topic popularity skew")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		graph    = flag.String("graph", "graph.bin", "output graph path")
		profiles = flag.String("profiles", "profiles.bin", "output profiles path")
	)
	flag.Parse()

	ds, err := kbtim.GenerateDataset(kbtim.DatasetSpec{
		Kind:         kbtim.DatasetKind(*kind),
		NumUsers:     *users,
		AvgDegree:    *degree,
		NumTopics:    *topics,
		ZipfExponent: *zipf,
		Seed:         *seed,
	})
	if err != nil {
		log.Fatalf("kbtim-gen: %v", err)
	}
	if err := kbtim.SaveDataset(ds, *graph, *profiles); err != nil {
		log.Fatalf("kbtim-gen: %v", err)
	}
	fmt.Fprintf(os.Stdout, "wrote %s and %s: %d users, %d edges (avg degree %.2f), %d topics\n",
		*graph, *profiles, ds.NumUsers(), ds.NumEdges(), ds.AvgDegree(), ds.NumTopics())
}
