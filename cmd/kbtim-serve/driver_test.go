package main

import (
	"net/http/httptest"
	"testing"
	"time"

	"kbtim/internal/rng"
)

func TestTopicPickerZipfSkew(t *testing.T) {
	universe := make([]int, 20)
	for i := range universe {
		universe[i] = i * 3 // non-contiguous IDs, as a real index reports
	}
	p, err := newTopicPicker(universe, 1.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	r := rng.New(7)
	freq := map[int]int{}
	const draws = 20000
	for i := 0; i < draws; i++ {
		topic := p.pick(r)
		if topic%3 != 0 || topic < 0 || topic > 57 {
			t.Fatalf("picked %d outside the universe", topic)
		}
		freq[topic]++
	}
	if head, tail := freq[universe[0]], freq[universe[19]]; head < 4*tail {
		t.Fatalf("zipf 1.5 barely skewed: rank0=%d rank19=%d", head, tail)
	}
	// Uniform control: no strong skew.
	u, err := newTopicPicker(universe, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	freq = map[int]int{}
	for i := 0; i < draws; i++ {
		freq[u.pick(r)]++
	}
	if head, tail := freq[universe[0]], freq[universe[19]]; head > 2*tail {
		t.Fatalf("uniform picker skewed: rank0=%d rank19=%d", head, tail)
	}
}

func TestTopicPickerChurnRotates(t *testing.T) {
	universe := make([]int, 10)
	for i := range universe {
		universe[i] = i
	}
	p, err := newTopicPicker(universe, 1.0, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.window >= len(universe) {
		t.Fatalf("churn should shrink the active window, got %d", p.window)
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.offset.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("churn ticker never advanced the window")
		}
		time.Sleep(5 * time.Millisecond)
	}
	r := rng.New(3)
	for i := 0; i < 1000; i++ {
		if topic := p.pick(r); topic < 0 || topic >= len(universe) {
			t.Fatalf("picked %d outside the rotated universe", topic)
		}
	}
	// pickTopics must respect the shrunken window and stay duplicate-free.
	topics := pickTopics(r, p, 50)
	if len(topics) > p.window {
		t.Fatalf("%d topics from a window of %d", len(topics), p.window)
	}
	seen := map[int]bool{}
	for _, w := range topics {
		if seen[w] {
			t.Fatalf("duplicate topic %d", w)
		}
		seen[w] = true
	}
}

// TestDriveZipfChurn runs the closed loop with both new knobs against an
// in-process server: skewed, rotating traffic must still complete cleanly.
func TestDriveZipfChurn(t *testing.T) {
	srv := NewServer(testEngine(t), 4)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := drive(driveConfig{
		Target:   ts.URL,
		Clients:  4,
		Duration: 300 * time.Millisecond,
		K:        2,
		MaxLen:   2,
		Strategy: "irr",
		Seed:     3,
		Zipf:     1.2,
		Churn:    50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries == 0 {
		t.Fatal("driver completed no queries")
	}
	if rep.Errors != 0 {
		t.Fatalf("driver saw %d errors", rep.Errors)
	}
}
