package main

import (
	"testing"
	"time"
)

func testBreakerConfig() breakerConfig {
	return breakerConfig{failures: 3, minBackoff: 100 * time.Millisecond, maxBackoff: 400 * time.Millisecond}
}

// TestBreakerTripsOnConsecutiveFailures: only an unbroken run of failures
// opens the breaker — a success in between resets the count.
func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	cfg := testBreakerConfig()
	now := time.Now()
	var b breaker
	if !b.allow() || b.state() != breakerClosed {
		t.Fatalf("fresh breaker: allow=%v state=%q", b.allow(), b.state())
	}
	b.failure(now, cfg)
	b.failure(now, cfg)
	b.success(true) // resets the run
	b.failure(now, cfg)
	if b.failure(now, cfg) {
		t.Fatal("tripped after an interrupted run of failures")
	}
	if !b.allow() {
		t.Fatal("breaker open before the threshold")
	}
	if !b.failure(now, cfg) {
		t.Fatal("third consecutive failure did not trip")
	}
	if b.allow() || b.state() != breakerOpen {
		t.Fatalf("after trip: allow=%v state=%q", b.allow(), b.state())
	}
	if b.tripCount() != 1 {
		t.Fatalf("trips = %d, want 1", b.tripCount())
	}
}

// TestBreakerSuccessGating: a success may close an open breaker only when
// the caller says so (mayClose=false is the unvalidated-replica path, whose
// re-admission must go through the probe loop).
func TestBreakerSuccessGating(t *testing.T) {
	cfg := testBreakerConfig()
	now := time.Now()
	var b breaker
	b.forceOpen(now, cfg)
	if b.allow() {
		t.Fatal("forceOpen did not open")
	}
	b.forceOpen(now, cfg) // idempotent: no second trip
	if b.tripCount() != 1 {
		t.Fatalf("trips = %d after double forceOpen, want 1", b.tripCount())
	}
	b.success(false)
	if b.allow() {
		t.Fatal("success(mayClose=false) closed an open breaker")
	}
	b.success(true)
	if !b.allow() || b.state() != breakerClosed {
		t.Fatalf("success(mayClose=true) left allow=%v state=%q", b.allow(), b.state())
	}
}

// TestBreakerProbeLifecycle: beginProbe is a test-and-set gated on the
// backoff schedule; a failed probe doubles the backoff up to the cap, a
// successful one closes.
func TestBreakerProbeLifecycle(t *testing.T) {
	cfg := testBreakerConfig()
	now := time.Now()
	var b breaker
	if b.beginProbe(now.Add(time.Hour)) {
		t.Fatal("probed a closed breaker")
	}
	b.forceOpen(now, cfg)
	if b.beginProbe(now) {
		t.Fatal("probe began before the backoff elapsed (jitter >= minBackoff)")
	}
	due := now.Add(time.Hour)
	if !b.beginProbe(due) {
		t.Fatal("overdue probe refused")
	}
	if b.state() != breakerHalfOpen {
		t.Fatalf("state during probe = %q, want half-open", b.state())
	}
	if b.beginProbe(due) {
		t.Fatal("second concurrent probe allowed")
	}
	b.probeResult(false, due, cfg)
	if b.allow() || b.state() != breakerOpen {
		t.Fatal("failed probe closed the breaker")
	}
	if b.backoff != 200*time.Millisecond {
		t.Fatalf("backoff after one failed probe = %v, want doubled 200ms", b.backoff)
	}
	due = due.Add(time.Hour)
	for i := 0; i < 3; i++ { // 400, cap, cap
		if !b.beginProbe(due) {
			t.Fatalf("probe %d refused", i)
		}
		b.probeResult(false, due, cfg)
		due = due.Add(time.Hour)
	}
	if b.backoff != cfg.maxBackoff {
		t.Fatalf("backoff = %v, want capped at %v", b.backoff, cfg.maxBackoff)
	}
	if !b.beginProbe(due) {
		t.Fatal("probe refused after cap")
	}
	b.probeResult(true, due, cfg)
	if !b.allow() || b.state() != breakerClosed {
		t.Fatalf("successful probe left allow=%v state=%q", b.allow(), b.state())
	}
}

// TestJitterBounds: jitter(d) spreads into [d, 1.5d] — never earlier than
// the base delay, never more than half again as late.
func TestJitterBounds(t *testing.T) {
	const d = 100 * time.Millisecond
	for i := 0; i < 200; i++ {
		j := jitter(d)
		if j < d || j > d+d/2 {
			t.Fatalf("jitter(%v) = %v outside [d, 1.5d]", d, j)
		}
	}
	if jitter(0) != 0 {
		t.Fatalf("jitter(0) = %v", jitter(0))
	}
}
