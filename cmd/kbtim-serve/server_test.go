package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"kbtim"
)

// testEngine builds a small dataset with both indexes attached and caching
// on.
func testEngine(t *testing.T) *kbtim.Engine {
	t.Helper()
	ds, err := kbtim.GenerateDataset(kbtim.DatasetSpec{
		Kind: kbtim.TwitterLike, NumUsers: 300, AvgDegree: 6,
		NumTopics: 6, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := kbtim.NewEngine(ds, kbtim.Options{
		Epsilon:            0.5,
		K:                  10,
		MaxThetaPerKeyword: 4000,
		PartitionSize:      5,
		Seed:               11,
		CacheBytes:         1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	dir := t.TempDir()
	rrPath := filepath.Join(dir, "t.rr")
	irrPath := filepath.Join(dir, "t.irr")
	if _, err := eng.BuildRRIndex(rrPath); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.BuildIRRIndex(irrPath); err != nil {
		t.Fatal(err)
	}
	if err := eng.OpenRRIndex(rrPath); err != nil {
		t.Fatal(err)
	}
	if err := eng.OpenIRRIndex(irrPath); err != nil {
		t.Fatal(err)
	}
	return eng
}

func postQuery(t *testing.T, ts *httptest.Server, req queryRequest) (*queryResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
	}
	return &qr, resp
}

func TestServerQueryEndpoint(t *testing.T) {
	srv := NewServer(testEngine(t), 4)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Discover the queryable universe.
	resp, err := http.Get(ts.URL + "/keywords")
	if err != nil {
		t.Fatal(err)
	}
	var kws struct {
		Topics []int `json:"topics"`
		Count  int   `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&kws); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if kws.Count == 0 || len(kws.Topics) != kws.Count {
		t.Fatalf("keywords = %+v", kws)
	}

	for _, strategy := range []string{"irr", "rr", ""} {
		qr, resp := postQuery(t, ts, queryRequest{
			Topics: kws.Topics[:2], K: 3, Strategy: strategy,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("strategy %q: status %s", strategy, resp.Status)
		}
		if len(qr.Seeds) != 3 {
			t.Fatalf("strategy %q: %d seeds, want 3", strategy, len(qr.Seeds))
		}
		if qr.EstSpread <= 0 || qr.NumRRSets <= 0 {
			t.Fatalf("strategy %q: empty result %+v", strategy, qr)
		}
		want := strategy
		if want == "" {
			want = "irr"
		}
		if qr.Strategy != want {
			t.Fatalf("strategy echoed as %q, want %q", qr.Strategy, want)
		}
	}

	// Malformed and invalid requests fail without crashing the pool.
	if _, resp := postQuery(t, ts, queryRequest{Topics: []int{999}, K: 1}); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown keyword: status %s", resp.Status)
	}
	if _, resp := postQuery(t, ts, queryRequest{Topics: kws.Topics[:1], K: 1, Strategy: "bogus"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad strategy: status %s", resp.Status)
	}
	r, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: status %s", r.Status)
	}
}

// TestServerRejectsInvalidInput pins the input-validation contract:
// malformed client requests get a 400 with a JSON error BEFORE dispatch,
// counted in `rejected` — they are not engine errors and must not inflate
// `failed`.
func TestServerRejectsInvalidInput(t *testing.T) {
	srv := NewServer(testEngine(t), 2)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		req  queryRequest
	}{
		{"zero k", queryRequest{Topics: []int{0}, K: 0}},
		{"negative k", queryRequest{Topics: []int{0}, K: -3}},
		{"no topics", queryRequest{K: 2}},
		{"duplicate topics", queryRequest{Topics: []int{1, 1}, K: 2}},
		{"bad strategy", queryRequest{Topics: []int{0}, K: 2, Strategy: "wris"}},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(mustJSON(t, tc.req)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %s, want 400", tc.name, resp.Status)
		}
		var body struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
			t.Fatalf("%s: error body missing (%v)", tc.name, err)
		}
		resp.Body.Close()
	}
	// A syntactically broken body is rejected the same way.
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("broken body: status %s", resp.Status)
	}

	if got := srv.rejected.Load(); got != int64(len(cases))+1 {
		t.Fatalf("rejected = %d, want %d", got, len(cases)+1)
	}
	if got := srv.failed.Load(); got != 0 {
		t.Fatalf("failed = %d, want 0 (client errors are not engine failures)", got)
	}

	// And the split shows up on /stats.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Rejected != int64(len(cases))+1 || stats.Failed != 0 {
		t.Fatalf("stats rejected/failed = %d/%d", stats.Rejected, stats.Failed)
	}
}

// TestDriveValidatesConfig: drive mode refuses to start the load loop on a
// bad strategy or client count.
func TestDriveValidatesConfig(t *testing.T) {
	bad := []driveConfig{
		{Target: "http://127.0.0.1:1", Clients: 4, Duration: time.Second, K: 1, Strategy: "wris"},
		{Target: "http://127.0.0.1:1", Clients: 0, Duration: time.Second, K: 1, Strategy: "irr"},
		{Target: "http://127.0.0.1:1", Clients: 4, Duration: time.Second, K: 0, Strategy: "rr"},
		{Target: "http://127.0.0.1:1", Clients: 4, Duration: 0, K: 1, Strategy: "irr"},
	}
	for i, cfg := range bad {
		if _, err := drive(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

func mustJSON(t *testing.T, v interface{}) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestServerConcurrentLoad hammers the bounded pool from more goroutines
// than workers; every request must come back correct (run under -race this
// also guards the Engine's concurrency story end to end).
func TestServerConcurrentLoad(t *testing.T) {
	srv := NewServer(testEngine(t), 2) // pool smaller than client count
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	want, resp := postQuery(t, ts, queryRequest{Topics: []int{0, 1}, K: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline: %s", resp.Status)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				qr, resp := postQuery(t, ts, queryRequest{Topics: []int{0, 1}, K: 2})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %s", resp.Status)
					return
				}
				if len(qr.Seeds) != len(want.Seeds) || qr.EstSpread != want.EstSpread {
					t.Errorf("result diverged under load: %+v vs %+v", qr, want)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Stats must reflect the traffic and a warm cache.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Served < 41 { // 1 baseline + 40 load
		t.Fatalf("served = %d, want >= 41", stats.Served)
	}
	if stats.Workers != 2 || stats.InFlight != 0 {
		t.Fatalf("pool state = %+v", stats)
	}
	if stats.IRRCache.Hits == 0 {
		t.Fatalf("repeated workload produced no IRR cache hits: %+v", stats.IRRCache)
	}
}

// TestDriveClosedLoop exercises the load driver against an in-process
// server.
func TestDriveClosedLoop(t *testing.T) {
	srv := NewServer(testEngine(t), 4)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := drive(driveConfig{
		Target:   ts.URL,
		Clients:  4,
		Duration: 300 * time.Millisecond,
		K:        2,
		MaxLen:   2,
		Strategy: "irr",
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries == 0 {
		t.Fatal("driver completed no queries")
	}
	if rep.Errors != 0 {
		t.Fatalf("driver saw %d errors", rep.Errors)
	}
	if rep.QPS <= 0 || rep.P95MS < rep.P50MS {
		t.Fatalf("implausible report: %+v", rep)
	}
	if rep.CacheHits == 0 {
		t.Fatal("repeated random workload over 6 topics should hit the cache")
	}
}

func TestHealthz(t *testing.T) {
	srv := NewServer(testEngine(t), 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
}

// TestServerCanceledClients pins the disconnect accounting: a client that
// hangs up while waiting for a pool slot (or mid-query) is counted in
// `canceled`, not `failed`, and no response body is written to the dead
// connection.
func TestServerCanceledClients(t *testing.T) {
	srv := NewServer(testEngine(t), 1)

	// Occupy the only pool slot so the request must queue.
	srv.sem <- struct{}{}
	defer func() { <-srv.sem }()

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(queryRequest{Topics: []int{0}, K: 1})
	req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		srv.Handler().ServeHTTP(rec, req)
		close(done)
	}()
	// Let the handler reach the pool wait, then hang up.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not return after client cancellation")
	}

	if got := srv.canceled.Load(); got != 1 {
		t.Fatalf("canceled = %d, want 1", got)
	}
	if got := srv.failed.Load(); got != 0 {
		t.Fatalf("failed = %d, want 0 (disconnect is not a failure)", got)
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("wrote %q to a dead connection", rec.Body.String())
	}

	// The counter is on /stats.
	srec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(srec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats statsResponse
	if err := json.NewDecoder(srec.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Canceled != 1 || stats.Failed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestServerDecodedCacheStats serves from an engine with the decoded-object
// tier enabled: repeated queries must report per-query decoded hits and the
// /stats decoded-cache section must fill in.
func TestServerDecodedCacheStats(t *testing.T) {
	ds, err := kbtim.GenerateDataset(kbtim.DatasetSpec{
		Kind: kbtim.TwitterLike, NumUsers: 300, AvgDegree: 6,
		NumTopics: 6, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := kbtim.NewEngine(ds, kbtim.Options{
		Epsilon:            0.5,
		K:                  10,
		MaxThetaPerKeyword: 4000,
		PartitionSize:      5,
		Seed:               11,
		DecodedCacheBytes:  8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	dir := t.TempDir()
	irrPath := filepath.Join(dir, "t.irr")
	if _, err := eng.BuildIRRIndex(irrPath); err != nil {
		t.Fatal(err)
	}
	if err := eng.OpenIRRIndex(irrPath); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng, 2)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, resp := postQuery(t, ts, queryRequest{Topics: []int{0, 1}, K: 2}); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold query: %s", resp.Status)
	}
	warm, resp := postQuery(t, ts, queryRequest{Topics: []int{0, 1}, K: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm query: %s", resp.Status)
	}
	if warm.IO.DecodedHits == 0 || warm.IO.DecodedMisses != 0 {
		t.Fatalf("warm query decoded traffic: %+v", warm.IO)
	}
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.IRRDecoded.Hits == 0 || stats.IRRDecoded.Entries == 0 {
		t.Fatalf("decoded cache stats empty: %+v", stats.IRRDecoded)
	}
}
