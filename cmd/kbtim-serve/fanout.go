package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kbtim"
	"kbtim/internal/diskio"
	"kbtim/internal/irrindex"
	"kbtim/internal/objcache"
	"kbtim/internal/remote"
	"kbtim/internal/rrindex"
	"kbtim/internal/shardmap"
	"kbtim/internal/topic"
)

// fanoutNode is one downstream kbtim-serve process as the router sees it:
// its query/health URLs, its remotely opened indexes (artifact fetches go
// through client), and its traffic counters.
type fanoutNode struct {
	url     string
	client  *remote.Client
	rr      *rrindex.Index
	irr     *irrindex.Index
	rrDec   *objcache.Cache
	irrDec  *objcache.Cache
	queries atomic.Int64 // queries this node participated in
	proxied atomic.Int64 // whole-query fast-path subset

	// healthMu guards the TTL-cached /healthz verdict below: load
	// balancers poll the router's /healthz every few seconds, often from
	// several instances, and without the cache every poll would fan out a
	// fresh probe to every backend.
	healthMu  sync.Mutex //kbtim:lockrank 50
	healthAt  time.Time
	healthErr error
}

// fanout is the cross-node scatter-gather backend (kbtim-serve -router):
// the same shardmap contract as kbtim.Sharded, with processes instead of
// engines behind it. Node i owns the keywords shard i of the map assigns,
// exactly the partition kbtim-build -shards wrote into the file node i
// serves, so build, backend, and router all agree on ownership with no
// coordination service.
//
// A query whose topics co-locate on one node is PROXIED whole (one round
// trip; the owning node runs the whole algorithm, the fast path). A query
// spanning nodes runs Algorithm 2/4 locally with every keyword's artifact
// fetches going over the wire to its owning node — rrindex/irrindex
// QueryMulti with remote-backed indexes — which keeps results bit-identical
// to a single engine over the full index (the three-way parity test pins
// engine == in-process Sharded == this router). Router-side decoded caches
// front the wire, so hot keywords scatter without network I/O.
type fanout struct {
	sm        *shardmap.Map
	mode      kbtim.ShardMode
	nodes     []*fanoutNode
	hc        *http.Client // proxy/health/stats transport (per-request ctx bounds it)
	next      atomic.Uint64
	proxCnt   atomic.Int64
	scatCnt   atomic.Int64
	healthTTL time.Duration
	// proxyTimeout bounds every router→backend query call — the startup
	// opens and each proxied /query POST — on top of whatever deadline the
	// client request already carries (-proxy-timeout).
	proxyTimeout time.Duration
}

// normalizeBackendURL accepts "host:port" or a full URL and returns a
// scheme-qualified base with no trailing slash.
func normalizeBackendURL(s string) string {
	s = strings.TrimRight(strings.TrimSpace(s), "/")
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return s
}

// splitBackends parses the -backends flag.
func splitBackends(flag string) []string {
	var urls []string
	for _, part := range strings.Split(flag, ",") {
		if p := strings.TrimSpace(part); p != "" {
			urls = append(urls, normalizeBackendURL(p))
		}
	}
	return urls
}

// openFanout connects to every backend, opens its indexes remotely (one
// "dir" fetch per kind), and wires the shard map over the discovered
// keyword universe. decBudget is the PER-NODE decoded-cache byte budget on
// the router side (the caller splits its global flag), attached to each
// remote index so hot artifacts stay off the wire; queryPar is the
// per-query artifact-fetch parallelism — worth raising for remote indexes,
// where each fetch is a network round trip.
//
// Every backend must serve the same index kinds, and their headers must
// describe the same dataset (spanning queries re-verify |V|/|T|/K at query
// time; topic-space agreement is what the shard map needs up front).
func openFanout(urls []string, mode kbtim.ShardMode, decBudget int64, cacheShards, queryPar int, proxyTimeout time.Duration) (*fanout, error) {
	if len(urls) == 0 {
		return nil, errors.New("router mode needs -backends (comma-separated base URLs)")
	}
	if proxyTimeout <= 0 {
		return nil, fmt.Errorf("-proxy-timeout must be positive, got %v", proxyTimeout)
	}
	m := shardmap.Hash
	if mode != "" {
		var err error
		if m, err = shardmap.ParseMode(string(mode)); err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), proxyTimeout)
	defer cancel()
	f := &fanout{
		mode:         mode,
		hc:           &http.Client{}, // per-request contexts bound proxy calls
		healthTTL:    2 * time.Second,
		proxyTimeout: proxyTimeout,
	}
	numTopics := 0
	for i, u := range urls {
		n := &fanoutNode{url: u, client: remote.NewClient(u, nil)}
		var err error
		if n.rr, err = n.client.OpenRR(ctx); err != nil && !errors.Is(err, remote.ErrNotServed) {
			return nil, fmt.Errorf("backend %s: %w", u, err)
		}
		if n.irr, err = n.client.OpenIRR(ctx); err != nil && !errors.Is(err, remote.ErrNotServed) {
			return nil, fmt.Errorf("backend %s: %w", u, err)
		}
		if n.rr == nil && n.irr == nil {
			return nil, fmt.Errorf("backend %s serves no RR or IRR index", u)
		}
		if i > 0 {
			if (n.rr == nil) != (f.nodes[0].rr == nil) || (n.irr == nil) != (f.nodes[0].irr == nil) {
				return nil, fmt.Errorf("backend %s serves a different index-kind set than %s", u, f.nodes[0].url)
			}
		}
		nt := 0
		switch {
		case n.irr != nil:
			nt = n.irr.Header().NumTopics
		case n.rr != nil:
			nt = n.rr.Header().NumTopics
		}
		if i == 0 {
			numTopics = nt
		} else if nt != numTopics {
			return nil, fmt.Errorf("backend %s serves a %d-topic universe, %s serves %d — not shards of one index",
				u, nt, f.nodes[0].url, numTopics)
		}
		if n.rr != nil {
			if decBudget > 0 {
				n.rrDec = objcache.NewSharded(decBudget, cacheShards)
				n.rr.SetDecodedCache(n.rrDec)
			}
			n.rr.SetQueryParallelism(queryPar)
		}
		if n.irr != nil {
			if decBudget > 0 {
				n.irrDec = objcache.NewSharded(decBudget, cacheShards)
				n.irr.SetDecodedCache(n.irrDec)
			}
			n.irr.SetQueryParallelism(queryPar)
		}
		f.nodes = append(f.nodes, n)
	}
	sm, err := shardmap.New(len(f.nodes), m, numTopics)
	if err != nil {
		return nil, err
	}
	f.sm = sm
	return f, nil
}

// involved returns the nodes a query must touch, ascending. Replicate mode
// rotates whole queries across nodes; hash/range return the distinct owners
// of the query's topics.
func (f *fanout) involved(topics []int) []int {
	if f.sm.Mode() == shardmap.Replicate {
		return []int{int(f.next.Add(1)-1) % len(f.nodes)}
	}
	return f.sm.Shards(topics)
}

// proxy forwards the whole query to one node's /query and maps the reply
// back into a Result — the co-located fast path: one round trip, the owning
// node pays the compute, results identical by construction.
func (f *fanout) proxy(ctx context.Context, node int, q kbtim.Query, strategy string) (*kbtim.Result, error) {
	ctx, cancel := context.WithTimeout(ctx, f.proxyTimeout)
	defer cancel()
	n := f.nodes[node]
	body, err := json.Marshal(queryRequest{Topics: q.Topics, K: q.K, Strategy: strategy})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.url+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("backend %s: %w", n.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var fail struct {
			Error string `json:"error"`
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(msg, &fail) == nil && fail.Error != "" {
			return nil, fmt.Errorf("backend %s: %s", n.url, fail.Error)
		}
		return nil, fmt.Errorf("backend %s: %s: %s", n.url, resp.Status, msg)
	}
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return nil, fmt.Errorf("backend %s: decoding reply: %w", n.url, err)
	}
	return &kbtim.Result{
		Seeds:            qr.Seeds,
		Marginals:        qr.Marginals,
		EstSpread:        qr.EstSpread,
		NumRRSets:        qr.NumRRSets,
		PartitionsLoaded: qr.PartitionsLoaded,
		IO: kbtim.IOStats{
			SequentialReads: qr.IO.SequentialReads,
			RandomReads:     qr.IO.RandomReads,
			BytesRead:       qr.IO.BytesRead,
			CacheHits:       qr.IO.CacheHits,
			CacheMisses:     qr.IO.CacheMisses,
			DecodedHits:     qr.IO.DecodedHits,
			DecodedMisses:   qr.IO.DecodedMisses,
		},
		Elapsed: time.Duration(qr.ElapsedMS * float64(time.Millisecond)),
	}, nil
}

// QueryRRCtx implements backend: proxy when one node owns every topic,
// local Algorithm 2 over remote-backed shard indexes otherwise.
func (f *fanout) QueryRRCtx(ctx context.Context, q kbtim.Query) (*kbtim.Result, error) {
	if f.nodes[0].rr == nil {
		return nil, errors.New("router backends serve no RR index")
	}
	nodes := f.involved(q.Topics)
	if len(nodes) == 0 {
		return nil, errors.New("query needs at least one keyword")
	}
	for _, i := range nodes {
		f.nodes[i].queries.Add(1)
	}
	if len(nodes) == 1 {
		f.proxCnt.Add(1)
		f.nodes[nodes[0]].proxied.Add(1)
		return f.proxy(ctx, nodes[0], q, "rr")
	}
	f.scatCnt.Add(1)
	r, err := rrindex.QueryMultiCtx(ctx, func(w int) *rrindex.Index {
		if w < 0 || w >= f.sm.NumTopics() {
			return nil
		}
		return f.nodes[f.sm.Owner(w)].rr
	}, topic.Query{Topics: q.Topics, K: q.K})
	if err != nil {
		return nil, err
	}
	return &kbtim.Result{
		Seeds:     r.Seeds,
		Marginals: r.Marginals,
		EstSpread: r.EstSpread,
		NumRRSets: r.NumRRSets,
		IO:        wireIOStats(r.IO, r.DecodedHits, r.DecodedMisses),
		Elapsed:   r.Elapsed,
	}, nil
}

// QueryIRRCtx implements backend; routing matches QueryRRCtx.
func (f *fanout) QueryIRRCtx(ctx context.Context, q kbtim.Query) (*kbtim.Result, error) {
	if f.nodes[0].irr == nil {
		return nil, errors.New("router backends serve no IRR index")
	}
	nodes := f.involved(q.Topics)
	if len(nodes) == 0 {
		return nil, errors.New("query needs at least one keyword")
	}
	for _, i := range nodes {
		f.nodes[i].queries.Add(1)
	}
	if len(nodes) == 1 {
		f.proxCnt.Add(1)
		f.nodes[nodes[0]].proxied.Add(1)
		return f.proxy(ctx, nodes[0], q, "irr")
	}
	f.scatCnt.Add(1)
	r, err := irrindex.QueryMultiCtx(ctx, func(w int) *irrindex.Index {
		if w < 0 || w >= f.sm.NumTopics() {
			return nil
		}
		return f.nodes[f.sm.Owner(w)].irr
	}, topic.Query{Topics: q.Topics, K: q.K})
	if err != nil {
		return nil, err
	}
	return &kbtim.Result{
		Seeds:            r.Seeds,
		Marginals:        r.Marginals,
		EstSpread:        r.EstSpread,
		NumRRSets:        r.NumRRSets,
		IO:               wireIOStats(r.IO, r.DecodedHits, r.DecodedMisses),
		PartitionsLoaded: r.PartitionsLoaded,
		Elapsed:          r.Elapsed,
	}, nil
}

// wireIOStats maps a scatter query's I/O scope (which recorded artifact
// transfers) into the public stats shape — BytesRead are wire bytes here.
func wireIOStats(s diskio.Stats, decHits, decMisses int64) kbtim.IOStats {
	return kbtim.IOStats{
		SequentialReads: s.SequentialReads,
		RandomReads:     s.RandomReads,
		BytesRead:       s.BytesRead,
		CacheHits:       s.CacheHits,
		CacheMisses:     s.CacheMisses,
		DecodedHits:     decHits,
		DecodedMisses:   decMisses,
	}
}

// IndexedKeywords implements backend: the sorted union of every node's
// queryable topics.
func (f *fanout) IndexedKeywords() []int {
	seen := map[int]bool{}
	var out []int
	for _, n := range f.nodes {
		var kws []int
		switch {
		case n.irr != nil:
			kws = n.irr.Keywords()
		case n.rr != nil:
			kws = n.rr.Keywords()
		}
		for _, w := range kws {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	if out == nil {
		return nil
	}
	sort.Ints(out)
	return out
}

// CacheStats implements backend. The router holds no segment cache — raw
// bytes never land here outside an artifact fetch, which the decoded tier
// fronts — so the segment section is zero.
func (f *fanout) CacheStats() (rr, irr diskio.CacheStats) { return }

// DecodedCacheStats implements backend: the router-side caches, summed
// across nodes.
func (f *fanout) DecodedCacheStats() (rr, irr objcache.Stats) {
	for _, n := range f.nodes {
		if n.rrDec != nil {
			rr = rr.Add(n.rrDec.Stats())
		}
		if n.irrDec != nil {
			irr = irr.Add(n.irrDec.Stats())
		}
	}
	return
}

// nodeHealthy returns one node's /healthz verdict, served from a
// healthTTL-bounded cache so frequent health polling does not amplify into
// a probe storm on the backends (a verdict may therefore be up to
// healthTTL stale).
func (f *fanout) nodeHealthy(ctx context.Context, n *fanoutNode) error {
	n.healthMu.Lock()
	if f.healthTTL > 0 && !n.healthAt.IsZero() && time.Since(n.healthAt) < f.healthTTL {
		err := n.healthErr
		n.healthMu.Unlock()
		return err
	}
	n.healthMu.Unlock()
	err := f.probeHealth(ctx, n)
	n.healthMu.Lock()
	n.healthAt = time.Now()
	n.healthErr = err
	n.healthMu.Unlock()
	return err
}

// probeHealth performs the actual /healthz round trip. The verdict is
// cached and shared across callers, so the probe detaches from the
// caller's context — one impatient client's cancellation must not get
// recorded (and served for healthTTL) as "backend down"; the probe's own
// 2s timeout still bounds it.
func (f *fanout) probeHealth(ctx context.Context, n *fanoutNode) error {
	ctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s", resp.Status)
	}
	return nil
}

// CheckHealth implements healthChecker: the router is healthy only when
// every node answers its /healthz — a down node means some keyword subset
// is unservable, which load balancers should see.
func (f *fanout) CheckHealth(ctx context.Context) error {
	errs := make([]error, len(f.nodes))
	var wg sync.WaitGroup
	for i, n := range f.nodes {
		wg.Add(1)
		go func(i int, n *fanoutNode) {
			defer wg.Done()
			errs[i] = f.nodeHealthy(ctx, n)
		}(i, n)
	}
	wg.Wait()
	var down []string
	for i, err := range errs {
		if err != nil {
			down = append(down, fmt.Sprintf("%s (%v)", f.nodes[i].url, err))
		}
	}
	if len(down) > 0 {
		return fmt.Errorf("backends down: %s", strings.Join(down, "; "))
	}
	return nil
}

// RouterStats implements routerStatser: the fan-out counters plus a live
// probe and /stats scrape of every node (in parallel; a node that does not
// answer in time appears unhealthy with null stats).
func (f *fanout) RouterStats(ctx context.Context) *routerStatsJSON {
	out := &routerStatsJSON{
		Mode:            string(f.mode),
		ProxyTimeoutSec: f.proxyTimeout.Seconds(),
		Proxied:         f.proxCnt.Load(),
		Scattered:       f.scatCnt.Load(),
		Backends:        make([]routerBackendJSON, len(f.nodes)),
	}
	var wg sync.WaitGroup
	for i, n := range f.nodes {
		wg.Add(1)
		go func(i int, n *fanoutNode) {
			defer wg.Done()
			ws := n.client.Stats()
			b := routerBackendJSON{
				URL:             n.url,
				Healthy:         f.nodeHealthy(ctx, n) == nil,
				Queries:         n.queries.Load(),
				Proxied:         n.proxied.Load(),
				ArtifactFetches: ws.Fetches,
				WireBytes:       ws.Bytes,
			}
			if raw := f.scrapeStats(ctx, n); raw != nil {
				b.Stats = raw
			}
			out.Backends[i] = b
		}(i, n)
	}
	wg.Wait()
	return out
}

// scrapeStats best-effort fetches one node's /stats for embedding.
func (f *fanout) scrapeStats(ctx context.Context, n *fanoutNode) json.RawMessage {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.url+"/stats", nil)
	if err != nil {
		return nil
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || !json.Valid(raw) {
		return nil
	}
	return json.RawMessage(raw)
}
