package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kbtim"
	"kbtim/internal/diskio"
	"kbtim/internal/irrindex"
	"kbtim/internal/objcache"
	"kbtim/internal/remote"
	"kbtim/internal/rrindex"
	"kbtim/internal/shardmap"
	"kbtim/internal/topic"
	"kbtim/internal/wris"
)

// fanoutNode is one downstream kbtim-serve process as the router sees it:
// one replica of one shard. Its breaker is the health gate every
// router→backend interaction consults and feeds (passive observation) and
// the background probe loop re-closes (active half-open re-probes).
type fanoutNode struct {
	url     string
	shard   int
	client  *remote.Client
	proxied atomic.Int64 // whole queries this replica answered
	brk     breaker
	// validated records that this replica's index preludes were checked
	// byte-identical to its group's reference view. Replicas that were down
	// at router startup start false and must pass remote.Group.Validate in
	// the probe loop before their breaker may close — an unvalidated
	// replica serving artifacts could silently break the parity invariant.
	validated atomic.Bool

	// healthMu guards the TTL-cached /healthz verdict below: load
	// balancers poll the router's /healthz every few seconds, often from
	// several instances, and without the cache every poll would fan out a
	// fresh probe to every backend.
	healthMu  sync.Mutex //kbtim:lockrank 50
	healthAt  time.Time
	healthErr error
}

// shardGroup is the replica set serving one shard's keyword subset: R nodes
// all serving byte-identical index files, a remote.Group that fails artifact
// fetches over between them, and ONE remote-backed index per kind opened at
// the group level (the directory is the same on every replica, so which
// replica supplied it is irrelevant — and a replica coming back needs no
// re-open, only a breaker close).
type shardGroup struct {
	f      *fanout
	shard  int
	nodes  []*fanoutNode
	grp    *remote.Group
	rr     *rrindex.Index
	irr    *irrindex.Index
	rrDec  *objcache.Cache
	irrDec *objcache.Cache
	next   atomic.Uint64 // proxy round-robin cursor across replicas
}

// available reports whether at least one replica may take traffic.
func (g *shardGroup) available() bool {
	for _, n := range g.nodes {
		if n.brk.allow() {
			return true
		}
	}
	return false
}

// groupHealth adapts a shardGroup's breakers to remote.Health, so artifact
// fetches are routed around open breakers and their outcomes feed back in.
type groupHealth struct{ g *shardGroup }

func (h groupHealth) Available(i int) bool { return h.g.nodes[i].brk.allow() }
func (h groupHealth) Observe(i int, err error) {
	h.g.f.observeNode(h.g.nodes[i], err)
}

// fanout is the cross-node scatter-gather backend (kbtim-serve -router):
// the same shardmap contract as kbtim.Sharded, with replica GROUPS of
// processes behind it. Group i owns the keywords shard i of the map assigns,
// exactly the partition kbtim-build -shards wrote into the file every
// replica of group i serves, so build, backend, and router all agree on
// ownership with no coordination service.
//
// A query whose topics co-locate on one group is PROXIED whole to one of its
// healthy replicas (one round trip; re-issued to a surviving replica on
// failure — safe, the query is read-only). A query spanning groups runs
// Algorithm 2/4 locally with every keyword's artifact fetches going over the
// wire to its owning group — rrindex/irrindex QueryMulti with remote-backed
// indexes whose fetches fail over mid-round — which keeps results
// bit-identical to a single engine over the full index (the three-way parity
// test pins engine == in-process Sharded == this router, and the failover
// tests pin it under injected faults). Router-side decoded caches front the
// wire per group, so hot keywords scatter without network I/O.
type fanout struct {
	sm     *shardmap.Map
	mode   kbtim.ShardMode
	groups []*shardGroup
	nodes  []*fanoutNode // flattened (shard-major) for stats and health scans
	hc     *http.Client  // proxy/health/stats transport (per-request ctx bounds it)
	// artifactHC is the ONE tuned client every backend's artifact fetches
	// share: a spanning query issues one batch POST per owning group per
	// round, and those must ride already-warm connections — a per-node
	// default client would keep only 2 idle connections per host and re-pay
	// TCP setup every round. It shares its transport (and so its idle pool)
	// with hc.
	artifactHC *http.Client
	next       atomic.Uint64 // replicate-mode group rotation

	proxCnt        atomic.Int64
	scatCnt        atomic.Int64
	proxyRetries   atomic.Int64 // failed proxy attempts re-issued to another replica
	proxyFailovers atomic.Int64 // proxied queries that succeeded on a non-first replica

	healthTTL    time.Duration
	probeTimeout time.Duration
	// proxyTimeout bounds every router→backend query call — the startup
	// opens and each proxied /query POST attempt — on top of whatever
	// deadline the client request already carries (-proxy-timeout).
	proxyTimeout time.Duration
	brkCfg       breakerConfig

	stopProbe chan struct{} // closes the background re-probe loop
	probeWG   sync.WaitGroup
	closeOnce sync.Once
}

// fanoutConfig carries openFanout's knobs (the flag surface plus test hooks).
type fanoutConfig struct {
	mode         kbtim.ShardMode
	decBudget    int64 // PER-GROUP decoded-cache byte budget (caller splits the global flag)
	cacheShards  int
	queryPar     int
	maxIdleConns int // idle keep-alive connections kept per backend (-max-idle-conns; <=0 = default 32)
	proxyTimeout time.Duration
	healthTTL    time.Duration // TTL of cached /healthz verdicts (0 = probe every time)
	probeTimeout time.Duration // per-probe bound on /healthz round trips
	breaker      breakerConfig
	noProbeLoop  bool // tests drive reprobeOnce by hand instead
}

func defaultFanoutConfig() fanoutConfig {
	return fanoutConfig{
		proxyTimeout: 30 * time.Second,
		healthTTL:    2 * time.Second,
		probeTimeout: 2 * time.Second,
		breaker:      defaultBreakerConfig(),
	}
}

// probeLoopInterval is how often the background loop scans for breakers due
// a half-open re-probe; the per-breaker exponential backoff decides whether
// a scan actually probes anything.
const probeLoopInterval = 100 * time.Millisecond

// normalizeBackendURL accepts "host:port" or a full URL and returns a
// scheme-qualified base with no trailing slash.
func normalizeBackendURL(s string) string {
	s = strings.TrimRight(strings.TrimSpace(s), "/")
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return s
}

// splitBackends parses the -backends flag: comma-separated shards, each a
// |-separated set of replicas serving that shard's files ("h1|h1b,h2|h2b" =
// two shards, two replicas each).
func splitBackends(flag string) [][]string {
	var groups [][]string
	for _, part := range strings.Split(flag, ",") {
		var reps []string
		for _, r := range strings.Split(part, "|") {
			if p := strings.TrimSpace(r); p != "" {
				reps = append(reps, normalizeBackendURL(p))
			}
		}
		if len(reps) > 0 {
			groups = append(groups, reps)
		}
	}
	return groups
}

// openFanout connects to every replica group, opens each group's indexes
// remotely (one "dir" fetch per kind from the first live replica), verifies
// every reachable replica serves byte-identical preludes, and wires the
// shard map over the discovered keyword universe.
//
// Backends that are down at startup do NOT abort the open: as long as each
// group keeps >= 1 live replica the router starts DEGRADED — the dead
// replicas' breakers are forced open and the background probe loop
// re-validates and re-admits them when they come back. A reachable replica
// that disagrees with its group (different index file, missing kind) is a
// configuration error and does abort: it can never be safely admitted.
//
// Every group must serve the same index kinds over the same topic universe
// (spanning queries re-verify |V|/|T|/K at query time; topic-space agreement
// is what the shard map needs up front).
func openFanout(groups [][]string, cfg fanoutConfig) (*fanout, error) {
	if len(groups) == 0 {
		return nil, errors.New("router mode needs -backends (comma-separated shards, |-separated replicas)")
	}
	if cfg.proxyTimeout <= 0 {
		return nil, fmt.Errorf("-proxy-timeout must be positive, got %v", cfg.proxyTimeout)
	}
	if cfg.probeTimeout <= 0 {
		return nil, fmt.Errorf("-probe-timeout must be positive, got %v", cfg.probeTimeout)
	}
	if cfg.breaker.failures < 1 || cfg.breaker.minBackoff <= 0 || cfg.breaker.maxBackoff < cfg.breaker.minBackoff {
		return nil, fmt.Errorf("invalid breaker config %+v", cfg.breaker)
	}
	m := shardmap.Hash
	if cfg.mode != "" {
		var err error
		if m, err = shardmap.ParseMode(string(cfg.mode)); err != nil {
			return nil, err
		}
	}
	// One keep-alive transport serves every router→backend call — proxied
	// queries, health probes, and artifact traffic alike — so a backend's
	// warm connections are shared across paths instead of competing pools.
	tr := remote.NewTransport(cfg.maxIdleConns)
	f := &fanout{
		mode:         cfg.mode,
		hc:           &http.Client{Transport: tr}, // per-request contexts bound proxy calls
		artifactHC:   &http.Client{Timeout: cfg.proxyTimeout, Transport: tr},
		healthTTL:    cfg.healthTTL,
		probeTimeout: cfg.probeTimeout,
		proxyTimeout: cfg.proxyTimeout,
		brkCfg:       cfg.breaker,
	}
	numTopics := 0
	for si, urls := range groups {
		g, err := f.openGroup(si, urls, cfg)
		if err != nil {
			return nil, err
		}
		if si > 0 {
			if (g.rr == nil) != (f.groups[0].rr == nil) || (g.irr == nil) != (f.groups[0].irr == nil) {
				return nil, fmt.Errorf("shard %d [%s] serves a different index-kind set than shard 0", si, strings.Join(urls, "|"))
			}
		}
		nt := 0
		switch {
		case g.irr != nil:
			nt = g.irr.Header().NumTopics
		case g.rr != nil:
			nt = g.rr.Header().NumTopics
		}
		if si == 0 {
			numTopics = nt
		} else if nt != numTopics {
			return nil, fmt.Errorf("shard %d serves a %d-topic universe, shard 0 serves %d — not shards of one index",
				si, nt, numTopics)
		}
		f.groups = append(f.groups, g)
		f.nodes = append(f.nodes, g.nodes...)
	}
	sm, err := shardmap.New(len(f.groups), m, numTopics)
	if err != nil {
		return nil, err
	}
	f.sm = sm
	if !cfg.noProbeLoop {
		f.stopProbe = make(chan struct{})
		f.probeWG.Add(1)
		go f.probeLoop()
	}
	return f, nil
}

// openGroup opens one shard's replica set: group-level index opens through
// the failover fetch, then a per-replica census that separates "down right
// now" (degraded start, breaker forced open) from "serving the wrong file"
// (config error, abort).
func (f *fanout) openGroup(si int, urls []string, cfg fanoutConfig) (*shardGroup, error) {
	ctx, cancel := context.WithTimeout(context.Background(), cfg.proxyTimeout)
	defer cancel()
	g := &shardGroup{f: f, shard: si}
	clients := make([]*remote.Client, 0, len(urls))
	for _, u := range urls {
		n := &fanoutNode{url: u, shard: si, client: remote.NewClient(u, f.artifactHC)}
		g.nodes = append(g.nodes, n)
		clients = append(clients, n.client)
	}
	g.grp = remote.NewGroup(clients, groupHealth{g})
	var err error
	if g.rr, err = g.grp.OpenRR(ctx); err != nil && !errors.Is(err, remote.ErrNotServed) {
		return nil, fmt.Errorf("shard %d [%s]: no live replica serves its RR index: %w", si, strings.Join(urls, "|"), err)
	}
	if g.irr, err = g.grp.OpenIRR(ctx); err != nil && !errors.Is(err, remote.ErrNotServed) {
		return nil, fmt.Errorf("shard %d [%s]: no live replica serves its IRR index: %w", si, strings.Join(urls, "|"), err)
	}
	if g.rr == nil && g.irr == nil {
		return nil, fmt.Errorf("shard %d [%s] serves no RR or IRR index", si, strings.Join(urls, "|"))
	}
	// Census: every reachable replica must agree byte-for-byte with the
	// group's reference preludes; unreachable ones start behind an open
	// breaker and are re-validated by the probe loop when they come back.
	for ni, n := range g.nodes {
		err := g.validateNode(ctx, ni)
		switch {
		case err == nil:
		case errors.Is(err, remote.ErrReplicaMismatch), errors.Is(err, remote.ErrNotServed):
			return nil, fmt.Errorf("backend %s is not a replica of shard %d: %w", n.url, si, err)
		default:
			n.brk.forceOpen(time.Now(), f.brkCfg)
		}
	}
	if g.rr != nil {
		if cfg.decBudget > 0 {
			g.rrDec = objcache.NewSharded(cfg.decBudget, cfg.cacheShards)
			g.rr.SetDecodedCache(g.rrDec)
		}
		g.rr.SetQueryParallelism(cfg.queryPar)
	}
	if g.irr != nil {
		if cfg.decBudget > 0 {
			g.irrDec = objcache.NewSharded(cfg.decBudget, cfg.cacheShards)
			g.irr.SetDecodedCache(g.irrDec)
		}
		g.irr.SetQueryParallelism(cfg.queryPar)
	}
	return g, nil
}

// validateNode checks replica ni of g against the group's reference preludes
// for every kind the group serves and, on success, marks it admitted.
func (g *shardGroup) validateNode(ctx context.Context, ni int) error {
	if g.rr != nil {
		if err := g.grp.Validate(ctx, ni, remote.KindRR); err != nil {
			return err
		}
	}
	if g.irr != nil {
		if err := g.grp.Validate(ctx, ni, remote.KindIRR); err != nil {
			return err
		}
	}
	g.nodes[ni].validated.Store(true)
	return nil
}

// observeNode feeds one round trip's outcome into the node's breaker. A
// success may close an open breaker only for a validated replica — an
// unvalidated one (down at startup) must pass the probe loop's directory
// check first, so a lucky fail-open fetch cannot admit a wrong file.
func (f *fanout) observeNode(n *fanoutNode, err error) {
	if err == nil {
		n.brk.success(n.validated.Load())
		return
	}
	n.brk.failure(time.Now(), f.brkCfg)
}

// Close stops the background probe loop. The HTTP clients hold no
// goroutines of their own.
func (f *fanout) Close() error {
	f.closeOnce.Do(func() {
		if f.stopProbe != nil {
			close(f.stopProbe)
			f.probeWG.Wait()
		}
	})
	return nil
}

// probeLoop is the background half-open re-probe driver: it periodically
// scans every node and runs at most one probe per open breaker, spaced by
// the breaker's own exponential backoff + jitter.
func (f *fanout) probeLoop() {
	defer f.probeWG.Done()
	tick := time.NewTicker(probeLoopInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			f.reprobeOnce()
		case <-f.stopProbe:
			return
		}
	}
}

// reprobeOnce runs one scan of the probe loop: every open breaker that is
// due gets a /healthz round trip (plus, for a replica never admitted, the
// directory validation) and its breaker closed or backed off accordingly.
// Exposed separately so tests can drive recovery deterministically.
func (f *fanout) reprobeOnce() {
	now := time.Now()
	for _, g := range f.groups {
		for ni, n := range g.nodes {
			if !n.brk.beginProbe(now) {
				continue
			}
			err := f.probeNode(g, ni, n)
			n.brk.probeResult(err == nil, time.Now(), f.brkCfg)
		}
	}
}

// probeNode is one half-open probe: the backend must answer /healthz and,
// if it was never validated against the group, serve byte-identical index
// preludes before it is re-admitted.
func (f *fanout) probeNode(g *shardGroup, ni int, n *fanoutNode) error {
	ctx, cancel := context.WithTimeout(context.Background(), f.probeTimeout)
	defer cancel()
	if err := f.probeHealth(ctx, n); err != nil {
		return err
	}
	if !n.validated.Load() {
		if err := g.validateNode(ctx, ni); err != nil {
			return err
		}
	}
	return nil
}

// involved returns the groups a query must touch, ascending. Replicate mode
// rotates whole queries across groups, skipping groups with no available
// replica (a breaker-open node must not keep receiving every Nth query);
// hash/range return the distinct owners of the query's topics.
func (f *fanout) involved(topics []int) []int {
	if f.sm.Mode() == shardmap.Replicate {
		ng := len(f.groups)
		start := int(f.next.Add(1)-1) % ng
		for k := 0; k < ng; k++ {
			if gi := (start + k) % ng; f.groups[gi].available() {
				return []int{gi}
			}
		}
		// Every group looks down: fail open on the rotation pick and let
		// the per-replica retries decide.
		return []int{start}
	}
	return f.sm.Shards(topics)
}

// proxyOrder returns the group's replicas in try order for a whole-query
// proxy: round-robin across replicas (spreading load), available ones
// first, the rest kept as a last resort.
func (g *shardGroup) proxyOrder() []int {
	n := len(g.nodes)
	start := int(g.next.Add(1)-1) % n
	order := make([]int, 0, n)
	for k := 0; k < n; k++ {
		if i := (start + k) % n; g.nodes[i].brk.allow() {
			order = append(order, i)
		}
	}
	for k := 0; k < n; k++ {
		if i := (start + k) % n; !g.nodes[i].brk.allow() {
			order = append(order, i)
		}
	}
	return order
}

// proxy forwards the whole query to one healthy replica of the owning group
// and maps the reply back into a Result — the co-located fast path: one
// round trip, the owning node pays the compute, results identical by
// construction on ANY replica (they serve the same file). A transient
// failure re-issues the query to the next replica, rebuilding the request
// body per attempt; a deterministic reply (4xx — bad query, unindexed
// keyword) returns immediately, every replica would say the same.
func (f *fanout) proxy(ctx context.Context, gi int, q kbtim.Query, strategy string, so kbtim.StreamOptions) (*kbtim.Result, error) {
	g := f.groups[gi]
	wireReq := queryRequest{Topics: q.Topics, K: q.K, Strategy: strategy}
	if !so.Deadline.IsZero() {
		// The anytime deadline crosses the wire as a relative budget: the
		// owning node runs the SAME best-certified-prefix degradation a local
		// engine would and marks the reply partial. An already-expired
		// deadline skips the round trip — the best certified prefix is empty.
		ms := time.Until(so.Deadline).Milliseconds()
		if ms <= 0 {
			return &kbtim.Result{Partial: true}, nil
		}
		wireReq.DeadlineMS = ms
	}
	body, err := json.Marshal(wireReq)
	if err != nil {
		return nil, err
	}
	order := g.proxyOrder()
	var lastErr error
	for attempt, ni := range order {
		n := g.nodes[ni]
		res, retryable, err := f.proxyOnce(ctx, n, body)
		if err == nil {
			n.proxied.Add(1)
			if attempt > 0 {
				f.proxyFailovers.Add(1)
			}
			// Proxied queries stream on arrival: the whole reply exists
			// before the first emission (only scattered queries certify
			// locally seed by seed), but the emitted (seed, marginal,
			// spreadLB) sequence is identical to what the owning node's own
			// stream produced — the prefix spread formula is shared.
			if so.Emit != nil {
				covered := 0
				for _, m := range res.Marginals {
					covered += m
				}
				run := 0
				for i, seed := range res.Seeds {
					if i < len(res.Marginals) {
						run += res.Marginals[i]
					}
					lb := 0.0
					if covered > 0 {
						lb = res.EstSpread * float64(run) / float64(covered)
					}
					m := 0
					if i < len(res.Marginals) {
						m = res.Marginals[i]
					}
					so.Emit(seed, m, lb)
				}
			}
			return res, nil
		}
		if !retryable || ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
		if attempt < len(order)-1 {
			f.proxyRetries.Add(1)
		}
	}
	return nil, lastErr
}

// proxyOnce issues one proxied /query attempt against one replica.
// retryable separates transient faults (unreachable, 5xx, truncated reply —
// another replica may well succeed) from deterministic ones (4xx: every
// replica serves the same file and would reject identically). Outcomes feed
// the node's breaker; a caller-canceled context feeds nothing.
func (f *fanout) proxyOnce(ctx context.Context, n *fanoutNode, body []byte) (*kbtim.Result, bool, error) {
	ctx, cancel := context.WithTimeout(ctx, f.proxyTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.url+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.hc.Do(req)
	if err != nil {
		if ctx.Err() == nil || errors.Is(err, context.DeadlineExceeded) {
			f.observeNode(n, err)
		}
		return nil, true, fmt.Errorf("backend %s: %w", n.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var fail struct {
			Error string `json:"error"`
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		retryable := resp.StatusCode >= 500
		if retryable {
			f.observeNode(n, fmt.Errorf("%s", resp.Status))
		} else {
			// The node is fine; the query is what it objects to.
			f.observeNode(n, nil)
		}
		if json.Unmarshal(msg, &fail) == nil && fail.Error != "" {
			return nil, retryable, fmt.Errorf("backend %s: %s", n.url, fail.Error)
		}
		return nil, retryable, fmt.Errorf("backend %s: %s: %s", n.url, resp.Status, msg)
	}
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		if ctx.Err() == nil {
			f.observeNode(n, err)
		}
		return nil, true, fmt.Errorf("backend %s: decoding reply: %w", n.url, err)
	}
	f.observeNode(n, nil)
	return &kbtim.Result{
		Seeds:            qr.Seeds,
		Marginals:        qr.Marginals,
		EstSpread:        qr.EstSpread,
		NumRRSets:        qr.NumRRSets,
		PartitionsLoaded: qr.PartitionsLoaded,
		IO: kbtim.IOStats{
			SequentialReads: qr.IO.SequentialReads,
			RandomReads:     qr.IO.RandomReads,
			BytesRead:       qr.IO.BytesRead,
			CacheHits:       qr.IO.CacheHits,
			CacheMisses:     qr.IO.CacheMisses,
			DecodedHits:     qr.IO.DecodedHits,
			DecodedMisses:   qr.IO.DecodedMisses,
		},
		Elapsed: time.Duration(qr.ElapsedMS * float64(time.Millisecond)),
		Partial: qr.Partial,
	}, false, nil
}

// QueryRRCtx implements backend: proxy when one group owns every topic,
// local Algorithm 2 over remote-backed group indexes otherwise.
func (f *fanout) QueryRRCtx(ctx context.Context, q kbtim.Query) (*kbtim.Result, error) {
	return f.QueryRRStreamCtx(ctx, q, kbtim.StreamOptions{})
}

// QueryRRStreamCtx implements backend with incremental emission: scattered
// queries certify and emit locally; proxied queries emit on reply arrival.
func (f *fanout) QueryRRStreamCtx(ctx context.Context, q kbtim.Query, so kbtim.StreamOptions) (*kbtim.Result, error) {
	if f.groups[0].rr == nil {
		return nil, errors.New("router backends serve no RR index")
	}
	gids := f.involved(q.Topics)
	if len(gids) == 0 {
		return nil, errors.New("query needs at least one keyword")
	}
	if len(gids) == 1 {
		f.proxCnt.Add(1)
		return f.proxy(ctx, gids[0], q, "rr", so)
	}
	f.scatCnt.Add(1)
	r, err := rrindex.QueryMultiStreamCtx(ctx, func(w int) *rrindex.Index {
		if w < 0 || w >= f.sm.NumTopics() {
			return nil
		}
		return f.groups[f.sm.Owner(w)].rr
	}, topic.Query{Topics: q.Topics, K: q.K}, wris.StreamOptions{Emit: wris.EmitFunc(so.Emit), Deadline: so.Deadline})
	if err != nil {
		return nil, err
	}
	return &kbtim.Result{
		Seeds:     r.Seeds,
		Marginals: r.Marginals,
		EstSpread: r.EstSpread,
		NumRRSets: r.NumRRSets,
		IO:        wireIOStats(r.IO, r.DecodedHits, r.DecodedMisses),
		Elapsed:   r.Elapsed,
		Partial:   r.Partial,
	}, nil
}

// QueryIRRCtx implements backend; routing matches QueryRRCtx.
func (f *fanout) QueryIRRCtx(ctx context.Context, q kbtim.Query) (*kbtim.Result, error) {
	return f.QueryIRRStreamCtx(ctx, q, kbtim.StreamOptions{})
}

// QueryIRRStreamCtx implements backend; routing matches QueryRRStreamCtx.
func (f *fanout) QueryIRRStreamCtx(ctx context.Context, q kbtim.Query, so kbtim.StreamOptions) (*kbtim.Result, error) {
	if f.groups[0].irr == nil {
		return nil, errors.New("router backends serve no IRR index")
	}
	gids := f.involved(q.Topics)
	if len(gids) == 0 {
		return nil, errors.New("query needs at least one keyword")
	}
	if len(gids) == 1 {
		f.proxCnt.Add(1)
		return f.proxy(ctx, gids[0], q, "irr", so)
	}
	f.scatCnt.Add(1)
	r, err := irrindex.QueryMultiStreamCtx(ctx, func(w int) *irrindex.Index {
		if w < 0 || w >= f.sm.NumTopics() {
			return nil
		}
		return f.groups[f.sm.Owner(w)].irr
	}, topic.Query{Topics: q.Topics, K: q.K}, wris.StreamOptions{Emit: wris.EmitFunc(so.Emit), Deadline: so.Deadline})
	if err != nil {
		return nil, err
	}
	return &kbtim.Result{
		Seeds:            r.Seeds,
		Marginals:        r.Marginals,
		EstSpread:        r.EstSpread,
		NumRRSets:        r.NumRRSets,
		IO:               wireIOStats(r.IO, r.DecodedHits, r.DecodedMisses),
		PartitionsLoaded: r.PartitionsLoaded,
		Elapsed:          r.Elapsed,
		Partial:          r.Partial,
	}, nil
}

// wireIOStats maps a scatter query's I/O scope (which recorded artifact
// transfers) into the public stats shape — BytesRead are wire bytes here.
func wireIOStats(s diskio.Stats, decHits, decMisses int64) kbtim.IOStats {
	return kbtim.IOStats{
		SequentialReads: s.SequentialReads,
		RandomReads:     s.RandomReads,
		BytesRead:       s.BytesRead,
		CacheHits:       s.CacheHits,
		CacheMisses:     s.CacheMisses,
		DecodedHits:     decHits,
		DecodedMisses:   decMisses,
	}
}

// IndexedKeywords implements backend: the sorted union of every group's
// queryable topics.
func (f *fanout) IndexedKeywords() []int {
	seen := map[int]bool{}
	var out []int
	for _, g := range f.groups {
		var kws []int
		switch {
		case g.irr != nil:
			kws = g.irr.Keywords()
		case g.rr != nil:
			kws = g.rr.Keywords()
		}
		for _, w := range kws {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	if out == nil {
		return nil
	}
	sort.Ints(out)
	return out
}

// CacheStats implements backend. The router holds no segment cache — raw
// bytes never land here outside an artifact fetch, which the decoded tier
// fronts — so the segment section is zero.
func (f *fanout) CacheStats() (rr, irr diskio.CacheStats) { return }

// DecodedCacheStats implements backend: the router-side caches, summed
// across groups.
func (f *fanout) DecodedCacheStats() (rr, irr objcache.Stats) {
	for _, g := range f.groups {
		if g.rrDec != nil {
			rr = rr.Add(g.rrDec.Stats())
		}
		if g.irrDec != nil {
			irr = irr.Add(g.irrDec.Stats())
		}
	}
	return
}

// nodeHealthy returns one node's /healthz verdict, served from a
// healthTTL-bounded cache so frequent health polling does not amplify into
// a probe storm on the backends (a verdict may therefore be up to
// healthTTL stale).
func (f *fanout) nodeHealthy(ctx context.Context, n *fanoutNode) error {
	n.healthMu.Lock()
	if f.healthTTL > 0 && !n.healthAt.IsZero() && time.Since(n.healthAt) < f.healthTTL {
		err := n.healthErr
		n.healthMu.Unlock()
		return err
	}
	n.healthMu.Unlock()
	err := f.probeHealth(ctx, n)
	n.healthMu.Lock()
	n.healthAt = time.Now()
	n.healthErr = err
	n.healthMu.Unlock()
	return err
}

// probeHealth performs the actual /healthz round trip. The verdict is
// cached and shared across callers, so the probe detaches from the
// caller's context — one impatient client's cancellation must not get
// recorded (and served for healthTTL) as "backend down"; the probe's own
// -probe-timeout still bounds it.
func (f *fanout) probeHealth(ctx context.Context, n *fanoutNode) error {
	ctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), f.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s", resp.Status)
	}
	return nil
}

// CheckHealth implements healthChecker: the router is healthy while EVERY
// shard keeps at least one healthy replica — the degraded-but-servable
// contract. A single dead replica no longer turns the router away from load
// balancers (its shard is still answerable); a shard with no live replica
// does, because its keyword subset is unservable. Breaker-open replicas are
// skipped without a probe — the background loop owns their recovery.
func (f *fanout) CheckHealth(ctx context.Context) error {
	downShards := make([]string, len(f.groups))
	var wg sync.WaitGroup
	for gi, g := range f.groups {
		wg.Add(1)
		go func(gi int, g *shardGroup) {
			defer wg.Done()
			var reasons []string
			for _, n := range g.nodes {
				if !n.brk.allow() {
					reasons = append(reasons, fmt.Sprintf("%s (breaker %s)", n.url, n.brk.state()))
					continue
				}
				if err := f.nodeHealthy(ctx, n); err != nil {
					reasons = append(reasons, fmt.Sprintf("%s (%v)", n.url, err))
					continue
				}
				return // one healthy replica is enough
			}
			downShards[gi] = fmt.Sprintf("shard %d: %s", gi, strings.Join(reasons, ", "))
		}(gi, g)
	}
	wg.Wait()
	var down []string
	for _, s := range downShards {
		if s != "" {
			down = append(down, s)
		}
	}
	if len(down) > 0 {
		return fmt.Errorf("shards with no live replica: %s", strings.Join(down, "; "))
	}
	return nil
}

// RouterStats implements routerStatser: the fan-out and failover counters
// plus a live probe, breaker snapshot, and /stats scrape of every replica
// (in parallel; a node that does not answer in time appears unhealthy with
// null stats).
func (f *fanout) RouterStats(ctx context.Context) *routerStatsJSON {
	gstats := remote.GroupStats{}
	for _, g := range f.groups {
		s := g.grp.Stats()
		gstats.Retries += s.Retries
		gstats.Failovers += s.Failovers
	}
	wire := remote.WireStats{}
	for _, n := range f.nodes {
		wire = wire.Add(n.client.Stats())
	}
	out := &routerStatsJSON{
		Mode:            string(f.mode),
		ProxyTimeoutSec: f.proxyTimeout.Seconds(),
		HealthTTLSec:    f.healthTTL.Seconds(),
		ProbeTimeoutSec: f.probeTimeout.Seconds(),
		Proxied:         f.proxCnt.Load(),
		Scattered:       f.scatCnt.Load(),
		Retries:         f.proxyRetries.Load() + gstats.Retries,
		Failovers:       f.proxyFailovers.Load() + gstats.Failovers,
		FetchRequests:   wire.Fetches,
		BatchedUnits:    wire.BatchedUnits,
		Backends:        make([]routerBackendJSON, len(f.nodes)),
	}
	if wire.Fetches > 0 {
		out.UnitsPerRequest = float64(wire.BatchedUnits) / float64(wire.Fetches)
	}
	for _, n := range f.nodes {
		if !n.brk.allow() {
			out.Degraded++
		}
	}
	var wg sync.WaitGroup
	for i, n := range f.nodes {
		wg.Add(1)
		go func(i int, n *fanoutNode) {
			defer wg.Done()
			ws := n.client.Stats()
			b := routerBackendJSON{
				URL:             n.url,
				Shard:           n.shard,
				Healthy:         n.brk.allow() && f.nodeHealthy(ctx, n) == nil,
				Breaker:         n.brk.state(),
				BreakerTrips:    n.brk.tripCount(),
				Validated:       n.validated.Load(),
				Proxied:         n.proxied.Load(),
				ArtifactFetches: ws.Fetches,
				WireBytes:       ws.Bytes,
				BatchedUnits:    ws.BatchedUnits,
				WireBytesBatch:  ws.BatchBytes,
				WireBytesUnit:   ws.Bytes - ws.BatchBytes,
			}
			if raw := f.scrapeStats(ctx, n); raw != nil {
				b.Stats = raw
			}
			out.Backends[i] = b
		}(i, n)
	}
	wg.Wait()
	return out
}

// scrapeStats best-effort fetches one node's /stats for embedding.
func (f *fanout) scrapeStats(ctx context.Context, n *fanoutNode) json.RawMessage {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.url+"/stats", nil)
	if err != nil {
		return nil
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || !json.Valid(raw) {
		return nil
	}
	return json.RawMessage(raw)
}
