// Command kbtim-serve runs a KB-TIM query server over HTTP/JSON, or drives
// one with closed-loop load.
//
// Serve mode binds one or more Engines (with their cache tiers) to an
// address and answers concurrent queries through a bounded worker pool:
//
//	kbtim-serve -graph g.bin -profiles p.bin -irr ads.irr \
//	            -addr :8080 -workers 8 -cache-mb 64
//
// With -shards N > 1 the server runs N engine shards on one box. In hash
// (default) and range modes each shard serves a disjoint keyword subset
// from its own index file ("<path>.s<i>", written by kbtim-build -shards);
// queries whose topics co-locate are answered by that shard alone, and
// spanning queries are scatter-gathered with an exact merge — results are
// identical to a single-engine deployment. In replicate mode every shard
// opens the SAME full index file and whole queries round-robin across
// replicas. The global -cache-mb/-decoded-cache-mb budgets and the -workers
// pool are split evenly across shards:
//
//	kbtim-serve -graph g.bin -profiles p.bin -irr ads.irr \
//	            -shards 4 -shard-mode hash -workers 8 -decoded-cache-mb 256
//
// Router mode scales the same contract across PROCESSES: a fan-out router
// in front of N replica GROUPS of kbtim-serve nodes, every replica of group
// i serving shard i's index files (comma separates shards, | separates
// replicas of one shard). Queries whose topics co-locate on one group are
// proxied whole to a healthy replica of it; spanning queries run the exact
// scatter-gather merge locally with every keyword's artifact fetch going to
// its owning group over the versioned /internal/artifact protocol (results
// stay bit-identical to one engine — see DESIGN.md §6.2). Per-replica
// circuit breakers feed on both passive traffic outcomes and the /healthz
// probe loop; failed proxies and artifact fetches retry on a surviving
// replica, and a backend that is down at startup joins the rotation when it
// comes back (see DESIGN.md §6.3). The -decoded-cache-mb budget becomes the
// router-side artifact cache, split across shards:
//
//	kbtim-serve -router -backends 'h1:8080|h1b:8080,h2:8080|h2b:8080' \
//	            -shard-mode hash -addr :9090 -decoded-cache-mb 256
//
// Endpoints:
//
//	POST /query    {"topics":[2,7],"k":10,"strategy":"irr"} → seeds + stats;
//	               optional "deadline_ms" makes the query anytime (best
//	               certified prefix + partial=true at the deadline), and
//	               ?stream=1 switches the reply to NDJSON: one record per
//	               certified seed as it is found, then a terminal record
//	               with the batch payload and "done":true
//	GET  /keywords queryable topic IDs (union across shards)
//	GET  /stats    pool, latency, and cache counters (+ per-shard and
//	               per-backend router sections)
//	GET  /healthz  liveness (a router is healthy while every shard keeps
//	               >= 1 healthy replica)
//	GET  /internal/artifact  raw index artifacts for routers (serve mode)
//
// The server shuts down gracefully: SIGINT/SIGTERM stops accepting new
// connections and drains in-flight queries (up to -drain), then exits 0.
//
// Drive mode is a closed-loop load generator against a running server
// (each client keeps exactly one query outstanding):
//
//	kbtim-serve -drive -target http://localhost:8080 \
//	            -clients 16 -duration 30s -k 10
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"kbtim"
)

func main() {
	log.SetFlags(0)
	if err := run(os.Args[1:]); err != nil {
		log.Fatalf("kbtim-serve: %v", err)
	}
}

// run is main minus the exit: every failure returns an error (so tests can
// exercise the full lifecycle) and a clean shutdown returns nil.
func run(args []string) error {
	fs := flag.NewFlagSet("kbtim-serve", flag.ContinueOnError)
	var (
		// Serve mode.
		addr        = fs.String("addr", ":8080", "listen address (serve mode)")
		graphPath   = fs.String("graph", "graph.bin", "input graph path")
		profilePath = fs.String("profiles", "profiles.bin", "input profiles path")
		rrPath      = fs.String("rr", "", "RR index path (optional; with -shards > 1, shard i opens <path>.s<i>)")
		irrPath     = fs.String("irr", "", "IRR index path (optional; with -shards > 1, shard i opens <path>.s<i>)")
		workers     = fs.Int("workers", 0, "query worker pool size, split across shards (0 = NumCPU)")
		shards      = fs.Int("shards", 1, "engine shard count on this box")
		shardMode   = fs.String("shard-mode", "hash", "keyword→shard assignment: hash | range | replicate")
		cacheMB     = fs.Int("cache-mb", 32, "segment (byte) cache budget per index, MiB, split across shards (0 = no cache)")
		decodedMB   = fs.Int("decoded-cache-mb", 64, "decoded-object cache budget per index, MiB, split across shards (0 = no cache)")
		cacheShards = fs.Int("cache-shards", 0, "decoded-object cache shards per engine, rounded to a power of two (0 = near GOMAXPROCS)")
		queryPar    = fs.Int("query-parallelism", 2, "per-query artifact-load parallelism (<=1 = sequential)")
		drain       = fs.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight queries")
		routerMode  = fs.Bool("router", false, "run as a cross-node fan-out router over -backends (no local indexes)")
		backends    = fs.String("backends", "", "backend base URLs: comma-separated shards, |-separated replicas of a shard (\"h1|h1b,h2|h2b\"); group i owns shard i's keywords (router mode)")
		proxyTO     = fs.Duration("proxy-timeout", 30*time.Second, "per-call deadline for router→backend opens and proxied queries (router mode)")
		healthTTL   = fs.Duration("health-ttl", 2*time.Second, "how long a backend /healthz verdict is cached before re-probing (router mode)")
		probeTO     = fs.Duration("probe-timeout", 2*time.Second, "per-probe deadline for backend /healthz round trips (router mode)")
		maxIdle     = fs.Int("max-idle-conns", 0, "idle keep-alive connections kept per backend host (0 = default 32; router mode)")
		deadlineDef = fs.Duration("deadline", 0, "default anytime deadline per query: past it the reply is the best certified seed prefix, partial=true (0 = none; per-request deadline_ms overrides)")
		model       = fs.String("model", "IC", "propagation model: IC | LT")
		epsilon     = fs.Float64("epsilon", 0.3, "approximation ε")
		bigK        = fs.Int("K", 100, "system cap on Q.k")
		maxTheta    = fs.Int("max-theta", 0, "per-keyword sampling cap (0 = none)")
		seed        = fs.Uint64("seed", 1, "RNG seed")

		// Drive mode.
		driveMode = fs.Bool("drive", false, "run the closed-loop load driver instead of serving")
		target    = fs.String("target", "http://localhost:8080", "server base URL (drive mode)")
		clients   = fs.Int("clients", 8, "closed-loop client count (drive mode)")
		duration  = fs.Duration("duration", 10*time.Second, "load duration (drive mode)")
		k         = fs.Int("k", 10, "seed budget Q.k per generated query (drive mode)")
		maxLen    = fs.Int("max-keywords", 3, "max keywords per generated query (drive mode)")
		strategy  = fs.String("strategy", "irr", "strategy for generated queries: rr | irr (drive mode)")
		zipf      = fs.Float64("zipf", 0, "keyword popularity skew exponent, 0 = uniform (drive mode)")
		churn     = fs.Duration("churn", 0, "rotate the active keyword window this often, 0 = whole universe (drive mode)")
		stream    = fs.Bool("stream", false, "drive /query?stream=1 and report time-to-first-seed (drive mode)")
		dlMS      = fs.Int64("deadline-ms", 0, "anytime deadline_ms attached to every generated query, 0 = none (drive mode)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h printed usage; that is a clean exit, not a failure
		}
		return err
	}

	if *driveMode {
		rep, err := drive(driveConfig{
			Target:     *target,
			Clients:    *clients,
			Duration:   *duration,
			K:          *k,
			MaxLen:     *maxLen,
			Strategy:   *strategy,
			Seed:       *seed,
			Zipf:       *zipf,
			Churn:      *churn,
			Stream:     *stream,
			DeadlineMS: *dlMS,
		})
		if err != nil {
			return err
		}
		rep.print()
		return nil
	}

	pool := *workers
	if pool <= 0 {
		pool = runtime.NumCPU()
	}
	var be backend
	if *routerMode {
		groups := splitBackends(*backends)
		cfg := defaultFanoutConfig()
		cfg.mode = kbtim.ShardMode(*shardMode)
		cfg.decBudget = (int64(*decodedMB) << 20) / int64(max(len(groups), 1))
		cfg.cacheShards = *cacheShards
		cfg.queryPar = *queryPar
		cfg.proxyTimeout = *proxyTO
		cfg.healthTTL = *healthTTL
		cfg.probeTimeout = *probeTO
		cfg.maxIdleConns = *maxIdle
		fo, err := openFanout(groups, cfg)
		if err != nil {
			return err
		}
		defer fo.Close()
		be = fo
		nreps := 0
		for _, g := range groups {
			nreps += len(g)
		}
		fmt.Printf("kbtim-serve: routing on %s over %d shards / %d replicas [%s], %d workers, %d MiB decoded artifact cache split across shards\n",
			*addr, len(groups), nreps, *shardMode, pool, *decodedMB)
	} else {
		if *rrPath == "" && *irrPath == "" {
			return errors.New("serve mode needs -rr and/or -irr (or use -drive / -router)")
		}
		if *shards < 1 {
			return fmt.Errorf("-shards must be >= 1, got %d", *shards)
		}
		ds, err := kbtim.LoadDataset(*graphPath, *profilePath)
		if err != nil {
			return err
		}
		// The cache flags are GLOBAL budgets; each shard engine gets an even
		// split so adding shards redistributes memory instead of multiplying it.
		opts := kbtim.Options{
			Epsilon:            *epsilon,
			K:                  *bigK,
			Model:              kbtim.Model(*model),
			MaxThetaPerKeyword: *maxTheta,
			Seed:               *seed,
			CacheBytes:         (int64(*cacheMB) << 20) / int64(*shards),
			DecodedCacheBytes:  (int64(*decodedMB) << 20) / int64(*shards),
			CacheShards:        *cacheShards,
			QueryParallelism:   *queryPar,
		}
		perShard := pool / *shards
		if perShard < 1 {
			perShard = 1
		}
		var closeBackend func() error
		be, closeBackend, err = openBackend(ds, opts, *rrPath, *irrPath, *shards, kbtim.ShardMode(*shardMode), perShard)
		if err != nil {
			return err
		}
		defer closeBackend()
		fmt.Printf("kbtim-serve: listening on %s (%d shards [%s], %d workers [%d/shard], %d MiB byte cache + %d MiB decoded cache per index, split across shards)\n",
			*addr, *shards, *shardMode, pool, perShard, *cacheMB, *decodedMB)
	}

	srv := NewServer(be, pool)
	srv.SetDefaultDeadline(*deadlineDef)
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Slow or stalled clients must not pin connections forever; the
		// write timeout bounds queue wait + query time, so keep it well
		// above typical query latency.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	// Serve until a listener failure or a shutdown signal. SIGINT/SIGTERM
	// triggers a graceful drain: the listener closes immediately (new
	// connections are refused), in-flight queries get up to -drain to
	// finish and write their responses, and the intended close path
	// (http.ErrServerClosed) exits 0 instead of tripping the fatal path.
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case sig := <-sigCh:
		fmt.Printf("kbtim-serve: %v received, draining in-flight queries (up to %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		fmt.Println("kbtim-serve: drained, bye")
		return nil
	}
}
