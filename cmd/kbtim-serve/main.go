// Command kbtim-serve runs a KB-TIM query server over HTTP/JSON, or drives
// one with closed-loop load.
//
// Serve mode binds one Engine (with its segment cache) to an address and
// answers concurrent queries through a bounded worker pool:
//
//	kbtim-serve -graph g.bin -profiles p.bin -irr ads.irr \
//	            -addr :8080 -workers 8 -cache-mb 64
//
// Endpoints:
//
//	POST /query    {"topics":[2,7],"k":10,"strategy":"irr"} → seeds + stats
//	GET  /keywords queryable topic IDs
//	GET  /stats    pool, latency, and cache counters
//	GET  /healthz  liveness
//
// Drive mode is a closed-loop load generator against a running server
// (each client keeps exactly one query outstanding):
//
//	kbtim-serve -drive -target http://localhost:8080 \
//	            -clients 16 -duration 30s -k 10
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"time"

	"kbtim"
)

func main() {
	log.SetFlags(0)
	var (
		// Serve mode.
		addr        = flag.String("addr", ":8080", "listen address (serve mode)")
		graphPath   = flag.String("graph", "graph.bin", "input graph path")
		profilePath = flag.String("profiles", "profiles.bin", "input profiles path")
		rrPath      = flag.String("rr", "", "RR index path (optional)")
		irrPath     = flag.String("irr", "", "IRR index path (optional)")
		workers     = flag.Int("workers", 0, "query worker pool size (0 = NumCPU)")
		cacheMB     = flag.Int("cache-mb", 32, "segment (byte) cache budget per index, MiB (0 = no cache)")
		decodedMB   = flag.Int("decoded-cache-mb", 64, "decoded-object cache budget per index, MiB (0 = no cache)")
		cacheShards = flag.Int("cache-shards", 0, "decoded-object cache shards, rounded to a power of two (0 = near GOMAXPROCS)")
		queryPar    = flag.Int("query-parallelism", 2, "per-query artifact-load parallelism (<=1 = sequential)")
		model       = flag.String("model", "IC", "propagation model: IC | LT")
		epsilon     = flag.Float64("epsilon", 0.3, "approximation ε")
		bigK        = flag.Int("K", 100, "system cap on Q.k")
		maxTheta    = flag.Int("max-theta", 0, "per-keyword sampling cap (0 = none)")
		seed        = flag.Uint64("seed", 1, "RNG seed")

		// Drive mode.
		driveMode = flag.Bool("drive", false, "run the closed-loop load driver instead of serving")
		target    = flag.String("target", "http://localhost:8080", "server base URL (drive mode)")
		clients   = flag.Int("clients", 8, "closed-loop client count (drive mode)")
		duration  = flag.Duration("duration", 10*time.Second, "load duration (drive mode)")
		k         = flag.Int("k", 10, "seed budget Q.k per generated query (drive mode)")
		maxLen    = flag.Int("max-keywords", 3, "max keywords per generated query (drive mode)")
		strategy  = flag.String("strategy", "irr", "strategy for generated queries: rr | irr (drive mode)")
		zipf      = flag.Float64("zipf", 0, "keyword popularity skew exponent, 0 = uniform (drive mode)")
		churn     = flag.Duration("churn", 0, "rotate the active keyword window this often, 0 = whole universe (drive mode)")
	)
	flag.Parse()

	if *driveMode {
		rep, err := drive(driveConfig{
			Target:   *target,
			Clients:  *clients,
			Duration: *duration,
			K:        *k,
			MaxLen:   *maxLen,
			Strategy: *strategy,
			Seed:     *seed,
			Zipf:     *zipf,
			Churn:    *churn,
		})
		if err != nil {
			log.Fatalf("kbtim-serve: %v", err)
		}
		rep.print()
		return
	}

	if *rrPath == "" && *irrPath == "" {
		log.Fatal("kbtim-serve: serve mode needs -rr and/or -irr (or use -drive)")
	}
	ds, err := kbtim.LoadDataset(*graphPath, *profilePath)
	if err != nil {
		log.Fatalf("kbtim-serve: %v", err)
	}
	eng, err := kbtim.NewEngine(ds, kbtim.Options{
		Epsilon:            *epsilon,
		K:                  *bigK,
		Model:              kbtim.Model(*model),
		MaxThetaPerKeyword: *maxTheta,
		Seed:               *seed,
		CacheBytes:         int64(*cacheMB) << 20,
		DecodedCacheBytes:  int64(*decodedMB) << 20,
		CacheShards:        *cacheShards,
		QueryParallelism:   *queryPar,
	})
	if err != nil {
		log.Fatalf("kbtim-serve: %v", err)
	}
	defer eng.Close()
	if *rrPath != "" {
		if err := eng.OpenRRIndex(*rrPath); err != nil {
			log.Fatalf("kbtim-serve: %v", err)
		}
	}
	if *irrPath != "" {
		if err := eng.OpenIRRIndex(*irrPath); err != nil {
			log.Fatalf("kbtim-serve: %v", err)
		}
	}

	pool := *workers
	if pool <= 0 {
		pool = runtime.NumCPU()
	}
	srv := NewServer(eng, pool)
	fmt.Printf("kbtim-serve: listening on %s (%d workers, %d MiB byte cache + %d MiB decoded cache per index)\n",
		*addr, pool, *cacheMB, *decodedMB)
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Slow or stalled clients must not pin connections forever; the
		// write timeout bounds queue wait + query time, so keep it well
		// above typical query latency.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	if err := hs.ListenAndServe(); err != nil {
		log.Fatalf("kbtim-serve: %v", err)
	}
}
