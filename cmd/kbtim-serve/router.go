package main

import (
	"fmt"

	"kbtim"
)

// openBackend assembles the query backend for serve mode: one Engine when
// shards == 1, else a kbtim.Sharded deployment of per-shard engines (see
// kbtim.OpenShardedIndexes for the index-file convention shared with
// kbtim-build and the all-or-nothing open that keeps partial failures from
// leaking engines or file handles).
//
// opts carries PER-SHARD budgets — the caller splits the global cache flags
// before calling — and perShardWorkers bounds each shard's concurrent
// queries (<= 0 = unbounded, the global pool still applies). The returned
// closer shuts every engine down.
func openBackend(ds *kbtim.Dataset, opts kbtim.Options, rrPath, irrPath string, shards int, mode kbtim.ShardMode, perShardWorkers int) (backend, func() error, error) {
	if shards < 1 {
		return nil, nil, fmt.Errorf("-shards must be >= 1, got %d", shards)
	}
	if shards == 1 {
		eng, err := kbtim.NewEngine(ds, opts)
		if err != nil {
			return nil, nil, err
		}
		if rrPath != "" {
			if err := eng.OpenRRIndex(rrPath); err != nil {
				eng.Close()
				return nil, nil, err
			}
		}
		if irrPath != "" {
			if err := eng.OpenIRRIndex(irrPath); err != nil {
				eng.Close()
				return nil, nil, err
			}
		}
		return eng, eng.Close, nil
	}
	s, err := kbtim.OpenShardedIndexes(ds, opts, rrPath, irrPath, shards, mode, perShardWorkers)
	if err != nil {
		return nil, nil, err
	}
	return s, s.Close, nil
}
