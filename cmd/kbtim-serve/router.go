package main

import (
	"fmt"
	"os"

	"kbtim"
)

// openBackend assembles the query backend for serve mode: one Engine when
// shards == 1, else a kbtim.Sharded deployment of per-shard engines.
//
// Index-file convention (shared with kbtim-build): in hash/range mode shard
// i opens "<path>.s<i>" — the keyword-subset index kbtim-build -shards
// wrote — while replicate mode opens the one full index at <path> on every
// shard (each shard engine keeps its own file handle and cache tiers, so
// replicas do not contend on cache locks). Shards whose keyword partition
// is empty (possible when hashing a tiny universe) are left indexless and
// are never routed to.
//
// opts carries PER-SHARD budgets — the caller splits the global cache flags
// before calling — and perShardWorkers bounds each shard's concurrent
// queries (<= 0 = unbounded, the global pool still applies). The returned
// closer shuts every engine down.
func openBackend(ds *kbtim.Dataset, opts kbtim.Options, rrPath, irrPath string, shards int, mode kbtim.ShardMode, perShardWorkers int) (backend, func() error, error) {
	if shards < 1 {
		return nil, nil, fmt.Errorf("-shards must be >= 1, got %d", shards)
	}
	engines := make([]*kbtim.Engine, 0, shards)
	closeAll := func() error {
		var first error
		for _, e := range engines {
			if err := e.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	fail := func(err error) (backend, func() error, error) {
		closeAll()
		return nil, nil, err
	}
	for i := 0; i < shards; i++ {
		eng, err := kbtim.NewEngine(ds, opts)
		if err != nil {
			return fail(err)
		}
		engines = append(engines, eng)
	}
	if shards == 1 {
		eng := engines[0]
		if rrPath != "" {
			if err := eng.OpenRRIndex(rrPath); err != nil {
				return fail(err)
			}
		}
		if irrPath != "" {
			if err := eng.OpenIRRIndex(irrPath); err != nil {
				return fail(err)
			}
		}
		return eng, eng.Close, nil
	}

	topicsBy, err := engines[0].ShardTopics(shards, mode)
	if err != nil {
		return fail(err)
	}
	pathFor := func(path string, shard int) string {
		if mode == kbtim.ShardReplicate {
			return path
		}
		return kbtim.ShardIndexPath(path, shard)
	}
	for i, eng := range engines {
		if len(topicsBy[i]) == 0 {
			continue
		}
		if rrPath != "" {
			p := pathFor(rrPath, i)
			if err := eng.OpenRRIndex(p); err != nil {
				return fail(shardOpenErr(p, i, shards, mode, err))
			}
		}
		if irrPath != "" {
			p := pathFor(irrPath, i)
			if err := eng.OpenIRRIndex(p); err != nil {
				return fail(shardOpenErr(p, i, shards, mode, err))
			}
		}
	}
	s, err := kbtim.NewSharded(engines, mode, perShardWorkers)
	if err != nil {
		return fail(err)
	}
	return s, s.Close, nil
}

// shardOpenErr decorates a per-shard open failure with the likely fix when
// the file simply is not there.
func shardOpenErr(path string, shard, shards int, mode kbtim.ShardMode, err error) error {
	if os.IsNotExist(err) && mode != kbtim.ShardReplicate {
		return fmt.Errorf("shard %d index %s missing (build per-shard files with kbtim-build -shards %d -shard-mode %s): %w",
			shard, path, shards, mode, err)
	}
	return fmt.Errorf("shard %d: %w", shard, err)
}
