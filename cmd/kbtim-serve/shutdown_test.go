package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"kbtim"
)

// TestMain re-execs the test binary as a real kbtim-serve process when the
// child marker is set: the graceful-shutdown test needs actual signal
// delivery and a real exit code, which httptest cannot provide.
func TestMain(m *testing.M) {
	if os.Getenv("KBTIM_SERVE_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestGracefulShutdown is the lifecycle acceptance gate: SIGTERM while
// queries are in flight lets them complete and write their responses, new
// work is refused, and the process exits 0 — the intended-close path must
// not trip the fatal error handler.
func TestGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real server process")
	}
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.bin")
	profPath := filepath.Join(dir, "p.bin")
	irrPath := filepath.Join(dir, "ads.irr")
	ds, err := kbtim.GenerateDataset(kbtim.DatasetSpec{
		Kind: kbtim.TwitterLike, NumUsers: 300, AvgDegree: 6,
		NumTopics: 6, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := kbtim.SaveDataset(ds, graphPath, profPath); err != nil {
		t.Fatal(err)
	}
	builder, err := kbtim.NewEngine(ds, kbtim.Options{
		Epsilon: 0.5, K: 10, MaxThetaPerKeyword: 4000, PartitionSize: 5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := builder.BuildIRRIndex(irrPath); err != nil {
		t.Fatal(err)
	}
	builder.Close()

	// Reserve a port, then hand it to the child (a small window exists
	// between Close and the child's bind; acceptable for a test).
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	var out bytes.Buffer
	cmd := exec.Command(os.Args[0],
		"-graph", graphPath, "-profiles", profPath, "-irr", irrPath,
		"-addr", addr, "-workers", "2", "-drain", "20s",
		"-epsilon", "0.5", "-K", "10", "-seed", "11")
	cmd.Stdout = &out
	cmd.Stderr = &out
	cmd.Env = append(os.Environ(), "KBTIM_SERVE_CHILD=1")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() // no-op if it exited cleanly

	base := "http://" + addr
	client := &http.Client{Timeout: 10 * time.Second}
	ready := false
	for i := 0; i < 200; i++ {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			ready = resp.StatusCode == http.StatusOK
			if ready {
				break
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !ready {
		t.Fatalf("server never became healthy; output:\n%s", out.String())
	}

	// A client streams queries back to back while the signal lands. Every
	// response it manages to receive must be a complete, correct 200; a
	// transport error just means the stream outlived the listener.
	type streamResult struct {
		completed int
		badStatus string
	}
	resCh := make(chan streamResult, 1)
	go func() {
		var sr streamResult
		body, _ := json.Marshal(queryRequest{Topics: []int{0, 1, 2, 3, 4, 5}, K: 10, Strategy: "irr"})
		for {
			resp, err := client.Post(base+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				break // listener gone: drain finished behind us
			}
			var qr queryResponse
			decodeErr := json.NewDecoder(resp.Body).Decode(&qr)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || decodeErr != nil || len(qr.Seeds) != 10 {
				sr.badStatus = fmt.Sprintf("status %s decode %v seeds %d", resp.Status, decodeErr, len(qr.Seeds))
				break
			}
			sr.completed++
		}
		resCh <- sr
	}()

	// Let the stream get in flight, then stop the server.
	time.Sleep(150 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitCh := make(chan error, 1)
	go func() { waitCh <- cmd.Wait() }()
	select {
	case err := <-waitCh:
		if err != nil {
			t.Fatalf("server exited non-zero after SIGTERM: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("server did not exit within 30s of SIGTERM; output:\n%s", out.String())
	}
	if code := cmd.ProcessState.ExitCode(); code != 0 {
		t.Fatalf("exit code %d, want 0; output:\n%s", code, out.String())
	}

	sr := <-resCh
	if sr.badStatus != "" {
		t.Fatalf("a drained query got a broken response: %s\noutput:\n%s", sr.badStatus, out.String())
	}
	if sr.completed == 0 {
		t.Fatalf("no query completed before shutdown; output:\n%s", out.String())
	}

	// The server really stopped listening.
	if resp, err := client.Get(base + "/healthz"); err == nil {
		resp.Body.Close()
		t.Fatal("server still answering after clean exit")
	}
	if !strings.Contains(out.String(), "draining") {
		t.Fatalf("shutdown path not taken; output:\n%s", out.String())
	}
}
