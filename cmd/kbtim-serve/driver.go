package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kbtim/internal/gen"
	"kbtim/internal/rng"
)

// driveConfig parameterizes one closed-loop load run: each of Clients
// workers keeps exactly one query outstanding at all times (issue, wait,
// issue again), the classic closed-loop model, so the measured rate is the
// server's sustainable throughput at that concurrency.
type driveConfig struct {
	Target   string // base URL of a running kbtim-serve
	Clients  int
	Duration time.Duration
	K        int
	MaxLen   int // keywords per query drawn uniformly from [1, MaxLen]
	Strategy string
	Seed     uint64
	// Zipf skews keyword popularity: topic ranks are drawn with probability
	// ∝ 1/rank^Zipf (0 = uniform). Skewed traffic is what makes the decoded
	// cache's singleflight and eviction paths actually fire.
	Zipf float64
	// Churn rotates the ACTIVE keyword window (half the universe) by a half
	// window every interval, so the hot set drifts and the server's caches
	// must evict and re-admit (0 = the whole universe stays active).
	Churn time.Duration
	// Stream drives /query?stream=1 instead of batch /query: clients read
	// the NDJSON seed records as they arrive, record time-to-first-seed, and
	// check the streamed sequence against the terminal batch record.
	Stream bool
	// DeadlineMS > 0 attaches an anytime deadline to every generated query.
	DeadlineMS int64
}

// topicPicker draws query keywords from the (possibly rotating) active
// window of the universe, uniformly or Zipf-skewed by rank.
type topicPicker struct {
	universe []int
	window   int
	alias    *rng.Alias   // rank distribution over the window; nil = uniform
	offset   atomic.Int64 // window start, advanced by the churn ticker
	stop     chan struct{}
}

// newTopicPicker builds the picker and, when churn is set, starts the
// rotation ticker (Close stops it).
func newTopicPicker(universe []int, zipf float64, churn time.Duration) (*topicPicker, error) {
	p := &topicPicker{universe: universe, window: len(universe), stop: make(chan struct{})}
	if churn > 0 && len(universe) > 1 {
		p.window = (len(universe) + 1) / 2
		go func() {
			tick := time.NewTicker(churn)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					// Advance by half a window: the hot set drifts with
					// overlap instead of teleporting.
					p.offset.Add(int64(p.window/2 + 1))
				case <-p.stop:
					return
				}
			}
		}()
	}
	if zipf > 0 {
		alias, err := rng.NewAlias(gen.TopicPopularity(p.window, zipf))
		if err != nil {
			return nil, err
		}
		p.alias = alias
	}
	return p, nil
}

// pick draws one topic.
func (p *topicPicker) pick(r *rng.Source) int {
	var rank int
	if p.alias != nil {
		rank = p.alias.Sample(r)
	} else {
		rank = r.Intn(p.window)
	}
	i := (int(p.offset.Load()) + rank) % len(p.universe)
	return p.universe[i]
}

// Close stops the churn ticker.
func (p *topicPicker) Close() { close(p.stop) }

// driveReport aggregates one load run.
type driveReport struct {
	Clients     int
	Aborted     int // clients that gave up after persistent errors
	Queries     int
	Errors      int
	Elapsed     time.Duration
	QPS         float64
	MeanMS      float64
	P50MS       float64
	P95MS       float64
	CacheHits   int64
	DecodedHits int64
	// Streaming-run extras: time from request start to the first certified
	// seed on the wire, and how many replies were deadline-cut prefixes.
	Streamed       bool
	FirstSeedP50MS float64
	FirstSeedP99MS float64
	Partials       int
}

// fetchKeywords asks the target server for its queryable topic universe.
func fetchKeywords(client *http.Client, target string) ([]int, error) {
	resp, err := client.Get(target + "/keywords")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("keywords: %s: %s", resp.Status, body)
	}
	var payload struct {
		Topics []int `json:"topics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, err
	}
	if len(payload.Topics) == 0 {
		return nil, fmt.Errorf("keywords: server reports an empty topic universe")
	}
	return payload.Topics, nil
}

// pickTopics draws 1..maxLen distinct topics through the picker.
func pickTopics(r *rng.Source, p *topicPicker, maxLen int) []int {
	if maxLen > p.window {
		maxLen = p.window
	}
	if maxLen < 1 {
		maxLen = 1
	}
	n := 1 + r.Intn(maxLen)
	seen := make(map[int]bool, n)
	out := make([]int, 0, n)
	for len(out) < n {
		t := p.pick(r)
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// streamRecord is the union of the NDJSON line shapes a /query?stream=1
// reply carries: seed records ({"seed","marginal","spread_lb"}) and the
// terminal record (the batch queryResponse plus "done":true, or
// {"done":true,"error":...} after a mid-stream failure). Seed is a pointer
// so seed 0 is distinguishable from a terminal line.
type streamRecord struct {
	Seed     *uint32  `json:"seed"`
	Marginal int      `json:"marginal"`
	SpreadLB float64  `json:"spread_lb"`
	Done     bool     `json:"done"`
	Error    string   `json:"error"`
	Seeds    []uint32 `json:"seeds"`
	Partial  bool     `json:"partial"`
	IO       ioJSON   `json:"io"`
}

// streamQuery issues one /query?stream=1 request and consumes the NDJSON
// reply as it arrives. It returns the time to the first seed record
// (milliseconds; -1 if none streamed), the terminal record, and an error if
// the stream is malformed — including a streamed seed count that disagrees
// with the terminal record's seed list, which would mean the incremental and
// batch views of one query diverged.
func streamQuery(client *http.Client, target string, body []byte, t0 time.Time) (float64, *streamRecord, error) {
	resp, err := client.Post(target+"/query?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return -1, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return -1, nil, fmt.Errorf("stream query: %s: %s", resp.Status, msg)
	}
	dec := json.NewDecoder(resp.Body)
	firstSeedMS := -1.0
	streamed := 0
	for {
		var rec streamRecord
		if err := dec.Decode(&rec); err != nil {
			return firstSeedMS, nil, fmt.Errorf("stream query: truncated reply: %w", err)
		}
		if rec.Done {
			if rec.Error != "" {
				return firstSeedMS, nil, fmt.Errorf("stream query: %s", rec.Error)
			}
			if streamed != len(rec.Seeds) {
				return firstSeedMS, nil, fmt.Errorf("stream query: %d seeds streamed but terminal record lists %d", streamed, len(rec.Seeds))
			}
			return firstSeedMS, &rec, nil
		}
		if rec.Seed == nil {
			return firstSeedMS, nil, fmt.Errorf("stream query: record is neither seed nor terminal")
		}
		if firstSeedMS < 0 {
			firstSeedMS = time.Since(t0).Seconds() * 1000
		}
		streamed++
	}
}

// validate rejects a misconfigured load run before any client starts: a
// bad -strategy or -clients would otherwise surface as one rejected request
// per loop iteration for the whole duration.
func (cfg *driveConfig) validate() error {
	if cfg.Strategy != "rr" && cfg.Strategy != "irr" {
		return fmt.Errorf("drive: unknown -strategy %q (want rr or irr)", cfg.Strategy)
	}
	if cfg.Clients < 1 {
		return fmt.Errorf("drive: -clients must be >= 1, got %d", cfg.Clients)
	}
	if cfg.K < 1 {
		return fmt.Errorf("drive: -k must be >= 1, got %d", cfg.K)
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("drive: -duration must be positive, got %v", cfg.Duration)
	}
	return nil
}

// drive runs the closed loop and aggregates latencies across clients.
func drive(cfg driveConfig) (*driveReport, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: 60 * time.Second}
	universe, err := fetchKeywords(client, cfg.Target)
	if err != nil {
		return nil, err
	}
	sort.Ints(universe) // rank order must be stable for the Zipf skew
	picker, err := newTopicPicker(universe, cfg.Zipf, cfg.Churn)
	if err != nil {
		return nil, err
	}
	defer picker.Close()

	type clientResult struct {
		latencies  []float64 // milliseconds
		firstSeeds []float64 // milliseconds to the first streamed seed
		partials   int
		errors     int
		hits       int64
		decHits    int64
		aborted    bool
	}
	results := make([]clientResult, cfg.Clients)
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(cfg.Seed + uint64(c)*7919)
			// Failed requests return in microseconds; without a backoff a
			// dead or rejecting server would make the loop busy-spin for
			// the whole duration. Pause briefly per error and give up on
			// the client once the server looks persistently broken.
			const maxConsecutiveErrors = 20
			consecutive := 0
			fail := func() bool {
				results[c].errors++
				consecutive++
				if consecutive >= maxConsecutiveErrors {
					results[c].aborted = true
					return true
				}
				time.Sleep(50 * time.Millisecond)
				return false
			}
			for time.Now().Before(deadline) {
				req := queryRequest{
					Topics:     pickTopics(r, picker, cfg.MaxLen),
					K:          cfg.K,
					Strategy:   cfg.Strategy,
					DeadlineMS: cfg.DeadlineMS,
				}
				body, _ := json.Marshal(req)
				t0 := time.Now()
				if cfg.Stream {
					firstMS, done, err := streamQuery(client, cfg.Target, body, t0)
					if err != nil {
						if fail() {
							return
						}
						continue
					}
					consecutive = 0
					results[c].latencies = append(results[c].latencies, time.Since(t0).Seconds()*1000)
					if firstMS >= 0 {
						results[c].firstSeeds = append(results[c].firstSeeds, firstMS)
					}
					if done.Partial {
						results[c].partials++
					}
					results[c].hits += done.IO.CacheHits
					results[c].decHits += done.IO.DecodedHits
					continue
				}
				resp, err := client.Post(cfg.Target+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					if fail() {
						return
					}
					continue
				}
				var qr queryResponse
				decodeErr := json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decodeErr != nil {
					if fail() {
						return
					}
					continue
				}
				consecutive = 0
				results[c].latencies = append(results[c].latencies, time.Since(t0).Seconds()*1000)
				if qr.Partial {
					results[c].partials++
				}
				results[c].hits += qr.IO.CacheHits
				results[c].decHits += qr.IO.DecodedHits
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &driveReport{Elapsed: elapsed, Clients: cfg.Clients, Streamed: cfg.Stream}
	var all, firsts []float64
	for _, r := range results {
		all = append(all, r.latencies...)
		firsts = append(firsts, r.firstSeeds...)
		rep.Errors += r.errors
		rep.CacheHits += r.hits
		rep.DecodedHits += r.decHits
		rep.Partials += r.partials
		if r.aborted {
			rep.Aborted++
		}
	}
	if len(firsts) > 0 {
		sort.Float64s(firsts)
		rep.FirstSeedP50MS = percentile(firsts, 0.50)
		rep.FirstSeedP99MS = percentile(firsts, 0.99)
	}
	rep.Queries = len(all)
	if rep.Queries == 0 {
		return rep, nil
	}
	rep.QPS = float64(rep.Queries) / elapsed.Seconds()
	sort.Float64s(all)
	var sum float64
	for _, v := range all {
		sum += v
	}
	rep.MeanMS = sum / float64(len(all))
	rep.P50MS = percentile(all, 0.50)
	rep.P95MS = percentile(all, 0.95)
	return rep, nil
}

// percentile reads the p-quantile from ascending-sorted ms latencies.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func (r *driveReport) print() {
	if r.Aborted > 0 {
		fmt.Printf("WARNING:    %d of %d clients gave up after persistent errors; rates below reflect the survivors\n",
			r.Aborted, r.Clients)
	}
	fmt.Printf("queries:    %d (%d errors)\n", r.Queries, r.Errors)
	fmt.Printf("elapsed:    %v\n", r.Elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.1f queries/sec\n", r.QPS)
	fmt.Printf("latency:    mean %.2f ms, p50 %.2f ms, p95 %.2f ms\n", r.MeanMS, r.P50MS, r.P95MS)
	if r.Streamed {
		fmt.Printf("first seed: p50 %.2f ms, p99 %.2f ms\n", r.FirstSeedP50MS, r.FirstSeedP99MS)
		fmt.Printf("partial:    %d deadline-cut replies\n", r.Partials)
	}
	fmt.Printf("cache hits: %d byte-level, %d decoded-object (server side)\n", r.CacheHits, r.DecodedHits)
}
