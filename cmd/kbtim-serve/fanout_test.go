package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"kbtim"
)

// routerCluster is the full cross-node topology in-process: two backend
// Servers, each a single engine over one hash shard's RR+IRR files (the
// exact processes the CI smoke runs as real binaries), a fanout router
// over their URLs, and — for the parity matrix — a single-engine and an
// in-process Sharded deployment over the same index payloads, every one
// behind the same HTTP handler stack.
type routerCluster struct {
	single  *httptest.Server
	sharded *httptest.Server
	router  *httptest.Server
	nodes   []*httptest.Server
	fo      *fanout
}

func startRouterCluster(t *testing.T) *routerCluster {
	t.Helper()
	const shards = 2
	ds, opts, rrPath, irrPath := shardedFixture(t, shards)
	c := &routerCluster{}

	be1, close1, err := openBackend(ds, opts, rrPath, irrPath, 1, kbtim.ShardHash, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { close1() })
	c.single = httptest.NewServer(NewServer(be1, 4).Handler())
	t.Cleanup(c.single.Close)

	beN, closeN, err := openBackend(ds, opts, rrPath, irrPath, shards, kbtim.ShardHash, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { closeN() })
	c.sharded = httptest.NewServer(NewServer(beN, 4).Handler())
	t.Cleanup(c.sharded.Close)

	var urls []string
	for i := 0; i < shards; i++ {
		be, closeBE, err := openBackend(ds, opts,
			kbtim.ShardIndexPath(rrPath, i), kbtim.ShardIndexPath(irrPath, i), 1, kbtim.ShardHash, 0)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { closeBE() })
		node := httptest.NewServer(NewServer(be, 4).Handler())
		t.Cleanup(node.Close)
		c.nodes = append(c.nodes, node)
		urls = append(urls, node.URL)
	}
	groups := make([][]string, len(urls))
	for i, u := range urls {
		groups[i] = []string{u}
	}
	cfg := defaultFanoutConfig()
	cfg.mode = kbtim.ShardHash
	cfg.decBudget = 1 << 20
	cfg.queryPar = 2
	cfg.proxyTimeout = 30 * time.Second
	cfg.noProbeLoop = true // tests drive reprobeOnce by hand where they need recovery
	c.fo, err = openFanout(groups, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.fo.Close() })
	c.router = httptest.NewServer(NewServer(c.fo, 4).Handler())
	t.Cleanup(c.router.Close)
	return c
}

// TestRouterThreeWayParity is the tentpole acceptance test: for both
// strategies and every query shape (co-located fast path and spanning
// scatter), a 2-node HTTP router returns byte-identical seeds, marginals,
// and spreads to BOTH a single engine and an in-process Sharded deployment
// over the same index payloads.
func TestRouterThreeWayParity(t *testing.T) {
	c := startRouterCluster(t)
	queries := []queryRequest{
		{Topics: []int{0}, K: 3},                      // co-located: proxied whole
		{Topics: []int{3}, K: 2},                      // co-located on the other node
		{Topics: []int{0, 1}, K: 3},                   // spans under hash
		{Topics: []int{2, 5, 7}, K: 4},                // spans
		{Topics: []int{0, 1, 2, 3, 4, 5, 6, 7}, K: 5}, // whole universe
	}
	for _, strategy := range []string{"rr", "irr"} {
		for _, q := range queries {
			q.Strategy = strategy
			one, resp := postQuery(t, c.single, q)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("single %s %v: %v", strategy, q.Topics, resp.Status)
			}
			box, resp := postQuery(t, c.sharded, q)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("sharded %s %v: %v", strategy, q.Topics, resp.Status)
			}
			net, resp := postQuery(t, c.router, q)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("router %s %v: %v", strategy, q.Topics, resp.Status)
			}
			for _, pair := range []struct {
				name string
				got  *queryResponse
			}{{"sharded", box}, {"router", net}} {
				if !reflect.DeepEqual(pair.got.Seeds, one.Seeds) ||
					!reflect.DeepEqual(pair.got.Marginals, one.Marginals) ||
					pair.got.EstSpread != one.EstSpread || pair.got.NumRRSets != one.NumRRSets {
					t.Fatalf("%s %s %v: (%v, %v, %v, %d) != single (%v, %v, %v, %d)",
						pair.name, strategy, q.Topics,
						pair.got.Seeds, pair.got.Marginals, pair.got.EstSpread, pair.got.NumRRSets,
						one.Seeds, one.Marginals, one.EstSpread, one.NumRRSets)
				}
			}

			// Streaming pass over the same three topologies: the emitted
			// seed records, concatenated, must be byte-identical to the
			// single-engine batch answer, and a deadline comfortably larger
			// than the query needs must be invisible (partial=false, same
			// payload) — including across the router's proxy wire, which
			// forwards the remaining budget as deadline_ms.
			q.DeadlineMS = 60_000
			for _, topo := range []struct {
				name string
				ts   *httptest.Server
			}{{"single", c.single}, {"sharded", c.sharded}, {"router", c.router}} {
				recs, final := postQueryStream(t, topo.ts, q)
				var seeds []uint32
				var marginals []int
				for _, r := range recs {
					seeds = append(seeds, r.Seed)
					marginals = append(marginals, r.Marginal)
				}
				if !reflect.DeepEqual(seeds, one.Seeds) || !reflect.DeepEqual(marginals, one.Marginals) {
					t.Fatalf("%s stream %s %v: streamed (%v,%v) != single batch (%v,%v)",
						topo.name, strategy, q.Topics, seeds, marginals, one.Seeds, one.Marginals)
				}
				if final.Partial {
					t.Fatalf("%s stream %s %v: generous deadline marked the reply partial", topo.name, strategy, q.Topics)
				}
				if !reflect.DeepEqual(final.Seeds, one.Seeds) || final.EstSpread != one.EstSpread {
					t.Fatalf("%s stream %s %v: terminal record diverged from single batch", topo.name, strategy, q.Topics)
				}
			}
			q.DeadlineMS = 0
		}
	}
	// The matrix above must have exercised BOTH router paths, on both nodes.
	if c.fo.proxCnt.Load() == 0 || c.fo.scatCnt.Load() == 0 {
		t.Fatalf("parity matrix did not cover both paths: proxied=%d scattered=%d",
			c.fo.proxCnt.Load(), c.fo.scatCnt.Load())
	}
	for i, n := range c.fo.nodes {
		if n.proxied.Load()+n.client.Stats().Fetches == 0 {
			t.Fatalf("backend %d never participated in a query", i)
		}
	}
	// The scattered queries must have traveled BATCHED: the /stats wire
	// counters show more units delivered inside batch replies than wire
	// round trips issued in total — the whole point of the v2 protocol.
	resp, err := http.Get(c.router.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Router == nil {
		t.Fatal("/stats has no router section")
	}
	if stats.Router.BatchedUnits <= stats.Router.FetchRequests {
		t.Fatalf("batching did not amortize the wire: %d batched units over %d fetch requests",
			stats.Router.BatchedUnits, stats.Router.FetchRequests)
	}
	if stats.Router.UnitsPerRequest <= 1 {
		t.Fatalf("units_per_request = %v, want > 1", stats.Router.UnitsPerRequest)
	}
}

// TestRouterStatsAndHealth: the router's /stats carries the per-backend
// fan-out section (with the backends' own stats embedded) and /healthz
// turns 503 the moment a backend goes away.
func TestRouterStatsAndHealth(t *testing.T) {
	c := startRouterCluster(t)
	if _, resp := postQuery(t, c.router, queryRequest{Topics: []int{0, 1, 2, 3}, K: 3, Strategy: "irr"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup query: %v", resp.Status)
	}

	resp, err := http.Get(c.router.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Router == nil {
		t.Fatal("/stats has no router section")
	}
	if got := len(stats.Router.Backends); got != 2 {
		t.Fatalf("router section lists %d backends, want 2", got)
	}
	for i, b := range stats.Router.Backends {
		if !b.Healthy {
			t.Fatalf("backend %d (%s) reported unhealthy", i, b.URL)
		}
		if b.Breaker != breakerClosed {
			t.Fatalf("backend %d breaker = %q, want closed", i, b.Breaker)
		}
		if !b.Validated {
			t.Fatalf("backend %d not validated despite being up at open", i)
		}
		if b.Shard != i {
			t.Fatalf("backend %d reports shard %d", i, b.Shard)
		}
		if b.Stats == nil {
			t.Fatalf("backend %d stats not embedded", i)
		}
		if b.WireBytesBatch+b.WireBytesUnit != b.WireBytes {
			t.Fatalf("backend %d wire bytes do not split: batch %d + unit %d != total %d",
				i, b.WireBytesBatch, b.WireBytesUnit, b.WireBytes)
		}
	}
	if stats.Router.FetchRequests == 0 || stats.Router.BatchedUnits == 0 {
		t.Fatalf("spanning warmup moved no batched artifacts: fetch_requests=%d batched_units=%d",
			stats.Router.FetchRequests, stats.Router.BatchedUnits)
	}
	if stats.Router.Proxied+stats.Router.Scattered == 0 {
		t.Fatal("router counted no traffic")
	}
	if stats.Router.Retries != 0 || stats.Router.Failovers != 0 || stats.Router.Degraded != 0 {
		t.Fatalf("healthy cluster reports retries=%d failovers=%d degraded=%d, want zeros",
			stats.Router.Retries, stats.Router.Failovers, stats.Router.Degraded)
	}
	if got := stats.Router.ProxyTimeoutSec; got != 30 {
		t.Fatalf("proxy_timeout_sec = %v, want the configured 30", got)
	}
	if stats.Router.HealthTTLSec != 2 || stats.Router.ProbeTimeoutSec != 2 {
		t.Fatalf("health_ttl_sec=%v probe_timeout_sec=%v, want the configured 2s defaults",
			stats.Router.HealthTTLSec, stats.Router.ProbeTimeoutSec)
	}

	if resp, err = http.Get(c.router.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with live backends: %v %v", resp, err)
	}
	resp.Body.Close()
	if err := c.fo.CheckHealth(context.Background()); err != nil {
		t.Fatalf("CheckHealth with live backends: %v", err)
	}

	// Take one backend down: the router must stop reporting healthy.
	// (Disable the probe TTL cache so the verdict is live, not the cached
	// "healthy" from the checks above.)
	c.fo.healthTTL = 0
	c.nodes[1].Close()
	if resp, err = http.Get(c.router.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with a dead backend: got %v, want 503", resp.Status)
	}
	resp.Body.Close()
}
