package main

import (
	"math/rand/v2"
	"sync"
	"time"
)

// breakerConfig tunes the per-backend circuit breakers.
type breakerConfig struct {
	// failures is the consecutive-failure count that opens the breaker.
	failures int
	// minBackoff is the delay before the first half-open re-probe of an
	// open breaker; each failed probe doubles it up to maxBackoff. A jitter
	// of up to half the current backoff is added so a fleet of routers does
	// not re-probe a recovering backend in lockstep.
	minBackoff time.Duration
	maxBackoff time.Duration
}

func defaultBreakerConfig() breakerConfig {
	return breakerConfig{failures: 3, minBackoff: 250 * time.Millisecond, maxBackoff: 5 * time.Second}
}

// Breaker states, in the classic circuit-breaker vocabulary: closed =
// traffic flows, open = recent failures, skip this backend, half-open = a
// re-probe is deciding whether to close again.
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

// breaker is one backend's health gate, driven from both directions: PASSIVE
// observation of real traffic (every proxied query and artifact fetch
// reports its outcome; a run of consecutive failures opens the breaker) and
// the ACTIVE background re-probe loop (an open breaker is re-probed with
// exponential backoff + jitter and closes on a successful probe). While
// open, the routing layers skip the backend — queries fail over to a
// surviving replica instead of paying a timeout per request.
type breaker struct {
	mu        sync.Mutex
	consec    int  // consecutive failures since the last success
	open      bool // breaker tripped: skip this backend
	probing   bool // a half-open re-probe is in flight
	backoff   time.Duration
	nextProbe time.Time // earliest time the next re-probe may start
	trips     int64     // times the breaker opened (cumulative, for /stats)
}

// allow reports whether traffic should be routed to this backend.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.open
}

// state returns the /stats spelling of the breaker's position.
func (b *breaker) state() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.probing:
		return breakerHalfOpen
	case b.open:
		return breakerOpen
	default:
		return breakerClosed
	}
}

// tripCount returns how many times the breaker has opened.
func (b *breaker) tripCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// success records a successful round trip. mayClose=true closes an open
// breaker on the spot (real traffic succeeding is at least as good a signal
// as a probe); the router passes false for a replica that still owes a
// directory validation, whose re-admission must go through the probe loop.
func (b *breaker) success(mayClose bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec = 0
	if mayClose {
		b.open = false
		b.probing = false
	}
}

// failure records a failed round trip; cfg.failures consecutive ones open
// the breaker. Returns true when this call tripped it.
func (b *breaker) failure(now time.Time, cfg breakerConfig) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec++
	if b.open || b.consec < cfg.failures {
		return false
	}
	b.trip(now, cfg)
	return true
}

// forceOpen opens the breaker immediately — the "down at startup" path,
// where waiting for cfg.failures observed errors would route real queries at
// a backend already known to be unreachable.
func (b *breaker) forceOpen(now time.Time, cfg breakerConfig) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		b.trip(now, cfg)
	}
}

// trip transitions to open. Caller holds b.mu.
func (b *breaker) trip(now time.Time, cfg breakerConfig) {
	b.open = true
	b.probing = false
	b.trips++
	b.backoff = cfg.minBackoff
	b.nextProbe = now.Add(jitter(cfg.minBackoff))
}

// beginProbe test-and-sets the half-open state: it returns true when the
// breaker is open, due for a re-probe, and no probe is already in flight —
// the caller then owns running exactly one probe and reporting it through
// probeResult.
func (b *breaker) beginProbe(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open || b.probing || now.Before(b.nextProbe) {
		return false
	}
	b.probing = true
	return true
}

// probeResult resolves a beginProbe: success closes the breaker, failure
// doubles the backoff (capped) and schedules the next probe with jitter.
func (b *breaker) probeResult(ok bool, now time.Time, cfg breakerConfig) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if ok {
		b.open = false
		b.consec = 0
		return
	}
	b.backoff *= 2
	if b.backoff > cfg.maxBackoff {
		b.backoff = cfg.maxBackoff
	}
	b.nextProbe = now.Add(jitter(b.backoff))
}

// jitter spreads d into [d, 1.5d) so concurrent routers desynchronize.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d + rand.N(d/2+1)
}
