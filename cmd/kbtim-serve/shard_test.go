package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"kbtim"
)

// shardedFixture writes a dataset plus single-engine and 2-shard (hash)
// index files to disk — the exact layout kbtim-build -shards produces —
// and returns the dataset, per-shard options, and the paths.
func shardedFixture(t *testing.T, shards int) (ds *kbtim.Dataset, opts kbtim.Options, rrPath, irrPath string) {
	t.Helper()
	ds, err := kbtim.GenerateDataset(kbtim.DatasetSpec{
		Kind: kbtim.TwitterLike, NumUsers: 300, AvgDegree: 6,
		NumTopics: 8, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts = kbtim.Options{
		Epsilon:            0.5,
		K:                  10,
		MaxThetaPerKeyword: 4000,
		PartitionSize:      5,
		Seed:               11,
		DecodedCacheBytes:  4 << 20,
	}
	builder, err := kbtim.NewEngine(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer builder.Close()
	dir := t.TempDir()
	rrPath = filepath.Join(dir, "ads.rr")
	irrPath = filepath.Join(dir, "ads.irr")
	if _, err := builder.BuildRRIndex(rrPath); err != nil {
		t.Fatal(err)
	}
	if _, err := builder.BuildIRRIndex(irrPath); err != nil {
		t.Fatal(err)
	}
	for kind, path := range map[string]string{"rr": rrPath, "irr": irrPath} {
		if _, err := builder.BuildShardIndexes(kind, shards, kbtim.ShardHash,
			func(i int) string { return kbtim.ShardIndexPath(path, i) }); err != nil {
			t.Fatal(err)
		}
	}
	return ds, opts, rrPath, irrPath
}

// TestShardedServerParity runs the full serving path against a 2-shard hash
// backend and a single-engine backend over the same dataset: every query
// (single-shard and spanning) must return byte-identical seeds and spreads,
// /keywords must expose the same universe, and /stats must carry the
// per-shard breakdown whose counters the aggregate view sums.
func TestShardedServerParity(t *testing.T) {
	const shards = 2
	ds, opts, rrPath, irrPath := shardedFixture(t, shards)

	single, closeSingle, err := openBackend(ds, opts, rrPath, irrPath, 1, kbtim.ShardHash, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer closeSingle()
	sharded, closeSharded, err := openBackend(ds, opts, rrPath, irrPath, shards, kbtim.ShardHash, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer closeSharded()

	one := httptest.NewServer(NewServer(single, 4).Handler())
	defer one.Close()
	many := httptest.NewServer(NewServer(sharded, 4).Handler())
	defer many.Close()

	// Same keyword universe through the router.
	var kwOne, kwMany struct {
		Topics []int `json:"topics"`
	}
	for _, probe := range []struct {
		ts  *httptest.Server
		dst *struct {
			Topics []int `json:"topics"`
		}
	}{{one, &kwOne}, {many, &kwMany}} {
		resp, err := http.Get(probe.ts.URL + "/keywords")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(probe.dst); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if len(kwOne.Topics) == 0 || !reflect.DeepEqual(kwOne.Topics, kwMany.Topics) {
		t.Fatalf("keyword universes differ: single %v, sharded %v", kwOne.Topics, kwMany.Topics)
	}

	queries := []queryRequest{
		{Topics: []int{0}, K: 3, Strategy: "irr"},
		{Topics: []int{0}, K: 3, Strategy: "rr"},
		{Topics: []int{1, 4}, K: 4, Strategy: "irr"},
		{Topics: kwOne.Topics, K: 5, Strategy: "irr"}, // spans both shards
		{Topics: kwOne.Topics, K: 5, Strategy: "rr"},
	}
	for qi, q := range queries {
		a, respA := postQuery(t, one, q)
		b, respB := postQuery(t, many, q)
		if respA.StatusCode != http.StatusOK || respB.StatusCode != http.StatusOK {
			t.Fatalf("query %d: single %s, sharded %s", qi, respA.Status, respB.Status)
		}
		if !reflect.DeepEqual(a.Seeds, b.Seeds) || a.EstSpread != b.EstSpread || a.NumRRSets != b.NumRRSets {
			t.Fatalf("query %d diverged:\n single  %v / %v\n sharded %v / %v",
				qi, a.Seeds, a.EstSpread, b.Seeds, b.EstSpread)
		}
	}

	// The sharded /stats reply aggregates the per-shard counters.
	resp, err := http.Get(many.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.NumShards != shards || stats.ShardMode != "hash" || len(stats.Shards) != shards {
		t.Fatalf("shard section: num=%d mode=%q shards=%d", stats.NumShards, stats.ShardMode, len(stats.Shards))
	}
	if stats.Served != int64(len(queries)) {
		t.Fatalf("served = %d, want %d", stats.Served, len(queries))
	}
	var hits, misses int64
	kw := 0
	for _, sh := range stats.Shards {
		hits += sh.RRDecoded.Hits + sh.IRRDecoded.Hits
		misses += sh.RRDecoded.Misses + sh.IRRDecoded.Misses
		kw += sh.Keywords
	}
	if agg := stats.RRDecoded.Hits + stats.IRRDecoded.Hits; agg != hits {
		t.Fatalf("aggregate decoded hits %d != shard sum %d", agg, hits)
	}
	if agg := stats.RRDecoded.Misses + stats.IRRDecoded.Misses; agg != misses || misses == 0 {
		t.Fatalf("aggregate decoded misses %d vs shard sum %d", agg, misses)
	}
	if kw != len(kwOne.Topics) {
		t.Fatalf("shards own %d keywords, universe has %d", kw, len(kwOne.Topics))
	}

	// The single-engine /stats carries the degenerate shard fields.
	respS, err := http.Get(one.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer respS.Body.Close()
	var statsOne statsResponse
	if err := json.NewDecoder(respS.Body).Decode(&statsOne); err != nil {
		t.Fatal(err)
	}
	if statsOne.NumShards != 1 || len(statsOne.Shards) != 0 {
		t.Fatalf("single-engine shard section: %d/%d", statsOne.NumShards, len(statsOne.Shards))
	}
}

// TestShardedDriveClosedLoop drives the sharded server with the closed-loop
// generator: zero errors, nonzero throughput — the in-process version of
// the CI smoke gate.
func TestShardedDriveClosedLoop(t *testing.T) {
	ds, opts, rrPath, irrPath := shardedFixture(t, 2)
	be, closeBackend, err := openBackend(ds, opts, rrPath, irrPath, 2, kbtim.ShardHash, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer closeBackend()
	ts := httptest.NewServer(NewServer(be, 4).Handler())
	defer ts.Close()

	rep, err := drive(driveConfig{
		Target:   ts.URL,
		Clients:  4,
		Duration: 300 * time.Millisecond,
		K:        2,
		MaxLen:   3,
		Strategy: "irr",
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries == 0 || rep.Errors != 0 {
		t.Fatalf("sharded drive: %d queries, %d errors", rep.Queries, rep.Errors)
	}
}

// countFDs counts this process's open file descriptors (Linux only;
// callers skip elsewhere) — the ground truth for "a failed open leaked no
// file handles".
func countFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Fatal(err)
	}
	return len(ents)
}

// TestOpenBackendMissingShardFile: a non-empty shard without its index file
// fails fast with a hint naming the build command, tearing down cleanly.
func TestOpenBackendMissingShardFile(t *testing.T) {
	ds, opts, rrPath, irrPath := shardedFixture(t, 2)
	_ = rrPath
	checkFDs := runtime.GOOS == "linux"
	before := 0
	if checkFDs {
		before = countFDs(t)
	}
	// 3-shard serve over 2-shard files: at least one shard file is missing,
	// and the shards that DID open must be torn down — earlier engines
	// closed, no file handle left behind.
	_, _, err := openBackend(ds, opts, "", irrPath, 3, kbtim.ShardHash, 0)
	if err == nil {
		t.Fatal("missing shard file accepted")
	}
	want := fmt.Sprintf("%s.s", irrPath)
	if got := err.Error(); !strings.Contains(got, want) || !strings.Contains(got, "kbtim-build") {
		t.Fatalf("unhelpful error: %v", err)
	}
	if checkFDs {
		if after := countFDs(t); after != before {
			t.Fatalf("failed openBackend leaked file descriptors: %d before, %d after", before, after)
		}
	}
}
